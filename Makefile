# Development entry points. `make check` is the full local gate — the same
# set of steps CI runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint fuzz check clean

build: ## compile everything
	$(GO) build ./...

test: ## unit tests
	$(GO) test ./...

race: ## unit tests under the race detector
	$(GO) test -race ./...

lint: ## go vet + the repo's own analyzers (internal/analysis)
	$(GO) run ./cmd/mlstar-lint ./...

fuzz: ## short fuzz run of the libsvm reader
	$(GO) test -fuzz=FuzzReadLibSVM -fuzztime=10s ./internal/data

check: build lint race fuzz ## everything CI runs

clean:
	$(GO) clean ./...
