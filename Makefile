# Development entry points. `make check` is the full local gate — the same
# set of steps CI runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint lint-fix lint-bench fuzz bench bench-overlap bench-smoke obs critpath serve-demo serve-smoke docs check clean

build: ## compile everything
	$(GO) build ./...

test: ## unit tests
	$(GO) test ./...

race: ## unit tests under the race detector
	$(GO) test -race ./...

lint: ## go vet + the repo's own analyzers, memoized in .mlstar-lint-cache.json
	$(GO) run ./cmd/mlstar-lint -stats ./...

lint-fix: ## apply SuggestedFixes in place, then assert a second pass finds nothing left (idempotency)
	$(GO) run ./cmd/mlstar-lint -fix ./...
	$(GO) run ./cmd/mlstar-lint -fix ./... | tee /dev/stderr | grep -q '^mlstar-lint: applied 0 fix(es)'

lint-bench: ## cold vs warm lint-suite wall time -> BENCH_6.json
	@rm -f .mlstar-lint-cache.json
	( $(GO) run ./cmd/mlstar-lint -vet=false -bench cold ./... && \
	  $(GO) run ./cmd/mlstar-lint -vet=false -bench warm ./... ) \
		| tee /dev/stderr | $(GO) run ./cmd/mlstar-benchjson -out BENCH_6.json

fuzz: ## short fuzz runs: libsvm reader + sparse encoding + telemetry event round-trips + causal graph pipeline
	$(GO) test -fuzz=FuzzReadLibSVM -fuzztime=10s ./internal/data
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/sparse
	$(GO) test -fuzz=FuzzEventRoundTrip -fuzztime=10s ./internal/obs
	$(GO) test -fuzz=FuzzCausalGraph -fuzztime=10s ./internal/causal

bench: ## wall-clock benchmarks (offload/sparse/pipeline/overlap/obs/causal on/off, slab kernels, CSR layout) -> BENCH_9.json
	$(GO) test -bench 'BenchmarkWallClock' -run '^$$' -benchmem ./internal/bench \
		| tee /dev/stderr | $(GO) run ./cmd/mlstar-benchjson -out BENCH_9.json

bench-overlap: ## overlap=off/on pair only; asserts the sim_speedup_overlap table materializes
	$(GO) test -bench 'BenchmarkWallClockOverlap' -run '^$$' -benchmem ./internal/bench \
		| tee /dev/stderr | $(GO) run ./cmd/mlstar-benchjson -out BENCH_overlap.json
	grep -q 'sim_speedup_overlap' BENCH_overlap.json
	@rm -f BENCH_overlap.json
	@echo "bench-overlap: sim_speedup_overlap recorded"

bench-smoke: ## one-iteration benchmark pass + bit-identity tests + CSR zero-alloc guard
	$(GO) test -bench 'BenchmarkWallClock' -benchtime=1x -run '^$$' -benchmem ./internal/bench
	$(GO) test -run 'TestParallelOffload|TestKernelAllocReduction|TestSparse|TestObs|TestPipeline|TestCSRBatchZeroAllocs|TestCSRKernel|TestCritPath|TestWhatIf' -v ./internal/bench

obs: ## replay the committed sample event logs and diff against the golden reports
	$(GO) run ./cmd/mlstar-obs -in internal/bench/testdata/obs_events_mllib.jsonl > obs_report_mllib.txt
	diff -u internal/bench/testdata/obs_report_mllib.golden obs_report_mllib.txt
	$(GO) run ./cmd/mlstar-obs -in internal/bench/testdata/obs_events_mllibstar.jsonl > obs_report_mllibstar.txt
	diff -u internal/bench/testdata/obs_report_mllibstar.golden obs_report_mllibstar.txt
	@rm -f obs_report_mllib.txt obs_report_mllibstar.txt
	@echo "obs: replayed reports match the goldens"

critpath: ## replay the committed causal logs and diff the critical-path + what-if reports against the goldens
	$(GO) run ./cmd/mlstar-obs -in internal/bench/testdata/obs_events_mllib.jsonl -critpath > critpath_mllib.txt
	diff -u internal/bench/testdata/critpath_mllib.golden critpath_mllib.txt
	$(GO) run ./cmd/mlstar-obs -in internal/bench/testdata/obs_events_mllibstar.jsonl -critpath > critpath_mllibstar.txt
	diff -u internal/bench/testdata/critpath_mllibstar.golden critpath_mllibstar.txt
	$(GO) run ./cmd/mlstar-obs -in internal/bench/testdata/obs_events_mllib.jsonl -whatif > whatif_mllib.txt
	diff -u internal/bench/testdata/whatif_mllib.golden whatif_mllib.txt
	$(GO) run ./cmd/mlstar-obs -in internal/bench/testdata/obs_events_mllibstar.jsonl -whatif > whatif_mllibstar.txt
	diff -u internal/bench/testdata/whatif_mllibstar.golden whatif_mllibstar.txt
	@rm -f critpath_mllib.txt critpath_mllibstar.txt whatif_mllib.txt whatif_mllibstar.txt
	@echo "critpath: replayed reports match the goldens"

serve-demo: ## serve the committed checkpoints with a mid-traffic hot swap; the metrics file must match the golden byte-for-byte
	$(GO) run ./cmd/mlstar-serve -model testdata/serve/ckpt_a.json -swap-model testdata/serve/ckpt_b.json \
		-swap-at 0.05 -shards 4 -clients 8 -requests 50 -metrics-out serve_metrics.json
	diff -u testdata/serve/metrics.golden serve_metrics.json
	@rm -f serve_metrics.json
	@echo "serve: metrics match the golden"

serve-smoke: ## serving-tier unit tests (shard invariance, hot swap, checkpoint parity) + the golden-metrics demo
	$(GO) test ./internal/serve
	$(GO) test -run 'TestCheckpointServesBitIdentically|TestLazyL2CheckpointServes' .
	$(MAKE) serve-demo

docs: ## check ARCHITECTURE/README/EXPERIMENTS: intra-repo links + quoted commands
	$(GO) test -run 'TestDocs' -v ./...

check: build lint race fuzz serve-demo critpath docs ## everything CI runs

clean:
	$(GO) clean ./...
	rm -f .mlstar-lint-cache.json
