# Development entry points. `make check` is the full local gate — the same
# set of steps CI runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint fuzz bench bench-smoke docs check clean

build: ## compile everything
	$(GO) build ./...

test: ## unit tests
	$(GO) test ./...

race: ## unit tests under the race detector
	$(GO) test -race ./...

lint: ## go vet + the repo's own analyzers (internal/analysis)
	$(GO) run ./cmd/mlstar-lint ./...

fuzz: ## short fuzz runs: libsvm reader + sparse encoding round-trip
	$(GO) test -fuzz=FuzzReadLibSVM -fuzztime=10s ./internal/data
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/sparse

bench: ## wall-clock benchmarks (offload on/off, sparse on/off, kernels) -> BENCH_3.json
	$(GO) test -bench 'BenchmarkWallClock' -run '^$$' -benchmem ./internal/bench \
		| tee /dev/stderr | $(GO) run ./cmd/mlstar-benchjson -out BENCH_3.json

bench-smoke: ## one-iteration benchmark pass + bit-identity tests
	$(GO) test -bench 'BenchmarkWallClock' -benchtime=1x -run '^$$' -benchmem ./internal/bench
	$(GO) test -run 'TestParallelOffload|TestKernelAllocReduction|TestSparse' -v ./internal/bench

docs: ## check ARCHITECTURE/README/EXPERIMENTS: intra-repo links + quoted commands
	$(GO) test -run 'TestDocs' -v ./...

check: build lint race fuzz docs ## everything CI runs

clean:
	$(GO) clean ./...
