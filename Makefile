# Development entry points. `make check` is the full local gate — the same
# set of steps CI runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint fuzz bench bench-smoke check clean

build: ## compile everything
	$(GO) build ./...

test: ## unit tests
	$(GO) test ./...

race: ## unit tests under the race detector
	$(GO) test -race ./...

lint: ## go vet + the repo's own analyzers (internal/analysis)
	$(GO) run ./cmd/mlstar-lint ./...

fuzz: ## short fuzz run of the libsvm reader
	$(GO) test -fuzz=FuzzReadLibSVM -fuzztime=10s ./internal/data

bench: ## wall-clock benchmarks (offload on/off + kernels) -> BENCH_2.json
	$(GO) test -bench 'BenchmarkWallClock' -run '^$$' -benchmem ./internal/bench \
		| tee /dev/stderr | $(GO) run ./cmd/mlstar-benchjson -out BENCH_2.json

bench-smoke: ## one-iteration benchmark pass + offload bit-identity tests
	$(GO) test -bench 'BenchmarkWallClock' -benchtime=1x -run '^$$' -benchmem ./internal/bench
	$(GO) test -run 'TestParallelOffload|TestKernelAllocReduction' -v ./internal/bench

check: build lint race fuzz ## everything CI runs

clean:
	$(GO) clean ./...
