package mllibstar

// Benchmarks that regenerate every table and figure of the paper's
// evaluation, one per artifact, at CI scale. Each benchmark runs the
// corresponding experiment from internal/bench and reports its headline
// numbers as custom metrics (speedups, busy-time shares), so
// `go test -bench=. -benchmem` reproduces the entire evaluation section.
//
// The benchmarks measure simulated-experiment wall time; the scientific
// content (who wins, by what factor) is in the reported metrics and in the
// experiment output written by cmd/mlstar-bench.

import (
	"sort"
	"testing"

	"mllibstar/internal/bench"
)

// runExperiment executes a bench experiment b.N times and reports its
// metrics from the last run.
func runExperiment(b *testing.B, id string, cfg bench.RunConfig) {
	b.Helper()
	exp, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var report *bench.Report
	for i := 0; i < b.N; i++ {
		report, err = exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	names := make([]string, 0, len(report.Metrics))
	for name := range report.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.ReportMetric(report.Metrics[name], name)
	}
}

// ciCfg is the scale used by the benchmark suite.
var ciCfg = bench.RunConfig{Scale: bench.DefaultScale}

func BenchmarkFigure1WorkloadShare(b *testing.B) { runExperiment(b, "fig1", ciCfg) }

func BenchmarkTableIDatasets(b *testing.B) { runExperiment(b, "table1", ciCfg) }

func BenchmarkFigure3Gantt(b *testing.B) { runExperiment(b, "fig3", ciCfg) }

func BenchmarkBottleneckAnalysis(b *testing.B) { runExperiment(b, "bottleneck", ciCfg) }

// Figure 4 — MLlib vs MLlib*, four datasets × {L2=0.1, L2=0}.

func BenchmarkFigure4aAvazuL2(b *testing.B) { runExperiment(b, "fig4a", ciCfg) }
func BenchmarkFigure4bAvazu(b *testing.B)   { runExperiment(b, "fig4b", ciCfg) }
func BenchmarkFigure4cURLL2(b *testing.B)   { runExperiment(b, "fig4c", ciCfg) }
func BenchmarkFigure4dURL(b *testing.B)     { runExperiment(b, "fig4d", ciCfg) }
func BenchmarkFigure4eKddbL2(b *testing.B)  { runExperiment(b, "fig4e", ciCfg) }
func BenchmarkFigure4fKddb(b *testing.B)    { runExperiment(b, "fig4f", ciCfg) }
func BenchmarkFigure4gKdd12L2(b *testing.B) { runExperiment(b, "fig4g", ciCfg) }
func BenchmarkFigure4hKdd12(b *testing.B)   { runExperiment(b, "fig4h", ciCfg) }

// Figure 5 — MLlib* vs parameter servers, four datasets × {L2=0, L2=0.1}.

func BenchmarkFigure5aAvazu(b *testing.B)   { runExperiment(b, "fig5a", ciCfg) }
func BenchmarkFigure5bURL(b *testing.B)     { runExperiment(b, "fig5b", ciCfg) }
func BenchmarkFigure5cKddb(b *testing.B)    { runExperiment(b, "fig5c", ciCfg) }
func BenchmarkFigure5dKdd12(b *testing.B)   { runExperiment(b, "fig5d", ciCfg) }
func BenchmarkFigure5eAvazuL2(b *testing.B) { runExperiment(b, "fig5e", ciCfg) }
func BenchmarkFigure5fURLL2(b *testing.B)   { runExperiment(b, "fig5f", ciCfg) }
func BenchmarkFigure5gKddbL2(b *testing.B)  { runExperiment(b, "fig5g", ciCfg) }
func BenchmarkFigure5hKdd12L2(b *testing.B) { runExperiment(b, "fig5h", ciCfg) }

// Figure 6 — WX scalability on the heterogeneous cluster.

func BenchmarkFigure6a32Machines(b *testing.B)  { runExperiment(b, "fig6a", ciCfg) }
func BenchmarkFigure6b64Machines(b *testing.B)  { runExperiment(b, "fig6b", ciCfg) }
func BenchmarkFigure6c128Machines(b *testing.B) { runExperiment(b, "fig6c", ciCfg) }
func BenchmarkFigure6dScalability(b *testing.B) { runExperiment(b, "fig6d", ciCfg) }

// Ablations — design choices called out in DESIGN.md.

func BenchmarkAblationSummationVsAveraging(b *testing.B) {
	runExperiment(b, "ablation-summation", ciCfg)
}

func BenchmarkAblationLazyL2(b *testing.B) { runExperiment(b, "ablation-lazyl2", ciCfg) }

func BenchmarkAblationWaves(b *testing.B) { runExperiment(b, "ablation-waves", ciCfg) }

func BenchmarkAblationAggregators(b *testing.B) { runExperiment(b, "ablation-aggregators", ciCfg) }

// Extensions — the paper's future-work directions, implemented.

func BenchmarkExtensionLBFGS(b *testing.B) { runExperiment(b, "ext-lbfgs", ciCfg) }

func BenchmarkExtensionStaleness(b *testing.B) { runExperiment(b, "ext-staleness", ciCfg) }

func BenchmarkExtensionReweight(b *testing.B) { runExperiment(b, "ext-reweight", ciCfg) }

func BenchmarkExtensionTorrentBroadcast(b *testing.B) { runExperiment(b, "ext-torrent", ciCfg) }

func BenchmarkSensitivityBandwidth(b *testing.B) { runExperiment(b, "ext-bandwidth", ciCfg) }

func BenchmarkSubstrateLoading(b *testing.B) { runExperiment(b, "ext-loading", ciCfg) }

func BenchmarkExtensionAdaGrad(b *testing.B) { runExperiment(b, "ext-adagrad", ciCfg) }

func BenchmarkExtensionSpeculation(b *testing.B) { runExperiment(b, "ext-speculation", ciCfg) }

func BenchmarkExtensionSVRG(b *testing.B) { runExperiment(b, "ext-svrg", ciCfg) }
