// Command mlstar-bench regenerates the tables and figures of the MLlib*
// paper on the simulated cluster.
//
// Usage:
//
//	mlstar-bench -list
//	mlstar-bench -exp fig4h
//	mlstar-bench -exp all -scale 2000 -out results/
//	mlstar-bench -exp fig4h -cpuprofile cpu.pprof -par=off
//	mlstar-bench -exp fig4a -sparse=on      # sparse model-delta exchange
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mllibstar/internal/bench"
	"mllibstar/internal/prof"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "", "experiment id to run, or \"all\"")
		scale   = flag.Float64("scale", bench.DefaultScale, "dataset downscale factor (1 = paper scale; smaller = bigger datasets)")
		grid    = flag.Bool("grid", false, "grid-search the learning rate instead of tuned defaults")
		out     = flag.String("out", "", "directory to write CSV outputs into (optional)")
		evalCap = flag.Int("evalcap", 0, "evaluation subsample cap (0 = default)")
		profCfg = prof.Register(flag.CommandLine)
	)
	flag.Parse()
	stopProf, err := profCfg.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: mlstar-bench -exp <id>")
		}
		return
	}

	cfg := bench.RunConfig{Scale: *scale, Grid: *grid, EvalCap: *evalCap}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.All()
	} else {
		e, err := bench.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		report, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(report.Text())
		fmt.Printf("(%s finished in %s wall time)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for name, contents := range report.Files {
				path := filepath.Join(*out, name)
				if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
}
