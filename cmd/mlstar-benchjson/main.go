// Command mlstar-benchjson converts `go test -bench` output (read from
// stdin) into a machine-readable JSON artifact. Every `<value> <unit>` pair
// on a benchmark line is captured — the standard ns/op, B/op, allocs/op
// plus any custom b.ReportMetric units (commbytes/op, simsec/op, ...).
//
// Derived tables are emitted from paired sub-runs:
//
//   - speedup_par_vs_seq: ns/op(par=off) / ns/op(par=on) for benchmarks
//     with offload-mode sub-runs; >1 means the offload pool won.
//   - comm_reduction_sparse: commbytes/op(sparse=off) / commbytes/op(sparse=on)
//     for benchmarks with exchange-mode sub-runs; >1 means the sparse
//     model-delta encoding shrank the simulated traffic. The companion
//     sim_speedup_sparse is the same ratio for simsec/op — the virtual-time
//     win the byte accounting buys.
//   - obs_overhead: ns/op(obs=on) / ns/op(obs=off) for benchmarks with
//     telemetry sub-runs — the wall-clock price of recording the structured
//     event log (results are bit-identical either way). The companion
//     obs_events_per_op is the obs=on sub-run's obsevents/op metric.
//   - trace_overhead: ns/op(causal=on) / ns/op(causal=off) for benchmarks
//     with causal-tracing sub-runs — the wall-clock price of enriching the
//     event log with happens-before fields and extracting the critical path
//     (results are bit-identical either way).
//   - sim_speedup_pipeline: simsec/op(pipeline=off) / simsec/op(pipeline=on)
//     for benchmarks with superstep-schedule sub-runs; >1 means chunked
//     compute/communication overlap shortened the simulated clock (bytes
//     and numerics are identical by construction).
//   - sim_speedup_overlap: simsec/op(overlap=off) / simsec/op(overlap=on)
//     for benchmarks with gradient-schedule sub-runs — the end-to-end
//     virtual-time win of producing gradient blocks feature-major inside
//     the pipelined collective over the non-pipelined compute-then-
//     communicate baseline (bytes and numerics identical by construction;
//     floor ≥ 2.2 guarded by TestPipelineOverlapSpeedupTarget).
//   - allocs_per_batch_csr: the layout=csr sub-run's allocs/op — allocations
//     per cache-blocked mini-batch pass over the CSR arena, guarded at 0.
//   - lint_cache_speedup: ns/op(cache=cold) / ns/op(cache=warm) for the
//     BenchmarkLintSuite lines `mlstar-lint -bench` emits — how much the
//     content-hash result cache shortens the lint gate (make lint-bench).
//   - kernel_speedup_csr: ns/op(impl=view) / ns/op(impl=slab) for benchmarks
//     with kernel-implementation sub-runs — how much faster the monomorphized
//     slab kernels run the fused gradient+loss superstep than the Example-view
//     interface path (results are bit-identical by the kernel contract).
//
// Usage:
//
//	go test -bench 'BenchmarkWallClock' -benchmem ./internal/bench | mlstar-benchjson -out BENCH_9.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any further unit -> value pairs reported via
	// b.ReportMetric, e.g. "commbytes/op" or "simsec/op".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// artifact is the emitted JSON document.
type artifact struct {
	Benchmarks []benchResult `json:"benchmarks"`
	// SpeedupParVsSeq maps a benchmark's base name to ns/op(par=off) /
	// ns/op(par=on): >1 means the offload pool made it faster. On a
	// single-CPU host the pool falls back to inline execution and the ratio
	// is ~1 by construction.
	SpeedupParVsSeq map[string]float64 `json:"speedup_par_vs_seq,omitempty"`
	// CommReductionSparse maps a benchmark's base name to
	// commbytes/op(sparse=off) / commbytes/op(sparse=on) — the simulated
	// communication-byte reduction from the sparse model-delta exchange.
	CommReductionSparse map[string]float64 `json:"comm_reduction_sparse,omitempty"`
	// SimSpeedupSparse is the matching simsec/op ratio: how much faster the
	// simulated clock runs once messages are delta-coded.
	SimSpeedupSparse map[string]float64 `json:"sim_speedup_sparse,omitempty"`
	// ObsOverhead maps a benchmark's base name to ns/op(obs=on) /
	// ns/op(obs=off) for benchmarks with telemetry sub-runs: the wall-clock
	// price of recording the structured event log (results are bit-identical
	// either way, so this is pure recording cost). ~1 means free.
	ObsOverhead map[string]float64 `json:"obs_overhead,omitempty"`
	// ObsEventsPerOp maps the same base names to the obsevents/op custom
	// metric of the obs=on sub-run: how many structured events one run of
	// the benchmark workload generates.
	ObsEventsPerOp map[string]float64 `json:"obs_events_per_op,omitempty"`
	// TraceOverhead maps a benchmark's base name to ns/op(causal=on) /
	// ns/op(causal=off) for benchmarks with causal-tracing sub-runs: the
	// wall-clock price of recording the happens-before enrichment and running
	// critical-path extraction on top of plain telemetry. Results are
	// bit-identical either way, so this is pure tracing-and-analysis cost.
	TraceOverhead map[string]float64 `json:"trace_overhead,omitempty"`
	// SimSpeedupPipeline maps a benchmark's base name to
	// simsec/op(pipeline=off) / simsec/op(pipeline=on) — the virtual-time
	// win from overlapping chunk transfer with folding. The matching
	// commbytes/op ratio is exactly 1 by the byte-invariance contract, so
	// only the time ratio is tabulated.
	SimSpeedupPipeline map[string]float64 `json:"sim_speedup_pipeline,omitempty"`
	// SimSpeedupOverlap maps a benchmark's base name to
	// simsec/op(overlap=off) / simsec/op(overlap=on) — the end-to-end
	// virtual-time win of streaming feature-major gradient blocks into the
	// chunked Reduce-Scatter as they are produced, measured against the
	// non-pipelined compute-then-communicate baseline. Bytes and numerics
	// are identical by construction (see overlap_parity_test.go), so only
	// the time ratio is tabulated.
	SimSpeedupOverlap map[string]float64 `json:"sim_speedup_overlap,omitempty"`
	// AllocsPerBatchCSR maps a benchmark's base name to the layout=csr
	// sub-run's allocs/op: heap allocations per full cache-blocked
	// mini-batch pass over the CSR arena. The bench-smoke guard
	// (TestCSRBatchZeroAllocs) holds this at exactly 0.
	AllocsPerBatchCSR map[string]float64 `json:"allocs_per_batch_csr,omitempty"`
	// LintCacheSpeedup maps a benchmark's base name (LintSuite) to
	// ns/op(cache=cold) / ns/op(cache=warm): how much of the lint gate the
	// content-hash result cache skips when nothing changed.
	LintCacheSpeedup map[string]float64 `json:"lint_cache_speedup,omitempty"`
	// KernelSpeedupCSR maps a benchmark's base name to ns/op(impl=view) /
	// ns/op(impl=slab): the wall-clock win of the loss-monomorphized slab
	// kernels over the Example-view interface path on the same superstep.
	// The kernel bit-identity contract guarantees both sub-runs compute the
	// same floats, so this is pure data-path speed.
	KernelSpeedupCSR map[string]float64 `json:"kernel_speedup_csr,omitempty"`
}

// benchPrefix matches the name and iteration count of a result row; the
// remainder of the line is parsed as `<value> <unit>` pairs.
var benchPrefix = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// cpuSuffix strips the trailing -<GOMAXPROCS> go appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("out", "BENCH_9.json", "output JSON path")
	flag.Parse()

	art, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlstar-benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlstar-benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mlstar-benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mlstar-benchjson: wrote %s (%d benchmarks)\n", *out, len(art.Benchmarks))
}

func parse(sc *bufio.Scanner) (*artifact, error) {
	art := &artifact{}
	for sc.Scan() {
		m := benchPrefix.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(strings.TrimPrefix(m[1], "Benchmark"), "")
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := benchResult{Name: name, Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a metric tail; stop pairing
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		if r.NsPerOp == 0 && r.Metrics == nil {
			continue // header-ish line that happened to match the prefix
		}
		art.Benchmarks = append(art.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(art.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	art.SpeedupParVsSeq = ratios(art.Benchmarks, "/par=off", "/par=on",
		func(r benchResult) float64 { return r.NsPerOp })
	art.CommReductionSparse = ratios(art.Benchmarks, "/sparse=off", "/sparse=on",
		func(r benchResult) float64 { return r.Metrics["commbytes/op"] })
	art.SimSpeedupSparse = ratios(art.Benchmarks, "/sparse=off", "/sparse=on",
		func(r benchResult) float64 { return r.Metrics["simsec/op"] })
	// Overhead is on/off, so the suffix roles are swapped relative to the
	// speedup tables.
	art.ObsOverhead = ratios(art.Benchmarks, "/obs=on", "/obs=off",
		func(r benchResult) float64 { return r.NsPerOp })
	art.TraceOverhead = ratios(art.Benchmarks, "/causal=on", "/causal=off",
		func(r benchResult) float64 { return r.NsPerOp })
	art.SimSpeedupPipeline = ratios(art.Benchmarks, "/pipeline=off", "/pipeline=on",
		func(r benchResult) float64 { return r.Metrics["simsec/op"] })
	art.SimSpeedupOverlap = ratios(art.Benchmarks, "/overlap=off", "/overlap=on",
		func(r benchResult) float64 { return r.Metrics["simsec/op"] })
	art.LintCacheSpeedup = ratios(art.Benchmarks, "/cache=cold", "/cache=warm",
		func(r benchResult) float64 { return r.NsPerOp })
	art.KernelSpeedupCSR = ratios(art.Benchmarks, "/impl=view", "/impl=slab",
		func(r benchResult) float64 { return r.NsPerOp })
	for _, r := range art.Benchmarks {
		base, ok := strings.CutSuffix(r.Name, "/obs=on")
		if !ok || r.Metrics["obsevents/op"] <= 0 {
			continue
		}
		if art.ObsEventsPerOp == nil {
			art.ObsEventsPerOp = map[string]float64{}
		}
		art.ObsEventsPerOp[base] = r.Metrics["obsevents/op"]
	}
	for _, r := range art.Benchmarks {
		base, ok := strings.CutSuffix(r.Name, "/layout=csr")
		if !ok {
			continue
		}
		// Zero is the expected — and guarded — value, so record it even
		// though it is the map type's empty value.
		if art.AllocsPerBatchCSR == nil {
			art.AllocsPerBatchCSR = map[string]float64{}
		}
		art.AllocsPerBatchCSR[base] = r.AllocsPerOp
	}
	return art, nil
}

// ratios pairs sub-runs by base name and returns metric(off run) /
// metric(on run) for every base where both runs reported a positive value.
// A nil map means no such pairs were present.
func ratios(results []benchResult, offSuffix, onSuffix string, metric func(benchResult) float64) map[string]float64 {
	off := map[string]float64{}
	on := map[string]float64{}
	for _, r := range results {
		if base, ok := strings.CutSuffix(r.Name, offSuffix); ok {
			off[base] = metric(r)
		}
		if base, ok := strings.CutSuffix(r.Name, onSuffix); ok {
			on[base] = metric(r)
		}
	}
	var out map[string]float64
	for base, num := range off { //mlstar:nolint determinism -- order-insensitive: filling a map from a map
		if den := on[base]; den > 0 && num > 0 {
			if out == nil {
				out = map[string]float64{}
			}
			out[base] = num / den
		}
	}
	return out
}
