// Command mlstar-benchjson converts `go test -bench` output (read from
// stdin) into a machine-readable JSON artifact. For every benchmark with
// par=off / par=on sub-runs it also reports the wall-clock speedup of the
// offloaded engine over the sequential one.
//
// Usage:
//
//	go test -bench 'BenchmarkWallClock' -benchmem ./internal/bench | mlstar-benchjson -out BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// artifact is the emitted JSON document.
type artifact struct {
	Benchmarks []benchResult `json:"benchmarks"`
	// SpeedupParVsSeq maps a benchmark's base name to ns/op(par=off) /
	// ns/op(par=on): >1 means the offload pool made it faster. On a
	// single-CPU host the pool falls back to inline execution and the ratio
	// is ~1 by construction.
	SpeedupParVsSeq map[string]float64 `json:"speedup_par_vs_seq,omitempty"`
}

// benchLine matches one result row of `go test -bench` output.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// cpuSuffix strips the trailing -<GOMAXPROCS> go appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("out", "BENCH_2.json", "output JSON path")
	flag.Parse()

	art, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlstar-benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlstar-benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mlstar-benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mlstar-benchjson: wrote %s (%d benchmarks)\n", *out, len(art.Benchmarks))
}

func parse(sc *bufio.Scanner) (*artifact, error) {
	art := &artifact{}
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(strings.TrimPrefix(m[1], "Benchmark"), "")
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Name: name, Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		art.Benchmarks = append(art.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(art.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	off := map[string]float64{}
	on := map[string]float64{}
	for _, r := range art.Benchmarks {
		if base, ok := strings.CutSuffix(r.Name, "/par=off"); ok {
			off[base] = r.NsPerOp
		}
		if base, ok := strings.CutSuffix(r.Name, "/par=on"); ok {
			on[base] = r.NsPerOp
		}
	}
	for base, seq := range off { //mlstar:nolint determinism -- order-insensitive: filling a map from a map
		if par := on[base]; par > 0 {
			if art.SpeedupParVsSeq == nil {
				art.SpeedupParVsSeq = map[string]float64{}
			}
			art.SpeedupParVsSeq[base] = seq / par
		}
	}
	return art, nil
}
