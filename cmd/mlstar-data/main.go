// Command mlstar-data generates the synthetic preset datasets and prints
// Table I of the paper (dataset statistics at paper scale and at the
// reproduction scale).
//
// Usage:
//
//	mlstar-data -table1
//	mlstar-data -preset kdd12 -scale 5000 -out kdd12.libsvm
package main

import (
	"flag"
	"fmt"
	"os"

	"mllibstar"
	"mllibstar/internal/data"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table I (all presets, paper + reproduction scale)")
		preset = flag.String("preset", "", "preset to generate: avazu, url, kddb, kdd12, wx")
		scale  = flag.Float64("scale", 5000, "downscale factor")
		out    = flag.String("out", "", "write the generated dataset to this libsvm file")
	)
	flag.Parse()

	if *table1 {
		fmt.Println("Table I — paper scale:")
		for _, name := range data.PresetNames() {
			st, err := data.PaperStats(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  %s\n", st)
		}
		fmt.Printf("reproduction scale (1/%g):\n", *scale)
		for _, name := range data.PresetNames() {
			ds, err := mllibstar.PresetDataset(name, *scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  %s\n", ds.Stats())
		}
		return
	}

	if *preset == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := mllibstar.PresetDataset(*preset, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("generated: %s\n", ds.Stats())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := mllibstar.WriteLibSVM(f, ds); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
