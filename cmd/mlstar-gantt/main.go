// Command mlstar-gantt reproduces Figure 3 of the paper: gantt charts of
// the cluster activity for MLlib, MLlib + model averaging, and MLlib*
// running SVM training on the kdd12-like workload with 8 executors.
//
// Usage:
//
//	mlstar-gantt                 # all three charts, ASCII
//	mlstar-gantt -system MLlib*  # one system
//	mlstar-gantt -csv out/       # also dump span CSVs for plotting
//	mlstar-gantt -svg out/       # also render SVG charts (labeled legend)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mllibstar"
)

func main() {
	var (
		system = flag.String("system", "", "only this system (default: all three)")
		preset = flag.String("preset", "kdd12", "dataset preset")
		scale  = flag.Float64("scale", 5000, "preset downscale factor")
		steps  = flag.Int("steps", 4, "communication steps to trace")
		execs  = flag.Int("executors", 8, "number of executors")
		width  = flag.Int("width", 110, "chart width in characters")
		csvDir = flag.String("csv", "", "directory to write span CSVs into")
		svgDir = flag.String("svg", "", "directory to write SVG gantt charts into")
	)
	flag.Parse()

	ds, err := mllibstar.PresetDataset(*preset, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	systems := []mllibstar.System{mllibstar.MLlib, mllibstar.MLlibMA, mllibstar.MLlibStar}
	if *system != "" {
		systems = []mllibstar.System{mllibstar.System(*system)}
	}
	for _, sys := range systems {
		rec := mllibstar.NewTrace()
		eta := 0.3
		if sys == mllibstar.MLlib {
			eta = 12
		}
		res, err := mllibstar.Train(ds, mllibstar.Config{
			System: sys, Cluster: mllibstar.Cluster1(*execs),
			Eta: eta, Decay: true, BatchFraction: 0.1,
			MaxSteps: *steps, Trace: rec, Seed: 7,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s: %d steps in %.4f simulated s ---\n", sys, res.CommSteps, res.SimTime)
		fmt.Println(mllibstar.RenderGantt(rec, *width))
		name := strings.NewReplacer("*", "star", "+", "_").Replace(string(sys))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("gantt_%s.csv", name))
			if err := os.WriteFile(path, []byte(rec.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*svgDir, fmt.Sprintf("gantt_%s.svg", name))
			svg := mllibstar.RenderGanttSVG(rec, fmt.Sprintf("%s · cluster activity", sys), 900)
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
