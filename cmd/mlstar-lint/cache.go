package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"mllibstar/internal/analysis"
	"mllibstar/internal/analysis/loader"
)

// The result cache: lint findings are a pure function of (analyzer suite,
// package source, dependency source), so a package whose key is unchanged
// since the last run can be answered from disk without parsing or
// type-checking anything.
//
// The key construction makes staleness impossible rather than unlikely:
//
//   - the seed hashes the mlstar-lint binary itself (plus the toolchain
//     version), so editing ANY analyzer — a message string, a scope list, a
//     transfer function — rebuilds the binary and invalidates every entry;
//   - a package's key hashes its file contents, so edits (including adding
//     or removing //mlstar:nolint directives) invalidate it;
//   - a package's key chains in the keys of its in-module dependencies, so
//     a change to a callee invalidates every package whose interprocedural
//     facts could have depended on it, transitively.
//
// Cached entries store the post-suppression findings and the facts the
// package's analysis exported; a warm hit replays the facts into the run's
// store so downstream cold packages still resolve cross-package summaries.

// cacheFileName sits at the module root, next to go.mod.
const cacheFileName = ".mlstar-lint-cache.json"

// finding is one reported diagnostic, in persistable form.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// cacheEntry is one package's memoized lint result.
type cacheEntry struct {
	Key      string                `json:"key"`
	Findings []finding             `json:"findings,omitempty"`
	Facts    []analysis.FactRecord `json:"facts,omitempty"`
}

// cacheFile is the on-disk cache: one entry per package path, valid only
// while the seed matches the current binary.
type cacheFile struct {
	Seed     string                `json:"seed"`
	Packages map[string]cacheEntry `json:"packages"`
}

// binarySeed hashes the running mlstar-lint binary and the toolchain
// version. Any change to the analyzer suite changes the binary and thus the
// seed, wiping the cache wholesale — the only safe reaction to an analyzer
// edit.
func binarySeed() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", fmt.Errorf("resolving own binary: %v", err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "", fmt.Errorf("reading own binary: %v", err)
	}
	sum := sha256.Sum256(fmt.Appendf(nil, "%x|%s|%s/%s",
		sha256.Sum256(data), runtime.Version(), runtime.GOOS, runtime.GOARCH))
	return hex.EncodeToString(sum[:]), nil
}

// packageKey hashes one package's identity: the seed, its import path, the
// content of each of its files, and the keys of its in-set dependencies
// (depKeys is populated in dependency order, so they are always present).
func packageKey(seed string, e loader.Entry, depKeys map[string]string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", seed, e.ImportPath)
	for _, f := range e.GoFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", fmt.Errorf("hashing %s: %v", f, err)
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s\x00%x\x00", f, sum)
	}
	deps := make([]string, 0, len(e.Imports))
	for _, imp := range e.Imports {
		if k, ok := depKeys[imp]; ok {
			deps = append(deps, imp+"="+k)
		}
	}
	sort.Strings(deps)
	fmt.Fprintf(h, "%s", strings.Join(deps, "\x00"))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cachePath locates the cache file at the module root. Outside a module it
// falls back to the working directory.
func cachePath() string {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	gomod := strings.TrimSpace(string(out))
	if err != nil || gomod == "" || gomod == os.DevNull {
		return cacheFileName
	}
	return filepath.Join(filepath.Dir(gomod), cacheFileName)
}

// loadCache reads the cache, returning an empty one on any problem (a
// corrupt or missing cache just means a cold run) or on seed mismatch.
func loadCache(path, seed string) *cacheFile {
	empty := &cacheFile{Seed: seed, Packages: map[string]cacheEntry{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return empty
	}
	var c cacheFile
	if json.Unmarshal(data, &c) != nil || c.Seed != seed || c.Packages == nil {
		return empty
	}
	return &c
}

// saveCache writes the cache atomically (write temp, rename). A failure is
// reported but non-fatal: the next run is merely cold.
func saveCache(path string, c *cacheFile) {
	data, err := json.MarshalIndent(c, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlstar-lint: encoding cache: %v\n", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mlstar-lint: writing cache: %v\n", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		fmt.Fprintf(os.Stderr, "mlstar-lint: writing cache: %v\n", err)
	}
}
