// Command mlstar-lint is the repository's lint gate: it runs go vet plus
// the project-specific analyzers (determinism, vecalias, floateq,
// errdiscard, gocapture, obspure, pkgdoc) over the given package patterns
// and exits non-zero on any finding.
//
// Usage:
//
//	mlstar-lint ./...                # the CI gate
//	mlstar-lint -vet=false ./...     # custom analyzers only
//	mlstar-lint -list                # describe the analyzers and their scopes
//
// Findings are suppressed per line with `//mlstar:nolint <analyzer> --
// reason`; see internal/analysis. Each analyzer applies to a fixed set of
// package-path prefixes (its scope) chosen to match where its invariant is
// load-bearing; -list prints them.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"mllibstar/internal/analysis"
	"mllibstar/internal/analysis/determinism"
	"mllibstar/internal/analysis/errdiscard"
	"mllibstar/internal/analysis/floateq"
	"mllibstar/internal/analysis/gocapture"
	"mllibstar/internal/analysis/loader"
	"mllibstar/internal/analysis/obspure"
	"mllibstar/internal/analysis/pkgdoc"
	"mllibstar/internal/analysis/vecalias"
)

// analyzers is the suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	vecalias.Analyzer,
	floateq.Analyzer,
	errdiscard.Analyzer,
	gocapture.Analyzer,
	obspure.Analyzer,
	pkgdoc.Analyzer,
}

func main() {
	var (
		vet  = flag.Bool("vet", true, "also run go vet on the same patterns")
		list = flag.Bool("list", false, "describe the analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			if len(a.DefaultScope) > 0 {
				fmt.Printf("%-12s scope: %s\n", "", strings.Join(a.DefaultScope, ", "))
			} else {
				fmt.Printf("%-12s scope: all packages\n", "")
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := loader.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	type finding struct {
		file     string
		line     int
		col      int
		analyzer string
		message  string
	}
	var findings []finding
	sup := analysis.NewSuppressor()

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.InScope(pkg.PkgPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.Suppressed(pos.Filename, pos.Line, a.Name) {
					return
				}
				findings = append(findings, finding{
					file: pos.Filename, line: pos.Line, col: pos.Column,
					analyzer: a.Name, message: d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "mlstar-lint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.file, f.line, f.col, f.analyzer, f.message)
	}
	if len(findings) > 0 {
		fmt.Printf("mlstar-lint: %d finding(s)\n", len(findings))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
