// Command mlstar-lint is the repository's lint gate: it runs go vet plus
// the project-specific analyzers over the given package patterns and exits
// non-zero on any finding.
//
// The suite has two layers. The syntactic analyzers (determinism, vecalias,
// floateq, errdiscard, gocapture, obspure, pkgdoc) check one construct at a
// time. The flow-sensitive analyzers (costcharge, buflife, detflow) run the
// dataflow engine in internal/analysis — CFGs, an intra-module call graph,
// and cross-package function summaries ("facts") — so they follow values
// and effects across statements and function boundaries.
//
// Usage:
//
//	mlstar-lint ./...                # the CI gate
//	mlstar-lint -fix ./...           # apply suggested fixes in place
//	mlstar-lint -vet=false ./...     # custom analyzers only
//	mlstar-lint -cache=false ./...   # ignore and do not write the result cache
//	mlstar-lint -list                # describe the analyzers and their scopes
//
// Results are memoized in .mlstar-lint-cache.json at the module root, keyed
// by the analyzer binary's own hash plus each package's file contents and
// dependency keys (see cache.go); a warm run re-checks nothing. -stats
// prints the hit/miss split, and -bench <label> emits the wall time in Go
// benchmark format for mlstar-benchjson.
//
// Findings are suppressed per statement with `//mlstar:nolint <analyzer> --
// reason`; a malformed or unattached directive is itself reported as a
// finding of the analyzer "nolint". Each analyzer applies to a fixed set of
// package-path prefixes (its scope); -list prints them. Analyzers marked
// [facts] also run outside their scope with reporting disabled, so their
// cross-package summaries cover helper packages too.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"mllibstar/internal/analysis"
	"mllibstar/internal/analysis/buflife"
	"mllibstar/internal/analysis/costcharge"
	"mllibstar/internal/analysis/determinism"
	"mllibstar/internal/analysis/detflow"
	"mllibstar/internal/analysis/errdiscard"
	"mllibstar/internal/analysis/floateq"
	"mllibstar/internal/analysis/gocapture"
	"mllibstar/internal/analysis/loader"
	"mllibstar/internal/analysis/obspure"
	"mllibstar/internal/analysis/pkgdoc"
	"mllibstar/internal/analysis/vecalias"
)

// analyzers is the suite, in reporting order. The flow-sensitive analyzers
// subsume parts of their syntactic predecessors but both layers run: the
// syntactic ones are cheap and catch constructs the dataflow layer
// deliberately leaves to them.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	detflow.Analyzer,
	vecalias.Analyzer,
	buflife.Analyzer,
	costcharge.Analyzer,
	floateq.Analyzer,
	errdiscard.Analyzer,
	gocapture.Analyzer,
	obspure.Analyzer,
	pkgdoc.Analyzer,
}

func main() {
	var (
		vet   = flag.Bool("vet", true, "also run go vet on the same patterns")
		list  = flag.Bool("list", false, "describe the analyzers and exit")
		fix   = flag.Bool("fix", false, "apply suggested fixes to the source files and exit")
		cache = flag.Bool("cache", true, "memoize results in "+cacheFileName+" at the module root")
		bench = flag.String("bench", "", "print suite wall time in Go benchmark format, tagged cache=`label`")
		stats = flag.Bool("stats", false, "print cache hit/miss statistics")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			tag := ""
			if a.FactsAll {
				tag = " [facts]"
			}
			fmt.Printf("%-12s %s%s\n", a.Name, a.Doc, tag)
			if len(a.DefaultScope) > 0 {
				fmt.Printf("%-12s scope: %s\n", "", strings.Join(a.DefaultScope, ", "))
			} else {
				fmt.Printf("%-12s scope: all packages\n", "")
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet && !*fix {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	start := time.Now()
	res, err := runSuite(patterns, *cache && !*fix, *fix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlstar-lint: %v\n", err)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	if *bench != "" {
		// Go benchmark format so `go run ./cmd/mlstar-benchjson` can fold the
		// lint suite's wall time into the benchmark JSON.
		fmt.Printf("BenchmarkLintSuite/cache=%s 1 %d ns/op\n", *bench, elapsed.Nanoseconds())
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "mlstar-lint: %d package(s): %d cached, %d analyzed in %s\n",
			res.hits+res.misses, res.hits, res.misses, elapsed.Round(time.Millisecond))
	}

	if *fix {
		applyFixes(res)
		return
	}

	sort.Slice(res.findings, func(i, j int) bool {
		a, b := res.findings[i], res.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	for _, f := range res.findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(res.findings) > 0 {
		fmt.Printf("mlstar-lint: %d finding(s)\n", len(res.findings))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// result is one suite run's output.
type result struct {
	findings     []finding
	fixables     []analysis.Diagnostic // diagnostics carrying fixes (fix mode only)
	fset         *token.FileSet
	hits, misses int
}

// runSuite lists the packages, answers warm ones from the cache, and runs
// the analyzers over the rest in dependency order, threading the shared
// fact store through so interprocedural summaries cross package boundaries.
func runSuite(patterns []string, useCache, collectFixes bool) (*result, error) {
	mod, err := loader.List("", patterns)
	if err != nil {
		return nil, err
	}

	seed, err := binarySeed()
	if err != nil {
		return nil, err
	}
	cPath := cachePath()
	var persisted *cacheFile
	if useCache {
		persisted = loadCache(cPath, seed)
	}
	fresh := &cacheFile{Seed: seed, Packages: map[string]cacheEntry{}}

	res := &result{}
	facts := analysis.NewFacts()
	sup := analysis.NewSuppressor()
	keys := map[string]string{}

	for _, e := range mod.Entries {
		key, err := packageKey(seed, e, keys)
		if err != nil {
			return nil, err
		}
		keys[e.ImportPath] = key

		if persisted != nil {
			if ce, ok := persisted.Packages[e.ImportPath]; ok && ce.Key == key {
				// Warm: replay the package's exported facts so colder
				// dependents can still import them, and reuse its findings.
				facts.Replay(ce.Facts)
				res.findings = append(res.findings, ce.Findings...)
				fresh.Packages[e.ImportPath] = ce
				res.hits++
				continue
			}
		}
		res.misses++

		pkg, err := mod.LoadPackage(e)
		if err != nil {
			return nil, err
		}
		res.fset = pkg.Fset

		var pkgFindings []finding
		for _, mis := range sup.AddPackage(pkg.Fset, pkg.Files) {
			pos := pkg.Fset.Position(mis.Pos)
			pkgFindings = append(pkgFindings, finding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: "nolint", Message: mis.Message,
			})
		}

		before := facts.Len()
		for _, a := range analyzers {
			inScope := a.InScope(pkg.PkgPath)
			if !inScope && !a.FactsAll {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				if !inScope {
					return // facts-only visit of an out-of-scope package
				}
				pos := pkg.Fset.Position(d.Pos)
				if sup.Suppressed(pos.Filename, pos.Line, name) {
					return
				}
				pkgFindings = append(pkgFindings, finding{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: name, Message: d.Message,
				})
				if collectFixes && len(d.Fixes) > 0 {
					res.fixables = append(res.fixables, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}

		res.findings = append(res.findings, pkgFindings...)
		fresh.Packages[e.ImportPath] = cacheEntry{
			Key:      key,
			Findings: pkgFindings,
			Facts:    facts.Since(before),
		}
	}

	if useCache {
		saveCache(cPath, fresh)
	}
	return res, nil
}

// applyFixes rewrites the source files with the suggested fixes collected
// during the run and reports the tally. Running lint-fix until it applies 0
// fixes converges: ApplyFixes defers overlapping edits to the next round.
func applyFixes(res *result) {
	if len(res.fixables) == 0 {
		fmt.Println("mlstar-lint: applied 0 fix(es)")
		return
	}
	changed, applied, skipped, err := analysis.ApplyFixes(res.fset, res.fixables, os.ReadFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlstar-lint: %v\n", err)
		os.Exit(2)
	}
	files := make([]string, 0, len(changed))
	for f := range changed { //mlstar:nolint determinism -- keys sorted before use
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if err := os.WriteFile(f, changed[f], 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mlstar-lint: writing %s: %v\n", f, err)
			os.Exit(2)
		}
	}
	fmt.Printf("mlstar-lint: applied %d fix(es) in %d file(s), skipped %d\n", applied, len(files), skipped)
}
