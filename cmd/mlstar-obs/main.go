// Command mlstar-obs replays a superstep event log (the JSONL written by
// internal/obs, e.g. via the -obs flag of mlstar-bench/mlstar-repro or the
// /events endpoint) and renders it offline:
//
//   - the bottleneck attribution report (default, text; -json for the
//     machine-readable form), which classifies each run's dominant cost as
//     driver-bound (the paper's B1/B2 bottlenecks), network-bound, or
//     compute-bound;
//   - the deterministic metrics registry rebuilt from the events, in
//     Prometheus text exposition (-metrics);
//   - the repo's standard SVG views regenerated from the log alone:
//     convergence curve (-curve) and Figure-3 gantt chart (-gantt);
//   - on causally-enriched logs (recorded with -causal), the message-level
//     critical-path report (-critpath) and the what-if re-timing table
//     (-whatif), both computed by internal/causal.
//
// Usage:
//
//	mlstar-obs -in events.jsonl                 # attribution report
//	mlstar-obs -in events.jsonl -json           # ... as JSON
//	mlstar-obs -in events.jsonl -metrics        # /metrics exposition
//	mlstar-obs -in events.jsonl -gantt f3.svg   # gantt SVG from the log
//	mlstar-obs -in events.jsonl -curve c.svg    # convergence SVG
//	mlstar-obs -in events.jsonl -critpath       # critical-path report
//	mlstar-obs -in events.jsonl -whatif         # what-if re-timing table
//	mlstar-obs -in events.jsonl -serve :8080    # live dashboard over the log
//
// Everything is derived from the event log, so two runs that produced
// byte-identical logs produce byte-identical reports — the golden-file
// tests in internal/bench rely on exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mllibstar/internal/causal"
	"mllibstar/internal/metrics"
	"mllibstar/internal/obs"
	"mllibstar/internal/obs/obshttp"
)

func main() {
	var (
		in      = flag.String("in", "", "input event log (JSONL); required")
		asJSON  = flag.Bool("json", false, "emit the attribution report as JSON instead of text")
		metText = flag.Bool("metrics", false, "emit the rebuilt metrics registry in Prometheus text format")
		gantt   = flag.String("gantt", "", "write a Figure-3 gantt SVG regenerated from the log to this path")
		curve   = flag.String("curve", "", "write a convergence-curve SVG regenerated from the log to this path")
		crit    = flag.Bool("critpath", false, "emit the critical-path report (needs a log recorded with -causal)")
		whatif  = flag.Bool("whatif", false, "emit the what-if re-timing table (needs a log recorded with -causal)")
		topN    = flag.Int("top", 20, "number of path segments in the -critpath report")
		serve   = flag.String("serve", "", "serve the log's dashboard on this address (e.g. :8080) instead of exiting")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "mlstar-obs: -in events.jsonl is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	_ = f.Close()
	if err != nil {
		fatal(fmt.Errorf("reading %s: %v", *in, err))
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("%s: no events", *in))
	}

	if *gantt != "" {
		rec := obs.RecorderFromEvents(events)
		svg := metrics.RenderGanttSVG(rec, "per-node activity, virtual time", 1100)
		if err := os.WriteFile(*gantt, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
	}
	if *curve != "" {
		c := obs.CurveFromEvents(events)
		svg := metrics.RenderSVG([]*metrics.Curve{c}, metrics.SVGOptions{
			Title: "objective vs simulated time", LogX: true,
		})
		if err := os.WriteFile(*curve, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
	}

	if *serve != "" {
		s := obs.SinkFromEvents(events)
		addr, _, err := obshttp.Serve(*serve, s)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mlstar-obs: dashboard on http://%s/ (ctrl-C to stop)\n", addr)
		select {} // serve until interrupted
	}

	switch {
	case *crit || *whatif:
		g, err := causal.Analyze(events)
		if err != nil {
			fatal(fmt.Errorf("building causal graph: %v (record the log with -causal)", err))
		}
		if *crit {
			fmt.Print(causal.CriticalPath(g).Text(*topN))
		}
		if *whatif {
			fmt.Print(causal.WhatIfText(g, causal.WhatIf(g, causal.StandardScenarios(g))))
		}
	case *metText:
		if err := obs.SinkFromEvents(events).Registry().WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obs.Attribute(events)); err != nil {
			fatal(err)
		}
	default:
		fmt.Print(obs.Attribute(events).Text())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlstar-obs:", err)
	os.Exit(1)
}
