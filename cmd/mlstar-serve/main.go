// Command mlstar-serve runs the online scoring tier over a trained model
// checkpoint: a sharded deployment inside the deterministic simulated
// cluster, driven by the closed-loop load generator, with optional hot model
// swap mid-traffic. Every run with the same flags is bit-identical — virtual
// timings, scores, event logs, and metrics files all reproduce exactly.
//
// Usage:
//
//	mlstar-train -preset avazu -steps 20 -save-model ckpt.json
//	mlstar-serve -model ckpt.json -shards 4 -clients 8 -qps 2000 -requests 50
//	mlstar-serve -model ckpt_a.json -swap-model ckpt_b.json -swap-at 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"mllibstar"
	"mllibstar/internal/clusters"
	"mllibstar/internal/des"
	"mllibstar/internal/prof"
	"mllibstar/internal/serve"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model checkpoint to serve (from mlstar-train -save-model)")
		swapPath  = flag.String("swap-model", "", "checkpoint to hot-swap in mid-traffic (optional)")
		swapAt    = flag.Float64("swap-at", 0.05, "virtual time (seconds) at which the swap controller starts the install")
		shards    = flag.Int("shards", 4, "number of scoring shards")
		clientsN  = flag.Int("clients", 8, "number of load-generator clients")
		requests  = flag.Int("requests", 50, "requests per client")
		qps       = flag.Float64("qps", 2000, "aggregate request arrival rate (virtual seconds)")
		nnz       = flag.Int("nnz", 12, "nonzero features per generated request")
		zipfS     = flag.Float64("zipf-s", 1.2, "Zipf skew of feature popularity (>1; higher = hotter head)")
		batchMax  = flag.Int("batch-max", 8, "flush a scoring batch at this many requests")
		budget    = flag.Float64("batch-budget", 0.002, "virtual seconds from first admission to forced batch flush")
		cluster2  = flag.Bool("cluster2", false, "use the heterogeneous 10 Gbps cluster preset")
		seed      = flag.Int64("seed", 42, "load-generator seed")
	)
	pc := prof.Register(flag.CommandLine)
	flag.Parse()
	stop, err := pc.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()
	if err := run(*modelPath, *swapPath, *swapAt, *shards, *clientsN, *requests,
		*qps, *nnz, *zipfS, *batchMax, *budget, *cluster2, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		stop()
		os.Exit(1)
	}
}

func run(modelPath, swapPath string, swapAt float64, shards, clientsN, requests int,
	qps float64, nnz int, zipfS float64, batchMax int, budget float64, cluster2 bool, seed int64) error {
	if modelPath == "" {
		return fmt.Errorf("mlstar-serve: -model is required (train one with mlstar-train -save-model)")
	}
	weights, err := loadWeights(modelPath)
	if err != nil {
		return err
	}
	var swapWeights []float64
	if swapPath != "" {
		swapWeights, err = loadWeights(swapPath)
		if err != nil {
			return err
		}
		if len(swapWeights) != len(weights) {
			return fmt.Errorf("mlstar-serve: swap checkpoint has %d weights, serving %d", len(swapWeights), len(weights))
		}
	}

	spec := clusters.Cluster1(shards)
	if cluster2 {
		spec = clusters.Cluster2(shards)
	}
	sim, net, names := spec.BuildServe(shards, clientsN, nil)
	d, err := serve.New(sim, net, serve.Names{Router: names.Router, Shards: names.Shards},
		serve.Config{Dim: len(weights), BatchMax: batchMax, BatchBudget: budget}, weights)
	if err != nil {
		return err
	}
	lc := serve.LoadConfig{
		PerClient: requests, QPS: qps, NNZ: nnz, ZipfS: zipfS, ZipfV: 1, Seed: seed,
	}
	load, err := d.SpawnLoad(sim, names.Clients, lc)
	if err != nil {
		return err
	}
	if swapWeights != nil {
		sim.Spawn("serve:ctl", func(p *des.Proc) {
			p.WaitUntil(swapAt)
			d.Install(p, swapWeights)
			epoch := d.Swap(p)
			fmt.Printf("hot swap: epoch %d active at t=%.6f s\n", epoch, p.Now())
		})
	}
	end := sim.Run()

	results := load.Results()
	total := len(results)
	fmt.Printf("deployment: %d shards, %d clients, dim %d, batch max %d, budget %.4f s (%s)\n",
		shards, clientsN, len(weights), batchMax, budget, spec.Name)
	fmt.Printf("served: %d requests in %.6f virtual s  (%.0f req/s)\n",
		total, end, float64(total)/end)
	fmt.Printf("latency: p50 %.6f s   p99 %.6f s\n",
		serve.LatencyQuantile(results, 0.50), serve.LatencyQuantile(results, 0.99))
	byEpoch := map[int64]int{}
	for _, r := range results {
		byEpoch[r.Epoch]++
	}
	for e := int64(0); e <= d.Epoch(); e++ {
		fmt.Printf("epoch %d: %d requests\n", e, byEpoch[e])
	}
	fmt.Printf("traffic: %.1f KB over %d messages\n",
		net.TotalBytes()/1e3, net.TotalMessages())
	return nil
}

func loadWeights(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := mllibstar.LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m.Weights) == 0 {
		return nil, fmt.Errorf("%s: checkpoint has no weights", path)
	}
	return m.Weights, nil
}
