// Command mlstar-train trains a GLM with a chosen distributed system on a
// chosen dataset, on the simulated cluster, and reports the convergence
// curve and final accuracy.
//
// Usage:
//
//	mlstar-train -system "MLlib*" -preset kdd12 -scale 5000 -steps 50
//	mlstar-train -system MLlib -data train.libsvm -l2 0.1 -eta 4 -batch 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"mllibstar"
	"mllibstar/internal/allreduce"
	"mllibstar/internal/prof"
)

func main() {
	var (
		system    = flag.String("system", "MLlib*", "training system: MLlib, MLlib+MA, MLlib*, Petuum, Petuum*, Angel")
		preset    = flag.String("preset", "", "synthetic preset dataset: avazu, url, kddb, kdd12, wx")
		scale     = flag.Float64("scale", 5000, "preset downscale factor")
		dataPath  = flag.String("data", "", "libsvm file to train on (alternative to -preset)")
		loss      = flag.String("loss", "hinge", "loss: hinge, logistic, squared")
		l2        = flag.Float64("l2", 0, "L2 regularization strength")
		l1        = flag.Float64("l1", 0, "L1 regularization strength")
		eta       = flag.Float64("eta", 0.3, "base learning rate")
		decay     = flag.Bool("decay", true, "apply 1/sqrt(t) learning-rate decay")
		batch     = flag.Float64("batch", 0.1, "mini-batch fraction (batch-based systems)")
		steps     = flag.Int("steps", 50, "max communication steps")
		target    = flag.Float64("target", 0, "stop when the objective reaches this value (0 = off)")
		execs     = flag.Int("executors", 8, "number of executors/workers")
		cluster2  = flag.Bool("cluster2", false, "use the heterogeneous 10 Gbps cluster preset")
		adagrad   = flag.Bool("adagrad", false, "use AdaGrad as the local optimizer (MLlib*)")
		reweight  = flag.Bool("reweight", false, "Splash-style reweighted averaging (MLlib*)")
		torrent   = flag.Bool("torrent", false, "use torrent broadcast (MLlib)")
		stale     = flag.Int("staleness", 0, "SSP staleness (parameter-server systems)")
		seed      = flag.Int64("seed", 7, "random seed")
		csvOut    = flag.String("csv", "", "write the convergence curve CSV to this file")
		gantt     = flag.Bool("gantt", false, "print an ASCII gantt chart of the run")
		saveModel = flag.String("save-model", "", "write the trained model checkpoint (JSON) to this file; serve it with mlstar-serve -model")
	)
	pc := prof.Register(flag.CommandLine)
	flag.Parse()
	stop, err := pc.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()

	ds, err := loadDataset(*preset, *scale, *dataPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Printf("dataset: %s\n", st)

	// The model size is known now, so the chunk count can be checked against
	// the smallest AllReduce partition (a clear error beats a silent clamp).
	if allreduce.Enabled() {
		if err := allreduce.ValidateChunks(allreduce.Chunks(), ds.Features, *execs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	cl := mllibstar.Cluster1(*execs)
	if *cluster2 {
		cl = mllibstar.Cluster2(*execs)
	}
	cfg := mllibstar.Config{
		System:           mllibstar.System(*system),
		Cluster:          cl,
		Loss:             *loss,
		L2:               *l2,
		L1:               *l1,
		Eta:              *eta,
		Decay:            *decay,
		BatchFraction:    *batch,
		MaxSteps:         *steps,
		TargetObjective:  *target,
		AdaGrad:          *adagrad,
		Reweight:         *reweight,
		TorrentBroadcast: *torrent,
		Staleness:        *stale,
		Seed:             *seed,
	}
	var rec = mllibstar.NewTrace()
	if *gantt {
		cfg.Trace = rec
	}
	res, err := mllibstar.Train(ds, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("system: %s  executors: %d\n", *system, *execs)
	fmt.Printf("communication steps: %d   simulated time: %.3f s   traffic: %.1f MB   updates: %d\n",
		res.CommSteps, res.SimTime, res.TotalBytes/1e6, res.Updates)
	final := res.Curve.Final()
	fmt.Printf("objective: start %.4f -> final %.4f (best %.4f)\n",
		res.Curve.Points[0].Objective, final.Objective, res.Curve.Best())
	fmt.Printf("training accuracy: %.2f%%\n", res.Model.Accuracy(ds.Examples)*100)

	if *gantt {
		fmt.Println(mllibstar.RenderGantt(rec, 110))
	}
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, []byte(res.Curve.CSV(true)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.Model.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *saveModel)
	}
}

func loadDataset(preset string, scale float64, path string) (*mllibstar.Dataset, error) {
	switch {
	case preset != "" && path != "":
		return nil, fmt.Errorf("use either -preset or -data, not both")
	case preset != "":
		return mllibstar.PresetDataset(preset, scale)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mllibstar.ReadLibSVM(f, path)
	default:
		return mllibstar.PresetDataset("avazu", scale)
	}
}
