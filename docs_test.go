package mllibstar_test

// The docs suite keeps the prose honest: every intra-repo link in the
// top-level documents must resolve to a real file, and every command the
// docs tell the reader to type — `go run ./...` package paths, `make`
// targets, `mlstar-bench -exp` ids — must reference something that exists.
// It runs as part of `make docs` (and therefore `make check` and CI), so a
// renamed package, deleted target, or retired experiment id fails the build
// instead of rotting in the README.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mllibstar/internal/analysis"
	"mllibstar/internal/analysis/buflife"
	"mllibstar/internal/analysis/costcharge"
	"mllibstar/internal/analysis/determinism"
	"mllibstar/internal/analysis/detflow"
	"mllibstar/internal/analysis/errdiscard"
	"mllibstar/internal/analysis/floateq"
	"mllibstar/internal/analysis/gocapture"
	"mllibstar/internal/analysis/obspure"
	"mllibstar/internal/analysis/pkgdoc"
	"mllibstar/internal/analysis/vecalias"
	"mllibstar/internal/bench"
)

// docFiles are the documents `make docs` guards. They all live at the repo
// root, so their relative links resolve against the test's working
// directory.
var docFiles = []string{"README.md", "ARCHITECTURE.md", "EXPERIMENTS.md", "DESIGN.md", "SERVING.md"}

var linkRe = regexp.MustCompile(`\[[^\]\n]*\]\(([^)\s]+)\)`)

// TestDocsLinks verifies that every markdown link to a repo-local path
// points at an existing file or directory. External (http/https/mailto)
// links and pure in-page anchors are skipped.
func TestDocsLinks(t *testing.T) {
	for _, doc := range docFiles {
		text, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(text), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken intra-repo link %q: %v", doc, m[1], err)
			}
		}
	}
}

// codeSnippets extracts the command-bearing text of a markdown document:
// every line inside a fenced code block plus every inline `code` span.
func codeSnippets(t *testing.T, doc string) []string {
	t.Helper()
	text, err := os.ReadFile(doc)
	if err != nil {
		t.Fatalf("reading %s: %v", doc, err)
	}
	inlineRe := regexp.MustCompile("`([^`\n]+)`")
	var out []string
	inFence := false
	for _, line := range strings.Split(string(text), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			out = append(out, line)
			continue
		}
		for _, m := range inlineRe.FindAllStringSubmatch(line, -1) {
			out = append(out, m[1])
		}
	}
	if inFence {
		t.Errorf("%s: unclosed code fence", doc)
	}
	return out
}

// makeTargets parses the Makefile's rule names.
func makeTargets(t *testing.T) map[string]bool {
	t.Helper()
	text, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatalf("reading Makefile: %v", err)
	}
	targets := map[string]bool{}
	ruleRe := regexp.MustCompile(`(?m)^([A-Za-z0-9_.-]+):`)
	for _, m := range ruleRe.FindAllStringSubmatch(string(text), -1) {
		targets[m[1]] = true
	}
	return targets
}

// TestDocsAnalyzers verifies that README.md and ARCHITECTURE.md document
// every analyzer in the mlstar-lint suite by name — adding an analyzer
// without telling readers what gate their code now has to pass fails here.
func TestDocsAnalyzers(t *testing.T) {
	suite := []*analysis.Analyzer{
		determinism.Analyzer, detflow.Analyzer,
		vecalias.Analyzer, buflife.Analyzer, costcharge.Analyzer,
		floateq.Analyzer, errdiscard.Analyzer, gocapture.Analyzer,
		obspure.Analyzer, pkgdoc.Analyzer,
	}
	for _, doc := range []string{"README.md", "ARCHITECTURE.md"} {
		text, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		for _, a := range suite {
			if !strings.Contains(string(text), a.Name) {
				t.Errorf("%s: analyzer %q is in the lint suite but never mentioned", doc, a.Name)
			}
		}
	}
}

// sourceFlags parses every flag definition in the CLIs (cmd/*) and the
// shared engine flags (internal/prof), returning the set of flag names a
// binary in this repository actually accepts.
func sourceFlags(t *testing.T) map[string]bool {
	t.Helper()
	defRe := regexp.MustCompile(`\.(?:String|Int64|Int|Float64|Bool|Duration)\("([a-z][a-z0-9-]*)"`)
	varRe := regexp.MustCompile(`\.Var\([^,]+,\s*"([a-z][a-z0-9-]*)"`)
	files, err := filepath.Glob("cmd/*/*.go")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, "internal/prof/prof.go")
	flags := map[string]bool{}
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("reading %s: %v", f, err)
		}
		for _, m := range defRe.FindAllStringSubmatch(string(text), -1) {
			flags[m[1]] = true
		}
		for _, m := range varRe.FindAllStringSubmatch(string(text), -1) {
			flags[m[1]] = true
		}
	}
	if len(flags) == 0 {
		t.Fatal("sourceFlags found no flag definitions — parsing regexes broken?")
	}
	return flags
}

// goToolFlags are flags of the go toolchain itself (and the repo's test
// binaries) that dev commands in the docs legitimately quote.
var goToolFlags = map[string]bool{
	"bench": true, "benchmem": true, "benchtime": true, "run": true,
	"race": true, "fuzz": true, "fuzztime": true, "update": true,
	"count": true, "v": true,
}

// TestDocsFlags verifies that every `-flag` the docs quote — in fenced
// code blocks, inline code spans, and the flag tables — exists in some
// CLI's flag set. A renamed or removed flag fails here instead of
// surviving as stale documentation.
func TestDocsFlags(t *testing.T) {
	known := sourceFlags(t)
	flagRe := regexp.MustCompile(`(?:^|[^\w-])-([a-z][a-z0-9-]*)`)
	for _, doc := range docFiles {
		for _, snippet := range codeSnippets(t, doc) {
			if i := strings.Index(snippet, "#"); i >= 0 {
				snippet = snippet[:i]
			}
			for _, m := range flagRe.FindAllStringSubmatch(snippet, -1) {
				name := m[1]
				if known[name] || goToolFlags[name] {
					continue
				}
				t.Errorf("%s: flag -%s is quoted but no CLI defines it", doc, name)
			}
		}
	}
}

// TestDocsCommands verifies the commands quoted in the docs:
//
//   - `go run ./<path>` must name a directory that exists,
//   - `make <target>` must name a rule in the Makefile,
//   - `-exp <id>` must name a registered experiment (globs, brace
//     expansions, and `<id>` placeholders are skipped).
func TestDocsCommands(t *testing.T) {
	targets := makeTargets(t)
	exps := map[string]bool{}
	for _, e := range bench.All() {
		exps[e.ID] = true
	}
	for _, doc := range docFiles {
		for _, snippet := range codeSnippets(t, doc) {
			for _, cmd := range strings.Split(snippet, "&&") {
				if i := strings.Index(cmd, "#"); i >= 0 {
					cmd = cmd[:i]
				}
				fields := strings.Fields(strings.TrimPrefix(strings.TrimSpace(cmd), "$ "))
				if len(fields) == 0 {
					continue
				}
				switch {
				case fields[0] == "go" && len(fields) >= 3 && fields[1] == "run":
					for _, f := range fields[2:] {
						if !strings.HasPrefix(f, "./") {
							continue
						}
						if st, err := os.Stat(filepath.FromSlash(f)); err != nil || !st.IsDir() {
							t.Errorf("%s: `go run %s`: no such package directory", doc, f)
						}
						break
					}
				case fields[0] == "make":
					for _, f := range fields[1:] {
						if strings.HasPrefix(f, "-") {
							continue
						}
						if !targets[f] {
							t.Errorf("%s: `make %s`: no such Makefile target", doc, f)
						}
					}
				}
				for i, f := range fields {
					if f != "-exp" || i+1 >= len(fields) {
						continue
					}
					id := fields[i+1]
					if strings.ContainsAny(id, "*{}<>") {
						continue // glob / brace expansion / placeholder
					}
					if !exps[id] {
						t.Errorf("%s: `-exp %s`: no such experiment id", doc, id)
					}
				}
			}
		}
	}
}
