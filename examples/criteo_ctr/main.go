// Click-through-rate prediction: the workload class that motivates the
// paper (avazu is a CTR dataset). Trains L2-regularized logistic regression
// with the baseline MLlib and with MLlib*, and prints the head-to-head
// convergence — a miniature of the paper's Figure 4(a).
package main

import (
	"fmt"
	"log"

	"mllibstar"
)

func main() {
	// A scaled-down replica of the avazu CTR dataset (Table I): determined
	// (many more clicks than features), ~15 nonzeros per impression.
	ds, err := mllibstar.PresetDataset("avazu", 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CTR dataset:", ds.Stats())

	type outcome struct {
		system mllibstar.System
		res    *mllibstar.Result
	}
	var outcomes []outcome
	for _, run := range []struct {
		system mllibstar.System
		eta    float64
		batch  float64
		steps  int
	}{
		// MLlib applies one update per step, so it gets a larger rate, a
		// mini batch, and a much larger step budget (as in the paper's grid
		// search).
		{mllibstar.MLlib, 4.0, 0.1, 200},
		{mllibstar.MLlibStar, 0.1, 0, 20},
	} {
		res, err := mllibstar.Train(ds, mllibstar.Config{
			System:        run.system,
			Cluster:       mllibstar.Cluster1(8),
			Loss:          "logistic",
			L2:            0.01,
			Eta:           run.eta,
			Decay:         true,
			BatchFraction: run.batch,
			MaxSteps:      run.steps,
			Seed:          7,
		})
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{run.system, res})
		fmt.Printf("%-8s %4d steps  %8.3f sim-s  objective %.4f -> %.4f  accuracy %.1f%%\n",
			run.system, res.CommSteps, res.SimTime,
			res.Curve.Points[0].Objective, res.Curve.Final().Objective,
			res.Model.Accuracy(ds.Examples)*100)
	}

	// Where does MLlib stand when MLlib* has already converged?
	star := outcomes[1].res
	base := outcomes[0].res
	target := star.Curve.Final().Objective + 0.005
	if steps, ok := base.Curve.StepsToReach(target); ok {
		tm, _ := base.Curve.TimeToReach(target)
		starTm, _ := star.Curve.TimeToReach(target)
		fmt.Printf("\nto reach objective %.4f: MLlib* %d steps (%.3fs), MLlib %d steps (%.3fs) — %.0fx slower\n",
			target, star.CommSteps, starTm, steps, tm, tm/starTm)
	} else {
		fmt.Printf("\nMLlib did not reach MLlib*'s final objective %.4f within its budget (best %.4f)\n",
			target, base.Curve.Best())
	}
}
