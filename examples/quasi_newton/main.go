// Quasi-Newton training: the paper's conclusion asks whether the MLlib*
// techniques could also speed up spark.ml's L-BFGS. This example trains
// L2-regularized logistic regression three ways — first-order MLlib*,
// L-BFGS with spark.ml's driver-centric aggregation, and L-BFGS with
// MLlib*'s AllReduce — and compares iterations, time, and ranking quality
// (AUC).
package main

import (
	"fmt"
	"log"

	"mllibstar"
)

func main() {
	ds, err := mllibstar.PresetDataset("kdd12", 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", ds.Stats())
	fmt.Println()

	for _, run := range []struct {
		system mllibstar.System
		eta    float64
		steps  int
	}{
		{mllibstar.MLlibStar, 0.1, 25},
		{mllibstar.LBFGS, 0, 25},     // eta unused: line search picks steps
		{mllibstar.LBFGSStar, 0, 25}, // same algorithm, AllReduce gradients
	} {
		cfg := mllibstar.Config{
			System:   run.system,
			Cluster:  mllibstar.Cluster1(8),
			Loss:     "logistic",
			L2:       0.01,
			Eta:      run.eta,
			Decay:    true,
			MaxSteps: run.steps,
			Seed:     7,
		}
		if cfg.Eta == 0 {
			cfg.Eta = 1 // validated but unused by the L-BFGS line search
		}
		res, err := mllibstar.Train(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %3d iters  %8.4f sim-s  objective %.4f  AUC %.4f  traffic %6.1f MB\n",
			run.system, res.CommSteps, res.SimTime,
			res.Curve.Final().Objective, res.Model.AUC(ds.Examples), res.TotalBytes/1e6)
	}
	fmt.Println("\nShape to look for: the two L-BFGS variants land on the same objective (same")
	fmt.Println("iterates); the AllReduce variant gets there in a fraction of the simulated time;")
	fmt.Println("L-BFGS needs far fewer iterations than first-order MLlib* on a smooth objective.")
}
