// Quickstart: train a linear SVM with MLlib* on synthetic data and inspect
// the result — the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"mllibstar"
)

func main() {
	// A synthetic classification dataset: 10,000 examples, 1,000 features,
	// ~10 nonzeros each, generated from a planted linear model.
	ds := mllibstar.GenerateDataset("quickstart", 10000, 1000, 10, 42)
	fmt.Println("dataset:", ds.Stats())

	// Train with MLlib* (model averaging + AllReduce) on the paper's
	// 8-executor, 1 Gbps cluster. Everything — gradients, shuffles, BSP
	// barriers — runs for real on the simulated cluster.
	res, err := mllibstar.Train(ds, mllibstar.Config{
		System:   mllibstar.MLlibStar,
		Cluster:  mllibstar.Cluster1(8),
		Loss:     "hinge",
		L2:       0.01,
		Eta:      0.1,
		Decay:    true,
		MaxSteps: 20,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained in %d communication steps, %.3f simulated seconds\n",
		res.CommSteps, res.SimTime)
	fmt.Printf("objective: %.4f -> %.4f\n",
		res.Curve.Points[0].Objective, res.Curve.Final().Objective)
	fmt.Printf("training accuracy: %.1f%%\n", res.Model.Accuracy(ds.Examples)*100)
	fmt.Printf("network traffic: %.1f MB over %d steps\n", res.TotalBytes/1e6, res.CommSteps)

	// Score a single example.
	e := ds.Examples[0]
	fmt.Printf("example 0: label %+g, margin %+.3f, predicted %+g\n",
		e.Label, res.Model.Predict(e), res.Model.Classify(e))
}
