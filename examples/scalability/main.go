// Scalability on a production-style workload: a miniature of the paper's
// Figure 6. Trains the WX-like workload on the heterogeneous cluster with
// 8, 16, and 32 machines and reports how far below linear the speedup is —
// and that the SendGradient baseline can even get slower with more
// machines.
package main

import (
	"fmt"
	"log"

	"mllibstar"
)

func main() {
	ds, err := mllibstar.PresetDataset("wx", 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("WX-like dataset:", ds.Stats())
	fmt.Println()

	machines := []int{8, 16, 32}
	for _, system := range []mllibstar.System{mllibstar.MLlibStar, mllibstar.MLlib} {
		fmt.Printf("%s:\n", system)
		base := 0.0
		for _, m := range machines {
			eta, batch, steps := 0.3, 0.0, 40
			if system == mllibstar.MLlib {
				eta, batch, steps = 48, 0.1, 400
			}
			res, err := mllibstar.Train(ds, mllibstar.Config{
				System:        system,
				Cluster:       mllibstar.Cluster2(m),
				Loss:          "hinge",
				Eta:           eta,
				Decay:         true,
				BatchFraction: batch,
				MaxSteps:      steps,
				// Stop at a fixed quality bar so times are comparable.
				TargetObjective: 0.35,
				Seed:            7,
			})
			if err != nil {
				log.Fatal(err)
			}
			if m == machines[0] {
				base = res.SimTime
			}
			fmt.Printf("  %3d machines: %8.3f sim-s to objective %.2f  (speedup %.2fx, linear would be %.1fx)\n",
				m, res.SimTime, res.Curve.Final().Objective,
				base/res.SimTime, float64(m)/float64(machines[0]))
		}
	}
	fmt.Println("\nShape to look for: speedups far below linear (stragglers + fixed per-step")
	fmt.Println("overheads), with the SendGradient baseline degrading the most.")
}
