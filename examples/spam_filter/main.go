// Spam/malicious-URL filtering: an underdetermined workload (the url
// dataset of Table I has more features than examples). Shows the paper's
// observation that regularization changes the game on ill-conditioned
// problems: without L2 the baseline MLlib stalls while MLlib* converges;
// with L2 both converge and the gap narrows.
package main

import (
	"fmt"
	"log"

	"mllibstar"
)

func main() {
	// A scaled-down replica of the url dataset: more features than
	// examples, ~115 nonzeros per example (bag-of-tokens style).
	ds, err := mllibstar.PresetDataset("url", 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("URL dataset:", ds.Stats())

	// Both systems get the same simulated wall-clock budget, so the numbers
	// answer: "what quality does each system buy with the same cluster
	// time?"
	const budget = 0.2 // simulated seconds
	for _, l2 := range []float64{0, 0.1} {
		fmt.Printf("\n=== L2 = %g (budget %.1f simulated s) ===\n", l2, budget)
		for _, run := range []struct {
			system mllibstar.System
			eta    float64
			batch  float64
		}{
			{mllibstar.MLlib, 8.0, 0.1},
			{mllibstar.MLlibStar, 0.1, 0},
		} {
			eta := run.eta
			if l2 > 0 && run.system == mllibstar.MLlib {
				eta = 4.0
			}
			res, err := mllibstar.Train(ds, mllibstar.Config{
				System:        run.system,
				Cluster:       mllibstar.Cluster1(8),
				Loss:          "hinge",
				L2:            l2,
				Eta:           eta,
				Decay:         true,
				BatchFraction: run.batch,
				MaxSteps:      100000,
				MaxSimTime:    budget,
				Seed:          7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %5d steps in %6.3f sim-s  final objective %.4f  accuracy %.1f%%\n",
				run.system, res.CommSteps, res.SimTime,
				res.Curve.Final().Objective, res.Model.Accuracy(ds.Examples)*100)
		}
	}
	fmt.Println("\nShape to look for: with an equal time budget MLlib* reaches a far lower")
	fmt.Println("objective at L2=0 (underdetermined problem, SendGradient starves); with")
	fmt.Println("L2=0.1 the problem is better conditioned and the gap narrows.")
}
