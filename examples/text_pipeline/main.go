// End-to-end text pipeline: raw categorical tokens → hashing trick →
// train/test split → distributed training → held-out evaluation → model
// persistence. This is the workflow that produces datasets like avazu in
// the first place, expressed entirely through the public API.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mllibstar"
)

// synthesizeLogs fabricates ad-impression-style token logs: each row is a
// bag of categorical tokens (site, device, hour, ...) whose hidden
// click-propensity depends on a few of them.
func synthesizeLogs(n int, rng *rand.Rand) (labels []float64, rows [][]string) {
	sites := []string{"news", "games", "mail", "video", "shop", "social"}
	devices := []string{"ios", "android", "desktop"}
	for i := 0; i < n; i++ {
		site := sites[rng.Intn(len(sites))]
		device := devices[rng.Intn(len(devices))]
		hour := rng.Intn(24)
		tokens := []string{
			"site=" + site,
			"device=" + device,
			fmt.Sprintf("hour=%d", hour),
			fmt.Sprintf("slot=%d", rng.Intn(50)),
		}
		// Hidden truth: gamers on mobile at night click; mail on desktop
		// during office hours does not.
		score := 0.0
		if site == "games" {
			score += 1.5
		}
		if site == "mail" {
			score -= 1.5
		}
		if device != "desktop" {
			score += 0.7
		}
		if hour >= 20 || hour <= 2 {
			score += 0.8
		}
		label := -1.0
		if score+rng.NormFloat64() > 0.5 {
			label = 1
		}
		labels = append(labels, label)
		rows = append(rows, tokens)
	}
	return labels, rows
}

func main() {
	rng := rand.New(rand.NewSource(42))
	labels, rows := synthesizeLogs(20000, rng)

	// Hash raw tokens into a 2^15-dimensional sparse space.
	ds, err := mllibstar.DatasetFromTokens("impressions", 1<<15, labels, rows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hashed dataset:", ds.Stats())

	train, test, err := mllibstar.SplitDataset(ds, 0.2, 7)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mllibstar.Train(train, mllibstar.Config{
		System:   mllibstar.MLlibStar,
		Cluster:  mllibstar.Cluster1(8),
		Loss:     "logistic",
		L2:       0.0001,
		AdaGrad:  true, // adaptive rates suit hashed categorical features
		Eta:      0.3,
		MaxSteps: 15,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %d steps (%.3f simulated s)\n", res.CommSteps, res.SimTime)
	fmt.Printf("train accuracy %.1f%%, held-out accuracy %.1f%%, held-out AUC %.4f\n",
		res.Model.Accuracy(train.Examples)*100,
		res.Model.Accuracy(test.Examples)*100,
		res.Model.AUC(test.Examples))

	// Persist and reload the model, then serve a prediction.
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		log.Fatal(err)
	}
	served, err := mllibstar.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	h, _ := mllibstar.NewHasher(1 << 15)
	probe := h.Example(0, []string{"site=games", "device=ios", "hour=23", "slot=3"})
	fmt.Printf("served prediction for a late-night mobile gamer: margin %+.3f -> click=%v\n",
		served.Predict(probe), served.Classify(probe) > 0)
}
