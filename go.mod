module mllibstar

go 1.22
