// Package allreduce implements the paper's distributed aggregation: an
// AllReduce built from two rounds of shuffle among the executors
// (Algorithm 3), with no central node.
//
//   - Reduce-Scatter: the model is logically split into k contiguous
//     partitions, partition j owned by executor j. Each executor sends every
//     partition except its own to that partition's owner, then combines the
//     k received copies of the partition it owns.
//   - AllGather: each owner broadcasts its combined partition to every other
//     executor, after which all executors hold the identical global model.
//
// The total traffic per call is 2·(k−1)·m/k bytes per executor — the same
// 2·k·m aggregate the centralized pattern moves, but with no single link
// serializing it, which is where MLlib*'s latency win comes from.
package allreduce

import (
	"fmt"

	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/par"
	"mllibstar/internal/trace"
	"mllibstar/internal/vec"
)

// piece is a model partition in flight during AllGather.
type piece struct {
	from int
	vals []float64
}

// Average replaces local, in place, with the element-wise average of the
// local vectors across all executors. It must be called from within the
// same stage on every executor in execs, with self the caller's index and a
// name unique to this collective call (it namespaces the shuffle tags).
// Message payloads are shared between sender and receiver and must be
// treated as immutable.
func Average(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local []float64) {
	reduceScatterGather(p, ex, execs, self, name, local, true)
}

// Sum is Average without the final division: local becomes the element-wise
// sum across executors (the model-summation rule of unstarred Petuum, made
// available for ablations).
func Sum(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local []float64) {
	reduceScatterGather(p, ex, execs, self, name, local, false)
}

func reduceScatterGather(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local []float64, average bool) {
	k := len(execs)
	if self < 0 || self >= k {
		panic(fmt.Sprintf("allreduce: self %d out of %d executors", self, k))
	}
	dim := len(local)
	if k == 1 {
		return // single executor: the local vector already is the result
	}

	// Phase 1 — Reduce-Scatter: one shuffle round shipping each foreign
	// partition to its owner.
	outgoing := make([]engine.Block, 0, k-1)
	for j := 0; j < k; j++ {
		if j == self {
			continue
		}
		lo, hi := vec.PartitionRange(dim, k, j)
		chunk := append([]float64(nil), local[lo:hi]...)
		outgoing = append(outgoing, engine.Block{
			To: j, Bytes: float64(hi-lo) * engine.FloatBytes, Payload: chunk,
		})
	}
	lo, hi := vec.PartitionRange(dim, k, self)
	own := append([]float64(nil), local[lo:hi]...)
	// Exchange returns all k−1 foreign copies at once, so the whole fold
	// (plus the averaging scale) is one pure closure: own is this shard's
	// private buffer and the received chunks were copied by their senders.
	// The per-block charges are kept as separate virtual-time events — the
	// exact charge sequence of the sequential engine — while the arithmetic
	// overlaps them on the offload pool.
	blocks := engine.Exchange(p, ex, execs, self, "rs:"+name, outgoing)
	h := par.Do(func() {
		for _, b := range blocks {
			vec.AddScaled(own, b.Payload.([]float64), 1)
		}
		if average {
			vec.Scale(own, 1/float64(k))
		}
	})
	for range blocks {
		ex.ChargeKind(p, float64(hi-lo), trace.Aggregate, name)
	}
	h.Join()

	// Phase 2 — AllGather: a second shuffle round broadcasting the combined
	// partition to everyone.
	outgoing = outgoing[:0]
	for j := 0; j < k; j++ {
		if j == self {
			continue
		}
		outgoing = append(outgoing, engine.Block{
			To: j, Bytes: float64(hi-lo) * engine.FloatBytes, Payload: piece{from: self, vals: own},
		})
	}
	copy(local[lo:hi], own)
	// Same pattern for the gather: all received pieces land in disjoint
	// ranges of local, so one closure installs them while the per-piece
	// charges replay the sequential event sequence.
	gathered := engine.Exchange(p, ex, execs, self, "ag:"+name, outgoing)
	h = par.Do(func() {
		for _, b := range gathered {
			pc := b.Payload.(piece)
			plo, phi := vec.PartitionRange(dim, k, pc.from)
			copy(local[plo:phi], pc.vals)
		}
	})
	for _, b := range gathered {
		pc := b.Payload.(piece)
		plo, phi := vec.PartitionRange(dim, k, pc.from)
		ex.ChargeKind(p, float64(phi-plo), trace.Update, name)
	}
	h.Join()
}
