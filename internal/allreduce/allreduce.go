// Package allreduce implements the paper's distributed aggregation: an
// AllReduce built from two rounds of shuffle among the executors
// (Algorithm 3), with no central node.
//
//   - Reduce-Scatter: the model is logically split into k contiguous
//     partitions, partition j owned by executor j. Each executor sends every
//     partition except its own to that partition's owner, then combines the
//     k received copies of the partition it owns.
//   - AllGather: each owner broadcasts its combined partition to every other
//     executor, after which all executors hold the identical global model.
//
// The total traffic per call is 2·(k−1)·m/k bytes per executor — the same
// 2·k·m aggregate the centralized pattern moves, but with no single link
// serializing it, which is where MLlib*'s latency win comes from.
//
// # Sparse model-delta exchange
//
// When internal/sparse is enabled, both shuffle rounds encode their chunks
// relative to a reference vector the caller supplies (AverageDelta): the
// last synchronized model, which every endpoint already holds. A chunk whose
// delta is sparse enough ships as an index–value overlay (12·nnz bytes
// instead of 8·(hi−lo)); receivers decode back to dense before folding, so
// the arithmetic — and therefore the result — is bit-identical to the dense
// path. Only the charged wire bytes, and hence virtual time, change. The
// nil-reference forms (Average, Sum) compress by exact-zero coordinates,
// which pays off for gradient partials and for model coordinates no example
// ever touches.
//
// To keep results independent of message timing, the Reduce-Scatter fold
// combines the received chunks in ascending sender order — a canonical
// order both the sparse and dense paths share — rather than arrival order.
// The per-chunk charges still replay the arrival sequence, so virtual time
// is untouched by the reordering.
package allreduce

import (
	"fmt"
	"sort"

	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/par"
	"mllibstar/internal/sparse"
	"mllibstar/internal/trace"
	"mllibstar/internal/vec"
)

// piece is a model partition in flight during AllGather.
type piece struct {
	from int
	enc  sparse.Enc
}

// IsSparse reports the wire encoding of the carried partition, so telemetry
// books the message under the right encoding (see obs.EncodingOf).
func (pc piece) IsSparse() bool { return pc.enc.IsSparse() }

// Average replaces local, in place, with the element-wise average of the
// local vectors across all executors. It must be called from within the
// same stage on every executor in execs, with self the caller's index and a
// name unique to this collective call (it namespaces the shuffle tags).
// Message payloads are shared between sender and receiver and must be
// treated as immutable.
func Average(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local []float64) {
	reduceScatterGather(p, ex, execs, self, name, local, nil, true)
}

// AverageDelta is Average with a reference vector for sparse delta
// encoding: ref must hold identical bits on every executor (the last
// synchronized model) and must not be mutated while the collective runs.
// The result is bit-identical to Average; when internal/sparse is enabled,
// chunks whose delta against ref is sparse ship compressed.
func AverageDelta(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local, ref []float64) {
	if ref != nil && len(ref) != len(local) {
		panic(fmt.Sprintf("allreduce: ref length %d, local %d", len(ref), len(local)))
	}
	reduceScatterGather(p, ex, execs, self, name, local, ref, true)
}

// Sum is Average without the final division: local becomes the element-wise
// sum across executors (the model-summation rule of unstarred Petuum, made
// available for ablations).
func Sum(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local []float64) {
	reduceScatterGather(p, ex, execs, self, name, local, nil, false)
}

func reduceScatterGather(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local, ref []float64, average bool) {
	k := len(execs)
	if self < 0 || self >= k {
		panic(fmt.Sprintf("allreduce: self %d out of %d executors", self, k))
	}
	dim := len(local)
	if k == 1 {
		return // single executor: the local vector already is the result
	}
	if C := Chunks(); Enabled() && C > 1 {
		// Chunks cannot outnumber the coordinates of the smallest partition;
		// when a model is too small to cut, the sequential path below runs.
		if minPart := dim / k; minPart < C {
			C = minPart
		}
		if C > 1 {
			pipelinedRSG(p, ex, execs, self, name, local, ref, average, C)
			return
		}
	}
	// refRange returns ref restricted to executor j's partition (nil when no
	// reference is in play).
	refRange := func(lo, hi int) []float64 {
		if ref == nil {
			return nil
		}
		return ref[lo:hi]
	}

	// Phase 1 — Reduce-Scatter: one shuffle round shipping each foreign
	// partition to its owner, delta-encoded against the owner's slice of the
	// shared reference when that is smaller.
	outgoing := make([]engine.Block, 0, k-1)
	for j := 0; j < k; j++ {
		if j == self {
			continue
		}
		lo, hi := vec.PartitionRange(dim, k, j)
		enc := sparse.EncodeCopy(local[lo:hi], refRange(lo, hi))
		outgoing = append(outgoing, engine.Block{
			To: j, Bytes: enc.WireBytes(), Payload: enc,
		})
	}
	lo, hi := vec.PartitionRange(dim, k, self)
	own := append([]float64(nil), local[lo:hi]...)
	refOwn := refRange(lo, hi)
	// Exchange returns all k−1 foreign copies at once, so the whole fold
	// (plus the averaging scale) is one pure closure: own is this shard's
	// private buffer and the received chunks were copied (or compressed) by
	// their senders. The fold decodes each chunk and combines in ascending
	// sender order — canonical, so the summation order cannot depend on how
	// encoding sizes shift arrival times. The per-block charges are kept as
	// separate virtual-time events — the exact charge sequence of the
	// sequential engine — while the arithmetic overlaps them on the offload
	// pool.
	blocks := engine.Exchange(p, ex, execs, self, "rs:"+name, outgoing)
	folded := append([]engine.Block(nil), blocks...)
	sort.Slice(folded, func(a, b int) bool { return folded[a].From < folded[b].From })
	h := par.Do(func() {
		for _, b := range folded {
			vec.AddScaled(own, b.Payload.(sparse.Enc).Dense(refOwn), 1)
		}
		if average {
			vec.Scale(own, 1/float64(k))
		}
	})
	// A sparse-encoded chunk's charge models its decode, so it is traced as
	// Encode; dense chunks keep the Aggregate kind. The charges themselves
	// replay the arrival sequence either way.
	for _, b := range blocks {
		kind := trace.Aggregate
		if b.Payload.(sparse.Enc).IsSparse() {
			kind = trace.Encode
		}
		ex.ChargeKind(p, float64(hi-lo), kind, name)
	}
	h.Join()

	// Phase 2 — AllGather: a second shuffle round broadcasting the combined
	// partition to everyone. After averaging the chunk is usually dense
	// relative to ref (division changes almost every touched bit), so the
	// adaptive switch mostly ships these legs dense; coordinates that are
	// exactly unchanged (e.g. features no example touches) still compress.
	ownEnc := sparse.EncodeShared(own, refOwn)
	outgoing = outgoing[:0]
	for j := 0; j < k; j++ {
		if j == self {
			continue
		}
		outgoing = append(outgoing, engine.Block{
			To: j, Bytes: ownEnc.WireBytes(), Payload: piece{from: self, enc: ownEnc},
		})
	}
	copy(local[lo:hi], own)
	// Same pattern for the gather: all received pieces land in disjoint
	// ranges of local — order-insensitive by construction — so one closure
	// installs them while the per-piece charges replay the sequential event
	// sequence.
	gathered := engine.Exchange(p, ex, execs, self, "ag:"+name, outgoing)
	h = par.Do(func() {
		for _, b := range gathered {
			pc := b.Payload.(piece)
			plo, phi := vec.PartitionRange(dim, k, pc.from)
			pc.enc.DecodeInto(local[plo:phi], refRange(plo, phi))
		}
	})
	for _, b := range gathered {
		pc := b.Payload.(piece)
		plo, phi := vec.PartitionRange(dim, k, pc.from)
		kind := trace.Update
		if pc.enc.IsSparse() {
			kind = trace.Encode
		}
		ex.ChargeKind(p, float64(phi-plo), kind, name)
	}
	h.Join()
}
