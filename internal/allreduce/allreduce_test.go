package allreduce_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/clusters"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
)

// runCollective executes one stage in which every executor calls the
// collective on its row of locals, then returns the finish time.
func runCollective(k, dim int, locals [][]float64, avg bool) float64 {
	sim, cl, ctx := clusters.Test(k).Build(nil)
	var end float64
	sim.Spawn("driver", func(p *des.Proc) {
		tasks := make([]engine.Task, k)
		for i := 0; i < k; i++ {
			i := i
			tasks[i] = engine.Task{
				Exec: cl.Execs[i],
				Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
					if avg {
						allreduce.Average(p, ex, cl.Execs, i, "t", locals[i])
					} else {
						allreduce.Sum(p, ex, cl.Execs, i, "t", locals[i])
					}
					return nil, 0
				},
			}
		}
		ctx.RunStage(p, "collective", tasks)
		end = p.Now()
	})
	sim.Run()
	return end
}

func TestAverageMatchesCentralizedMean(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		dim := 1 + rng.Intn(40)
		locals := make([][]float64, k)
		want := make([]float64, dim)
		for i := range locals {
			locals[i] = make([]float64, dim)
			for j := range locals[i] {
				locals[i][j] = rng.NormFloat64()
				want[j] += locals[i][j] / float64(k)
			}
		}
		runCollective(k, dim, locals, true)
		for i := range locals {
			for j := range want {
				if math.Abs(locals[i][j]-want[j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSumMatchesCentralizedSum(t *testing.T) {
	k, dim := 4, 10
	locals := make([][]float64, k)
	for i := range locals {
		locals[i] = make([]float64, dim)
		for j := range locals[i] {
			locals[i][j] = float64(i + 1)
		}
	}
	runCollective(k, dim, locals, false)
	for i := range locals {
		for j := range locals[i] {
			if locals[i][j] != 10 { // 1+2+3+4
				t.Fatalf("locals[%d][%d] = %g, want 10", i, j, locals[i][j])
			}
		}
	}
}

func TestSingleExecutorIsIdentityAverage(t *testing.T) {
	locals := [][]float64{{1, 2, 3}}
	runCollective(1, 3, locals, true)
	if locals[0][0] != 1 || locals[0][2] != 3 {
		t.Errorf("locals = %v", locals[0])
	}
}

func TestDimSmallerThanExecutors(t *testing.T) {
	// dim < k: some partitions are empty; the collective must still work.
	k, dim := 6, 3
	locals := make([][]float64, k)
	for i := range locals {
		locals[i] = []float64{float64(i), float64(i), float64(i)}
	}
	runCollective(k, dim, locals, true)
	for i := range locals {
		for j := range locals[i] {
			if math.Abs(locals[i][j]-2.5) > 1e-12 { // mean of 0..5
				t.Fatalf("locals[%d] = %v", i, locals[i])
			}
		}
	}
}

// TestAllReduceTrafficInvariant asserts the paper's claim: the total bytes
// moved per AllReduce equal the centralized pattern's 2·k·m (up to the
// (k-1)/k factor from owners not sending to themselves).
func TestAllReduceTrafficInvariant(t *testing.T) {
	const k, dim = 8, 1000
	sim, cl, ctx := clusters.Test(k).Build(nil)
	locals := make([][]float64, k)
	for i := range locals {
		locals[i] = make([]float64, dim)
	}
	before := 0.0
	sim.Spawn("driver", func(p *des.Proc) {
		tasks := make([]engine.Task, k)
		for i := 0; i < k; i++ {
			i := i
			tasks[i] = engine.Task{Exec: cl.Execs[i], Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
				allreduce.Average(p, ex, cl.Execs, i, "t", locals[i])
				return nil, 0
			}}
		}
		// Measure only the collective's bytes, not task dispatch.
		before = cl.Net.TotalBytes()
		ctx.RunStage(p, "c", tasks)
	})
	sim.Run()
	got := cl.Net.TotalBytes() - before
	// Dispatch + results overhead for k tasks.
	overhead := float64(k) * (512 + 128)
	want := 2 * float64(k-1) * float64(dim) * engine.FloatBytes
	if math.Abs(got-overhead-want) > 0.02*want {
		t.Errorf("collective bytes = %g, want ~%g (+%g overhead)", got, want, overhead)
	}
}

// TestAllReduceLatencyFlat asserts the core latency claim: AllReduce step
// time grows only mildly with k (each node still moves ~2m bytes), whereas
// centralized aggregation at one node grows linearly in k.
func TestAllReduceLatencyFlat(t *testing.T) {
	const dim = 20000
	stepTime := func(k int) float64 {
		locals := make([][]float64, k)
		for i := range locals {
			locals[i] = make([]float64, dim)
		}
		return runCollective(k, dim, locals, true)
	}
	t2, t8 := stepTime(2), stepTime(8)
	if t8 > 3*t2 {
		t.Errorf("AllReduce time grew from %g (k=2) to %g (k=8); expected sub-linear growth", t2, t8)
	}
}

func TestSelfOutOfRangePanics(t *testing.T) {
	sim, cl, ctx := clusters.Test(2).Build(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	sim.Spawn("driver", func(p *des.Proc) {
		ctx.RunStage(p, "bad", []engine.Task{{
			Exec: cl.Execs[0],
			Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
				allreduce.Average(p, ex, cl.Execs, 5, "t", make([]float64, 4))
				return nil, 0
			},
		}})
	})
	sim.Run()
}

func BenchmarkAllReduce8x10k(b *testing.B) {
	for n := 0; n < b.N; n++ {
		locals := make([][]float64, 8)
		for i := range locals {
			locals[i] = make([]float64, 10000)
		}
		runCollective(8, 10000, locals, true)
	}
}
