package allreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"mllibstar/internal/des"
	"mllibstar/internal/detrand"
	"mllibstar/internal/engine"
	"mllibstar/internal/sparse"
	"mllibstar/internal/trace"
	"mllibstar/internal/vec"
)

// Full compute/communication overlap: the pipelined Reduce-Scatter fed by a
// block-wise gradient producer, so chunk c is on the wire while blocks c+1…
// are still being computed. The chunked schedule of pipeline.go overlaps
// only the collective's own two rounds — the entire local gradient pass
// still completes before the first chunk leaves the NIC. AverageProduced
// removes that residual serialization: the caller hands a Producer (the
// two-pass feature-major kernel, data.GradStream) instead of a finished
// vector, and the collective interleaves block production with the
// Reduce-Scatter sends.
//
// Bit-identity is inherited, not re-argued: the Producer contract requires
// Produce to yield the same float64 bits as the one-shot pass regardless of
// block order, the chunk encodings are made exactly where the pipelined path
// makes them (per chunk when the dense decision is static, per whole
// partition when the sparse-adaptive decision needs one), and the fold/gather
// half is literally shared (foldAndGather). Overlap on or off therefore
// changes virtual time only — never a gradient bit, a message byte, or the
// fold order.

var overlapOn atomic.Bool

// ConfigureOverlap switches the producing collectives (AverageProduced)
// between overlapped block production and the degenerate produce-then-reduce
// schedule. Overlap engages only together with the pipelined chunk schedule
// (Configure): with pipelining off there are no chunk messages to hide
// production behind, so the degenerate path runs. Like Configure this is a
// process-wide switch flipped between runs, not during one.
func ConfigureOverlap(on bool) { overlapOn.Store(on) }

// OverlapEnabled reports whether overlapped production is active.
func OverlapEnabled() bool { return overlapOn.Load() }

// ValidateChunks rejects chunk counts the chunked schedule cannot honor for
// a model of dim coordinates split across k executors: C < 1 is meaningless,
// and C beyond the smallest partition (dim/k coordinates) would leave empty
// chunks. Flag entry points call this to fail fast with a clear message; the
// collectives themselves keep the conservative clamp so programmatic callers
// with tiny models degrade to the sequential schedule instead of erroring.
func ValidateChunks(chunks, dim, k int) error {
	if chunks < 1 {
		return fmt.Errorf("allreduce: chunk count %d is invalid: need at least 1 chunk", chunks)
	}
	if dim > 0 && k > 0 {
		if minPart := dim / k; chunks > minPart {
			return fmt.Errorf("allreduce: chunk count %d exceeds the smallest model partition (%d coordinates over %d executors = %d per partition); use at most %d chunks",
				chunks, dim, k, minPart, minPart)
		}
	}
	return nil
}

// Producer yields a vector block by block, so an overlapped collective can
// ship finished coordinate ranges while later ones are still uncomputed.
// data.GradStream is the canonical implementation (the two-pass
// feature-major gradient kernel).
//
// The contract, which the overlap's bit-identity rests on:
//
//   - Prepare runs once, before any Produce, and is pure (offload-safe).
//   - Produce(lo, hi) finalizes coordinates [lo, hi) of the target vector;
//     blocks may be requested in any order, each exactly once, and the calls
//     the collective makes cover [0, dim). Produce is pure and must yield
//     bits independent of the block partitioning and order.
//   - PrepareWork and Work(lo, hi) are the virtual-time charges; over any
//     partitioning of [0, dim) they must sum to the work the equivalent
//     one-shot computation would charge, so overlap on/off moves charges
//     around without changing their total.
type Producer interface {
	Prepare()
	PrepareWork() float64
	Produce(lo, hi int)
	Work(lo, hi int) float64
}

// AverageProduced is Average for a vector that does not exist yet: prod
// fills local block by block, and when overlap is enabled (ConfigureOverlap
// together with the pipelined schedule) the Reduce-Scatter chunks leave the
// NIC as soon as their blocks are produced. With overlap disabled — or when
// the model is too small to chunk — production collapses into the single
// compute charge the non-overlapped caller would have made, followed by the
// standard collective, so the event sequence is identical to computing local
// first and calling Average.
func AverageProduced(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local []float64, prod Producer) {
	k := len(execs)
	if self < 0 || self >= k {
		panic(fmt.Sprintf("allreduce: self %d out of %d executors", self, k))
	}
	dim := len(local)
	if OverlapEnabled() && Enabled() && k > 1 {
		C := Chunks()
		if minPart := dim / k; minPart < C {
			C = minPart
		}
		if C > 1 {
			overlapRSG(p, ex, execs, self, name, local, prod, C)
			return
		}
	}
	ex.ChargeAsync(p, prod.PrepareWork()+prod.Work(0, dim), func() {
		prod.Prepare()
		prod.Produce(0, dim)
	})
	Average(p, ex, execs, self, name, local)
}

// overlapRSG runs the chunked Reduce-Scatter/AllGather with block
// production interleaved into the send schedule. The sender process is
// forked before anything is computed; pass 1 (Prepare) runs as one compute
// charge, then peer partitions are produced and enqueued in topology-aware
// route order (RouteOrder — slowest link first), own partition last, and the
// shared foldAndGather finishes the collective. Every production charge is
// annotated with an observe-never-charge FeatBlock span so the overlap is
// visible in the gantt and the event log without double-booking busy time.
func overlapRSG(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local []float64, prod Producer, C int) {
	k := len(execs)
	dim := len(local)
	sender := ex.StartSender(p, name)
	ex.ChargeAsync(p, prod.PrepareWork(), prod.Prepare)

	recvBW := make([]float64, k)
	for j, nm := range execs {
		recvBW[j] = ex.PeerSpec(nm).RecvBW
	}
	order := RouteOrder(name, self, k, dim, ex.PeerSpec(execs[self]).SendBW, recvBW)

	produce := func(c, blo, bhi int) {
		start := p.Now()
		ex.ChargeAsync(p, prod.Work(blo, bhi), func() { prod.Produce(blo, bhi) })
		if now := p.Now(); now > start {
			ex.Node().Observe(p, trace.FeatBlock, start, now, fmt.Sprintf("fb:%s.c%d", name, c))
		}
	}
	if !sparse.Enabled() {
		// The encoding decision is statically dense, so chunks are encoded —
		// and shipped — the moment their block closes, chunk-major across the
		// peers in route order. A dense per-chunk EncodeCopy carries the same
		// bytes and bits as the pipelined path's Slice of a whole-partition
		// encoding.
		for c := 0; c < C; c++ {
			for _, j := range order {
				plo, phi := vec.PartitionRange(dim, k, j)
				clo, chi := vec.PartitionRange(phi-plo, C, c)
				produce(c, plo+clo, plo+chi)
				ce := sparse.EncodeCopy(local[plo+clo:plo+chi], nil)
				sender.Send(execs[j], rsTag(name, c), ce.WireBytes(),
					engine.Block{From: self, To: j, Bytes: ce.WireBytes(), Payload: ce})
			}
		}
	} else {
		// Sparse exchange on: the adaptive dense/sparse decision is made on
		// whole partitions, exactly as the non-overlapped paths make it — so
		// a peer's chunks ship once its partition is fully produced. Overlap
		// degrades from chunk-granular to partition-granular, but partitions
		// still stream out one by one while later ones are uncomputed.
		for _, j := range order {
			plo, phi := vec.PartitionRange(dim, k, j)
			for c := 0; c < C; c++ {
				clo, chi := vec.PartitionRange(phi-plo, C, c)
				produce(c, plo+clo, plo+chi)
			}
			pe := sparse.EncodeCopy(local[plo:phi], nil)
			for c := 0; c < C; c++ {
				clo, chi := vec.PartitionRange(phi-plo, C, c)
				ce := pe.Slice(clo, chi)
				sender.Send(execs[j], rsTag(name, c), ce.WireBytes(),
					engine.Block{From: self, To: j, Bytes: ce.WireBytes(), Payload: ce})
			}
		}
	}
	// Own partition last: it gates only the local fold, which cannot start
	// before the peers' chunks arrive anyway.
	lo, hi := vec.PartitionRange(dim, k, self)
	for c := 0; c < C; c++ {
		colo, cohi := vec.PartitionRange(hi-lo, C, c)
		produce(c, lo+colo, lo+cohi)
	}
	own := append([]float64(nil), local[lo:hi]...)
	foldAndGather(p, ex, execs, self, name, local, nil, true, C, sender, own, nil, !sparse.Enabled())
}

// RouteOrder returns the order in which executor self visits its k−1 peers
// when enqueueing chunked Reduce-Scatter traffic: the peer whose partition
// transfer is slowest first, so the link that gates the round the longest
// starts draining earliest. A partition's cost is its coordinate count over
// the bottleneck of self's send NIC and the peer's receive NIC (the two
// resources its messages serialize through). Ties — every uniform-bandwidth
// cluster — break by a permutation derived deterministically (detrand) from
// the collective name and self, so repeated collectives do not systematically
// favor low-indexed peers. Routing affects message timing only: the fold
// order stays canonical, so results are bit-independent of the route.
func RouteOrder(name string, self, k, dim int, sendBW float64, recvBW []float64) []int {
	peers := make([]int, 0, k-1)
	for j := 0; j < k; j++ {
		if j != self {
			peers = append(peers, j)
		}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", name, self)
	perm := detrand.Perm(int64(h.Sum64()), k)
	cost := func(j int) float64 {
		lo, hi := vec.PartitionRange(dim, k, j)
		bw := sendBW
		if j < len(recvBW) && recvBW[j] > 0 && (bw <= 0 || recvBW[j] < bw) {
			bw = recvBW[j]
		}
		if bw <= 0 {
			bw = 1
		}
		return float64(hi-lo) / bw
	}
	sort.SliceStable(peers, func(a, b int) bool {
		ca, cb := cost(peers[a]), cost(peers[b])
		//mlstar:nolint floateq -- exact compare intentional: equal-cost peers (every uniform cluster) must fall through to the deterministic permutation tie-break
		if ca != cb {
			return ca > cb
		}
		return perm[peers[a]] < perm[peers[b]]
	})
	return peers
}
