package allreduce_test

import (
	"math"
	"testing"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/clusters"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
)

// TestRouteOrderDeterministicAndComplete pins the routing schedule: every
// peer exactly once, self excluded, slowest links first, and the whole order
// — including the detrand tie-break among equal links — a pure function of
// (name, self).
func TestRouteOrderDeterministicAndComplete(t *testing.T) {
	const k, dim, self = 5, 50000, 2
	recvBW := []float64{8e8, 1e8, 8e8, 4e8, 8e8}
	got := allreduce.RouteOrder("lbg3", self, k, dim, 8e8, recvBW)
	if len(got) != k-1 {
		t.Fatalf("RouteOrder returned %d peers, want %d", len(got), k-1)
	}
	seen := map[int]bool{}
	for _, j := range got {
		if j == self || j < 0 || j >= k || seen[j] {
			t.Fatalf("RouteOrder = %v: bad peer %d", got, j)
		}
		seen[j] = true
	}
	// Bottleneck costs: peer 1 drains at 1e8 B/s, peer 3 at 4e8, the rest at
	// the full 8e8 — slowest first.
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("RouteOrder = %v, want slowest links (1, 3) first", got)
	}
	again := allreduce.RouteOrder("lbg3", self, k, dim, 8e8, recvBW)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("RouteOrder not deterministic: %v vs %v", got, again)
		}
	}
	// Uniform bandwidth: order is the deterministic permutation, still a
	// complete visit of the peers.
	uniform := allreduce.RouteOrder("svrg-mu1", 0, 4, dim, 8e8, []float64{8e8, 8e8, 8e8, 8e8})
	if len(uniform) != 3 {
		t.Fatalf("uniform RouteOrder = %v", uniform)
	}
}

// vecProducer is a trivial Producer over a fixed source vector, standing in
// for the gradient stream in collective-level tests.
type vecProducer struct {
	src, dst []float64
	total    float64
	prepared bool
}

func (v *vecProducer) Prepare()             { v.prepared = true }
func (v *vecProducer) PrepareWork() float64 { return v.total / 2 }
func (v *vecProducer) Produce(lo, hi int) {
	if !v.prepared {
		panic("Produce before Prepare")
	}
	copy(v.dst[lo:hi], v.src[lo:hi])
}
func (v *vecProducer) Work(lo, hi int) float64 {
	return v.total / 2 * float64(hi-lo) / float64(len(v.dst))
}

// producedRun is collectiveRun for AverageProduced: every executor's local
// starts zeroed and is filled by its producer inside the collective.
func producedRun(t *testing.T, spec clusters.Spec, srcs [][]float64) (locals [][]float64, bytes float64) {
	t.Helper()
	k := spec.Executors
	sim, cl, ctx := spec.Build(nil)
	locals = make([][]float64, k)
	for i := range locals {
		locals[i] = make([]float64, len(srcs[i]))
	}
	var before float64
	sim.Spawn("driver", func(p *des.Proc) {
		tasks := make([]engine.Task, k)
		for i := 0; i < k; i++ {
			i := i
			tasks[i] = engine.Task{
				Exec: cl.Execs[i],
				Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
					prod := &vecProducer{src: srcs[i], dst: locals[i], total: float64(2 * len(srcs[i]))}
					allreduce.AverageProduced(p, ex, cl.Execs, i, "t", locals[i], prod)
					return nil, 0
				},
			}
		}
		before = cl.Net.TotalBytes()
		ctx.RunStage(p, "c", tasks)
	})
	sim.Run()
	return locals, cl.Net.TotalBytes() - before
}

// TestAverageProducedBitIdentical crosses overlap {degenerate, pipelined} ×
// sparse × chunk counts and demands Float64bits-identical results and equal
// stage bytes against plain Average on precomputed vectors.
func TestAverageProducedBitIdentical(t *testing.T) {
	const k, dim = 4, 4000
	for _, sparseOn := range []bool{false, true} {
		run := func() {
			srcs, _ := makeLocals(k, dim, false, 11)
			want := make([][]float64, k)
			for i := range srcs {
				want[i] = append([]float64(nil), srcs[i]...)
			}
			var wantBytes float64
			_, wantBytes = collectiveRun(t, clusters.Test(k), want, nil)

			check := func(label string, got [][]float64, gotBytes float64) {
				t.Helper()
				if gotBytes != wantBytes {
					t.Errorf("%s sparse=%v: bytes %g, want %g", label, sparseOn, gotBytes, wantBytes)
				}
				for i := range got {
					for j := range got[i] {
						if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
							t.Fatalf("%s sparse=%v: executor %d coord %d: %x vs %x", label, sparseOn, i, j,
								math.Float64bits(got[i][j]), math.Float64bits(want[i][j]))
						}
					}
				}
			}

			// Overlap requested with pipelining off: the degenerate
			// produce-then-reduce path must reproduce Average exactly.
			allreduce.ConfigureOverlap(true)
			defer allreduce.ConfigureOverlap(false)
			got, gotBytes := producedRun(t, clusters.Test(k), srcs)
			check("degenerate", got, gotBytes)

			// Overlapped chunked schedule across chunk counts.
			for _, chunks := range []int{2, 8, 16} {
				withPipeline(t, true, chunks, func() {
					got, gotBytes := producedRun(t, clusters.Test(k), srcs)
					check("overlap", got, gotBytes)
				})
			}
		}
		if sparseOn {
			withSparseOn(t, run)
		} else {
			run()
		}
	}
}

// TestAverageProducedSingleExecutor: with k = 1 the produced vector is the
// result and the collective adds no traffic beyond the stage envelope.
func TestAverageProducedSingleExecutor(t *testing.T) {
	allreduce.ConfigureOverlap(true)
	defer allreduce.ConfigureOverlap(false)
	srcs, _ := makeLocals(1, 100, false, 5)
	base := [][]float64{append([]float64(nil), srcs[0]...)}
	_, wantBytes := collectiveRun(t, clusters.Test(1), base, nil)
	locals, bytes := producedRun(t, clusters.Test(1), srcs)
	for j := range locals[0] {
		if math.Float64bits(locals[0][j]) != math.Float64bits(srcs[0][j]) {
			t.Fatalf("coord %d: %v != %v", j, locals[0][j], srcs[0][j])
		}
	}
	if bytes != wantBytes {
		t.Fatalf("k=1 stage moved %g bytes, want %g (stage envelope only)", bytes, wantBytes)
	}
}
