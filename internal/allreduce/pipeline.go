package allreduce

import (
	"fmt"
	"sort"
	"sync/atomic"

	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/par"
	"mllibstar/internal/sparse"
	"mllibstar/internal/trace"
	"mllibstar/internal/vec"
)

// DefaultChunks is the chunk count Configure(on, 0) selects. Eight chunks
// keep the pipeline fill (one chunk's serialization plus a latency) under an
// eighth of the round while the per-chunk framing overhead stays negligible.
const DefaultChunks = 8

var (
	pipeOn     atomic.Bool
	pipeChunks atomic.Int32
)

func init() { pipeChunks.Store(DefaultChunks) }

// Configure switches the collectives between the sequential two-round
// schedule and the pipelined chunked schedule (see pipelinedRSG). chunks ≤ 0
// selects DefaultChunks. Like par.Configure and sparse.Configure this is a
// process-wide switch flipped between runs, not during one.
func Configure(on bool, chunks int) {
	if chunks <= 0 {
		chunks = DefaultChunks
	}
	pipeChunks.Store(int32(chunks))
	pipeOn.Store(on)
}

// Enabled reports whether the pipelined schedule is active.
func Enabled() bool { return pipeOn.Load() }

// Chunks returns the configured chunk count.
func Chunks() int { return int(pipeChunks.Load()) }

func rsTag(name string, c int) string { return fmt.Sprintf("xch:rs:%s.c%d", name, c) }
func agTag(name string, c int) string { return fmt.Sprintf("xch:ag:%s.c%d", name, c) }

// pipelinedRSG is reduceScatterGather on a chunked schedule: each of the k
// model partitions is cut into C contiguous chunks, every message of the
// sequential path becomes C messages, and a forked sender process drains
// them through the out-NIC while the task process receives and folds — so
// chunk i+1 is on the wire while chunk i is being combined, and a superstep
// costs toward max(compute, comm) instead of compute + comm.
//
// Three invariants tie it bit-for-bit to the sequential path:
//
//   - Encoding: the dense/sparse decision and the total wire bytes are made
//     on whole partitions, exactly as the sequential path makes them; chunks
//     inherit the parent's choice (sparse.Enc.Slice), so the C chunk
//     messages charge exactly the bytes the one message would have.
//   - Fold order: within a chunk the received copies are combined in
//     ascending sender order, then scaled; chunks are folded in index order.
//     Per coordinate this is the identical float operation sequence as the
//     sequential fold, so the result is Float64bits-identical.
//   - AllGather causality: the sequential path decides the AllGather
//     encoding on the fully folded partition. With sparse exchange off that
//     decision is statically dense, so folded chunks stream out immediately
//     (full two-round overlap); with sparse exchange on, AllGather sends
//     wait for the last local fold so the adaptive decision sees the same
//     vector — the two rounds still overlap across executors, and the
//     Reduce-Scatter keeps its internal pipeline.
//
// Time the task process spends blocked waiting for a chunk is recorded as a
// Pipeline span (observe-never-charge): it shapes no result and no charge,
// but tells attribution how much overlap headroom is left.
func pipelinedRSG(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local, ref []float64, average bool, C int) {
	k := len(execs)
	dim := len(local)
	refRange := func(lo, hi int) []float64 {
		if ref == nil {
			return nil
		}
		return ref[lo:hi]
	}

	// Whole-partition encodings for Reduce-Scatter, identical to the
	// sequential path's.
	type peerEnc struct {
		j    int
		plen int
		enc  sparse.Enc
	}
	peers := make([]peerEnc, 0, k-1)
	for j := 0; j < k; j++ {
		if j == self {
			continue
		}
		lo, hi := vec.PartitionRange(dim, k, j)
		peers = append(peers, peerEnc{j: j, plen: hi - lo, enc: sparse.EncodeCopy(local[lo:hi], refRange(lo, hi))})
	}
	lo, hi := vec.PartitionRange(dim, k, self)
	own := append([]float64(nil), local[lo:hi]...)
	refOwn := refRange(lo, hi)
	streamAG := !sparse.Enabled()

	// All Reduce-Scatter sends are enqueued up front, chunk-major (every
	// peer's chunk c before any peer's chunk c+1), so receivers fold chunk c
	// while chunk c+1 serializes. The sender process transmits them FIFO;
	// the encodings are private copies, so they stay valid however long the
	// queue runs behind.
	sender := ex.StartSender(p, name)
	for c := 0; c < C; c++ {
		for _, pe := range peers {
			clo, chi := vec.PartitionRange(pe.plen, C, c)
			ce := pe.enc.Slice(clo, chi)
			sender.Send(execs[pe.j], rsTag(name, c), ce.WireBytes(),
				engine.Block{From: self, To: pe.j, Bytes: ce.WireBytes(), Payload: ce})
		}
	}

	foldAndGather(p, ex, execs, self, name, local, ref, average, C, sender, own, refOwn, streamAG)
}

// foldAndGather is the back half of the chunked schedule, shared by the
// pipelined collectives (pipelinedRSG, which has the whole vector up front,
// and overlapRSG, which produced it block by block while the Reduce-Scatter
// sends were already draining): the chunk-ordered receive-and-fold loop, the
// AllGather sends, and the AllGather receive loop. It closes the sender.
func foldAndGather(p *des.Proc, ex *engine.Executor, execs []string, self int, name string, local, ref []float64, average bool, C int, sender *engine.Sender, own, refOwn []float64, streamAG bool) {
	k := len(execs)
	dim := len(local)
	lo, hi := vec.PartitionRange(dim, k, self)
	refRange := func(lo, hi int) []float64 {
		if ref == nil {
			return nil
		}
		return ref[lo:hi]
	}
	// AllGather fan-out targets, ascending — the same order the sequential
	// path and the send loops above visit peers in.
	type peerDst struct{ j int }
	peers := make([]peerDst, 0, k-1)
	for j := 0; j < k; j++ {
		if j != self {
			peers = append(peers, peerDst{j: j})
		}
	}

	// Receive-and-fold loop: chunks in index order, each folded in ascending
	// sender order then scaled — the sequential fold's per-coordinate
	// operation sequence. Charges replay the arrival sequence on the task
	// process (the node has one modeled core; the sender process only ever
	// occupies the NIC), while the arithmetic overlaps on the offload pool.
	for c := 0; c < C; c++ {
		colo, cohi := vec.PartitionRange(hi-lo, C, c)
		tagc := rsTag(name, c)
		idle := p.Now()
		blocks := make([]engine.Block, 0, k-1)
		for len(blocks) < k-1 {
			msg := ex.Recv(p, tagc)
			blocks = append(blocks, msg.Payload.(engine.Block))
		}
		if now := p.Now(); now > idle {
			ex.Node().Observe(p, trace.Pipeline, idle, now, tagc)
		}
		folded := append([]engine.Block(nil), blocks...)
		sort.Slice(folded, func(a, b int) bool { return folded[a].From < folded[b].From })
		ownChunk := own[colo:cohi]
		var refChunk []float64
		if refOwn != nil {
			refChunk = refOwn[colo:cohi]
		}
		fold := func() {
			for _, b := range folded {
				vec.AddScaled(ownChunk, b.Payload.(sparse.Enc).Dense(refChunk), 1)
			}
			if average {
				vec.Scale(ownChunk, 1/float64(k))
			}
		}
		h := par.Do(fold)
		for _, b := range blocks {
			kind := trace.Aggregate
			if b.Payload.(sparse.Enc).IsSparse() {
				kind = trace.Encode
			}
			ex.ChargeKind(p, float64(cohi-colo), kind, name)
		}
		h.Join()
		if streamAG {
			// Sparse exchange off: the AllGather encoding decision is
			// statically dense, so the folded chunk streams out right away.
			ce := sparse.EncodeShared(ownChunk, refChunk)
			for _, pe := range peers {
				sender.Send(execs[pe.j], agTag(name, c), ce.WireBytes(),
					engine.Block{From: self, To: pe.j, Bytes: ce.WireBytes(), Payload: ce})
			}
			copy(local[lo+colo:lo+cohi], ownChunk)
		}
	}
	if !streamAG {
		// Sparse exchange on: encode the fully folded partition — the same
		// vector the sequential path's adaptive decision sees — then chunk
		// the one encoding.
		ownEnc := sparse.EncodeShared(own, refOwn)
		for c := 0; c < C; c++ {
			colo, cohi := vec.PartitionRange(hi-lo, C, c)
			ce := ownEnc.Slice(colo, cohi)
			for _, pe := range peers {
				sender.Send(execs[pe.j], agTag(name, c), ce.WireBytes(),
					engine.Block{From: self, To: pe.j, Bytes: ce.WireBytes(), Payload: ce})
			}
		}
		copy(local[lo:hi], own)
	}
	sender.Close()

	// AllGather receive loop: pieces land in disjoint ranges of local, so
	// decode order within a chunk is immaterial; charges replay arrivals.
	for c := 0; c < C; c++ {
		tagc := agTag(name, c)
		idle := p.Now()
		blocks := make([]engine.Block, 0, k-1)
		for len(blocks) < k-1 {
			msg := ex.Recv(p, tagc)
			blocks = append(blocks, msg.Payload.(engine.Block))
		}
		if now := p.Now(); now > idle {
			ex.Node().Observe(p, trace.Pipeline, idle, now, tagc)
		}
		gathered := append([]engine.Block(nil), blocks...)
		decode := func() {
			for _, b := range gathered {
				plo, phi := vec.PartitionRange(dim, k, b.From)
				clo, chi := vec.PartitionRange(phi-plo, C, c)
				b.Payload.(sparse.Enc).DecodeInto(local[plo+clo:plo+chi], refRange(plo+clo, plo+chi))
			}
		}
		h := par.Do(decode)
		for _, b := range blocks {
			plo, phi := vec.PartitionRange(dim, k, b.From)
			clo, chi := vec.PartitionRange(phi-plo, C, c)
			kind := trace.Update
			if b.Payload.(sparse.Enc).IsSparse() {
				kind = trace.Encode
			}
			ex.ChargeKind(p, float64(chi-clo), kind, name)
		}
		h.Join()
	}
}
