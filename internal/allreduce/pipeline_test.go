package allreduce_test

import (
	"math"
	"math/rand"
	"testing"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/clusters"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/sparse"
)

// collectiveRun executes one stage in which every executor calls
// AverageDelta on its row of locals and reports, per executor, the virtual
// time the collective itself took (task start skew excluded). It returns
// the slowest executor's duration and the bytes the stage moved.
func collectiveRun(t *testing.T, spec clusters.Spec, locals [][]float64, ref []float64) (maxDur, bytes float64) {
	t.Helper()
	k := spec.Executors
	sim, cl, ctx := spec.Build(nil)
	durs := make([]float64, k)
	var before float64
	sim.Spawn("driver", func(p *des.Proc) {
		tasks := make([]engine.Task, k)
		for i := 0; i < k; i++ {
			i := i
			tasks[i] = engine.Task{
				Exec: cl.Execs[i],
				Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
					start := p.Now()
					allreduce.AverageDelta(p, ex, cl.Execs, i, "t", locals[i], ref)
					durs[i] = p.Now() - start
					return nil, 0
				},
			}
		}
		before = cl.Net.TotalBytes()
		ctx.RunStage(p, "c", tasks)
	})
	sim.Run()
	for _, d := range durs {
		if d > maxDur {
			maxDur = d
		}
	}
	return maxDur, cl.Net.TotalBytes() - before
}

// makeLocals builds k random local vectors; when withRef is set they are
// sparse deltas off a shared reference (the AverageDelta regime).
func makeLocals(k, dim int, withRef bool, seed int64) (locals [][]float64, ref []float64) {
	rng := rand.New(rand.NewSource(seed))
	if withRef {
		ref = make([]float64, dim)
		for i := range ref {
			ref[i] = rng.NormFloat64()
		}
	}
	locals = make([][]float64, k)
	for i := range locals {
		locals[i] = make([]float64, dim)
		if withRef {
			copy(locals[i], ref)
			for t := 0; t < dim/20; t++ {
				locals[i][rng.Intn(dim)] = rng.NormFloat64()
			}
		} else {
			for j := range locals[i] {
				locals[i][j] = rng.NormFloat64()
			}
		}
	}
	return locals, ref
}

func withPipeline(t *testing.T, on bool, chunks int, fn func()) {
	t.Helper()
	allreduce.Configure(on, chunks)
	defer allreduce.Configure(false, 0)
	fn()
}

func withSparseOn(t *testing.T, fn func()) {
	t.Helper()
	sparse.Configure(true)
	defer sparse.Configure(false)
	fn()
}

// TestPipelineBitIdenticalAndByteInvariant crosses pipeline × sparse ×
// chunk counts × reference presence and demands Float64bits-identical
// results and exactly equal stage bytes against the sequential schedule.
func TestPipelineBitIdenticalAndByteInvariant(t *testing.T) {
	const k, dim = 4, 4000
	for _, withRef := range []bool{false, true} {
		for _, sparseOn := range []bool{false, true} {
			run := func() {
				base, ref := makeLocals(k, dim, withRef, 7)
				want := make([][]float64, k)
				var wantBytes float64
				for i := range base {
					want[i] = append([]float64(nil), base[i]...)
				}
				_, wantBytes = collectiveRun(t, clusters.Test(k), want, ref)
				for _, chunks := range []int{2, 8, 16} {
					got := make([][]float64, k)
					for i := range base {
						got[i] = append([]float64(nil), base[i]...)
					}
					var gotBytes float64
					withPipeline(t, true, chunks, func() {
						_, gotBytes = collectiveRun(t, clusters.Test(k), got, ref)
					})
					if gotBytes != wantBytes {
						t.Errorf("ref=%v sparse=%v chunks=%d: bytes %g, want %g",
							withRef, sparseOn, chunks, gotBytes, wantBytes)
					}
					for i := range got {
						for j := range got[i] {
							if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
								t.Fatalf("ref=%v sparse=%v chunks=%d: executor %d coord %d differs: %x vs %x",
									withRef, sparseOn, chunks, i, j,
									math.Float64bits(got[i][j]), math.Float64bits(want[i][j]))
							}
						}
					}
				}
			}
			if sparseOn {
				withSparseOn(t, run)
			} else {
				run()
			}
		}
	}
}

// TestPipelineTinyModelFallsBack exercises the clamp: with fewer coordinates
// per partition than chunks the sequential path must run and still be right.
func TestPipelineTinyModelFallsBack(t *testing.T) {
	withPipeline(t, true, 8, func() {
		k := 6
		locals := make([][]float64, k)
		for i := range locals {
			locals[i] = []float64{float64(i), float64(i), float64(i)}
		}
		collectiveRun(t, clusters.Test(k), locals, nil)
		for i := range locals {
			for j := range locals[i] {
				if math.Abs(locals[i][j]-2.5) > 1e-12 {
					t.Fatalf("locals[%d] = %v", i, locals[i])
				}
			}
		}
	})
}

// TestPipelineSuperstepBound checks the cost-model claim on a cluster where
// communication and the fold/decode compute are deliberately balanced: the
// pipelined collective must finish within max(compute, comm) plus the
// pipeline fill (a few chunk serializations and latencies), where the
// sequential schedule needs their sum.
func TestPipelineSuperstepBound(t *testing.T) {
	const k, dim, chunks = 4, 40000, 8
	spec := clusters.CommBound(k)
	s := dim / k // partition size; dim divides k evenly here

	seqLocals, _ := makeLocals(k, dim, false, 3)
	seqDur, _ := collectiveRun(t, spec, seqLocals, nil)

	pipeLocals, _ := makeLocals(k, dim, false, 3)
	var pipeDur float64
	withPipeline(t, true, chunks, func() {
		pipeDur, _ = collectiveRun(t, spec, pipeLocals, nil)
	})

	// Modeled components, per executor: the fold charges (k−1)·s and the
	// gather decode another (k−1)·s; each direction of the NIC serializes
	// 2·(k−1) partition copies of 8·s bytes plus per-message framing.
	const overhead = 64 // simnet framing bytes per message
	compute := 2 * float64(k-1) * float64(s) / spec.ComputeRate
	comm := (2*float64(k-1)*float64(s)*engine.FloatBytes + 2*float64(k-1)*chunks*overhead) / spec.Bandwidth
	chunkWire := (float64(s)/chunks*engine.FloatBytes + overhead) / spec.Bandwidth
	fill := 4*float64(k-1)*chunkWire + 6*spec.Latency

	if bound := math.Max(compute, comm) + fill; pipeDur > bound {
		t.Errorf("pipelined superstep took %.6fs, want ≤ max(compute %.6fs, comm %.6fs) + fill %.6fs = %.6fs",
			pipeDur, compute, comm, fill, bound)
	}
	// The sequential schedule pays compute + comm; requiring the pipelined
	// run to beat 80% of it proves real overlap, not noise.
	if pipeDur > 0.8*seqDur {
		t.Errorf("pipelined %.6fs vs sequential %.6fs: expected ≥20%% overlap win", pipeDur, seqDur)
	}
}

// TestValidateChunksBoundary pins the flag-level validation: C < 1 and
// C beyond the smallest partition are rejected with an error, the exact
// boundary (C == dim/k) is accepted, and with the model size unknown only
// the C ≥ 1 half is checkable.
func TestValidateChunksBoundary(t *testing.T) {
	const dim, k = 4000, 4 // smallest partition: 1000 coordinates
	for _, tc := range []struct {
		chunks int
		ok     bool
	}{
		{-3, false}, {0, false}, {1, true}, {2, true},
		{999, true}, {1000, true}, {1001, false}, {4000, false},
	} {
		err := allreduce.ValidateChunks(tc.chunks, dim, k)
		if tc.ok && err != nil {
			t.Errorf("ValidateChunks(%d, %d, %d) = %v, want nil", tc.chunks, dim, k, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ValidateChunks(%d, %d, %d) = nil, want error", tc.chunks, dim, k)
		}
	}
	// Entry points without a model size (prof.Start) pass dim = k = 0: only
	// the C ≥ 1 half applies there.
	if err := allreduce.ValidateChunks(64, 0, 0); err != nil {
		t.Errorf("ValidateChunks(64, 0, 0) = %v, want nil", err)
	}
	if err := allreduce.ValidateChunks(0, 0, 0); err == nil {
		t.Error("ValidateChunks(0, 0, 0) = nil, want error")
	}
}
