// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repository keeps its zero-dependency policy. It provides the Analyzer and
// Pass types that the mlstar lint suite (cmd/mlstar-lint) drives, and the
// sibling packages determinism, vecalias, floateq, errdiscard, and gocapture
// implement the project-specific invariants on top of it.
//
// The framework deliberately mirrors the upstream API shape — an Analyzer
// with a Run function over a Pass carrying the package's syntax and type
// information — so the analyzers could be ported to the real go/analysis
// multichecker verbatim if the dependency policy ever changes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint comments.
	// It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// DefaultScope lists package-path prefixes the analyzer applies to when
	// the driver runs it over the whole repository. Empty means every
	// package. Test harnesses ignore the scope and run the analyzer on
	// whatever package they load.
	DefaultScope []string

	// FactsAll asks the driver to run the analyzer on every package — with
	// reporting disabled outside DefaultScope — so cross-package facts are
	// computed even for helper packages the analyzer does not diagnose
	// (e.g. detflow needs taint summaries for internal/vec although its
	// findings are scoped to simulated code).
	FactsAll bool

	// Run applies the check to one package and reports findings through
	// pass.Report. The returned error aborts the whole lint run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// InScope reports whether the analyzer's DefaultScope covers the package
// path. An empty scope covers everything.
func (a *Analyzer) InScope(pkgPath string) bool {
	if len(a.DefaultScope) == 0 {
		return true
	}
	for _, prefix := range a.DefaultScope {
		if pkgPath == prefix || (len(pkgPath) > len(prefix) && pkgPath[:len(prefix)] == prefix && pkgPath[len(prefix)] == '/') {
			return true
		}
	}
	return false
}

// Pass carries one package's parsed and type-checked form to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the cross-package fact store, shared across the whole lint
	// run. The driver processes packages in dependency order, so facts
	// exported while analyzing a package's dependencies are importable
	// here. Nil in harnesses that run a single package; use FactStore to
	// get a non-nil view.
	Facts *Facts

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// FactStore returns the pass's fact store, creating an empty local one when
// the driver did not install any (single-package test harnesses).
func (p *Pass) FactStore() *Facts {
	if p.Facts == nil {
		p.Facts = NewFacts()
	}
	return p.Facts
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Fixes are mechanical rewrites that resolve the finding, applied by
	// `mlstar-lint -fix`. Optional; the first applicable fix wins.
	Fixes []SuggestedFix
}

// SuggestedFix is one self-contained mechanical rewrite.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. A pure
// insertion has Pos == End; a pure deletion has empty NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportFix reports a diagnostic carrying one suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Fixes: []SuggestedFix{fix}})
}

// Inspect walks every file of the pass in depth-first order, calling f for
// each node. If f returns false for a node, its children are skipped.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// IsFloat reports whether t's underlying type is a floating-point scalar.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsFloatSlice reports whether t's underlying type is a slice of
// floating-point scalars (e.g. []float64 or a named vector type over it).
func IsFloatSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && IsFloat(s.Elem())
}

// FuncOf resolves the called function object of a call expression, looking
// through parenthesized expressions. It returns nil for calls through
// function-typed variables, conversions, and built-ins.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := FuncOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
