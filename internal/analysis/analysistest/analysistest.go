// Package analysistest runs an analyzer over a testdata source corpus and
// checks its diagnostics against expectations written in the corpus itself,
// mirroring golang.org/x/tools/go/analysis/analysistest: a line that should
// be flagged carries a trailing comment of the form
//
//	// want "regexp"
//	// want "first" "second"
//
// where each quoted regular expression must match exactly one diagnostic
// reported on that line, and every diagnostic must be matched by some
// expectation.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mllibstar/internal/analysis"
	"mllibstar/internal/analysis/loader"
)

// Run loads the package under dir (testdata/src/<pkg>), applies the
// analyzer, and reports any mismatch between produced diagnostics and the
// corpus's want comments as test errors.
//
// Like the real driver, Run honors //mlstar:nolint directives: a suppressed
// diagnostic is dropped before matching, so corpora can assert that a
// correctly scoped directive silences a finding (a line carrying both a
// directive for the analyzer and no want comment).
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, diags := analyze(t, dir, a)

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	// Group diagnostics by file:line and match against expectations.
	got := map[lineKey][]string{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := lineKey{file: filepath.Base(pos.Filename), line: pos.Line}
		got[k] = append(got[k], d.Message)
	}

	for k, exps := range wants {
		msgs := got[k]
		for _, exp := range exps {
			i := indexMatching(msgs, exp)
			if i < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, exp.String(), msgs)
				continue
			}
			msgs = append(msgs[:i], msgs[i+1:]...)
		}
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
		delete(got, k)
	}
	// Diagnostics on lines with no want comment at all.
	keys := make([]lineKey, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, m := range got[k] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// RunSilent loads the package under dir, applies the analyzer, and asserts
// it reports nothing at all, ignoring the corpus's want comments (which
// belong to a different analyzer). It is the regression harness for
// interprocedural corpora: the flow-sensitive analyzer matches the corpus's
// want comments via Run while its syntactic predecessor must stay silent on
// the same code via RunSilent — proving the finding class is genuinely out
// of the old analyzer's reach.
func RunSilent(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, diags := analyze(t, dir, a)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		t.Errorf("%s:%d: analyzer %s must stay silent on this corpus, reported: %s",
			filepath.Base(pos.Filename), pos.Line, a.Name, d.Message)
	}
}

// analyze loads the corpus package, runs the analyzer with an empty fact
// store, and returns the diagnostics that survive nolint suppression.
func analyze(t *testing.T, dir string, a *analysis.Analyzer) (*loader.Package, []analysis.Diagnostic) {
	t.Helper()
	pkg, err := loader.LoadDir(dir, filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Facts:     analysis.NewFacts(),
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	supp := analysis.NewSuppressor()
	supp.AddPackage(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !supp.Suppressed(pos.Filename, pos.Line, a.Name) {
			kept = append(kept, d)
		}
	}
	return pkg, kept
}

type lineKey struct {
	file string
	line int
}

// collectWants extracts the want expectations from every comment in the
// package, keyed by the comment's file and line.
func collectWants(pkg *loader.Package) (map[lineKey][]*regexp.Regexp, error) {
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{file: filepath.Base(pos.Filename), line: pos.Line}
				exps, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s: %v", position(pkg.Fset, c.Pos()), err)
				}
				wants[k] = append(wants[k], exps...)
			}
		}
	}
	return wants, nil
}

// parseWant parses a sequence of quoted regular expressions.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want: expected quoted regexp, have %q", s)
		}
		prefix, rest, err := splitQuoted(s)
		if err != nil {
			return nil, err
		}
		rx, err := regexp.Compile(prefix)
		if err != nil {
			return nil, fmt.Errorf("want: %v", err)
		}
		out = append(out, rx)
		s = rest
	}
}

// splitQuoted unquotes the leading Go string literal of s and returns its
// value plus the remainder.
func splitQuoted(s string) (string, string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			val, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("want: %v", err)
			}
			return val, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("want: unterminated string in %q", s)
}

func indexMatching(msgs []string, rx *regexp.Regexp) int {
	for i, m := range msgs {
		if rx.MatchString(m) {
			return i
		}
	}
	return -1
}

func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
