// Package buflife is the flow-sensitive buffer-lifetime analyzer for the
// engine's vector pool (vec.Pool, engine.Context.GetVec/PutVec). It runs a
// forward may-dataflow over each function's CFG, tracking which locals hold
// a pooled buffer (bound from GetVec/Get or from a callee known to return
// one) and which have been retired by PutVec/Put, and reports:
//
//   - use-after-Put: any read of a buffer on some path after the pool took
//     it back — including reads after a Put inside a nested branch, which
//     the older statement-list-scoped vecalias check could not see;
//   - double-Put: a second Put of the same buffer, including one performed
//     by a deferred call at function exit (with a fix deleting a duplicate
//     Put statement);
//   - escape of a live pooled buffer into longer-lived state (a struct
//     field or package variable): after the eventual PutVec that state
//     would alias recycled memory. Storing into a local slice or map is NOT
//     flagged — the SVRG step parks per-task partials in a local slice
//     between its pure and Run closures, which is ownership-preserving;
//   - capture-after-Put: a closure created at a point where a captured
//     buffer is already retired will read recycled memory whenever it runs.
//
// Returning a pooled buffer is legal — the pool contract (engine/agg.go)
// makes a return an ownership transfer — so instead of flagging returns the
// analyzer exports a ReturnsPooled fact and marks the caller's binding as
// pooled. Callees that retire their arguments export a PutsParams fact, so
// a helper that Puts a buffer kills the caller's binding too; both facts
// cross package boundaries via the driver's dependency-ordered fact store.
package buflife

import (
	"go/ast"
	"go/types"

	"mllibstar/internal/analysis"
	"mllibstar/internal/analysis/callgraph"
	"mllibstar/internal/analysis/cfg"
	"mllibstar/internal/analysis/taint"
)

const name = "buflife"

// Analyzer is the flow-sensitive pooled-buffer lifetime check.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "flow-sensitive GetVec/PutVec lifetimes: use-after-Put, double-Put, escapes of pooled buffers into long-lived state",
	FactsAll: true,
	DefaultScope: []string{
		"mllibstar/internal/allreduce",
		"mllibstar/internal/angel",
		"mllibstar/internal/causal",
		"mllibstar/internal/core",
		"mllibstar/internal/engine",
		"mllibstar/internal/lbfgs",
		"mllibstar/internal/mavg",
		"mllibstar/internal/mllib",
		"mllibstar/internal/opt",
		"mllibstar/internal/petuum",
		"mllibstar/internal/ps",
		"mllibstar/internal/serve",
		"mllibstar/internal/train",
		"mllibstar/internal/vec",
	},
	Run: run,
}

const (
	pooled taint.Marks = 1 << iota // holds a buffer owned by this function
	dead                           // retired by Put: the pool owns it again
)

// summary is one function's exported lifetime contract.
type summary struct {
	// PutsParams lists the indices of float-slice parameters the function
	// may retire (pass to Put on some path).
	PutsParams []int `json:"putsParams,omitempty"`
	// ReturnsPooled reports that some result may be a pooled buffer, whose
	// ownership transfers to the caller.
	ReturnsPooled bool `json:"returnsPooled,omitempty"`
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.TypesInfo, pass.Files)
	a := &analyzer{
		pass:   pass,
		graph:  g,
		sums:   map[*callgraph.Node]*summary{},
		remote: map[*types.Func]*summary{},
		bySite: map[*ast.CallExpr][]callgraph.Call{},
		cfgs:   map[*callgraph.Node]*cfg.Graph{},
	}
	for _, n := range g.Nodes {
		a.sums[n] = &summary{}
		for _, c := range n.Calls {
			a.bySite[c.Site] = append(a.bySite[c.Site], c)
		}
		if body := n.Body(); body != nil {
			a.cfgs[n] = cfg.New(body)
		}
	}

	callgraph.BottomUp(g, func(n *callgraph.Node) bool { return a.summarize(n) })

	facts := pass.FactStore()
	for _, n := range g.Nodes {
		if n.Fn != nil {
			facts.Export(name, callgraph.FuncID(n.Fn), a.sums[n])
		}
	}

	for _, n := range g.Nodes {
		a.report(n)
	}
	return nil
}

type analyzer struct {
	pass   *analysis.Pass
	graph  *callgraph.Graph
	sums   map[*callgraph.Node]*summary
	remote map[*types.Func]*summary
	bySite map[*ast.CallExpr][]callgraph.Call
	cfgs   map[*callgraph.Node]*cfg.Graph
}

// calleeSummaries resolves a call site to the lifetime summaries of its
// possible targets (in-package nodes live, remote ones via facts).
func (a *analyzer) calleeSummaries(call *ast.CallExpr) []*summary {
	var out []*summary
	for _, c := range a.bySite[call] {
		switch {
		case c.Callee != nil:
			out = append(out, a.sums[c.Callee])
		case c.Remote != nil:
			s, ok := a.remote[c.Remote]
			if !ok {
				s = &summary{}
				a.pass.FactStore().Import(name, callgraph.FuncID(c.Remote), s)
				a.remote[c.Remote] = s
			}
			out = append(out, s)
		}
	}
	return out
}

// problem builds the dataflow instance for one function node.
func (a *analyzer) problem(n *callgraph.Node) *taint.Problem {
	return &taint.Problem{
		Graph:    a.cfgs[n],
		Transfer: func(nd ast.Node, st taint.State) { a.transfer(nd, st) },
	}
}

func (a *analyzer) transfer(n ast.Node, st taint.State) {
	if d, ok := taint.IsDeferredExec(n); ok {
		a.applyCalls(d.Call, st)
		return
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		// Registration has no effect; the call runs at exit.
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			a.applyCalls(rhs, st)
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				a.bind(n.Lhs[i], a.markOf(n.Rhs[i], st), st)
			}
		} else if len(n.Rhs) == 1 {
			m := a.markOf(n.Rhs[0], st)
			for _, lhs := range n.Lhs {
				a.bind(lhs, m, st)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						a.applyCalls(vs.Values[i], st)
						a.bind(name, a.markOf(vs.Values[i], st), st)
					}
				}
			}
		}
	case *ast.RangeStmt:
		a.applyCalls(n.X, st)
		a.bind(n.Key, 0, st)
		a.bind(n.Value, 0, st)
	default:
		a.applyCalls(n, st)
	}
}

// bind rebinds one assignment target: an identifier takes the new marks (a
// strong update — rebinding revives a retired name); other targets are left
// to the escape check in the report pass.
func (a *analyzer) bind(lhs ast.Expr, m taint.Marks, st taint.State) {
	if lhs == nil {
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := a.pass.TypesInfo.ObjectOf(id); obj != nil {
		// Only ownership (pooled) propagates through binding; a variable
		// can never be born dead.
		st.Set(obj, m&pooled)
	}
}

// markOf computes the lifetime marks of an expression's value.
func (a *analyzer) markOf(e ast.Expr, st taint.State) taint.Marks {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := a.pass.TypesInfo.Uses[e]; obj != nil {
			return st.Get(obj)
		}
	case *ast.SliceExpr:
		return a.markOf(e.X, st)
	case *ast.CallExpr:
		if a.isGetCall(e) {
			return pooled
		}
		for _, s := range a.calleeSummaries(e) {
			if s.ReturnsPooled {
				return pooled
			}
		}
	}
	return 0
}

// applyCalls applies the kill effects of every call in the subtree: Put
// primitives and callees that retire their parameters. Nested function
// literals are opaque values.
func (a *analyzer) applyCalls(n ast.Node, st taint.State) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := a.putArg(call); obj != nil {
			st.Add(obj, dead)
			return true
		}
		for _, s := range a.calleeSummaries(call) {
			for _, idx := range s.PutsParams {
				if idx >= len(call.Args) {
					continue
				}
				if id, ok := ast.Unparen(call.Args[idx]).(*ast.Ident); ok {
					if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
						st.Add(obj, dead)
					}
				}
			}
		}
		return true
	})
}

// putArg recognizes a pool-retire primitive — a method call named Put or
// PutVec whose single argument is a float-slice identifier — and returns
// the retired object.
func (a *analyzer) putArg(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Put" && sel.Sel.Name != "PutVec") || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := a.pass.TypesInfo.Uses[id]
	if obj == nil || !analysis.IsFloatSlice(obj.Type()) {
		return nil
	}
	return obj
}

// isGetCall recognizes a pool-acquire primitive: a method call named Get or
// GetVec whose result is a float slice.
func (a *analyzer) isGetCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "GetVec") {
		return false
	}
	tv, ok := a.pass.TypesInfo.Types[call]
	return ok && analysis.IsFloatSlice(tv.Type)
}

// summarize recomputes one node's exported contract, reporting change (the
// BottomUp fixpoint driver).
func (a *analyzer) summarize(n *callgraph.Node) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	s := a.sums[n]

	params := map[types.Object]int{}
	if n.Decl != nil && n.Decl.Type.Params != nil {
		i := 0
		for _, f := range n.Decl.Type.Params.List {
			for _, name := range f.Names {
				if obj := a.pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = i
				}
				i++
			}
		}
	}

	changed := false
	puts := map[int]bool{}
	for _, idx := range s.PutsParams {
		puts[idx] = true
	}
	// Which parameters may this function retire, directly or via a callee?
	for _, c := range n.Calls {
		if obj := a.putArg(c.Site); obj != nil {
			if idx, ok := params[obj]; ok && !puts[idx] {
				puts[idx] = true
				changed = true
			}
			continue
		}
		for _, cs := range a.calleeSummaries(c.Site) {
			for _, argIdx := range cs.PutsParams {
				if argIdx >= len(c.Site.Args) {
					continue
				}
				id, ok := ast.Unparen(c.Site.Args[argIdx]).(*ast.Ident)
				if !ok {
					continue
				}
				if idx, ok := params[a.pass.TypesInfo.Uses[id]]; ok && !puts[idx] {
					puts[idx] = true
					changed = true
				}
			}
		}
	}
	if changed {
		s.PutsParams = s.PutsParams[:0]
		for idx := range puts { //mlstar:nolint determinism -- small index set, sorted below
			s.PutsParams = append(s.PutsParams, idx)
		}
		sortInts(s.PutsParams)
	}

	if !s.ReturnsPooled {
		pr := a.problem(n)
		in := pr.Solve()
		pr.Replay(in, func(nd ast.Node, st taint.State) {
			if ret, ok := nd.(*ast.ReturnStmt); ok {
				for _, res := range ret.Results {
					if a.markOf(res, st)&pooled != 0 {
						s.ReturnsPooled = true
					}
				}
			}
		})
		if s.ReturnsPooled {
			changed = true
		}
	}
	return changed
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// report replays one function's dataflow with diagnostics enabled.
func (a *analyzer) report(n *callgraph.Node) {
	if n.Body() == nil {
		return
	}
	pr := a.problem(n)
	in := pr.Solve()
	pr.Replay(in, func(nd ast.Node, st taint.State) {
		if d, ok := taint.IsDeferredExec(nd); ok {
			a.checkPuts(d.Call, st)
			return
		}
		switch nd := nd.(type) {
		case *ast.DeferStmt:
			// Effects and diagnostics belong to the exit replay.
		case *ast.RangeStmt:
			// The head block holds the whole RangeStmt; the body statements
			// are visited as their own nodes with their own (correct) states,
			// so only the range operand is checked here.
			a.checkUses(nd.X, st)
		case *ast.AssignStmt:
			for i, rhs := range nd.Rhs {
				a.checkUses(rhs, st)
				if i < len(nd.Lhs) {
					a.checkEscape(nd.Lhs[i], rhs, st)
				}
			}
			for _, lhs := range nd.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					a.checkUses(lhs, st)
				}
			}
		default:
			a.checkUses(nd, st)
		}
	})
}

// checkUses reports reads of retired buffers, double-Puts, and captures of
// retired buffers by closures, inside one node.
func (a *analyzer) checkUses(n ast.Node, st taint.State) {
	if n == nil {
		return
	}
	// Put sites are diagnosed as double-Puts, not as plain reads.
	putIdents := map[*ast.Ident]bool{}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok && a.putArg(call) != nil {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				putIdents[id] = true
			}
		}
		return true
	})
	a.checkPuts(n, st)
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			a.checkCapture(c, st)
			return false
		case *ast.Ident:
			if putIdents[c] {
				return true
			}
			if obj := a.pass.TypesInfo.Uses[c]; obj != nil && st.Get(obj)&dead != 0 {
				a.pass.Reportf(c.Pos(),
					"use of pooled buffer %s after Put on some path; the pool owns it and may hand it to another task", obj.Name())
			}
		}
		return true
	})
}

// checkPuts reports double-Puts inside one subtree (also used alone for the
// deferred replay, where only the Put itself is executing).
func (a *analyzer) checkPuts(n ast.Node, st taint.State) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := a.putArg(call); obj != nil && st.Get(obj)&dead != 0 {
			a.reportDoublePut(call, obj)
		}
		return true
	})
}

// reportDoublePut flags a second Put, with a fix deleting the whole
// statement when the Put is a statement of its own.
func (a *analyzer) reportDoublePut(call *ast.CallExpr, obj types.Object) {
	msg := "double Put of pooled buffer %s on some path; the pool already owns it"
	if stmt := a.enclosingExprStmt(call); stmt != nil {
		a.pass.ReportFix(call.Pos(), analysis.SuggestedFix{
			Message: "delete the redundant Put",
			Edits:   []analysis.TextEdit{{Pos: stmt.Pos(), End: stmt.End()}},
		}, msg, obj.Name())
		return
	}
	a.pass.Reportf(call.Pos(), msg, obj.Name())
}

// enclosingExprStmt finds the expression statement whose expression is
// exactly this call, if any.
func (a *analyzer) enclosingExprStmt(call *ast.CallExpr) *ast.ExprStmt {
	var found *ast.ExprStmt
	for _, f := range a.pass.Files {
		if f.Pos() <= call.Pos() && call.End() <= f.End() {
			ast.Inspect(f, func(n ast.Node) bool {
				if es, ok := n.(*ast.ExprStmt); ok && ast.Unparen(es.X) == call {
					found = es
					return false
				}
				return true
			})
		}
	}
	return found
}

// checkCapture flags closures created while a captured buffer is already
// retired: whenever the closure later runs, it reads recycled memory.
func (a *analyzer) checkCapture(lit *ast.FuncLit, st taint.State) {
	ast.Inspect(lit.Body, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil && st.Get(obj)&dead != 0 {
			a.pass.Reportf(lit.Pos(),
				"closure captures pooled buffer %s after Put; when the closure runs it will read recycled memory", obj.Name())
			return false
		}
		return true
	})
}

// checkEscape flags a live pooled buffer stored into longer-lived state.
func (a *analyzer) checkEscape(lhs, rhs ast.Expr, st taint.State) {
	if a.markOf(rhs, st)&pooled == 0 {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		a.pass.Reportf(rhs.Pos(),
			"pooled buffer stored into field %s outlives its PutVec; copy it (vec.Copy) or keep it function-local", l.Sel.Name)
	case *ast.Ident:
		obj := a.pass.TypesInfo.ObjectOf(l)
		if obj != nil && obj.Parent() == a.pass.Pkg.Scope() {
			a.pass.Reportf(rhs.Pos(),
				"pooled buffer stored into package variable %s outlives its PutVec; copy it (vec.Copy) or keep it function-local", l.Name)
		}
	}
}
