package buflife_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/buflife"
	"mllibstar/internal/analysis/vecalias"
)

func TestBuflife(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", buflife.Analyzer)
}

// Every Put in the corpus hides inside a nested branch, behind defer, or
// inside a callee, and every escape involves a local rather than a
// parameter — all outside the statement-list scope of the syntactic
// vecalias check, which must report nothing here.
func TestVecaliasMissesFlowSensitiveLifetimes(t *testing.T) {
	analysistest.RunSilent(t, "testdata/src/a", vecalias.Analyzer)
}

// The slab-kernel corpus distills internal/data's hot-loop idioms: pooled
// gradient scratch borrowed (never retired) by kernel callees, a Put after
// the last use, and a deferred Put covering every exit. The reslice-heavy
// pipelined inner loops must not confuse the lifetime tracking — buflife
// stays silent on balanced kernel code.
func TestBuflifeSilentOnKernelIdioms(t *testing.T) {
	analysistest.RunSilent(t, "testdata/src/kernel", buflife.Analyzer)
}
