package buflife_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/buflife"
	"mllibstar/internal/analysis/vecalias"
)

func TestBuflife(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", buflife.Analyzer)
}

// Every Put in the corpus hides inside a nested branch, behind defer, or
// inside a callee, and every escape involves a local rather than a
// parameter — all outside the statement-list scope of the syntactic
// vecalias check, which must report nothing here.
func TestVecaliasMissesFlowSensitiveLifetimes(t *testing.T) {
	analysistest.RunSilent(t, "testdata/src/a", vecalias.Analyzer)
}
