// Corpus for the buflife analyzer: flow-sensitive pooled-buffer lifetimes.
// Every finding here is out of reach of the syntactic vecalias check, which
// only scopes a statement-level Put to its own statement list and never
// crosses a call (vecalias_regression_test asserts it stays silent on this
// whole file): the Puts below hide inside nested branches, behind defer, or
// inside callees, and the escapes involve locals rather than parameters.
package a

// Ctx mirrors engine.Context's pool surface; the analyzer recognizes
// Get/GetVec and Put/PutVec by name and float-slice type.
type Ctx struct{ depth int }

func (c *Ctx) GetVec(n int) []float64 { return make([]float64, n) }
func (c *Ctx) PutVec(b []float64)     {}

type holder struct{ buf []float64 }

func work(xs []float64)  {}
func scale(xs []float64) { xs[0] *= 2 }

// release retires its parameter: callers learn this through the exported
// PutsParams fact, not from any syntax at the call site.
func release(ctx *Ctx, b []float64) {
	ctx.PutVec(b)
}

// acquire returns a pooled buffer: ownership transfers to the caller (the
// agg.go contract), recorded as the ReturnsPooled fact.
func acquire(ctx *Ctx, n int) []float64 {
	return ctx.GetVec(n)
}

// A Put inside a branch retires the buffer on that path only; the
// flow-sensitive merge still catches the later use and the later Put.
func useAfterConditionalPut(ctx *Ctx, cond bool) {
	b := ctx.GetVec(8)
	if cond {
		ctx.PutVec(b)
	}
	b[0] = 1      // want `use of pooled buffer b after Put on some path`
	ctx.PutVec(b) // want `double Put of pooled buffer b on some path`
}

// The deferred Put runs at exit on every path — after the explicit Put.
func deferredDoublePut(ctx *Ctx) {
	b := ctx.GetVec(4)
	defer ctx.PutVec(b) // want `double Put of pooled buffer b on some path`
	work(b)
	ctx.PutVec(b)
}

// The Put happens inside release: only the interprocedural PutsParams fact
// reveals that b is dead at the scale call.
func useAfterHelperPut(ctx *Ctx) {
	b := ctx.GetVec(4)
	release(ctx, b)
	scale(b) // want `use of pooled buffer b after Put on some path`
}

// A closure created after a conditional Put captures recycled memory.
func captureAfterConditionalPut(ctx *Ctx, cond bool) func() float64 {
	b := ctx.GetVec(4)
	if cond {
		ctx.PutVec(b)
	}
	return func() float64 { return b[0] } // want `closure captures pooled buffer b after Put`
}

// Storing a live pooled local into a field outlives the eventual Put.
// vecalias only tracks parameters, so it cannot see this local escape.
func escapeToField(ctx *Ctx, h *holder) {
	b := ctx.GetVec(8)
	h.buf = b // want `pooled buffer stored into field buf outlives its PutVec`
	ctx.PutVec(b)
}

// The buffer is pooled only via acquire's ReturnsPooled fact.
func escapeReturned(ctx *Ctx, h *holder) {
	b := acquire(ctx, 4)
	h.buf = b // want `pooled buffer stored into field buf outlives its PutVec`
	ctx.PutVec(b)
}

// The SVRG ownership relay: parking pooled buffers in a local slice between
// closures is legal, and each is Put exactly once.
func relayViaSlice(ctx *Ctx) {
	partials := make([][]float64, 2)
	for i := range partials {
		p := ctx.GetVec(4)
		partials[i] = p
	}
	for _, p := range partials {
		ctx.PutVec(p)
	}
}

// Returning a pooled buffer transfers ownership: legal, no finding.
func transferOut(ctx *Ctx) []float64 {
	out := ctx.GetVec(4)
	out[0] = 1
	return out
}

// A scoped directive naming the analyzer suppresses the escape finding.
func sharedReadOnly(ctx *Ctx, h *holder) {
	b := ctx.GetVec(4)
	h.buf = b //mlstar:nolint buflife -- audited: read-only view dropped before the pool reuses it
	ctx.PutVec(b)
}
