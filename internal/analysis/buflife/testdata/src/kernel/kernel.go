// Corpus for the slab-kernel idioms of internal/data viewed through the
// pooled-buffer lifetime analysis: gradient scratch acquired from the pool,
// written by a kernel callee (which never retires it), and put back exactly
// once after the last use — including the reslice-heavy two-row pipelined
// inner loop and a deferred Put covering every exit path. All lifetimes are
// balanced, so buflife must stay silent on this whole file.
package kernel

// Ctx mirrors engine.Context's pool surface.
type Ctx struct{ depth int }

func (c *Ctx) GetVec(n int) []float64 { return make([]float64, n) }
func (c *Ctx) PutVec(b []float64)     {}

type arena struct {
	rowPtr []int
	ind    []int32
	val    []float64
}

// gradInto writes into the caller-owned g — it borrows the buffer and
// never Puts it, so callers keep full ownership across the call. The
// two-row margin pipeline reslices the slabs freely; none of those slices
// are pooled.
func gradInto(c *arena, lo, hi int, w, g []float64) {
	rp, ind, val := c.rowPtr, c.ind, c.val
	rs := rp[lo]
	r := lo
	for ; r+1 < hi; r += 2 {
		mid, re := rp[r+1], rp[r+2]
		rIx1, rVal1 := ind[rs:mid], val[rs:mid]
		rIx2, rVal2 := ind[mid:re], val[mid:re]
		m1, m2 := 0.0, 0.0
		k := len(rIx1)
		if len(rIx2) < k {
			k = len(rIx2)
		}
		for p := 0; p < k; p++ {
			m1 += w[rIx1[p]] * rVal1[p]
			m2 += w[rIx2[p]] * rVal2[p]
		}
		for p, ix := range rIx1 {
			g[ix] += m1 * rVal1[p]
		}
		for p, ix := range rIx2 {
			g[ix] += m2 * rVal2[p]
		}
		rs = re
	}
}

// superstep is the trainer shape: pooled gradient scratch, blocked kernel
// calls that borrow it, one Put after the last use.
func superstep(ctx *Ctx, c *arena, w []float64, blk int) float64 {
	g := ctx.GetVec(len(w))
	n := len(c.rowPtr) - 1
	for lo := 0; lo < n; lo += blk {
		hi := lo + blk
		if hi > n {
			hi = n
		}
		gradInto(c, lo, hi, w, g)
	}
	norm := 0.0
	for _, v := range g {
		norm += v * v
	}
	ctx.PutVec(g)
	return norm
}

// deferredSuperstep retires the scratch via defer — exactly once on every
// exit path, with all uses (the kernel calls and the fold) before exit.
func deferredSuperstep(ctx *Ctx, c *arena, w []float64) float64 {
	g := ctx.GetVec(len(w))
	defer ctx.PutVec(g)
	gradInto(c, 0, len(c.rowPtr)-1, w, g)
	s := 0.0
	for _, v := range g {
		s += v
	}
	return s
}
