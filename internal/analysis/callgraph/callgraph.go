// Package callgraph builds a conservative call graph of one package for the
// interprocedural analyzers in the mlstar lint suite. Nodes are the
// package's declared functions and methods plus every function literal;
// edges are the statically resolvable calls between them:
//
//   - direct calls to package-level functions and methods,
//   - immediately invoked literals (func(){...}()),
//   - calls through a local identifier bound to a function literal
//     (fold := func(){...}; fold()) or to a method value (f := x.M; f()),
//     resolved through every binding the identifier ever receives,
//
// Calls the graph cannot resolve inside the package are reported either as
// Remote (a *types.Func from another package — the hook for cross-package
// facts) or Dynamic (interface methods, function-typed parameters), which
// analyzers must treat according to their own conservatism policy.
//
// SCCs and BottomUp give analyzers a callee-first traversal with fixpoint
// iteration inside recursive components, the order function summaries (and
// the exported facts built from them) must be computed in.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Node is one function in the graph: a declared function/method (Fn and
// Decl set) or a function literal (Lit set).
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Name is a human-readable label: the function's name, "(*T).M" for
	// methods, or "funcN@line" for literals.
	Name  string
	Calls []Call

	index, lowlink int
	onStack        bool
}

// Body returns the node's statement body (nil for declarations without one).
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// Pos returns the node's source position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}

// Call is one call site inside a node.
type Call struct {
	Site *ast.CallExpr
	// Callee is the in-package target (declared function or literal) when
	// the call resolves statically; nil otherwise.
	Callee *Node
	// Remote is the callee object when it resolves to a function defined in
	// another package (or an in-package declaration without a body).
	Remote *types.Func
	// Dynamic marks calls through interface methods or function-typed
	// values with no visible binding: the target is unknown.
	Dynamic bool
}

// Graph is the package's call graph.
type Graph struct {
	// Nodes in deterministic order: declared functions in file/position
	// order, then literals in position order.
	Nodes  []*Node
	ByFunc map[*types.Func]*Node
	ByLit  map[*ast.FuncLit]*Node
}

// Build constructs the call graph of the package given its syntax and type
// information.
func Build(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{ByFunc: map[*types.Func]*Node{}, ByLit: map[*ast.FuncLit]*Node{}}

	// Pass 1: create nodes for declarations and literals.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn, _ := info.Defs[n.Name].(*types.Func)
				if fn == nil || n.Body == nil {
					return true
				}
				node := &Node{Fn: fn, Decl: n, Name: declName(n)}
				g.Nodes = append(g.Nodes, node)
				g.ByFunc[fn] = node
			case *ast.FuncLit:
				node := &Node{Lit: n, Name: fmt.Sprintf("func@%d", n.Pos())}
				g.Nodes = append(g.Nodes, node)
				g.ByLit[n] = node
			}
			return true
		})
	}
	sort.SliceStable(g.Nodes, func(i, j int) bool { return g.Nodes[i].Pos() < g.Nodes[j].Pos() })

	bindings := collectBindings(info, files)

	// Pass 2: resolve call sites. Each call belongs to the innermost
	// enclosing function node, so nested literal subtrees are skipped — they
	// are their own nodes and collect their own calls.
	for _, node := range g.Nodes {
		body := node.Body()
		if body == nil {
			continue
		}
		from := node
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				from.Calls = append(from.Calls, resolve(g, info, bindings, call)...)
			}
			return true
		})
	}
	return g
}

// declName renders "F" or "(T).M"/"(*T).M".
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	star := ""
	if se, ok := t.(*ast.StarExpr); ok {
		star, t = "*", se.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + star + id.Name + ")." + d.Name.Name
	}
	return d.Name.Name
}

// binding is everything a local identifier was ever assigned that the graph
// can see: function literals and method/function values.
type binding struct {
	lits []*ast.FuncLit
	fns  []*types.Func
}

// collectBindings maps each object to the function values bound to it
// anywhere in the package: f := func(){...}, f = x.M, var f = g. A variable
// that also receives opaque values keeps its visible bindings — the graph
// over-approximates the callee set, never prunes it.
func collectBindings(info *types.Info, files []*ast.File) map[types.Object]*binding {
	out := map[types.Object]*binding{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.FuncLit:
			b := out[obj]
			if b == nil {
				b = &binding{}
				out[obj] = b
			}
			b.lits = append(b.lits, rhs)
		case *ast.Ident: // f := g (a declared function used as a value)
			if fn, ok := info.Uses[rhs].(*types.Func); ok {
				b := out[obj]
				if b == nil {
					b = &binding{}
					out[obj] = b
				}
				b.fns = append(b.fns, fn)
			}
		case *ast.SelectorExpr: // f := x.M (method value) or f := pkg.G
			if fn, ok := info.Uses[rhs.Sel].(*types.Func); ok {
				b := out[obj]
				if b == nil {
					b = &binding{}
					out[obj] = b
				}
				b.fns = append(b.fns, fn)
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i := range n.Lhs {
					if i < len(n.Rhs) {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i := range n.Names {
					if i < len(n.Values) {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// resolve classifies one call site into zero or more Call records. A call
// through a bound identifier yields one record per visible binding.
func resolve(g *Graph, info *types.Info, bindings map[types.Object]*binding, call *ast.CallExpr) []Call {
	// Conversions (T(x)) and built-ins are not calls for our purposes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return []Call{{Site: call, Callee: g.ByLit[fun]}}
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return toFunc(g, call, obj)
		case *types.Var:
			if b := bindings[obj]; b != nil {
				var out []Call
				for _, lit := range b.lits {
					out = append(out, Call{Site: call, Callee: g.ByLit[lit]})
				}
				for _, fn := range b.fns {
					out = append(out, toFunc(g, call, fn)...)
				}
				return out
			}
			return []Call{{Site: call, Dynamic: true}}
		case *types.Builtin, nil:
			return nil
		}
		return []Call{{Site: call, Dynamic: true}}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// Interface method calls have no body anywhere: mark dynamic.
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				if types.IsInterface(sel.Recv()) {
					return []Call{{Site: call, Remote: origin(fn), Dynamic: true}}
				}
			}
			return toFunc(g, call, fn)
		}
		return []Call{{Site: call, Dynamic: true}}
	}
	return []Call{{Site: call, Dynamic: true}}
}

// toFunc resolves a *types.Func to an in-package node or a Remote record.
func toFunc(g *Graph, call *ast.CallExpr, fn *types.Func) []Call {
	fn = origin(fn)
	if node, ok := g.ByFunc[fn]; ok {
		return []Call{{Site: call, Callee: node}}
	}
	return []Call{{Site: call, Remote: fn}}
}

// origin maps a generic instantiation back to its declared function so
// node lookup and fact keys are stable.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// FuncID is a stable, package-qualified identifier for a declared function
// or method, usable as a fact key across separately type-checked packages
// (the loader gives every directly checked package its own type universe,
// so object identity does not survive package boundaries but FullName
// does).
func FuncID(fn *types.Func) string {
	return origin(fn).FullName()
}

// SCCs returns the strongly connected components of the graph in
// callee-first (reverse topological) order: every edge from a component
// points into an earlier component or itself.
func SCCs(g *Graph) [][]*Node {
	t := &tarjan{index: map[*Node]bool{}}
	for _, n := range g.Nodes {
		if !t.index[n] {
			t.visit(n)
		}
	}
	return t.sccs
}

type tarjan struct {
	counter int
	stack   []*Node
	index   map[*Node]bool
	sccs    [][]*Node
}

func (t *tarjan) visit(n *Node) {
	t.index[n] = true
	t.counter++
	n.index, n.lowlink = t.counter, t.counter
	t.stack = append(t.stack, n)
	n.onStack = true
	for _, c := range n.Calls {
		m := c.Callee
		if m == nil {
			continue
		}
		if !t.index[m] {
			t.visit(m)
			if m.lowlink < n.lowlink {
				n.lowlink = m.lowlink
			}
		} else if m.onStack && m.index < n.lowlink {
			n.lowlink = m.index
		}
	}
	if n.lowlink == n.index {
		var scc []*Node
		for {
			m := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			m.onStack = false
			scc = append(scc, m)
			if m == n {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}

// BottomUp traverses the graph callee-first, calling visit on each node and
// iterating recursive components until visit reports no change for a full
// round — the fixpoint schedule for computing function summaries.
func BottomUp(g *Graph, visit func(n *Node) bool) {
	for _, scc := range SCCs(g) {
		if len(scc) == 1 && !hasSelfLoop(scc[0]) {
			visit(scc[0])
			continue
		}
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if visit(n) {
					changed = true
				}
			}
		}
	}
}

func hasSelfLoop(n *Node) bool {
	for _, c := range n.Calls {
		if c.Callee == n {
			return true
		}
	}
	return false
}
