package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load parses and type-checks one in-memory file (no imports allowed) and
// builds its call graph.
func load(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build(info, []*ast.File{f})
}

// node finds the named graph node, failing when absent.
func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	names := make([]string, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		names = append(names, n.Name)
	}
	t.Fatalf("node %q not in graph %v", name, names)
	return nil
}

// callees returns the resolved in-package callees of a node, by name.
func callees(n *Node) []string {
	var out []string
	for _, c := range n.Calls {
		if c.Callee != nil {
			out = append(out, c.Callee.Name)
		}
	}
	return out
}

func TestDirectAndMethodCalls(t *testing.T) {
	g := load(t, `package p

type T struct{}

func (t *T) M() {}
func g()        {}

func f() {
	g()
	var t T
	t.M()
}
`)
	f := node(t, g, "f")
	got := callees(f)
	want := map[string]bool{"g": true, "(*T).M": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Errorf("f callees = %v, want g and (*T).M", got)
	}
}

func TestMethodValueAndNamedClosure(t *testing.T) {
	g := load(t, `package p

type T struct{}

func (t T) M() int { return 1 }

func f() int {
	var t T
	m := t.M
	fold := func() int { return 2 }
	return m() + fold()
}
`)
	f := node(t, g, "f")
	var litCallee, methodCallee bool
	for _, c := range f.Calls {
		if c.Callee == nil {
			continue
		}
		if c.Callee.Lit != nil {
			litCallee = true
		}
		if c.Callee.Name == "(T).M" {
			methodCallee = true
		}
	}
	if !methodCallee {
		t.Errorf("call through a method value must resolve to (T).M; calls = %+v", f.Calls)
	}
	if !litCallee {
		t.Errorf("call through a named closure must resolve to its literal; calls = %+v", f.Calls)
	}
}

func TestNestedLiteralOwnership(t *testing.T) {
	g := load(t, `package p

func g() {}
func h() {}

func f() {
	func() {
		g()
	}()
	stored := func() { h() }
	_ = stored
}
`)
	f := node(t, g, "f")
	// f owns only the immediate invocation of the first literal — the calls
	// inside both literals belong to the literal nodes.
	for _, name := range callees(f) {
		if name == "g" || name == "h" {
			t.Errorf("call %s inside a literal must not be attributed to f", name)
		}
	}
	var sawG, sawH bool
	for _, n := range g.Nodes {
		if n.Lit == nil {
			continue
		}
		for _, name := range callees(n) {
			sawG = sawG || name == "g"
			sawH = sawH || name == "h"
		}
	}
	if !sawG || !sawH {
		t.Errorf("literal nodes must own their calls: sawG=%v sawH=%v", sawG, sawH)
	}
	// The immediately invoked literal is f's callee.
	invoked := false
	for _, c := range f.Calls {
		if c.Callee != nil && c.Callee.Lit != nil {
			invoked = true
		}
	}
	if !invoked {
		t.Errorf("immediately invoked literal must be a resolved callee of f")
	}
}

func TestDynamicAndRemote(t *testing.T) {
	g := load(t, `package p

func external() // implemented elsewhere: no body

func f(cb func()) {
	cb()
	external()
}
`)
	f := node(t, g, "f")
	var dynamic, remote bool
	for _, c := range f.Calls {
		if c.Dynamic {
			dynamic = true
		}
		if c.Remote != nil {
			remote = true
			if got := FuncID(c.Remote); got != "p.external" {
				t.Errorf("FuncID(external) = %q, want p.external", got)
			}
		}
	}
	if !dynamic {
		t.Errorf("call through a function parameter must be Dynamic; calls = %+v", f.Calls)
	}
	if !remote {
		t.Errorf("call to a bodyless declaration must be Remote; calls = %+v", f.Calls)
	}
}

func TestInterfaceCallIsDynamicWithRemote(t *testing.T) {
	g := load(t, `package p

type I interface{ M() }

func f(i I) {
	i.M()
}
`)
	f := node(t, g, "f")
	if len(f.Calls) != 1 {
		t.Fatalf("f has %d calls, want 1", len(f.Calls))
	}
	c := f.Calls[0]
	if !c.Dynamic || c.Remote == nil || c.Remote.Name() != "M" {
		t.Errorf("interface call must be Dynamic with the method as Remote; got %+v", c)
	}
}

func TestGenericInstantiationResolvesToOrigin(t *testing.T) {
	g := load(t, `package p

func gen[T any](x T) {}

func f() {
	gen(1)
	gen("s")
}
`)
	f := node(t, g, "f")
	genNode := node(t, g, "gen")
	for _, c := range f.Calls {
		if c.Callee != genNode {
			t.Errorf("generic instantiation must resolve to the origin node; got %+v", c)
		}
	}
	if len(f.Calls) != 2 {
		t.Errorf("f has %d calls, want 2", len(f.Calls))
	}
}

func TestSCCsCalleeFirst(t *testing.T) {
	g := load(t, `package p

func a() { b() }
func b() { a() }
func c() { a() }
func leaf() {}
`)
	sccs := SCCs(g)
	pos := map[string]int{}
	for i, scc := range sccs {
		for _, n := range scc {
			pos[n.Name] = i
		}
	}
	if pos["a"] != pos["b"] {
		t.Errorf("a and b are mutually recursive and must share an SCC")
	}
	if pos["a"] >= pos["c"] {
		t.Errorf("callee SCC {a,b} must come before caller {c}: pos=%v", pos)
	}
}

func TestBottomUpFixpoint(t *testing.T) {
	g := load(t, `package p

func leaf() {}
func x() { leaf() }
func a() { b() }
func b() { a(); x() }
func top() { a() }
func r() { r() }
`)
	// Compute "transitively reaches leaf" — inside the {a,b} SCC the answer
	// propagates only by iterating to a fixpoint.
	reach := map[*Node]bool{}
	visits := map[string]int{}
	BottomUp(g, func(n *Node) bool {
		visits[n.Name]++
		v := n.Name == "leaf"
		for _, c := range n.Calls {
			if c.Callee != nil && reach[c.Callee] {
				v = true
			}
		}
		if v && !reach[n] {
			reach[n] = true
			return true
		}
		return false
	})
	for _, name := range []string{"leaf", "x", "a", "b", "top"} {
		if !reach[node(t, g, name)] {
			t.Errorf("%s must be marked as reaching leaf", name)
		}
	}
	if reach[node(t, g, "r")] {
		t.Errorf("r never reaches leaf")
	}
	if visits["a"] < 2 || visits["b"] < 2 {
		t.Errorf("recursive SCC members must be visited to a fixpoint: visits=%v", visits)
	}
	if visits["leaf"] != 1 || visits["top"] != 1 {
		t.Errorf("non-recursive singletons must be visited exactly once: visits=%v", visits)
	}
}
