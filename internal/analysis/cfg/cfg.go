// Package cfg builds per-function control-flow graphs over the standard
// library's AST, for the flow-sensitive analyzers in the mlstar lint suite
// (buflife, detflow, costcharge). Like the rest of internal/analysis it is a
// deliberately small, stdlib-only sibling of golang.org/x/tools/go/cfg: a
// Graph is a list of basic blocks of ast.Nodes connected by successor
// edges, with one synthetic entry and one synthetic exit block.
//
// The construction is conservative in the direction dataflow analyses need:
// whenever the builder cannot model a statement's control flow precisely it
// adds more edges rather than fewer, so a forward "may" analysis run over
// the graph over-approximates the set of reachable states and never misses
// a path that real execution could take.
//
// Deferred calls do not appear as ordinary edges — they run at function
// exit in LIFO order, on every path. The builder records them in
// Graph.Defers (in syntactic order) so analyses can process them against
// the exit state; see taint.Problem.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first. It may carry nodes.
	Entry *Block
	// Exit is the synthetic block every return path reaches. It carries no
	// nodes and has no successors.
	Exit *Block
	// Blocks lists every block, Entry first, in creation order — a stable,
	// deterministic order analyzers can iterate for reporting.
	Blocks []*Block
	// Defers are the function's defer statements in syntactic order. They
	// execute at exit (on every path, in reverse order); analyses that track
	// resource lifetimes must replay them against the exit state.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal sequence of nodes executed in order,
// ending in a transfer of control to one of Succs.
type Block struct {
	Index int
	Kind  string // for debugging and tests: "entry", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []*Block
}

// String renders the graph's shape for tests and debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "%d:%s ->", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, " %d", s.Index)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// New builds the CFG of one function body. body may be the Body of an
// *ast.FuncDecl or *ast.FuncLit; nested function literals are treated as
// opaque values (their bodies are separate functions with their own
// graphs).
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Exit = &Block{Kind: "exit"}
	b.cur = b.newBlock("entry")
	b.g.Entry = b.cur
	b.stmtList(body.List)
	b.jump(b.g.Exit)
	// Exit goes last so Blocks order follows creation order of real blocks.
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	b.resolveGotos()
	return b.g
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block

	// loops and switches push break/continue targets; a label on the
	// statement names the frame so labeled break/continue resolve.
	frames []frame

	// labeled blocks for goto; forward gotos are patched at the end.
	labels       map[string]*Block
	pendingGotos []pendingGoto

	// label to attach to the next loop/switch statement.
	nextLabel string
}

type frame struct {
	label   string
	breakTo *Block
	contTo  *Block // nil for switch/select frames
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge from the current block to dst.
func (b *builder) jump(dst *Block) {
	for _, s := range b.cur.Succs {
		if s == dst {
			return
		}
	}
	b.cur.Succs = append(b.cur.Succs, dst)
}

// startUnreachable begins a fresh block with no predecessors, for code
// following a return/branch. It stays in the graph (diagnostics may still
// want to walk it) but receives no flow.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.nextLabel
	b.nextLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// The label is both a goto target and (for loops/switches) the name
		// of the break/continue frame of the labeled statement.
		target := b.newBlock("label." + s.Label.Name)
		b.jump(target)
		b.cur = target
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = target
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
		b.startUnreachable()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, nil)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.jump(b.g.Exit)
			b.startUnreachable()
		}
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt, ...
		// straight-line statements with no internal control flow.
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if f := b.findFrame(name, false); f != nil {
			b.jump(f.breakTo)
		}
		b.startUnreachable()
	case "continue":
		if f := b.findFrame(name, true); f != nil {
			b.jump(f.contTo)
		}
		b.startUnreachable()
	case "goto":
		if dst, ok := b.labels[name]; ok {
			b.jump(dst)
		} else {
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: name})
		}
		b.startUnreachable()
	case "fallthrough":
		// switchBody wires the fall-through edge; nothing to do here.
	}
}

// findFrame locates the innermost matching break/continue frame. A nil
// result (syntactically invalid code) degrades to dropping the edge, which
// the type checker would have rejected anyway.
func (b *builder) findFrame(label string, needContinue bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.contTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	condBlk := b.cur
	done := b.newBlock("if.done")

	thenBlk := b.newBlock("if.then")
	condBlk.Succs = append(condBlk.Succs, thenBlk)
	b.cur = thenBlk
	b.stmtList(s.Body.List)
	b.jump(done)

	if s.Else != nil {
		elseBlk := b.newBlock("if.else")
		condBlk.Succs = append(condBlk.Succs, elseBlk)
		b.cur = elseBlk
		b.stmt(s.Else)
		b.jump(done)
	} else {
		condBlk.Succs = append(condBlk.Succs, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.jump(head)
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Succs = append(post.Succs, head)
	}

	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		head.Succs = append(head.Succs, done)
	}
	body := b.newBlock("for.body")
	head.Succs = append(head.Succs, body)
	b.cur = body
	b.frames = append(b.frames, frame{label: label, breakTo: done, contTo: post})
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.jump(post)
	if s.Post != nil {
		post.Nodes = append(post.Nodes, s.Post)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	// The RangeStmt node itself sits in the loop head: analyzers see it once
	// per fixpoint pass and can bind the key/value variables there.
	head := b.newBlock("range.head")
	b.jump(head)
	done := b.newBlock("range.done")
	head.Nodes = append(head.Nodes, s)
	head.Succs = append(head.Succs, done)

	body := b.newBlock("range.body")
	head.Succs = append(head.Succs, body)
	b.cur = body
	b.frames = append(b.frames, frame{label: label, breakTo: done, contTo: head})
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.jump(head)
	b.cur = done
}

// switchBody wires the clauses of a switch or type switch: every clause is
// entered from the head (conservatively — clause guards are not evaluated),
// fallthrough falls into the next clause, and a missing default adds a
// head→done edge.
func (b *builder) switchBody(body *ast.BlockStmt, label string, _ *Block) {
	head := b.cur
	done := b.newBlock("switch.done")
	b.frames = append(b.frames, frame{label: label, breakTo: done})

	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("case")
		head.Succs = append(head.Succs, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		}
		b.jump(done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	done := b.newBlock("select.done")
	b.frames = append(b.frames, frame{label: label, breakTo: done})
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm")
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// resolveGotos patches forward gotos now that every label block exists.
// Gotos to labels the source never defines (impossible in type-checked
// code) are dropped.
func (b *builder) resolveGotos() {
	for _, pg := range b.pendingGotos {
		if dst, ok := b.labels[pg.label]; ok {
			pg.from.Succs = append(pg.from.Succs, dst)
		}
	}
}

// isTerminalCall reports whether the expression statement unconditionally
// stops the function: a call to the panic built-in or os.Exit-style
// terminators (matched by name only — precision here only prunes dead
// edges, it never adds them).
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fun.Sel.Name == "Exit") ||
				(pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"))
		}
	}
	return false
}
