package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses a function body and constructs its CFG. The source is parse-
// only (no type checking), so bodies may reference undeclared identifiers.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return New(fd.Body)
		}
	}
	t.Fatal("func f not found")
	return nil
}

// blocksOf returns the blocks of the given kind in creation order.
func blocksOf(g *Graph, kind string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

// one returns the single block of the given kind, failing otherwise.
func one(t *testing.T, g *Graph, kind string) *Block {
	t.Helper()
	bs := blocksOf(g, kind)
	if len(bs) != 1 {
		t.Fatalf("want exactly one %q block, got %d\n%s", kind, len(bs), g)
	}
	return bs[0]
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// branchBlock finds the block holding a break/continue/goto of the given
// token (there must be exactly one in the graph).
func branchBlock(t *testing.T, g *Graph, tok string) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok.String() == tok {
				if found != nil {
					t.Fatalf("multiple %s statements in graph", tok)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block holds a %s statement\n%s", tok, g)
	}
	return found
}

func TestIfElse(t *testing.T) {
	g := build(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	_ = x
`)
	then, els, done := one(t, g, "if.then"), one(t, g, "if.else"), one(t, g, "if.done")
	if !hasEdge(g.Entry, then) || !hasEdge(g.Entry, els) {
		t.Errorf("cond block must branch to both arms\n%s", g)
	}
	if hasEdge(g.Entry, done) {
		t.Errorf("with an else present, cond must not edge straight to done\n%s", g)
	}
	if !hasEdge(then, done) || !hasEdge(els, done) {
		t.Errorf("both arms must rejoin at done\n%s", g)
	}
	if !hasEdge(done, g.Exit) {
		t.Errorf("done must reach exit\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, `
	if cond {
		work()
	}
	after()
`)
	done := one(t, g, "if.done")
	if !hasEdge(g.Entry, done) {
		t.Errorf("without an else, cond must edge to done (the false path)\n%s", g)
	}
}

func TestForBreakContinue(t *testing.T) {
	g := build(t, `
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
	}
`)
	head, done, post := one(t, g, "for.head"), one(t, g, "for.done"), one(t, g, "for.post")
	if !hasEdge(head, done) {
		t.Errorf("conditional loop head must edge to done\n%s", g)
	}
	if !hasEdge(post, head) {
		t.Errorf("post block must loop back to head\n%s", g)
	}
	if b := branchBlock(t, g, "continue"); !hasEdge(b, post) {
		t.Errorf("continue must edge to the post block\n%s", g)
	}
	if b := branchBlock(t, g, "break"); !hasEdge(b, done) {
		t.Errorf("break must edge to done\n%s", g)
	}
	if len(post.Nodes) != 1 {
		t.Errorf("post block must carry the post statement, has %d nodes", len(post.Nodes))
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := build(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
		}
	}
`)
	posts, dones := blocksOf(g, "for.post"), blocksOf(g, "for.done")
	if len(posts) != 2 || len(dones) != 2 {
		t.Fatalf("want two nested loops, got %d posts / %d dones\n%s", len(posts), len(dones), g)
	}
	// Creation order: the outer loop's blocks are built before the inner's.
	outerPost, outerDone := posts[0], dones[0]
	innerPost, innerDone := posts[1], dones[1]
	if b := branchBlock(t, g, "continue"); !hasEdge(b, outerPost) || hasEdge(b, innerPost) {
		t.Errorf("continue outer must target the outer post, not the inner\n%s", g)
	}
	if b := branchBlock(t, g, "break"); !hasEdge(b, outerDone) || hasEdge(b, innerDone) {
		t.Errorf("break outer must target the outer done, not the inner\n%s", g)
	}
}

func TestRange(t *testing.T) {
	g := build(t, `
	s := 0
	for _, v := range m {
		s += v
	}
	_ = s
`)
	head, done, body := one(t, g, "range.head"), one(t, g, "range.done"), one(t, g, "range.body")
	if len(head.Nodes) != 1 {
		t.Fatalf("range head must hold the RangeStmt, has %d nodes", len(head.Nodes))
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Fatalf("range head node is %T, want *ast.RangeStmt", head.Nodes[0])
	}
	if !hasEdge(head, done) || !hasEdge(head, body) {
		t.Errorf("range head must branch to both body and done\n%s", g)
	}
	if !hasEdge(body, head) {
		t.Errorf("range body must loop back to head\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `
	switch x {
	case 0:
		a()
		fallthrough
	case 1:
		b()
	default:
		c()
	}
`)
	cases := blocksOf(g, "case")
	if len(cases) != 3 {
		t.Fatalf("want 3 case blocks, got %d\n%s", len(cases), g)
	}
	done := one(t, g, "switch.done")
	for _, c := range cases {
		if !hasEdge(g.Entry, c) {
			t.Errorf("switch head must edge to every clause\n%s", g)
		}
	}
	if hasEdge(g.Entry, done) {
		t.Errorf("switch with a default must not edge head to done\n%s", g)
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Errorf("fallthrough must edge case 0 into case 1\n%s", g)
	}
	if hasEdge(cases[1], cases[2]) {
		t.Errorf("no fallthrough from case 1 to default\n%s", g)
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := build(t, `
	switch x {
	case 0:
		a()
	}
	after()
`)
	done := one(t, g, "switch.done")
	if !hasEdge(g.Entry, done) {
		t.Errorf("switch without a default must edge head to done\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `
	select {
	case <-ch:
		a()
	case ch <- 1:
		b()
	}
`)
	comms := blocksOf(g, "comm")
	if len(comms) != 2 {
		t.Fatalf("want 2 comm blocks, got %d\n%s", len(comms), g)
	}
	done := one(t, g, "select.done")
	for _, c := range comms {
		if !hasEdge(g.Entry, c) || !hasEdge(c, done) {
			t.Errorf("every comm clause must be entered from head and rejoin done\n%s", g)
		}
	}
}

func TestDefersRecorded(t *testing.T) {
	g := build(t, `
	defer a()
	if cond {
		defer b()
	}
	defer c()
`)
	if len(g.Defers) != 3 {
		t.Fatalf("want 3 recorded defers, got %d", len(g.Defers))
	}
	for i := 1; i < len(g.Defers); i++ {
		if g.Defers[i].Pos() <= g.Defers[i-1].Pos() {
			t.Errorf("defers must be recorded in syntactic order")
		}
	}
}

func TestReturnUnreachable(t *testing.T) {
	g := build(t, `
	return
	x := 1
	_ = x
`)
	if !hasEdge(g.Entry, g.Exit) {
		t.Errorf("return must edge to exit\n%s", g)
	}
	dead := one(t, g, "unreachable")
	if len(dead.Nodes) != 2 {
		t.Errorf("code after return must land in the unreachable block, has %d nodes", len(dead.Nodes))
	}
	for _, b := range g.Blocks {
		if hasEdge(b, dead) {
			t.Errorf("unreachable block must have no predecessors\n%s", g)
		}
	}
}

func TestGotoBackward(t *testing.T) {
	g := build(t, `
	i := 0
loop:
	if i < 3 {
		i++
		goto loop
	}
`)
	lbl := one(t, g, "label.loop")
	if b := branchBlock(t, g, "goto"); !hasEdge(b, lbl) {
		t.Errorf("backward goto must edge to its label block\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, `
	goto done
	x := 1
	_ = x
done:
	return
`)
	lbl := one(t, g, "label.done")
	if b := branchBlock(t, g, "goto"); !hasEdge(b, lbl) {
		t.Errorf("forward goto must be patched to its label block\n%s", g)
	}
}

func TestPanicTerminal(t *testing.T) {
	g := build(t, `
	panic("boom")
	x := 1
	_ = x
`)
	if !hasEdge(g.Entry, g.Exit) {
		t.Errorf("panic must edge to exit\n%s", g)
	}
	dead := one(t, g, "unreachable")
	for _, b := range g.Blocks {
		if hasEdge(b, dead) {
			t.Errorf("code after panic must be flow-unreachable\n%s", g)
		}
	}
}

func TestOSExitTerminal(t *testing.T) {
	g := build(t, `
	os.Exit(1)
	x := 1
	_ = x
`)
	if !hasEdge(g.Entry, g.Exit) {
		t.Errorf("os.Exit must edge to exit\n%s", g)
	}
	if len(blocksOf(g, "unreachable")) != 1 {
		t.Errorf("code after os.Exit must be flow-unreachable\n%s", g)
	}
}

// TestNestedLiteralOpaque verifies that a function literal's internal control
// flow does not leak into the enclosing graph: the literal is a value.
func TestNestedLiteralOpaque(t *testing.T) {
	g := build(t, `
	fn := func() {
		if deep {
			return
		}
	}
	fn()
`)
	if n := len(blocksOf(g, "if.then")); n != 0 {
		t.Errorf("literal-internal branches must not appear in the outer graph, got %d\n%s", n, g)
	}
	// entry -> exit and nothing else interesting.
	if !hasEdge(g.Entry, g.Exit) {
		t.Errorf("straight-line body must edge entry to exit\n%s", g)
	}
}

// TestExitLast pins the documented invariant that Exit is the final block and
// carries no nodes or successors.
func TestExitLast(t *testing.T) {
	g := build(t, `
	x := 1
	_ = x
`)
	last := g.Blocks[len(g.Blocks)-1]
	if last != g.Exit {
		t.Errorf("exit must be the last block")
	}
	if len(g.Exit.Nodes) != 0 || len(g.Exit.Succs) != 0 {
		t.Errorf("exit must carry no nodes and no successors")
	}
}
