// Package costcharge enforces the simnet cost-model contracts
// interprocedurally, replacing the syntactic obspure check with a
// callgraph-based one:
//
//   - Offloaded closures (Task.Pure bodies, the fn argument of
//     ComputeAsyncKind/ChargeAsync/ChargeAsyncKind, thunks handed to
//     par.Go/par.Do — whether written inline, bound to a local first, or
//     named functions) must not REACH the obs/trace telemetry layer or a
//     simulation charge operation through any chain of calls. The old
//     obspure analyzer only saw obs calls written textually inside the
//     closure body; costcharge follows the call graph, so a closure that
//     delegates to a helper which logs a span is caught too. Telemetry from
//     pool goroutines lands in wall-clock completion order and breaks event
//     -log determinism; charges from pool goroutines mutate virtual time
//     off the simulation thread and corrupt the cost model.
//
//   - Observe-path functions — everything in internal/obs and
//     internal/trace, plus any function or method named Observe* — must
//     never transitively consume simulated time or bytes (des waits, simnet
//     sends/computes/receives): observe-never-charge. An observation that
//     charges would double-account the very cost it reports.
//
//   - Within one basic block, two textually identical charge statements
//     (the same Send/Compute call with the same arguments) account the same
//     bytes or work twice — the copy-paste class of accounting bug. The
//     duplicate carries a suggested fix deleting it. Loops are not false
//     positives: a broadcast loop charges once per iteration through a
//     single statement, which is exactly once per message.
//
// Function summaries ("reaches obs", "reaches a charge") are computed
// callee-first over each package's call graph and exported as facts keyed
// by callgraph.FuncID, so the reachability crosses package boundaries: the
// driver analyzes packages in dependency order and a caller package imports
// the summaries of its dependencies instead of re-deriving them.
package costcharge

import (
	"go/ast"
	"go/types"
	"strings"

	"mllibstar/internal/analysis"
	"mllibstar/internal/analysis/callgraph"
	"mllibstar/internal/analysis/cfg"
)

const (
	obsPath    = "mllibstar/internal/obs"
	tracePath  = "mllibstar/internal/trace"
	simnetPath = "mllibstar/internal/simnet"
	desPath    = "mllibstar/internal/des"
	parPath    = "mllibstar/internal/par"
)

// offloadFuncs are the entry points whose func arguments run on pool
// goroutines. The names are unique to the offload API, so they are matched
// by name alone (the analysistest corpus mirrors them without importing the
// engine).
var offloadFuncs = map[string]bool{
	"ComputeAsyncKind": true,
	"ChargeAsync":      true,
	"ChargeAsyncKind":  true,
}

// uniqueChargeNames are charge operations whose names exist nowhere else in
// the module, matched by name alone so corpora can mirror them. Generic
// names (Send, Compute, Recv, Wait) additionally require the defining
// package to be simnet or des.
var uniqueChargeNames = map[string]bool{
	"ComputeKind":      true,
	"ComputeAsyncKind": true,
	"ChargeAsync":      true,
	"ChargeAsyncKind":  true,
	"SendPhase":        true,
	"RecvN":            true,
	"WaitUntil":        true,
}

var simnetChargeNames = map[string]bool{
	"Send": true, "Compute": true, "Recv": true,
}

var desChargeNames = map[string]bool{
	"Wait": true, "WaitUntil": true,
}

const name = "costcharge"

// Analyzer is the interprocedural cost-charge check.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "offloaded closures must not reach obs/trace or simulation charges; observe paths never charge; no duplicate charge statements",
	FactsAll: true,
	Run:      run,
}

// Marks of one function summary.
const (
	reachesObs uint8 = 1 << iota
	reachesCharge
)

// summary says what a function transitively reaches, with one witness call
// chain per bit for the diagnostic.
type summary struct {
	Bits      uint8  `json:"bits"`
	ObsVia    string `json:"obsVia,omitempty"`
	ChargeVia string `json:"chargeVia,omitempty"`
}

func (s *summary) add(bit uint8, via string) bool {
	if s.Bits&bit != 0 {
		return false
	}
	s.Bits |= bit
	if bit == reachesObs {
		s.ObsVia = via
	} else {
		s.ChargeVia = via
	}
	return true
}

func (s *summary) via(bit uint8) string {
	if bit == reachesObs {
		return s.ObsVia
	}
	return s.ChargeVia
}

func run(pass *analysis.Pass) error {
	if p := pass.Pkg.Path(); p == obsPath || p == tracePath || p == simnetPath || p == desPath || p == parPath {
		// The telemetry and cost-model layers implement the primitives; the
		// contracts bind their users.
		return nil
	}
	g := callgraph.Build(pass.TypesInfo, pass.Files)
	sums := solve(pass, g)

	// Export each declared function's summary for downstream packages.
	facts := pass.FactStore()
	for _, n := range g.Nodes {
		if n.Fn != nil {
			facts.Export(name, callgraph.FuncID(n.Fn), sums[n])
		}
	}

	reportOffloadRoots(pass, g, sums)
	reportObservePaths(pass, g, sums)
	reportDuplicateCharges(pass, g)
	return nil
}

// solve computes reachability summaries callee-first, iterating recursive
// components to a fixpoint.
func solve(pass *analysis.Pass, g *callgraph.Graph) map[*callgraph.Node]*summary {
	sums := map[*callgraph.Node]*summary{}
	for _, n := range g.Nodes {
		sums[n] = &summary{}
	}
	facts := pass.FactStore()
	callgraph.BottomUp(g, func(n *callgraph.Node) bool {
		s := sums[n]
		changed := false
		for _, c := range n.Calls {
			switch {
			case c.Callee != nil:
				cs := sums[c.Callee]
				for _, bit := range []uint8{reachesObs, reachesCharge} {
					if cs.Bits&bit != 0 && s.add(bit, chain(c.Callee.Name, cs.via(bit))) {
						changed = true
					}
				}
			case c.Remote != nil:
				if bit, name := classify(c.Remote); bit != 0 {
					if s.add(bit, name) {
						changed = true
					}
					continue
				}
				var rs summary
				if facts.Import(name, callgraph.FuncID(c.Remote), &rs) {
					for _, bit := range []uint8{reachesObs, reachesCharge} {
						if rs.Bits&bit != 0 && s.add(bit, chain(remoteName(c.Remote), rs.via(bit))) {
							changed = true
						}
					}
				}
			}
		}
		return changed
	})
	return sums
}

// chain prepends a hop to a witness chain, capped so diagnostics stay
// readable on deep call stacks.
func chain(hop, rest string) string {
	if rest == "" {
		return hop
	}
	if strings.Count(rest, " → ") >= 3 {
		return hop + " → …"
	}
	return hop + " → " + rest
}

func remoteName(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// classify maps a remote callee to the primitive it implements: a telemetry
// op (anything in obs or trace), a charge op (simnet transfers/computes,
// des waits), or neither.
func classify(fn *types.Func) (uint8, string) {
	name := fn.Name()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == obsPath || strings.HasPrefix(pkg, obsPath+"/"):
		return reachesObs, "obs." + name
	case pkg == tracePath:
		return reachesObs, "trace." + name
	case uniqueChargeNames[name]:
		return reachesCharge, name
	case pkg == simnetPath && simnetChargeNames[name]:
		return reachesCharge, "simnet." + name
	case pkg == desPath && desChargeNames[name]:
		return reachesCharge, "des." + name
	}
	return 0, ""
}

// offloadRoot is one closure or function that will run on a pool goroutine.
type offloadRoot struct {
	pos   ast.Node
	node  *callgraph.Node // in-package body, when visible
	fn    *types.Func     // named function handed over (may be remote)
	where string
}

// reportOffloadRoots finds every offloaded closure and checks its summary.
func reportOffloadRoots(pass *analysis.Pass, g *callgraph.Graph, sums map[*callgraph.Node]*summary) {
	bound := boundLiterals(pass)
	var roots []offloadRoot
	addLit := func(at ast.Node, lit *ast.FuncLit, where string) {
		roots = append(roots, offloadRoot{pos: at, node: g.ByLit[lit], where: where})
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Pure" {
					if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
						addLit(lit, lit, "Task.Pure closure")
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Pure" || i >= len(n.Rhs) {
					continue
				}
				if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
					addLit(lit, lit, "Task.Pure closure")
				}
			}
		case *ast.CallExpr:
			name, ok := offloadCallee(pass, n)
			if !ok {
				return true
			}
			for _, arg := range n.Args {
				switch arg := ast.Unparen(arg).(type) {
				case *ast.FuncLit:
					addLit(arg, arg, name+" closure")
				case *ast.Ident:
					if lits := bound[pass.TypesInfo.ObjectOf(arg)]; len(lits) > 0 {
						for _, lit := range lits {
							addLit(arg, lit, name+" closure "+arg.Name)
						}
					} else if fn, ok := pass.TypesInfo.Uses[arg].(*types.Func); ok {
						roots = append(roots, offloadRoot{pos: arg, fn: fn, where: name + " function " + arg.Name})
					}
				case *ast.SelectorExpr:
					if fn, ok := pass.TypesInfo.Uses[arg.Sel].(*types.Func); ok {
						if _, isSig := pass.TypesInfo.Types[arg].Type.(*types.Signature); isSig {
							roots = append(roots, offloadRoot{pos: arg, fn: fn, where: name + " function " + arg.Sel.Name})
						}
					}
				}
			}
		}
		return true
	})

	facts := pass.FactStore()
	for _, r := range roots {
		var s summary
		switch {
		case r.node != nil:
			s = *sums[r.node]
		case r.fn != nil:
			if node, ok := g.ByFunc[r.fn]; ok {
				s = *sums[node]
			} else if bit, name := classify(r.fn); bit != 0 {
				s.add(bit, name)
			} else {
				facts.Import(name, callgraph.FuncID(r.fn), &s)
			}
		}
		if s.Bits&reachesObs != 0 {
			pass.Reportf(r.pos.Pos(),
				"%s reaches obs/trace telemetry (%s): offloaded code runs on pool goroutines in wall-clock order, so telemetry from it is nondeterministic; emit events from the simulation thread",
				r.where, s.ObsVia)
		}
		if s.Bits&reachesCharge != 0 {
			pass.Reportf(r.pos.Pos(),
				"%s reaches a simulation charge (%s): offloaded code must not consume virtual time or bytes off the simulation thread",
				r.where, s.ChargeVia)
		}
	}
}

// reportObservePaths enforces observe-never-charge on every function or
// method named Observe*.
func reportObservePaths(pass *analysis.Pass, g *callgraph.Graph, sums map[*callgraph.Node]*summary) {
	for _, n := range g.Nodes {
		if n.Fn == nil || !strings.HasPrefix(n.Fn.Name(), "Observe") {
			continue
		}
		if s := sums[n]; s.Bits&reachesCharge != 0 {
			pass.Reportf(n.Decl.Name.Pos(),
				"observe-path function %s transitively consumes simulated time or bytes (%s): observation must never charge",
				n.Name, s.ChargeVia)
		}
	}
}

// reportDuplicateCharges flags two identical charge statements in one basic
// block, with a fix deleting the duplicate.
func reportDuplicateCharges(pass *analysis.Pass, g *callgraph.Graph) {
	for _, n := range g.Nodes {
		body := n.Body()
		if body == nil {
			continue
		}
		graph := cfg.New(body)
		for _, b := range graph.Blocks {
			seen := map[string]bool{}
			for _, node := range b.Nodes {
				es, ok := node.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := ast.Unparen(es.X).(*ast.CallExpr)
				if !ok || !isChargeCall(pass, call) {
					continue
				}
				key := types.ExprString(es.X)
				if seen[key] {
					pass.ReportFix(es.Pos(), analysis.SuggestedFix{
						Message: "delete the duplicated charge statement",
						Edits:   []analysis.TextEdit{{Pos: es.Pos(), End: es.End()}},
					}, "duplicate charge %s in the same block accounts the same bytes/work twice", key)
					continue
				}
				seen[key] = true
			}
		}
	}
}

func isChargeCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	bit, _ := classify(fn)
	return bit == reachesCharge
}

// boundLiterals maps local variables to the function literals assigned to
// them, for the named-closure offload style (fold := func(){…}; par.Do(fold)).
func boundLiterals(pass *analysis.Pass) map[types.Object][]*ast.FuncLit {
	bound := map[types.Object][]*ast.FuncLit{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			bound[obj] = append(bound[obj], lit)
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return bound
}

// offloadCallee reports whether the call hands its func arguments to pool
// goroutines.
func offloadCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if offloadFuncs[fn.Name()] {
		return fn.Name(), true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == parPath && (fn.Name() == "Go" || fn.Name() == "Do") {
		return "par." + fn.Name(), true
	}
	return "", false
}
