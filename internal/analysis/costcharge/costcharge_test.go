package costcharge_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/costcharge"
	"mllibstar/internal/analysis/obspure"
)

func TestCostcharge(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", costcharge.Analyzer)
}

// The corpus reaches every telemetry and charge operation through helper
// calls; the syntactic obspure analyzer only sees obs calls written
// textually inside an offloaded closure, so it must report nothing here.
func TestObspureMissesInterproceduralReach(t *testing.T) {
	analysistest.RunSilent(t, "testdata/src/a", obspure.Analyzer)
}
