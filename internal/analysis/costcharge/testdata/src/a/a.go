// Corpus for the costcharge analyzer: interprocedural reachability from
// offloaded closures to obs/trace telemetry and to simulation charges, the
// observe-never-charge contract on Observe* functions, and duplicate charge
// statements. Every telemetry and charge operation here is reached THROUGH
// at least one helper call, which is exactly what the syntactic obspure
// analyzer cannot see (obspure_regression_test asserts it stays silent on
// this whole file).
package a

import "mllibstar/internal/obs"

// task mirrors engine.Task's offload contract; the analyzer matches the
// Pure field by name, not by the defining package.
type task struct {
	Pure func() float64
}

// ComputeAsyncKind and ChargeAsync mirror the simnet/engine offload entry
// points, which are matched by their (unique) names.
func ComputeAsyncKind(work float64, note string, fn func()) { fn() }
func ChargeAsync(work float64, fn func())                   { fn() }

// SendPhase and WaitUntil are charge primitives declared elsewhere
// (bodyless, so the call graph resolves them as remote and classifies them
// by their unique names).
func SendPhase(dst int, bytes float64)
func WaitUntil(t float64)

// logSpan is a helper whose telemetry the old syntactic check only sees
// when the obs call is written textually inside the closure.
func logSpan() {
	obs.Active().Span("n", obs.PhaseCompute, 0, 1, "")
}

// helperChain adds a second hop so the witness chain in the diagnostic
// crosses two calls.
func helperChain() {
	logSpan()
}

func doSend() {
	SendPhase(1, 2048)
}

func waitHelper() {
	WaitUntil(10)
}

func pureWork() float64 {
	return 1 + 1
}

// The closure reaches obs only transitively (closure → helperChain →
// logSpan → obs.Span): obspure sees no obs call in the body and stays
// silent; costcharge follows the call graph.
func offloadedObsViaHelper() {
	ComputeAsyncKind(1, "agg", func() { // want `ComputeAsyncKind closure reaches obs/trace telemetry \(helperChain → logSpan`
		helperChain()
	})
}

// A Task.Pure body that consumes simulated bytes through a helper.
func pureCharges() task {
	return task{
		Pure: func() float64 { // want `Task\.Pure closure reaches a simulation charge \(doSend → SendPhase\)`
			doSend()
			return 0
		},
	}
}

// emitter is a named function handed to the offload call by identifier.
func emitter() {
	logSpan()
}

func namedFunctionOffload() {
	ChargeAsync(5, emitter) // want `ChargeAsync function emitter reaches obs/trace telemetry \(logSpan`
}

// A closure bound to a local before being handed over (the scheduler's
// fold/decode style).
func boundOffload() {
	fold := func() { doSend() }
	ComputeAsyncKind(2, "fold", fold) // want `ComputeAsyncKind closure fold reaches a simulation charge \(doSend → SendPhase\)`
}

// Observe* functions must never transitively consume simulated time.
func ObserveRound(n int) { // want `observe-path function ObserveRound transitively consumes simulated time or bytes \(waitHelper → WaitUntil\)`
	_ = n
	waitHelper()
}

// ObserveClean only records: no charge reachable, no finding.
func ObserveClean(n int) {
	logSpan()
	_ = n
}

// Two textually identical charge statements in one basic block account the
// same bytes twice; a different argument list is a different message.
func duplicateCharge() {
	SendPhase(3, 512)
	SendPhase(3, 512) // want `duplicate charge SendPhase\(3, 512\) in the same block accounts the same bytes/work twice`
	SendPhase(3, 1024)
}

// A broadcast loop charges once per iteration through a single statement —
// exactly once per message, not a duplicate.
func broadcastLoop() {
	for i := 0; i < 4; i++ {
		SendPhase(i, 256)
	}
}

// Offloaded compute with no telemetry and no charges is the contract being
// protected: clean.
func cleanOffload() {
	ComputeAsyncKind(1, "ok", func() { pureWork() })
}

// Telemetry on the simulation thread is fine.
func simThreadTelemetry() {
	helperChain()
}

// A scoped directive naming the analyzer suppresses the finding.
func suppressedOffload() {
	ChargeAsync(1, func() { //mlstar:nolint costcharge -- audited: flushes the final span after the pool join
		helperChain()
	})
}
