// Package determinism implements the lint check that keeps every figure in
// results/ bit-reproducible: simulated code must not consult global RNG
// state, wall-clock time, or Go's randomized map iteration order.
//
// The engine is a single-threaded discrete-event simulation, so the only
// sources of run-to-run variation are exactly these three; the analyzer
// turns the determinism contract (documented in internal/engine/README.md)
// into a machine-checked invariant:
//
//   - calls to package-level math/rand functions (rand.Float64, rand.Intn,
//     rand.Perm, ...) draw from the process-global, racy source and are
//     flagged; every random draw must come from an explicitly seeded
//     *rand.Rand threaded from configuration;
//   - direct rand.New/rand.NewSource construction is flagged outside
//     internal/detrand so stream derivation (how a config seed fans out to
//     per-worker, per-partition, per-step streams) stays in one audited
//     place;
//   - time.Now and friends are flagged: simulated code must use virtual
//     time (des.Proc.Now), never the wall clock;
//   - ranging over a map is flagged because iteration order varies per run:
//     iterate over sorted keys or a recorded insertion-order slice, or
//     suppress with //mlstar:nolint determinism when the loop is provably
//     order-insensitive (e.g. building another map without float
//     accumulation);
//   - raw `go` statements are flagged: concurrency in simulated code must be
//     expressed as simulation processes (des.Spawn, des.Fork — what the
//     pipelined AllReduce scheduler uses for its sender and fold/decode
//     stages) or handed to the deterministic compute pool (par.Go/par.Do),
//     because a bare goroutine runs in wall-clock order outside the virtual
//     clock. The des kernel's own Spawn implementation is the one audited
//     exception, suppressed in place.
package determinism

import (
	"go/ast"
	"go/types"

	"mllibstar/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid global rand state, wall-clock time, raw goroutines, and map-order dependence in simulated code",
	DefaultScope: []string{
		"mllibstar/internal/allreduce",
		"mllibstar/internal/angel",
		"mllibstar/internal/bench",
		"mllibstar/internal/causal",
		"mllibstar/internal/clusters",
		"mllibstar/internal/core",
		"mllibstar/internal/data",
		"mllibstar/internal/des",
		"mllibstar/internal/dfs",
		"mllibstar/internal/engine",
		"mllibstar/internal/feats",
		"mllibstar/internal/glm",
		"mllibstar/internal/lbfgs",
		"mllibstar/internal/mavg",
		"mllibstar/internal/metrics",
		"mllibstar/internal/mllib",
		"mllibstar/internal/obs",
		"mllibstar/internal/opt",
		"mllibstar/internal/petuum",
		"mllibstar/internal/ps",
		"mllibstar/internal/serve",
		"mllibstar/internal/simnet",
		"mllibstar/internal/trace",
		"mllibstar/internal/train",
	},
	Run: run,
}

// randConstructors may be called only from internal/detrand (which is kept
// out of the analyzer's scope): everything else must receive a *rand.Rand.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// randAllowed are package-level math/rand functions that are deterministic
// given their arguments: distributions over an explicitly passed source.
var randAllowed = map[string]bool{
	"NewZipf": true,
}

// wallClockFuncs are the time package entry points that leak the wall clock
// or real sleeping into simulated code.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkRange(pass, n)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"raw goroutine in simulated code runs in wall-clock order outside the virtual clock; use a simulation process (des.Spawn/des.Fork) or the deterministic pool (par.Go/par.Do)")
		}
		return true
	})
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Float64) are exactly what we want
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if randAllowed[fn.Name()] {
			return
		}
		if randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"direct rand.%s: derive seeded streams through internal/detrand so stream derivation stays centralized", fn.Name())
			return
		}
		pass.Reportf(call.Pos(),
			"global rand.%s draws from process-global RNG state and breaks run reproducibility; use an explicitly seeded *rand.Rand threaded from config (internal/detrand)", fn.Name())
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock time.%s in simulated code; use virtual time (des.Proc.Now) so results stay reproducible", fn.Name())
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic; iterate over sorted keys or a recorded order slice")
}
