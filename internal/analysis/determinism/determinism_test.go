package determinism_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", determinism.Analyzer)
}
