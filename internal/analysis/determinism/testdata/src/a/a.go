// Corpus for the determinism analyzer: global RNG state, RNG construction,
// wall-clock reads, map-order iteration, and raw goroutines are flagged;
// explicitly seeded generators, source-parameterized distributions, and
// ordered iteration are clean.
package a

import (
	"math/rand"
	"time"
)

func globalFloat() float64 {
	return rand.Float64() // want `global rand\.Float64 draws from process-global RNG state`
}

func globalIntn(n int) int {
	return rand.Intn(n) // want `global rand\.Intn draws from process-global RNG state`
}

func globalPerm(n int) []int {
	return rand.Perm(n) // want `global rand\.Perm draws from process-global RNG state`
}

func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `direct rand\.New: derive seeded streams through internal/detrand` `direct rand\.NewSource: derive seeded streams through internal/detrand`
}

func wallClock() time.Time {
	return time.Now() // want `wall-clock time\.Now in simulated code`
}

func sleeps() {
	time.Sleep(time.Second) // want `wall-clock time\.Sleep in simulated code`
}

func mapOrder(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

func rawGoroutine(done chan struct{}) {
	go func() { // want `raw goroutine in simulated code runs in wall-clock order`
		close(done)
	}()
}

func rawGoroutineNamed(fn func()) {
	go fn() // want `raw goroutine in simulated code runs in wall-clock order`
}

// Clean: methods on an explicitly seeded generator are exactly what the
// analyzer pushes code toward.
func seeded(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Clean: distributions over an explicitly passed source are deterministic
// given their arguments.
func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.1, 1, 100)
}

// Clean: slices iterate in order.
func sliceOrder(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum
}

// Clean: duration arithmetic never reads the wall clock.
func seconds(d time.Duration) float64 {
	return d.Seconds()
}
