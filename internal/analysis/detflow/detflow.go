// Package detflow tracks nondeterminism as a taint through the dataflow of
// simulated code, complementing the syntactic determinism analyzer. Where
// determinism flags the *sources* (a map range, a time.Now call, a raw
// goroutine), detflow follows the tainted *values* — through assignments,
// arithmetic, helper calls, and across package boundaries via function
// summaries — and reports where they matter:
//
//   - a float accumulation (s += v) folding values in map-iteration or
//     wall-clock order: float addition is not associative, so the result
//     differs run to run even when the value *set* is identical. When the
//     fold sits directly in a map range with a sortable key, the diagnostic
//     carries a fix rewriting it to collect-sort-iterate;
//   - a tainted value flowing into a simulation charge (simnet sends and
//     computes, des waits) or into seed derivation (internal/detrand): the
//     virtual-time outcome would depend on map order or the wall clock;
//   - a tainted value stored into longer-lived state (a struct field or
//     package variable), from where it reaches simulated results.
//
// The taint crosses function boundaries in both directions. Each function
// exports a summary fact: the taint its return value carries (a helper that
// collects map values in iteration order returns order-tainted data, even
// when its own map range is suppressed with a scoped //mlstar:nolint
// determinism), which parameters flow to the return, and which parameters
// reach a sink inside the function (a helper that charges its argument
// makes every call site with a tainted argument a finding). This is what
// the syntactic analyzer fundamentally cannot see: the source and the sink
// may live in different functions, different files, or different packages.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mllibstar/internal/analysis"
	"mllibstar/internal/analysis/callgraph"
	"mllibstar/internal/analysis/cfg"
	"mllibstar/internal/analysis/taint"
)

const name = "detflow"

const (
	detrandPath = "mllibstar/internal/detrand"
	simnetPath  = "mllibstar/internal/simnet"
	desPath     = "mllibstar/internal/des"
)

// Analyzer is the determinism-taint check.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "track map-order and wall-clock taint through assignments and calls into float accumulations, simulation charges, and shared state",
	FactsAll: true,
	DefaultScope: []string{
		"mllibstar/internal/allreduce",
		"mllibstar/internal/angel",
		"mllibstar/internal/bench",
		"mllibstar/internal/causal",
		"mllibstar/internal/clusters",
		"mllibstar/internal/core",
		"mllibstar/internal/data",
		"mllibstar/internal/des",
		"mllibstar/internal/dfs",
		"mllibstar/internal/engine",
		"mllibstar/internal/feats",
		"mllibstar/internal/glm",
		"mllibstar/internal/lbfgs",
		"mllibstar/internal/mavg",
		"mllibstar/internal/metrics",
		"mllibstar/internal/mllib",
		"mllibstar/internal/obs",
		"mllibstar/internal/opt",
		"mllibstar/internal/petuum",
		"mllibstar/internal/ps",
		"mllibstar/internal/serve",
		"mllibstar/internal/simnet",
		"mllibstar/internal/trace",
		"mllibstar/internal/train",
	},
	Run: run,
}

const (
	orderT taint.Marks = 1 << iota // derived from map-iteration order
	clockT                         // derived from the wall clock
	paramT                         // synthetic: traces one parameter in summary runs
)

// maxParams bounds the per-parameter summary runs per function.
const maxParams = 8

// wallClockFuncs mirror the determinism analyzer's wall-clock surface.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// summary is one function's exported taint contract.
type summary struct {
	// Ret is the taint the return values carry regardless of arguments.
	Ret uint8 `json:"ret,omitempty"`
	// ParamToRet marks parameters whose taint flows into a return value.
	ParamToRet []bool `json:"paramToRet,omitempty"`
	// ParamSink marks parameters that reach a sink inside the function.
	ParamSink []bool `json:"paramSink,omitempty"`
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.TypesInfo, pass.Files)
	a := &analyzer{
		pass:   pass,
		sums:   map[*callgraph.Node]*summary{},
		remote: map[*types.Func]*summary{},
		bySite: map[*ast.CallExpr][]callgraph.Call{},
		cfgs:   map[*callgraph.Node]*cfg.Graph{},
	}
	for _, n := range g.Nodes {
		a.sums[n] = &summary{}
		for _, c := range n.Calls {
			a.bySite[c.Site] = append(a.bySite[c.Site], c)
		}
		if body := n.Body(); body != nil {
			a.cfgs[n] = cfg.New(body)
		}
	}

	callgraph.BottomUp(g, func(n *callgraph.Node) bool { return a.summarize(n) })

	facts := pass.FactStore()
	for _, n := range g.Nodes {
		if n.Fn != nil {
			facts.Export(name, callgraph.FuncID(n.Fn), a.sums[n])
		}
	}

	for _, n := range g.Nodes {
		a.reportNode(n)
	}
	return nil
}

type analyzer struct {
	pass   *analysis.Pass
	sums   map[*callgraph.Node]*summary
	remote map[*types.Func]*summary
	bySite map[*ast.CallExpr][]callgraph.Call
	cfgs   map[*callgraph.Node]*cfg.Graph
}

func (a *analyzer) calleeSummaries(call *ast.CallExpr) (sums []*summary, known bool) {
	known = true
	for _, c := range a.bySite[call] {
		switch {
		case c.Callee != nil:
			sums = append(sums, a.sums[c.Callee])
		case c.Remote != nil:
			s, ok := a.remote[c.Remote]
			if !ok {
				s = &summary{}
				if !a.pass.FactStore().Import(name, callgraph.FuncID(c.Remote), s) {
					s.Ret = 0xff // sentinel: no fact, contract unknown
				}
				a.remote[c.Remote] = s
			}
			if s.Ret == 0xff {
				known = false
			} else {
				sums = append(sums, s)
			}
		default:
			known = false // dynamic call: no contract to consult
		}
	}
	return sums, known
}

// marks computes the taint of one expression under the current state.
func (a *analyzer) marks(e ast.Expr, st taint.State) taint.Marks {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if obj := a.pass.TypesInfo.Uses[e]; obj != nil {
			return st.Get(obj)
		}
		return 0
	case *ast.ParenExpr:
		return a.marks(e.X, st)
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.BinaryExpr:
		return a.marks(e.X, st) | a.marks(e.Y, st)
	case *ast.UnaryExpr:
		return a.marks(e.X, st)
	case *ast.StarExpr:
		return a.marks(e.X, st)
	case *ast.SelectorExpr:
		return a.marks(e.X, st)
	case *ast.IndexExpr:
		return a.marks(e.X, st) | a.marks(e.Index, st)
	case *ast.SliceExpr:
		return a.marks(e.X, st)
	case *ast.TypeAssertExpr:
		return a.marks(e.X, st)
	case *ast.KeyValueExpr:
		return a.marks(e.Value, st)
	case *ast.CompositeLit:
		var m taint.Marks
		for _, elt := range e.Elts {
			m |= a.marks(elt, st)
		}
		return m
	case *ast.CallExpr:
		return a.callMarks(e, st)
	}
	// Unmodeled expression shapes: union the marks of every identifier in
	// the subtree (conservative toward tainted).
	var m taint.Marks
	ast.Inspect(e, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
				m |= st.Get(obj)
			}
		}
		return true
	})
	return m
}

// callMarks computes the taint a call's results carry: wall-clock sources
// taint directly; known callees contribute their Ret taint plus the taint
// of arguments that flow to the return; unknown callees pass argument taint
// straight through (math.Abs of a tainted value is tainted).
func (a *analyzer) callMarks(call *ast.CallExpr, st taint.State) taint.Marks {
	if tv, ok := a.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: taint of the operand.
		var m taint.Marks
		for _, arg := range call.Args {
			m |= a.marks(arg, st)
		}
		return m
	}
	fn := analysis.FuncOf(a.pass.TypesInfo, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
		return clockT
	}
	// A method's result conservatively carries its receiver's taint
	// (summaries model parameter flow only): time.Since(t0).Seconds() stays
	// clock-tainted through the summaryless Duration method.
	var m taint.Marks
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		m |= a.marks(sel.X, st)
	}
	sums, known := a.calleeSummaries(call)
	if !known || len(sums) == 0 {
		// No contract for some possible callee: assume argument taint flows
		// through (math.Abs of a tainted value is tainted).
		for _, arg := range call.Args {
			m |= a.marks(arg, st)
		}
		return m
	}
	for _, s := range sums {
		m |= taint.Marks(s.Ret) &^ paramT
		for i, arg := range call.Args {
			if i < len(s.ParamToRet) && s.ParamToRet[i] {
				m |= a.marks(arg, st)
			}
		}
	}
	return m
}

func (a *analyzer) transfer(n ast.Node, st taint.State) {
	if _, ok := taint.IsDeferredExec(n); ok {
		return
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					a.bind(n.Lhs[i], a.marks(n.Rhs[i], st), st)
				}
			} else if len(n.Rhs) == 1 {
				m := a.marks(n.Rhs[0], st)
				for _, lhs := range n.Lhs {
					a.bind(lhs, m, st)
				}
			}
			return
		}
		// Compound assignment accumulates: the target keeps its taint and
		// gains the operand's.
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
				if obj := a.pass.TypesInfo.ObjectOf(id); obj != nil {
					st.Add(obj, a.marks(n.Rhs[0], st))
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, nm := range vs.Names {
						if i < len(vs.Values) {
							a.bind(nm, a.marks(vs.Values[i], st), st)
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		tv, ok := a.pass.TypesInfo.Types[n.X]
		if !ok {
			return
		}
		base := a.marks(n.X, st)
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			base |= orderT
		}
		a.bind(n.Key, base, st)
		a.bind(n.Value, base, st)
	case *ast.IncDecStmt:
		// x++ keeps x's taint.
	case *ast.ExprStmt:
		a.sanitize(n.X, st)
	}
}

// sanitize clears order taint from the argument of an in-place sort: the
// canonical collect-sort-iterate repair restores a deterministic order, so
// downstream folds of the sorted slice are clean (this is exactly the code
// the sort-before-fold suggested fix generates).
func (a *analyzer) sanitize(e ast.Expr, st taint.State) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fn := analysis.FuncOf(a.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if pkg != "sort" && pkg != "slices" {
		return
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			st.Set(obj, st.Get(obj)&^orderT)
		}
	}
}

func (a *analyzer) bind(lhs ast.Expr, m taint.Marks, st taint.State) {
	if lhs == nil {
		return
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
		if obj := a.pass.TypesInfo.ObjectOf(id); obj != nil {
			st.Set(obj, m)
		}
	}
}

// sink is a callback receiving every sink event with the taint that reached
// it; report mode turns events into diagnostics, summary mode records
// whether the traced parameter arrived.
type sink func(pos token.Pos, m taint.Marks, format string, args ...any)

// visitSinks inspects one replayed node for sink events.
func (a *analyzer) visitSinks(n ast.Node, st taint.State, emit sink) {
	if _, ok := taint.IsDeferredExec(n); ok {
		return
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		a.assignSinks(as, st, emit)
	}
	if rng, ok := n.(*ast.RangeStmt); ok {
		// The head block holds the whole RangeStmt; its body statements are
		// visited as their own nodes with their own states, so only the range
		// operand is inspected here.
		n = rng.X
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			a.callSinks(call, st, emit)
		}
		return true
	})
}

func (a *analyzer) assignSinks(as *ast.AssignStmt, st taint.State, emit sink) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		tv, ok := a.pass.TypesInfo.Types[as.Lhs[0]]
		if !ok || !analysis.IsFloat(tv.Type) {
			return
		}
		if m := a.marks(as.Rhs[0], st); m != 0 {
			emit(as.Pos(), m,
				"float accumulation folds %s values: addition is not associative, so the result changes run to run; fold in a canonical order", describe(m))
		}
	case token.ASSIGN:
		for i, lhs := range as.Lhs {
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			m := a.marks(rhs, st)
			if m == 0 {
				continue
			}
			switch l := ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr:
				emit(rhs.Pos(), m,
					"%s value stored into field %s: shared simulated state must not depend on iteration order or the wall clock", describe(m), l.Sel.Name)
			case *ast.Ident:
				if obj := a.pass.TypesInfo.ObjectOf(l); obj != nil && obj.Parent() == a.pass.Pkg.Scope() {
					emit(rhs.Pos(), m,
						"%s value stored into package variable %s: shared simulated state must not depend on iteration order or the wall clock", describe(m), l.Name)
				}
			}
		}
	}
}

func (a *analyzer) callSinks(call *ast.CallExpr, st taint.State, emit sink) {
	fn := analysis.FuncOf(a.pass.TypesInfo, call)
	if fn != nil {
		if isChargePrimitive(fn) {
			for _, arg := range call.Args {
				if m := a.marks(arg, st); m != 0 {
					emit(arg.Pos(), m,
						"%s value flows into simulation charge %s: virtual time would differ run to run", describe(m), fn.Name())
				}
			}
			return
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == detrandPath {
			for _, arg := range call.Args {
				if m := a.marks(arg, st); m != 0 {
					emit(arg.Pos(), m,
						"%s value flows into seed derivation detrand.%s: every stream drawn from it becomes irreproducible", describe(m), fn.Name())
				}
			}
			return
		}
	}
	sums, _ := a.calleeSummaries(call)
	for _, s := range sums {
		for i, arg := range call.Args {
			if i < len(s.ParamSink) && s.ParamSink[i] {
				if m := a.marks(arg, st); m != 0 {
					calleeName := "the callee"
					if fn != nil {
						calleeName = fn.Name()
					}
					emit(arg.Pos(), m,
						"%s value reaches a determinism-sensitive sink inside %s", describe(m), calleeName)
				}
			}
		}
	}
}

// isChargePrimitive matches the simnet/des charge surface (shared with the
// costcharge analyzer's classification).
func isChargePrimitive(fn *types.Func) bool {
	switch fn.Name() {
	case "ComputeKind", "ComputeAsyncKind", "ChargeAsync", "ChargeAsyncKind", "SendPhase", "RecvN", "WaitUntil":
		return true
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch fn.Name() {
	case "Send", "Compute", "Recv":
		return pkg == simnetPath
	case "Wait":
		return pkg == desPath
	}
	return false
}

func describe(m taint.Marks) string {
	var parts []string
	if m&orderT != 0 {
		parts = append(parts, "map-iteration-order-dependent")
	}
	if m&clockT != 0 {
		parts = append(parts, "wall-clock-derived")
	}
	if len(parts) == 0 {
		parts = append(parts, "parameter-tainted")
	}
	return strings.Join(parts, ", ")
}

// summarize recomputes one node's exported contract for the BottomUp
// fixpoint: the return taint, then one traced run per parameter.
func (a *analyzer) summarize(n *callgraph.Node) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	s := a.sums[n]
	changed := false

	ret, _ := a.solveOnce(n, nil)
	if uint8(ret)&^s.Ret != 0 {
		s.Ret |= uint8(ret)
		changed = true
	}

	params := a.paramObjs(n)
	if len(params) > maxParams {
		params = params[:maxParams]
	}
	if len(s.ParamToRet) < len(params) {
		s.ParamToRet = append(s.ParamToRet, make([]bool, len(params)-len(s.ParamToRet))...)
		s.ParamSink = append(s.ParamSink, make([]bool, len(params)-len(s.ParamSink))...)
	}
	for i, p := range params {
		if s.ParamToRet[i] && s.ParamSink[i] {
			continue
		}
		entry := taint.State{}
		entry.Set(p, paramT)
		ret, sank := a.solveOnce(n, entry)
		if ret&paramT != 0 && !s.ParamToRet[i] {
			s.ParamToRet[i] = true
			changed = true
		}
		if sank && !s.ParamSink[i] {
			s.ParamSink[i] = true
			changed = true
		}
	}
	return changed
}

// solveOnce runs the dataflow from one entry state and returns the union of
// return-value taints plus whether the traced parameter reached a sink.
func (a *analyzer) solveOnce(n *callgraph.Node, entry taint.State) (ret taint.Marks, sank bool) {
	pr := &taint.Problem{
		Graph:    a.cfgs[n],
		Entry:    entry,
		Transfer: func(nd ast.Node, st taint.State) { a.transfer(nd, st) },
	}
	in := pr.Solve()
	collect := func(_ token.Pos, m taint.Marks, _ string, _ ...any) {
		if m&paramT != 0 {
			sank = true
		}
	}
	pr.Replay(in, func(nd ast.Node, st taint.State) {
		if r, ok := nd.(*ast.ReturnStmt); ok {
			for _, res := range r.Results {
				ret |= a.marks(res, st)
			}
		}
		a.visitSinks(nd, st, collect)
	})
	return ret, sank
}

func (a *analyzer) paramObjs(n *callgraph.Node) []types.Object {
	var ftype *ast.FuncType
	switch {
	case n.Decl != nil:
		ftype = n.Decl.Type
	case n.Lit != nil:
		ftype = n.Lit.Type
	}
	if ftype == nil || ftype.Params == nil {
		return nil
	}
	var out []types.Object
	for _, f := range ftype.Params.List {
		for _, nm := range f.Names {
			out = append(out, a.pass.TypesInfo.Defs[nm])
		}
	}
	return out
}

// reportNode replays one function with diagnostics enabled (no parameter
// taint: call sites report tainted arguments via the callee's summary).
func (a *analyzer) reportNode(n *callgraph.Node) {
	if n.Body() == nil {
		return
	}
	pr := &taint.Problem{
		Graph:    a.cfgs[n],
		Transfer: func(nd ast.Node, st taint.State) { a.transfer(nd, st) },
	}
	in := pr.Solve()
	mapRanges := a.mapRanges(n)
	seen := map[token.Pos]bool{}
	pr.Replay(in, func(nd ast.Node, st taint.State) {
		a.visitSinks(nd, st, func(pos token.Pos, m taint.Marks, format string, args ...any) {
			if seen[pos] {
				return
			}
			seen[pos] = true
			msg := fmt.Sprintf(format, args...)
			if as, ok := nd.(*ast.AssignStmt); ok && m&orderT != 0 && strings.Contains(msg, "float accumulation") {
				if fix, ok := a.sortBeforeFold(as, mapRanges); ok {
					a.pass.ReportFix(pos, fix, "%s", msg)
					return
				}
			}
			a.pass.Reportf(pos, "%s", msg)
		})
	})
}

// mapRanges collects the node's range-over-map statements for fix synthesis.
func (a *analyzer) mapRanges(n *callgraph.Node) []*ast.RangeStmt {
	var out []*ast.RangeStmt
	ast.Inspect(n.Body(), func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := c.(*ast.RangeStmt); ok {
			if tv, ok := a.pass.TypesInfo.Types[r.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					out = append(out, r)
				}
			}
		}
		return true
	})
	return out
}

// sortBeforeFold synthesizes the canonical collect-sort-iterate rewrite for
// a fold sitting directly inside a map range with a sortable key and a pure
// (identifier or selector) map expression.
func (a *analyzer) sortBeforeFold(at *ast.AssignStmt, mapRanges []*ast.RangeStmt) (analysis.SuggestedFix, bool) {
	// Innermost enclosing map range.
	var rng *ast.RangeStmt
	for _, r := range mapRanges {
		if r.Body.Pos() <= at.Pos() && at.End() <= r.Body.End() {
			if rng == nil || r.Pos() > rng.Pos() {
				rng = r
			}
		}
	}
	if rng == nil {
		return analysis.SuggestedFix{}, false
	}
	switch ast.Unparen(rng.X).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return analysis.SuggestedFix{}, false
	}
	mt, ok := a.pass.TypesInfo.Types[rng.X].Type.Underlying().(*types.Map)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	keyBasic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	var sortFn string
	switch keyBasic.Kind() {
	case types.String:
		sortFn = "sort.Strings"
	case types.Int:
		sortFn = "sort.Ints"
	case types.Float64:
		sortFn = "sort.Float64s"
	default:
		return analysis.SuggestedFix{}, false
	}

	key := "k"
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		key = id.Name
	}
	mapText := types.ExprString(rng.X)
	header := fmt.Sprintf(
		"sortedKeys := make([]%s, 0, len(%s))\nfor %s := range %s { //mlstar:nolint detflow,determinism -- collect loop, sorted before the fold below\nsortedKeys = append(sortedKeys, %s)\n}\n%s(sortedKeys)\nfor _, %s := range sortedKeys {",
		keyBasic.String(), mapText, key, mapText, key, sortFn, key)

	edits := []analysis.TextEdit{{Pos: rng.Pos(), End: rng.Body.Lbrace + 1, NewText: header}}
	if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
		edits = append(edits, analysis.TextEdit{
			Pos: rng.Body.Lbrace + 1, End: rng.Body.Lbrace + 1,
			NewText: fmt.Sprintf("\n%s := %s[%s]", v.Name, mapText, key),
		})
	}
	if imp, ok := a.sortImportEdit(rng.Pos()); ok {
		edits = append(edits, imp)
	}
	return analysis.SuggestedFix{
		Message: "iterate the map in sorted key order before folding",
		Edits:   edits,
	}, true
}

// sortImportEdit inserts the "sort" import into the file containing pos,
// when missing.
func (a *analyzer) sortImportEdit(pos token.Pos) (analysis.TextEdit, bool) {
	for _, f := range a.pass.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		var lastSpec *ast.ImportSpec
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "sort" {
				return analysis.TextEdit{}, false
			}
			lastSpec = imp
		}
		if lastSpec != nil {
			return analysis.TextEdit{Pos: lastSpec.End(), End: lastSpec.End(), NewText: "\n\"sort\""}, true
		}
		return analysis.TextEdit{Pos: f.Name.End(), End: f.Name.End(), NewText: "\n\nimport \"sort\""}, true
	}
	return analysis.TextEdit{}, false
}
