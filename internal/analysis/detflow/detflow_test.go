package detflow_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/determinism"
	"mllibstar/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", detflow.Analyzer)
}

// The corpus's map ranges and time calls all carry scoped //mlstar:nolint
// determinism directives, and the sinks detflow flags (slice folds of
// collected values, call sites of charging helpers, field stores) contain
// no source the syntactic determinism analyzer recognizes — it must report
// nothing on this file while detflow reports at every sink.
func TestDeterminismMissesTaintFlow(t *testing.T) {
	analysistest.RunSilent(t, "testdata/src/a", determinism.Analyzer)
}

// The slab-kernel corpus distills internal/data's hot-loop idioms — running
// loss sums threaded through per-block calls, two-row pipelined margin
// folds, structural work charges — which are exactly the sink shapes
// detflow watches. Nothing there derives from a map range or the wall
// clock, so the analyzer must stay silent: the kernels' determinism comes
// from slab order, not from suppressions.
func TestDetflowSilentOnKernelIdioms(t *testing.T) {
	analysistest.RunSilent(t, "testdata/src/kernel", detflow.Analyzer)
}
