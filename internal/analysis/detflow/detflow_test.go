package detflow_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/determinism"
	"mllibstar/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", detflow.Analyzer)
}

// The corpus's map ranges and time calls all carry scoped //mlstar:nolint
// determinism directives, and the sinks detflow flags (slice folds of
// collected values, call sites of charging helpers, field stores) contain
// no source the syntactic determinism analyzer recognizes — it must report
// nothing on this file while detflow reports at every sink.
func TestDeterminismMissesTaintFlow(t *testing.T) {
	analysistest.RunSilent(t, "testdata/src/a", determinism.Analyzer)
}
