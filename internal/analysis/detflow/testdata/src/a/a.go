// Corpus for the detflow analyzer: determinism taint flowing from map
// iteration order and the wall clock into float accumulations, simulation
// charges, and shared state. The sources are suppressed for the syntactic
// determinism analyzer with scoped //mlstar:nolint directives (so
// determinism_regression_test proves it stays silent on this whole file)
// while detflow — not named in those directives — still follows the tainted
// VALUES to their sinks, including across function boundaries.
package a

import (
	"sort"
	"time"
)

// ComputeKind is a charge primitive declared elsewhere (bodyless, resolved
// as remote and classified by its unique name).
func ComputeKind(kind string, work float64)

type state struct{ work float64 }

// A fold directly inside a map range: the value is order-tainted, float
// addition is not associative. The diagnostic carries the sort-before-fold
// suggested fix.
func foldInMapRange(m map[string]float64) float64 {
	var s float64
	for _, v := range m { //mlstar:nolint determinism -- repaired by the sort-before-fold fix
		s += v // want `float accumulation folds map-iteration-order-dependent values`
	}
	return s
}

// values collects map values in iteration order. Its own range is
// suppressed for determinism, but the returned slice is order-tainted —
// recorded in the exported Ret fact.
func values(m map[string]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m { //mlstar:nolint determinism -- collection helper; callers must fold in canonical order
		out = append(out, v)
	}
	return out
}

// The caller's fold ranges over a plain slice — nothing here for the
// syntactic determinism check — but the slice came from values(), so the
// fold is order-dependent. Only the interprocedural taint sees it.
func foldCollected(m map[string]float64) float64 {
	var s float64
	for _, v := range values(m) {
		s += v // want `float accumulation folds map-iteration-order-dependent values`
	}
	return s
}

// wallClockWork returns a wall-clock-derived quantity (clock taint in its
// Ret fact).
func wallClockWork() float64 {
	start := time.Now()                //mlstar:nolint determinism -- host-side profiling only
	return time.Since(start).Seconds() //mlstar:nolint determinism -- host-side profiling only
}

// chargeScaled charges its parameter: the ParamSink fact makes every call
// site with a tainted argument a finding.
func chargeScaled(work float64) {
	ComputeKind("grad", work*1.5)
}

// The taint crosses two function boundaries: clock taint out of
// wallClockWork's return, into chargeScaled's parameter, onto the charge.
func chargeElapsed() {
	e := wallClockWork()
	chargeScaled(e) // want `wall-clock-derived value reaches a determinism-sensitive sink inside chargeScaled`
}

// A tainted value handed directly to a charge primitive.
func chargeMapOrder(m map[string]float64) {
	var w float64
	for _, v := range m { //mlstar:nolint determinism -- repaired by the sort-before-fold fix
		w += v // want `float accumulation folds map-iteration-order-dependent values`
	}
	ComputeKind("fold", w) // want `map-iteration-order-dependent value flows into simulation charge ComputeKind`
}

// Order-tainted data stored into longer-lived state.
func storeMapDerived(st *state, m map[int]float64) {
	var total float64
	for _, v := range m { //mlstar:nolint determinism -- repaired by the sort-before-fold fix
		total += v // want `float accumulation folds map-iteration-order-dependent values`
	}
	st.work = total // want `map-iteration-order-dependent value stored into field work`
}

// The canonical repair — collect, sort, iterate — is clean: the in-place
// sort launders the order taint. This is exactly the code the suggested
// fix generates, so the fix must not re-trigger the analyzer.
func foldSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m { //mlstar:nolint determinism -- collect loop, sorted before the fold below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// One directive can name both analyzers: the fold below is accepted as
// order-insensitive by an audit, so detflow is suppressed alongside
// determinism.
func acceptedFold(m map[string]float64) float64 {
	var s float64
	for _, v := range m { //mlstar:nolint determinism,detflow -- audited: values are all equal by construction
		s += v
	}
	return s
}
