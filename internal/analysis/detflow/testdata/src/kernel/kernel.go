// Corpus for the slab-kernel idioms of internal/data: running loss sums
// threaded through per-block calls, rowPtr-chained two-row pipelined margin
// loops, and structural work charges derived from row-pointer differences.
// Every float fold here ranges over slices in index order and every charged
// quantity is a structural count — there is no map-iteration or wall-clock
// source anywhere — so the interprocedural taint analysis must stay silent
// on this whole file even though it is dense with the sink shapes detflow
// watches (float accumulations, charge-helper call sites).
package kernel

// ComputeKind is the charge primitive (bodyless, resolved as remote).
func ComputeKind(kind string, work float64)

type arena struct {
	rowPtr []int
	ind    []int32
	val    []float64
	labels []float64
}

// blockFold mirrors a gradLoss body: one running sum threaded in and out,
// margins of two consecutive rows pipelined in one interleaved loop, the
// gradient written into the caller-owned g. The accumulation order is the
// deterministic row/nonzero order of the slabs.
func blockFold(c *arena, lo, hi int, w, g []float64, sum float64) (float64, int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	rs := rp[lo]
	r := lo
	for ; r+1 < hi; r += 2 {
		mid, re := rp[r+1], rp[r+2]
		rIx1, rVal1 := ind[rs:mid], val[rs:mid]
		rIx2, rVal2 := ind[mid:re], val[mid:re]
		m1, m2 := 0.0, 0.0
		k := len(rIx1)
		if len(rIx2) < k {
			k = len(rIx2)
		}
		for p := 0; p < k; p++ {
			m1 += w[rIx1[p]] * rVal1[p]
			m2 += w[rIx2[p]] * rVal2[p]
		}
		for p := k; p < len(rIx1); p++ {
			m1 += w[rIx1[p]] * rVal1[p]
		}
		for p := k; p < len(rIx2); p++ {
			m2 += w[rIx2[p]] * rVal2[p]
		}
		sum += m1 * lbl[r]
		sum += m2 * lbl[r+1]
		for p, ix := range rIx1 {
			g[ix] += m1 * rVal1[p]
		}
		for p, ix := range rIx2 {
			g[ix] += m2 * rVal2[p]
		}
		rs = re
	}
	if r < hi {
		re := rp[r+1]
		rIx, rVal := ind[rs:re], val[rs:re]
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		sum += m * lbl[r]
	}
	return sum, rp[hi] - rp[lo]
}

// chargeBlocks mirrors the trainer call sites: the loss sum is threaded
// through the blocks and the virtual charge is the structural nonzero count
// returned by the kernel — both derived purely from slab structure.
func chargeBlocks(c *arena, blk int, w, g []float64) float64 {
	sum := 0.0
	n := len(c.rowPtr) - 1
	for lo := 0; lo < n; lo += blk {
		hi := lo + blk
		if hi > n {
			hi = n
		}
		var work int
		sum, work = blockFold(c, lo, hi, w, g, sum)
		ComputeKind("grad", float64(work)*2)
	}
	return sum
}
