// Package errdiscard implements the dropped-error lint: a call whose last
// result is an error, used as a bare statement, silently swallows the
// failure. In this codebase a swallowed error usually means a benchmark
// artifact was not written or a model file was truncated — failures that
// must surface, not vanish.
//
// Explicitly discarding with `_ =` (or `x, _ :=`) stays legal: the blank
// identifier is a visible, reviewable statement of intent. Deferred calls
// (`defer f.Close()`) are likewise not flagged. Writers that are documented
// never to fail — fmt printing, strings.Builder, bytes.Buffer — are
// allowlisted so idiomatic formatting code stays clean.
package errdiscard

import (
	"go/ast"
	"go/types"

	"mllibstar/internal/analysis"
)

// Analyzer is the dropped-error check; it applies to every package.
var Analyzer = &analysis.Analyzer{
	Name: "errdiscard",
	Doc:  "forbid calls that drop an error result on the floor",
	Run:  run,
}

// allowPkgs are packages whose package-level functions may be called as
// statements even though they formally return an error: their failures are
// either impossible (in-memory writers) or universally ignored by idiom.
var allowPkgs = map[string]bool{
	"fmt": true,
}

// allowRecvTypes are receiver types whose methods never fail in practice
// (their Write/WriteString and friends are documented to always succeed).
var allowRecvTypes = map[string]bool{
	"*strings.Builder": true,
	"strings.Builder":  true,
	"*bytes.Buffer":    true,
	"bytes.Buffer":     true,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if !returnsError(pass, call) || allowed(pass, call) {
			return true
		}
		pass.Reportf(call.Pos(), "call discards its error result; handle it or discard explicitly with _ =")
		return true
	})
	return nil
}

// returnsError reports whether the call's last result is of type error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func allowed(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil {
		return false // calls through function values are not allowlisted
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Pkg() != nil && allowPkgs[fn.Pkg().Path()]
	}
	return allowRecvTypes[sig.Recv().Type().String()]
}
