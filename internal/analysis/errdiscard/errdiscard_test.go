package errdiscard_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/errdiscard"
)

func TestErrDiscard(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", errdiscard.Analyzer)
}
