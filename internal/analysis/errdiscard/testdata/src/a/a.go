// Corpus for the errdiscard analyzer: bare statement calls whose last
// result is an error are flagged; explicit discards, deferred calls, and
// never-failing writers are clean.
package a

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func fails() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("boom") }

type flusher struct{}

func (*flusher) flush() error { return nil }

func dropped() {
	fails() // want `call discards its error result`
}

func droppedTuple() {
	twoResults() // want `call discards its error result`
}

func droppedMethod(f *flusher) {
	f.flush() // want `call discards its error result`
}

func droppedFuncValue(f func() error) {
	f() // want `call discards its error result`
}

// Clean: the blank identifier is a visible statement of intent.
func explicit() {
	_ = fails()
}

// Clean: handled.
func handled() error {
	if err := fails(); err != nil {
		return err
	}
	return nil
}

// Clean: deferred cleanup is idiomatic.
func deferred(f *flusher) {
	defer f.flush()
}

// Clean: fmt printing is allowlisted.
func printing() {
	fmt.Println("hello")
}

// Clean: strings.Builder writes are documented never to fail.
func builder() string {
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}

// Clean: bytes.Buffer writes are documented never to fail.
func buffer() string {
	var b bytes.Buffer
	b.WriteString("x")
	return b.String()
}

// Clean: calls with no error result.
func pure() {
	println("x")
}
