package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Facts is the cross-package fact store of one lint run.
//
// Interprocedural analyzers summarize each declared function of a package
// (does it transitively call obs? does it Put its buffer parameter? is its
// result map-iteration-order dependent?) and export the summary as a fact
// keyed by the analyzer's name and the function's stable identifier
// (callgraph.FuncID — the loader gives every directly checked package its
// own type universe, so *types.Func identity does not survive package
// boundaries but the package-qualified name does). When a later package
// calls into an already-analyzed one, the analyzer imports the callee's
// fact instead of guessing.
//
// Facts are stored JSON-encoded so the driver's content-hash result cache
// can persist a package's exports and replay them on a warm run without
// re-analyzing the package.
type Facts struct {
	index   map[factKey]json.RawMessage
	records []FactRecord
}

type factKey struct {
	analyzer string
	id       string
}

// FactRecord is one exported fact in persistable form.
type FactRecord struct {
	Analyzer string          `json:"analyzer"`
	ID       string          `json:"id"`
	Value    json.RawMessage `json:"value"`
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{index: map[factKey]json.RawMessage{}}
}

// Export records a fact about the function identified by id (use
// callgraph.FuncID). v must be JSON-marshalable; a marshal failure is a
// programming error and panics. Re-exporting the same key overwrites.
func (f *Facts) Export(analyzer, id string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("analysis: exporting fact %s/%s: %v", analyzer, id, err))
	}
	k := factKey{analyzer, id}
	if _, exists := f.index[k]; !exists {
		f.records = append(f.records, FactRecord{Analyzer: analyzer, ID: id, Value: data})
	} else {
		for i := range f.records {
			if f.records[i].Analyzer == analyzer && f.records[i].ID == id {
				f.records[i].Value = data
			}
		}
	}
	f.index[k] = data
}

// Import decodes the fact for (analyzer, id) into out, reporting whether
// one was present.
func (f *Facts) Import(analyzer, id string, out any) bool {
	data, ok := f.index[factKey{analyzer, id}]
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, out); err != nil {
		panic(fmt.Sprintf("analysis: importing fact %s/%s: %v", analyzer, id, err))
	}
	return true
}

// Len returns the number of stored facts.
func (f *Facts) Len() int { return len(f.records) }

// Since returns the records appended after an earlier Len() snapshot — the
// facts one package's analysis exported, in export order. The driver uses
// it to attribute facts to packages for the result cache.
func (f *Facts) Since(n int) []FactRecord {
	out := make([]FactRecord, len(f.records)-n)
	copy(out, f.records[n:])
	sort.Slice(out, func(i, j int) bool {
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Replay re-adds cached records (a warm package's exports) to the store.
func (f *Facts) Replay(records []FactRecord) {
	for _, r := range records {
		k := factKey{r.Analyzer, r.ID}
		if _, exists := f.index[k]; !exists {
			f.records = append(f.records, r)
		}
		f.index[k] = r.Value
	}
}
