package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"sort"
)

// ApplyFixes applies the first suggested fix of every diagnostic to the
// affected files and returns the new content of each changed file, gofmt'd.
// readFile supplies the current content of a file (tests pass an in-memory
// corpus; the driver reads from disk).
//
// Edits are applied per file in descending offset order so earlier offsets
// stay valid. Overlapping fixes are resolved deterministically: diagnostics
// are processed in (file, offset) order and a fix that overlaps an
// already-accepted edit is skipped — running the fixer again after the
// first batch lands picks it up, and the lint-fix make target asserts the
// process converges.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, readFile func(string) ([]byte, error)) (changed map[string][]byte, applied, skipped int, err error) {
	type edit struct {
		start, end int
		text       string
	}
	perFile := map[string][]edit{}

	ordered := append([]Diagnostic(nil), diags...)
	sort.SliceStable(ordered, func(i, j int) bool {
		pi, pj := fset.Position(ordered[i].Pos), fset.Position(ordered[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})

	for _, d := range ordered {
		if len(d.Fixes) == 0 {
			continue
		}
		fix := d.Fixes[0]
		file := ""
		var edits []edit
		ok := true
		for _, te := range fix.Edits {
			p, e := fset.Position(te.Pos), fset.Position(te.End)
			if file == "" {
				file = p.Filename
			}
			if p.Filename != file || e.Filename != file || e.Offset < p.Offset {
				ok = false // cross-file or inverted edit: malformed, skip
				break
			}
			edits = append(edits, edit{start: p.Offset, end: e.Offset, text: te.NewText})
		}
		if !ok || file == "" {
			skipped++
			continue
		}
		for _, ne := range edits {
			for _, oe := range perFile[file] {
				if ne.start < oe.end && oe.start < ne.end {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			skipped++
			continue
		}
		perFile[file] = append(perFile[file], edits...)
		applied++
	}

	changed = map[string][]byte{}
	files := make([]string, 0, len(perFile))
	for f := range perFile { //mlstar:nolint determinism -- keys sorted before use
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		src, rerr := readFile(file)
		if rerr != nil {
			return nil, 0, 0, fmt.Errorf("analysis: applying fixes to %s: %v", file, rerr)
		}
		edits := perFile[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.end > len(src) {
				return nil, 0, 0, fmt.Errorf("analysis: fix edit out of range in %s", file)
			}
			src = append(src[:e.start], append([]byte(e.text), src[e.end:]...)...)
		}
		formatted, ferr := format.Source(src)
		if ferr != nil {
			// A fix that does not produce parseable Go is a bug in the
			// analyzer; surface it instead of writing a broken file.
			return nil, 0, 0, fmt.Errorf("analysis: fix output for %s does not parse: %v", file, ferr)
		}
		changed[file] = formatted
	}
	return changed, applied, skipped, nil
}
