// Package floateq implements the float-safety lint: == and != on
// floating-point operands are flagged, because convergence and termination
// logic written with exact equality silently depends on the accumulation
// order of rounding error — precisely what varies when the same training
// run is re-expressed over a different aggregation topology (treeAggregate
// vs AllReduce), which is the comparison this repository exists to make.
//
// Two idioms remain allowed:
//
//   - comparison against an exact-zero constant (x == 0): zero is exactly
//     representable and widely used as a "never touched / skip this entry"
//     sentinel in the sparse kernels;
//   - x != x (and x == x): the standard NaN probe.
//
// Everything else should go through a tolerance helper (vec.EqTol) or an
// explicit sentinel comparison annotated //mlstar:nolint floateq.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"

	"mllibstar/internal/analysis"
)

// Analyzer is the float-equality check. It applies everywhere: float
// comparison semantics do not depend on which package they sit in.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point values except exact-zero sentinels and NaN probes",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		xt, xok := pass.TypesInfo.Types[bin.X]
		yt, yok := pass.TypesInfo.Types[bin.Y]
		if !xok || !yok || !analysis.IsFloat(xt.Type) || !analysis.IsFloat(yt.Type) {
			return true
		}
		if isExactZero(xt.Value) || isExactZero(yt.Value) {
			return true
		}
		if isNaNProbe(pass, bin) {
			return true
		}
		pass.Reportf(bin.OpPos,
			"floating-point %s compares for exact equality; use a tolerance (vec.EqTol) or an exact-zero sentinel", bin.Op)
		return true
	})
	return nil
}

// isExactZero reports whether the operand is a compile-time constant equal
// to zero.
func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	f, ok := constant.Float64Val(constant.ToFloat(v))
	return ok && f == 0
}

// isNaNProbe recognizes x != x / x == x over side-effect-free operands.
func isNaNProbe(pass *analysis.Pass, bin *ast.BinaryExpr) bool {
	return sameSimpleExpr(pass, bin.X, bin.Y)
}

// sameSimpleExpr reports whether a and b are the same identifier or the
// same selector chain over identifiers.
func sameSimpleExpr(pass *analysis.Pass, a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		bi, ok := ast.Unparen(b).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[a] != nil && pass.TypesInfo.Uses[a] == pass.TypesInfo.Uses[bi]
	case *ast.SelectorExpr:
		bs, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameSimpleExpr(pass, a.X, bs.X)
	}
	return false
}
