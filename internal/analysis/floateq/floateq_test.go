package floateq_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", floateq.Analyzer)
}
