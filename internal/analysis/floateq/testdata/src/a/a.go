// Corpus for the floateq analyzer: ==/!= on floats is flagged except for
// exact-zero sentinels and NaN probes.
package a

func exactEq(a, b float64) bool {
	return a == b // want `floating-point == compares for exact equality`
}

func exactNeq(a, b float64) bool {
	return a != b // want `floating-point != compares for exact equality`
}

func exactEq32(a, b float32) bool {
	return a == b // want `floating-point == compares for exact equality`
}

func converted(a float64, b int) bool {
	return a == float64(b) // want `floating-point == compares for exact equality`
}

// Clean: zero is exactly representable and a valid sentinel.
func zeroSentinel(a float64) bool {
	return a == 0
}

const zero = 0.0

// Clean: a named constant that is exactly zero is still a sentinel.
func namedZero(a float64) bool {
	return a != zero
}

// Clean: the standard NaN probe.
func isNaN(a float64) bool {
	return a != a
}

type point struct {
	x float64
}

// Clean: NaN probe through a selector chain.
func isNaNField(p point) bool {
	return p.x != p.x
}

// Clean: integers compare exactly.
func intEq(a, b int) bool {
	return a == b
}

// Clean: ordering comparisons carry no exact-equality hazard.
func less(a, b float64) bool {
	return a < b
}
