// Package gocapture implements the goroutine-capture lint: a goroutine
// launched inside a loop whose function literal reads the loop variable by
// capture is flagged; the variable should be passed as an argument.
//
// Since Go 1.22 each loop iteration gets a fresh variable, so this is no
// longer the classic shared-variable bug — but the engine's roadmap points
// toward real parallelism, where a captured loop variable in a goroutine is
// still the pattern most likely to turn into an unintended shared read
// (and, the moment anyone writes to it, a data race that go test -race has
// to catch dynamically instead of this analyzer catching statically).
// Passing the value as an argument makes the ownership transfer explicit
// and keeps the goroutine body oblivious to the loop around it.
package gocapture

import (
	"go/ast"
	"go/types"

	"mllibstar/internal/analysis"
)

// Analyzer is the goroutine loop-capture check; it applies to every
// package.
var Analyzer = &analysis.Analyzer{
	Name: "gocapture",
	Doc:  "forbid goroutines that capture their loop variable instead of taking it as an argument",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var loopVars []map[types.Object]bool

		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			switch n := n.(type) {
			case nil:
				return
			case *ast.RangeStmt:
				vars := map[types.Object]bool{}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
				loopVars = append(loopVars, vars)
				walk(n.Body)
				loopVars = loopVars[:len(loopVars)-1]
				return
			case *ast.ForStmt:
				vars := map[types.Object]bool{}
				if init, ok := n.Init.(*ast.AssignStmt); ok {
					for _, lhs := range init.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								vars[obj] = true
							}
						}
					}
				}
				loopVars = append(loopVars, vars)
				walk(n.Body)
				loopVars = loopVars[:len(loopVars)-1]
				return
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok && len(loopVars) > 0 {
					checkCapture(pass, lit, loopVars)
				}
				// Arguments (including nested literals) still deserve a walk.
				for _, arg := range n.Call.Args {
					walk(arg)
				}
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body)
				}
				return
			}
			// Generic traversal for everything else.
			ast.Inspect(n, func(child ast.Node) bool {
				if child == n {
					return true
				}
				switch child.(type) {
				case *ast.RangeStmt, *ast.ForStmt, *ast.GoStmt:
					walk(child)
					return false
				}
				return true
			})
		}
		walk(file)
	}
	return nil
}

// checkCapture reports references inside the goroutine literal to any
// enclosing loop's iteration variables.
func checkCapture(pass *analysis.Pass, lit *ast.FuncLit, loopVars []map[types.Object]bool) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		for _, vars := range loopVars {
			if vars[obj] {
				reported[obj] = true
				pass.Reportf(id.Pos(),
					"goroutine captures loop variable %s; pass it as an argument to the function literal", obj.Name())
			}
		}
		return true
	})
}
