package gocapture_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/gocapture"
)

func TestGoCapture(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", gocapture.Analyzer)
}
