// Corpus for the gocapture analyzer: goroutines launched in a loop must
// take the iteration variable as an argument, not read it by capture.
package a

func sink(int) {}

func rangeKeyCapture(xs []int) {
	for i := range xs {
		go func() {
			sink(i) // want `goroutine captures loop variable i`
		}()
	}
}

func rangeValueCapture(xs []int) {
	for _, v := range xs {
		go func() {
			sink(v) // want `goroutine captures loop variable v`
		}()
	}
}

func forCapture(n int) {
	for i := 0; i < n; i++ {
		go func() {
			sink(i) // want `goroutine captures loop variable i`
		}()
	}
}

func nestedCapture(xs []int) {
	for i := range xs {
		for j := range xs {
			go func() {
				sink(i) // want `goroutine captures loop variable i`
				sink(j) // want `goroutine captures loop variable j`
			}()
		}
	}
}

// Clean: the loop variable is passed as an argument; the parameter shadows
// it inside the literal.
func passedAsArg(xs []int) {
	for i := range xs {
		go func(i int) {
			sink(i)
		}(i)
	}
}

// Clean: a goroutine outside any loop captures ordinary locals.
func noLoop(x int) {
	go func() {
		sink(x)
	}()
}

// Clean: capturing a per-iteration copy, not the loop variable.
func copied(xs []int) {
	for i := range xs {
		i := i
		go func() {
			sink(i)
		}()
	}
}

// Clean: a plain (non-go) literal in a loop may read the loop variable.
func inlineLiteral(xs []int) {
	for i := range xs {
		func() {
			sink(i)
		}()
	}
}
