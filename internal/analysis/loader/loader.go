// Package loader parses and type-checks Go packages for the lint suite
// using only the standard library: package enumeration shells out to
// `go list -json`, syntax comes from go/parser, and types come from
// go/types with the source-based importer (which resolves both standard
// library and module-internal imports by type-checking them from source).
//
// Listing and loading are separate steps so the driver can skip the
// expensive one: List returns the matched packages in dependency order with
// their file lists and imports (enough to compute content-hash cache keys),
// and Module.LoadPackage type-checks one package on demand. A fully warm
// lint run lists the tree and loads nothing.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Entry is one matched package before type-checking: everything `go list`
// knows that the driver needs for cache keys and scheduling.
type Entry struct {
	ImportPath string
	Dir        string
	// GoFiles are the package's non-test Go files, as absolute paths.
	GoFiles []string
	// Imports are the package's direct imports (all of them; the driver
	// intersects with the matched set for dependency ordering).
	Imports []string
}

// Module is one `go list` result: the matched packages in dependency order
// plus the shared file set and importer used to load them on demand.
type Module struct {
	// Dir is the directory the patterns were resolved in ("" = cwd).
	Dir string
	// Entries are the matched packages, dependencies before dependents.
	Entries []Entry

	fset *token.FileSet
	imp  types.Importer
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
}

// List expands the package patterns (e.g. "./...") relative to dir and
// returns the matched packages in dependency order, without type-checking
// anything. Test files are not listed: the lint suite checks shipped code,
// and external test packages would need a second type-checking universe.
func List(dir string, patterns []string) (*Module, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}

	var entries []Entry
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		files := make([]string, 0, len(e.GoFiles))
		for _, f := range e.GoFiles {
			files = append(files, filepath.Join(e.Dir, f))
		}
		entries = append(entries, Entry{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			GoFiles:    files,
			Imports:    e.Imports,
		})
	}

	fset := token.NewFileSet()
	return &Module{
		Dir:     dir,
		Entries: topoOrder(entries),
		fset:    fset,
		imp:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// topoOrder sorts entries dependencies-first (Kahn's algorithm over the
// imports restricted to the matched set), breaking ties by import path so
// the order is deterministic. Cycles cannot occur in valid Go packages;
// leftover entries (only possible on invalid input) are appended sorted.
func topoOrder(entries []Entry) []Entry {
	sort.Slice(entries, func(i, j int) bool { return entries[i].ImportPath < entries[j].ImportPath })
	inSet := make(map[string]int, len(entries))
	for i, e := range entries {
		inSet[e.ImportPath] = i
	}
	indeg := make([]int, len(entries))
	dependents := make([][]int, len(entries))
	for i, e := range entries {
		for _, imp := range e.Imports {
			if j, ok := inSet[imp]; ok {
				indeg[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}
	var ready []int
	for i := range entries {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]Entry, 0, len(entries))
	done := make([]bool, len(entries))
	for len(ready) > 0 {
		sort.Ints(ready)
		i := ready[0]
		ready = ready[1:]
		out = append(out, entries[i])
		done[i] = true
		for _, d := range dependents[i] {
			if indeg[d]--; indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	for i := range entries {
		if !done[i] {
			out = append(out, entries[i])
		}
	}
	return out
}

// LoadPackage parses and type-checks one listed package. Packages loaded
// from the same Module share a file set and importer, so a dependency
// already type-checked (directly or as an import) is reused.
func (m *Module) LoadPackage(e Entry) (*Package, error) {
	// The source importer resolves module-internal import paths through
	// go/build, which needs the process working directory to sit inside the
	// module. Pin it for the duration of the load.
	restore, err := pushd(m.Dir)
	if err != nil {
		return nil, err
	}
	defer restore()
	names := make([]string, 0, len(e.GoFiles))
	for _, f := range e.GoFiles {
		names = append(names, filepath.Base(f))
	}
	return check(m.fset, m.imp, e.ImportPath, e.Dir, names)
}

// Load expands the patterns and type-checks every matched package, in
// dependency order. Drivers that can skip work should use List +
// LoadPackage instead.
func Load(dir string, patterns []string) ([]*Package, error) {
	mod, err := List(dir, patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(mod.Entries))
	for _, e := range mod.Entries {
		p, err := mod.LoadPackage(e)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir type-checks the single package rooted at dir under the given
// import path. Used by the analysistest harness over testdata corpora.
func LoadDir(dir, importPath string) (*Package, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	var goFiles []string
	for _, f := range files {
		if !f.IsDir() && strings.HasSuffix(f.Name(), ".go") {
			goFiles = append(goFiles, f.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, importPath, dir, goFiles)
}

// check parses the named files of one package and type-checks them.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	astFiles := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	return &Package{
		PkgPath:   importPath,
		Dir:       dir,
		Fset:      fset,
		Files:     astFiles,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// pushd chdirs to dir and returns a function restoring the previous working
// directory. A no-op when dir is empty.
func pushd(dir string) (func(), error) {
	if dir == "" {
		return func() {}, nil
	}
	prev, err := os.Getwd()
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	if err := os.Chdir(dir); err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	return func() { _ = os.Chdir(prev) }, nil
}
