// Package loader parses and type-checks Go packages for the lint suite
// using only the standard library: package enumeration shells out to
// `go list -json`, syntax comes from go/parser, and types come from
// go/types with the source-based importer (which resolves both standard
// library and module-internal imports by type-checking them from source).
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Load expands the package patterns (e.g. "./...") relative to dir and
// returns the matched packages, parsed and type-checked. Test files are not
// loaded: the lint suite checks shipped code, and external test packages
// would need a second type-checking universe.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}

	var entries []listEntry
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}

	// The source importer resolves module-internal import paths through
	// go/build, which needs the process working directory to sit inside the
	// module. Pin it for the duration of the load.
	restore, err := pushd(dir)
	if err != nil {
		return nil, err
	}
	defer restore()

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkgs := make([]*Package, 0, len(entries))
	for _, e := range entries {
		p, err := check(fset, imp, e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir type-checks the single package rooted at dir under the given
// import path. Used by the analysistest harness over testdata corpora.
func LoadDir(dir, importPath string) (*Package, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	var goFiles []string
	for _, f := range files {
		if !f.IsDir() && strings.HasSuffix(f.Name(), ".go") {
			goFiles = append(goFiles, f.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, importPath, dir, goFiles)
}

// check parses the named files of one package and type-checks them.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	astFiles := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	return &Package{
		PkgPath:   importPath,
		Dir:       dir,
		Fset:      fset,
		Files:     astFiles,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// pushd chdirs to dir and returns a function restoring the previous working
// directory. A no-op when dir is empty.
func pushd(dir string) (func(), error) {
	if dir == "" {
		return func() {}, nil
	}
	prev, err := os.Getwd()
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	if err := os.Chdir(dir); err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	return func() { _ = os.Chdir(prev) }, nil
}
