package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// NolintMarker is the comment that suppresses findings:
//
//	x := weird()          //mlstar:nolint floateq -- exact sentinel by design
//	//mlstar:nolint determinism -- order-insensitive: counts into a map
//	for k := range m { ... }
//
// A directive must name the analyzer(s) it silences (comma-separated) and
// must attach to a statement or declaration: either trailing on the line
// where the statement starts, or on a line of its own directly above it. It
// then suppresses only the named analyzers, and only within the source span
// of that one statement or declaration — a directive can never silence a
// different analyzer, or reach code it is not attached to. Everything after
// " -- " is a justification for human readers (and reviewers: a directive
// without one reads as unexplained).
//
// Malformed directives — a bare marker naming no analyzer, or a marker with
// no statement to attach to — are themselves reported as findings (analyzer
// name "nolint"), so a directive that silently stopped matching fails the
// lint gate instead of rotting.
const NolintMarker = "//mlstar:nolint"

// Directive is one parsed, attached nolint comment.
type Directive struct {
	Path      string
	Line      int      // line the comment sits on
	Analyzers []string // named analyzers (non-empty for valid directives)
	FromLine  int      // first line of the attached node
	ToLine    int      // last line of the attached node
}

// Misuse is a malformed directive, reported as a finding by the driver.
type Misuse struct {
	Pos     token.Pos
	Message string
}

// Suppressor answers whether a diagnostic is covered by an attached
// directive naming its analyzer. Build it per package with AddPackage.
type Suppressor struct {
	byFile map[string][]Directive
}

// NewSuppressor returns an empty Suppressor.
func NewSuppressor() *Suppressor {
	return &Suppressor{byFile: map[string][]Directive{}}
}

// AddPackage parses and attaches every nolint directive in the package's
// files, returning the misuses it found.
func (s *Suppressor) AddPackage(fset *token.FileSet, files []*ast.File) []Misuse {
	var misuses []Misuse
	for _, f := range files {
		dirs, mis := collectFile(fset, f)
		for _, d := range dirs {
			s.byFile[d.Path] = append(s.byFile[d.Path], d)
		}
		misuses = append(misuses, mis...)
	}
	sort.Slice(misuses, func(i, j int) bool { return misuses[i].Pos < misuses[j].Pos })
	return misuses
}

// Suppressed reports whether a finding of the named analyzer at
// filename:line is covered by a directive naming that analyzer whose
// attached node spans the line.
func (s *Suppressor) Suppressed(filename string, line int, analyzer string) bool {
	for _, d := range s.byFile[filename] {
		if line < d.FromLine || line > d.ToLine {
			continue
		}
		for _, name := range d.Analyzers {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// attachable reports whether n is a node a directive may attach to: any
// statement except a bare block, any declaration, or an import/const/var/
// type spec.
func attachable(n ast.Node) bool {
	switch n.(type) {
	case *ast.BlockStmt:
		return false
	case ast.Stmt, ast.Spec, *ast.GenDecl, *ast.FuncDecl:
		return true
	}
	return false
}

// candidate is one attachable node's line extent.
type candidate struct {
	from, to int
	isDecl   bool
}

// collectFile parses the file's directives and attaches each to a node.
func collectFile(fset *token.FileSet, f *ast.File) ([]Directive, []Misuse) {
	var cands []candidate
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !attachable(n) {
			return true
		}
		_, isFunc := n.(*ast.FuncDecl)
		_, isGen := n.(*ast.GenDecl)
		cands = append(cands, candidate{
			from:   fset.Position(n.Pos()).Line,
			to:     fset.Position(n.End()).Line,
			isDecl: isFunc || isGen,
		})
		return true
	})

	var dirs []Directive
	var misuses []Misuse
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			names, found := nolintNames(c.Text)
			if !found {
				continue
			}
			pos := fset.Position(c.Pos())
			if names == "" {
				misuses = append(misuses, Misuse{Pos: c.Pos(),
					Message: "bare nolint directive: name the analyzer(s) it suppresses (//mlstar:nolint <analyzer> -- reason)"})
				continue
			}
			var list []string
			for _, n := range strings.Split(names, ",") {
				if n = strings.TrimSpace(n); n != "" {
					list = append(list, n)
				}
			}
			from, to, ok := attach(cands, pos.Line)
			if !ok {
				misuses = append(misuses, Misuse{Pos: c.Pos(),
					Message: "unattached nolint directive: it must trail the statement it suppresses or sit on the line directly above it"})
				continue
			}
			dirs = append(dirs, Directive{
				Path: pos.Filename, Line: pos.Line,
				Analyzers: list, FromLine: from, ToLine: to,
			})
		}
	}
	return dirs, misuses
}

// attach picks the node a directive at the given line governs: the smallest
// attachable node starting on the directive's line (a trailing comment),
// else the smallest starting on the next line (a leading comment), else —
// for a comment inside a multi-line statement — the innermost enclosing
// statement. Declarations only attach by their first line, never by
// enclosure, so a stray directive inside a function body cannot silently
// cover the whole function.
func attach(cands []candidate, line int) (from, to int, ok bool) {
	best := func(match func(candidate) bool) (candidate, bool) {
		var b candidate
		found := false
		for _, c := range cands {
			if !match(c) {
				continue
			}
			if !found || c.to-c.from < b.to-b.from {
				b, found = c, true
			}
		}
		return b, found
	}
	if c, found := best(func(c candidate) bool { return c.from == line }); found {
		return c.from, c.to, true
	}
	if c, found := best(func(c candidate) bool { return c.from == line+1 }); found {
		return c.from, c.to, true
	}
	if c, found := best(func(c candidate) bool { return !c.isDecl && c.from < line && line <= c.to }); found {
		return c.from, c.to, true
	}
	return 0, 0, false
}

// nolintNames extracts the analyzer list following the marker, with the
// optional " -- reason" suffix stripped. found is false when the comment is
// not a directive. Following the Go directive convention, only a comment
// whose text BEGINS with the marker counts — prose or code examples that
// merely mention //mlstar:nolint mid-comment are not directives and are not
// misuses.
func nolintNames(comment string) (names string, found bool) {
	if !strings.HasPrefix(comment, NolintMarker) {
		return "", false
	}
	rest := comment[len(NolintMarker):]
	if j := strings.Index(rest, "--"); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest), true
}
