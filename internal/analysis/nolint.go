package analysis

import (
	"bufio"
	"os"
	"strings"
)

// NolintMarker is the comment that suppresses a finding on its line (or, on
// a line of its own, the finding on the following line):
//
//	x := weird()          //mlstar:nolint floateq -- exact sentinel by design
//	//mlstar:nolint determinism -- order-insensitive: counts into a map
//	for k := range m { ... }
//
// Analyzer names are comma-separated; a bare marker suppresses every
// analyzer. Everything after " -- " is a justification for human readers.
const NolintMarker = "//mlstar:nolint"

// Suppressor answers whether a diagnostic at a given file line is
// suppressed. It lazily reads and caches file contents.
type Suppressor struct {
	files map[string][]string
}

// NewSuppressor returns an empty Suppressor.
func NewSuppressor() *Suppressor {
	return &Suppressor{files: map[string][]string{}}
}

// Suppressed reports whether a finding of the named analyzer at
// filename:line is covered by a nolint marker on that line or the line
// above. Unreadable files suppress nothing.
func (s *Suppressor) Suppressed(filename string, line int, analyzer string) bool {
	lines, ok := s.files[filename]
	if !ok {
		lines = readLines(filename)
		s.files[filename] = lines
	}
	for _, ln := range []int{line, line - 1} {
		if ln < 1 || ln > len(lines) {
			continue
		}
		if marker, found := nolintNames(lines[ln-1]); found {
			if ln == line-1 && !isMarkerOnlyLine(lines[ln-1]) {
				continue // the previous line's trailing marker covers that line, not this one
			}
			if marker == "" {
				return true
			}
			for _, name := range strings.Split(marker, ",") {
				if strings.TrimSpace(name) == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// nolintNames extracts the analyzer list following the marker, with the
// optional " -- reason" suffix stripped. found is false when the line has
// no marker at all.
func nolintNames(line string) (names string, found bool) {
	i := strings.Index(line, NolintMarker)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(NolintMarker):]
	if j := strings.Index(rest, "--"); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest), true
}

// isMarkerOnlyLine reports whether the line consists solely of the nolint
// comment (so it annotates the next line rather than its own).
func isMarkerOnlyLine(line string) bool {
	return strings.HasPrefix(strings.TrimSpace(line), NolintMarker)
}

func readLines(filename string) []string {
	f, err := os.Open(filename)
	if err != nil {
		return nil
	}
	defer func() { _ = f.Close() }()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}
