package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse builds a Suppressor over one in-memory file, returning the misuses.
func parse(t *testing.T, src string) (*Suppressor, []Misuse, string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuppressor()
	mis := s.AddPackage(fset, []*ast.File{f})
	return s, mis, "p.go"
}

func TestSuppressedAttachment(t *testing.T) {
	src := `package p

var a = 1 //mlstar:nolint floateq -- exact sentinel by design
var b = 2 //mlstar:nolint floateq,determinism
//mlstar:nolint determinism -- order-insensitive: one write per key
var d = 4
var e = 5

func f() {
	x := call( //mlstar:nolint vecalias -- shared read-only buffer
		1,
		2,
	)
	_ = x
}

//mlstar:nolint determinism -- kernel-internal launch
func g() {
	y := 0
	_ = y
}
`
	s, mis, file := parse(t, src)
	if len(mis) != 0 {
		t.Fatalf("unexpected misuses: %v", mis)
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "floateq", true},      // trailing marker, named analyzer
		{3, "determinism", false}, // trailing marker names a different analyzer
		{4, "floateq", true},      // comma-separated list, first name
		{4, "determinism", true},  // comma-separated list, second name
		{4, "vecalias", false},    // not in the list
		{6, "determinism", true},  // marker-only line covers the statement below
		{6, "floateq", false},     // ...for the named analyzer only
		{7, "determinism", false}, // the next statement is not covered
		{10, "vecalias", true},    // trailing marker on a multi-line statement...
		{12, "vecalias", true},    // ...covers the whole statement
		{12, "floateq", false},    // ...but only the named analyzer
		{20, "determinism", true}, // declaration-attached directive covers the body
		{100, "floateq", false},   // out-of-range line
	}
	for _, c := range cases {
		if got := s.Suppressed(file, c.line, c.analyzer); got != c.want {
			t.Errorf("Suppressed(line %d, %q) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
	if s.Suppressed("missing.go", 1, "floateq") {
		t.Error("unknown file suppressed a finding")
	}
}

func TestNolintMisuses(t *testing.T) {
	src := `package p

var a = 1 //mlstar:nolint

//mlstar:nolint floateq -- floating in space, nothing on the next line

var b = 2
`
	_, mis, _ := parse(t, src)
	if len(mis) != 2 {
		t.Fatalf("got %d misuses, want 2: %v", len(mis), mis)
	}
	if !strings.Contains(mis[0].Message, "bare nolint") {
		t.Errorf("misuse[0] = %q, want bare-directive message", mis[0].Message)
	}
	if !strings.Contains(mis[1].Message, "unattached nolint") {
		t.Errorf("misuse[1] = %q, want unattached-directive message", mis[1].Message)
	}
	// Neither malformed directive suppresses anything.
	s, _, file := parse(t, src)
	if s.Suppressed(file, 3, "floateq") || s.Suppressed(file, 7, "floateq") {
		t.Error("malformed directive suppressed a finding")
	}
}

func TestInScope(t *testing.T) {
	a := &Analyzer{Name: "x", DefaultScope: []string{"mllibstar/internal/engine", "mllibstar/internal/opt"}}
	cases := []struct {
		pkg  string
		want bool
	}{
		{"mllibstar/internal/engine", true},
		{"mllibstar/internal/engine/sub", true}, // prefix covers subpackages
		{"mllibstar/internal/engineer", false},  // not a path-segment match
		{"mllibstar/internal/opt", true},
		{"mllibstar/internal/vec", false},
	}
	for _, c := range cases {
		if got := a.InScope(c.pkg); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.pkg, got, c.want)
		}
	}
	empty := &Analyzer{Name: "y"}
	if !empty.InScope("anything/at/all") {
		t.Error("empty scope must cover every package")
	}
}
