package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSuppressed(t *testing.T) {
	src := `package p

var a = 1 //mlstar:nolint floateq -- exact sentinel by design
var b = 2 //mlstar:nolint floateq,determinism
var c = 3 //mlstar:nolint
//mlstar:nolint determinism -- order-insensitive: one write per key
var d = 4
var e = 5
`
	dir := t.TempDir()
	file := filepath.Join(dir, "p.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSuppressor()
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "floateq", true},      // trailing marker, named analyzer
		{3, "determinism", false}, // trailing marker names a different analyzer
		{4, "floateq", true},      // comma-separated list, first name
		{4, "determinism", true},  // comma-separated list, second name
		{4, "vecalias", false},    // not in the list
		{5, "floateq", true},      // bare marker suppresses everything
		{5, "gocapture", true},    // ditto
		{7, "determinism", true},  // marker-only line covers the next line
		{7, "floateq", false},     // ...for the named analyzer only
		{8, "determinism", false}, // two lines below a marker is not covered
		{4, "floateq", true},      // cached-file path answers consistently
		{100, "floateq", false},   // out-of-range line
	}
	for _, c := range cases {
		if got := s.Suppressed(file, c.line, c.analyzer); got != c.want {
			t.Errorf("Suppressed(line %d, %q) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
	// A trailing marker on line 3 must not leak onto line 4's findings.
	if s.Suppressed(file, 4, "gocapture") {
		t.Error("trailing marker on the previous line suppressed the next line")
	}
	// Unreadable files suppress nothing.
	if s.Suppressed(filepath.Join(dir, "missing.go"), 1, "floateq") {
		t.Error("missing file suppressed a finding")
	}
}

func TestInScope(t *testing.T) {
	a := &Analyzer{Name: "x", DefaultScope: []string{"mllibstar/internal/engine", "mllibstar/internal/opt"}}
	cases := []struct {
		pkg  string
		want bool
	}{
		{"mllibstar/internal/engine", true},
		{"mllibstar/internal/engine/sub", true}, // prefix covers subpackages
		{"mllibstar/internal/engineer", false},  // not a path-segment match
		{"mllibstar/internal/opt", true},
		{"mllibstar/internal/vec", false},
	}
	for _, c := range cases {
		if got := a.InScope(c.pkg); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.pkg, got, c.want)
		}
	}
	empty := &Analyzer{Name: "y"}
	if !empty.InScope("anything/at/all") {
		t.Error("empty scope must cover every package")
	}
}
