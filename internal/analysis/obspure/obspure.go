// Package obspure implements the telemetry-purity lint: code offloaded to
// the deterministic compute pool must not touch the obs telemetry layer.
//
// Offloaded closures — Task.Pure bodies, the fn argument of
// ComputeAsyncKind/ChargeAsync/ChargeAsyncKind, and thunks handed to
// par.Go/par.Do — run on worker goroutines whose interleaving is
// scheduler-dependent. The obs sink is mutex-protected, so an obs call from
// such a closure would not race, but it would append events in wall-clock
// completion order and break the event log's determinism (and with it the
// replay, golden-file, and parity guarantees). Telemetry must be emitted
// from the simulation thread, where virtual time is well defined; the
// analyzer enforces that statically instead of leaving it to code review.
//
// Closures reach the offload entry points two ways: as literal arguments
// (par.Do(func() { ... })) and as named locals bound first and handed over
// by identifier — the style the pipelined AllReduce scheduler uses
// (fold := func() { ... }; h := par.Do(fold)). The analyzer resolves the
// second form too: every func literal assigned to a local identifier within
// the package is checked when that identifier is passed to an offload call.
package obspure

import (
	"go/ast"
	"go/types"

	"mllibstar/internal/analysis"
)

// obsPath is the package whose calls are forbidden in offloaded closures.
const obsPath = "mllibstar/internal/obs"

// parPath is the compute pool package whose Go/Do accept offloaded thunks.
const parPath = "mllibstar/internal/par"

// offloadFuncs are the method/function names whose func-literal arguments
// execute on pool goroutines. The names are unique to the offload API, so
// matching by name (plus package for par.Go/par.Do, whose names are
// generic) keeps the check robust across the engine and simnet layers.
var offloadFuncs = map[string]bool{
	"ComputeAsyncKind": true,
	"ChargeAsync":      true,
	"ChargeAsyncKind":  true,
}

// Analyzer is the telemetry-purity check.
var Analyzer = &analysis.Analyzer{
	Name: "obspure",
	Doc:  "forbid obs telemetry calls inside offloaded closures (Task.Pure, ComputeAsyncKind, par.Go/Do)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Path() == obsPath {
		return nil // the telemetry package may of course call itself
	}
	bound := boundLiterals(pass)
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			// Task{Pure: func() float64 { ... }} and friends.
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Pure" {
					if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
						checkOffloaded(pass, lit, "Task.Pure closure")
					}
				}
			}
		case *ast.AssignStmt:
			// t.Pure = func() float64 { ... }
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Pure" || i >= len(n.Rhs) {
					continue
				}
				if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
					checkOffloaded(pass, lit, "Task.Pure closure")
				}
			}
		case *ast.CallExpr:
			name, isOffload := offloadCallee(pass, n)
			if !isOffload {
				return true
			}
			for _, arg := range n.Args {
				switch arg := ast.Unparen(arg).(type) {
				case *ast.FuncLit:
					checkOffloaded(pass, arg, name+" closure")
				case *ast.Ident:
					// fold := func() { ... }; par.Do(fold) — the named-
					// closure style of the pipeline scheduler. Check every
					// literal ever bound to that identifier.
					for _, lit := range bound[pass.TypesInfo.ObjectOf(arg)] {
						checkOffloaded(pass, lit, name+" closure "+arg.Name)
					}
				}
			}
		}
		return true
	})
	return nil
}

// boundLiterals maps each local variable object to the func literals
// assigned to it (fold := func() { ... } or fold = func() { ... }, including
// var declarations with initializers). Conservative by construction: a
// variable assigned through any other expression contributes nothing, so
// only closures whose body is visible are checked.
func boundLiterals(pass *analysis.Pass) map[types.Object][]*ast.FuncLit {
	bound := map[types.Object][]*ast.FuncLit{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			bound[obj] = append(bound[obj], lit)
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return bound
}

// offloadCallee reports whether call hands func-literal arguments to pool
// goroutines, returning a human-readable callee name for the diagnostic.
func offloadCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if offloadFuncs[fn.Name()] {
		return fn.Name(), true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == parPath && (fn.Name() == "Go" || fn.Name() == "Do") {
		return "par." + fn.Name(), true
	}
	return "", false
}

// checkOffloaded reports every outermost obs call in the offloaded body.
// Chained calls like obs.Active().Span(...) yield one diagnostic, on the
// outer call; nested closures inside the body are offloaded transitively
// and are walked too.
func checkOffloaded(pass *analysis.Pass, lit *ast.FuncLit, where string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.FuncOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
			return true
		}
		pass.Reportf(call.Pos(),
			"obs.%s called inside %s: offloaded code runs on pool goroutines in wall-clock order, so telemetry from it is nondeterministic; emit events from the simulation thread instead",
			fn.Name(), where)
		return false // the receiver chain is part of the reported call
	})
}
