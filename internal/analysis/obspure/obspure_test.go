package obspure_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/obspure"
)

func TestObspure(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", obspure.Analyzer)
}
