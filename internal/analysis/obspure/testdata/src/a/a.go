// Corpus for the obspure analyzer: telemetry calls inside offloaded
// closures (Task.Pure fields and assignments, ComputeAsyncKind/ChargeAsync
// arguments, par.Go/par.Do thunks) are flagged, including transitively
// through nested literals and through the obs.Active() chain, and including
// closures bound to a local name before being handed to the offload call
// (the pipeline scheduler's fold/decode style); telemetry on the simulation
// thread and offloaded closures without telemetry are clean.
package a

import (
	"mllibstar/internal/obs"
	"mllibstar/internal/par"
)

// task mirrors engine.Task's offload contract; the analyzer matches the
// Pure field by name, not by the defining package.
type task struct {
	Pure func() float64
}

// ComputeAsyncKind mirrors the simnet/engine offload entry points, which
// are matched by their (unique) names.
func ComputeAsyncKind(work float64, note string, fn func()) { fn() }

// ChargeAsync mirrors engine.Executor.ChargeAsync.
func ChargeAsync(work float64, fn func()) { fn() }

func inTaskLiteral() task {
	return task{
		Pure: func() float64 {
			obs.Active().Span("n", obs.PhaseCompute, 0, 1, "") // want `obs\.Span called inside Task\.Pure closure`
			return 1
		},
	}
}

func inPureAssignment() {
	var t task
	t.Pure = func() float64 {
		obs.Active().Updates(1, "n", 1, 0) // want `obs\.Updates called inside Task\.Pure closure`
		return 0
	}
	_ = t
}

func inComputeAsyncKind() {
	ComputeAsyncKind(100, "agg", func() {
		obs.Active().SetStep(3, 0.5) // want `obs\.SetStep called inside ComputeAsyncKind closure`
	})
}

func inChargeAsync() {
	ChargeAsync(100, func() {
		obs.Enable() // want `obs\.Enable called inside ChargeAsync closure`
	})
}

func inParGo() {
	h := par.Go(func() float64 {
		obs.Active().Meta("k", "v") // want `obs\.Meta called inside par\.Go closure`
		return 0
	})
	_ = h.Join()
}

func inParDoNested() {
	par.Do(func() {
		inner := func() {
			obs.Disable() // want `obs\.Disable called inside par\.Do closure`
		}
		inner()
	})
}

// Named closures handed over by identifier are resolved to their literals.
func inNamedParDo() {
	fold := func() {
		obs.Active().SetStep(1, 0) // want `obs\.SetStep called inside par\.Do closure fold`
	}
	par.Do(fold)
}

func inNamedVarDecl() {
	var decode = func() {
		obs.Active().Span("n", obs.PhaseCompute, 0, 1, "") // want `obs\.Span called inside ComputeAsyncKind closure decode`
	}
	ComputeAsyncKind(10, "dec", decode)
}

func inNamedReassigned() {
	work := func() {}
	work = func() {
		obs.Enable() // want `obs\.Enable called inside par\.Do closure work`
	}
	par.Do(work)
}

// Clean: a named closure without telemetry offloads fine.
func namedPureFold() {
	fold := func() {}
	par.Do(fold)
}

// Clean: a named closure with telemetry that only ever runs on the
// simulation thread is not an offload target.
func namedOnSimThread() {
	report := func() { obs.Active().Meta("k", "v") }
	report()
}

// Clean: telemetry from the simulation thread is exactly what obs is for.
func onSimThread() {
	obs.Active().SetStep(1, 0)
	obs.Active().Span("driver", obs.PhaseCompute, 0, 1, "")
}

// Clean: offloaded closures that stay numeric.
func pureIsPure() task {
	return task{Pure: func() float64 { return 2 }}
}

// Clean: a lowercase helper is not an offload entry point, so its closure
// runs on the caller's (simulation) goroutine.
func notOffload(fn func()) { fn() }

func inPlainHelper() {
	notOffload(func() {
		obs.Active().Meta("k", "v")
	})
}
