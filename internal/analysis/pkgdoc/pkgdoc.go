// Package pkgdoc implements the package-documentation lint: every package
// must carry a doc comment, and library packages must follow the go/doc
// convention of starting it with "Package <name> ". Main packages only need
// a comment to be present — the cmd/ trees use the "Command <name> ..."
// form, while the examples/ programs open with a task description. In this
// repository the package comment is where the load-bearing contracts live
// (determinism rules, buffer ownership, byte-accounting semantics), so a
// missing one is not a style nit: it means a subsystem's invariants are
// undocumented.
//
// The comment may sit on any file of the package; the diagnostic is reported
// on the package clause of the first file (in filename order) when none
// carries one.
package pkgdoc

import (
	"go/ast"
	"sort"
	"strings"

	"mllibstar/internal/analysis"
)

// Analyzer is the package-documentation check; it applies to every package.
var Analyzer = &analysis.Analyzer{
	Name: "pkgdoc",
	Doc:  "require a package doc comment following the Package/Command convention",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if len(pass.Files) == 0 {
		return nil
	}
	want := "Package " + pass.Pkg.Name() + " "
	if pass.Pkg.Name() == "main" {
		want = "" // any doc comment: "Command <name>" in cmd/, prose in examples/
	}
	var documented, malformed []*ast.File
	for _, f := range pass.Files {
		if f.Doc == nil {
			continue
		}
		if strings.HasPrefix(f.Doc.Text(), want) {
			documented = append(documented, f)
		} else {
			malformed = append(malformed, f)
		}
	}
	if len(documented) > 0 {
		return nil
	}
	if len(malformed) > 0 {
		f := malformed[0]
		pass.Reportf(f.Package, "package doc comment must start with %q", strings.TrimRight(want, " "))
		return nil
	}
	files := append([]*ast.File(nil), pass.Files...)
	sort.Slice(files, func(i, j int) bool {
		return pass.Fset.Position(files[i].Package).Filename <
			pass.Fset.Position(files[j].Package).Filename
	})
	pass.Reportf(files[0].Package, "package %s has no package doc comment", pass.Pkg.Name())
	return nil
}
