package pkgdoc_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/pkgdoc"
)

func TestMissingDoc(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", pkgdoc.Analyzer)
}

func TestDocumented(t *testing.T) {
	analysistest.Run(t, "testdata/src/b", pkgdoc.Analyzer)
}

func TestWrongPrefix(t *testing.T) {
	analysistest.Run(t, "testdata/src/c", pkgdoc.Analyzer)
}
