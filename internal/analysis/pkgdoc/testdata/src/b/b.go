// helper without the doc comment; doc.go carries it for the package.
package b

func B() int { return 2 }
