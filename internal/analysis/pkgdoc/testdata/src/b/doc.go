// Package b is fully documented, on a file other than the first.
package b
