// This comment documents the package but not in the standard form.
package c // want `package doc comment must start with "Package c"`

func C() int { return 3 }
