// Package taint is the forward dataflow framework the flow-sensitive
// analyzers (buflife, detflow) run over the CFGs built by package cfg.
//
// The framework is a classic iterative worklist solver for a "may"
// analysis: the abstract state maps variables (types.Object) to a small
// bitmask of marks, states merge at control-flow joins by bitwise union,
// and the analyzer supplies a transfer function applied to each node of a
// block in order. Because merge only ever adds bits and block in-states
// grow monotonically, the iteration terminates even when the transfer
// function performs strong updates (clearing bits on rebinding).
//
// Analyzers typically run Solve to fixpoint with reporting disabled, then
// replay each block once from its final in-state with reporting enabled —
// the replay sees every state real execution could reach at that node. The
// deferred statements recorded by the CFG builder run at function exit, so
// lifetime analyses replay them against the exit in-state.
package taint

import (
	"go/ast"
	"go/types"

	"mllibstar/internal/analysis/cfg"
)

// Marks is a bitmask of analyzer-defined facts about one variable.
type Marks uint8

// State is the abstract store: which marks each variable carries. A
// missing entry means no marks.
type State map[types.Object]Marks

// Get returns o's marks.
func (s State) Get(o types.Object) Marks { return s[o] }

// Add sets bits on o's marks.
func (s State) Add(o types.Object, m Marks) {
	if m != 0 {
		s[o] |= m
	}
}

// Set replaces o's marks (a strong update; use on rebinding).
func (s State) Set(o types.Object, m Marks) {
	if m == 0 {
		delete(s, o)
		return
	}
	s[o] = m
}

// Clear removes bits from o's marks.
func (s State) Clear(o types.Object, m Marks) {
	if v, ok := s[o]; ok {
		if v &= ^m; v == 0 {
			delete(s, o)
		} else {
			s[o] = v
		}
	}
}

// Clone returns an independent copy.
func (s State) Clone() State {
	out := make(State, len(s))
	for k, v := range s { //mlstar:nolint determinism -- map copy: per-key writes, order-insensitive
		out[k] = v
	}
	return out
}

// mergeInto unions src into dst, reporting whether dst changed.
func mergeInto(dst State, src State) bool {
	changed := false
	for k, v := range src { //mlstar:nolint determinism -- union of mark sets: per-key OR, order-insensitive
		if dst[k]&v != v {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

// Problem is one dataflow instance over one function graph.
type Problem struct {
	Graph *cfg.Graph
	// Entry seeds the entry block's in-state (e.g. parameter marks).
	Entry State
	// Transfer updates st in place for one node. It must be deterministic
	// in (n, st). It is called both during fixpoint iteration and during
	// Replay, so reporting belongs in a separate callback (see Replay).
	Transfer func(n ast.Node, st State)
}

// Solve iterates to fixpoint and returns the final in-state of every
// block. Every block is seeded onto the worklist (not just those whose
// in-state changes): a block reachable only through empty states still runs
// its transfer function, which is what introduces marks in the first place.
func (p *Problem) Solve() map[*cfg.Block]State {
	in := map[*cfg.Block]State{}
	entry := p.Entry
	if entry == nil {
		entry = State{}
	}
	for _, b := range p.Graph.Blocks {
		in[b] = State{}
	}
	in[p.Graph.Entry] = entry.Clone()

	work := make([]*cfg.Block, len(p.Graph.Blocks))
	copy(work, p.Graph.Blocks)
	queued := map[*cfg.Block]bool{}
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		st := in[b].Clone()
		for _, n := range b.Nodes {
			p.Transfer(n, st)
		}
		for _, succ := range b.Succs {
			if mergeInto(in[succ], st) && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// Replay walks every block once from its solved in-state, calling visit
// before Transfer on each node — the reporting pass. Blocks are visited in
// graph order, so diagnostics come out deterministically. After the blocks,
// the function's deferred statements are replayed (in reverse syntactic
// order, as execution would run them) against the exit block's in-state.
func (p *Problem) Replay(in map[*cfg.Block]State, visit func(n ast.Node, st State)) {
	for _, b := range p.Graph.Blocks {
		st := in[b].Clone()
		for _, n := range b.Nodes {
			visit(n, st)
			p.Transfer(n, st)
		}
	}
	if len(p.Graph.Defers) > 0 {
		st := in[p.Graph.Exit].Clone()
		for i := len(p.Graph.Defers) - 1; i >= 0; i-- {
			d := p.Graph.Defers[i]
			visit(&deferredCall{DeferStmt: d}, st)
			p.Transfer(&deferredCall{DeferStmt: d}, st)
		}
	}
}

// deferredCall wraps a defer statement when it is replayed at exit, so the
// transfer function can tell the execution of the deferred call (at exit)
// from its registration (in normal flow).
type deferredCall struct {
	*ast.DeferStmt
}

// IsDeferredExec reports whether n is a deferred call replayed at function
// exit, returning the underlying defer statement.
func IsDeferredExec(n ast.Node) (*ast.DeferStmt, bool) {
	if d, ok := n.(*deferredCall); ok {
		return d.DeferStmt, true
	}
	return nil, false
}
