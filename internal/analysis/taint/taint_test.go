package taint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"mllibstar/internal/analysis/cfg"
	"mllibstar/internal/analysis/taint"
)

// load type-checks one in-memory function and returns its body CFG plus the
// type info.
func load(t *testing.T, src string) (*cfg.Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return cfg.New(fd.Body), info
		}
	}
	t.Fatal("no function body")
	return nil, nil
}

// Marks introduced by a transfer function deep in the graph must propagate
// even when every in-state on the way there is empty. (Regression: a
// worklist seeded only with the entry block never processed blocks whose
// merged in-state stayed empty, so a range head that is the SOURCE of marks
// never ran its transfer.)
func TestSolveRunsTransferOnEmptyStates(t *testing.T) {
	g, info := load(t, `package p
func f(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}`)
	pr := &taint.Problem{
		Graph: g,
		Transfer: func(n ast.Node, st taint.State) {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if id, ok := n.Value.(*ast.Ident); ok {
					st.Set(info.ObjectOf(id), 1)
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN {
					if rhs, ok := n.Rhs[0].(*ast.Ident); ok {
						if obj := info.Uses[rhs]; obj != nil && st.Get(obj) != 0 {
							if lhs, ok := n.Lhs[0].(*ast.Ident); ok {
								st.Add(info.ObjectOf(lhs), st.Get(obj))
							}
						}
					}
				}
			}
		},
	}
	in := pr.Solve()

	var sawTainted bool
	pr.Replay(in, func(n ast.Node, st taint.State) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			if id, ok := ret.Results[0].(*ast.Ident); ok && st.Get(info.Uses[id]) == 1 {
				sawTainted = true
			}
		}
	})
	if !sawTainted {
		t.Errorf("mark introduced at the range head must reach the return: in-states %v", in)
	}
}

// Deferred statements replay against the exit in-state, in reverse order,
// wrapped so the transfer can tell execution from registration.
func TestReplayDefersAtExit(t *testing.T) {
	g, info := load(t, `package p
func f() {
	b := 1
	defer release(b)
	b = 2
}
func release(b int) {}`)
	var deferSeen bool
	pr := &taint.Problem{
		Graph: g,
		Transfer: func(n ast.Node, st taint.State) {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					st.Set(info.ObjectOf(id), 2)
				}
			}
		},
	}
	in := pr.Solve()
	pr.Replay(in, func(n ast.Node, st taint.State) {
		if d, ok := taint.IsDeferredExec(n); ok {
			deferSeen = true
			call := d.Call
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if st.Get(info.Uses[id]) != 2 {
					t.Errorf("deferred call must see the exit state (marks=2), got %d", st.Get(info.Uses[id]))
				}
			}
		}
	})
	if !deferSeen {
		t.Errorf("deferred statement was not replayed at exit")
	}
}
