// Corpus for the vecalias analyzer: received float-slice buffers must not
// escape into results or longer-lived state without a copy, and one buffer
// must not be handed to two sides of a call.
package a

type state struct {
	w []float64
}

var global []float64

func returnsParam(p []float64) []float64 {
	return p // want `returning parameter p aliases the caller's buffer`
}

func returnsReslice(p []float64) []float64 {
	return p[1:3] // want `returning parameter p aliases the caller's buffer`
}

func storesToField(s *state, p []float64) {
	s.w = p // want `storing parameter p without copying lets two owners share one buffer`
}

func storesToGlobal(p []float64) {
	global = p // want `storing parameter p without copying lets two owners share one buffer`
}

func storesToElem(xs [][]float64, p []float64) {
	xs[0] = p // want `storing parameter p without copying lets two owners share one buffer`
}

func appendsParam(xs [][]float64, p []float64) [][]float64 {
	return append(xs, p) // want `appending parameter p stores the caller's buffer into a collection`
}

func exchange(a, b []float64) {
	_, _ = a, b
}

func bothSides(w []float64) {
	exchange(w, w) // want `same buffer w passed twice to one call`
}

type node struct {
	model []float64
}

func bothSidesSelector(n *node) {
	exchange(n.model, n.model) // want `same buffer n\.model passed twice to one call`
}

// Clean: returning a copy transfers ownership.
func returnsCopy(p []float64) []float64 {
	return append([]float64(nil), p...)
}

// Clean: a local alias never outlives the call.
func localAlias(p []float64) float64 {
	q := p
	return q[0]
}

// Clean: distinct buffers on the two sides.
func distinctSides(w, v []float64) {
	exchange(w, v)
}

// Clean: non-float slices are not model buffers.
func returnsInts(p []int) []int {
	return p
}

// ---- pooled-buffer ownership (vec.Pool / engine.Context contract) ----

type pool struct{}

func (pool) Get(n int) []float64 { return make([]float64, n) }
func (pool) Put(b []float64)     {}
func (pool) PutVec(b []float64)  {}

func useAfterPut(pl pool) float64 {
	b := pl.Get(4)
	pl.Put(b)
	return b[0] // want `use of pooled buffer b after Put`
}

func doublePut(pl pool) {
	b := pl.Get(4)
	pl.Put(b)
	pl.Put(b) // want `double Put of pooled buffer b`
}

func useAfterPutVec(pl pool) {
	b := pl.Get(4)
	pl.PutVec(b)
	_ = b[1] // want `use of pooled buffer b after Put`
}

// Clean: rebinding makes the identifier a live value again.
func putThenRebind(pl pool) float64 {
	b := pl.Get(4)
	pl.Put(b)
	b = pl.Get(8)
	return b[0]
}

// Clean: a conditional Put inside a nested block does not retire the buffer
// for the rest of the outer block.
func conditionalPut(pl pool, cond bool) float64 {
	b := pl.Get(4)
	if cond {
		pl.Put(b)
		b = pl.Get(4)
	}
	return b[0]
}

// Clean: Put as the final use.
func putLast(pl pool) {
	b := pl.Get(4)
	b[0] = 1
	pl.Put(b)
}
