// Package vecalias implements the buffer-ownership lint for the numeric
// kernels: a dense model vector ([]float64 or any named type over it) that a
// function *receives* must not silently become part of the function's
// result or of longer-lived state, and one buffer must never be handed to
// two sides of a simulated exchange.
//
// The invariant exists because the engine simulates k executors inside one
// address space: what production Spark would serialize onto the wire is
// passed here as live slice headers. If a "worker" stores the driver's
// model slice instead of copying it, two simulated machines now share one
// buffer, and a later in-place update silently corrupts the other side's
// model — the exact class of bug that would invalidate the model-averaging
// results this repository exists to reproduce.
//
// Flagged patterns, for float-slice parameters p of a function or literal:
//
//   - return p                  (result aliases caller-owned memory)
//   - return p[i:j]             (ditto, through a reslice)
//   - s.Field = p, pkgVar = p   (parameter escapes into longer-lived state)
//   - xs[i] = p, m[k] = p       (parameter escapes into a collection)
//   - append(xs, p)             (ditto)
//
// and, at any call site, the same float-slice expression passed twice to
// one call (two "machines" receiving one buffer). Copy with vec.Copy (or
// append([]float64(nil), p...)) to transfer ownership; genuinely shared
// read-only buffers can be annotated //mlstar:nolint vecalias.
//
// The analyzer also enforces the buffer-pool ownership contract of vec.Pool
// and engine.Context.GetVec/PutVec: after a statement-level Put(b)/PutVec(b)
// the buffer is the pool's again, so within the same statement list any
// later use of b — including a second Put — is flagged, until b is rebound
// by an assignment.
package vecalias

import (
	"go/ast"
	"go/types"

	"mllibstar/internal/analysis"
)

// Analyzer is the buffer-ownership check.
var Analyzer = &analysis.Analyzer{
	Name: "vecalias",
	Doc:  "forbid returning or storing received float-slice buffers without copying, and passing one buffer to two sides of a call",
	DefaultScope: []string{
		"mllibstar/internal/allreduce",
		"mllibstar/internal/angel",
		"mllibstar/internal/engine",
		"mllibstar/internal/lbfgs",
		"mllibstar/internal/mavg",
		"mllibstar/internal/mllib",
		"mllibstar/internal/opt",
		"mllibstar/internal/petuum",
		"mllibstar/internal/ps",
		"mllibstar/internal/serve",
		"mllibstar/internal/train",
		"mllibstar/internal/vec",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				checkFunc(pass, n.Type, n.Body)
			}
		case *ast.FuncLit:
			checkFunc(pass, n.Type, n.Body)
		case *ast.CallExpr:
			checkDuplicateArgs(pass, n)
		case *ast.BlockStmt:
			checkPooledBuffers(pass, n.List)
		case *ast.CaseClause:
			checkPooledBuffers(pass, n.Body)
		case *ast.CommClause:
			checkPooledBuffers(pass, n.Body)
		}
		return true
	})
	return nil
}

// checkFunc flags escapes of float-slice parameters out of one function.
// Nested function literals are walked by the outer Inspect with their own
// parameter sets; here they are skipped so each parameter is attributed to
// the function that declared it. (A literal capturing the enclosing
// function's parameter and leaking it is out of scope for this analyzer.)
func checkFunc(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	params := floatSliceParams(pass, ftype)
	if len(params) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if p := paramOf(pass, params, res); p != nil {
					pass.Reportf(res.Pos(),
						"returning parameter %s aliases the caller's buffer; copy it (vec.Copy) before returning", p.Name())
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				p := paramOf(pass, params, rhs)
				if p == nil {
					continue
				}
				if i < len(n.Lhs) && escapes(pass, n.Lhs[i]) {
					pass.Reportf(rhs.Pos(),
						"storing parameter %s without copying lets two owners share one buffer; copy it (vec.Copy) before storing", p.Name())
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) >= 2 && n.Ellipsis == 0 {
				for _, arg := range n.Args[1:] {
					if p := paramOf(pass, params, arg); p != nil {
						pass.Reportf(arg.Pos(),
							"appending parameter %s stores the caller's buffer into a collection; copy it (vec.Copy) first", p.Name())
					}
				}
			}
		}
		return true
	})
}

// floatSliceParams returns the parameter objects of ftype whose type is a
// float slice.
func floatSliceParams(pass *analysis.Pass, ftype *ast.FuncType) map[types.Object]bool {
	params := map[types.Object]bool{}
	if ftype.Params == nil {
		return params
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && analysis.IsFloatSlice(obj.Type()) {
				params[obj] = true
			}
		}
	}
	return params
}

// paramOf reports which tracked parameter the expression aliases: the
// parameter itself or a reslice of it. Copies (append, calls) break the
// alias and return nil.
func paramOf(pass *analysis.Pass, params map[types.Object]bool, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && params[obj] {
			return obj
		}
	case *ast.SliceExpr:
		return paramOf(pass, params, e.X)
	}
	return nil
}

// escapes reports whether assigning to lhs publishes the value beyond the
// function's own locals: struct fields, slice/map elements, dereferences,
// and package-level variables all escape; plain local variables do not.
func escapes(pass *analysis.Pass, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if o := pass.TypesInfo.Defs[lhs]; o != nil {
			return o.Parent() == pass.Pkg.Scope()
		}
		if o := pass.TypesInfo.Uses[lhs]; o != nil {
			return o.Parent() == pass.Pkg.Scope()
		}
	}
	return false
}

// checkPooledBuffers walks one statement list enforcing the pool ownership
// contract: a float-slice identifier handed to a statement-level Put/PutVec
// call is dead from the next statement on — any later read is a
// use-after-Put, a later Put of the same identifier is a double-Put — until
// an assignment rebinds it. Only statement-level Put calls retire a buffer
// (a Put inside a nested if/for is conditional and is scoped to that inner
// block's own walk).
func checkPooledBuffers(pass *analysis.Pass, stmts []ast.Stmt) {
	retired := map[types.Object]bool{}
	for _, stmt := range stmts {
		if obj := pooledPutArg(pass, stmt); obj != nil {
			if retired[obj] {
				pass.Reportf(stmt.Pos(),
					"double Put of pooled buffer %s; the pool already owns it", obj.Name())
			}
			retired[obj] = true
			continue
		}
		if len(retired) == 0 {
			continue
		}
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				reportRetiredUses(pass, retired, rhs)
			}
			for _, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						delete(retired, obj) // rebound: a live value again
					}
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						delete(retired, obj)
					}
				} else {
					reportRetiredUses(pass, retired, lhs)
				}
			}
		default:
			reportRetiredUses(pass, retired, stmt)
		}
	}
}

// pooledPutArg recognizes a statement of the exact shape x.Put(b) or
// x.PutVec(b) with b a float-slice identifier, returning b's object.
func pooledPutArg(pass *analysis.Pass, stmt ast.Stmt) types.Object {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Put" && sel.Sel.Name != "PutVec") {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !analysis.IsFloatSlice(obj.Type()) {
		return nil
	}
	return obj
}

// reportRetiredUses flags every read of a retired pooled buffer inside n.
func reportRetiredUses(pass *analysis.Pass, retired map[types.Object]bool, n ast.Node) {
	ast.Inspect(n, func(child ast.Node) bool {
		id, ok := child.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && retired[obj] {
			pass.Reportf(id.Pos(),
				"use of pooled buffer %s after Put; the pool owns it and may hand it to another task", obj.Name())
		}
		return true
	})
}

// checkDuplicateArgs flags one float-slice expression passed twice to the
// same call — two simulated machines handed the same buffer.
func checkDuplicateArgs(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	seen := map[string]ast.Expr{}
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !analysis.IsFloatSlice(tv.Type) {
			continue
		}
		key := exprKey(pass, arg)
		if key == "" {
			continue
		}
		if _, dup := seen[key]; dup {
			pass.Reportf(arg.Pos(),
				"same buffer %s passed twice to one call; the two sides will alias — pass a copy (vec.Copy)", key)
			continue
		}
		seen[key] = arg
	}
}

// exprKey canonicalizes an argument for duplicate detection: identifiers
// resolve through their object (so shadowing does not fool it), selector
// chains by their printed path. Anything else (calls, composites, slicing)
// is not tracked.
func exprKey(pass *analysis.Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj.Name()
		}
	case *ast.SelectorExpr:
		if base := exprKey(pass, e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}
