package vecalias_test

import (
	"testing"

	"mllibstar/internal/analysis/analysistest"
	"mllibstar/internal/analysis/vecalias"
)

func TestVecAlias(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", vecalias.Analyzer)
}
