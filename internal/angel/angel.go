// Package angel implements an Angel-like trainer on the parameter-server
// substrate, following the paper's description of Angel's GLM training:
//
//   - SendModel paradigm with per-epoch communication: each communication
//     step a worker pulls the model, runs mini-batch gradient descent over
//     its entire local partition (one dense update per batch), and pushes
//     its model delta.
//   - For every batch Angel allocates a fresh dense vector to accumulate
//     the batch gradient and garbage-collects it afterwards; with small
//     batches the allocation/GC overhead dominates, which is the paper's
//     explanation for Angel's inefficiency at small batch sizes. This cost
//     is modelled as AllocWorkPerDim work units per batch per model
//     coordinate.
package angel

import (
	"fmt"

	"mllibstar/internal/data"
	"mllibstar/internal/des"
	"mllibstar/internal/detrand"
	"mllibstar/internal/glm"
	"mllibstar/internal/obs"
	"mllibstar/internal/opt"
	"mllibstar/internal/ps"
	"mllibstar/internal/simnet"
	"mllibstar/internal/trace"
	"mllibstar/internal/train"
	"mllibstar/internal/vec"
)

// System is the curve label for this trainer.
const System = "Angel"

// AllocWorkPerDim is the modelled cost, in work units per model coordinate,
// of allocating and collecting the per-batch gradient vector.
const AllocWorkPerDim = 2.0

// Train runs the Angel-like trainer over the given worker nodes. parts must
// have one partition per node, in node order.
func Train(sim *des.Sim, net *simnet.Network, nodeNames []string, parts []data.View,
	dim int, prm train.Params, evalData []glm.Example, dataset string) (*train.Result, error) {

	if err := prm.Validate(); err != nil {
		return nil, err
	}
	k := len(nodeNames)
	if len(parts) != k {
		return nil, fmt.Errorf("angel: %d partitions for %d workers", len(parts), k)
	}
	if prm.BatchFraction <= 0 {
		prm.BatchFraction = 0.01
	}
	deploy, err := ps.New(sim, net, nodeNames, ps.Config{
		Dim: dim, Servers: k, Workers: k, Staleness: prm.Staleness, CombineScale: 1 / float64(k),
	})
	if err != nil {
		return nil, err
	}

	ev := train.NewEvaluator(System, dataset, prm.Objective, evalData, prm.EvalEvery)
	ev.Staleness = prm.Staleness
	res := &train.Result{System: System, Curve: ev.Curve}
	sched := prm.Schedule()
	_, regIsNone := prm.Objective.Reg.(glm.None)
	stop := false

	for r := 0; r < k; r++ {
		r := r
		node := net.Node(nodeNames[r])
		part := parts[r]
		batchSize := maxInt(1, int(prm.BatchFraction*float64(part.NumRows())))
		sim.Spawn(fmt.Sprintf("angel:worker%d", r), func(p *des.Proc) {
			scratch := make([]float64, dim)
			jitter := detrand.Worker(prm.Seed, r)
			for t := 1; t <= prm.MaxSteps && !stop; t++ {
				if r == 0 {
					// Step attribution for the event log follows worker 0's
					// clock; other workers drift within the SSP slack.
					obs.Active().SetStep(t, p.Now())
				}
				w := deploy.Pull(p, node.Name(), r, t-1)
				if r == 0 {
					if obj, recorded := ev.Record(t-1, p.Now(), w); recorded {
						res.FinalW = w
						if prm.TargetObjective > 0 && obj <= prm.TargetObjective {
							stop = true
							break
						}
					}
					res.CommSteps = t
					if prm.MaxSimTime > 0 && p.Now() >= prm.MaxSimTime {
						stop = true
						break
					}
				}
				// One epoch of mini-batch GD over the local partition. The
				// epoch's work is structural — every batch costs its
				// nonzeros plus a dense regularization sweep — so the charge
				// is known upfront and the arithmetic overlaps it on the
				// offload pool.
				eta := sched(t - 1)
				batches := 0
				if part.NumRows() > 0 {
					batches = (part.NumRows() + batchSize - 1) / batchSize
				}
				work := float64(part.NNZ())
				if !regIsNone {
					work += float64(batches * dim)
				}
				// Per-batch gradient-vector allocation and collection. This
				// charge models Angel's real per-batch allocate/GC churn and
				// is deliberately NOT removed by the buffer-pool work in this
				// repository: the inefficiency is the phenomenon under study
				// (the simulation itself reuses scratch; only the virtual
				// cost stays).
				allocWork := float64(batches) * AllocWorkPerDim * float64(dim)
				effort := work + allocWork
				if prm.ComputeJitter > 0 {
					effort *= 1 + prm.ComputeJitter*jitter.Float64()
				}
				var delta []float64
				node.ComputeAsyncKind(p, effort, trace.Compute, "", func() {
					local := vec.Copy(w)
					opt.LocalMGDEpochView(prm.Objective, local, part, batchSize, opt.Const(eta), 0, scratch)
					vec.AddScaled(local, w, -1)
					delta = local
				})
				res.Updates += int64(batches)
				obs.Active().Updates(t, node.Name(), int64(batches), p.Now())
				deploy.Push(p, node.Name(), r, t, delta)
			}
			if r == 0 && !stop {
				w := deploy.Pull(p, node.Name(), r, prm.MaxSteps)
				ev.Record(prm.MaxSteps, p.Now(), w)
				res.FinalW = w
			}
		})
	}
	res.SimTime = sim.Run()
	res.TotalBytes = net.TotalBytes()
	if res.FinalW == nil {
		res.FinalW = make([]float64, dim)
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
