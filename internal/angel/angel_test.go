package angel_test

import (
	"testing"

	"mllibstar/internal/angel"
	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/train"
)

func workload(k int) (*data.Dataset, []data.View) {
	d := data.Generate(data.Spec{
		Name: "toy", Rows: 1200, Cols: 150, NNZPerRow: 8, Seed: 11, NoiseRate: 0.02,
	})
	return d, d.Partition(k, 3)
}

func params(steps int) train.Params {
	return train.Params{
		Objective:     glm.SVM(0.01),
		Eta:           0.5,
		Decay:         true,
		BatchFraction: 0.1,
		MaxSteps:      steps,
		EvalEvery:     2,
		Seed:          5,
	}
}

func run(t *testing.T, prm train.Params, k int) *train.Result {
	t.Helper()
	d, parts := workload(k)
	sim, net, names := clusters.Test(k).BuildNet(nil)
	res, err := angel.Train(sim, net, names, parts, d.Features, prm, d.Examples, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUpdatesCountBatchesPerEpoch(t *testing.T) {
	res := run(t, params(5), 4)
	// 4 workers x 10 batches/epoch (fraction 0.1) x 5 epochs.
	if res.Updates != 4*10*5 {
		t.Errorf("updates = %d, want 200", res.Updates)
	}
}

func TestAllocOverheadScalesWithBatches(t *testing.T) {
	// Same data, same epochs; 10x more batches must cost measurably more
	// simulated time purely from the per-batch allocation charge.
	small := params(5)
	small.BatchFraction = 0.01
	big := params(5)
	big.BatchFraction = 0.1
	tSmall := run(t, small, 4).SimTime
	tBig := run(t, big, 4).SimTime
	if tSmall <= tBig {
		t.Errorf("tiny batches (%g s) should cost more than large ones (%g s)", tSmall, tBig)
	}
}

func TestStalenessAllowsProgressSkew(t *testing.T) {
	// With BSP every epoch is a barrier; with staleness the same run must
	// not be slower. (On a homogeneous simulated cluster the times can tie;
	// the invariant worth pinning is "SSP never loses to BSP".)
	bsp := params(10)
	ssp := params(10)
	ssp.Staleness = 2
	tBSP := run(t, bsp, 4).SimTime
	tSSP := run(t, ssp, 4).SimTime
	if tSSP > tBSP*1.001 {
		t.Errorf("SSP run (%g s) slower than BSP (%g s)", tSSP, tBSP)
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, params(6), 3)
	b := run(t, params(6), 3)
	if a.SimTime != b.SimTime || a.Curve.Final().Objective != b.Curve.Final().Objective {
		t.Error("Angel runs not reproducible")
	}
}

func TestValidation(t *testing.T) {
	sim, net, names := clusters.Test(2).BuildNet(nil)
	prm := params(5)
	if _, err := angel.Train(sim, net, names, make([]data.View, 3), 10, prm, nil, "d"); err == nil {
		t.Error("want partition mismatch error")
	}
	sim2, net2, names2 := clusters.Test(2).BuildNet(nil)
	bad := params(0)
	if _, err := angel.Train(sim2, net2, names2, make([]data.View, 2), 10, bad, nil, "d"); err == nil {
		t.Error("want validation error")
	}
}

func TestMaxSimTimeBounds(t *testing.T) {
	prm := params(100000)
	prm.MaxSimTime = 0.05
	res := run(t, prm, 2)
	if res.CommSteps >= 100000 {
		t.Error("MaxSimTime ignored")
	}
}
