package bench

import (
	"fmt"

	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
	"mllibstar/internal/opt"
)

func init() {
	register(Experiment{
		ID:    "ablation-summation",
		Title: "Model summation (Petuum) vs model averaging (Petuum*): stability",
		Run:   runAblationSummation,
	})
	register(Experiment{
		ID:    "ablation-lazyl2",
		Title: "Lazy (Bottou) vs eager L2 updates: work per local pass (kddb)",
		Run:   runAblationLazyL2,
	})
	register(Experiment{
		ID:    "ablation-waves",
		Title: "Tasks per executor (waves): 1 vs 2 vs 4 on kdd12",
		Run:   runAblationWaves,
	})
	register(Experiment{
		ID:    "ablation-aggregators",
		Title: "treeAggregate fan-in: flat vs sqrt(k) vs 1 aggregator (MLlib on kdd12)",
		Run:   runAblationAggregators,
	})
}

// runAblationSummation contrasts the two aggregation rules at increasing
// learning rates: summation wins slightly at small rates but diverges at
// large ones, averaging stays stable (Zhang & Jordan [15]).
func runAblationSummation(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ablation-summation", Title: "Model summation vs averaging"}
	spec := clusters.Cluster1(8)
	csv := "eta,petuum_star_final,petuum_final\n"
	for _, eta := range []float64{0.05, 0.2, 0.8} {
		finals := map[string]float64{}
		for _, system := range []string{sysPetuumStar, sysPetuum} {
			prm := tuned(system, w.ds.Name, 0)
			prm.Eta = eta
			prm.Decay = false
			prm.MaxSteps = 60
			prm.EvalEvery = 10
			res, err := runSystem(system, spec, w, prm, nil)
			if err != nil {
				return nil, err
			}
			finals[system] = res.Curve.Final().Objective
		}
		r.addLine("eta=%-5.2f  Petuum* final %.4f   Petuum (summation) final %.4f",
			eta, finals[sysPetuumStar], finals[sysPetuum])
		csv += fmt.Sprintf("%g,%.6f,%.6f\n", eta, finals[sysPetuumStar], finals[sysPetuum])
	}
	r.addLine("Expected shape: summation's final objective blows up as eta grows; averaging stays stable.")
	r.addFile("ablation_summation.csv", csv)
	return r, nil
}

// runAblationLazyL2 measures the work (in nonzeros-touched units) of one
// pass of per-example L2 SGD with the lazy representation vs the eager
// dense update, on the high-dimensional kddb preset.
func runAblationLazyL2(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("kddb", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ablation-lazyl2", Title: "Lazy vs eager L2 update cost"}
	obj := glm.SVM(0.1)
	dim := w.ds.Features
	sample := w.ds.Subsample(2000, 5).Examples

	lazyWork := 0
	wLazy := make([]float64, dim)
	lazyWork += opt.LocalPass(obj, wLazy, sample, opt.Const(0.1), 0)

	eagerWork := 0
	wEager := make([]float64, dim)
	for _, e := range sample {
		eagerWork += opt.EagerSGDStep(obj, wEager, e, 0.1)
	}

	// Both paths compute the same model, at very different cost.
	maxDiff := 0.0
	for j := range wLazy {
		if d := wLazy[j] - wEager[j]; d > maxDiff || -d > maxDiff {
			maxDiff = d
			if maxDiff < 0 {
				maxDiff = -maxDiff
			}
		}
	}
	r.addLine("model dim %d, %d examples", dim, len(sample))
	r.addLine("lazy  work: %12d units", lazyWork)
	r.addLine("eager work: %12d units (%.0fx the lazy cost)", eagerWork, float64(eagerWork)/float64(lazyWork))
	r.addLine("max |w_lazy - w_eager| = %.2e (same semantics)", maxDiff)
	r.addFile("ablation_lazyl2.csv",
		fmt.Sprintf("variant,work_units\nlazy,%d\neager,%d\n", lazyWork, eagerWork))
	return r, nil
}

// runAblationWaves reproduces the paper's footnote: assigning multiple
// tasks per executor (waves) increases per-iteration time because of the
// per-task communication overhead, so one task per executor is optimal.
func runAblationWaves(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("kdd12", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ablation-waves", Title: "Tasks per executor (waves)"}
	const k = 8
	dim := w.ds.Features
	obj := glm.SVM(0)
	csv := "waves,stage_time_s\n"
	for _, waves := range []int{1, 2, 4} {
		parts := w.ds.Partition(k*waves, 3)
		spec := clusters.Cluster1(k)
		_, cl, ctx := spec.Build(nil)
		var stageTime float64
		cl.Sim.Spawn("driver", func(p *des.Proc) {
			wModel := make([]float64, dim)
			tasks := make([]engine.Task, k*waves)
			for i := range tasks {
				i := i
				tasks[i] = engine.Task{
					Exec:         cl.Execs[i%k],
					PayloadBytes: float64(dim) * engine.FloatBytes,
					Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
						g := make([]float64, dim)
						work := data.AddGradient(obj, wModel, parts[i], g)
						ex.Charge(p, float64(work))
						return nil, float64(dim) * engine.FloatBytes
					},
				}
			}
			start := p.Now()
			ctx.RunStage(p, "grad", tasks)
			stageTime = p.Now() - start
		})
		cl.Sim.Run()
		r.addLine("%d wave(s): stage time %.4f s", waves, stageTime)
		csv += fmt.Sprintf("%d,%.6f\n", waves, stageTime)
	}
	r.addLine("Expected shape: stage time grows with waves — one task per executor is optimal.")
	r.addFile("ablation_waves.csv", csv)
	return r, nil
}

// runAblationAggregators sweeps MLlib's treeAggregate fan-in on a
// model-heavy workload, showing why the hierarchical scheme exists (flat
// overloads the driver) and why it is still worse than AllReduce.
func runAblationAggregators(cfg RunConfig) (*Report, error) {
	// The hierarchy only pays off once k·m stresses the driver link, so
	// this ablation uses a 5x larger replica than the other experiments.
	bigger := cfg
	bigger.Scale = cfg.scale() / 5
	w, err := loadWorkload("kdd12", bigger)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ablation-aggregators", Title: "treeAggregate fan-in sweep (MLlib)"}
	csv := "aggregators,time_per_step_s\n"
	for _, aggs := range []int{8, 3, 1} {
		prm := tuned(sysMLlib, w.ds.Name, 0)
		prm.MaxSteps = 4
		prm.Aggregators = aggs
		res, err := runSystem(sysMLlib, clusters.Cluster1(8), w, prm, nil)
		if err != nil {
			return nil, err
		}
		perStep := res.SimTime / float64(res.CommSteps)
		label := fmt.Sprintf("%d aggregators", aggs)
		if aggs == 8 {
			label = "flat (8 aggregators = direct to driver)"
		}
		r.addLine("%-42s %.4f s/step", label, perStep)
		csv += fmt.Sprintf("%d,%.6f\n", aggs, perStep)
	}
	// Reference: MLlib* per-step time on the same workload.
	prm := tuned(sysMLlibStar, w.ds.Name, 0)
	prm.MaxSteps = 4
	res, err := runSystem(sysMLlibStar, clusters.Cluster1(8), w, prm, nil)
	if err != nil {
		return nil, err
	}
	r.addLine("%-42s %.4f s/step", "MLlib* (AllReduce, reference)", res.SimTime/float64(res.CommSteps))
	r.addLine("Reading: the hierarchy halves the driver's *receive* load (see the engine tests) but the")
	r.addLine("per-step time barely moves because the model broadcast still serializes through the")
	r.addLine("driver's outbound link — B2 survives treeAggregate; only AllReduce removes the driver,")
	r.addLine("which is exactly the paper's argument for Algorithm 3.")
	r.addFile("ablation_aggregators.csv", csv)
	return r, nil
}
