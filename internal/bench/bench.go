// Package bench is the experiment harness: it maps every table and figure
// of the MLlib* paper to a runnable experiment that regenerates the
// corresponding rows/series on the simulated cluster, and provides the
// hyperparameter defaults (plus an optional grid search) used to produce
// them. The cmd/mlstar-bench binary and the repository-level benchmarks are
// thin wrappers around this package.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"mllibstar/internal/metrics"
)

// RunConfig controls the fidelity/cost tradeoff of an experiment run.
type RunConfig struct {
	// Scale divides the paper datasets' rows and columns (see data.Preset).
	// Larger is cheaper. 0 means DefaultScale.
	Scale float64
	// Grid enables a small hyperparameter grid search per system instead of
	// the tuned defaults (slower, closer to the paper's methodology).
	Grid bool
	// EvalCap bounds the evaluation subsample size (0 = default 4000).
	EvalCap int
}

// DefaultScale keeps every experiment comfortably runnable in CI.
const DefaultScale = 5000

func (c RunConfig) scale() float64 {
	if c.Scale >= 1 {
		return c.Scale
	}
	return DefaultScale
}

func (c RunConfig) evalCap() int {
	if c.EvalCap > 0 {
		return c.EvalCap
	}
	return 4000
}

// Report is the regenerated artifact of one experiment.
type Report struct {
	ID    string
	Title string
	// Lines is the human-readable rendering (the figure's series, a table's
	// rows, or a gantt chart).
	Lines []string
	// Curves holds the raw convergence trajectories, when applicable.
	Curves []*metrics.Curve
	// Files maps output filenames to CSV contents for external plotting.
	Files map[string]string
	// Metrics holds the experiment's headline numbers (speedups, busy-time
	// shares, ...) for programmatic consumption by the benchmarks.
	Metrics map[string]float64
}

func (r *Report) addMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

func (r *Report) addLine(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) addFile(name, contents string) {
	if r.Files == nil {
		r.Files = map[string]string{}
	}
	r.Files[name] = contents
}

// addFilesFrom copies every output file of sub into r, in sorted name order.
func (r *Report) addFilesFrom(sub *Report) {
	names := make([]string, 0, len(sub.Files))
	for name := range sub.Files { //mlstar:nolint determinism -- order-insensitive: keys sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.addFile(name, sub.Files[name])
	}
}

// addCurveCSV registers all curves as one CSV file.
func (r *Report) addCurveCSV(name string) {
	var b strings.Builder
	for i, c := range r.Curves {
		b.WriteString(c.CSV(i == 0))
	}
	r.addFile(name, b.String())
}

// addCurveSVG renders the curves as an SVG figure (objective vs simulated
// time, log axis — the paper's plot convention). The CSV registered by
// addCurveCSV is the figure's accessible table view.
func (r *Report) addCurveSVG(name, title string) {
	if len(r.Curves) == 0 {
		return
	}
	r.addFile(name, metrics.RenderSVG(r.Curves, metrics.SVGOptions{Title: title, LogX: true}))
}

// Text renders the report for terminal output.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	ids := make([]string, 0, len(registry))
	for id := range registry { //mlstar:nolint determinism -- order-insensitive: keys sorted before use
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		out = append(out, registry[id])
	}
	return out
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for id := range registry { //mlstar:nolint determinism -- order-insensitive: keys sorted before use
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have: %s)", id, strings.Join(ids, ", "))
	}
	return e, nil
}
