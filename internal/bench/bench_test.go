package bench

import (
	"strings"
	"testing"

	"mllibstar/internal/clusters"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig1", "table1", "fig3", "bottleneck",
		"fig4", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig4g", "fig4h",
		"fig5", "fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig5g", "fig5h",
		"fig6", "fig6a", "fig6b", "fig6c", "fig6d",
		"ablation-summation", "ablation-lazyl2", "ablation-waves", "ablation-aggregators",
		"ext-lbfgs", "ext-staleness", "ext-reweight", "ext-torrent", "ext-bandwidth",
		"ext-loading", "ext-adagrad", "ext-speculation", "ext-svrg",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %q: %v", id, err)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestByIDUnknown(t *testing.T) {
	_, err := ByID("nope")
	if err == nil || !strings.Contains(err.Error(), "fig4a") {
		t.Errorf("err = %v, want list of valid ids", err)
	}
}

func TestFig1IsStaticAndFast(t *testing.T) {
	r, err := must(t, "fig1").Run(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) < 4 || r.Files["fig1_workloads.csv"] == "" {
		t.Errorf("report = %+v", r)
	}
	joined := strings.Join(r.Lines, "\n")
	for _, sys := range []string{"Angel", "XGBoost", "TensorFlow", "MLlib"} {
		if !strings.Contains(joined, sys) {
			t.Errorf("fig1 missing %s", sys)
		}
	}
}

func TestTable1MatchesPaperAndScale(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 100}
	r, err := must(t, "table1").Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Lines, "\n")
	if !strings.Contains(joined, "149639105") {
		t.Error("paper-scale kdd12 row missing")
	}
	if !strings.Contains(joined, "underdetermined") {
		t.Error("no underdetermined dataset in table")
	}
	if r.Files["table1_datasets.csv"] == "" {
		t.Error("missing csv")
	}
}

func TestReportText(t *testing.T) {
	r := &Report{ID: "x", Title: "T"}
	r.addLine("hello %d", 7)
	out := r.Text()
	if !strings.Contains(out, "== x: T ==") || !strings.Contains(out, "hello 7") {
		t.Errorf("text = %q", out)
	}
}

func TestSafeFilenames(t *testing.T) {
	cases := map[string]string{
		"MLlib*":   "MLlibstar",
		"MLlib+MA": "MLlib_MA",
		"Angel":    "Angel",
	}
	for in, want := range cases {
		if got := safe(in); got != want {
			t.Errorf("safe(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTunedCoversAllSystems(t *testing.T) {
	for _, sys := range []string{sysMLlib, sysMAvg, sysMLlibStar, sysPetuum, sysPetuumStar, sysAngel} {
		for _, l2 := range []float64{0, 0.1} {
			prm := tuned(sys, "kdd12", l2)
			if prm.Eta <= 0 {
				t.Errorf("%s l2=%g: eta %g", sys, l2, prm.Eta)
			}
			if prm.Objective.Reg.Lambda() != l2 {
				t.Errorf("%s: lambda = %g, want %g", sys, prm.Objective.Reg.Lambda(), l2)
			}
		}
	}
}

func TestTunedPanicsOnUnknownSystem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tuned("nope", "avazu", 0)
}

func TestGridSearchPicksBest(t *testing.T) {
	eta, err := gridSearch(func(eta float64) (float64, error) {
		// Parabola with minimum near 0.3.
		d := eta - 0.3
		return d * d, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if eta != 0.3 {
		t.Errorf("grid picked %g, want 0.3", eta)
	}
}

func TestWorkloadCacheReuses(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 50}
	a, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("workload not cached")
	}
	c, err := loadWorkload("avazu", RunConfig{Scale: 30000, EvalCap: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different scales must not share a workload")
	}
}

func TestStepBudgetsOrdering(t *testing.T) {
	if stepBudget(sysMLlib) <= stepBudget(sysMLlibStar) {
		t.Error("the SendGradient baseline needs a larger budget than MLlib*")
	}
	if stepBudget(sysPetuumStar) <= stepBudget(sysAngel) {
		t.Error("per-batch systems need a larger budget than per-epoch systems")
	}
}

func TestRunSystemUnknown(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 50}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runSystem("nope", clusters.Test(2), w, tuned(sysMLlib, "avazu", 0), nil); err == nil {
		t.Error("want error")
	}
}

func must(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFigureReportsIncludeSVG(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	r, err := must(t, "fig4a").Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svg, ok := r.Files["fig4a.svg"]
	if !ok {
		t.Fatal("fig4a report missing SVG figure")
	}
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "MLlib*") {
		t.Error("svg malformed or missing series labels")
	}
	if _, ok := r.Files["fig4a_curves.csv"]; !ok {
		t.Error("missing the CSV table view")
	}
}
