package bench

// Wall-clock cost of the causal tracing layer. The causal=off sub-run records
// the plain structured event log; causal=on additionally enriches every event
// with the happens-before fields and then builds the trace graph and extracts
// the critical path — the full price of a -causal run replayed through
// mlstar-obs -critpath. `make bench` feeds the pair to mlstar-benchjson,
// which derives trace_overhead = ns/op(causal=on) / ns/op(causal=off).
// Results are bit-identical in both modes — see causal_parity_test.go — so
// this measures time only.

import (
	"testing"

	"mllibstar/internal/causal"
	"mllibstar/internal/clusters"
	"mllibstar/internal/obs"
)

// BenchmarkWallClockCritPath times the regularized MLlib-vs-MLlib* workload
// of Figure 4 with plain telemetry versus causal tracing plus critical-path
// extraction.
func BenchmarkWallClockCritPath(b *testing.B) {
	w := benchWorkload(b)
	for _, mode := range []struct {
		name   string
		causal bool
	}{{"causal=off", false}, {"causal=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var nodes float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One sink per system: each run restarts the virtual clock,
				// so each log is analyzed as its own trace graph.
				for _, sys := range []string{sysMLlib, sysMLlibStar} {
					var s *obs.Sink
					if mode.causal {
						s = obs.EnableCausal()
					} else {
						s = obs.Enable()
					}
					prm := tuned(sys, "avazu", 0.1)
					prm.MaxSteps = 10
					if _, err := runSystem(sys, clusters.Test(4), w, prm, nil); err != nil {
						obs.Disable()
						b.Fatal(err)
					}
					events := s.Events()
					obs.Disable()
					if mode.causal {
						g, err := causal.Analyze(events)
						if err != nil {
							b.Fatal(err)
						}
						_ = causal.CriticalPath(g)
						nodes += float64(len(g.Nodes))
					}
				}
			}
			b.StopTimer()
			if mode.causal && b.N > 0 {
				b.ReportMetric(nodes/float64(b.N), "causalnodes/op")
			}
		})
	}
}
