package bench

// Causal trace graph validation: recording the causally-enriched event log
// (obs.EnableCausal, the -causal flag) must not move a single bit of any
// result — the enrichment rides the same observe-never-charge path as plain
// telemetry — and the graph built from a live log must be well-formed, its
// critical-path decomposition must telescope to the makespan, and the
// what-if re-timer must reproduce the recorded schedule bit-for-bit under
// the identity scenario. The what-if sweeps close the loop against reality:
// the chunk predictions from a sequential trace are checked against actual
// pipelined reruns, within a pinned tolerance.
//
// The golden critical-path and what-if reports ride the committed Fig.4
// sample logs (testdata/obs_events_*.jsonl); regenerate everything with
//
//	go test ./internal/bench -run 'TestObsGoldenAttribution|TestCritPathGolden' -update

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/causal"
	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
	"mllibstar/internal/obs"
	"mllibstar/internal/trace"
	"mllibstar/internal/train"
)

// runWithCausal is runWithObs with the causal enrichment switched on: same
// sink, same restore, plus the per-event process/message stamps.
func runWithCausal(on bool, fn func()) []obs.Event {
	if !on {
		fn()
		return nil
	}
	s := obs.EnableCausal()
	defer obs.Disable()
	fn()
	return s.Events()
}

// requireCausalGraph builds and validates the graph from a live log and pins
// the package's two exactness contracts: the critical-path decomposition
// telescopes (Busy + Latency + Wait = Makespan up to float association) and
// the identity re-timing reproduces the recorded makespan bit-for-bit.
func requireCausalGraph(t *testing.T, system string, events []obs.Event) *causal.Graph {
	t.Helper()
	g, err := causal.Analyze(events)
	if err != nil {
		t.Fatalf("%s: %v", system, err)
	}
	mk := g.Makespan()
	p := causal.CriticalPath(g)
	if math.Float64bits(p.Makespan) != math.Float64bits(mk) {
		t.Errorf("%s: critical path makespan %v != graph makespan %v", system, p.Makespan, mk)
	}
	if sum := p.Busy + p.Latency + p.Wait; math.Abs(sum-mk) > 1e-6*math.Max(1, mk) {
		t.Errorf("%s: path decomposition %g (busy %g + latency %g + wait %g) does not telescope to makespan %g",
			system, sum, p.Busy, p.Latency, p.Wait, mk)
	}
	id := causal.Retime(g, causal.Scenario{Name: "identity"})
	if id.Err != "" {
		t.Fatalf("%s: identity retime failed: %s", system, id.Err)
	}
	if math.Float64bits(id.Makespan) != math.Float64bits(mk) {
		t.Errorf("%s: identity retime makespan %v != recorded %v", system, id.Makespan, mk)
	}
	return g
}

// TestCritPathBitIdentity runs every trainer config of the parity matrix
// twice — causal tracing off and on — and requires full bitwise equality of
// the results, the charged bytes, and the engine trace CSV; then validates
// the graph built from the on-run's log. Tracing is observation only: it
// must not shift the virtual clock by one ulp.
func TestCritPathBitIdentity(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	type runner struct {
		name string
		run  func(rec *trace.Recorder) *train.Result
	}
	var cases []runner
	for _, tc := range []struct {
		system string
		l2     float64
	}{
		{sysMLlib, 0.1},
		{sysMLlib, 0},
		{sysMAvg, 0.1},
		{sysMLlibStar, 0.1},
		{sysMLlibStar, 0},
		{sysPetuumStar, 0.1},
		{sysPetuumStar, 0},
		{sysAngel, 0.1},
	} {
		system, l2 := tc.system, tc.l2
		prm := tuned(system, "avazu", l2)
		prm.MaxSteps = 8
		cases = append(cases, runner{
			name: fmt.Sprintf("%s/l2=%g", system, l2),
			run: func(rec *trace.Recorder) *train.Result {
				res, err := runSystem(system, clusters.Test(4), w, prm, rec)
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		})
	}
	for _, allReduce := range []bool{false, true} {
		allReduce := allReduce
		name := "LBFGS-tree"
		if allReduce {
			name = "LBFGS-allreduce"
		}
		cases = append(cases, runner{
			name: name,
			run: func(rec *trace.Recorder) *train.Result {
				_, _, ctx := clusters.Test(4).Build(rec)
				parts := w.ds.Partition(4, 3)
				res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
					Objective: glm.LogReg(0.01),
					MaxIters:  6,
					AllReduce: allReduce,
				}, w.eval, w.ds.Name)
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		})
	}
	cases = append(cases, runner{
		name: "MLlib*-SVRG",
		run: func(rec *trace.Recorder) *train.Result {
			_, _, ctx := clusters.Test(4).Build(rec)
			parts := w.ds.Partition(4, 3)
			prm := train.Params{Objective: glm.LogReg(0.01), Eta: 0.1, MaxSteps: 5, EvalEvery: 1, Seed: 7}
			res, err := core.TrainSVRG(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
	})

	for _, c := range cases {
		var off, on *train.Result
		offRec, onRec := new(trace.Recorder), new(trace.Recorder)
		runWithCausal(false, func() { off = c.run(offRec) })
		events := runWithCausal(true, func() { on = c.run(onRec) })
		requireObsIdentical(t, c.name, off, on)
		if offRec.CSV() != onRec.CSV() {
			t.Errorf("%s: engine trace CSV differs between causal-off and causal-on runs", c.name)
		}
		if len(events) == 0 {
			t.Fatalf("%s: causal run recorded no events", c.name)
		}
		requireCausalGraph(t, c.name, events)
	}
}

// TestCritPathGolden replays the committed Fig.4 sample logs through the
// critical-path extractor and the standard what-if set and requires the
// reports to match their goldens byte for byte. -update regenerates the
// sample logs (identically to TestObsGoldenAttribution -update, which shares
// them) and both reports.
func TestCritPathGolden(t *testing.T) {
	for _, tc := range []struct {
		system string
		slug   string
	}{
		{sysMLlib, "mllib"},
		{sysMLlibStar, "mllibstar"},
	} {
		eventsPath := filepath.Join("testdata", "obs_events_"+tc.slug+".jsonl")
		critGolden := filepath.Join("testdata", "critpath_"+tc.slug+".golden")
		whatifGolden := filepath.Join("testdata", "whatif_"+tc.slug+".golden")
		if *updateObs {
			events := sampleEvents(t, tc.system)
			var buf bytes.Buffer
			if err := obs.WriteJSONL(&buf, events); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(eventsPath, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		raw, err := os.Open(eventsPath)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		events, err := obs.ReadJSONL(raw)
		raw.Close()
		if err != nil {
			t.Fatal(err)
		}
		g := requireCausalGraph(t, tc.system, events)
		crit := causal.CriticalPath(g).Text(20)
		whatif := causal.WhatIfText(g, causal.WhatIf(g, causal.StandardScenarios(g)))
		if *updateObs {
			if err := os.WriteFile(critGolden, []byte(crit), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(whatifGolden, []byte(whatif), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		for _, chk := range []struct {
			path string
			got  string
		}{{critGolden, crit}, {whatifGolden, whatif}} {
			want, err := os.ReadFile(chk.path)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if chk.got != string(want) {
				t.Errorf("%s: report drifted from %s:\n--- got ---\n%s--- want ---\n%s",
					tc.system, chk.path, chk.got, want)
			}
		}
	}
}

// TestCritPathDiagnosis pins the paper's diagnosis at message granularity on
// the committed logs: MLlib's critical path runs through the driver (B1/B2
// incast and single-threaded update), MLlib*'s driver share collapses and
// its path is compute/shuffle-bound.
func TestCritPathDiagnosis(t *testing.T) {
	load := func(slug string) *causal.Path {
		raw, err := os.Open(filepath.Join("testdata", "obs_events_"+slug+".jsonl"))
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		defer raw.Close()
		events, err := obs.ReadJSONL(raw)
		if err != nil {
			t.Fatal(err)
		}
		g, err := causal.Analyze(events)
		if err != nil {
			t.Fatal(err)
		}
		return causal.CriticalPath(g)
	}
	mllib := load("mllib")
	mllibPhase, mllibDriver := mllib.Dominant()
	if mllibDriver < 0.4 {
		t.Errorf("MLlib: driver share of the critical path %.3f, want > 0.4\n%s", mllibDriver, mllib.Text(10))
	}
	switch mllibPhase {
	case "broadcast", "tree-agg", "update":
	default:
		t.Errorf("MLlib: dominant path phase %q, want a driver-centric phase\n%s", mllibPhase, mllib.Text(10))
	}
	star := load("mllibstar")
	starPhase, starDriver := star.Dominant()
	if starDriver >= mllibDriver {
		t.Errorf("MLlib*: driver share %.3f did not drop below MLlib's %.3f", starDriver, mllibDriver)
	}
	switch starPhase {
	case "compute", "reduce-scatter", "allgather", "aggregate", "update":
	default:
		t.Errorf("MLlib*: dominant path phase %q, want compute- or shuffle-bound\n%s", starPhase, star.Text(10))
	}
}

// chunkSweepTol is the pinned relative tolerance for the chunk what-if: the
// re-timer rebuilds the pipelined schedule the simulator itself would run,
// so the prediction is near-exact — the slack covers only encoding-boundary
// effects the transform cannot see from a dense sequential trace.
const chunkSweepTol = 0.02

// TestWhatIfChunkSweep records ONE sequential high-dimensional MLlib* run
// and predicts the pipelined makespan for chunk counts 2..8 from its trace
// alone, then actually reruns the simulator at each chunk count and requires
// the prediction to land within the pinned tolerance of reality.
func TestWhatIfChunkSweep(t *testing.T) {
	w := highDimWorkload()
	prm := tuned(sysMLlibStar, "avazu", 0.1)
	prm.MaxSteps = 4
	run := func() {
		if _, err := runSystem(sysMLlibStar, clusters.CommBound(4), w, prm, nil); err != nil {
			t.Fatal(err)
		}
	}
	var seq []obs.Event
	runWithPipeline(false, func() { seq = runWithCausal(true, run) })
	g := requireCausalGraph(t, "MLlib* sequential", seq)

	for _, C := range []int{2, 4, 8} {
		pred := causal.Retime(g, causal.Scenario{Name: fmt.Sprintf("chunks=%d", C), Chunks: C})
		if pred.Err != "" {
			t.Fatalf("chunks=%d: %s", C, pred.Err)
		}
		var act []obs.Event
		allreduce.Configure(true, C)
		act = runWithCausal(true, run)
		allreduce.Configure(false, 0)
		ag := requireCausalGraph(t, fmt.Sprintf("MLlib* chunks=%d", C), act)
		actual := ag.Makespan()
		rel := math.Abs(pred.Makespan-actual) / actual
		t.Logf("chunks=%d: predicted %.6fs actual %.6fs (rel err %.4f%%)", C, pred.Makespan, actual, 100*rel)
		if rel > chunkSweepTol {
			t.Errorf("chunks=%d: predicted makespan %.6fs vs actual %.6fs — rel err %.4f%% exceeds %.1f%%",
				C, pred.Makespan, actual, 100*rel, 100*chunkSweepTol)
		}
		if pred.Makespan >= g.Makespan() {
			t.Errorf("chunks=%d: prediction %.6fs not below sequential %.6fs", C, pred.Makespan, g.Makespan())
		}
	}
}

// overlapSweepTol is the pinned relative tolerance for the overlap what-if.
// The rebuild is near-exact; the residual it covers is the production
// apportionment — the trace shows one gradient charge per superstep and the
// transform splits its streaming half across feature blocks by coordinate
// width, while the rerun charges each block by its nonzero count
// (data.GradStream.Work), which the zipf-skewed dataset distributes
// unevenly. Measured error on this workload is under 0.1%.
const overlapSweepTol = 0.02

// TestWhatIfOverlapSweep records ONE non-overlapped distributed-GD run on
// the comm-bound cluster and predicts the fully overlapped makespan — pass-1
// split, streamed feature blocks, route-ordered chunk sends — from its trace
// alone, then actually reruns the simulator under -overlap at each chunk
// count and requires the prediction to land within the pinned tolerance.
func TestWhatIfOverlapSweep(t *testing.T) {
	ds := overlapDataset()
	run := func() { runOverlapGD(clusters.CommBound(4), ds, 8) }
	var seq []obs.Event
	runWithOverlap(false, func() { seq = runWithCausal(true, run) })
	g := requireCausalGraph(t, "GD sequential", seq)

	for _, C := range []int{4, 8} {
		pred := causal.Retime(g, causal.Scenario{Name: fmt.Sprintf("overlap C=%d", C), Overlap: true, Chunks: C})
		if pred.Err != "" {
			t.Fatalf("overlap C=%d: %s", C, pred.Err)
		}
		var act []obs.Event
		allreduce.Configure(true, C)
		allreduce.ConfigureOverlap(true)
		act = runWithCausal(true, run)
		allreduce.ConfigureOverlap(false)
		allreduce.Configure(false, 0)
		ag := requireCausalGraph(t, fmt.Sprintf("GD overlap C=%d", C), act)
		actual := ag.Makespan()
		rel := math.Abs(pred.Makespan-actual) / actual
		t.Logf("overlap C=%d: predicted %.6fs actual %.6fs (rel err %.4f%%)", C, pred.Makespan, actual, 100*rel)
		if rel > overlapSweepTol {
			t.Errorf("overlap C=%d: predicted makespan %.6fs vs actual %.6fs — rel err %.4f%% exceeds %.1f%%",
				C, pred.Makespan, actual, 100*rel, 100*overlapSweepTol)
		}
		if pred.Makespan >= g.Makespan() {
			t.Errorf("overlap C=%d: prediction %.6fs not below sequential %.6fs", C, pred.Makespan, g.Makespan())
		}
	}
}
