package bench

import (
	"fmt"

	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
	"mllibstar/internal/opt"
	"mllibstar/internal/train"
)

func init() {
	register(Experiment{
		ID:    "ext-lbfgs",
		Title: "Extension (paper §VII): do the MLlib* techniques transfer to spark.ml's L-BFGS?",
		Run:   runExtLBFGS,
	})
	register(Experiment{
		ID:    "ext-staleness",
		Title: "Extension: SSP staleness sweep for Petuum* on a heterogeneous cluster",
		Run:   runExtStaleness,
	})
	register(Experiment{
		ID:    "ext-adagrad",
		Title: "Extension: AdaGrad as MLlib*'s local optimizer on skewed sparse features",
		Run:   runExtAdaGrad,
	})
	register(Experiment{
		ID:    "ext-svrg",
		Title: "Extension: variance-reduced SVRG on the MLlib* architecture",
		Run:   runExtSVRG,
	})
	register(Experiment{
		ID:    "ext-reweight",
		Title: "Extension (paper §IV-B remark): Splash-style reweighted model averaging",
		Run:   runExtReweight,
	})
}

// runExtLBFGS answers the conclusion's open question: replacing the
// driver-centric gradient aggregation of spark.ml's L-BFGS with AllReduce
// yields the same iterates at a lower per-iteration latency — the B2 fix
// transfers to second-order optimization unchanged.
func runExtLBFGS(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("kdd12", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-lbfgs", Title: "L-BFGS: treeAggregate (spark.ml) vs AllReduce"}
	obj := glm.LogReg(0.01)
	csv := "variant,iterations,sim_time_s,time_per_iter_s,final_objective,driver_bytes\n"
	for _, allReduce := range []bool{false, true} {
		_, cl, ctx := clusters.Cluster1(8).Build(nil)
		parts := w.ds.Partition(8, 3)
		res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
			Objective: obj,
			MaxIters:  25,
			AllReduce: allReduce,
		}, w.eval, w.ds.Name)
		if err != nil {
			return nil, err
		}
		driverBytes := cl.Net.Node("driver").BytesSent() + cl.Net.Node("driver").BytesRecv()
		perIter := res.SimTime / float64(res.CommSteps)
		r.addLine("%-7s %3d iters, %8.4f s (%.5f s/iter), final objective %.4f, driver traffic %.1f MB",
			res.System, res.CommSteps, res.SimTime, perIter,
			res.Curve.Final().Objective, driverBytes/1e6)
		r.addMetric(safe(res.System)+"_time_per_iter", perIter)
		csv += fmt.Sprintf("%s,%d,%.6f,%.6f,%.6f,%.0f\n",
			res.System, res.CommSteps, res.SimTime, perIter, res.Curve.Final().Objective, driverBytes)
	}
	r.addLine("Expected shape: identical iterates (same final objective), AllReduce variant faster per iteration.")
	r.addFile("ext_lbfgs.csv", csv)
	return r, nil
}

// runExtStaleness sweeps the SSP staleness of Petuum* on a cluster with
// heterogeneous worker speeds: bounded staleness hides stragglers (faster
// steps) at a modest convergence cost — the tradeoff SSP [13] exists for.
func runExtStaleness(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-staleness", Title: "SSP staleness sweep (Petuum*, transient stragglers)"}
	spec := clusters.Cluster1(8)
	csv := "staleness,sim_time_s,time_per_step_s,best_objective\n"
	for _, staleness := range []int{0, 1, 4, 16} {
		prm := tuned(sysPetuumStar, w.ds.Name, 0)
		prm.Staleness = staleness
		prm.MaxSteps = 200
		prm.EvalEvery = 10
		// Transient stragglers: a step's compute can inflate by up to ~100x
		// (GC pauses, co-tenant interference). BSP pays the max across
		// workers at every barrier; SSP absorbs fluctuations up to its
		// staleness window.
		prm.ComputeJitter = 100
		prm.BatchFraction = 0.25
		res, err := runSystem(sysPetuumStar, spec, w, prm, nil)
		if err != nil {
			return nil, err
		}
		perStep := res.SimTime / float64(res.CommSteps)
		r.addLine("staleness %2d: %8.4f s total, %.6f s/step, best objective %.4f",
			staleness, res.SimTime, perStep, res.Curve.Best())
		r.addMetric(fmt.Sprintf("time_per_step_s%d", staleness), perStep)
		csv += fmt.Sprintf("%d,%.6f,%.6f,%.6f\n", staleness, res.SimTime, perStep, res.Curve.Best())
	}
	r.addLine("Expected shape: time per step falls as staleness grows (transient stragglers overlap")
	r.addLine("within the staleness window instead of stalling every BSP barrier).")
	r.addFile("ext_staleness.csv", csv)
	return r, nil
}

// runExtReweight evaluates the Splash-style [15] reweighted combination the
// paper's §IV-B remark suggests could further improve MLlib*: each worker
// takes its local steps with the step size scaled by k (as if its partition
// were the whole dataset) before averaging. Reweighting is a step-size
// transformation of local SGD, so the honest comparison is best-of-grid for
// each variant at matched budgets — the question being whether the
// k-scaled regime, which matches sequential SGD's per-epoch progress,
// tolerates rates that plain averaging cannot.
func runExtReweight(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-reweight", Title: "Model averaging vs Splash-style reweighted averaging (MLlib*)"}
	target := w.target(0)
	r.addLine("target objective (optimum + 0.01): %.4f", target)
	csv := "variant,base_eta,steps_to_target,best_objective\n"
	for _, reweight := range []bool{false, true} {
		name := "plain averaging"
		if reweight {
			name = "reweighted (Splash)"
		}
		bestSteps, bestEta, bestObj := -1, 0.0, 1e18
		for _, eta := range []float64{0.025, 0.05, 0.1, 0.3} {
			prm := tuned(sysMLlibStar, w.ds.Name, 0)
			prm.Eta = eta
			prm.Reweight = reweight
			prm.MaxSteps = 100
			prm.TargetObjective = target
			res, err := runSystem(sysMLlibStar, clusters.Cluster1(8), w, prm, nil)
			if err != nil {
				return nil, err
			}
			steps, ok := res.Curve.StepsToReach(target)
			if obj := res.Curve.Best(); obj < bestObj {
				bestObj = obj
			}
			if ok && (bestSteps < 0 || steps < bestSteps) {
				bestSteps, bestEta = steps, eta
			}
			csv += fmt.Sprintf("%s,%g,%d,%.6f\n", name, eta, steps, res.Curve.Best())
		}
		if bestSteps >= 0 {
			r.addLine("%-20s best of grid: %3d steps to target (base eta %g), best objective %.4f",
				name, bestSteps, bestEta, bestObj)
			r.addMetric(safeName(name)+"_steps", float64(bestSteps))
		} else {
			r.addLine("%-20s did not reach target at any grid rate (best objective %.4f)", name, bestObj)
		}
	}
	r.addLine("Reading: reweighting rescales the local step by k, so the two variants explore the")
	r.addLine("same trajectory family; its practical value is that the *sequential* tuned rate")
	r.addLine("transfers to the distributed run without retuning (here: base 0.025 ~ sequential")
	r.addLine("0.2), rather than a new optimum plain averaging could not reach.")
	r.addFile("ext_reweight.csv", csv)
	return r, nil
}

// safeName is safe() for free-form labels.
func safeName(label string) string {
	out := make([]rune, 0, len(label))
	for _, c := range label {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		case c == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}

// runExtAdaGrad compares MLlib*'s local optimizer: plain SGD vs AdaGrad, on
// the Zipf-skewed kddb replica where per-coordinate adaptivity should help
// the rare-feature tail.
func runExtAdaGrad(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("kddb", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-adagrad", Title: "MLlib* local optimizer: SGD vs AdaGrad (kddb)"}
	target := w.target(0)
	r.addLine("target objective (optimum + 0.01): %.4f", target)
	csv := "optimizer,eta,steps_to_target,best_objective\n"
	for _, adaGrad := range []bool{false, true} {
		name := "SGD"
		etas := []float64{0.1, 0.3}
		if adaGrad {
			name = "AdaGrad"
			etas = []float64{0.1, 0.5}
		}
		bestSteps, bestEta, bestObj := -1, 0.0, 1e18
		for _, eta := range etas {
			prm := tuned(sysMLlibStar, w.ds.Name, 0)
			prm.Eta = eta
			prm.AdaGrad = adaGrad
			prm.MaxSteps = 200
			prm.TargetObjective = target
			res, err := runSystem(sysMLlibStar, clusters.Cluster1(8), w, prm, nil)
			if err != nil {
				return nil, err
			}
			steps, ok := res.Curve.StepsToReach(target)
			if obj := res.Curve.Best(); obj < bestObj {
				bestObj = obj
			}
			if ok && (bestSteps < 0 || steps < bestSteps) {
				bestSteps, bestEta = steps, eta
			}
			csv += fmt.Sprintf("%s,%g,%d,%.6f\n", name, eta, steps, res.Curve.Best())
		}
		if bestSteps >= 0 {
			r.addLine("%-8s best of grid: %4d steps to target (eta %g), best objective %.4f",
				name, bestSteps, bestEta, bestObj)
		} else {
			r.addLine("%-8s did not reach target (best objective %.4f)", name, bestObj)
		}
	}
	r.addFile("ext_adagrad.csv", csv)
	return r, nil
}

// runExtSVRG compares plain local SGD with variance-reduced SVRG on the
// MLlib* architecture: same communication pattern (two collectives per step
// instead of one), corrected inner steps with a constant rate.
func runExtSVRG(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-svrg", Title: "MLlib* local optimizer: SGD vs SVRG (logistic, avazu)"}
	obj := glm.LogReg(0.01)
	ref := opt.ReferenceOptimumOn(obj, w.ds.Examples, w.eval, w.ds.Features, 40)
	target := ref + 0.005
	r.addLine("target objective (optimum + 0.005): %.4f", target)
	csv := "variant,steps_to_target,time_to_target_s,best_objective\n"
	parts := w.ds.Partition(8, 3)
	for _, svrg := range []bool{false, true} {
		name := "SGD"
		if svrg {
			name = "SVRG"
		}
		_, _, ctx := clusters.Cluster1(8).Build(nil)
		prm := tuned(sysMLlibStar, w.ds.Name, 0)
		prm.Objective = obj
		prm.Eta = 0.2
		prm.Decay = !svrg // SVRG uses a constant step; SGD needs decay
		prm.MaxSteps = 100
		prm.TargetObjective = target
		var res *train.Result
		if svrg {
			res, err = core.TrainSVRG(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
		} else {
			res, err = core.Train(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
		}
		if err != nil {
			return nil, err
		}
		steps, okS := res.Curve.StepsToReach(target)
		tm, _ := res.Curve.TimeToReach(target)
		if okS {
			r.addLine("%-5s reached target in %3d steps (%.4f s), best %.4f", name, steps, tm, res.Curve.Best())
			csv += fmt.Sprintf("%s,%d,%.6f,%.6f\n", name, steps, tm, res.Curve.Best())
		} else {
			r.addLine("%-5s did not reach target (best %.4f)", name, res.Curve.Best())
			csv += fmt.Sprintf("%s,-1,-1,%.6f\n", name, res.Curve.Best())
		}
	}
	r.addLine("Expected shape: SVRG needs fewer or equal outer steps at a constant rate; each")
	r.addLine("step moves ~2x the bytes (snapshot-gradient AllReduce + model AllReduce).")
	r.addFile("ext_svrg.csv", csv)
	return r, nil
}
