package bench

import (
	"fmt"
	"sort"

	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/trace"
	"mllibstar/internal/train"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "ML workloads in Tencent Machine Learning Platform (survey)",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Dataset statistics (Table I), paper scale and reproduction scale",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Gantt charts: MLlib vs MLlib+MA vs MLlib* (kdd12, SVM, 8 executors)",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "bottleneck",
		Title: "B1/B2 quantification: per-node busy-time shares (kdd12, 8 executors)",
		Run:   runBottleneck,
	})
}

// runFig1 reproduces Figure 1, which is survey data, not an experiment: the
// share of ML workloads per system on Tencent's platform.
func runFig1(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig1", Title: "ML workloads in Tencent Machine Learning Platform"}
	shares := []struct {
		system string
		pct    int
	}{
		{"Angel", 51}, {"XGBoost", 24}, {"TensorFlow", 22}, {"MLlib", 3},
	}
	csv := "system,share_pct\n"
	for _, s := range shares {
		r.addLine("%-12s %3d%%  %s", s.system, s.pct, bar(s.pct))
		csv += fmt.Sprintf("%s,%d\n", s.system, s.pct)
	}
	r.addLine("(static survey data from the paper's introduction; only 3%% of ML workloads use MLlib)")
	r.addFile("fig1_workloads.csv", csv)
	return r, nil
}

func bar(pct int) string {
	out := make([]byte, pct/2)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// runTable1 reproduces Table I: the paper-scale statistics as published and
// the statistics of the generated reproduction-scale datasets.
func runTable1(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "table1", Title: "Dataset statistics"}
	r.addLine("paper scale:")
	csv := "dataset,scope,instances,features,avg_nnz,size_bytes\n"
	for _, name := range data.PresetNames() {
		st, err := data.PaperStats(name)
		if err != nil {
			return nil, err
		}
		r.addLine("  %s", st)
		csv += fmt.Sprintf("%s,paper,%d,%d,%.1f,%d\n", name, st.Instances, st.Features, st.AvgNNZ, st.SizeBytes)
	}
	r.addLine("reproduction scale (1/%g):", cfg.scale())
	for _, name := range data.PresetNames() {
		w, err := loadWorkload(name, cfg)
		if err != nil {
			return nil, err
		}
		st := w.ds.Stats()
		r.addLine("  %s", st)
		csv += fmt.Sprintf("%s,repro,%d,%d,%.1f,%d\n", name, st.Instances, st.Features, st.AvgNNZ, st.SizeBytes)
	}
	r.addFile("table1_datasets.csv", csv)
	return r, nil
}

// fig3Trace runs a few steps of the given system on the kdd12 preset with
// tracing enabled and returns the recorder plus the result.
func fig3Trace(system string, cfg RunConfig) (*trace.Recorder, *train.Result, error) {
	w, err := loadWorkload("kdd12", cfg)
	if err != nil {
		return nil, nil, err
	}
	rec := trace.New()
	prm := tuned(system, w.ds.Name, 0)
	prm.MaxSteps = 4
	res, err := runSystem(system, clusters.Cluster1(8), w, prm, rec)
	return rec, res, err
}

// runFig3 renders the three gantt charts of Figure 3.
func runFig3(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig3", Title: "Gantt charts for MGD executions (kdd12, SVM, 8 executors)"}
	for _, system := range []string{sysMLlib, sysMAvg, sysMLlibStar} {
		rec, res, err := fig3Trace(system, cfg)
		if err != nil {
			return nil, err
		}
		r.addLine("--- %s (%d steps in %.3f simulated s) ---", system, res.CommSteps, res.SimTime)
		r.Lines = append(r.Lines, rec.RenderASCII(100))
		r.addFile(fmt.Sprintf("fig3_%s_gantt.csv", safe(system)), rec.CSV())
	}
	r.addLine("Expected shape: (a) MLlib — driver Update bars with executors idle between stages;")
	r.addLine("(b) +MA — same pattern, fewer steps needed; (c) MLlib* — executors busy nearly all the time.")
	return r, nil
}

// runBottleneck quantifies B1/B2 from the same traces: the share of wall
// time the driver spends communicating/updating, and mean executor
// utilization, per system.
func runBottleneck(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "bottleneck", Title: "Driver bottleneck quantification (kdd12, 8 executors)"}
	csv := "system,driver_busy_share,mean_executor_utilization\n"
	for _, system := range []string{sysMLlib, sysMAvg, sysMLlibStar} {
		rec, res, err := fig3Trace(system, cfg)
		if err != nil {
			return nil, err
		}
		bt := rec.BusyTime()
		// Sum in fixed Kind order: map-order float accumulation would make
		// the CSV differ in the last ulp between runs.
		driver := 0.0
		for k := trace.Kind(0); k < trace.KindCount; k++ {
			driver += bt["driver"][k]
		}
		driverShare := driver / res.SimTime
		util := rec.Utilization()
		nodes := make([]string, 0, len(util))
		for node := range util { //mlstar:nolint determinism -- order-insensitive: keys sorted before use
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		execUtil, n := 0.0, 0
		for _, node := range nodes {
			if node != "driver" {
				execUtil += util[node]
				n++
			}
		}
		if n > 0 {
			execUtil /= float64(n)
		}
		r.addLine("%-9s driver busy %5.1f%% of run, mean executor utilization %5.1f%%",
			system, driverShare*100, execUtil*100)
		r.addMetric(safe(system)+"_driver_share", driverShare)
		r.addMetric(safe(system)+"_executor_util", execUtil)
		csv += fmt.Sprintf("%s,%.4f,%.4f\n", system, driverShare, execUtil)
	}
	r.addLine("Expected shape: driver share collapses and executor utilization rises from MLlib to MLlib*.")
	r.addFile("bottleneck.csv", csv)
	return r, nil
}

// safe converts a system name into a filename fragment.
func safe(system string) string {
	out := make([]rune, 0, len(system))
	for _, c := range system {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		case c == '*':
			out = append(out, 's', 't', 'a', 'r')
		case c == '+':
			out = append(out, '_')
		}
	}
	return string(out)
}
