package bench

import (
	"fmt"

	"mllibstar/internal/clusters"
	"mllibstar/internal/metrics"
)

// fig4Panels maps each panel of Figure 4 to its dataset and L2 strength, in
// the paper's order.
var fig4Panels = []struct {
	id      string
	dataset string
	l2      float64
}{
	{"fig4a", "avazu", 0.1},
	{"fig4b", "avazu", 0},
	{"fig4c", "url", 0.1},
	{"fig4d", "url", 0},
	{"fig4e", "kddb", 0.1},
	{"fig4f", "kddb", 0},
	{"fig4g", "kdd12", 0.1},
	{"fig4h", "kdd12", 0},
}

func init() {
	for _, p := range fig4Panels {
		p := p
		register(Experiment{
			ID: p.id,
			Title: fmt.Sprintf("MLlib vs MLlib*: %s, L2=%g (objective vs #comm and vs time)",
				p.dataset, p.l2),
			Run: func(cfg RunConfig) (*Report, error) {
				return runFig4Panel(p.id, p.dataset, p.l2, cfg)
			},
		})
	}
	register(Experiment{
		ID:    "fig4",
		Title: "MLlib vs MLlib* on all four public datasets, with and without L2 (all panels)",
		Run: func(cfg RunConfig) (*Report, error) {
			combined := &Report{ID: "fig4", Title: "MLlib vs MLlib*, all panels"}
			for _, p := range fig4Panels {
				sub, err := runFig4Panel(p.id, p.dataset, p.l2, cfg)
				if err != nil {
					return nil, err
				}
				combined.Lines = append(combined.Lines, sub.Text())
				combined.addFilesFrom(sub)
			}
			return combined, nil
		},
	})
}

// runFig4Panel runs MLlib and MLlib* on one dataset/L2 setting and reports
// steps-to-target, time-to-target, and the speedup factors — the numbers
// annotated on the paper's plots (e.g. "80x" steps, "240x" time on kdd12).
func runFig4Panel(id, dataset string, l2 float64, cfg RunConfig) (*Report, error) {
	w, err := loadWorkload(dataset, cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: id, Title: fmt.Sprintf("MLlib vs MLlib* on %s, L2=%g", dataset, l2)}
	spec := clusters.Cluster1(8)
	target := w.target(l2)
	r.addLine("target objective (optimum + 0.01): %.4f", target)

	curves := map[string]*metrics.Curve{}
	for _, system := range []string{sysMLlibStar, sysMLlib} {
		res, err := runTuned(system, spec, w, l2, stepBudget(system), 0, cfg)
		if err != nil {
			return nil, err
		}
		curves[system] = res.Curve
		r.Curves = append(r.Curves, res.Curve)
		steps, okS := res.Curve.StepsToReach(target)
		tm, okT := res.Curve.TimeToReach(target)
		if okS && okT {
			r.addLine("%-8s reached target in %5d comm steps, %10.3f s (best %.4f)",
				system, steps, tm, res.Curve.Best())
		} else {
			r.addLine("%-8s DID NOT reach target within %d steps (best %.4f)",
				system, res.CommSteps, res.Curve.Best())
		}
	}
	if stepX, timeX, ok := metrics.Speedup(curves[sysMLlib], curves[sysMLlibStar], target); ok {
		r.addLine("speedup of MLlib* over MLlib: %.0fx in comm steps, %.0fx in time", stepX, timeX)
		r.addMetric("steps_speedup", stepX)
		r.addMetric("time_speedup", timeX)
	} else {
		r.addLine("speedup of MLlib* over MLlib: MLlib missed the target — unbounded (paper: url/kddb at L2=0)")
		r.addMetric("mllib_missed_target", 1)
	}
	r.addCurveCSV(id + "_curves.csv")
	r.addCurveSVG(id+".svg", r.Title)
	return r, nil
}
