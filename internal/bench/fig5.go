package bench

import (
	"fmt"

	"mllibstar/internal/clusters"
	"mllibstar/internal/metrics"
)

// fig5Panels maps each panel of Figure 5 to its dataset and L2 strength, in
// the paper's order (top row L2=0, bottom row L2=0.1).
var fig5Panels = []struct {
	id      string
	dataset string
	l2      float64
}{
	{"fig5a", "avazu", 0},
	{"fig5b", "url", 0},
	{"fig5c", "kddb", 0},
	{"fig5d", "kdd12", 0},
	{"fig5e", "avazu", 0.1},
	{"fig5f", "url", 0.1},
	{"fig5g", "kddb", 0.1},
	{"fig5h", "kdd12", 0.1},
}

func init() {
	for _, p := range fig5Panels {
		p := p
		register(Experiment{
			ID: p.id,
			Title: fmt.Sprintf("MLlib* vs parameter servers: %s, L2=%g (objective vs time)",
				p.dataset, p.l2),
			Run: func(cfg RunConfig) (*Report, error) {
				return runFig5Panel(p.id, p.dataset, p.l2, cfg)
			},
		})
	}
	register(Experiment{
		ID:    "fig5",
		Title: "MLlib* vs Petuum* vs Angel (MLlib reference) on all datasets (all panels)",
		Run: func(cfg RunConfig) (*Report, error) {
			combined := &Report{ID: "fig5", Title: "MLlib* vs parameter servers, all panels"}
			for _, p := range fig5Panels {
				sub, err := runFig5Panel(p.id, p.dataset, p.l2, cfg)
				if err != nil {
					return nil, err
				}
				combined.Lines = append(combined.Lines, sub.Text())
				combined.addFilesFrom(sub)
			}
			return combined, nil
		},
	})
}

// runFig5Panel compares MLlib*, Petuum*, and Angel (with MLlib as the
// reference pointer, as in the paper) by objective vs simulated time.
func runFig5Panel(id, dataset string, l2 float64, cfg RunConfig) (*Report, error) {
	w, err := loadWorkload(dataset, cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: id, Title: fmt.Sprintf("MLlib* vs parameter servers on %s, L2=%g", dataset, l2)}
	spec := clusters.Cluster1(8)
	target := w.target(l2)
	r.addLine("target objective (optimum + 0.01): %.4f", target)

	var curves []*metrics.Curve
	maxTime := 0.0
	for _, system := range []string{sysMLlibStar, sysPetuumStar, sysAngel, sysMLlib} {
		res, err := runTuned(system, spec, w, l2, stepBudget(system), 0, cfg)
		if err != nil {
			return nil, err
		}
		curves = append(curves, res.Curve)
		r.Curves = append(r.Curves, res.Curve)
		if tm, ok := res.Curve.TimeToReach(target); ok {
			r.addLine("%-8s reached target at %10.3f s (best %.4f, %d comm steps)",
				system, tm, res.Curve.Best(), res.CommSteps)
			if tm > maxTime {
				maxTime = tm
			}
		} else {
			r.addLine("%-8s DID NOT reach target (best %.4f after %d steps, %.3f s)",
				system, res.Curve.Best(), res.CommSteps, res.SimTime)
			if res.SimTime > maxTime {
				maxTime = res.SimTime
			}
		}
	}
	if maxTime > 0.001 {
		r.addLine("objective vs time (log-spaced samples):")
		r.Lines = append(r.Lines, metrics.Table(curves, metrics.LogTimes(maxTime/1000, maxTime, 10)))
	}
	r.addCurveCSV(id + "_curves.csv")
	r.addCurveSVG(id+".svg", r.Title)
	return r, nil
}
