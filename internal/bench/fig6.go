package bench

import (
	"fmt"

	"mllibstar/internal/clusters"
	"mllibstar/internal/metrics"
	"mllibstar/internal/train"
)

// fig6Machines are the cluster sizes of Figure 6 (a)-(c).
var fig6Machines = []int{32, 64, 128}

func init() {
	for i, m := range fig6Machines {
		id := fmt.Sprintf("fig6%c", 'a'+i)
		m := m
		register(Experiment{
			ID:    id,
			Title: fmt.Sprintf("Tencent WX workload with %d machines: MLlib, MLlib*, Angel", m),
			Run: func(cfg RunConfig) (*Report, error) {
				return runFig6Panel(id, m, cfg)
			},
		})
	}
	register(Experiment{
		ID:    "fig6d",
		Title: "Scalability on WX: speedup vs #machines, normalized to 32",
		Run:   runFig6d,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "All WX scalability panels (a-d)",
		Run: func(cfg RunConfig) (*Report, error) {
			combined := &Report{ID: "fig6", Title: "WX scalability, all panels"}
			for i := range fig6Machines {
				sub, err := runFig6Panel(fmt.Sprintf("fig6%c", 'a'+i), fig6Machines[i], cfg)
				if err != nil {
					return nil, err
				}
				combined.Lines = append(combined.Lines, sub.Text())
				combined.addFilesFrom(sub)
			}
			sub, err := runFig6d(cfg)
			if err != nil {
				return nil, err
			}
			combined.Lines = append(combined.Lines, sub.Text())
			combined.addFilesFrom(sub)
			return combined, nil
		},
	})
}

// fig6Systems are the systems of Figure 6 (Petuum could not be deployed on
// Cluster 2 in the paper, so it is absent here too).
var fig6Systems = []string{sysMLlib, sysMLlibStar, sysAngel}

// runTuned6 runs a system with the WX experiment's budgets: the common
// target is looser than Figure 4/5's, so the step budgets can be tighter.
func runTuned6(system string, spec clusters.Spec, w *workload, cfg RunConfig) (*train.Result, error) {
	prm := tuned(system, w.ds.Name, 0)
	prm.TargetObjective = w.reference(0) + 0.05
	prm.EvalEvery = 2
	switch system {
	case sysMLlib:
		prm.MaxSteps = 2000
		prm.EvalEvery = 10
	case sysAngel:
		prm.MaxSteps = 250
		// The paper tunes an absolute batch size; keep it fixed as machines
		// are added (BatchFraction is relative to the local partition, so it
		// must grow with the cluster). At tiny batches Angel drowns in
		// per-batch allocations, so the grid lands on a moderate size.
		prm.BatchFraction = 0.05 * float64(spec.Executors) / 32
		if prm.BatchFraction > 1 {
			prm.BatchFraction = 1
		}
	default:
		prm.MaxSteps = 100
	}
	return runSystem(system, spec, w, prm, nil)
}

// runFig6Panel runs the WX workload on Cluster 2 with the given machine
// count.
func runFig6Panel(id string, machines int, cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("wx", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: id, Title: fmt.Sprintf("WX on cluster2 with %d machines", machines)}
	spec := clusters.Cluster2(machines)
	// The paper's dotted line in Figure 6 is the best objective achieved
	// among the systems, not the 0.01-loss bar; a reachable common target
	// keeps all three systems measurable.
	target := w.reference(0) + 0.05
	r.addLine("common target objective (optimum + 0.05): %.4f", target)
	var curves []*metrics.Curve
	for _, system := range fig6Systems {
		res, err := runTuned6(system, spec, w, cfg)
		if err != nil {
			return nil, err
		}
		curves = append(curves, res.Curve)
		r.Curves = append(r.Curves, res.Curve)
		if tm, ok := res.Curve.TimeToReach(target); ok {
			r.addLine("%-8s reached target at %10.3f s (%d comm steps)", system, tm, res.CommSteps)
		} else {
			r.addLine("%-8s best %.4f after %d steps, %.3f s (target not reached)",
				system, res.Curve.Best(), res.CommSteps, res.SimTime)
		}
	}
	r.addCurveCSV(id + "_curves.csv")
	r.addCurveSVG(id+".svg", r.Title)
	return r, nil
}

// runFig6d computes the scalability panel: for each system, the speedup in
// time-to-objective when growing the cluster from 32 to 64 and 128
// machines, normalized to the 32-machine time — the paper's headline being
// how FAR below linear these land (MLlib even slows down).
func runFig6d(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("wx", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig6d", Title: "Speedup vs #machines on WX (normalized to 32 machines)"}
	// A fixed, reachable objective so every configuration is measured at
	// the same quality bar.
	target := w.reference(0) + 0.05
	csv := "system,machines,time_to_target,speedup_vs_32\n"
	for _, system := range fig6Systems {
		base := 0.0
		line := fmt.Sprintf("%-8s", system)
		for _, m := range fig6Machines {
			res, err := runTuned6(system, clusters.Cluster2(m), w, cfg)
			if err != nil {
				return nil, err
			}
			tm, ok := res.Curve.TimeToReach(target)
			if !ok {
				tm = res.SimTime * 2 // penalize missing the bar
			}
			if m == fig6Machines[0] {
				base = tm
			}
			speedup := base / tm
			line += fmt.Sprintf("  %3d machines: %8.3fs (%.2fx)", m, tm, speedup)
			csv += fmt.Sprintf("%s,%d,%.6f,%.4f\n", system, m, tm, speedup)
			r.addMetric(fmt.Sprintf("%s_speedup_%d", safe(system), m), speedup)
		}
		r.addLine("%s", line)
	}
	r.addLine("Expected shape: far below the linear 4x at 128 machines; MLlib may even slow down.")
	r.addFile("fig6d_scalability.csv", csv)
	return r, nil
}
