package bench

// BenchmarkWallClockCSRKernels: Example-view interface path vs the slab
// kernels, per monomorphized loss, on the fused gradient+loss superstep —
// the L-BFGS hot path, where the interface code makes two full passes over
// the partition (AddGradient then LossSum) and the slab kernel computes each
// row's margin once for both. mlstar-benchjson pairs the /impl=view and
// /impl=slab sub-runs into the kernel_speedup_csr table of BENCH_7.json.
//
// BenchmarkWallClockCSRKernelEpoch reports the SGD-epoch pass (the
// SendModel-trainer hot loop) for the record under unpaired names: both
// sides of that comparison are bound by the same serial dot-product
// dependency chain (bit identity pins the summation order), so its ratio is
// structurally smaller than the fused pass's and it is not part of the
// headline table.

import (
	"testing"

	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/opt"
	"mllibstar/internal/vec"
)

// kernelBenchObjectives pins one objective per monomorphized loss. L2 on the
// epoch pass selects the lazy-L2 kernel, the regularized trainers' path.
func kernelBenchObjectives() []struct {
	name string
	obj  glm.Objective
} {
	return []struct {
		name string
		obj  glm.Objective
	}{
		{"hinge", glm.SVM(0.1)},
		{"logistic", glm.LogReg(0.1)},
		{"squared", glm.Objective{Loss: glm.Squared{}, Reg: glm.L2{Strength: 0.1}}},
	}
}

func BenchmarkWallClockCSRKernels(b *testing.B) {
	w := benchWorkload(b)
	v := data.ViewOf(w.ds.Examples)
	dim := w.ds.Features
	model := make([]float64, dim)
	for i := range model {
		model[i] = 0.01 * float64(i%7)
	}
	g := make([]float64, dim)
	for _, tc := range kernelBenchObjectives() {
		b.Run("loss="+tc.name+"/impl=view", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vec.Zero(g)
				tc.obj.AddGradient(model, v.Examples(), g)
				_ = tc.obj.LossSum(model, v.Examples())
			}
		})
		b.Run("loss="+tc.name+"/impl=slab", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				vec.Zero(g)
				_, _ = data.GradAndLoss(tc.obj, model, v, g)
			}
		})
	}
}

func BenchmarkWallClockCSRKernelEpoch(b *testing.B) {
	w := benchWorkload(b)
	v := data.ViewOf(w.ds.Examples)
	dim := w.ds.Features
	sched := opt.Const(0.05) // the Petuum* schedule: no common sqrt cost
	for _, tc := range kernelBenchObjectives() {
		sc := &opt.PassScratch{}
		model := make([]float64, dim)
		// Warm up the lazy-L2 scratch so the loop body is allocation-free on
		// both sides.
		opt.LocalPassWith(tc.obj, model, v.Examples(), sched, 0, sc)
		b.Run("loss="+tc.name+"/pass=view", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt.LocalPassWith(tc.obj, model, v.Examples(), sched, 0, sc)
			}
		})
		b.Run("loss="+tc.name+"/pass=slab", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt.LocalPassView(tc.obj, model, v, sched, 0, sc)
			}
		})
	}
}

// TestCSRKernelZeroAllocs extends the zero-alloc guard to the slab kernels:
// every kernel entry point, and the opt-layer view passes that wrap them,
// must run allocation-free once their reusable scratch is warm.
func TestCSRKernelZeroAllocs(t *testing.T) {
	w, err := loadWorkload("avazu", RunConfig{Scale: 20000, EvalCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	v := data.ViewOf(w.ds.Examples)
	dim := w.ds.Features
	obj := glm.SVM(0.1)
	model := make([]float64, dim)
	g := make([]float64, dim)
	rows := []int32{1, 5, 9, 40}
	sched := opt.Const(0.05)
	sc := &opt.PassScratch{}
	accum := opt.NewSparseAccum(dim)
	batch := v.Sub(0, 256)
	// Warm the reusable scratch (lazy-L2 shadow, accumulator deriv buffer).
	opt.LocalPassView(obj, model, v, sched, 0, sc)
	opt.MGDStepAccumView(obj, model, batch, 0.05, accum)
	for name, fn := range map[string]func(){
		"AddGradient":      func() { data.AddGradient(obj, model, v, g) },
		"AddGradientRows":  func() { data.AddGradientRows(obj, model, v, rows, g) },
		"GradAndLoss":      func() { data.GradAndLoss(obj, model, v, g) },
		"LossSum":          func() { data.LossSum(obj, model, v) },
		"LocalPassView":    func() { opt.LocalPassView(obj, model, v, sched, 0, sc) },
		"MGDStepView":      func() { opt.MGDStepView(obj, model, batch, 0.05, g) },
		"MGDStepAccumView": func() { opt.MGDStepAccumView(obj, model, batch, 0.05, accum) },
	} {
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s: %g allocs/op, want 0", name, allocs)
		}
	}
}
