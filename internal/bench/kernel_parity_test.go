package bench

// Kernels-on vs kernels-off bit-identity: the slab kernels (internal/data)
// must not change a single bit of any result — not the final model, not the
// convergence curve, and, unlike the sparse/pipeline switches, not even the
// virtual clock: a kernel returns exactly the nonzeros-touched work measure
// of the Example-view path it replaces, so simulated time is part of the
// contract (requireSameResult, not requireSameNumerics). The kernels-off leg
// runs the original interface code path, which the pre-kernel golden repro
// CSVs pinned, so these tests transitively pin kernels-on against the
// pre-PR numbers too.

import (
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
	"mllibstar/internal/train"
)

// runWithKernels runs fn with the slab kernels in the given mode and
// restores the default (on) afterwards.
func runWithKernels(on bool, fn func()) {
	data.ConfigureKernels(on)
	defer data.ConfigureKernels(true)
	fn()
}

func TestCSRKernelBitIdentityTrainers(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		system string
		l2     float64
	}{
		{sysMLlib, 0.1},
		{sysMLlib, 0}, // BatchFraction < 1: the sampled-rows kernel path
		{sysMAvg, 0.1},
		{sysMLlibStar, 0.1},
		{sysMLlibStar, 0}, // plain-SGD kernel (None regularizer)
		{sysPetuumStar, 0.1},
		{sysPetuumStar, 0},
		{sysAngel, 0.1},
	} {
		prm := tuned(tc.system, "avazu", tc.l2)
		prm.MaxSteps = 8
		run := func() *train.Result {
			res, err := runSystem(tc.system, clusters.Test(4), w, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithKernels(false, func() { off = run() })
		runWithKernels(true, func() { on = run() })
		requireSameResult(t, tc.system, off, on)
	}
}

// TestCSRKernelBitIdentitySquaredLoss covers the third monomorphized loss at
// trainer level: tuned() uses hinge and the SVRG/L-BFGS suites use logistic,
// so squared would otherwise only be exercised by the data-layer unit tests.
func TestCSRKernelBitIdentitySquaredLoss(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l2 := range []float64{0, 0.1} {
		prm := tuned(sysMLlibStar, "avazu", l2)
		prm.MaxSteps = 8
		prm.Objective.Loss = glm.Squared{}
		run := func() *train.Result {
			res, err := runSystem(sysMLlibStar, clusters.Test(4), w, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithKernels(false, func() { off = run() })
		runWithKernels(true, func() { on = run() })
		requireSameResult(t, "MLlib*-squared", off, on)
	}
}

func TestCSRKernelBitIdentityLBFGS(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, allReduce := range []bool{false, true} {
		run := func() *train.Result {
			_, _, ctx := clusters.Test(4).Build(nil)
			parts := w.ds.Partition(4, 3)
			res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
				Objective: glm.LogReg(0.01),
				MaxIters:  6,
				AllReduce: allReduce,
			}, w.eval, w.ds.Name)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithKernels(false, func() { off = run() })
		runWithKernels(true, func() { on = run() })
		name := "LBFGS-tree"
		if allReduce {
			name = "LBFGS-allreduce"
		}
		requireSameResult(t, name, off, on)
	}
}

func TestCSRKernelBitIdentitySVRG(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := train.Params{Objective: glm.LogReg(0.01), Eta: 0.1, MaxSteps: 5, EvalEvery: 1, Seed: 7}
	run := func() *train.Result {
		_, _, ctx := clusters.Test(4).Build(nil)
		parts := w.ds.Partition(4, 3)
		res, err := core.TrainSVRG(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var off, on *train.Result
	runWithKernels(false, func() { off = run() })
	runWithKernels(true, func() { on = run() })
	requireSameResult(t, "MLlib*-SVRG", off, on)
}

// TestCSRKernelBitIdentityAcrossParAndSparse crosses the kernel switch with
// the offload pool and the sparse exchange: kernels on ≡ off must hold in
// every combination of the other two switches (each comparison keeps the
// par/sparse setting fixed on both legs, so requireSameResult — clock
// included — applies throughout).
func TestCSRKernelBitIdentityAcrossParAndSparse(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, system := range []string{sysMLlib, sysMLlibStar} {
		prm := tuned(system, "avazu", 0.1)
		prm.MaxSteps = 8
		run := func() *train.Result {
			res, err := runSystem(system, clusters.Test(4), w, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		for _, parOn := range []bool{false, true} {
			for _, sparseOn := range []bool{false, true} {
				var off, on *train.Result
				runWithPar(parOn, func() {
					runWithSparse(sparseOn, func() {
						runWithKernels(false, func() { off = run() })
						runWithKernels(true, func() { on = run() })
					})
				})
				requireSameResult(t, system, off, on)
			}
		}
	}
}

// TestCSRKernelBitIdentityReport checks the end artifact: the full fig4a
// experiment must emit byte-identical CSV files with the kernels on or off.
func TestCSRKernelBitIdentityReport(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	runFig := func() *Report {
		r, err := must(t, "fig4a").Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	var off, on *Report
	runWithKernels(false, func() { off = runFig() })
	runWithKernels(true, func() { on = runFig() })
	if off.Files["fig4a_curves.csv"] != on.Files["fig4a_curves.csv"] {
		t.Error("fig4a_curves.csv differs between kernels off and on")
	}
	if len(on.Files["fig4a_curves.csv"]) == 0 {
		t.Error("empty fig4a_curves.csv")
	}
}
