package bench

import (
	"fmt"

	"mllibstar/internal/clusters"
	"mllibstar/internal/des"
	"mllibstar/internal/dfs"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
	"mllibstar/internal/opt"
)

func init() {
	register(Experiment{
		ID:    "ext-loading",
		Title: "Substrate: HDFS loading and the RDD cache cliff (why Spark caches for iterative ML)",
		Run:   runExtLoading,
	})
}

// loadStage runs one stage in which every executor reads its share of the
// file's blocks from the DFS (datanodes co-located with the executors, so
// round-robin block placement gives local reads).
func loadStage(ctx *engine.Context, p *des.Proc, fs *dfs.FS, f *dfs.File, name string) (localReads, totalReads int) {
	k := ctx.NumExecutors()
	tasks := make([]engine.Task, k)
	for i := 0; i < k; i++ {
		i := i
		tasks[i] = engine.Task{
			Exec: ctx.Cluster.Execs[i],
			Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
				local := 0
				blocks := f.BlocksFor(i, k)
				for _, idx := range blocks {
					if fs.ReadBlock(p, ex.Name(), f, idx) {
						local++
					}
				}
				return [2]int{local, len(blocks)}, 16
			},
		}
	}
	for _, r := range ctx.RunStage(p, name, tasks) {
		c := r.([2]int)
		localReads += c[0]
		totalReads += c[1]
	}
	return localReads, totalReads
}

// runExtLoading measures (a) loading the kdd12 replica from the simulated
// HDFS, and (b) the cost of NOT caching: re-reading the input every epoch
// versus Spark's cache-once-then-iterate, the property that makes Spark
// "fit well for iterative machine learning workloads" (paper §III-A).
func runExtLoading(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("kdd12", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-loading", Title: "HDFS loading and the cache cliff (kdd12, 8 executors)"}
	const epochs = 5
	dataBytes := float64(w.ds.Stats().SizeBytes)
	obj := glm.SVM(0)
	parts := w.ds.Partition(8, 3)
	dim := w.ds.Features

	spec := clusters.Cluster1(8)
	_, cl, ctx := spec.Build(nil)
	fs, err := dfs.New(cl.Sim, cl.Net, dfs.Config{
		Nodes:       cl.Execs,
		BlockBytes:  dataBytes / 32, // ~32 blocks over 8 datanodes
		Replication: 3,
		DiskBW:      100e6,
	})
	if err != nil {
		return nil, err
	}
	file, err := fs.Store(w.ds.Name, dataBytes)
	if err != nil {
		return nil, err
	}

	var loadTime, cachedTrain, uncachedTotal float64
	var localReads, totalReads int
	cl.Sim.Spawn("driver", func(p *des.Proc) {
		// (a) Load once, then train from cached partitions.
		start := p.Now()
		localReads, totalReads = loadStage(ctx, p, fs, file, "load0")
		loadTime = p.Now() - start

		start = p.Now()
		locals := make([][]float64, 8)
		for i := range locals {
			locals[i] = make([]float64, dim)
		}
		trainEpoch := func(t int) {
			tasks := make([]engine.Task, 8)
			for i := 0; i < 8; i++ {
				i := i
				tasks[i] = engine.Task{Exec: cl.Execs[i], Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
					work := opt.LocalPassView(obj, locals[i], parts[i], opt.Const(0.1), 0, nil)
					ex.Charge(p, float64(work))
					return nil, 0
				}}
			}
			ctx.RunStage(p, fmt.Sprintf("epoch%d", t), tasks)
		}
		for t := 0; t < epochs; t++ {
			trainEpoch(t)
		}
		cachedTrain = p.Now() - start

		// (b) No cache: every epoch re-reads the input first.
		start = p.Now()
		for t := 0; t < epochs; t++ {
			loadStage(ctx, p, fs, file, fmt.Sprintf("reload%d", t))
			trainEpoch(epochs + t)
		}
		uncachedTotal = p.Now() - start
	})
	cl.Sim.Run()

	cachedTotal := loadTime + cachedTrain
	r.addLine("dataset %.1f MB in %d blocks, replication 3, %d/%d reads local",
		dataBytes/1e6, len(file.Blocks), localReads, totalReads)
	r.addLine("load once:            %8.4f s", loadTime)
	r.addLine("%d epochs, cached:     %8.4f s  (total %8.4f s)", epochs, cachedTrain, cachedTotal)
	r.addLine("%d epochs, no cache:   %8.4f s  (%.1fx the cached total)", epochs, uncachedTotal, uncachedTotal/cachedTotal)
	r.addMetric("cache_speedup", uncachedTotal/cachedTotal)
	r.addMetric("local_read_fraction", float64(localReads)/float64(totalReads))
	r.addFile("ext_loading.csv", fmt.Sprintf(
		"metric,value\nload_once_s,%.6f\ncached_epochs_s,%.6f\nuncached_total_s,%.6f\nlocal_reads,%d\ntotal_reads,%d\n",
		loadTime, cachedTrain, uncachedTotal, localReads, totalReads))
	r.addLine("Reading: with in-memory caching the input is read once; without it every epoch")
	r.addLine("pays the full disk scan — Spark's core advantage for iterative ML (paper §III-A).")
	return r, nil
}
