package bench

// Wall-clock cost of the telemetry layer. The obs=off / obs=on sub-runs let
// `make bench` report the recording overhead (mlstar-benchjson derives
// obs_overhead = ns/op(obs=on) / ns/op(obs=off) from the pair); obsevents/op
// reports how many structured events one Figure-4-style run generates.
// Results are bit-identical in both modes — see obs_parity_test.go — so, as
// with the offload pool, these measure time only.

import (
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/obs"
)

// BenchmarkWallClockObs times the regularized MLlib-vs-MLlib* workload of
// Figure 4 with the telemetry sink disabled and enabled.
func BenchmarkWallClockObs(b *testing.B) {
	w := benchWorkload(b)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"obs=off", false}, {"obs=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var events float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var s *obs.Sink
				if mode.on {
					s = obs.Enable()
				}
				for _, sys := range []string{sysMLlib, sysMLlibStar} {
					prm := tuned(sys, "avazu", 0.1)
					prm.MaxSteps = 10
					if _, err := runSystem(sys, clusters.Test(4), w, prm, nil); err != nil {
						obs.Disable()
						b.Fatal(err)
					}
				}
				if mode.on {
					events += float64(s.Len())
					obs.Disable()
				}
			}
			b.StopTimer()
			if mode.on && b.N > 0 {
				b.ReportMetric(events/float64(b.N), "obsevents/op")
			}
		})
	}
}
