package bench

// Telemetry parity: the structured event log (internal/obs) observes the
// simulation but never charges it, so enabling it must not move a single
// bit of any result — final model, counters, convergence curve, simulated
// time, or wire bytes. Each test runs the same training twice, obs off and
// obs on, over the same config matrix as the sparse parity suite, and
// requires full bitwise equality (unlike sparse parity, SimTime and
// TotalBytes are part of the contract here: observation must not shift the
// virtual clock).
//
// The attribution tests pin the paper's diagnosis end to end: replaying an
// MLlib run's event log must attribute the step to the driver (the B1/B2
// single-update, driver-centric bottlenecks), and an MLlib* run must not be
// driver-bound. A committed sample log and golden report keep the
// attribution output byte-stable; regenerate both with
//
//	go test ./internal/bench -run TestObsGoldenAttribution -update

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
	"mllibstar/internal/obs"
	"mllibstar/internal/train"
)

var updateObs = flag.Bool("update", false, "regenerate the committed obs sample logs and golden reports")

// runWithObs runs fn with the telemetry sink enabled or disabled, restoring
// the default (disabled) afterwards, and returns the recorded events.
func runWithObs(on bool, fn func()) []obs.Event {
	if !on {
		fn()
		return nil
	}
	s := obs.Enable()
	defer obs.Disable()
	fn()
	return s.Events()
}

// requireObsIdentical is requireSameResult plus the byte counter: telemetry
// must not change what the network charged either.
func requireObsIdentical(t *testing.T, system string, off, on *train.Result) {
	t.Helper()
	requireSameResult(t, system, off, on)
	if math.Float64bits(off.TotalBytes) != math.Float64bits(on.TotalBytes) {
		t.Errorf("%s: TotalBytes %v (obs off) != %v (obs on)", system, off.TotalBytes, on.TotalBytes)
	}
}

func TestObsBitIdentityTrainers(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		system string
		l2     float64
	}{
		{sysMLlib, 0.1},
		{sysMLlib, 0},
		{sysMAvg, 0.1},
		{sysMLlibStar, 0.1},
		{sysMLlibStar, 0},
		{sysPetuumStar, 0.1},
		{sysPetuumStar, 0},
		{sysAngel, 0.1},
	} {
		prm := tuned(tc.system, "avazu", tc.l2)
		prm.MaxSteps = 8
		run := func() *train.Result {
			res, err := runSystem(tc.system, clusters.Test(4), w, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithObs(false, func() { off = run() })
		events := runWithObs(true, func() { on = run() })
		requireObsIdentical(t, tc.system, off, on)
		if len(events) == 0 {
			t.Errorf("%s: obs-on run recorded no events", tc.system)
		}
	}
}

func TestObsBitIdentityLBFGS(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, allReduce := range []bool{false, true} {
		run := func() *train.Result {
			_, _, ctx := clusters.Test(4).Build(nil)
			parts := w.ds.Partition(4, 3)
			res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
				Objective: glm.LogReg(0.01),
				MaxIters:  6,
				AllReduce: allReduce,
			}, w.eval, w.ds.Name)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithObs(false, func() { off = run() })
		runWithObs(true, func() { on = run() })
		name := "LBFGS-tree"
		if allReduce {
			name = "LBFGS-allreduce"
		}
		requireObsIdentical(t, name, off, on)
	}
}

func TestObsBitIdentitySVRG(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := train.Params{Objective: glm.LogReg(0.01), Eta: 0.1, MaxSteps: 5, EvalEvery: 1, Seed: 7}
	run := func() *train.Result {
		_, _, ctx := clusters.Test(4).Build(nil)
		parts := w.ds.Partition(4, 3)
		res, err := core.TrainSVRG(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var off, on *train.Result
	runWithObs(false, func() { off = run() })
	runWithObs(true, func() { on = run() })
	requireObsIdentical(t, "MLlib*-SVRG", off, on)
}

// TestObsBitIdentitySparse crosses the switches: telemetry must stay
// invisible when the sparse exchange (which re-kinds some trace spans and
// tags encodings on the wire) is active too. The high-dimensional workload
// is the one where the encoder actually picks the sparse form (the preset
// workloads are model-dense, so their deltas stay dense-coded).
func TestObsBitIdentitySparse(t *testing.T) {
	w := highDimWorkload()
	prm := tuned(sysMLlibStar, w.ds.Name, 0.1)
	prm.MaxSteps = 6
	run := func() *train.Result {
		res, err := runSystem(sysMLlibStar, clusters.Test(4), w, prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var off, on *train.Result
	var events []obs.Event
	runWithSparse(true, func() {
		runWithObs(false, func() { off = run() })
		events = runWithObs(true, func() { on = run() })
	})
	requireObsIdentical(t, "MLlib* sparse", off, on)
	var sawSparse bool
	for _, e := range events {
		if e.Enc == obs.EncSparse {
			sawSparse = true
			break
		}
	}
	if !sawSparse {
		t.Error("sparse run logged no sparse-encoded messages")
	}
}

// sampleEvents runs the fixed attribution workload for one system and
// returns its event log: avazu at small scale, l2=0.1, 8 steps, 4 workers —
// the same shape as Figure 4's regularized comparison. Recorded with causal
// enrichment so the committed logs also feed the critical-path and what-if
// goldens; attribution ignores the extra fields.
func sampleEvents(t *testing.T, system string) []obs.Event {
	t.Helper()
	w, err := loadWorkload("avazu", RunConfig{Scale: 20000, EvalCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	prm := tuned(system, "avazu", 0.1)
	prm.MaxSteps = 8
	return runWithCausal(true, func() {
		if _, err := runSystem(system, clusters.Test(4), w, prm, nil); err != nil {
			t.Fatal(err)
		}
	})
}

// TestObsAttributionClassification pins the paper's diagnosis on fresh
// runs: MLlib's per-step critical path is dominated by the driver (B1/B2),
// MLlib*'s is not — its driver share collapses and the step goes to the
// workers' compute and the shuffle exchange.
func TestObsAttributionClassification(t *testing.T) {
	mllib := obs.Attribute(sampleEvents(t, sysMLlib))
	if mllib.DominantCost != "driver" {
		t.Errorf("MLlib: dominant cost %q, want driver\n%s", mllib.DominantCost, mllib.Text())
	}
	if !strings.Contains(mllib.Classification, "B1+B2") {
		t.Errorf("MLlib: classification %q, want a B1+B2 diagnosis", mllib.Classification)
	}

	star := obs.Attribute(sampleEvents(t, sysMLlibStar))
	if star.DominantCost == "driver" {
		t.Errorf("MLlib*: still driver-dominant\n%s", star.Text())
	}
	if star.DriverShare >= mllib.DriverShare {
		t.Errorf("MLlib*: driver share %.3f did not drop below MLlib's %.3f",
			star.DriverShare, mllib.DriverShare)
	}
	// The paradigm shift in update granularity is what the attribution's
	// update-pattern field keys the B1 diagnosis on.
	if mllib.UpdatePattern != "single-update" {
		t.Errorf("MLlib: update pattern %q, want single-update", mllib.UpdatePattern)
	}
	if star.UpdatePattern != "many-local-updates" {
		t.Errorf("MLlib*: update pattern %q, want many-local-updates", star.UpdatePattern)
	}
}

// TestObsGoldenAttribution replays the committed sample logs and requires
// the attribution reports to match their goldens byte for byte. -update
// regenerates both from a fresh deterministic run, so a legitimate engine
// change shows up as a reviewable diff in the committed artifacts.
func TestObsGoldenAttribution(t *testing.T) {
	for _, tc := range []struct {
		system string
		slug   string
	}{
		{sysMLlib, "mllib"},
		{sysMLlibStar, "mllibstar"},
	} {
		eventsPath := filepath.Join("testdata", "obs_events_"+tc.slug+".jsonl")
		goldenPath := filepath.Join("testdata", "obs_report_"+tc.slug+".golden")
		if *updateObs {
			events := sampleEvents(t, tc.system)
			var buf bytes.Buffer
			if err := obs.WriteJSONL(&buf, events); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(eventsPath, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			report := obs.Attribute(events).Text()
			if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		raw, err := os.Open(eventsPath)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		events, err := obs.ReadJSONL(raw)
		raw.Close()
		if err != nil {
			t.Fatal(err)
		}
		got := obs.Attribute(events).Text()
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		if got != string(want) {
			t.Errorf("%s: attribution report drifted from %s:\n--- got ---\n%s--- want ---\n%s",
				tc.system, goldenPath, got, want)
		}
	}
}
