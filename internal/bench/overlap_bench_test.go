package bench

// Virtual-time accounting for the full compute/comm overlap: feature-major
// gradient production feeding the pipelined Reduce-Scatter. `make bench`
// captures the overlap=off/on pair below as sim_speedup_overlap in
// BENCH_9.json, and TestPipelineOverlapSpeedupTarget pins the acceptance
// floor (≥ 2.2×) deterministically in the test tier.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
)

var (
	overlapDSOnce sync.Once
	overlapDS     *data.Dataset
)

// overlapDataset generates (once per process) the workload the overlap
// schedule is built for: a feature space far wider than the example set's
// support — url-scale sparsity (~5e-5 dense) — so the per-superstep gradient
// pass is cheap next to the dim-sized collective that ships it. This is the
// regime where the compute-then-communicate barrier costs the most and
// streaming production pays best.
func overlapDataset() *data.Dataset {
	overlapDSOnce.Do(func() {
		overlapDS = data.Generate(data.Spec{
			Name:      "overlapgd",
			Rows:      800,
			Cols:      120000,
			NNZPerRow: 4,
			ZipfS:     1.7,
			Seed:      29,
		})
	})
	return overlapDS
}

// runOverlapGD trains distributed full-batch gradient descent end to end on
// the simulated cluster: every communication step is one BSP stage in which
// each executor computes its partial loss gradient, AllReduce-averages it
// (allreduce.AverageProduced — degenerating to compute-then-Average when
// overlap is off, streaming feature-major blocks into the chunked
// Reduce-Scatter when it is on), and applies the averaged gradient over the
// dataset's feature support. It is the distilled gradient superstep every
// collective-based trainer in the repo runs — without LBFGS's replicated
// two-loop recursion or SVRG's inner epoch, whose dense optimizer math is
// identical in both schedules and would only dilute the measured ratio.
func runOverlapGD(spec clusters.Spec, ds *data.Dataset, iters int) (final []float64, simTime, bytes float64) {
	k := spec.Executors
	parts := ds.Partition(k, 3)
	dim := ds.Features
	obj := glm.LogReg(0)

	// The averaged loss gradient lives on the union of the partitions'
	// feature columns — a structural property of the dataset, computed once —
	// so the update is charged per support coordinate, not per model
	// coordinate, exactly as a sparse GD implementation would apply it.
	touched := make([]bool, dim)
	for _, e := range ds.Examples {
		for _, j := range e.X.Ind {
			touched[j] = true
		}
	}
	var support []int
	for j, on := range touched {
		if on {
			support = append(support, j)
		}
	}

	sim, cl, ctx := spec.Build(nil)
	locals := make([][]float64, k)
	for i := range locals {
		locals[i] = make([]float64, dim)
	}
	// Mean gradient over all examples: the collective averages the k partial
	// sums, so each executor rescales by k/total before stepping.
	step := 0.5 * float64(k) / float64(len(ds.Examples))
	sim.Spawn("driver:overlap-gd", func(p *des.Proc) {
		for t := 1; t <= iters; t++ {
			tasks := make([]engine.Task, k)
			for i := 0; i < k; i++ {
				i := i
				tasks[i] = engine.Task{
					Exec: cl.Execs[i],
					Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
						partial := make([]float64, dim+1)
						gs := data.NewGradStream(obj, locals[i], parts[i], partial, true, float64(parts[i].NNZ())*2)
						allreduce.AverageProduced(p, ex, cl.Execs, i, fmt.Sprintf("gd%d", t), partial, gs)
						ex.ChargeAsync(p, float64(len(support)), func() {
							for _, j := range support {
								locals[i][j] -= step * partial[j]
							}
						})
						return nil, 0
					},
				}
			}
			ctx.RunStage(p, fmt.Sprintf("gd-%d", t), tasks)
		}
	})
	simTime = sim.Run()
	return locals[0], simTime, cl.Net.TotalBytes()
}

// BenchmarkWallClockOverlap times the comm-bound distributed-GD run under
// both gradient schedules. The cluster is clusters.CommBound — network
// serialization ≈ fold/decode compute — and the workload keeps the gradient
// pass small next to the collective, so the non-pipelined baseline pays
// gradient + fold + wire per superstep while the overlapped schedule pays
// roughly max(compute, comm): chunks ship while later feature blocks are
// still accumulating. The simsec/op ratio of the pair is the
// sim_speedup_overlap figure in BENCH_9.json (acceptance floor: ≥ 2.2).
func BenchmarkWallClockOverlap(b *testing.B) {
	ds := overlapDataset()
	for _, mode := range []struct {
		name string
		on   bool
	}{{"overlap=off", false}, {"overlap=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var bytes, simsec float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runWithOverlap(mode.on, func() {
					_, simsec, bytes = runOverlapGD(clusters.CommBound(4), ds, 8)
				})
			}
			b.ReportMetric(bytes, "commbytes/op")
			b.ReportMetric(simsec, "simsec/op")
		})
	}
}

// TestPipelineOverlapSpeedupTarget pins the acceptance criterion where the
// race-enabled test tier can guard it deterministically: on the comm-bound
// cluster the overlapped schedule must beat the non-pipelined baseline by
// ≥ 2.2× simulated time — while producing bit-identical models and charging
// exactly the same bytes. (BenchmarkWallClockOverlap records the same ratio
// in BENCH_9.json.)
func TestPipelineOverlapSpeedupTarget(t *testing.T) {
	ds := overlapDataset()
	var offW, onW []float64
	var offTime, onTime, offBytes, onBytes float64
	runWithOverlap(false, func() { offW, offTime, offBytes = runOverlapGD(clusters.CommBound(4), ds, 8) })
	runWithOverlap(true, func() { onW, onTime, onBytes = runOverlapGD(clusters.CommBound(4), ds, 8) })
	for j := range offW {
		if math.Float64bits(offW[j]) != math.Float64bits(onW[j]) {
			t.Fatalf("coord %d: overlap-on model %x != overlap-off %x", j,
				math.Float64bits(onW[j]), math.Float64bits(offW[j]))
		}
	}
	if offBytes != onBytes {
		t.Errorf("overlap run charged %g bytes, baseline %g — the schedule must be byte-invariant", onBytes, offBytes)
	}
	ratio := offTime / onTime
	t.Logf("baseline %.6fs, overlapped %.6fs: %.2fx", offTime, onTime, ratio)
	if !(ratio >= 2.2) {
		t.Errorf("overlap sim speedup %.3fx, want >= 2.2x", ratio)
	}
}

// TestCSRKernelFeatMajorZeroAllocs guards the steady state of the CSC block
// pass: once the feature-major mirror is built and pass 1 has run, producing
// every gradient block of a superstep allocates nothing — the property that
// lets the overlapped schedule run inside the collective without disturbing
// wall-clock profiles.
func TestCSRKernelFeatMajorZeroAllocs(t *testing.T) {
	ds := overlapDataset()
	view := ds.Partition(4, 3)[0]
	dim := ds.Features
	w := make([]float64, dim)
	for j := range w {
		w[j] = 0.01 * float64(j%7)
	}
	g := make([]float64, dim+1)
	gs := data.NewGradStream(glm.LogReg(0), w, view, g, true, float64(view.NNZ())*2)
	gs.Prepare()
	const block = 4096
	produceAll := func() {
		for lo := 0; lo < len(g); lo += block {
			hi := lo + block
			if hi > len(g) {
				hi = len(g)
			}
			gs.Produce(lo, hi)
		}
	}
	produceAll() // build the feature-major mirror outside the measured runs
	if allocs := testing.AllocsPerRun(10, produceAll); allocs != 0 {
		t.Errorf("feature-major block pass allocated %.0f times per superstep, want 0", allocs)
	}
}
