package bench

// Overlap-vs-precomputed bit-identity: producing the gradient feature-major
// inside the pipelined collective (-overlap, allreduce.AverageProduced) must
// change nothing but virtual time. The two-pass kernel visits each (row,
// coordinate) pair with the same derivative bits and the same ascending-row
// addition order as the row-major gradient it replaces, and the collective
// ships per-chunk encodings that are byte-for-byte slices of the sequential
// whole-partition encodings — so, like the pipeline switch, overlap-on must
// match overlap-off on every training numeric AND charge exactly the same
// TotalBytes. The crossings here cover the two trainers whose gradient
// collectives stream (LBFGS* and SVRG) against the sparse exchange, the
// slab kernels (GradStream's pass 1 branches on the kernel mode), and the
// offload pool.

import (
	"testing"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
	"mllibstar/internal/train"
)

// runWithOverlap runs fn with overlapped gradient production in the given
// mode and restores the defaults (off) afterwards. Like the -overlap flag,
// on implies the pipelined chunked collective; off leaves both schedules
// off, so the comparison spans the entire overlap stack.
func runWithOverlap(on bool, fn func()) {
	allreduce.Configure(on, 0)
	allreduce.ConfigureOverlap(on)
	defer func() {
		allreduce.ConfigureOverlap(false)
		allreduce.Configure(false, 0)
	}()
	fn()
}

func TestPipelineOverlapBitIdentityLBFGS(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *train.Result {
		_, _, ctx := clusters.Test(4).Build(nil)
		parts := w.ds.Partition(4, 3)
		res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
			Objective: glm.LogReg(0.01),
			MaxIters:  6,
			AllReduce: true,
		}, w.eval, w.ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, sparseOn := range []bool{false, true} {
		for _, kernelsOn := range []bool{true, false} {
			var off, on *train.Result
			cell := func() {
				runWithKernels(kernelsOn, func() {
					runWithOverlap(false, func() { off = run() })
					runWithOverlap(true, func() { on = run() })
				})
			}
			if sparseOn {
				runWithSparse(true, cell)
			} else {
				cell()
			}
			name := "LBFGS-allreduce"
			if sparseOn {
				name += " sparse"
			}
			if !kernelsOn {
				name += " viewpath"
			}
			requirePipelineParity(t, name, off, on)
		}
	}
}

func TestPipelineOverlapBitIdentitySVRG(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := train.Params{Objective: glm.LogReg(0.01), Eta: 0.1, MaxSteps: 5, EvalEvery: 1, Seed: 7}
	run := func() *train.Result {
		_, _, ctx := clusters.Test(4).Build(nil)
		parts := w.ds.Partition(4, 3)
		res, err := core.TrainSVRG(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, sparseOn := range []bool{false, true} {
		var off, on *train.Result
		cell := func() {
			runWithOverlap(false, func() { off = run() })
			runWithOverlap(true, func() { on = run() })
		}
		if sparseOn {
			runWithSparse(true, cell)
		} else {
			cell()
		}
		name := "MLlib*-SVRG"
		if sparseOn {
			name += " sparse"
		}
		requirePipelineParity(t, name, off, on)
	}
}

// TestPipelineOverlapBothPoolModes crosses overlap×par: the overlapped
// schedule charges block production through the same ChargeAsync the
// precomputed pass uses, so with overlap on, par=off and par=on must agree
// on everything including SimTime bits.
func TestPipelineOverlapBothPoolModes(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *train.Result {
		_, _, ctx := clusters.Test(4).Build(nil)
		parts := w.ds.Partition(4, 3)
		res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
			Objective: glm.LogReg(0.01),
			MaxIters:  6,
			AllReduce: true,
		}, w.eval, w.ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var seq, con *train.Result
	runWithOverlap(true, func() {
		runWithPar(false, func() { seq = run() })
		runWithPar(true, func() { con = run() })
	})
	requireSameResult(t, "LBFGS-allreduce overlapped", seq, con)
}
