package bench

// Parallel-vs-sequential bit-identity: the offload pool (internal/par) must
// not change a single bit of any result. Each test runs the same training
// twice — once with the pool disabled (closures run inline, reproducing the
// pre-offload sequential engine exactly) and once with the pool force-enabled
// on 4 workers (closures run concurrently on real OS threads regardless of
// GOMAXPROCS) — and requires the final model, the virtual clock, and the
// whole convergence curve to be byte-for-byte equal.

import (
	"math"
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
	"mllibstar/internal/par"
	"mllibstar/internal/train"
)

// runWithPar runs fn with the offload pool in the given mode and restores the
// default configuration afterwards.
func runWithPar(enabled bool, fn func()) {
	if enabled {
		par.ForceEnable(4)
	} else {
		par.Configure(false, 0)
	}
	defer par.Configure(true, 0)
	fn()
}

// requireSameResult fails unless the two results are bit-identical in every
// numeric output.
func requireSameResult(t *testing.T, system string, seq, con *train.Result) {
	t.Helper()
	if math.Float64bits(seq.SimTime) != math.Float64bits(con.SimTime) {
		t.Errorf("%s: SimTime %v (seq) != %v (par)", system, seq.SimTime, con.SimTime)
	}
	if seq.CommSteps != con.CommSteps || seq.Updates != con.Updates {
		t.Errorf("%s: steps/updates (%d,%d) != (%d,%d)", system,
			seq.CommSteps, seq.Updates, con.CommSteps, con.Updates)
	}
	if len(seq.FinalW) != len(con.FinalW) {
		t.Fatalf("%s: FinalW length %d != %d", system, len(seq.FinalW), len(con.FinalW))
	}
	for j := range seq.FinalW {
		if math.Float64bits(seq.FinalW[j]) != math.Float64bits(con.FinalW[j]) {
			t.Fatalf("%s: FinalW[%d] = %x (seq) != %x (par)", system, j,
				math.Float64bits(seq.FinalW[j]), math.Float64bits(con.FinalW[j]))
		}
	}
	if seqCSV, conCSV := seq.Curve.CSV(true), con.Curve.CSV(true); seqCSV != conCSV {
		t.Errorf("%s: convergence curves differ:\nseq:\n%s\npar:\n%s", system, seqCSV, conCSV)
	}
}

func TestParallelOffloadBitIdentityTrainers(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		system string
		l2     float64
	}{
		{sysMLlib, 0.1},
		{sysMLlib, 0},
		{sysMAvg, 0.1},
		{sysMLlibStar, 0.1},
		{sysMLlibStar, 0},
		{sysPetuumStar, 0.1},
		{sysPetuumStar, 0},
		{sysAngel, 0.1},
	} {
		prm := tuned(tc.system, "avazu", tc.l2)
		prm.MaxSteps = 8
		run := func() *train.Result {
			res, err := runSystem(tc.system, clusters.Test(4), w, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var seq, con *train.Result
		runWithPar(false, func() { seq = run() })
		runWithPar(true, func() { con = run() })
		requireSameResult(t, tc.system, seq, con)
	}
}

func TestParallelOffloadBitIdentityLBFGS(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, allReduce := range []bool{false, true} {
		run := func() *train.Result {
			_, _, ctx := clusters.Test(4).Build(nil)
			parts := w.ds.Partition(4, 3)
			res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
				Objective: glm.LogReg(0.01),
				MaxIters:  6,
				AllReduce: allReduce,
			}, w.eval, w.ds.Name)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var seq, con *train.Result
		runWithPar(false, func() { seq = run() })
		runWithPar(true, func() { con = run() })
		name := "LBFGS-tree"
		if allReduce {
			name = "LBFGS-allreduce"
		}
		requireSameResult(t, name, seq, con)
	}
}

func TestParallelOffloadBitIdentitySVRG(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := train.Params{Objective: glm.LogReg(0.01), Eta: 0.1, MaxSteps: 5, EvalEvery: 1, Seed: 7}
	run := func() *train.Result {
		_, _, ctx := clusters.Test(4).Build(nil)
		parts := w.ds.Partition(4, 3)
		res, err := core.TrainSVRG(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var seq, con *train.Result
	runWithPar(false, func() { seq = run() })
	runWithPar(true, func() { con = run() })
	requireSameResult(t, "MLlib*-SVRG", seq, con)
}

// TestParallelOffloadBitIdentityReport checks the end artifact too: the full
// fig4a experiment must emit byte-identical CSV files either way.
func TestParallelOffloadBitIdentityReport(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	runFig := func() *Report {
		r, err := must(t, "fig4a").Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	var seq, con *Report
	runWithPar(false, func() { seq = runFig() })
	runWithPar(true, func() { con = runFig() })
	if seq.Files["fig4a_curves.csv"] != con.Files["fig4a_curves.csv"] {
		t.Error("fig4a_curves.csv differs between sequential and parallel runs")
	}
	if len(seq.Files["fig4a_curves.csv"]) == 0 {
		t.Error("empty fig4a_curves.csv")
	}
}
