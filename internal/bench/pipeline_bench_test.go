package bench

// Wall-clock and virtual-time accounting for the two data-path changes of
// the pipelined-supersteps work: the chunked AllReduce schedule (virtual
// time) and the CSR arena layout (real time). `make bench` captures both in
// BENCH_5.json: sim_speedup_pipeline from the pipeline=off/on pair below,
// and allocs_per_batch_csr from the layout=csr kernel benchmark — the
// latter guarded at exactly zero by TestCSRBatchZeroAllocs in bench-smoke.

import (
	"math/rand"
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// BenchmarkWallClockPipeline times the comm-bound MLlib* high-dimensional
// run under both superstep schedules. The cluster is clusters.CommBound —
// network serialization ≈ fold/decode compute — so the sequential schedule
// pays roughly compute + comm per superstep and the pipelined one
// max(compute, comm); their simsec/op ratio is the sim_speedup_pipeline
// figure in BENCH_5.json (acceptance floor: ≥ 1.3).
func BenchmarkWallClockPipeline(b *testing.B) {
	w := highDimWorkload()
	for _, mode := range []struct {
		name string
		on   bool
	}{{"pipeline=off", false}, {"pipeline=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var bytes, simsec float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runWithPipeline(mode.on, func() {
					bytes, simsec = 0, 0
					prm := tuned(sysMLlibStar, w.ds.Name, 0.1)
					prm.MaxSteps = 6
					res, err := runSystem(sysMLlibStar, clusters.CommBound(4), w, prm, nil)
					if err != nil {
						b.Fatal(err)
					}
					bytes += res.TotalBytes
					simsec += res.SimTime
				})
			}
			b.ReportMetric(bytes, "commbytes/op")
			b.ReportMetric(simsec, "simsec/op")
		})
	}
}

// csrKernelData builds the same logical dataset twice: once as
// heap-scattered per-row slices (the pre-CSR layout — every row two private
// allocations, interleaved with spacer garbage the way incremental parsing
// leaves them) and once as a CSR arena. Values are bit-identical; only
// memory layout differs.
func csrKernelData() (scattered []glm.Example, arena *data.CSR, model []float64) {
	ds := data.Generate(data.Spec{Name: "csrbench", Rows: 4000, Cols: 20000, NNZPerRow: 12, Seed: 23})
	arena = data.PackExamples(ds.Examples)
	rng := rand.New(rand.NewSource(23))
	spacers := make([][]byte, 0, len(ds.Examples))
	scattered = make([]glm.Example, len(ds.Examples))
	for i, e := range ds.Examples {
		ind := append([]int32(nil), e.X.Ind...)
		val := append([]float64(nil), e.X.Val...)
		// Spacer allocations scatter consecutive rows across the heap.
		spacers = append(spacers, make([]byte, 64+rng.Intn(512)))
		scattered[i] = glm.Example{Label: e.Label, X: vec.Sparse{Ind: ind, Val: val}}
	}
	_ = spacers
	model = make([]float64, ds.Features)
	for i := range model {
		model[i] = rng.NormFloat64()
	}
	return scattered, arena, model
}

// dotSweep is the mini-batch kernel both layouts run: a fused
// dot-and-margin pass over each row, the inner loop of every GLM gradient.
func dotSweep(model []float64, batch []glm.Example) float64 {
	s := 0.0
	for _, e := range batch {
		d, n2 := vec.DotNorm(model, e.X)
		s += e.Label*d + n2
	}
	return s
}

// BenchmarkWallClockCSRBatch compares cache-blocked mini-batch iteration
// over the CSR arena against the same sweep over heap-scattered rows. Run
// with -benchmem: the layout=csr sub-benchmark's allocs/op is the
// allocs_per_batch_csr figure in BENCH_5.json and must be exactly 0.
func BenchmarkWallClockCSRBatch(b *testing.B) {
	scattered, arena, model := csrKernelData()
	batch := arena.BlockRows(0)
	sink := 0.0
	b.Run("layout=rows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(scattered); lo += batch {
				hi := lo + batch
				if hi > len(scattered) {
					hi = len(scattered)
				}
				sink += dotSweep(model, scattered[lo:hi])
			}
		}
	})
	b.Run("layout=csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			arena.Batches(batch, func(rows []glm.Example) {
				sink += dotSweep(model, rows)
			})
		}
	})
	_ = sink
}

// TestCSRBatchZeroAllocs is the bench-smoke guard behind the
// allocs_per_batch_csr = 0 acceptance criterion: a full cache-blocked
// mini-batch pass over a CSR arena — the layout every Partition now returns
// — must not allocate at all.
func TestCSRBatchZeroAllocs(t *testing.T) {
	_, arena, model := csrKernelData()
	batch := arena.BlockRows(0)
	sink := 0.0
	allocs := testing.AllocsPerRun(10, func() {
		arena.Batches(batch, func(rows []glm.Example) {
			sink += dotSweep(model, rows)
		})
	})
	if allocs != 0 {
		t.Errorf("CSR batch pass allocates %.1f times, want 0", allocs)
	}
	_ = sink
}
