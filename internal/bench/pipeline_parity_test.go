package bench

// Pipeline-vs-sequential bit-identity: the pipelined chunked AllReduce
// (allreduce.Configure) must change nothing but virtual time. Chunking
// inherits each partition's encoding decision and the per-chunk fold keeps
// the canonical decode-then-fold order, so — unlike the sparse switch,
// where only a ≤ bound on bytes is meaningful — the pipelined run must
// match the sequential run on every training numeric AND charge exactly
// the same TotalBytes. Each test runs the same training with pipeline=off
// (byte- and bit-identical to the pre-pipeline engine) and pipeline=on,
// across the same trainer configs as the sparse parity suite, plus
// pipeline×sparse and pipeline×par crossings.

import (
	"math"
	"testing"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
	"mllibstar/internal/train"
)

// runWithPipeline runs fn with the pipelined collectives in the given mode
// (at the default chunk count) and restores the default (off) afterwards.
func runWithPipeline(on bool, fn func()) {
	allreduce.Configure(on, 0)
	defer allreduce.Configure(false, 0)
	fn()
}

// requirePipelineParity is requireSameNumerics hardened to the pipeline
// contract: everything bitwise-equal and TotalBytes exactly equal — the
// chunked schedule slices the same encodings the sequential schedule sends,
// so even the modeled payload bytes cannot legitimately move.
func requirePipelineParity(t *testing.T, system string, off, on *train.Result) {
	t.Helper()
	requireSameNumerics(t, system, off, on)
	if off.TotalBytes != on.TotalBytes {
		t.Errorf("%s: pipelined run charged %g bytes, sequential %g — chunking must be byte-invariant",
			system, on.TotalBytes, off.TotalBytes)
	}
}

func TestPipelineBitIdentityTrainers(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		system string
		l2     float64
	}{
		{sysMLlib, 0.1},
		{sysMLlib, 0},
		{sysMAvg, 0.1},
		{sysMLlibStar, 0.1},
		{sysMLlibStar, 0},
		// The parameter-server systems never call the collectives; their
		// parity must hold trivially — included to pin that the switch does
		// not leak into the PS path.
		{sysPetuumStar, 0.1},
		{sysPetuumStar, 0},
		{sysAngel, 0.1},
	} {
		prm := tuned(tc.system, "avazu", tc.l2)
		prm.MaxSteps = 8
		run := func() *train.Result {
			res, err := runSystem(tc.system, clusters.Test(4), w, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithPipeline(false, func() { off = run() })
		runWithPipeline(true, func() { on = run() })
		requirePipelineParity(t, tc.system, off, on)
	}
}

func TestPipelineBitIdentityLBFGS(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, allReduce := range []bool{false, true} {
		run := func() *train.Result {
			_, _, ctx := clusters.Test(4).Build(nil)
			parts := w.ds.Partition(4, 3)
			res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
				Objective: glm.LogReg(0.01),
				MaxIters:  6,
				AllReduce: allReduce,
			}, w.eval, w.ds.Name)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithPipeline(false, func() { off = run() })
		runWithPipeline(true, func() { on = run() })
		name := "LBFGS-tree"
		if allReduce {
			name = "LBFGS-allreduce"
		}
		requirePipelineParity(t, name, off, on)
	}
}

func TestPipelineBitIdentitySVRG(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := train.Params{Objective: glm.LogReg(0.01), Eta: 0.1, MaxSteps: 5, EvalEvery: 1, Seed: 7}
	run := func() *train.Result {
		_, _, ctx := clusters.Test(4).Build(nil)
		parts := w.ds.Partition(4, 3)
		res, err := core.TrainSVRG(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var off, on *train.Result
	runWithPipeline(false, func() { off = run() })
	runWithPipeline(true, func() { on = run() })
	requirePipelineParity(t, "MLlib*-SVRG", off, on)
}

// TestPipelineSparseCrossing crosses the two wire switches: with sparse
// delta exchange on, pipelining must still be numerically invisible and
// byte-exact (the chunked AllGather defers its sends until the adaptive
// encoding decision sees the same fully folded partition the sequential
// path encodes).
func TestPipelineSparseCrossing(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := tuned(sysMLlibStar, "avazu", 0.1)
	prm.MaxSteps = 8
	run := func() *train.Result {
		res, err := runSystem(sysMLlibStar, clusters.Test(4), w, prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var off, on *train.Result
	runWithSparse(true, func() {
		runWithPipeline(false, func() { off = run() })
		runWithPipeline(true, func() { on = run() })
	})
	requirePipelineParity(t, "MLlib* sparse", off, on)
}

// TestPipelineBothPoolModes crosses pipeline×par: the pipelined schedule
// never branches on the offload pool, so with pipelining on, par=off and
// par=on must agree on everything including SimTime bits.
func TestPipelineBothPoolModes(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := tuned(sysMLlibStar, "avazu", 0.1)
	prm.MaxSteps = 8
	run := func() *train.Result {
		res, err := runSystem(sysMLlibStar, clusters.Test(4), w, prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var seq, con *train.Result
	runWithPipeline(true, func() {
		runWithPar(false, func() { seq = run() })
		runWithPar(true, func() { con = run() })
	})
	requireSameResult(t, "MLlib* pipelined", seq, con)
}

// TestPipelineNoSlowdown pins the direction of the time change: on the
// comm-balanced cluster the pipelined schedule must make the high-
// dimensional MLlib* run strictly faster in virtual time, with the ≥1.3×
// target checked where it is recorded (BenchmarkWallClockPipeline →
// BENCH_5.json); here a cheaper smoke threshold keeps the property in the
// race-enabled test tier.
func TestPipelineNoSlowdown(t *testing.T) {
	w := highDimWorkload()
	prm := tuned(sysMLlibStar, "avazu", 0.1)
	prm.MaxSteps = 4
	run := func() *train.Result {
		res, err := runSystem(sysMLlibStar, clusters.CommBound(4), w, prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var off, on *train.Result
	runWithPipeline(false, func() { off = run() })
	runWithPipeline(true, func() { on = run() })
	requirePipelineParity(t, "MLlib* highdim", off, on)
	if math.IsNaN(on.SimTime) || on.SimTime >= off.SimTime {
		t.Errorf("pipelined SimTime %g is not below sequential %g", on.SimTime, off.SimTime)
	}
}
