package bench

import (
	"fmt"

	"mllibstar/internal/angel"
	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/data"
	"mllibstar/internal/engine"
	"mllibstar/internal/mavg"
	"mllibstar/internal/mllib"
	"mllibstar/internal/petuum"
	"mllibstar/internal/trace"
	"mllibstar/internal/train"
)

// Systems understood by runSystem, in the paper's naming.
const (
	sysMLlib      = "MLlib"
	sysMAvg       = "MLlib+MA"
	sysMLlibStar  = "MLlib*"
	sysPetuum     = "Petuum"
	sysPetuumStar = "Petuum*"
	sysAngel      = "Angel"
)

// runSystem executes one training run of the named system on a fresh
// simulated cluster built from spec, optionally recording activity traces.
func runSystem(system string, spec clusters.Spec, w *workload, prm train.Params, rec *trace.Recorder) (*train.Result, error) {
	parts := w.ds.Partition(spec.Executors, 3)
	dim := w.ds.Features
	switch system {
	case sysMLlib, sysMAvg, sysMLlibStar:
		_, _, ctx := spec.Build(rec)
		switch system {
		case sysMLlib:
			return mllib.Train(ctx, parts, dim, prm, w.eval, w.ds.Name)
		case sysMAvg:
			return mavg.Train(ctx, parts, dim, prm, w.eval, w.ds.Name)
		default:
			return core.Train(ctx, parts, dim, prm, w.eval, w.ds.Name)
		}
	case sysPetuum, sysPetuumStar:
		sim, net, names := spec.BuildNet(rec)
		return petuum.Train(sim, net, names, parts, dim, prm, w.eval, w.ds.Name, system == sysPetuum)
	case sysAngel:
		sim, net, names := spec.BuildNet(rec)
		return angel.Train(sim, net, names, parts, dim, prm, w.eval, w.ds.Name)
	}
	return nil, fmt.Errorf("bench: unknown system %q", system)
}

// trainOn runs one of the Spark-side systems on an already-built engine
// context, for experiments that need to inspect the cluster afterwards.
func trainOn(system string, ctx *engine.Context, parts []data.View, w *workload, prm train.Params) (*train.Result, error) {
	switch system {
	case sysMLlib:
		return mllib.Train(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
	case sysMAvg:
		return mavg.Train(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
	case sysMLlibStar:
		return core.Train(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
	}
	return nil, fmt.Errorf("bench: trainOn does not support %q", system)
}

// runTuned runs a system with its tuned (or grid-searched) hyperparameters,
// bounded by the given step/time budget and stopping at the workload's
// 0.01-accuracy-loss target.
func runTuned(system string, spec clusters.Spec, w *workload, l2 float64,
	maxSteps int, maxSimTime float64, cfg RunConfig) (*train.Result, error) {

	prm := tuned(system, w.ds.Name, l2)
	prm.MaxSteps = maxSteps
	prm.MaxSimTime = maxSimTime
	prm.TargetObjective = w.target(l2)
	if maxSteps > 1000 {
		// Keep long baseline runs cheap to evaluate without losing much
		// resolution on steps-to-target.
		prm.EvalEvery = 10
	}
	if cfg.Grid {
		searchSteps := maxSteps / 4
		if searchSteps < 5 {
			searchSteps = 5
		}
		eta, err := gridSearch(func(eta float64) (float64, error) {
			p := prm
			p.Eta = eta
			p.MaxSteps = searchSteps
			p.TargetObjective = 0
			res, err := runSystem(system, spec, w, p, nil)
			if err != nil {
				return 0, err
			}
			return res.Curve.Best(), nil
		})
		if err != nil {
			return nil, err
		}
		prm.Eta = eta
	}
	return runSystem(system, spec, w, prm, nil)
}

// stepBudget returns the communication-step budget for a system: the
// SendGradient baseline and per-batch systems need far more steps than the
// per-epoch systems to have a fair chance at the target.
func stepBudget(system string) int {
	switch system {
	case sysMLlib:
		return 6000
	case sysPetuum, sysPetuumStar:
		return 3000
	case sysAngel:
		return 250
	default:
		return 150
	}
}
