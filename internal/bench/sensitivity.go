package bench

import (
	"fmt"

	"mllibstar/internal/clusters"
)

func init() {
	register(Experiment{
		ID:    "ext-torrent",
		Title: "Extension: TorrentBroadcast for MLlib — how much of B2 is the broadcast half?",
		Run:   runExtTorrent,
	})
	register(Experiment{
		ID:    "ext-speculation",
		Title: "Extension: speculative execution against stragglers (spark.speculation)",
		Run:   runExtSpeculation,
	})
	register(Experiment{
		ID:    "ext-bandwidth",
		Title: "Sensitivity: MLlib* per-step advantage vs network bandwidth",
		Run:   runExtBandwidth,
	})
}

// runExtTorrent decomposes bottleneck B2: the driver serializes both the
// model broadcast (outbound) and the aggregation (inbound). Switching
// MLlib's broadcast to Spark's torrent style fixes the outbound half only;
// the comparison against MLlib* shows how much of the win each half
// contributes.
func runExtTorrent(cfg RunConfig) (*Report, error) {
	bigger := cfg
	bigger.Scale = cfg.scale() / 5 // model-heavy regime, as in ablation-aggregators
	w, err := loadWorkload("kdd12", bigger)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-torrent", Title: "Naive vs torrent broadcast (MLlib), vs MLlib*"}
	csv := "variant,time_per_step_s,driver_sent_bytes\n"
	type variant struct {
		label   string
		system  string
		torrent bool
	}
	for _, v := range []variant{
		{"MLlib, naive broadcast", sysMLlib, false},
		{"MLlib, torrent broadcast", sysMLlib, true},
		{"MLlib* (AllReduce)", sysMLlibStar, false},
	} {
		prm := tuned(v.system, w.ds.Name, 0)
		prm.MaxSteps = 4
		prm.TorrentBroadcast = v.torrent
		_, cl, ctx := clusters.Cluster1(8).Build(nil)
		parts := w.ds.Partition(8, 3)
		res, err := trainOn(v.system, ctx, parts, w, prm)
		if err != nil {
			return nil, err
		}
		_ = cl
		perStep := res.SimTime / float64(res.CommSteps)
		sent := cl.Net.Node("driver").BytesSent()
		r.addLine("%-26s %.4f s/step, driver sent %.1f MB", v.label, perStep, sent/1e6)
		r.addMetric(safeName(v.label)+"_s_per_step", perStep)
		csv += fmt.Sprintf("%s,%.6f,%.0f\n", safeName(v.label), perStep, sent)
	}
	r.addLine("Reading: torrent broadcast removes the outbound half of B2 and narrows the gap;")
	r.addLine("the remaining distance to MLlib* is the aggregation path plus per-stage overhead.")
	r.addFile("ext_torrent.csv", csv)
	return r, nil
}

// runExtBandwidth sweeps the cluster bandwidth and reports the per-step
// advantage of MLlib* over MLlib+MA (same #updates per step, different
// communication pattern): as bandwidth grows, communication stops being the
// bottleneck and the advantage decays toward the fixed-overhead floor —
// locating the regime where the paper's B2 matters.
func runExtBandwidth(cfg RunConfig) (*Report, error) {
	bigger := cfg
	bigger.Scale = cfg.scale() / 5
	w, err := loadWorkload("kdd12", bigger)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-bandwidth", Title: "MLlib* per-step advantage vs bandwidth"}
	csv := "bandwidth_gbps,ma_s_per_step,star_s_per_step,advantage\n"
	for _, gbps := range []float64{0.1, 1, 10, 100} {
		spec := clusters.Cluster1(8)
		spec.Bandwidth = gbps * 125e6
		perStep := map[string]float64{}
		for _, system := range []string{sysMAvg, sysMLlibStar} {
			prm := tuned(system, w.ds.Name, 0)
			prm.MaxSteps = 4
			_, _, ctx := spec.Build(nil)
			parts := w.ds.Partition(8, 3)
			res, err := trainOn(system, ctx, parts, w, prm)
			if err != nil {
				return nil, err
			}
			perStep[system] = res.SimTime / float64(res.CommSteps)
		}
		adv := perStep[sysMAvg] / perStep[sysMLlibStar]
		r.addLine("%6.1f Gbps: MLlib+MA %.4f s/step, MLlib* %.4f s/step — %.1fx advantage",
			gbps, perStep[sysMAvg], perStep[sysMLlibStar], adv)
		r.addMetric(fmt.Sprintf("advantage_%ggbps", gbps), adv)
		csv += fmt.Sprintf("%g,%.6f,%.6f,%.4f\n", gbps, perStep[sysMAvg], perStep[sysMLlibStar], adv)
	}
	r.addLine("Expected shape: the advantage is largest on slow networks and decays as bandwidth")
	r.addLine("grows, bounded below by scheduling overheads — B2 is a communication bottleneck.")
	r.addFile("ext_bandwidth.csv", csv)
	return r, nil
}

// runExtSpeculation evaluates Spark's speculative execution against the
// heterogeneous cluster's stragglers: MLlib with flat aggregation (pure,
// re-runnable gradient tasks) with and without speculation.
func runExtSpeculation(cfg RunConfig) (*Report, error) {
	w, err := loadWorkload("wx", cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ext-speculation", Title: "Speculative execution vs stragglers (MLlib, cluster2)"}
	csv := "speculation_quantile,time_per_step_s\n"
	for _, quantile := range []float64{0, 0.75} {
		spec := clusters.Cluster2(32)
		spec.Engine.SpeculationQuantile = quantile
		// Heavy-tailed stragglers: 8% of tasks run 20x slower — the regime
		// spark.speculation exists for (uniform slowness cannot be helped
		// by re-running, severe rare slowness can).
		spec.Engine.StragglerFactor = 19
		spec.Engine.StragglerProb = 0.08
		prm := tuned(sysMLlib, w.ds.Name, 0)
		prm.MaxSteps = 30
		prm.Aggregators = 32 // flat: tasks are pure and speculatable
		prm.EvalEvery = 10
		_, _, ctx := spec.Build(nil)
		parts := w.ds.Partition(32, 3)
		res, err := trainOn(sysMLlib, ctx, parts, w, prm)
		if err != nil {
			return nil, err
		}
		perStep := res.SimTime / float64(res.CommSteps)
		label := "off"
		if quantile > 0 {
			label = fmt.Sprintf("quantile %.2f", quantile)
		}
		r.addLine("speculation %-14s %.4f s/step", label, perStep)
		r.addMetric(fmt.Sprintf("s_per_step_q%g", quantile), perStep)
		csv += fmt.Sprintf("%g,%.6f\n", quantile, perStep)
	}
	r.addLine("Expected shape: speculation trims the per-step straggler tail (BSP steps are")
	r.addLine("gated by the slowest task; a second copy on a faster node usually wins).")
	r.addFile("ext_speculation.csv", csv)
	return r, nil
}
