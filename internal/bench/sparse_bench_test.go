package bench

// Traffic accounting for the sparse model-delta exchange. The preset
// workloads at test scale are dense in the model dimension (a few dozen
// features, every one touched each step), so the encoder correctly keeps
// choosing the dense form there. The workload here reproduces the regime
// the paper's datasets actually live in — a feature space orders of
// magnitude wider than any one step's support (kddb: 29M features, ~29 nnz
// per row) — where index–value coding pays off.

import (
	"sync"
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/train"
)

var (
	sparseWorkloadOnce sync.Once
	sparseWorkload     *workload
)

// highDimWorkload generates (once per process) a paper-scale-sparsity
// dataset: 80k features, ~8 nonzeros per row, Zipf-skewed feature
// popularity. Any one executor's partition touches a few thousand distinct
// coordinates, so model deltas and gradient partials are ~1-2% dense.
func highDimWorkload() *workload {
	sparseWorkloadOnce.Do(func() {
		ds := data.Generate(data.Spec{
			Name:      "highdim",
			Rows:      1600,
			Cols:      80000,
			NNZPerRow: 8,
			ZipfS:     1.7,
			Seed:      11,
		})
		sparseWorkload = &workload{
			ds:      ds,
			eval:    ds.Subsample(200, 17).Examples,
			refOpts: map[float64]float64{},
		}
	})
	return sparseWorkload
}

// TestSparseTrafficReduction pins the acceptance criterion: on a workload
// at paper-scale sparsity, enabling sparse exchange must cut the simulated
// communication bytes by at least 5x for the shuffle-based systems — while
// leaving every training numeric bit-identical (the virtual clock shrinks;
// see sparse_parity_test.go for why time is excluded).
func TestSparseTrafficReduction(t *testing.T) {
	w := highDimWorkload()
	for _, system := range []string{sysMLlibStar, sysMLlib, sysMAvg} {
		prm := tuned(system, w.ds.Name, 0.1)
		prm.MaxSteps = 6
		run := func() *train.Result {
			res, err := runSystem(system, clusters.Test(4), w, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithSparse(false, func() { off = run() })
		runWithSparse(true, func() { on = run() })
		requireSameNumerics(t, system, off, on)
		if on.TotalBytes <= 0 {
			t.Fatalf("%s: sparse run charged no bytes", system)
		}
		ratio := off.TotalBytes / on.TotalBytes
		t.Logf("%s: %.0f bytes dense, %.0f sparse (%.1fx reduction)",
			system, off.TotalBytes, on.TotalBytes, ratio)
		if ratio < 5 {
			t.Errorf("%s: communication reduced only %.2fx, want >= 5x", system, ratio)
		}
		if on.SimTime >= off.SimTime {
			t.Errorf("%s: fewer bytes (%.0f < %.0f) but no virtual-time win (%.3fs vs %.3fs)",
				system, on.TotalBytes, off.TotalBytes, on.SimTime, off.SimTime)
		}
	}
}

// BenchmarkWallClockSparse times the Figure-4-style MLlib-vs-MLlib* run on
// the high-dimensional workload under both exchange modes and reports the
// simulated traffic and clock alongside wall time, so `make bench` captures
// the communication reduction in BENCH_3.json:
//
//	commbytes/op  simulated bytes on the wire per training run
//	simsec/op     simulated seconds per training run
func BenchmarkWallClockSparse(b *testing.B) {
	w := highDimWorkload()
	for _, mode := range []struct {
		name string
		on   bool
	}{{"sparse=off", false}, {"sparse=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var bytes, simsec float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runWithSparse(mode.on, func() {
					bytes, simsec = 0, 0
					for _, sys := range []string{sysMLlib, sysMLlibStar} {
						prm := tuned(sys, w.ds.Name, 0.1)
						prm.MaxSteps = 6
						res, err := runSystem(sys, clusters.Test(4), w, prm, nil)
						if err != nil {
							b.Fatal(err)
						}
						bytes += res.TotalBytes
						simsec += res.SimTime
					}
				})
			}
			b.ReportMetric(bytes, "commbytes/op")
			b.ReportMetric(simsec, "simsec/op")
		})
	}
}
