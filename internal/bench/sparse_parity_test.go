package bench

// Sparse-vs-dense bit-identity: the sparse model-delta exchange
// (internal/sparse) must not change a single bit of any training numeric —
// only wire bytes and therefore virtual time. Each test runs the same
// training twice — once with sparse exchange off (the dense path, which is
// the default and therefore byte-identical to the pre-sparse engine) and
// once with it on — and requires the final model, the step/update counters,
// and every (step, objective) point of the convergence curve to be
// byte-for-byte equal. Time is deliberately excluded from the comparison:
// shrinking messages shifts the virtual clock, which is the whole point.
//
// The configs below all stop on MaxSteps. Time- or target-stopped runs
// (MaxSimTime, TargetObjective against a time-interpolated table) are not
// valid parity subjects — a faster clock legitimately changes how many
// steps fit — which is why the fig4a report check lives only in the
// offload-parity suite, where the clock is part of the contract.

import (
	"math"
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
	"mllibstar/internal/sparse"
	"mllibstar/internal/train"
)

// runWithSparse runs fn with the sparse exchange in the given mode and
// restores the default (off) afterwards.
func runWithSparse(on bool, fn func()) {
	sparse.Configure(on)
	defer sparse.Configure(false)
	fn()
}

// requireSameNumerics fails unless the two results agree bitwise on every
// training numeric: final model, counters, and the (step, objective) pairs
// of the convergence curve. SimTime and the curve's time column are
// excluded — sparse exchange changes them by design — but the sparse run
// must never charge more wire bytes than the dense run.
func requireSameNumerics(t *testing.T, system string, off, on *train.Result) {
	t.Helper()
	if off.CommSteps != on.CommSteps || off.Updates != on.Updates {
		t.Errorf("%s: steps/updates (%d,%d) off != (%d,%d) on", system,
			off.CommSteps, off.Updates, on.CommSteps, on.Updates)
	}
	if len(off.FinalW) != len(on.FinalW) {
		t.Fatalf("%s: FinalW length %d != %d", system, len(off.FinalW), len(on.FinalW))
	}
	for j := range off.FinalW {
		if math.Float64bits(off.FinalW[j]) != math.Float64bits(on.FinalW[j]) {
			t.Fatalf("%s: FinalW[%d] = %x (off) != %x (on)", system, j,
				math.Float64bits(off.FinalW[j]), math.Float64bits(on.FinalW[j]))
		}
	}
	if len(off.Curve.Points) != len(on.Curve.Points) {
		t.Fatalf("%s: curve has %d points off, %d on", system,
			len(off.Curve.Points), len(on.Curve.Points))
	}
	for i, p := range off.Curve.Points {
		q := on.Curve.Points[i]
		if p.Step != q.Step {
			t.Errorf("%s: point %d at step %d (off) vs %d (on)", system, i, p.Step, q.Step)
		}
		if math.Float64bits(p.Objective) != math.Float64bits(q.Objective) {
			t.Errorf("%s: objective at step %d = %x (off) != %x (on)", system, p.Step,
				math.Float64bits(p.Objective), math.Float64bits(q.Objective))
		}
	}
	if on.TotalBytes > off.TotalBytes {
		t.Errorf("%s: sparse run charged more bytes (%g) than dense (%g)",
			system, on.TotalBytes, off.TotalBytes)
	}
}

func TestSparseExchangeBitIdentityTrainers(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		system string
		l2     float64
	}{
		{sysMLlib, 0.1},
		{sysMLlib, 0},
		{sysMAvg, 0.1},
		{sysMLlibStar, 0.1},
		{sysMLlibStar, 0},
		// The parameter-server systems keep dense wire charging (see
		// internal/sparse: SSP numerics are arrival-order dependent, so
		// changing message timing would change training results). Their
		// parity must hold trivially — included to pin that the switch
		// really does not leak into the PS path.
		{sysPetuumStar, 0.1},
		{sysPetuumStar, 0},
		{sysAngel, 0.1},
	} {
		prm := tuned(tc.system, "avazu", tc.l2)
		prm.MaxSteps = 8
		run := func() *train.Result {
			res, err := runSystem(tc.system, clusters.Test(4), w, prm, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithSparse(false, func() { off = run() })
		runWithSparse(true, func() { on = run() })
		requireSameNumerics(t, tc.system, off, on)
	}
}

func TestSparseExchangeBitIdentityLBFGS(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, allReduce := range []bool{false, true} {
		run := func() *train.Result {
			_, _, ctx := clusters.Test(4).Build(nil)
			parts := w.ds.Partition(4, 3)
			res, err := lbfgs.TrainDistributed(ctx, parts, w.ds.Features, lbfgs.DistConfig{
				Objective: glm.LogReg(0.01),
				MaxIters:  6,
				AllReduce: allReduce,
			}, w.eval, w.ds.Name)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		var off, on *train.Result
		runWithSparse(false, func() { off = run() })
		runWithSparse(true, func() { on = run() })
		name := "LBFGS-tree"
		if allReduce {
			name = "LBFGS-allreduce"
		}
		requireSameNumerics(t, name, off, on)
	}
}

func TestSparseExchangeBitIdentitySVRG(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := train.Params{Objective: glm.LogReg(0.01), Eta: 0.1, MaxSteps: 5, EvalEvery: 1, Seed: 7}
	run := func() *train.Result {
		_, _, ctx := clusters.Test(4).Build(nil)
		parts := w.ds.Partition(4, 3)
		res, err := core.TrainSVRG(ctx, parts, w.ds.Features, prm, w.eval, w.ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var off, on *train.Result
	runWithSparse(false, func() { off = run() })
	runWithSparse(true, func() { on = run() })
	requireSameNumerics(t, "MLlib*-SVRG", off, on)
}

// TestSparseExchangeBothPoolModes crosses the two switches: the sparse path
// must stay bit-identical whether closures run inline or on the offload
// pool (the canonical ascending-sender fold order is what makes this hold).
func TestSparseExchangeBothPoolModes(t *testing.T) {
	cfg := RunConfig{Scale: 20000, EvalCap: 200}
	w, err := loadWorkload("avazu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	prm := tuned(sysMLlibStar, "avazu", 0.1)
	prm.MaxSteps = 8
	run := func() *train.Result {
		res, err := runSystem(sysMLlibStar, clusters.Test(4), w, prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var seq, con *train.Result
	runWithSparse(true, func() {
		runWithPar(false, func() { seq = run() })
		runWithPar(true, func() { con = run() })
	})
	requireSameResult(t, "MLlib* sparse", seq, con)
}
