package bench

// Wall-clock benchmarks for the offload layer and the allocation-optimized
// kernels. Each trainer benchmark has par=off / par=on sub-runs so
// `make bench` can report the speedup of the deterministic compute offload
// over the sequential engine (on a single-CPU host the two are expected to
// tie, since Configure falls back to inline execution; the parallel path is
// still exercised via par.ForceEnable). Results are identical bit-for-bit in
// both modes — see parity_test.go — so these measure time only.

import (
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/glm"
	"mllibstar/internal/opt"
	"mllibstar/internal/par"
)

// benchWorkload returns the shared small avazu workload used by the
// wall-clock benchmarks.
func benchWorkload(b *testing.B) *workload {
	b.Helper()
	w, err := loadWorkload("avazu", RunConfig{Scale: 20000, EvalCap: 200})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// runParModes runs body once per b.N under each offload mode as a sub-run.
func runParModes(b *testing.B, body func(b *testing.B)) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"par=off", false}, {"par=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.on {
				par.ForceEnable(4)
			} else {
				par.Configure(false, 0)
			}
			defer par.Configure(true, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body(b)
			}
		})
	}
}

// BenchmarkWallClockFig4 times the regularized MLlib-vs-MLlib* workload of
// Figure 4 (both systems, a few communication steps each).
func BenchmarkWallClockFig4(b *testing.B) {
	w := benchWorkload(b)
	runParModes(b, func(b *testing.B) {
		for _, sys := range []string{sysMLlib, sysMLlibStar} {
			prm := tuned(sys, "avazu", 0.1)
			prm.MaxSteps = 10
			if _, err := runSystem(sys, clusters.Test(4), w, prm, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWallClockFig5 times the unregularized parameter-server comparison
// of Figure 5 (MLlib*, Petuum*, Angel).
func BenchmarkWallClockFig5(b *testing.B) {
	w := benchWorkload(b)
	runParModes(b, func(b *testing.B) {
		for _, sys := range []string{sysMLlibStar, sysPetuumStar, sysAngel} {
			prm := tuned(sys, "avazu", 0)
			prm.MaxSteps = 10
			if _, err := runSystem(sys, clusters.Test(4), w, prm, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWallClockSuperstep times a single MLlib* communication step — one
// BSP stage of local passes plus AllReduce — the unit the offload layer
// parallelizes across executors.
func BenchmarkWallClockSuperstep(b *testing.B) {
	w := benchWorkload(b)
	prm := tuned(sysMLlibStar, "avazu", 0.1)
	prm.MaxSteps = 1
	runParModes(b, func(b *testing.B) {
		if _, err := runSystem(sysMLlibStar, clusters.Test(8), w, prm, nil); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkWallClockKernels times one mini-batch gradient step in the dense
// formulation (fresh dim-sized gradient buffer per step) against the
// sparse-accumulator formulation used by the hot path, which touches only
// the batch's nonzero coordinates. The two are bit-identical (see
// internal/opt/accum_test.go); allocs/op is the headline number here.
func BenchmarkWallClockKernels(b *testing.B) {
	w := benchWorkload(b)
	dim := w.ds.Features
	batch := w.ds.Examples
	if len(batch) > 256 {
		batch = batch[:256]
	}
	obj := glm.SVM(0) // None regularization: the sparse-update fast path
	b.Run("MGDStep/dense", func(b *testing.B) {
		model := make([]float64, dim)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opt.MGDStep(obj, model, batch, 0.1, nil)
		}
	})
	b.Run("MGDStep/accum", func(b *testing.B) {
		model := make([]float64, dim)
		accum := opt.NewSparseAccum(dim)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opt.MGDStepAccum(obj, model, batch, 0.1, accum)
		}
	})
}

// TestKernelAllocReduction pins the acceptance criterion: the accumulator
// step must allocate at least 30% less than the dense step.
func TestKernelAllocReduction(t *testing.T) {
	w, err := loadWorkload("avazu", RunConfig{Scale: 20000, EvalCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	dim := w.ds.Features
	batch := w.ds.Examples
	if len(batch) > 256 {
		batch = batch[:256]
	}
	obj := glm.SVM(0)
	dense := testing.AllocsPerRun(50, func() {
		model := make([]float64, dim)
		opt.MGDStep(obj, model, batch, 0.1, nil)
	})
	accum := opt.NewSparseAccum(dim)
	sparse := testing.AllocsPerRun(50, func() {
		model := make([]float64, dim)
		opt.MGDStepAccum(obj, model, batch, 0.1, accum)
	})
	if sparse > 0.7*dense {
		t.Errorf("accum step allocates %.1f/op vs dense %.1f/op; want >=30%% reduction", sparse, dense)
	}
}
