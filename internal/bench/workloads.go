package bench

import (
	"fmt"
	"sync"

	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/opt"
	"mllibstar/internal/train"
)

// workload is a prepared dataset: generated examples, partitions per
// cluster size (computed on demand), evaluation subsample, and the
// reference optimum per objective.
type workload struct {
	ds      *data.Dataset
	eval    []glm.Example
	refOpts map[float64]float64 // l2 -> reference optimum on the eval set
}

// workloadCache avoids regenerating datasets across experiments in one
// process (bench runs touch the same presets repeatedly).
var (
	workloadMu    sync.Mutex
	workloadCache = map[string]*workload{}
)

// loadWorkload generates (or retrieves) a preset dataset at the configured
// scale.
func loadWorkload(name string, cfg RunConfig) (*workload, error) {
	key := fmt.Sprintf("%s@%g/%d", name, cfg.scale(), cfg.evalCap())
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloadCache[key]; ok {
		return w, nil
	}
	spec, err := data.Preset(name, cfg.scale())
	if err != nil {
		return nil, err
	}
	ds := data.Generate(spec)
	w := &workload{
		ds:      ds,
		eval:    ds.Subsample(cfg.evalCap(), 17).Examples,
		refOpts: map[float64]float64{},
	}
	workloadCache[key] = w
	return w, nil
}

// reference returns (caching) the reference optimum for SVM with the given
// L2 strength, computed on the evaluation subsample.
func (w *workload) reference(l2 float64) float64 {
	if v, ok := w.refOpts[l2]; ok {
		return v
	}
	v := opt.ReferenceOptimumOn(glm.SVM(l2), w.ds.Examples, w.eval, w.ds.Features, 40)
	w.refOpts[l2] = v
	return v
}

// target is the paper's success criterion: optimum + 0.01 accuracy loss.
func (w *workload) target(l2 float64) float64 {
	return w.reference(l2) + 0.01
}

// tuned returns the default hyperparameters for a system on a dataset —
// the stand-in for the paper's grid search. Values were calibrated once on
// the scaled presets; enable RunConfig.Grid to re-search.
func tuned(system, dataset string, l2 float64) train.Params {
	prm := train.Params{
		Objective: glm.SVM(l2),
		Decay:     true,
		EvalEvery: 1,
		Seed:      7,
	}
	switch system {
	case "MLlib":
		prm.BatchFraction = 0.1
		if l2 > 0 {
			// Strong convexity from the L2 term: moderate rates converge.
			prm.Eta = 4.0
		} else {
			// One batch-averaged update per step on a hinge objective needs
			// rates that scale with the problem size (found by grid search
			// on the scaled presets, as the paper grid-searched at full
			// scale).
			prm.Eta = map[string]float64{
				"avazu": 12, "url": 8, "kddb": 8, "kdd12": 96, "wx": 48,
			}[dataset]
			if prm.Eta == 0 {
				prm.Eta = 12
			}
		}
	case "MLlib+MA", "MLlib*":
		if l2 > 0 {
			prm.Eta = 0.1
		} else {
			prm.Eta = 0.3
		}
	case "Petuum", "Petuum*":
		prm.Eta = 1.0
		prm.Staleness = 1
		if l2 > 0 {
			// With L2, each per-batch communication carries one dense
			// update; the grid prefers small batches for progress per pass,
			// which is what makes Petuum* slow here (paper §V-B).
			prm.BatchFraction = 0.01
		} else {
			prm.BatchFraction = 0.25
		}
	case "Angel":
		if l2 > 0 {
			prm.Eta = 1.0
			prm.BatchFraction = 0.05
		} else {
			// Dense batch-GD updates need aggressive rates, like MLlib's.
			prm.Eta = 10
			prm.BatchFraction = 0.01
		}
	default:
		panic("bench: unknown system " + system)
	}
	return prm
}

// etaGrid is the search grid used when RunConfig.Grid is set.
var etaGrid = []float64{1.0, 0.3, 0.1, 0.03}

// gridSearch runs the trial function for each eta over a short budget and
// returns the eta whose best objective is lowest.
func gridSearch(trial func(eta float64) (best float64, err error)) (float64, error) {
	bestEta, bestObj := etaGrid[0], 0.0
	first := true
	for _, eta := range etaGrid {
		obj, err := trial(eta)
		if err != nil {
			return 0, err
		}
		if first || obj < bestObj {
			bestEta, bestObj, first = eta, obj, false
		}
	}
	return bestEta, nil
}
