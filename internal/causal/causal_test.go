package causal

import (
	"math"
	"strings"
	"testing"

	"mllibstar/internal/obs"
)

// synthEvents builds a minimal causally-enriched log: a compute span on host
// a, a message a→b (send 1e4 bytes at 1e8 B/s = 100µs, 100µs propagation,
// 100µs in-NIC), and a compute span on b — a four-node chain.
func synthEvents() []obs.Event {
	return []obs.Event{
		{Phase: obs.PhaseCausalSpec, Note: "latency=0.0001;overhead=0"},
		{Phase: obs.PhaseCausalSpec, Node: "a", Note: "rate=1e9;sbw=1e8;rbw=1e8"},
		{Phase: obs.PhaseCausalSpec, Node: "b", Note: "rate=1e9;sbw=1e8;rbw=1e8"},
		{Phase: obs.PhaseCompute, Node: "a", Proc: "w#1", Start: 0, End: 0.001},
		{Phase: obs.PhaseReduceScatter, Node: "a", Proc: "w#1", Dir: obs.DirSend, Chan: obs.ChanShuffle,
			Enc: obs.EncDense, Bytes: 1e4, Start: 0.001, End: 0.0011, MID: 1, Note: "xch:rs:s1"},
		{Phase: obs.PhaseReduceScatter, Node: "b", Proc: "x#1", Dir: obs.DirRecv, Chan: obs.ChanShuffle,
			Enc: obs.EncDense, Bytes: 1e4, Start: 0.0012, End: 0.0013, MID: 1, Note: "xch:rs:s1"},
		{Phase: obs.PhaseCompute, Node: "b", Proc: "x#1", Start: 0.0013, End: 0.0023},
	}
}

func TestBuildRejectsUnenrichedLog(t *testing.T) {
	events := []obs.Event{
		{Phase: obs.PhaseCompute, Node: "a", Start: 0, End: 1},
		{Phase: obs.PhaseCompute, Node: "b", Start: 1, End: 2},
	}
	if _, err := Build(events); err == nil {
		t.Fatal("Build accepted a log with no causal enrichment")
	}
}

func TestSynthChainGraph(t *testing.T) {
	g, err := Analyze(synthEvents())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 4 {
		t.Fatalf("%d nodes, want 4", len(g.Nodes))
	}
	if g.Latency != 0.0001 || g.Overhead != 0 {
		t.Fatalf("network config latency=%g overhead=%g", g.Latency, g.Overhead)
	}
	if sp := g.Specs["a"]; sp.Rate != 1e9 || sp.SendBW != 1e8 || sp.RecvBW != 1e8 {
		t.Fatalf("spec a = %+v", sp)
	}
	if mk := g.Makespan(); math.Abs(mk-0.0023) > 1e-12 {
		t.Fatalf("makespan %g, want 0.0023", mk)
	}

	p := CriticalPath(g)
	if len(p.Steps) != 4 {
		t.Fatalf("%d path steps, want 4", len(p.Steps))
	}
	if math.Abs(p.Busy-0.0022) > 1e-12 || math.Abs(p.Latency-0.0001) > 1e-12 || math.Abs(p.Wait) > 1e-12 {
		t.Fatalf("decomposition busy=%g latency=%g wait=%g", p.Busy, p.Latency, p.Wait)
	}
	if sum := p.Busy + p.Latency + p.Wait; math.Abs(sum-p.Makespan) > 1e-12 {
		t.Fatalf("decomposition %g does not telescope to makespan %g", sum, p.Makespan)
	}
	phase, driver := p.Dominant()
	if phase != obs.PhaseCompute || driver != 0 {
		t.Fatalf("dominant = (%q, %g), want (compute, 0)", phase, driver)
	}
	if txt := p.Text(10); !strings.Contains(txt, "critical path") || !strings.Contains(txt, "compute") {
		t.Fatalf("report missing expected sections:\n%s", txt)
	}
}

func TestSynthRetimeScenarios(t *testing.T) {
	g, err := Analyze(synthEvents())
	if err != nil {
		t.Fatal(err)
	}
	mk := g.Makespan()
	for _, tc := range []struct {
		sc   Scenario
		want float64
	}{
		// Identity reproduces the recorded schedule exactly.
		{Scenario{Name: "identity"}, mk},
		// Halving comm halves both NIC services: -100µs.
		{Scenario{Name: "comm", CommScale: 0.5}, 0.0022},
		// Halving compute halves both spans: -1ms.
		{Scenario{Name: "compute", ComputeScale: 0.5}, 0.0013},
		// Halving latency halves the propagation lag: -50µs.
		{Scenario{Name: "latency", LatencyScale: 0.5}, 0.00225},
		// No driver-prefixed host: driver=0 changes nothing.
		{Scenario{Name: "driver", DriverZero: true}, mk},
	} {
		pr := Retime(g, tc.sc)
		if pr.Err != "" {
			t.Fatalf("%s: %s", tc.sc.Name, pr.Err)
		}
		if math.Abs(pr.Makespan-tc.want) > 1e-12 {
			t.Errorf("%s: makespan %g, want %g", tc.sc.Name, pr.Makespan, tc.want)
		}
	}
	if bits := math.Float64bits(Retime(g, Scenario{}).Makespan); bits != math.Float64bits(mk) {
		t.Errorf("identity retime is not bit-exact: %x != %x", bits, math.Float64bits(mk))
	}
}

// TestBarrierRouting pins the barrier resolution rule: the critical path
// routes through the slowest arrival, and the decomposition still telescopes.
func TestBarrierRouting(t *testing.T) {
	events := []obs.Event{
		{Phase: obs.PhaseCompute, Node: "a", Proc: "w#1", Start: 0, End: 0.001},
		{Phase: obs.PhaseCompute, Node: "b", Proc: "x#1", Start: 0, End: 0.003},
		{Phase: obs.PhaseCausalBarrier, Node: "a", Proc: "w#1", Grp: "clock@0", Start: 0.001, End: 0.003},
		{Phase: obs.PhaseCausalBarrier, Node: "b", Proc: "x#1", Grp: "clock@0", Start: 0.003, End: 0.003},
		{Phase: obs.PhaseCompute, Node: "a", Proc: "w#1", Start: 0.003, End: 0.004},
	}
	g, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	p := CriticalPath(g)
	if math.Abs(p.Makespan-0.004) > 1e-12 {
		t.Fatalf("makespan %g, want 0.004", p.Makespan)
	}
	if sum := p.Busy + p.Latency + p.Wait; math.Abs(sum-p.Makespan) > 1e-12 {
		t.Fatalf("decomposition %g does not telescope to %g", sum, p.Makespan)
	}
	// The path must route a.compute(2) <- barrier <- b.compute, not a.compute(1).
	var hosts []string
	for _, s := range p.Steps {
		hosts = append(hosts, p.G.Nodes[s.Node].Host+":"+p.G.Nodes[s.Node].Kind.String())
	}
	got := strings.Join(hosts, " ")
	if !strings.Contains(got, "b:span") || !strings.Contains(got, "barrier") {
		t.Fatalf("path %q does not route through the slowest barrier member", got)
	}
	id := Retime(g, Scenario{})
	if math.Float64bits(id.Makespan) != math.Float64bits(0.004) {
		t.Fatalf("identity retime %g, want 0.004", id.Makespan)
	}
	// Speeding b up moves the release earlier; a's second span follows.
	fast := Retime(g, Scenario{ComputeScale: 0.5})
	if math.Abs(fast.Makespan-0.002) > 1e-12 {
		t.Fatalf("compute x0.5 makespan %g, want 0.002", fast.Makespan)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := synthEvents()
	mutate := func(fn func(events []obs.Event)) error {
		events := append([]obs.Event(nil), base...)
		fn(events)
		g, err := Build(events)
		if err != nil {
			return err
		}
		return Validate(g)
	}
	if err := mutate(func(events []obs.Event) {}); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	for name, fn := range map[string]func([]obs.Event){
		"recv before wire":  func(e []obs.Event) { e[5].Start, e[5].End = 0.00105, 0.00115 },
		"unmatched recv":    func(e []obs.Event) { e[5].MID = 99 },
		"inverted span":     func(e []obs.Event) { e[3].Start, e[3].End = 0.001, 0 },
		"non-finite span":   func(e []obs.Event) { e[3].End = math.NaN() },
		"chain overlap":     func(e []obs.Event) { e[6].Start = 0.0005 },
		"duplicate mid":     func(e []obs.Event) { e[4].MID = 1; e[3] = e[5] },
	} {
		if err := mutate(fn); err == nil {
			t.Errorf("%s: Validate accepted the corrupted log", name)
		}
	}
}
