package causal

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mllibstar/internal/obs"
)

// PathStep is one node on the critical path together with how it was gated.
// Busy is the node's service time on the path; Latency is the propagation
// lag of the message edge that gated it (zero otherwise); Wait is the gap
// between the gating predecessor's readiness and the node's busy start —
// exogenous time (pacing, timers, startup) no predecessor explains.
type PathStep struct {
	Node    int
	Busy    float64
	Latency float64
	Wait    float64
	Via     string // "proc", "msg", "nic", "barrier", "start"
}

// Path is a critical path through the graph: the chain of occurrences whose
// busy times, message latencies, and exogenous waits sum exactly to the
// makespan. Steps run in time order.
type Path struct {
	G        *Graph
	Steps    []PathStep
	Makespan float64
	Busy     float64
	Latency  float64
	Wait     float64
}

// CriticalPath extracts the critical path: starting from the node that ends
// last, it repeatedly walks to the gating predecessor — the one whose
// readiness determined the node's busy start. Barrier members route to the
// slowest member of their generation, whose arrival set the release time.
// The decomposition telescopes: Makespan = Busy + Latency + Wait exactly
// (up to float association), which TestCritPathAccounting pins.
func CriticalPath(g *Graph) *Path {
	p := &Path{G: g}
	if len(g.Nodes) == 0 {
		return p
	}
	end := g.Nodes[0]
	for _, n := range g.Nodes[1:] {
		if n.End > end.End {
			end = n
		}
	}
	p.Makespan = end.End

	onPath := make([]bool, len(g.Nodes)) // cycle guard; Validate proves acyclic, fuzz inputs may not be validated
	var rev []PathStep
	n := end
	for n != nil && !onPath[n.ID] {
		onPath[n.ID] = true
		if n.Kind == KindBarrier {
			// The release is the slowest member's arrival: if that is some
			// other member, hop to it; either way, continue from the slowest
			// member's own gating (its arrival is a plain chain-gated start).
			m := n
			for _, id := range g.Groups[n.Grp] {
				c := g.Nodes[id]
				//mlstar:nolint floateq -- exact compare intentional: equal arrivals fall through to the id tie-break
				if c.Start > m.Start || (c.Start == m.Start && c.ID < m.ID) {
					m = c
				}
			}
			if m.ID != n.ID {
				rev = append(rev, PathStep{Node: n.ID, Via: "barrier"})
				n = m
				continue
			}
		}
		step := PathStep{Node: n.ID, Busy: n.Dur}
		// The gating predecessor: the latest-ready among causal preds and,
		// for message nodes, the previous occupant of the NIC.
		gate := math.Inf(-1)
		var next *Node
		for _, e := range n.Preds {
			ready := g.Nodes[e.From].End + e.Lag
			//mlstar:nolint floateq -- exact compare intentional: equal readiness falls through to the id tie-break
			if ready > gate || (ready == gate && next != nil && e.From < next.ID) {
				gate, next = ready, g.Nodes[e.From]
				if e.Lag > 0 {
					step.Via, step.Latency = "msg", e.Lag
				} else {
					step.Via, step.Latency = "proc", 0
				}
			}
		}
		if n.ResPred >= 0 {
			if ready := g.Nodes[n.ResPred].End; ready > gate {
				gate, next = ready, g.Nodes[n.ResPred]
				step.Via, step.Latency = "nic", 0
			}
		}
		if next == nil {
			step.Via = "start"
			step.Wait = n.BusyStart()
		} else {
			step.Wait = math.Max(0, n.BusyStart()-gate)
		}
		rev = append(rev, step)
		n = next
	}
	for i := len(rev) - 1; i >= 0; i-- {
		s := rev[i]
		p.Steps = append(p.Steps, s)
		p.Busy += s.Busy
		p.Latency += s.Latency
		p.Wait += s.Wait
	}
	return p
}

// share is one attribution bucket of the path summary.
type share struct {
	Key     string
	Seconds float64
	Count   int
}

func shareTable(m map[string]*share) []*share {
	out := make([]*share, 0, len(m))
	for _, s := range m { //mlstar:nolint determinism -- entries are fully sorted immediately below
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool {
		//mlstar:nolint floateq -- exact compare intentional: equal shares fall through to the key tie-break
		if out[a].Seconds != out[b].Seconds {
			return out[a].Seconds > out[b].Seconds
		}
		return out[a].Key < out[b].Key
	})
	return out
}

func bump(m map[string]*share, key string, sec float64) {
	s := m[key]
	if s == nil {
		s = &share{Key: key}
		m[key] = s
	}
	s.Seconds += sec
	s.Count++
}

// run is a maximal stretch of consecutive path steps sharing one label
// (host + phase + note), the unit the top-segments table ranks.
type run struct {
	Label      string
	Start, End float64
	Seconds    float64 // busy+latency+wait contributed to the path
	Steps      int
}

func (p *Path) label(n *Node) string {
	switch n.Kind {
	case KindSend, KindRecv:
		note := n.Note
		if i := strings.IndexByte(note, '.'); i >= 0 && strings.HasPrefix(note[i:], ".c") {
			note = note[:i] + ".c*" // collapse per-chunk tags into one segment label
		}
		return fmt.Sprintf("%-7s %s %s [%s]", n.Host, n.Kind, note, n.Chan)
	case KindBarrier:
		grp := n.Grp
		if i := strings.IndexByte(grp, '@'); i >= 0 {
			grp = grp[:i]
		}
		return fmt.Sprintf("%-7s barrier %s", n.Host, grp)
	default:
		note := n.Note
		if note != "" {
			note = " " + note
		}
		return fmt.Sprintf("%-7s %s%s", n.Host, n.Phase, note)
	}
}

// Runs merges consecutive steps with equal labels.
func (p *Path) Runs() []run {
	var runs []run
	for _, s := range p.Steps {
		n := p.G.Nodes[s.Node]
		lab := p.label(n)
		sec := s.Busy + s.Latency + s.Wait
		if len(runs) > 0 && runs[len(runs)-1].Label == lab {
			r := &runs[len(runs)-1]
			r.Seconds += sec
			r.End = n.End
			r.Steps++
			continue
		}
		runs = append(runs, run{Label: lab, Start: n.BusyStart(), End: n.End, Seconds: sec, Steps: 1})
	}
	return runs
}

// Text renders the path summary: the exact makespan decomposition, the
// phase/host/channel shares of busy time along the path, and the topN
// heaviest merged segments in time order. Deterministic for a given log.
func (p *Path) Text(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: makespan %.6fs over %d nodes (%d on path)\n",
		p.Makespan, len(p.G.Nodes), len(p.Steps))
	pct := func(x float64) float64 {
		if p.Makespan == 0 {
			return 0
		}
		return 100 * x / p.Makespan
	}
	fmt.Fprintf(&b, "  busy %.6fs (%.1f%%) + latency %.6fs (%.1f%%) + wait %.6fs (%.1f%%)\n",
		p.Busy, pct(p.Busy), p.Latency, pct(p.Latency), p.Wait, pct(p.Wait))

	phases := map[string]*share{}
	hosts := map[string]*share{}
	chans := map[string]*share{}
	for _, s := range p.Steps {
		if s.Busy == 0 && s.Latency == 0 && s.Wait == 0 {
			continue
		}
		n := p.G.Nodes[s.Node]
		sec := s.Busy + s.Latency + s.Wait
		bump(phases, string(n.Phase), sec)
		bump(hosts, n.Host, sec)
		if n.Kind == KindSend || n.Kind == KindRecv {
			bump(chans, string(n.Chan), sec)
		}
	}
	section := func(title string, m map[string]*share) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(&b, "%s:\n", title)
		for _, s := range shareTable(m) {
			fmt.Fprintf(&b, "  %-16s %12.6fs %5.1f%%  x%d\n", s.Key, s.Seconds, pct(s.Seconds), s.Count)
		}
	}
	section("path share by phase", phases)
	section("path share by host", hosts)
	section("path share by channel", chans)

	runs := p.Runs()
	order := make([]int, len(runs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := runs[order[a]], runs[order[b]]
		//mlstar:nolint floateq -- exact compare intentional: equal weights fall through to the position tie-break
		if ra.Seconds != rb.Seconds {
			return ra.Seconds > rb.Seconds
		}
		return order[a] < order[b]
	})
	if topN > len(order) {
		topN = len(order)
	}
	top := append([]int(nil), order[:topN]...)
	sort.Ints(top) // display in time order
	if len(top) > 0 {
		fmt.Fprintf(&b, "top %d path segments (of %d, time order):\n", len(top), len(runs))
		for _, i := range top {
			r := runs[i]
			fmt.Fprintf(&b, "  [%12.6f %12.6f] %10.6fs %5.1f%%  x%-4d %s\n",
				r.Start, r.End, r.Seconds, pct(r.Seconds), r.Steps, r.Label)
		}
	}
	return b.String()
}

// Dominant returns the phase with the largest share of path time — the
// message-granularity counterpart of obs.Attribute's verdict. Driver-hosted
// busy time is reported separately so the paper's B1/B2 diagnosis (driver
// incast) is directly readable.
func (p *Path) Dominant() (phase obs.Phase, driverShare float64) {
	phases := map[string]*share{}
	var driver float64
	for _, s := range p.Steps {
		n := p.G.Nodes[s.Node]
		sec := s.Busy + s.Latency + s.Wait
		bump(phases, string(n.Phase), sec)
		if strings.HasPrefix(n.Host, "driver") {
			driver += sec
		}
	}
	t := shareTable(phases)
	if len(t) == 0 {
		return "", 0
	}
	if p.Makespan > 0 {
		driverShare = driver / p.Makespan
	}
	return obs.Phase(t[0].Key), driverShare
}
