package causal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mllibstar/internal/obs"
)

// FuzzCausalGraph drives arbitrary JSONL through the whole pipeline — build,
// validate, critical path, re-time under every scenario family — and pins
// that nothing panics and the invariants that survive validation hold: the
// path decomposition telescopes and every successful prediction is finite.
func FuzzCausalGraph(f *testing.F) {
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, synthEvents()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	for _, slug := range []string{"mllib", "mllibstar"} {
		if raw, err := os.ReadFile(filepath.Join("..", "bench", "testdata", "obs_events_"+slug+".jsonl")); err == nil {
			f.Add(raw)
		}
	}
	f.Add([]byte(`{"phase":"cp-spec","note":"latency=0.1;overhead=-5"}` + "\n" +
		`{"phase":"compute","node":"a","proc":"w#1","start":0,"end":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := obs.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		g, err := Build(events)
		if err != nil {
			return
		}
		if err := Validate(g); err != nil {
			return
		}
		mk := g.Makespan()
		p := CriticalPath(g)
		if sum := p.Busy + p.Latency + p.Wait; math.Abs(sum-p.Makespan) > 1e-6*math.Max(1, math.Abs(mk)) {
			t.Errorf("decomposition %g does not telescope to makespan %g", sum, p.Makespan)
		}
		_ = p.Text(5)
		for _, sc := range append(StandardScenarios(g),
			Scenario{Name: "chunks=3", Chunks: 3},
			Scenario{Name: "overlap", Overlap: true, Chunks: 3},
			Scenario{Name: "shards=2", Shards: 2},
			Scenario{Name: "everything", CommScale: 0.25, ComputeScale: 4, LatencyScale: 0, DriverZero: true},
		) {
			pr := Retime(g, sc)
			if pr.Err != "" {
				continue
			}
			if math.IsNaN(pr.Makespan) || math.IsInf(pr.Makespan, 0) {
				t.Errorf("%s: non-finite predicted makespan %g", sc.Name, pr.Makespan)
			}
		}
	})
}
