// Package causal turns a causally-enriched obs event log (recorded under
// obs.EnableCausal, e.g. via the -causal flag) into a happens-before graph
// over every des/simnet occurrence: compute spans, message send and recv
// halves, fork points, and barrier releases. The graph is exact — node
// durations and edge lags reproduce the simulator's cost arithmetic — which
// is what makes the two consumers trustworthy:
//
//   - CriticalPath walks the longest chain in virtual time and attributes
//     the makespan, message by message, to phases, channels, hosts, and
//     idle gaps (propagation latency vs true wait);
//   - Retime replays the DAG under hypothetical scalings (comm ×½,
//     driver → 0, chunks → 2C, shard merges, ...) to predict end-to-end
//     virtual time without rerunning the simulation. Replaying with the
//     identity scenario reproduces every original timestamp bit-for-bit,
//     the property the validation tests pin.
//
// The package only reads event logs; it records nothing and is never on a
// simulation code path, so the observe-never-charge contract holds
// trivially — the analyzers check it transitively anyway.
package causal

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mllibstar/internal/obs"
)

// NodeKind classifies a graph node.
type NodeKind int

// Node kinds.
const (
	KindSpan    NodeKind = iota // a compute/aggregate/update/... span on a host
	KindSend                    // a message's serialization through the sender's out-NIC
	KindRecv                    // a message's serialization through the receiver's in-NIC
	KindFork                    // a zero-duration fork point (cp-fork)
	KindBarrier                 // one participant's [arrival, release] at a barrier (cp-barrier)
)

func (k NodeKind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindFork:
		return "fork"
	case KindBarrier:
		return "barrier"
	}
	return "?"
}

// Edge is a happens-before dependency: the node's busy period cannot start
// before the predecessor's end plus Lag (the propagation latency on
// send→recv edges, zero otherwise).
type Edge struct {
	From int
	Lag  float64
}

// Node is one occurrence. Start/End are the recorded span; Dur is the busy
// (service) duration, which for send nodes excludes out-NIC queueing — the
// recorded send span starts at the request, the busy period is its last Dur
// seconds. ResPred is the previous occupant of the node's FIFO resource
// (out-NIC or in-NIC), -1 when first or not a message.
type Node struct {
	ID    int
	Kind  NodeKind
	Proc  string // des process identity ("name#id"); "" when the log predates causal enrichment
	Host  string
	Phase obs.Phase
	Chan  obs.Channel
	Enc   obs.Encoding
	Bytes float64
	Start float64
	End   float64
	Dur   float64
	Step  int
	Note  string // mailbox tag for messages, charge note for spans
	MID   int64
	Grp   string // barrier group key ("name@gen")
	Res   string // FIFO resource occupied ("host/out", "host/in"), "" otherwise

	Preds   []Edge
	ResPred int
}

// BusyStart returns when the node's busy period begins: for send nodes the
// span includes out-NIC queueing, so the busy period is the trailing Dur.
func (n *Node) BusyStart() float64 {
	if n.Kind == KindSend {
		return n.End - n.Dur
	}
	return n.Start
}

// Spec is one machine's rates, parsed from the cp-spec events.
type Spec struct {
	Rate   float64 // compute, work units/s
	SendBW float64 // out-NIC bytes/s
	RecvBW float64 // in-NIC bytes/s
}

// Graph is the happens-before graph of one run.
type Graph struct {
	Nodes    []*Node
	Specs    map[string]Spec
	Latency  float64
	Overhead float64

	Groups    map[string][]int // barrier group key -> member node ids
	Procs     map[string][]int // process identity -> node ids in record order
	ProcOrder []string         // first-appearance order of Procs keys
	SendByMID map[int64]int    // message id -> send node id
}

// skip lists the event phases that are bookkeeping, not occurrences. The
// pipeline stall spans are skipped too: they observe time the task process
// spent blocked on a chunk, which the graph already derives from the recv
// edges — keeping them would double-count the gating. Feature-block spans
// likewise annotate gradient charges the graph already holds as compute
// occurrences; keeping them would overlap those charges and break replay.
func skip(ph obs.Phase) bool {
	switch ph {
	case obs.PhaseStep, obs.PhaseEval, obs.PhaseUpdates, obs.PhaseMeta,
		obs.PhaseServeRequest, obs.PhaseServeBatch, obs.PhaseServeSwap,
		obs.PhaseStage, obs.PhasePipeline, obs.PhaseFeatBlock:
		return true
	}
	return false
}

// Build constructs the graph from an event log. It errors when the log
// carries no causal enrichment at all (record with -causal); individually
// malformed events are tolerated here and flagged by Validate.
func Build(events []obs.Event) (*Graph, error) {
	g := &Graph{
		Specs:     map[string]Spec{},
		Groups:    map[string][]int{},
		Procs:     map[string][]int{},
		SendByMID: map[int64]int{},
	}
	enriched := false
	for i := range events {
		e := &events[i]
		if e.Phase == obs.PhaseCausalSpec {
			enriched = true
			g.parseSpec(e.Node, e.Note)
			continue
		}
		if skip(e.Phase) {
			continue
		}
		n := &Node{
			ID: len(g.Nodes), Proc: e.Proc, Host: e.Node, Phase: e.Phase,
			Chan: e.Chan, Enc: e.Enc, Bytes: e.Bytes, Start: e.Start, End: e.End,
			Step: e.Step, Note: e.Note, MID: e.MID, Grp: e.Grp, ResPred: -1,
		}
		switch {
		case e.Phase == obs.PhaseCausalFork:
			n.Kind = KindFork
		case e.Phase == obs.PhaseCausalBarrier:
			n.Kind = KindBarrier
		case e.Dir == obs.DirSend:
			n.Kind = KindSend
			n.Res = e.Node + "/out"
		case e.Dir == obs.DirRecv:
			n.Kind = KindRecv
			n.Res = e.Node + "/in"
		default:
			n.Kind = KindSpan
		}
		if e.Proc != "" {
			enriched = true
		}
		g.Nodes = append(g.Nodes, n)
	}
	if !enriched {
		return nil, fmt.Errorf("causal: log carries no causal enrichment (record it under -causal / obs.EnableCausal)")
	}
	for _, n := range g.Nodes {
		n.Dur = g.serviceDur(n)
	}
	g.link()
	return g, nil
}

// parseSpec decodes a cp-spec note ("k=v;k=v"). An empty node names the
// network config, otherwise a machine.
func (g *Graph) parseSpec(node, note string) {
	sp := g.Specs[node]
	for _, kv := range strings.Split(note, ";") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			continue
		}
		switch k {
		case "latency":
			g.Latency = f
		case "overhead":
			g.Overhead = f
		case "rate":
			sp.Rate = f
		case "sbw":
			sp.SendBW = f
		case "rbw":
			sp.RecvBW = f
		}
	}
	if node != "" {
		g.Specs[node] = sp
	}
}

// serviceDur computes a node's busy duration. Send and recv durations are
// recomputed from bytes and the specs — the identical float expression the
// simulator used — so the what-if re-timer can re-derive them after a
// scenario changes message sizes. Without specs (a log from an older run)
// the recorded span length is used, which still makes identity replay exact
// for queue-free sends.
func (g *Graph) serviceDur(n *Node) float64 {
	switch n.Kind {
	case KindSend:
		if sp, ok := g.Specs[n.Host]; ok && sp.SendBW > 0 {
			return (n.Bytes + g.Overhead) / sp.SendBW
		}
		return n.End - n.Start
	case KindRecv, KindSpan:
		return n.End - n.Start
	}
	return 0 // fork, barrier
}

// link wires the three edge families: program order per process (recv nodes
// are gated only by their message, not the process — in-NIC serialization
// proceeds while the process is busy — but everything after a Recv call is
// gated by the delivery), message edges send→recv lagged by the propagation
// latency, and FIFO resource chains through each NIC. Barrier groups get no
// explicit cross edges; CriticalPath and Retime resolve a member's release
// as the slowest member's arrival.
func (g *Graph) link() {
	forkOf := map[string]int{} // child proc identity -> fork node id
	for _, n := range g.Nodes {
		if n.Kind == KindFork && n.Grp != "" {
			forkOf[n.Grp] = n.ID
		}
		if n.Kind == KindSend && n.MID != 0 {
			g.SendByMID[n.MID] = n.ID
		}
		if n.Kind == KindBarrier && n.Grp != "" {
			g.Groups[n.Grp] = append(g.Groups[n.Grp], n.ID)
		}
		if n.Proc != "" {
			if _, seen := g.Procs[n.Proc]; !seen {
				g.ProcOrder = append(g.ProcOrder, n.Proc)
			}
			g.Procs[n.Proc] = append(g.Procs[n.Proc], n.ID)
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == KindRecv && n.MID != 0 {
			if s, ok := g.SendByMID[n.MID]; ok {
				n.Preds = append(n.Preds, Edge{From: s, Lag: g.Latency})
			}
		}
	}
	for _, proc := range g.ProcOrder {
		var carry []Edge
		if f, ok := forkOf[proc]; ok {
			carry = append(carry, Edge{From: f})
		}
		for _, id := range g.Procs[proc] {
			n := g.Nodes[id]
			if n.Kind == KindRecv {
				// The process's next action waits on this delivery, but the
				// delivery itself is not gated by the process.
				carry = append(carry, Edge{From: id})
				continue
			}
			n.Preds = append(n.Preds, carry...)
			carry = append(carry[:0], Edge{From: id})
		}
	}
	byRes := map[string][]int{}
	var resOrder []string
	for _, n := range g.Nodes {
		if n.Res == "" {
			continue
		}
		if _, seen := byRes[n.Res]; !seen {
			resOrder = append(resOrder, n.Res)
		}
		byRes[n.Res] = append(byRes[n.Res], n.ID)
	}
	for _, res := range resOrder {
		ids := byRes[res]
		sort.SliceStable(ids, func(a, b int) bool {
			na, nb := g.Nodes[ids[a]], g.Nodes[ids[b]]
			//mlstar:nolint floateq -- exact compare intentional: equal starts fall through to the id tie-break
			if na.Start != nb.Start {
				return na.Start < nb.Start
			}
			return na.ID < nb.ID
		})
		for i := 1; i < len(ids); i++ {
			g.Nodes[ids[i]].ResPred = ids[i-1]
		}
	}
}

// eps is the slack used by Validate's timing checks; genuine causal gaps in
// the simulator are many orders of magnitude larger.
const eps = 1e-9

// Validate checks the graph's well-formedness: finite ordered spans, every
// recv matched to exactly one send and respecting wire causality, process
// chains monotone, every edge pointing strictly backward in (start, id)
// order — which proves acyclicity, since that order is the schedule Retime
// replays — and barrier groups releasing together at their slowest arrival.
func Validate(g *Graph) error {
	recvOfMID := map[int64]int{}
	for _, n := range g.Nodes {
		if math.IsNaN(n.Start) || math.IsNaN(n.End) || math.IsInf(n.Start, 0) || math.IsInf(n.End, 0) {
			return fmt.Errorf("causal: node %d (%s on %s): non-finite span [%g, %g]", n.ID, n.Kind, n.Host, n.Start, n.End)
		}
		if n.End < n.Start {
			return fmt.Errorf("causal: node %d (%s on %s): end %g before start %g", n.ID, n.Kind, n.Host, n.End, n.Start)
		}
		if n.Dur < 0 || n.Dur > n.End-n.Start+eps {
			return fmt.Errorf("causal: node %d (%s on %s): service %g outside span [%g, %g]", n.ID, n.Kind, n.Host, n.Dur, n.Start, n.End)
		}
		if n.Kind == KindRecv {
			if n.MID == 0 {
				return fmt.Errorf("causal: node %d: recv on %s without a message id", n.ID, n.Host)
			}
			s, ok := g.SendByMID[n.MID]
			if !ok {
				return fmt.Errorf("causal: node %d: recv on %s has no matching send (mid %d)", n.ID, n.Host, n.MID)
			}
			if prev, dup := recvOfMID[n.MID]; dup {
				return fmt.Errorf("causal: mid %d received twice (nodes %d and %d)", n.MID, prev, n.ID)
			}
			recvOfMID[n.MID] = n.ID
			if g.Nodes[s].End+g.Latency > n.Start+eps {
				return fmt.Errorf("causal: mid %d: recv at %g before send end %g + latency %g", n.MID, n.Start, g.Nodes[s].End, g.Latency)
			}
		}
		for _, e := range n.Preds {
			if e.From < 0 || e.From >= len(g.Nodes) {
				return fmt.Errorf("causal: node %d: edge from unknown node %d", n.ID, e.From)
			}
			p := g.Nodes[e.From]
			if p.End+e.Lag > n.Start+eps && p.Grp == "" {
				return fmt.Errorf("causal: node %d (%s) starts at %g before predecessor %d ends at %g (+%g lag)",
					n.ID, n.Kind, n.Start, e.From, p.End, e.Lag)
			}
			if !before(p, n) {
				return fmt.Errorf("causal: edge %d -> %d runs forward in schedule order (cycle)", e.From, n.ID)
			}
		}
		if n.ResPred >= 0 {
			p := g.Nodes[n.ResPred]
			if p.End > n.BusyStart()+eps {
				return fmt.Errorf("causal: node %d overlaps previous occupant %d of %s", n.ID, n.ResPred, n.Res)
			}
			if !before(p, n) {
				return fmt.Errorf("causal: resource edge %d -> %d runs forward in schedule order", n.ResPred, n.ID)
			}
		}
	}
	for grp, ids := range g.Groups { //mlstar:nolint determinism -- validation only reports the first error; any iteration order finds it
		release, slowest := math.Inf(-1), math.Inf(-1)
		for _, id := range ids {
			m := g.Nodes[id]
			release = math.Max(release, m.End)
			slowest = math.Max(slowest, m.Start)
			if math.Abs(m.End-release) > eps {
				return fmt.Errorf("causal: barrier %s: member %d releases at %g, others at %g", grp, id, m.End, release)
			}
		}
		if math.Abs(slowest-release) > eps {
			return fmt.Errorf("causal: barrier %s: slowest arrival %g is not the release %g", grp, slowest, release)
		}
	}
	// Per-process chains must be monotone: each non-recv node starts no
	// earlier than the previous non-recv node ended.
	for _, proc := range g.ProcOrder {
		last := -1
		for _, id := range g.Procs[proc] {
			n := g.Nodes[id]
			if n.Kind == KindRecv {
				continue
			}
			if last >= 0 && g.Nodes[last].End > n.Start+eps {
				return fmt.Errorf("causal: process %s: node %d starts at %g before node %d ends at %g",
					proc, n.ID, n.Start, last, g.Nodes[last].End)
			}
			last = id
		}
	}
	return nil
}

// before reports whether a sorts strictly before b in the schedule order
// Retime replays: (start, id).
func before(a, b *Node) bool {
	//mlstar:nolint floateq -- exact compare intentional: equal starts fall through to the id tie-break
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.ID < b.ID
}

// Analyze is Build followed by Validate.
func Analyze(events []obs.Event) (*Graph, error) {
	g, err := Build(events)
	if err != nil {
		return nil, err
	}
	if err := Validate(g); err != nil {
		return nil, err
	}
	return g, nil
}

// Makespan returns the latest end time in the graph (zero when empty).
func (g *Graph) Makespan() float64 {
	m := 0.0
	for _, n := range g.Nodes {
		if n.End > m {
			m = n.End
		}
	}
	return m
}
