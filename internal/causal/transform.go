package causal

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/obs"
	"mllibstar/internal/vec"
)

// This file holds the structural what-if transforms: re-chunking sequential
// AllReduce collectives into the pipelined schedule (internal/allreduce's
// pipelinedRSG), streaming gradient production into those chunks (-overlap,
// allreduce.overlapRSG), and re-sharding the serving tier. Each rebuilds the
// affected subgraph the way the simulator itself would have built it — same
// byte splits, same enqueue orders, same gating — so the re-timed makespan
// is a genuine prediction of the rerun, which TestWhatIfChunkSweep,
// TestWhatIfOverlapSweep, and TestWhatIfShardSweep check against actual
// reruns.

// specFor resolves a host's machine spec; synthesized hosts ("host~2") fall
// back to the host they were split from.
func (r *retimer) specFor(host string) (Spec, error) {
	if i := strings.IndexByte(host, '~'); i >= 0 {
		host = host[:i]
	}
	sp, ok := r.g.src.Specs[host]
	if !ok || sp.SendBW <= 0 || sp.RecvBW <= 0 {
		return sp, fmt.Errorf("causal: no machine spec for %q (re-record the log under -causal)", host)
	}
	return sp, nil
}

func (r *retimer) sendDur(host string, bytes float64) (float64, error) {
	sp, err := r.specFor(host)
	if err != nil {
		return 0, err
	}
	return (bytes + r.g.src.Overhead) / sp.SendBW, nil
}

func (r *retimer) recvDur(host string, bytes float64) (float64, error) {
	sp, err := r.specFor(host)
	if err != nil {
		return 0, err
	}
	return (bytes + r.g.src.Overhead) / sp.RecvBW, nil
}

func (r *retimer) drop(id int, replacements ...int) {
	r.nodes[id].dropped = true
	r.redirect[id] = replacements
}

// ---------------------------------------------------------------------------
// Chunk transform: sequential AllReduce -> pipelined chunks.

// xchRun is one executor's slice of one sequential reduce-scatter/gather
// collective, as recorded in its process chain: k−1 sends and recvs per
// shuffle round, k−1 fold charges between them, k−1 update charges after.
// grad is the anonymous compute charge immediately preceding the first send
// on the same chain — the gradient pass that fed the collective — or −1;
// the overlap transform streams it (streamedInstance).
type xchRun struct {
	name string
	host string
	grad int
	rsSends, rsRecvs, folds, agSends, agRecvs, updates []int
}

const rsPrefix, agPrefix = "xch:rs:", "xch:ag:"

// parseXchRun matches the sequential collective shape starting at position i
// of a process chain; ok is false when the shape does not match (the
// exchange is some other shuffle and stays untouched).
func parseXchRun(g *Graph, ids []int, i int) (run xchRun, next int, ok bool) {
	first := g.Nodes[ids[i]]
	run.name = strings.TrimPrefix(first.Note, rsPrefix)
	run.host = first.Host
	run.grad = -1
	if i > 0 {
		// Collective charges (folds, updates) carry the collective name as
		// their note; the gradient pass is an anonymous ChargeAsync, so an
		// un-noted span right before the first send can only be the compute
		// that produced the vector being reduced.
		if prev := g.Nodes[ids[i-1]]; prev.Kind == KindSpan && prev.Note == "" {
			run.grad = ids[i-1]
		}
	}
	rsTag, agTag := rsPrefix+run.name, agPrefix+run.name
	take := func(kind NodeKind, note string) []int {
		var out []int
		for i < len(ids) {
			n := g.Nodes[ids[i]]
			if n.Kind != kind || n.Note != note {
				break
			}
			out = append(out, ids[i])
			i++
		}
		return out
	}
	run.rsSends = take(KindSend, rsTag)
	run.rsRecvs = take(KindRecv, rsTag)
	run.folds = take(KindSpan, run.name)
	run.agSends = take(KindSend, agTag)
	run.agRecvs = take(KindRecv, agTag)
	run.updates = take(KindSpan, run.name)
	a := len(run.rsSends)
	ok = a > 0 && len(run.rsRecvs) == a && len(run.folds) == a &&
		len(run.agSends) == a && len(run.agRecvs) == a && len(run.updates) == a
	if !ok {
		return run, i, false
	}
	return run, i, true
}

// xchInstance is one collective instance across its k executors (runs in
// recorded proc order) with the total model width — the concatenation of the
// k allgather partitions.
type xchInstance struct {
	name string
	runs []xchRun
	dim  int
}

// collectCollectives gathers every sequential collective instance in the
// trace, preserving per-proc order so the q-th run of a name on every
// executor is the q-th instance of that collective.
func collectCollectives(r *retimer) ([]xchInstance, error) {
	g := r.g.src
	runsByName := map[string]map[string][]xchRun{}
	var nameOrder []string
	for _, proc := range g.ProcOrder {
		ids := g.Procs[proc]
		for i := 0; i < len(ids); {
			n := g.Nodes[ids[i]]
			if n.Kind != KindSend || !strings.HasPrefix(n.Note, rsPrefix) {
				i++
				continue
			}
			if strings.Contains(n.Note, ".c") {
				return nil, fmt.Errorf("collectives already pipelined (tag %q)", n.Note)
			}
			if n.Enc == obs.EncSparse {
				return nil, fmt.Errorf("sparse-encoded collective %q: chunk byte split is encoding-dependent", n.Note)
			}
			run, next, ok := parseXchRun(g, ids, i)
			if !ok {
				i++
				continue
			}
			for _, id := range append(append([]int{}, run.rsRecvs...), run.agRecvs...) {
				if g.Nodes[id].Enc == obs.EncSparse {
					return nil, fmt.Errorf("sparse-encoded collective %q: chunk byte split is encoding-dependent", run.name)
				}
			}
			if runsByName[run.name] == nil {
				runsByName[run.name] = map[string][]xchRun{}
				nameOrder = append(nameOrder, run.name)
			}
			runsByName[run.name][proc] = append(runsByName[run.name][proc], run)
			i = next
		}
	}
	var out []xchInstance
	for _, name := range nameOrder {
		byProc := runsByName[name]
		var execs []string
		for _, proc := range g.ProcOrder {
			if _, ok := byProc[proc]; ok {
				execs = append(execs, proc)
			}
		}
		k := len(execs)
		instances := len(byProc[execs[0]])
		for _, proc := range execs {
			if len(byProc[proc]) != instances {
				return nil, fmt.Errorf("collective %q: executors disagree on instance count", name)
			}
		}
		for q := 0; q < instances; q++ {
			runs := make([]xchRun, k)
			dim := 0
			for e, proc := range execs {
				runs[e] = byProc[proc][q]
				if a := len(runs[e].rsSends); a != k-1 {
					return nil, fmt.Errorf("collective %q: %d sends for %d executors", name, a, k)
				}
				dim += int(g.Nodes[runs[e].agSends[0]].Bytes / 8)
			}
			out = append(out, xchInstance{name: name, runs: runs, dim: dim})
		}
	}
	return out, nil
}

// effChunks applies the simulator's chunk cap: never more chunks than the
// smallest partition has coordinates.
func effChunks(C, dim, k int) int {
	if minPart := dim / k; minPart < C {
		C = minPart
	}
	return C
}

// chunkTransform rewrites every sequential collective instance into the
// C-chunk pipelined schedule: a forked sender drains all reduce-scatter
// chunk sends chunk-major, the task folds chunk c as soon as its k−1 pieces
// arrive, and the allgather chunk streams out right after its fold — the
// exact structure of allreduce.pipelinedRSG, including the dim/k chunk cap.
func chunkTransform(r *retimer, C int) error {
	insts, err := collectCollectives(r)
	if err != nil {
		return err
	}
	for _, inst := range insts {
		if effC := effChunks(C, inst.dim, len(inst.runs)); effC > 1 {
			if err := r.chunkInstance(inst.runs, effC); err != nil {
				return err
			}
		}
		// effC <= 1: too small to cut; the rerun keeps it sequential too.
	}
	return nil
}

// chunkBytes returns the wire bytes of chunk c of the partition an original
// send carried: the same PartitionRange split the pipelined simulator makes.
func (r *retimer) chunkBytes(origSend int, C, c int) float64 {
	ln := int(r.g.src.Nodes[origSend].Bytes / 8)
	lo, hi := vec.PartitionRange(ln, C, c)
	return 8 * float64(hi-lo)
}

// chunkInstance rebuilds one collective instance across its k executors.
func (r *retimer) chunkInstance(runs []xchRun, C int) error {
	g := r.g.src
	k := len(runs)
	chunkSends := map[int][]int{} // original send id -> per-chunk synthesized sends
	childPrev := make([]int, k)
	childSub := make([]int, k)

	// Pass 1: the forked sender on each executor enqueues every
	// reduce-scatter chunk up front, chunk-major across peers.
	for e, run := range runs {
		anchor := g.Nodes[run.rsSends[0]]
		fork := r.add(&rnode{
			kind: KindFork, host: run.host,
			preds: append([]redge(nil), r.nodes[run.rsSends[0]].preds...),
			keyT:  anchor.Start, keyID: anchor.ID, keySub: 1,
		})
		childPrev[e], childSub[e] = fork, 1
		for c := 0; c < C; c++ {
			for _, sid := range run.rsSends {
				bytes := r.chunkBytes(sid, C, c)
				dur, err := r.sendDur(run.host, bytes)
				if err != nil {
					return err
				}
				childSub[e]++
				id := r.add(&rnode{
					kind: KindSend, host: run.host, res: run.host + "/out", dur: dur,
					preds: []redge{{from: childPrev[e]}},
					keyT:  anchor.Start, keyID: anchor.ID, keySub: childSub[e],
				})
				childPrev[e] = id
				chunkSends[sid] = append(chunkSends[sid], id)
			}
		}
	}
	return r.chunkFoldGather(runs, C, chunkSends, childPrev, childSub, nil)
}

// chunkFoldGather builds the fold and allgather halves of a chunked
// collective — shared by the plain chunk rebuild and the streamed (overlap)
// rebuild. chunkSends maps each original reduce-scatter send to its C
// synthesized chunk sends; childPrev/childSub continue each executor's
// out-NIC sender chain. prodTail, when non-nil, roots executor e's fold
// chain at its last gradient-production block (the streamed schedule, where
// the task process produces all own-partition blocks before folding) and
// drops the recorded gradient span alongside the collective's own nodes.
func (r *retimer) chunkFoldGather(runs []xchRun, C int, chunkSends map[int][]int, childPrev, childSub []int, prodTail []int) error {
	g := r.g.src
	k := len(runs)
	foldLast := make([]int, k)
	chunkBytes := func(origSend int, c int) float64 { return r.chunkBytes(origSend, C, c) }
	// Pass 2: each executor receives chunk c from its k−1 peers, folds it,
	// and streams the matching allgather chunk right after the fold.
	for e, run := range runs {
		// Chunk recvs key off the run's FIRST original recv, chunk-major
		// across peers — the in-NIC FIFO order the pipelined simulator
		// produces (reservations land in send-completion order, and every
		// peer finishes its chunk c before any finishes c+1). Anchoring each
		// chunk on its own original recv would replay the queue peer-major
		// and serialize the folds behind whole peers' worth of chunks.
		rsChunkRecvs := make([][]redge, C)
		anchorR := g.Nodes[run.rsRecvs[0]]
		for c := 0; c < C; c++ {
			for pi, rid := range run.rsRecvs {
				sid, ok := g.SendByMID[g.Nodes[rid].MID]
				if !ok {
					return fmt.Errorf("collective %q: unmatched recv", run.name)
				}
				dur, err := r.recvDur(run.host, chunkBytes(sid, c))
				if err != nil {
					return err
				}
				id := r.add(&rnode{
					kind: KindRecv, host: run.host, res: run.host + "/in", dur: dur,
					preds: []redge{{from: chunkSends[sid][c], lag: g.Latency}},
					keyT:  anchorR.Start, keyID: anchorR.ID, keySub: c*len(run.rsRecvs) + pi + 1,
				})
				rsChunkRecvs[c] = append(rsChunkRecvs[c], redge{from: id})
			}
		}
		totFold := 0.0
		for _, fid := range run.folds {
			totFold += g.Nodes[fid].Dur
		}
		lnOwn := int(g.Nodes[run.agSends[0]].Bytes / 8)
		anchorF := g.Nodes[run.folds[0]]
		prev := -1
		if prodTail != nil {
			prev = prodTail[e]
		}
		folds := make([]int, C)
		for c := 0; c < C; c++ {
			lo, hi := vec.PartitionRange(lnOwn, C, c)
			preds := append([]redge(nil), rsChunkRecvs[c]...)
			if prev >= 0 {
				preds = append(preds, redge{from: prev})
			}
			folds[c] = r.add(&rnode{
				kind: KindSpan, host: run.host, dur: totFold * float64(hi-lo) / float64(lnOwn),
				preds: preds, keyT: anchorF.Start, keyID: anchorF.ID, keySub: c + 1,
			})
			prev = folds[c]
		}
		foldLast[e] = folds[C-1]
		anchor := g.Nodes[run.rsSends[0]]
		for c := 0; c < C; c++ {
			for _, aid := range run.agSends {
				dur, err := r.sendDur(run.host, chunkBytes(aid, c))
				if err != nil {
					return err
				}
				childSub[e]++
				id := r.add(&rnode{
					kind: KindSend, host: run.host, res: run.host + "/out", dur: dur,
					preds: []redge{{from: childPrev[e]}, {from: folds[c]}},
					keyT:  anchor.Start, keyID: anchor.ID, keySub: childSub[e],
				})
				childPrev[e] = id
				chunkSends[aid] = append(chunkSends[aid], id)
			}
		}
	}
	// Pass 3: allgather chunk recvs and per-chunk update charges; every
	// original node of the instance redirects to the executor's last update.
	for e, run := range runs {
		// Chunk-major keys for the same in-NIC FIFO reason as the
		// reduce-scatter recvs above.
		agChunkRecvs := make([][]redge, C)
		anchorR := g.Nodes[run.agRecvs[0]]
		for c := 0; c < C; c++ {
			for pi, rid := range run.agRecvs {
				sid, ok := g.SendByMID[g.Nodes[rid].MID]
				if !ok {
					return fmt.Errorf("collective %q: unmatched recv", run.name)
				}
				dur, err := r.recvDur(run.host, chunkBytes(sid, c))
				if err != nil {
					return err
				}
				id := r.add(&rnode{
					kind: KindRecv, host: run.host, res: run.host + "/in", dur: dur,
					preds: []redge{{from: chunkSends[sid][c], lag: g.Latency}},
					keyT:  anchorR.Start, keyID: anchorR.ID, keySub: c*len(run.agRecvs) + pi + 1,
				})
				agChunkRecvs[c] = append(agChunkRecvs[c], redge{from: id})
			}
		}
		anchorU := g.Nodes[run.updates[0]]
		prev := foldLast[e]
		for c := 0; c < C; c++ {
			dur := 0.0
			for q, uid := range run.updates {
				ln := int(g.Nodes[run.agRecvs[q]].Bytes / 8)
				lo, hi := vec.PartitionRange(ln, C, c)
				dur += g.Nodes[uid].Dur * float64(hi-lo) / float64(ln)
			}
			preds := append([]redge(nil), agChunkRecvs[c]...)
			preds = append(preds, redge{from: prev})
			prev = r.add(&rnode{
				kind: KindSpan, host: run.host, dur: dur,
				preds: preds, keyT: anchorU.Start, keyID: anchorU.ID, keySub: c + 1,
			})
		}
		for _, ids := range [][]int{run.rsSends, run.rsRecvs, run.folds, run.agSends, run.agRecvs, run.updates} {
			for _, id := range ids {
				r.drop(id, prev)
			}
		}
		if prodTail != nil && run.grad >= 0 {
			r.drop(run.grad, prev)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Overlap transform: stream gradient production into the chunked schedule.

// streamedPrefixes names the collectives whose vectors are produced block by
// block inside the collective when -overlap is on — the
// allreduce.AverageProduced call sites: LBFGS*'s lbg%d, SVRG's anchor
// gradient svrg-mu%d, and the distributed-GD superstep gd%d
// (internal/bench). A call site that adopts AverageProduced must register
// its name prefix here for the overlap what-if to stream it; unregistered
// collectives get the plain chunk rebuild, which is what their rerun does.
var streamedPrefixes = []string{"lbg", "svrg-mu", "gd"}

func streamedCollective(name string) bool {
	for _, p := range streamedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// overlapTransform re-times the trace under -overlap: every sequential
// collective becomes C-chunk pipelined, and instances whose name is a
// registered AverageProduced call site — and whose recorded gradient charge
// is visible on every executor's chain — are rebuilt with production
// streamed into the sends (streamedInstance).
func overlapTransform(r *retimer, C int) error {
	insts, err := collectCollectives(r)
	if err != nil {
		return err
	}
	streamed := 0
	for _, inst := range insts {
		effC := effChunks(C, inst.dim, len(inst.runs))
		if effC <= 1 {
			continue // too small to cut; the rerun keeps it sequential too
		}
		gradOK := streamedCollective(inst.name)
		for e, run := range inst.runs {
			// The rerun splits [0, dim) with PartitionRange over executor
			// INDEX; runs are in recorded proc order, which the engine's
			// stage spawns keep in index order. If the recorded partition
			// widths disagree with that split, the positional identification
			// is wrong — fall back to the plain chunk rebuild rather than
			// misattribute production widths.
			lo, hi := vec.PartitionRange(inst.dim, len(inst.runs), e)
			gradOK = gradOK && run.grad >= 0 &&
				int(r.g.src.Nodes[run.agSends[0]].Bytes/8) == hi-lo
		}
		if gradOK {
			if err := r.streamedInstance(inst, effC); err != nil {
				return err
			}
			streamed++
		} else if err := r.chunkInstance(inst.runs, effC); err != nil {
			return err
		}
	}
	if streamed == 0 {
		return fmt.Errorf("no streamable gradient collectives in this trace (want an %v-prefixed collective fed by a visible gradient charge)", streamedPrefixes)
	}
	return nil
}

// streamedInstance rebuilds one gradient-producing collective the way
// allreduce.overlapRSG schedules it: the sender is forked at collective
// entry; pass 1 of the two-pass kernel (per-row derivatives) runs as half
// the recorded gradient charge (GradStream's PrepareWork convention); then
// the remaining half is produced block by block — chunk-major, peers in
// topology-aware route order, own partition last — with each reduce-scatter
// chunk send gated on its block closing plus the out-NIC FIFO. The fold and
// allgather halves are shared with the plain chunk rebuild, the fold chain
// rooted at the last own-partition block. Block charges are apportioned by
// coordinate width; the rerun charges them by nonzero count, which the trace
// cannot see — the residual the overlap sweep's tolerance covers.
func (r *retimer) streamedInstance(inst xchInstance, C int) error {
	g := r.g.src
	runs, dim := inst.runs, inst.dim
	k := len(runs)
	// Each original reduce-scatter send's destination executor, recovered
	// through its matched recv; then inverted so sendTo[e][j] is e's send to
	// peer j — the route order indexes peers, the chain holds send ids.
	dstOf := map[int]int{}
	for e2, run2 := range runs {
		for _, rid := range run2.rsRecvs {
			sid, ok := g.SendByMID[g.Nodes[rid].MID]
			if !ok {
				return fmt.Errorf("collective %q: unmatched recv", inst.name)
			}
			dstOf[sid] = e2
		}
	}
	sendTo := make([][]int, k)
	for e, run := range runs {
		sendTo[e] = make([]int, k)
		for j := range sendTo[e] {
			sendTo[e][j] = -1
		}
		for _, sid := range run.rsSends {
			dst, ok := dstOf[sid]
			if !ok {
				return fmt.Errorf("collective %q: send without a matched recv", inst.name)
			}
			sendTo[e][dst] = sid
		}
	}
	recvBW := make([]float64, k)
	for j, run := range runs {
		sp, err := r.specFor(run.host)
		if err != nil {
			return err
		}
		recvBW[j] = sp.RecvBW
	}

	chunkSends := map[int][]int{}
	childPrev := make([]int, k)
	childSub := make([]int, k)
	prodTail := make([]int, k)
	for e, run := range runs {
		sp, err := r.specFor(run.host)
		if err != nil {
			return err
		}
		// The exact route the rerun will take: deterministic in (name, e).
		order := allreduce.RouteOrder(inst.name, e, k, dim, sp.SendBW, recvBW)
		grad := g.Nodes[run.grad]
		anchor := g.Nodes[run.rsSends[0]]
		fork := r.add(&rnode{
			kind: KindFork, host: run.host,
			preds: append([]redge(nil), r.nodes[run.grad].preds...),
			keyT:  anchor.Start, keyID: anchor.ID, keySub: 1,
		})
		childPrev[e], childSub[e] = fork, 1
		taskSub := 1
		pass1 := r.add(&rnode{
			kind: KindSpan, host: run.host, dur: grad.Dur / 2,
			preds: append([]redge(nil), r.nodes[run.grad].preds...),
			keyT:  grad.Start, keyID: grad.ID, keySub: taskSub,
		})
		taskPrev := pass1
		produce := func(j, c int) {
			plo, phi := vec.PartitionRange(dim, k, j)
			clo, chi := vec.PartitionRange(phi-plo, C, c)
			taskSub++
			taskPrev = r.add(&rnode{
				kind: KindSpan, host: run.host,
				dur:   grad.Dur / 2 * float64(chi-clo) / float64(dim),
				preds: []redge{{from: taskPrev}},
				keyT:  grad.Start, keyID: grad.ID, keySub: taskSub,
			})
		}
		for c := 0; c < C; c++ {
			for _, j := range order {
				produce(j, c)
				sid := sendTo[e][j]
				if sid < 0 {
					return fmt.Errorf("collective %q: no send from executor %d to peer %d", inst.name, e, j)
				}
				dur, err := r.sendDur(run.host, r.chunkBytes(sid, C, c))
				if err != nil {
					return err
				}
				childSub[e]++
				id := r.add(&rnode{
					kind: KindSend, host: run.host, res: run.host + "/out", dur: dur,
					preds: []redge{{from: childPrev[e]}, {from: taskPrev}},
					keyT:  anchor.Start, keyID: anchor.ID, keySub: childSub[e],
				})
				childPrev[e] = id
				chunkSends[sid] = append(chunkSends[sid], id)
			}
		}
		// Own partition last: it gates only the local fold chain.
		for c := 0; c < C; c++ {
			produce(e, c)
		}
		prodTail[e] = taskPrev
	}
	return r.chunkFoldGather(runs, C, chunkSends, childPrev, childSub, prodTail)
}

// ---------------------------------------------------------------------------
// Shard transform: re-shard the serving tier.

const shardNotePrefix = "serve.shard"

// triplet is one shard interaction: a fan-out send, its recv at the shard,
// the shard's work span, the shard's reply send, and the reply's recv back
// at the sender.
type triplet struct {
	send, recv, span, rep, repRecv int
	shard                          int
}

func shardIndex(note string) (int, bool) {
	if !strings.HasPrefix(note, shardNotePrefix) {
		return 0, false
	}
	i, err := strconv.Atoi(note[len(shardNotePrefix):])
	return i, err == nil
}

// serveShardCount returns the number of shard hosts the trace talks to.
func serveShardCount(g *Graph) int {
	seen := map[int]bool{}
	for _, n := range g.Nodes {
		if i, ok := shardIndex(n.Note); ok && n.Kind == KindRecv {
			seen[i] = true
		}
	}
	return len(seen)
}

// shardTransform re-shards the serving tier to s shards: merging (s below
// the recorded count) rebuilds each fan-out as fewer, larger shard
// interactions with the work serialized on the surviving hosts — near-exact,
// since every nonzero is owned by exactly one shard either way; splitting
// (s above) divides each interaction across synthesized hosts, a heuristic
// that assumes the nonzeros split evenly.
func shardTransform(r *retimer, s int) error {
	g := r.g.src
	hostOf := map[int]string{}
	for _, n := range g.Nodes {
		if i, ok := shardIndex(n.Note); ok && n.Kind == KindRecv {
			hostOf[i] = n.Host
		}
	}
	k := len(hostOf)
	if k == 0 {
		return fmt.Errorf("no serving-tier traffic in this trace")
	}
	for i := 0; i < k; i++ {
		if hostOf[i] == "" {
			return fmt.Errorf("shard indices not contiguous (missing %d)", i)
		}
	}
	if s == k {
		return nil
	}
	pos := map[int]int{} // node id -> index within its proc chain
	for _, proc := range g.ProcOrder {
		for i, id := range g.Procs[proc] {
			pos[id] = i
		}
	}
	chase := func(sid int) (triplet, error) {
		t := triplet{send: sid}
		t.shard, _ = shardIndex(g.Nodes[sid].Note)
		rid, ok := r.g.recvOfMID[g.Nodes[sid].MID]
		if !ok {
			return t, fmt.Errorf("shard send without a recv")
		}
		t.recv = rid
		chain := g.Procs[g.Nodes[rid].Proc]
		p := pos[rid]
		if p+2 >= len(chain) {
			return t, fmt.Errorf("truncated shard interaction")
		}
		t.span, t.rep = chain[p+1], chain[p+2]
		if g.Nodes[t.span].Kind != KindSpan || g.Nodes[t.rep].Kind != KindSend {
			return t, fmt.Errorf("unrecognized shard interaction shape")
		}
		t.repRecv, ok = r.g.recvOfMID[g.Nodes[t.rep].MID]
		if !ok {
			return t, fmt.Errorf("shard reply without a recv")
		}
		return t, nil
	}
	var groups [][]triplet
	for _, proc := range g.ProcOrder {
		ids := g.Procs[proc]
		for i := 0; i < len(ids); {
			n := g.Nodes[ids[i]]
			if _, ok := shardIndex(n.Note); !ok || n.Kind != KindSend {
				i++
				continue
			}
			var grp []triplet
			for i < len(ids) {
				m := g.Nodes[ids[i]]
				if _, ok := shardIndex(m.Note); !ok || m.Kind != KindSend {
					break
				}
				t, err := chase(ids[i])
				if err != nil {
					return err
				}
				grp = append(grp, t)
				i++
			}
			groups = append(groups, grp)
		}
	}
	chains := map[string][]chainRec{}
	const header = 16.0 // serve headerBytes: one per message, so merging n messages saves 16·(n−1)
	if s < k {
		mergedIdx := func(i int) int { return i * s / k }
		mergedHost := make([]string, s)
		for i := k - 1; i >= 0; i-- {
			mergedHost[mergedIdx(i)] = hostOf[i]
		}
		for _, grp := range groups {
			buckets := map[int][]triplet{}
			var order []int
			for _, t := range grp {
				m := mergedIdx(t.shard)
				if _, ok := buckets[m]; !ok {
					order = append(order, m)
				}
				buckets[m] = append(buckets[m], t)
			}
			sort.Ints(order)
			for _, m := range order {
				if err := r.mergeBucket(buckets[m], mergedHost[m], header, chains); err != nil {
					return err
				}
			}
		}
	} else {
		if s%k != 0 {
			return fmt.Errorf("shard split wants a multiple of the recorded %d shards, got %d", k, s)
		}
		f := s / k
		for _, grp := range groups {
			for _, t := range grp {
				if err := r.splitTriplet(t, f, header, chains); err != nil {
					return err
				}
			}
		}
	}
	for host, recs := range chains { //mlstar:nolint determinism -- each host's chain is independent; iteration order does not affect the result
		_ = host
		sort.Slice(recs, func(a, b int) bool {
			//mlstar:nolint floateq -- exact compare intentional: equal keys fall through to the id tie-break
			if recs[a].keyT != recs[b].keyT {
				return recs[a].keyT < recs[b].keyT
			}
			return recs[a].keyID < recs[b].keyID
		})
		for i := 1; i < len(recs); i++ {
			rn := r.nodes[recs[i].span]
			rn.preds = append(rn.preds, redge{from: recs[i-1].last})
		}
	}
	return nil
}

// mergeBucket folds n shard interactions of one fan-out into a single
// interaction on the surviving host.
func (r *retimer) mergeBucket(ts []triplet, host string, header float64, chains map[string][]chainRec) error {
	g := r.g.src
	n := float64(len(ts))
	sendBytes, repBytes, spanDur := 0.0, 0.0, 0.0
	mergedSpec, err := r.specFor(host)
	if err != nil {
		return err
	}
	for _, t := range ts {
		sendBytes += g.Nodes[t.send].Bytes
		repBytes += g.Nodes[t.rep].Bytes
		d := g.Nodes[t.span].Dur
		if sp, err := r.specFor(hostOfNode(g, t.span)); err == nil && sp.Rate > 0 && mergedSpec.Rate > 0 {
			d *= sp.Rate / mergedSpec.Rate
		}
		spanDur += d
	}
	sendBytes -= header * (n - 1)
	repBytes -= header * (n - 1)
	t0 := ts[0]
	srcHost := g.Nodes[t0.send].Host
	dstHost := g.Nodes[t0.repRecv].Host
	sDur, err := r.sendDur(srcHost, sendBytes)
	if err != nil {
		return err
	}
	anchor := g.Nodes[t0.send]
	send := r.add(&rnode{
		kind: KindSend, host: srcHost, res: srcHost + "/out", dur: sDur,
		preds: append([]redge(nil), r.nodes[t0.send].preds...),
		keyT:  anchor.Start, keyID: anchor.ID, keySub: 1,
	})
	rDur, err := r.recvDur(host, sendBytes)
	if err != nil {
		return err
	}
	aR := g.Nodes[t0.recv]
	recv := r.add(&rnode{
		kind: KindRecv, host: host, res: host + "/in", dur: rDur,
		preds: []redge{{from: send, lag: g.Latency}},
		keyT:  aR.Start, keyID: aR.ID, keySub: 1,
	})
	aS := g.Nodes[t0.span]
	span := r.add(&rnode{
		kind: KindSpan, host: host, dur: spanDur,
		preds: []redge{{from: recv}},
		keyT:  aS.Start, keyID: aS.ID, keySub: 1,
	})
	pDur, err := r.sendDur(host, repBytes)
	if err != nil {
		return err
	}
	aP := g.Nodes[t0.rep]
	rep := r.add(&rnode{
		kind: KindSend, host: host, res: host + "/out", dur: pDur,
		preds: []redge{{from: span}},
		keyT:  aP.Start, keyID: aP.ID, keySub: 1,
	})
	qDur, err := r.recvDur(dstHost, repBytes)
	if err != nil {
		return err
	}
	aQ := g.Nodes[t0.repRecv]
	repRecv := r.add(&rnode{
		kind: KindRecv, host: dstHost, res: dstHost + "/in", dur: qDur,
		preds: []redge{{from: rep, lag: g.Latency}},
		keyT:  aQ.Start, keyID: aQ.ID, keySub: 1,
	})
	for _, t := range ts {
		r.drop(t.send, send)
		r.drop(t.recv, recv)
		r.drop(t.span, span)
		r.drop(t.rep, rep)
		r.drop(t.repRecv, repRecv)
	}
	chains[host] = append(chains[host], chainRec{keyT: aS.Start, keyID: aS.ID, span: span, last: rep})
	return nil
}

// splitTriplet divides one shard interaction across f sub-shards, the
// synthesized ones named host~1..host~f−1 and inheriting the host's spec.
func (r *retimer) splitTriplet(t triplet, f int, header float64, chains map[string][]chainRec) error {
	g := r.g.src
	srcHost := g.Nodes[t.send].Host
	baseHost := g.Nodes[t.recv].Host
	dstHost := g.Nodes[t.repRecv].Host
	sendBytes := (g.Nodes[t.send].Bytes-header)/float64(f) + header
	repBytes := (g.Nodes[t.rep].Bytes-header)/float64(f) + header
	spanDur := g.Nodes[t.span].Dur / float64(f)
	var sends, recvs, spans, reps, repRecvs []int
	prevSend := -1
	for i := 0; i < f; i++ {
		sub := baseHost
		if i > 0 {
			sub = baseHost + "~" + strconv.Itoa(i)
		}
		sDur, err := r.sendDur(srcHost, sendBytes)
		if err != nil {
			return err
		}
		var sPreds []redge
		if prevSend < 0 {
			sPreds = append([]redge(nil), r.nodes[t.send].preds...)
		} else {
			sPreds = []redge{{from: prevSend}}
		}
		a := g.Nodes[t.send]
		send := r.add(&rnode{
			kind: KindSend, host: srcHost, res: srcHost + "/out", dur: sDur,
			preds: sPreds, keyT: a.Start, keyID: a.ID, keySub: i + 1,
		})
		prevSend = send
		rDur, err := r.recvDur(sub, sendBytes)
		if err != nil {
			return err
		}
		aR := g.Nodes[t.recv]
		recv := r.add(&rnode{
			kind: KindRecv, host: sub, res: sub + "/in", dur: rDur,
			preds: []redge{{from: send, lag: g.Latency}},
			keyT:  aR.Start, keyID: aR.ID, keySub: i + 1,
		})
		aS := g.Nodes[t.span]
		span := r.add(&rnode{
			kind: KindSpan, host: sub, dur: spanDur,
			preds: []redge{{from: recv}},
			keyT:  aS.Start, keyID: aS.ID, keySub: i + 1,
		})
		pDur, err := r.sendDur(sub, repBytes)
		if err != nil {
			return err
		}
		aP := g.Nodes[t.rep]
		rep := r.add(&rnode{
			kind: KindSend, host: sub, res: sub + "/out", dur: pDur,
			preds: []redge{{from: span}},
			keyT:  aP.Start, keyID: aP.ID, keySub: i + 1,
		})
		qDur, err := r.recvDur(dstHost, repBytes)
		if err != nil {
			return err
		}
		aQ := g.Nodes[t.repRecv]
		repRecv := r.add(&rnode{
			kind: KindRecv, host: dstHost, res: dstHost + "/in", dur: qDur,
			preds: []redge{{from: rep, lag: g.Latency}},
			keyT:  aQ.Start, keyID: aQ.ID, keySub: i + 1,
		})
		sends, recvs, spans = append(sends, send), append(recvs, recv), append(spans, span)
		reps, repRecvs = append(reps, rep), append(repRecvs, repRecv)
		chains[sub] = append(chains[sub], chainRec{keyT: aS.Start, keyID: aS.ID, span: span, last: rep})
	}
	r.drop(t.send, sends...)
	r.drop(t.recv, recvs...)
	r.drop(t.span, spans...)
	r.drop(t.rep, reps...)
	r.drop(t.repRecv, repRecvs...)
	return nil
}

func hostOfNode(g *Graph, id int) string { return g.Nodes[id].Host }

// chainRec orders a surviving shard host's synthesized work spans so
// consecutive interactions serialize the way one shard process would: each
// span is additionally gated by the previous interaction's reply send.
type chainRec struct {
	keyT       float64
	keyID      int
	span, last int
}

// ---------------------------------------------------------------------------
// Standard scenario set.

// hasSequentialCollectives reports whether the trace carries un-chunked
// reduce-scatter traffic the chunk transform can act on.
func hasSequentialCollectives(g *Graph) bool {
	for _, n := range g.Nodes {
		if n.Kind == KindSend && strings.HasPrefix(n.Note, rsPrefix) && !strings.Contains(n.Note, ".c") {
			return true
		}
	}
	return false
}

// hasStreamedCollectives reports whether any of that traffic belongs to a
// gradient-producing (AverageProduced) call site the overlap transform can
// stream.
func hasStreamedCollectives(g *Graph) bool {
	for _, n := range g.Nodes {
		if n.Kind == KindSend && strings.HasPrefix(n.Note, rsPrefix) && !strings.Contains(n.Note, ".c") &&
			streamedCollective(strings.TrimPrefix(n.Note, rsPrefix)) {
			return true
		}
	}
	return false
}

// StandardScenarios returns the named what-if set for a trace: the uniform
// scalings always, the chunk re-pipelining when sequential collectives are
// present, and the shard re-counts when the trace has a serving tier.
func StandardScenarios(g *Graph) []Scenario {
	scs := []Scenario{
		{Name: "baseline"},
		{Name: "comm x0.5", CommScale: 0.5},
		{Name: "compute x0.5", ComputeScale: 0.5},
		{Name: "latency x0.5", LatencyScale: 0.5},
		{Name: "driver=0", DriverZero: true},
	}
	if hasSequentialCollectives(g) {
		scs = append(scs, Scenario{Name: "chunks=8", Chunks: 8})
		if hasStreamedCollectives(g) {
			scs = append(scs, Scenario{Name: "overlap", Overlap: true})
		}
	}
	if k := serveShardCount(g); k > 0 {
		scs = append(scs, Scenario{Name: fmt.Sprintf("shards=%d", 2*k), Shards: 2 * k})
		if k > 1 {
			scs = append(scs, Scenario{Name: "shards=1", Shards: 1})
		}
	}
	return scs
}

// WhatIf re-times every scenario against the graph.
func WhatIf(g *Graph, scs []Scenario) []Prediction {
	out := make([]Prediction, 0, len(scs))
	for _, sc := range scs {
		out = append(out, Retime(g, sc))
	}
	return out
}

// WhatIfText renders the scenario table. Deterministic for a given log.
func WhatIfText(g *Graph, preds []Prediction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "what-if re-timing (recorded makespan %.6fs):\n", g.Makespan())
	fmt.Fprintf(&b, "  %-14s %16s %9s\n", "scenario", "predicted", "speedup")
	for _, p := range preds {
		if p.Err != "" {
			fmt.Fprintf(&b, "  %-14s %16s   (%s)\n", p.Scenario.Name, "n/a", p.Err)
			continue
		}
		fmt.Fprintf(&b, "  %-14s %15.6fs %8.2fx\n", p.Scenario.Name, p.Makespan, p.Speedup)
	}
	return b.String()
}
