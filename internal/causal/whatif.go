package causal

import (
	"math"
	"sort"
	"strings"

	"mllibstar/internal/allreduce"
)

// Scenario is a hypothetical re-timing of a recorded run. Zero-valued
// scale fields mean 1 (unchanged); Chunks/Shards of zero leave the
// corresponding structure alone.
type Scenario struct {
	Name         string
	CommScale    float64 // scales every message service duration
	ComputeScale float64 // scales every span duration
	LatencyScale float64 // scales every propagation lag
	DriverZero   bool    // zero all busy time on driver-prefixed hosts (spans and NIC services)
	Chunks       int     // re-chunk every sequential AllReduce into this many pipelined chunks
	Shards       int     // re-shard the serving tier to this many shards

	// Overlap re-times the trace as if -overlap were on: every sequential
	// collective becomes pipelined (Chunks chunks; allreduce.DefaultChunks
	// when Chunks is zero), and the gradient-producing collectives
	// additionally stream feature-major blocks into the chunk sends — the
	// allreduce.AverageProduced schedule, rebuilt from the recorded
	// gradient charge.
	Overlap bool
}

// Prediction is the outcome of re-timing one scenario.
type Prediction struct {
	Scenario Scenario
	Makespan float64
	Speedup  float64
	Err      string // non-empty when the scenario does not apply to this trace
}

func scale(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

// Retime replays the graph's schedule under the scenario: nodes run in the
// original (start, id) order, each starting at the latest of its
// predecessors' completions, its NIC's free time, and its exogenous floor —
// the original start time, kept only where the original schedule shows a
// gap no predecessor explains (request pacing, batching deadlines, startup
// staggers). The identity scenario reproduces every original timestamp
// bit-for-bit, which TestRetimeIdentity pins; structural scenarios
// (Chunks, Shards, Overlap) rebuild the affected subgraphs the way the
// simulator itself would have built them.
func Retime(g *Graph, sc Scenario) Prediction {
	pr := Prediction{Scenario: sc}
	base := g.Makespan()
	r := lower(g)
	if sc.Overlap {
		C := sc.Chunks
		if C <= 0 {
			C = allreduce.DefaultChunks
		}
		if err := overlapTransform(r, C); err != nil {
			pr.Err = err.Error()
			return pr
		}
	} else if sc.Chunks > 0 {
		if err := chunkTransform(r, sc.Chunks); err != nil {
			pr.Err = err.Error()
			return pr
		}
	}
	if sc.Shards > 0 {
		if err := shardTransform(r, sc.Shards); err != nil {
			pr.Err = err.Error()
			return pr
		}
	}
	r.applyScales(sc)
	r.finalize()
	pr.Makespan = r.schedule(scale(sc.LatencyScale))
	if pr.Makespan > 0 {
		pr.Speedup = base / pr.Makespan
	}
	return pr
}

// redge is an edge in the lowered graph; from indexes retimer.nodes.
type redge struct {
	from int
	lag  float64
}

// rnode is a lowered node: original nodes keep their recorded span for the
// identity shortcut and exogenous floor; synthesized nodes (chunk/shard
// rebuilds) carry key material from the original node they replace so the
// replay order stays deterministic.
type rnode struct {
	kind    NodeKind
	host    string
	res     string
	grp     string
	dur     float64
	exo     float64
	preds   []redge
	scaled  bool // duration or structure altered by the scenario
	dropped bool
	hasOrig bool
	origStart, origEnd float64
	keyT   float64
	keyID  int
	keySub int

	newStart, newEnd float64
}

type retimer struct {
	g        *retimerGraph
	nodes    []*rnode
	redirect map[int][]int // dropped original id -> replacement indices for incoming edges
	groups   map[string][]int
}

// retimerGraph is the slice of Graph the retimer needs, kept separate so
// transforms cannot accidentally mutate the source graph.
type retimerGraph struct {
	src       *Graph
	recvOfMID map[int64]int
}

// lower copies the graph into mutable retimer nodes, computing each
// original node's exogenous floor from its recorded gating.
func lower(g *Graph) *retimer {
	r := &retimer{
		g:        &retimerGraph{src: g, recvOfMID: map[int64]int{}},
		redirect: map[int][]int{},
		groups:   map[string][]int{},
	}
	for _, n := range g.Nodes {
		if n.Kind == KindRecv && n.MID != 0 {
			r.g.recvOfMID[n.MID] = n.ID
		}
	}
	for grp, ids := range g.Groups { //mlstar:nolint determinism -- order-insensitive: copying a map into a map
		r.groups[grp] = append([]int(nil), ids...)
	}
	for _, n := range g.Nodes {
		rn := &rnode{
			kind: n.Kind, host: n.Host, res: n.Res, grp: n.Grp, dur: n.Dur,
			hasOrig: true, origStart: n.Start, origEnd: n.End,
			keyT: n.Start, keyID: n.ID,
		}
		gate := math.Inf(-1)
		for _, e := range n.Preds {
			rn.preds = append(rn.preds, redge{from: e.From, lag: e.Lag})
			if ready := g.Nodes[e.From].End + e.Lag; ready > gate {
				gate = ready
			}
		}
		// Resource readiness counts toward the gate for recvs (the in-NIC
		// reservation starts at max(arrival, free)), not for sends, whose
		// recorded start is the request time before any queueing.
		if n.Kind == KindRecv && n.ResPred >= 0 {
			if ready := g.Nodes[n.ResPred].End; ready > gate {
				gate = ready
			}
		}
		if n.Start > gate+eps {
			rn.exo = n.Start
		}
		r.nodes = append(r.nodes, rn)
	}
	return r
}

func (r *retimer) add(rn *rnode) int {
	rn.scaled = true
	r.nodes = append(r.nodes, rn)
	return len(r.nodes) - 1
}

func isDriverHost(host string) bool { return strings.HasPrefix(host, "driver") }

func (r *retimer) applyScales(sc Scenario) {
	comm, comp := scale(sc.CommScale), scale(sc.ComputeScale)
	for _, rn := range r.nodes {
		if rn.dropped {
			continue
		}
		switch rn.kind {
		case KindSend, KindRecv:
			if sc.DriverZero && isDriverHost(rn.host) {
				rn.dur, rn.scaled = 0, true
				continue
			}
			rn.dur *= comm
			//mlstar:nolint floateq -- exact compare intentional: exactly 1 means the scenario left this dimension unscaled
			if comm != 1 {
				rn.scaled = true
			}
		case KindSpan:
			if sc.DriverZero && isDriverHost(rn.host) {
				rn.dur, rn.scaled = 0, true
				continue
			}
			rn.dur *= comp
			//mlstar:nolint floateq -- exact compare intentional: exactly 1 means the scenario left this dimension unscaled
			if comp != 1 {
				rn.scaled = true
			}
		}
	}
}

// finalize rewires edges that point at dropped nodes to their replacements.
func (r *retimer) finalize() {
	for i, rn := range r.nodes {
		if rn.dropped {
			continue
		}
		rewired := rn.preds[:0]
		for _, e := range rn.preds {
			if !r.nodes[e.from].dropped {
				rewired = append(rewired, e)
				continue
			}
			for _, to := range r.redirect[e.from] {
				if to != i {
					rewired = append(rewired, redge{from: to, lag: e.lag})
				}
			}
		}
		rn.preds = rewired
	}
}

// keyLess orders lowered nodes by (original start, id, sub) — the replay
// priority. For an untransformed graph this order is itself topological
// (Validate proves every edge runs backward in it), so the ready-list
// scheduler below degenerates to a plain sorted sweep and the identity
// replay is exact.
func (r *retimer) keyLess(a, b int) bool {
	na, nb := r.nodes[a], r.nodes[b]
	//mlstar:nolint floateq -- exact compare intentional: equal keys fall through to the id tie-breaks
	if na.keyT != nb.keyT {
		return na.keyT < nb.keyT
	}
	if na.keyID != nb.keyID {
		return na.keyID < nb.keyID
	}
	return na.keySub < nb.keySub
}

// readyOrder linearizes the live nodes: repeatedly the lowest-key node whose
// predecessors are all placed. Structural transforms synthesize nodes whose
// keys (inherited from the originals they replace) need not topologically
// sort — a pipelined allgather send keys with the sends but is gated by a
// later-keyed fold — so a plain key sort would read unscheduled
// predecessors. Successors of a barrier member wait for the whole group,
// since the release is resolved from every member's placement. A leftover
// cycle (malformed input) drains in key order rather than hanging.
func (r *retimer) readyOrder() []int {
	n := len(r.nodes)
	indeg := make([]int, n)
	succs := make([][]int, n)
	live := 0
	addDep := func(from, to int) {
		if from == to || r.nodes[from].dropped {
			return
		}
		succs[from] = append(succs[from], to)
		indeg[to]++
	}
	for i, rn := range r.nodes {
		if rn.dropped {
			continue
		}
		live++
		for _, e := range rn.preds {
			p := r.nodes[e.from]
			if p.kind == KindBarrier && p.grp != "" {
				for _, m := range r.groups[p.grp] {
					addDep(m, i)
				}
				continue
			}
			addDep(e.from, i)
		}
	}
	h := &keyHeap{r: r}
	for i, rn := range r.nodes {
		if !rn.dropped && indeg[i] == 0 {
			h.push(i)
		}
	}
	order := make([]int, 0, live)
	placed := make([]bool, n)
	for h.Len() > 0 {
		i := h.pop()
		order = append(order, i)
		placed[i] = true
		for _, s := range succs[i] {
			if indeg[s]--; indeg[s] == 0 {
				h.push(s)
			}
		}
	}
	if len(order) < live {
		var rest []int
		for i, rn := range r.nodes {
			if !rn.dropped && !placed[i] {
				rest = append(rest, i)
			}
		}
		sort.Slice(rest, func(a, b int) bool { return r.keyLess(rest[a], rest[b]) })
		order = append(order, rest...)
	}
	return order
}

// keyHeap is a min-heap of node indices under keyLess.
type keyHeap struct {
	r  *retimer
	xs []int
}

func (h *keyHeap) Len() int { return len(h.xs) }

func (h *keyHeap) push(i int) {
	h.xs = append(h.xs, i)
	c := len(h.xs) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !h.r.keyLess(h.xs[c], h.xs[p]) {
			break
		}
		h.xs[c], h.xs[p] = h.xs[p], h.xs[c]
		c = p
	}
}

func (h *keyHeap) pop() int {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	p := 0
	for {
		c := 2*p + 1
		if c >= len(h.xs) {
			break
		}
		if c+1 < len(h.xs) && h.r.keyLess(h.xs[c+1], h.xs[c]) {
			c++
		}
		if !h.r.keyLess(h.xs[c], h.xs[p]) {
			break
		}
		h.xs[p], h.xs[c] = h.xs[c], h.xs[p]
		p = c
	}
	return top
}

// schedule replays the lowered nodes in ready-list order with per-resource
// FIFO and lazy barrier resolution, returning the new makespan.
func (r *retimer) schedule(latScale float64) float64 {
	order := r.readyOrder()
	freeAt := map[string]float64{}
	// Per resource: every occupant so far reproduced its original end
	// bit-for-bit, so max(gate, freeAt) is the arithmetic the simulator did.
	perfect := map[string]bool{}
	perfectAt := func(res string) bool {
		p, seen := perfect[res]
		return p || !seen
	}
	grpEnd := map[string]float64{}
	endOf := func(i int) float64 {
		n := r.nodes[i]
		if n.kind != KindBarrier {
			return n.newEnd
		}
		// A barrier's release is the slowest member's (re-timed) arrival;
		// every member is scheduled before any successor reads this.
		e, ok := grpEnd[n.grp]
		if !ok {
			e = math.Inf(-1)
			for _, m := range r.groups[n.grp] {
				if s := r.nodes[m].newStart; s > e {
					e = s
				}
			}
			grpEnd[n.grp] = e
		}
		return e
	}
	makespan := 0.0
	for _, i := range order {
		rn := r.nodes[i]
		gate := rn.exo
		for _, e := range rn.preds {
			if ready := endOf(e.from) + e.lag*latScale; ready > gate {
				gate = ready
			}
		}
		switch rn.kind {
		case KindSend:
			rn.newStart = gate
			res := rn.res
			busy := math.Max(gate, freeAt[res])
			//mlstar:nolint floateq -- exact compare intentional: the identity shortcut fires only on bitwise reproduction
			ok, wasPerfect := !rn.scaled && rn.hasOrig && rn.newStart == rn.origStart, perfectAt(res)
			if ok && wasPerfect {
				rn.newEnd = rn.origEnd
			} else {
				rn.newEnd = busy + rn.dur
			}
			//mlstar:nolint floateq -- exact compare intentional: the identity shortcut fires only on bitwise reproduction
			perfect[res] = wasPerfect && ok && rn.newEnd == rn.origEnd
			freeAt[res] = rn.newEnd
		case KindRecv:
			res := rn.res
			busy := math.Max(gate, freeAt[res])
			rn.newStart = busy
			//mlstar:nolint floateq -- exact compare intentional: the identity shortcut fires only on bitwise reproduction
			ok, wasPerfect := !rn.scaled && rn.hasOrig && busy == rn.origStart, perfectAt(res)
			if ok && wasPerfect {
				rn.newEnd = rn.origEnd
			} else {
				rn.newEnd = busy + rn.dur
			}
			//mlstar:nolint floateq -- exact compare intentional: the identity shortcut fires only on bitwise reproduction
			perfect[res] = wasPerfect && ok && rn.newEnd == rn.origEnd
			freeAt[res] = rn.newEnd
		case KindSpan:
			rn.newStart = gate
			//mlstar:nolint floateq -- exact compare intentional: the identity shortcut fires only on bitwise reproduction
			if !rn.scaled && rn.hasOrig && gate == rn.origStart {
				rn.newEnd = rn.origEnd
			} else {
				rn.newEnd = gate + rn.dur
			}
		case KindBarrier:
			rn.newStart = gate
			rn.newEnd = math.NaN() // resolved lazily via grpEnd
		default: // fork
			rn.newStart, rn.newEnd = gate, gate
		}
		if rn.kind != KindBarrier && rn.newEnd > makespan {
			makespan = rn.newEnd
		}
	}
	for _, i := range order {
		if rn := r.nodes[i]; rn.kind == KindBarrier {
			if e := endOf(i); e > makespan {
				makespan = e
			}
		}
	}
	return makespan
}
