// Package clusters defines the simulated cluster presets used across the
// experiments, mirroring the two testbeds of the paper's evaluation:
//
//   - Cluster 1: 9 nodes (1 driver + 8 executors) on a 1 Gbps network,
//     homogeneous — the public-dataset experiments (Figures 3–5).
//   - Cluster 2: a slice of Tencent's large production cluster on a 10 Gbps
//     network with heterogeneous per-task performance — the WX experiments
//     (Figure 6), where stragglers dominate scalability.
//
// Compute rates are expressed in "nonzeros processed per second", the work
// unit every trainer charges. The absolute values are calibrated so that
// the compute/communication balance of the scaled-down datasets matches the
// paper's regime; experiment conclusions depend on ratios, not absolutes.
package clusters

import (
	"fmt"

	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/simnet"
	"mllibstar/internal/trace"
)

// Spec describes a simulated cluster.
type Spec struct {
	Name        string
	Executors   int
	ComputeRate float64 // nonzeros per second per node
	DriverRate  float64 // driver-node compute rate (0 = same as ComputeRate)
	// HeteroSpread makes worker speeds deterministic but unequal: node i of
	// n runs at ComputeRate / (1 + HeteroSpread·i/(n−1)), so the slowest
	// node is (1 + HeteroSpread)x slower than the fastest. 0 = homogeneous.
	HeteroSpread float64
	Bandwidth    float64 // NIC bandwidth in bytes/s (full duplex, per direction)
	Latency      float64 // one-way message latency in seconds
	Engine       engine.Config
}

// Cluster1 returns the paper's 9-node/1 Gbps testbed with the given number
// of executors (8 in the paper).
func Cluster1(executors int) Spec {
	return Spec{
		Name:        "cluster1",
		Executors:   executors,
		ComputeRate: 1e8,     // ~one core of sparse FLOPs
		Bandwidth:   125e6,   // 1 Gbps
		Latency:     0.00025, // LAN round-trip /2
		Engine: engine.Config{
			TaskBytes:     4096,
			ResultBytes:   1024,
			SchedulerWork: 2e4, // ~0.2 ms of driver time per task
		},
	}
}

// Cluster2 returns the Tencent-like testbed: 10 Gbps network and strongly
// heterogeneous per-task compute (the paper attributes Figure 6's poor
// scalability to stragglers in the large shared cluster).
func Cluster2(executors int) Spec {
	return Spec{
		Name:      "cluster2",
		Executors: executors,
		// Production nodes are heavily shared: the per-task compute share is
		// far below a dedicated core, which is what makes compute (not just
		// communication) matter at WX scale.
		ComputeRate: 2e7,
		DriverRate:  4e8, // the driver is a dedicated, unshared node
		Bandwidth:   1.25e9,
		Latency:     0.0005,
		Engine: engine.Config{
			TaskBytes:       4096,
			ResultBytes:     1024,
			SchedulerWork:   2e3,
			StragglerFactor: 2.0, // tasks may run up to 3x slower
			StragglerSeed:   1,
		},
	}
}

// CommBound returns a cluster tuned so one AllReduce's network serialization
// takes about as long as the fold-and-decode compute it carries: bandwidth is
// 8 bytes per nonzero-per-second of compute — exactly the dense wire cost of
// one model coordinate — so a superstep splits its time evenly between
// moving coordinates and combining them. This is the regime where pipelined
// supersteps pay best (max(compute, comm) approaches half of compute + comm)
// and the preset the pipeline speedup benchmarks run on.
func CommBound(executors int) Spec {
	return Spec{
		Name:        "commbound",
		Executors:   executors,
		ComputeRate: 1e8,
		Bandwidth:   8e8,
		Latency:     0.00002,
		Engine:      engine.Config{TaskBytes: 512, ResultBytes: 128},
	}
}

// Test returns a small fast cluster for unit tests: modest rates, no fixed
// overheads, fully deterministic.
func Test(executors int) Spec {
	return Spec{
		Name:        "test",
		Executors:   executors,
		ComputeRate: 1e7,
		Bandwidth:   1e7,
		Latency:     0.0001,
		Engine:      engine.Config{TaskBytes: 512, ResultBytes: 128},
	}
}

// BuildNet materializes the spec as a bare simulated network of worker
// nodes (no Spark driver) — the substrate for the parameter-server systems,
// which co-locate a server process and a worker process on each node. The
// returned names are the worker node names in order.
func (s Spec) BuildNet(rec *trace.Recorder) (*des.Sim, *simnet.Network, []string) {
	if s.Executors <= 0 {
		panic(fmt.Sprintf("clusters: %d executors", s.Executors))
	}
	sim := des.New()
	specs := simnet.Uniform("worker", s.Executors, s.ComputeRate, s.Bandwidth)
	s.applySpread(specs)
	net := simnet.New(sim, simnet.Config{Latency: s.Latency, OverheadBytes: 64}, specs, rec)
	names := make([]string, s.Executors)
	for i := range names {
		names[i] = specs[i].Name
	}
	return sim, net, names
}

// ServeNames names the nodes of a serving testbed built by BuildServe.
type ServeNames struct {
	Router  string
	Shards  []string
	Clients []string
}

// BuildServe materializes the spec as the serving-tier testbed: one router
// node (running at DriverRate when set — the router is the serving
// deployment's fan-out point, like the driver is training's), shards scoring
// nodes, and clients load-generator nodes, all on the spec's network.
func (s Spec) BuildServe(shards, clients int, rec *trace.Recorder) (*des.Sim, *simnet.Network, ServeNames) {
	if shards <= 0 || clients <= 0 {
		panic(fmt.Sprintf("clusters: BuildServe(shards=%d, clients=%d)", shards, clients))
	}
	sim := des.New()
	routerRate := s.DriverRate
	if routerRate <= 0 {
		routerRate = s.ComputeRate
	}
	specs := make([]simnet.NodeSpec, 0, 1+shards+clients)
	specs = append(specs, simnet.NodeSpec{
		Name: "router", ComputeRate: routerRate, SendBW: s.Bandwidth, RecvBW: s.Bandwidth,
	})
	shardSpecs := simnet.Uniform("shard", shards, s.ComputeRate, s.Bandwidth)
	s.applySpread(shardSpecs)
	specs = append(specs, shardSpecs...)
	specs = append(specs, simnet.Uniform("client", clients, s.ComputeRate, s.Bandwidth)...)
	net := simnet.New(sim, simnet.Config{Latency: s.Latency, OverheadBytes: 64}, specs, rec)
	names := ServeNames{Router: "router"}
	for i := 0; i < shards; i++ {
		names.Shards = append(names.Shards, shardSpecs[i].Name)
	}
	for i := 0; i < clients; i++ {
		names.Clients = append(names.Clients, fmt.Sprintf("client%d", i))
	}
	return sim, net, names
}

// Build materializes the spec: a fresh simulation, a cluster whose first
// node is the driver, and a Context configured with the spec's engine
// overheads. rec may be nil to disable activity tracing.
func (s Spec) Build(rec *trace.Recorder) (*des.Sim, *engine.Cluster, *engine.Context) {
	if s.Executors <= 0 {
		panic(fmt.Sprintf("clusters: %d executors", s.Executors))
	}
	sim := des.New()
	driverRate := s.DriverRate
	if driverRate <= 0 {
		driverRate = s.ComputeRate
	}
	specs := make([]simnet.NodeSpec, 0, s.Executors+1)
	specs = append(specs, simnet.NodeSpec{
		Name: "driver", ComputeRate: driverRate, SendBW: s.Bandwidth, RecvBW: s.Bandwidth,
	})
	workers := simnet.Uniform("executor", s.Executors, s.ComputeRate, s.Bandwidth)
	s.applySpread(workers)
	specs = append(specs, workers...)
	cl := engine.NewCluster(sim, simnet.Config{Latency: s.Latency, OverheadBytes: 64}, specs, rec)
	ctx := engine.NewContext(cl, s.Engine)
	return sim, cl, ctx
}

// applySpread slows node i of n by the deterministic heterogeneity factor.
func (s Spec) applySpread(specs []simnet.NodeSpec) {
	if s.HeteroSpread <= 0 || len(specs) < 2 {
		return
	}
	for i := range specs {
		frac := float64(i) / float64(len(specs)-1)
		specs[i].ComputeRate = s.ComputeRate / (1 + s.HeteroSpread*frac)
	}
}
