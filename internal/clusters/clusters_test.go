package clusters

import (
	"testing"

	"mllibstar/internal/des"
)

func TestPresetsHaveSaneRates(t *testing.T) {
	for _, spec := range []Spec{Cluster1(8), Cluster2(32), Test(4)} {
		if spec.ComputeRate <= 0 || spec.Bandwidth <= 0 || spec.Latency < 0 {
			t.Errorf("%s: bad rates %+v", spec.Name, spec)
		}
		if spec.Executors <= 0 {
			t.Errorf("%s: %d executors", spec.Name, spec.Executors)
		}
	}
}

func TestCluster2IsHeterogeneous(t *testing.T) {
	spec := Cluster2(8)
	if spec.Engine.StragglerFactor <= 0 {
		t.Error("cluster2 must model stragglers")
	}
	if Cluster1(8).Engine.StragglerFactor != 0 {
		t.Error("cluster1 must be homogeneous")
	}
}

func TestBuildWiresDriverAndExecutors(t *testing.T) {
	sim, cl, ctx := Test(3).Build(nil)
	if cl.Driver != "driver" || len(cl.Execs) != 3 {
		t.Errorf("cluster = %+v", cl)
	}
	if ctx.NumExecutors() != 3 {
		t.Errorf("ctx executors = %d", ctx.NumExecutors())
	}
	sim.Run() // executors spawned; must shut down cleanly
}

func TestBuildDriverRateOverride(t *testing.T) {
	spec := Test(1)
	spec.DriverRate = 123456
	_, cl, _ := spec.Build(nil)
	if got := cl.Net.Node("driver").Spec().ComputeRate; got != 123456 {
		t.Errorf("driver rate = %g", got)
	}
	if got := cl.Net.Node("executor0").Spec().ComputeRate; got != spec.ComputeRate {
		t.Errorf("executor rate = %g", got)
	}
}

func TestBuildNetNamesWorkers(t *testing.T) {
	sim, net, names := Test(4).BuildNet(nil)
	if len(names) != 4 || names[0] != "worker0" || names[3] != "worker3" {
		t.Errorf("names = %v", names)
	}
	var ran bool
	sim.Spawn("p", func(p *des.Proc) {
		net.Node(names[1]).Compute(p, 100)
		ran = true
	})
	sim.Run()
	if !ran {
		t.Error("network not usable")
	}
}

func TestBuildPanicsOnZeroExecutors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Spec{Name: "x"}.Build(nil)
}
