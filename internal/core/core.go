// Package core implements MLlib*, the paper's contribution: the SendModel
// paradigm with model averaging (removing bottleneck B1 — one model update
// per communication step) executed over a driverless AllReduce built from
// two shuffle rounds (removing bottleneck B2 — the driver and intermediate
// aggregators serializing model traffic). This is Algorithm 3 of the paper.
//
// Each executor keeps a persistent local model. One communication step is a
// single BSP stage in which every executor (1) refines its local model with
// per-example SGD over its whole partition — using Bottou's lazily scaled
// update when an L2 term is present, (2) participates in Reduce-Scatter to
// average the partition of the model it owns, and (3) participates in
// AllGather to reassemble the full averaged model. The driver only
// schedules the stage; no model bytes ever flow through it.
package core

import (
	"fmt"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/data"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
	"mllibstar/internal/obs"
	"mllibstar/internal/opt"
	"mllibstar/internal/train"
	"mllibstar/internal/vec"
)

// System is the curve label for this trainer.
const System = "MLlib*"

// Train runs MLlib* on the cluster behind ctx. parts must have one
// partition per executor, in executor order. evalData is the out-of-band
// evaluation set; dataset labels the returned curve.
func Train(ctx *engine.Context, parts []data.View, dim int, prm train.Params,
	evalData []glm.Example, dataset string) (*train.Result, error) {

	if err := prm.Validate(); err != nil {
		return nil, err
	}
	k := ctx.NumExecutors()
	if len(parts) != k {
		return nil, fmt.Errorf("core: %d partitions for %d executors", len(parts), k)
	}

	sim := ctx.Cluster.Sim
	net := ctx.Cluster.Net
	ev := train.NewEvaluator(System, dataset, prm.Objective, evalData, prm.EvalEvery)
	sched := prm.Schedule()

	res := &train.Result{System: System, Curve: ev.Curve}

	// Persistent per-executor local models — the heart of SendModel: they
	// live on the executors across steps and are never broadcast.
	locals := make([][]float64, k)
	for i := range locals {
		locals[i] = make([]float64, dim)
	}
	// Per-executor AdaGrad accumulators, also persistent across steps.
	var adagrads []*opt.AdaGrad
	if prm.AdaGrad {
		adagrads = make([]*opt.AdaGrad, k)
		for i := range adagrads {
			adagrads[i] = opt.NewAdaGrad(dim, prm.Eta)
		}
	}
	// Per-executor optimizer scratch, reused across steps. Each slot is only
	// touched by executor i's pure closure, one stage at a time.
	scratch := make([]*opt.PassScratch, k)
	for i := range scratch {
		scratch[i] = opt.NewPassScratch()
	}
	// ref snapshots the synchronized model at the top of each step — the
	// reference every executor's local already equals bitwise, against which
	// the AllReduce delta-encodes when sparse exchange is on. The snapshot is
	// simulation bookkeeping, not a modeled computation (each executor holds
	// the same bits as locals[i]), so it is not charged.
	ref := make([]float64, dim)

	sim.Spawn("driver:mllibstar", func(p *des.Proc) {
		ev.Record(0, p.Now(), locals[0])
		for t := 1; t <= prm.MaxSteps; t++ {
			obs.Active().SetStep(t, p.Now())
			copy(ref, locals[0])
			tasks := make([]engine.Task, k)
			for i := 0; i < k; i++ {
				i := i
				tasks[i] = engine.Task{
					Exec: ctx.Cluster.Execs[i],
					// UpdateModel: per-example SGD over the local partition
					// (lazy L2 when regularized), offloaded as the task's
					// pure closure — it touches only locals[i] and executor
					// i's private optimizer state. The learning rate is
					// constant within a step and decays (if configured)
					// across steps. With Splash-style reweighting the local
					// step size is scaled by k, as if the partition were the
					// whole dataset, before averaging.
					Pure: func() float64 {
						local := locals[i]
						work := 0
						if prm.AdaGrad {
							for pass := 0; pass < prm.LocalPasses; pass++ {
								work += adagrads[i].Pass(prm.Objective, local, parts[i].Examples())
							}
						} else {
							eta := sched(t - 1)
							if prm.Reweight {
								eta *= float64(k)
							}
							etaT := opt.Const(eta)
							for pass := 0; pass < prm.LocalPasses; pass++ {
								work += opt.LocalPassView(prm.Objective, local, parts[i], etaT, 0, scratch[i])
							}
						}
						return float64(work)
					},
					Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
						// Reduce-Scatter + AllGather: distributed averaging.
						// The exchange delta-encodes against the step-start
						// model when sparse communication is enabled.
						allreduce.AverageDelta(p, ex, ctx.Cluster.Execs, i, fmt.Sprintf("s%d", t), locals[i], ref)
						return nil, 0
					},
				}
			}
			ctx.RunStage(p, fmt.Sprintf("mllibstar-%d", t), tasks)
			var stepUpdates int64
			for i := range parts {
				stepUpdates += int64(prm.LocalPasses * parts[i].NumRows())
			}
			res.Updates += stepUpdates
			obs.Active().Updates(t, "", stepUpdates, p.Now())

			res.CommSteps = t
			// After AllReduce all locals hold the identical averaged model.
			if obj, recorded := ev.Record(t, p.Now(), locals[0]); recorded {
				if prm.TargetObjective > 0 && obj <= prm.TargetObjective {
					break
				}
			}
			if prm.MaxSimTime > 0 && p.Now() >= prm.MaxSimTime {
				break
			}
		}
	})
	res.SimTime = sim.Run()
	res.FinalW = vec.Copy(locals[0])
	res.TotalBytes = net.TotalBytes()
	return res, nil
}
