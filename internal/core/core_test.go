package core_test

import (
	"math"
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/core"
	"mllibstar/internal/data"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
	"mllibstar/internal/mavg"
	"mllibstar/internal/mllib"
	"mllibstar/internal/opt"
	"mllibstar/internal/train"
)

// trainFn is the common signature of the three Spark-side trainers.
type trainFn func(ctx *engine.Context, parts []data.View, dim int, prm train.Params,
	evalData []glm.Example, dataset string) (*train.Result, error)

// smallWorkload builds a deterministic toy dataset with k partitions.
func smallWorkload(k int) (*data.Dataset, []data.View) {
	d := data.Generate(data.Spec{
		Name: "toy", Rows: 1600, Cols: 200, NNZPerRow: 10, Seed: 11, NoiseRate: 0.02,
	})
	return d, d.Partition(k, 3)
}

func runSystem(t *testing.T, fn trainFn, k int, prm train.Params) *train.Result {
	t.Helper()
	d, parts := smallWorkload(k)
	_, _, ctx := clusters.Test(k).Build(nil)
	res, err := fn(ctx, parts, d.Features, prm, d.Examples, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseParams() train.Params {
	return train.Params{
		Objective:     glm.SVM(0),
		Eta:           0.1,
		Decay:         true,
		BatchFraction: 0.1,
		MaxSteps:      60,
		Seed:          5,
	}
}

func TestAllSystemsApproachSequentialOptimum(t *testing.T) {
	d, _ := smallWorkload(4)
	obj := glm.SVM(0.01)
	ref := opt.ReferenceOptimum(obj, d.Examples, d.Features, 30)

	for _, tc := range []struct {
		name  string
		fn    trainFn
		steps int
		eta   float64
	}{
		// MLlib applies one update per communication step, so it needs far
		// more steps and a larger rate — itself the paper's observation.
		{"mllib", mllib.Train, 1200, 1.0},
		{"mavg", mavg.Train, 60, 0.1},
		{"mllibstar", core.Train, 60, 0.1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prm := baseParams()
			prm.Objective = obj
			prm.MaxSteps = tc.steps
			prm.Eta = tc.eta
			prm.EvalEvery = 5
			res := runSystem(t, tc.fn, 4, prm)
			best := res.Curve.Best()
			// The convex objective has a unique optimum; every system must
			// close most of the gap from the zero-model loss (~1.0).
			if best > ref+0.15 {
				t.Errorf("%s best objective %g, reference optimum %g", tc.name, best, ref)
			}
		})
	}
}

func TestMLlibStarConvergesInFarFewerSteps(t *testing.T) {
	// The paper's B1: SendGradient applies one update per communication
	// step, SendModel applies |partition| updates. Figure 4 reports 10x-200x
	// step reductions; at our scale even a conservative 3x must hold at a
	// fixed objective target.
	prm := baseParams()
	prm.MaxSteps = 40
	starRes := runSystem(t, core.Train, 4, prm)

	// Target: what MLlib* comfortably reaches; ask MLlib to match it.
	target := starRes.Curve.Best() + 0.02
	prm.MaxSteps = 400
	prm.Eta = 1.0 // favor the baseline
	prm.TargetObjective = target
	mlRes := runSystem(t, mllib.Train, 4, prm)

	starSteps, ok1 := starRes.Curve.StepsToReach(target)
	mlSteps, ok2 := mlRes.Curve.StepsToReach(target)
	if !ok1 {
		t.Fatalf("MLlib* did not reach target %g (best %g)", target, starRes.Curve.Best())
	}
	if !ok2 {
		// MLlib failing to reach the target within 400 steps while MLlib*
		// succeeds is itself the paper's result.
		t.Logf("MLlib did not reach target in %d steps (best %g); MLlib* took %d",
			prm.MaxSteps, mlRes.Curve.Best(), starSteps)
		return
	}
	if float64(mlSteps) < 3*float64(starSteps) {
		t.Errorf("steps: MLlib %d vs MLlib* %d — expected ≥3x reduction", mlSteps, starSteps)
	}
}

func TestMLlibStarFasterPerStepThanMAVGOnLargeModels(t *testing.T) {
	// The paper's B2: with model averaging alone, model traffic still
	// serializes at the driver, so per-step latency exceeds AllReduce's.
	d := data.Generate(data.Spec{Name: "wide", Rows: 800, Cols: 20000, NNZPerRow: 8, Seed: 2})
	parts := d.Partition(8, 3)
	prm := baseParams()
	prm.MaxSteps = 5

	perStep := func(fn trainFn) float64 {
		_, _, ctx := clusters.Test(8).Build(nil)
		res, err := fn(ctx, parts, d.Features, prm, d.Examples, d.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime / float64(res.CommSteps)
	}
	star := perStep(core.Train)
	ma := perStep(mavg.Train)
	if star >= ma {
		t.Errorf("per-step time: MLlib* %g >= MLlib+MA %g — AllReduce should beat the driver path", star, ma)
	}
}

func TestTrafficPerStepMatches2km(t *testing.T) {
	// Both MLlib and MLlib* move ~2·k·m bytes per communication step (the
	// paper's invariant; MLlib* saves latency, not bytes).
	d := data.Generate(data.Spec{Name: "m", Rows: 400, Cols: 5000, NNZPerRow: 6, Seed: 4})
	const k = 4
	parts := d.Partition(k, 3)
	prm := baseParams()
	prm.MaxSteps = 4
	prm.Aggregators = k // flat aggregation so MLlib's pattern is exactly 2km

	bytesPerStep := func(fn trainFn) float64 {
		_, _, ctx := clusters.Test(k).Build(nil)
		res, err := fn(ctx, parts, d.Features, prm, d.Examples, d.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalBytes / float64(res.CommSteps)
	}
	m := float64(d.Features) * engine.FloatBytes
	wantStar := 2 * float64(k-1) * m // (k-1)/k × 2km: owners skip themselves
	gotStar := bytesPerStep(core.Train)
	if math.Abs(gotStar-wantStar) > 0.1*wantStar {
		t.Errorf("MLlib* bytes/step = %g, want ~%g", gotStar, wantStar)
	}
	wantML := 2 * float64(k) * m // broadcast k·m + gradients k·m (dim+1 ≈ dim)
	gotML := bytesPerStep(mllib.Train)
	if math.Abs(gotML-wantML) > 0.1*wantML {
		t.Errorf("MLlib bytes/step = %g, want ~%g", gotML, wantML)
	}
}

func TestLocalModelsIdenticalAfterStep(t *testing.T) {
	// After each AllReduce the executors' models must be bit-identical;
	// FinalW is locals[0], so re-running with 1 executor and k executors
	// from the same initial state must both yield finite, consistent models.
	prm := baseParams()
	prm.MaxSteps = 3
	res := runSystem(t, core.Train, 4, prm)
	for _, v := range res.FinalW {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite weight in final model")
		}
	}
	if res.CommSteps != 3 {
		t.Errorf("comm steps = %d", res.CommSteps)
	}
	if res.Updates == 0 {
		t.Error("no updates recorded")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	prm := baseParams()
	prm.MaxSteps = 5
	a := runSystem(t, core.Train, 4, prm)
	b := runSystem(t, core.Train, 4, prm)
	if a.SimTime != b.SimTime {
		t.Errorf("sim times differ: %g vs %g", a.SimTime, b.SimTime)
	}
	for i := range a.FinalW {
		if a.FinalW[i] != b.FinalW[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	_, _, ctx := clusters.Test(2).Build(nil)
	prm := baseParams()
	prm.Eta = 0
	if _, err := core.Train(ctx, make([]data.View, 2), 4, prm, nil, "d"); err == nil {
		t.Error("want error for eta=0")
	}
}

func TestPartitionCountMismatch(t *testing.T) {
	_, _, ctx := clusters.Test(3).Build(nil)
	prm := baseParams()
	if _, err := core.Train(ctx, make([]data.View, 2), 4, prm, nil, "d"); err == nil {
		t.Error("want error for wrong partition count")
	}
}

func TestTargetObjectiveStopsEarly(t *testing.T) {
	prm := baseParams()
	prm.MaxSteps = 100
	prm.TargetObjective = 0.9 // easily reached in 1-2 steps
	res := runSystem(t, core.Train, 4, prm)
	if res.CommSteps >= 100 {
		t.Errorf("did not stop early: %d steps", res.CommSteps)
	}
}

func TestMaxSimTimeStops(t *testing.T) {
	prm := baseParams()
	prm.MaxSteps = 10000
	prm.MaxSimTime = 0.5
	res := runSystem(t, core.Train, 4, prm)
	if res.CommSteps >= 10000 {
		t.Error("MaxSimTime did not bound the run")
	}
}

func TestLazyL2PathUsedWhenRegularized(t *testing.T) {
	// With L2 the local pass must stay nnz-cost (lazy updates): compare sim
	// time against the unregularized run — they should be within 2x even
	// though an eager dense pass would be ~dim/nnz (2000x) slower.
	d := data.Generate(data.Spec{Name: "wide", Rows: 400, Cols: 20000, NNZPerRow: 8, Seed: 2})
	parts := d.Partition(4, 3)
	run := func(l2 float64) float64 {
		_, _, ctx := clusters.Test(4).Build(nil)
		prm := baseParams()
		prm.Objective = glm.SVM(l2)
		prm.MaxSteps = 3
		res, err := core.Train(ctx, parts, d.Features, prm, d.Examples, d.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	t0, tReg := run(0), run(0.1)
	if tReg > 2.5*t0 {
		t.Errorf("regularized run %gx slower than unregularized — lazy L2 not effective", tReg/t0)
	}
}

func TestAdaGradLocalOptimizer(t *testing.T) {
	prm := baseParams()
	prm.AdaGrad = true
	prm.Eta = 0.5
	prm.MaxSteps = 20
	res := runSystem(t, core.Train, 4, prm)
	first := res.Curve.Points[0].Objective
	if best := res.Curve.Best(); best >= first*0.7 {
		t.Errorf("AdaGrad barely moved: %g -> %g", first, best)
	}
	// Accumulators persist across steps: later steps are smaller, so the
	// objective trajectory should be non-exploding throughout.
	for _, p := range res.Curve.Points {
		if p.Objective > first*1.5 {
			t.Errorf("AdaGrad unstable at step %d: %g", p.Step, p.Objective)
		}
	}
}

func TestReweightScalesLocalSteps(t *testing.T) {
	// Reweighting with base eta/k must match plain averaging with base eta:
	// it is exactly a k-scaling of the local step size.
	prm := baseParams()
	prm.Decay = false
	prm.MaxSteps = 5
	prm.Eta = 0.4
	plain := runSystem(t, core.Train, 4, prm)

	prm.Reweight = true
	prm.Eta = 0.1 // 0.1 * k(=4) = 0.4
	rew := runSystem(t, core.Train, 4, prm)
	for i := range plain.FinalW {
		if math.Abs(plain.FinalW[i]-rew.FinalW[i]) > 1e-12 {
			t.Fatalf("reweight(eta/k) != plain(eta) at coord %d", i)
		}
	}
}

func TestSVRGRejectsHinge(t *testing.T) {
	_, _, ctx := clusters.Test(2).Build(nil)
	prm := baseParams() // hinge
	if _, err := core.TrainSVRG(ctx, make([]data.View, 2), 4, prm, nil, "d"); err == nil {
		t.Error("want error for hinge")
	}
}

func TestSVRGMatchesOrBeatsSGDPerStep(t *testing.T) {
	// With a constant step on a smooth strongly convex objective, SVRG's
	// corrected steps reach a lower objective than plain local SGD at the
	// same step budget.
	d, parts := smallWorkload(4)
	obj := glm.LogReg(0.05)
	run := func(svrg bool) float64 {
		_, _, ctx := clusters.Test(4).Build(nil)
		prm := baseParams()
		prm.Objective = obj
		prm.Decay = false
		prm.Eta = 0.2
		prm.MaxSteps = 10
		var res *train.Result
		var err error
		if svrg {
			res, err = core.TrainSVRG(ctx, parts, d.Features, prm, d.Examples, d.Name)
		} else {
			res, err = core.Train(ctx, parts, d.Features, prm, d.Examples, d.Name)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.Curve.Final().Objective
	}
	sgd, svrg := run(false), run(true)
	if svrg > sgd+1e-6 {
		t.Errorf("SVRG final %g worse than SGD %g at equal steps", svrg, sgd)
	}
}

func TestSVRGDoublesTrafficPerStep(t *testing.T) {
	// SVRG runs two AllReduces per step (gradient + model): bytes per step
	// must be ~2x plain MLlib*'s.
	d, parts := smallWorkload(4)
	obj := glm.LogReg(0.01)
	perStep := func(svrg bool) float64 {
		_, _, ctx := clusters.Test(4).Build(nil)
		prm := baseParams()
		prm.Objective = obj
		prm.MaxSteps = 4
		var res *train.Result
		var err error
		if svrg {
			res, err = core.TrainSVRG(ctx, parts, d.Features, prm, d.Examples, d.Name)
		} else {
			res, err = core.Train(ctx, parts, d.Features, prm, d.Examples, d.Name)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalBytes / float64(res.CommSteps)
	}
	plain, svrg := perStep(false), perStep(true)
	ratio := svrg / plain
	// Somewhat under 2 because fixed dispatch/result bytes are identical
	// in both variants.
	if ratio < 1.6 || ratio > 2.2 {
		t.Errorf("SVRG traffic ratio = %g, want ~2", ratio)
	}
}
