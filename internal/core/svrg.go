package core

import (
	"fmt"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/data"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
	"mllibstar/internal/obs"
	"mllibstar/internal/opt"
	"mllibstar/internal/train"
	"mllibstar/internal/vec"
)

// SystemSVRG is the curve label for the variance-reduced variant.
const SystemSVRG = "MLlib*-SVRG"

// TrainSVRG runs distributed SVRG on the MLlib* architecture: each
// communication step is one outer SVRG iteration executed as a single BSP
// stage in which every executor (1) computes its partial snapshot gradient
// and AllReduce-averages it into the full gradient μ, (2) runs one inner
// epoch of variance-corrected per-example steps over its partition, and
// (3) AllReduce-averages the local models. It demonstrates that the paper's
// communication pattern composes with stronger optimizers than plain SGD:
// both collectives are the same Reduce-Scatter/AllGather shuffles, so the
// per-step traffic is exactly 2×MLlib*'s.
//
// SVRG needs a differentiable loss; hinge is rejected.
func TrainSVRG(ctx *engine.Context, parts []data.View, dim int, prm train.Params,
	evalData []glm.Example, dataset string) (*train.Result, error) {

	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if _, nonSmooth := prm.Objective.Loss.(glm.Hinge); nonSmooth {
		return nil, fmt.Errorf("core: SVRG needs a differentiable loss; use logistic or squared")
	}
	k := ctx.NumExecutors()
	if len(parts) != k {
		return nil, fmt.Errorf("core: %d partitions for %d executors", len(parts), k)
	}
	total := 0
	for _, part := range parts {
		total += part.NumRows()
	}
	if total == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}

	sim := ctx.Cluster.Sim
	ev := train.NewEvaluator(SystemSVRG, dataset, prm.Objective, evalData, prm.EvalEvery)
	res := &train.Result{System: SystemSVRG, Curve: ev.Curve}

	locals := make([][]float64, k)
	states := make([]*opt.SVRG, k)
	for i := range locals {
		locals[i] = make([]float64, dim)
		states[i] = opt.NewSVRG(dim, prm.Eta)
	}

	// partials[i] is written by task i's pure closure and consumed by its Run
	// after the engine's join — the join orders the two.
	partials := make([][]float64, k)
	// ref snapshots the synchronized model at the top of each outer step (see
	// core.Train): the model AllReduce delta-encodes against it when sparse
	// exchange is on. The snapshot gradient μ uses the nil reference — its
	// partials compress by their exact-zero coordinates.
	ref := make([]float64, dim)

	sim.Spawn("driver:mllibstar-svrg", func(p *des.Proc) {
		ev.Record(0, p.Now(), locals[0])
		for t := 1; t <= prm.MaxSteps; t++ {
			obs.Active().SetStep(t, p.Now())
			copy(ref, locals[0])
			tasks := make([]engine.Task, k)
			for i := 0; i < k; i++ {
				i := i
				tasks[i] = engine.Task{
					Exec: ctx.Cluster.Execs[i],
					Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
						local := locals[i]
						partial := partials[i]
						if allreduce.OverlapEnabled() {
							// Overlap on: the snapshot partial is produced block
							// by block inside the μ collective itself, so early
							// chunks ship while later coordinates are still
							// accumulating. Same bits, same total charge as the
							// Pure prefetch the non-overlapped task uses.
							partial = ctx.GetVec(dim)
							gs := data.NewGradStream(prm.Objective, local, parts[i], partial, false, float64(parts[i].NNZ()))
							allreduce.AverageProduced(p, ex, ctx.Cluster.Execs, i, fmt.Sprintf("svrg-mu%d", t), partial, gs)
						} else {
							allreduce.Average(p, ex, ctx.Cluster.Execs, i, fmt.Sprintf("svrg-mu%d", t), partial)
						}

						// (2) Inner epoch of corrected steps. Its work is
						// structural — every Step costs 2·nnz for the two
						// margins plus a dense μ/regularization sweep — so
						// the charge is known upfront and the arithmetic
						// overlaps it on the offload pool. SetSnapshot
						// copies, so the pooled partial dies here.
						inner := 2*parts[i].NNZ() + parts[i].NumRows()*dim
						ex.ChargeAsync(p, float64(inner), func() {
							vec.Scale(partial, float64(k)/float64(total)) // mean over all examples
							states[i].SetSnapshot(local, partial)
							states[i].Pass(prm.Objective, local, parts[i].Examples())
						})
						ctx.PutVec(partial)

						// (3) Model averaging, delta-encoded against the
						// step-start snapshot when sparse exchange is on.
						allreduce.AverageDelta(p, ex, ctx.Cluster.Execs, i, fmt.Sprintf("svrg-w%d", t), local, ref)
						return nil, 0
					},
				}
				if !allreduce.OverlapEnabled() {
					// (1) Snapshot: partial loss gradient at the current
					// (synchronized) model, offloaded as the pure closure.
					tasks[i].Pure = func() float64 {
						partial := ctx.GetVec(dim)
						partials[i] = partial
						work := data.AddGradient(prm.Objective, locals[i], parts[i], partial)
						return float64(work)
					}
				}
			}
			ctx.RunStage(p, fmt.Sprintf("svrg-%d", t), tasks)
			var stepUpdates int64
			for i := range parts {
				stepUpdates += int64(parts[i].NumRows())
			}
			res.Updates += stepUpdates
			obs.Active().Updates(t, "", stepUpdates, p.Now())

			res.CommSteps = t
			if obj, recorded := ev.Record(t, p.Now(), locals[0]); recorded {
				if prm.TargetObjective > 0 && obj <= prm.TargetObjective {
					break
				}
			}
			if prm.MaxSimTime > 0 && p.Now() >= prm.MaxSimTime {
				break
			}
		}
	})
	res.SimTime = sim.Run()
	res.FinalW = vec.Copy(locals[0])
	res.TotalBytes = ctx.Cluster.Net.TotalBytes()
	return res, nil
}
