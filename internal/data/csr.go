package data

import (
	"fmt"
	"sync"

	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// CSR is a row-blocked compressed-sparse-row arena for a labelled dataset:
// every row's feature indices live in one shared int32 slab and every value
// in one shared float64 slab, with rowPtr marking row boundaries. The
// per-row glm.Example views are precomputed once, so iterating examples —
// sequentially or in contiguous mini-batch blocks — touches memory in slab
// order with zero allocations, instead of chasing two heap pointers per row
// the way independently allocated rows do. Trainers are unaffected by the
// change of layout: they consume []glm.Example views and the values are
// bit-copies of the originals.
type CSR struct {
	rowPtr []int
	ind    []int32
	val    []float64
	rows   []glm.Example
	// labels duplicates the per-row labels contiguously for the slab
	// kernels: loading rows[r].Label strides the 56-byte Example headers
	// (one cache line per row), while the dedicated slab packs eight labels
	// per line — measurably cheaper in the margin→deriv loop.
	labels []float64
	// maxInd is the largest feature index stored (-1 when empty). The slab
	// kernels hoist the vec.Dot/vec.Axpy bounds truncation out of the inner
	// loop with it: when maxInd < len(model) no row can be truncated, so the
	// per-row out-of-range scan is skipped entirely.
	maxInd int32

	// feat caches the feature-major (CSC) mirrors of row ranges, keyed
	// {lo, hi}, built lazily by featMajorFor for the gradient stream. A
	// partition View's range is stable across supersteps, so each range is
	// sorted once per run.
	featMu sync.Mutex
	feat   map[[2]int]*featMajor
}

// DefaultBlockBytes is the slab footprint BlockRows targets per mini-batch
// block: a quarter of a typical 1 MiB L2, leaving room for the model slices
// the kernels stream alongside the rows.
const DefaultBlockBytes = 256 << 10

// PackExamples copies the examples, in order, into a fresh CSR arena.
func PackExamples(examples []glm.Example) *CSR {
	nnz := glm.NNZTotal(examples)
	c := &CSR{
		rowPtr: make([]int, len(examples)+1),
		ind:    make([]int32, 0, nnz),
		val:    make([]float64, 0, nnz),
		rows:   make([]glm.Example, len(examples)),
		labels: make([]float64, len(examples)),
		maxInd: -1,
	}
	for i, e := range examples {
		c.ind = append(c.ind, e.X.Ind...)
		c.val = append(c.val, e.X.Val...)
		c.rowPtr[i+1] = len(c.ind)
		// Indices are strictly ascending within a row, so the row max is its
		// last index.
		if m := e.X.MaxIndex(); m > c.maxInd {
			c.maxInd = m
		}
	}
	for i, e := range examples {
		lo, hi := c.rowPtr[i], c.rowPtr[i+1]
		// Full three-index views: a kernel appending to a row slice would
		// allocate rather than clobber its neighbour.
		c.rows[i] = glm.Example{Label: e.Label, X: vec.Sparse{Ind: c.ind[lo:hi:hi], Val: c.val[lo:hi:hi]}}
		c.labels[i] = e.Label
	}
	return c
}

// Rows returns the per-row example views, backed by the shared slabs.
func (c *CSR) Rows() []glm.Example { return c.rows }

// NumRows returns the number of rows.
func (c *CSR) NumRows() int { return len(c.rows) }

// NNZ returns the total number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.ind) }

// BlockRows returns how many consecutive rows fit a cache-sized block of
// targetBytes (0 selects DefaultBlockBytes), counting 12 slab bytes per
// nonzero plus 8 bytes per row for the row pointer, never fewer than one
// row. The per-row term matters for near-empty rows: without it the average
// footprint rounds to ~zero and a single "block" covers the whole dataset,
// defeating the cache blocking exactly when rows are cheapest to block.
func (c *CSR) BlockRows(targetBytes int) int {
	if targetBytes <= 0 {
		targetBytes = DefaultBlockBytes
	}
	if len(c.rows) == 0 {
		return 1
	}
	bytesPerRow := (12*c.NNZ() + 8*len(c.rows) + len(c.rows) - 1) / len(c.rows)
	n := targetBytes / bytesPerRow
	if n < 1 {
		n = 1
	}
	return n
}

// Batches invokes fn on successive contiguous blocks of at most size rows,
// in row order. The blocks are subslices of Rows — no copying, no
// allocation — so a pass over all batches streams the slabs front to back.
func (c *CSR) Batches(size int, fn func(batch []glm.Example)) {
	if size <= 0 {
		panic(fmt.Sprintf("data: Batches(%d)", size))
	}
	for lo := 0; lo < len(c.rows); lo += size {
		hi := lo + size
		if hi > len(c.rows) {
			hi = len(c.rows)
		}
		fn(c.rows[lo:hi])
	}
}
