package data

import (
	"reflect"
	"testing"

	"mllibstar/internal/glm"
)

func TestPackExamplesPreservesRowsBitForBit(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 200, Cols: 300, NNZPerRow: 7, Seed: 5})
	c := PackExamples(d.Examples)
	if c.NumRows() != len(d.Examples) {
		t.Fatalf("rows = %d, want %d", c.NumRows(), len(d.Examples))
	}
	if c.NNZ() != glm.NNZTotal(d.Examples) {
		t.Fatalf("nnz = %d, want %d", c.NNZ(), glm.NNZTotal(d.Examples))
	}
	for i, got := range c.Rows() {
		want := d.Examples[i]
		if got.Label != want.Label ||
			!reflect.DeepEqual(got.X.Ind, want.X.Ind) ||
			!reflect.DeepEqual(got.X.Val, want.X.Val) {
			t.Fatalf("row %d changed: %+v -> %+v", i, want, got)
		}
	}
}

// TestPackExamplesRowsAreSlabContiguous verifies the layout claim itself:
// the row views are windows of two shared slabs, first row at the slab
// head, last row ending at the slab tail.
func TestPackExamplesRowsAreSlabContiguous(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 50, Cols: 100, NNZPerRow: 5, Seed: 9})
	c := PackExamples(d.Examples)
	rows := c.Rows()
	first, last := rows[0].X, rows[len(rows)-1].X
	if len(first.Val) == 0 || len(last.Val) == 0 {
		t.Fatal("generator produced empty boundary rows; pick another seed")
	}
	if &first.Val[0] != &c.val[0] || &first.Ind[0] != &c.ind[0] {
		t.Error("first row's slices are not the head of the shared slabs")
	}
	if &last.Val[len(last.Val)-1] != &c.val[c.NNZ()-1] || &last.Ind[len(last.Ind)-1] != &c.ind[c.NNZ()-1] {
		t.Error("last row's slices are not the tail of the shared slabs")
	}
	// A row view must not be able to append over its neighbour.
	mid := rows[len(rows)/2].X
	if cap(mid.Val) != len(mid.Val) || cap(mid.Ind) != len(mid.Ind) {
		t.Error("row views should be capacity-clamped (three-index slices)")
	}
}

func TestBatchesCoverAllRowsInOrderWithoutAllocating(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 103, Cols: 60, NNZPerRow: 4, Seed: 2})
	c := PackExamples(d.Examples)
	var seen int
	c.Batches(16, func(batch []glm.Example) {
		for _, e := range batch {
			if e.Label != d.Examples[seen].Label {
				t.Fatalf("row %d out of order", seen)
			}
			seen++
		}
	})
	if seen != c.NumRows() {
		t.Fatalf("batches covered %d rows, want %d", seen, c.NumRows())
	}
	sum := 0.0
	allocs := testing.AllocsPerRun(20, func() {
		c.Batches(16, func(batch []glm.Example) {
			for _, e := range batch {
				for _, v := range e.X.Val {
					sum += v
				}
			}
		})
	})
	if allocs != 0 {
		t.Errorf("batch iteration allocates %.1f times per pass, want 0", allocs)
	}
	_ = sum
}

func TestBlockRowsTargetsCacheBlock(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 1000, Cols: 500, NNZPerRow: 8, Seed: 3})
	c := PackExamples(d.Examples)
	n := c.BlockRows(0)
	if n < 1 {
		t.Fatalf("BlockRows = %d", n)
	}
	perRow := 12 * c.NNZ() / c.NumRows()
	if got := n * perRow; got > 2*DefaultBlockBytes {
		t.Errorf("block of %d rows spans ~%d slab bytes, want ≤ ~%d", n, got, DefaultBlockBytes)
	}
	if c.BlockRows(1) != 1 {
		t.Errorf("tiny target should clamp to one row")
	}
}
