// Package data provides the datasets of the MLlib* evaluation: a libsvm
// reader/writer for real data, and synthetic generators whose presets mirror
// the shape of the paper's five workloads (Table I) at a configurable scale.
//
// The paper's datasets are either unavailable (Tencent's WX) or far larger
// than a single-machine reproduction can iterate on (7–434 GB), so each
// preset preserves the properties the evaluation actually probes —
// determined vs underdetermined (rows vs columns), nonzeros per row, skewed
// feature popularity, and label noise — at ~1/1000 scale by default.
package data

import (
	"fmt"
	"math/rand"
	"sort"

	"mllibstar/internal/detrand"
	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// Spec describes a synthetic GLM classification dataset.
type Spec struct {
	Name      string
	Rows      int     // number of instances
	Cols      int     // number of features
	NNZPerRow int     // mean nonzeros per instance
	ZipfS     float64 // feature-popularity skew (>1; larger = more skewed)
	NoiseRate float64 // probability of flipping a label
	Seed      int64
}

// Dataset is an in-memory labelled dataset.
type Dataset struct {
	Name     string
	Features int
	Examples []glm.Example
}

// Stats summarizes a dataset the way Table I does.
type Stats struct {
	Name       string
	Instances  int
	Features   int
	NNZ        int
	AvgNNZ     float64
	SizeBytes  int64 // approximate libsvm text size
	Determined bool  // more instances than features
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	nnz := glm.NNZTotal(d.Examples)
	avg := 0.0
	if len(d.Examples) > 0 {
		avg = float64(nnz) / float64(len(d.Examples))
	}
	// ~13 bytes per "index:value" text token plus label/newline per row.
	size := int64(nnz)*13 + int64(len(d.Examples))*4
	return Stats{
		Name:       d.Name,
		Instances:  len(d.Examples),
		Features:   d.Features,
		NNZ:        nnz,
		AvgNNZ:     avg,
		SizeBytes:  size,
		Determined: len(d.Examples) >= d.Features,
	}
}

// String formats the stats as a Table I row.
func (s Stats) String() string {
	kind := "underdetermined"
	if s.Determined {
		kind = "determined"
	}
	return fmt.Sprintf("%-8s %12d instances %12d features %10.1f nnz/row %8.1f MB (%s)",
		s.Name, s.Instances, s.Features, s.AvgNNZ, float64(s.SizeBytes)/1e6, kind)
}

// Generate builds a synthetic dataset: feature indices are drawn from a
// Zipf distribution (a few features are hot, most are rare, as in CTR and
// web data), values are standard normal, and labels come from a planted
// Gaussian model with NoiseRate label flips. The planted model guarantees
// the classification task is learnable, so convergence curves are
// meaningful.
func Generate(spec Spec) *Dataset {
	if spec.Rows <= 0 || spec.Cols <= 0 {
		panic(fmt.Sprintf("data: invalid spec %+v", spec))
	}
	nnz := spec.NNZPerRow
	if nnz <= 0 {
		nnz = 10
	}
	if nnz > spec.Cols {
		nnz = spec.Cols
	}
	zs := spec.ZipfS
	if zs <= 1 {
		zs = 1.1
	}
	rng := detrand.New(spec.Seed)
	zipf := rand.NewZipf(rng, zs, 8, uint64(spec.Cols-1))

	truth := make([]float64, spec.Cols)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}

	examples := make([]glm.Example, spec.Rows)
	indexSet := make(map[int32]float64, nnz)
	for r := range examples {
		clear(indexSet)
		// Row sizes vary ±50% around the mean for realism.
		rowNNZ := nnz/2 + rng.Intn(nnz+1)
		if rowNNZ == 0 {
			rowNNZ = 1
		}
		for len(indexSet) < rowNNZ {
			indexSet[int32(zipf.Uint64())] = rng.NormFloat64()
		}
		x := vec.SparseFromMap(indexSet)
		y := 1.0
		if vec.Dot(truth, x) < 0 {
			y = -1
		}
		if rng.Float64() < spec.NoiseRate {
			y = -y
		}
		examples[r] = glm.Example{Label: y, X: x}
	}
	// Repack the per-row allocations into one CSR arena: generation order is
	// row-major already, so the views are bit-identical to the scattered rows
	// — only their memory layout changes.
	return &Dataset{Name: spec.Name, Features: spec.Cols, Examples: PackExamples(examples).Rows()}
}

// paperSpec records a Table I dataset at paper scale.
type paperSpec struct {
	rows, cols int
	nnzPerRow  int
	sizeBytes  int64
}

// paperTable is Table I of the paper, with nonzeros-per-row estimated from
// the published dataset descriptions (libsvm collection) and file sizes.
var paperTable = map[string]paperSpec{
	"avazu": {40428967, 1000000, 15, 7_400_000_000},
	"url":   {2396130, 3231961, 115, 2_100_000_000},
	"kddb":  {19264097, 29890095, 29, 4_800_000_000},
	"kdd12": {149639105, 54686452, 11, 21_000_000_000},
	"wx":    {231937380, 51121518, 64, 434_000_000_000},
}

// PresetNames lists the dataset presets in Table I order.
func PresetNames() []string { return []string{"avazu", "url", "kddb", "kdd12", "wx"} }

// PaperStats returns the Table I row for a preset at paper scale.
func PaperStats(name string) (Stats, error) {
	p, ok := paperTable[name]
	if !ok {
		return Stats{}, fmt.Errorf("data: unknown preset %q", name)
	}
	return Stats{
		Name:       name,
		Instances:  p.rows,
		Features:   p.cols,
		NNZ:        p.rows * p.nnzPerRow,
		AvgNNZ:     float64(p.nnzPerRow),
		SizeBytes:  p.sizeBytes,
		Determined: p.rows >= p.cols,
	}, nil
}

// Preset returns a generator spec for one of the paper's datasets, linearly
// scaled down: rows and columns are divided by scale, preserving the
// determined/underdetermined character and the per-row sparsity. scale=1
// reproduces paper dimensions (do not materialize those in memory).
func Preset(name string, scale float64) (Spec, error) {
	p, ok := paperTable[name]
	if !ok {
		return Spec{}, fmt.Errorf("data: unknown preset %q (have %v)", name, PresetNames())
	}
	if scale < 1 {
		return Spec{}, fmt.Errorf("data: scale %g < 1", scale)
	}
	rows := int(float64(p.rows) / scale)
	cols := int(float64(p.cols) / scale)
	if rows < 64 {
		rows = 64
	}
	if cols < 16 {
		cols = 16
	}
	nnz := p.nnzPerRow
	if nnz > cols/4 {
		nnz = cols / 4
	}
	if nnz < 1 {
		nnz = 1
	}
	return Spec{
		Name:      name,
		Rows:      rows,
		Cols:      cols,
		NNZPerRow: nnz,
		ZipfS:     1.7, // web/CTR data is heavily skewed toward hot features
		NoiseRate: 0.05,
		Seed:      int64(len(name))*7919 + 1, // stable per preset
	}, nil
}

// Partition splits the dataset's examples into k contiguous, near-equal
// partitions, the way Spark partitions an input file across executors. The
// examples are first shuffled deterministically so partitions are
// statistically alike — the paper's setting, where data is randomly
// distributed across workers. Each partition is repacked into its own CSR
// arena (PackExamples) and returned as that arena's View: after the shuffle
// scatters rows, the repack restores slab locality in exactly the order the
// owning executor will stream them, with values bit-copied so training
// numerics cannot depend on the layout — and the trainers keep the packed
// form end-to-end (batch windows are Sub views, slab kernels consume the
// arena directly).
func (d *Dataset) Partition(k int, seed int64) []View {
	if k <= 0 {
		panic(fmt.Sprintf("data: Partition(%d)", k))
	}
	perm := detrand.Perm(seed, len(d.Examples))
	shuffled := make([]glm.Example, len(d.Examples))
	for i, j := range perm {
		shuffled[i] = d.Examples[j]
	}
	parts := make([]View, k)
	for i := 0; i < k; i++ {
		lo, hi := vec.PartitionRange(len(shuffled), k, i)
		parts[i] = PackExamples(shuffled[lo:hi]).View()
	}
	return parts
}

// Subsample returns a dataset with at most n examples drawn without
// replacement (deterministically), used for objective evaluation on very
// large datasets.
func (d *Dataset) Subsample(n int, seed int64) *Dataset {
	if n >= len(d.Examples) {
		return d
	}
	perm := detrand.Perm(seed, len(d.Examples))[:n]
	sort.Ints(perm)
	out := make([]glm.Example, n)
	for i, j := range perm {
		out[i] = d.Examples[j]
	}
	return &Dataset{Name: d.Name + "-sample", Features: d.Features, Examples: out}
}
