package data

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 500, Cols: 100, NNZPerRow: 8, Seed: 1})
	if len(d.Examples) != 500 || d.Features != 100 {
		t.Fatalf("shape = %d x %d", len(d.Examples), d.Features)
	}
	for i, e := range d.Examples {
		if e.Label != 1 && e.Label != -1 {
			t.Fatalf("example %d label = %g", i, e.Label)
		}
		if e.X.NNZ() == 0 {
			t.Fatalf("example %d empty", i)
		}
		if int(e.X.MaxIndex()) >= 100 {
			t.Fatalf("example %d index out of range", i)
		}
	}
	st := d.Stats()
	if st.AvgNNZ < 4 || st.AvgNNZ > 12 {
		t.Errorf("avg nnz = %g, want near 8", st.AvgNNZ)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "t", Rows: 100, Cols: 50, NNZPerRow: 5, Seed: 42}
	a, b := Generate(spec), Generate(spec)
	if !reflect.DeepEqual(a.Examples, b.Examples) {
		t.Error("same seed produced different datasets")
	}
	c := Generate(Spec{Name: "t", Rows: 100, Cols: 50, NNZPerRow: 5, Seed: 43})
	if reflect.DeepEqual(a.Examples, c.Examples) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	// Hot features must appear far more often than the uniform expectation.
	d := Generate(Spec{Name: "t", Rows: 2000, Cols: 1000, NNZPerRow: 10, Seed: 3})
	counts := make([]int, 1000)
	total := 0
	for _, e := range d.Examples {
		for _, ix := range e.X.Ind {
			counts[ix]++
			total++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(total) / 1000
	if float64(max) < 5*uniform {
		t.Errorf("max feature count %d vs uniform %g: not skewed", max, uniform)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		spec, err := Preset(name, 1000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Rows <= 0 || spec.Cols <= 0 || spec.NNZPerRow <= 0 {
			t.Errorf("%s: bad spec %+v", name, spec)
		}
		paper, err := PaperStats(name)
		if err != nil {
			t.Fatal(err)
		}
		// Scaled preset preserves determinedness.
		if (spec.Rows >= spec.Cols) != paper.Determined {
			t.Errorf("%s: determinedness flipped at scale: %d x %d vs paper %v",
				name, spec.Rows, spec.Cols, paper.Determined)
		}
	}
	if _, err := Preset("nope", 1000); err == nil {
		t.Error("want error for unknown preset")
	}
	if _, err := Preset("avazu", 0.5); err == nil {
		t.Error("want error for scale < 1")
	}
	if _, err := PaperStats("nope"); err == nil {
		t.Error("want error for unknown paper stats")
	}
}

func TestPaperStatsMatchTableI(t *testing.T) {
	st, _ := PaperStats("kdd12")
	if st.Instances != 149639105 || st.Features != 54686452 {
		t.Errorf("kdd12 = %+v", st)
	}
	if !st.Determined {
		t.Error("kdd12 should be determined")
	}
	st, _ = PaperStats("kddb")
	if st.Determined {
		t.Error("kddb should be underdetermined")
	}
}

func TestPartitionCoversAll(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 103, Cols: 20, NNZPerRow: 3, Seed: 1})
	parts := d.Partition(8, 99)
	total := 0
	sizes := map[int]bool{}
	for _, p := range parts {
		total += p.NumRows()
		sizes[p.NumRows()] = true
	}
	if total != 103 {
		t.Errorf("total = %d", total)
	}
	if len(sizes) > 2 {
		t.Errorf("partition sizes should differ by at most one: %v", sizes)
	}
	// Deterministic given the seed.
	parts2 := d.Partition(8, 99)
	if !reflect.DeepEqual(parts[0].Examples(), parts2[0].Examples()) {
		t.Error("partitioning not deterministic")
	}
}

func TestSubsample(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 100, Cols: 20, NNZPerRow: 3, Seed: 1})
	s := d.Subsample(10, 5)
	if len(s.Examples) != 10 || s.Features != 20 {
		t.Errorf("subsample = %d x %d", len(s.Examples), s.Features)
	}
	if got := d.Subsample(1000, 5); got != d {
		t.Error("oversized subsample should return the dataset itself")
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		d := Generate(Spec{Name: "t", Rows: 30, Cols: 40, NNZPerRow: 5, Seed: seed})
		var buf bytes.Buffer
		if err := WriteLibSVM(&buf, d); err != nil {
			return false
		}
		got, err := ReadLibSVM(&buf, "t")
		if err != nil {
			return false
		}
		if len(got.Examples) != len(d.Examples) {
			return false
		}
		for i := range d.Examples {
			a, b := d.Examples[i], got.Examples[i]
			if a.Label != b.Label || !reflect.DeepEqual(a.X.Ind, b.X.Ind) {
				return false
			}
			for j := range a.X.Val {
				if math.Abs(a.X.Val[j]-b.X.Val[j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReadLibSVMLabelConventions(t *testing.T) {
	in := "+1 1:0.5 3:1\n0 2:2\n# comment\n\n-1 1:1\n"
	d, err := ReadLibSVM(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Examples) != 3 {
		t.Fatalf("n = %d", len(d.Examples))
	}
	if d.Examples[0].Label != 1 || d.Examples[1].Label != -1 || d.Examples[2].Label != -1 {
		t.Errorf("labels = %v %v %v", d.Examples[0].Label, d.Examples[1].Label, d.Examples[2].Label)
	}
	// 1-based on disk -> 0-based in memory; features tracks the max index.
	if d.Examples[0].X.Ind[0] != 0 || d.Examples[0].X.Ind[1] != 2 {
		t.Errorf("indices = %v", d.Examples[0].X.Ind)
	}
	if d.Features != 3 {
		t.Errorf("features = %d", d.Features)
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	cases := []string{
		"x 1:1",     // bad label
		"1 nope",    // malformed feature
		"1 0:1",     // index < 1
		"1 2:1 1:1", // decreasing indices
		"1 1:1 1:2", // duplicate index
		"1 1:abc",   // bad value
	}
	for _, in := range cases {
		if _, err := ReadLibSVM(strings.NewReader(in), "x"); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

// TestReadLibSVMRejectsDuplicateAndDescending pins the two within-row index
// malformations to distinct, line-numbered diagnostics: a duplicate index
// (double-emitted feature) and a descending index (unsorted writer) are
// different bugs upstream and the message should say which one happened.
func TestReadLibSVMRejectsDuplicateAndDescending(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"1 1:1\n1 4:1 4:2\n", "line 2: duplicate feature index 4"},
		{"1 1:1\n1 5:1 3:2\n", "line 2: descending feature index 3 after 5"},
	}
	for _, tc := range cases {
		_, err := ReadLibSVM(strings.NewReader(tc.in), "x")
		if err == nil {
			t.Errorf("input %q: want error", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("input %q: error %q, want it to mention %q", tc.in, err, tc.want)
		}
	}
}

func TestStatsString(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 100, Cols: 20, NNZPerRow: 3, Seed: 1})
	s := d.Stats().String()
	if !strings.Contains(s, "instances") || !strings.Contains(s, "determined") {
		t.Errorf("stats string = %q", s)
	}
}

func TestSplit(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 100, Cols: 20, NNZPerRow: 3, Seed: 1})
	train, test, err := d.Split(0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Examples) != 80 || len(test.Examples) != 20 {
		t.Errorf("split = %d/%d", len(train.Examples), len(test.Examples))
	}
	if train.Features != 20 || test.Features != 20 {
		t.Error("features not propagated")
	}
	// Deterministic.
	tr2, _, _ := d.Split(0.2, 7)
	if !reflect.DeepEqual(train.Examples[0], tr2.Examples[0]) {
		t.Error("split not deterministic")
	}
	if _, _, err := d.Split(0, 7); err == nil {
		t.Error("want error for fraction 0")
	}
	if _, _, err := (&Dataset{}).Split(0.5, 7); err == nil {
		t.Error("want error for empty dataset")
	}
}

func TestKFold(t *testing.T) {
	d := Generate(Spec{Name: "t", Rows: 103, Cols: 20, NNZPerRow: 3, Seed: 1})
	folds, err := d.KFold(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	totalTest := 0
	for i, f := range folds {
		totalTest += len(f.Test.Examples)
		if len(f.Train.Examples)+len(f.Test.Examples) != 103 {
			t.Errorf("fold %d sizes: %d + %d != 103", i, len(f.Train.Examples), len(f.Test.Examples))
		}
	}
	if totalTest != 103 {
		t.Errorf("test folds cover %d examples, want 103", totalTest)
	}
	if _, err := d.KFold(1, 7); err == nil {
		t.Error("want error for k=1")
	}
}
