// Feature-major mirror and the two-pass gradient stream.
//
// The CSR arena is row-major: a gradient pass finishes coordinate j only
// when the *last* row touching j has been processed, so nothing can ship
// until the whole pass ends. The featMajor mirror stores the same nonzeros
// column-blocked (CSC): pass 1 computes every row's loss derivative once
// (row order, exactly the margins of the fused CSR pass), pass 2 then
// accumulates the gradient coordinate range by coordinate range — so the
// first coordinate block is final while later blocks are still uncomputed,
// and the pipelined Reduce-Scatter can put it on the wire immediately
// (allreduce.AverageProduced).
//
// Bit-identity argument, per coordinate j: the CSR path adds the rows
// touching j in ascending row order (rows with zero derivative skipped by
// the `d != 0` guard). The mirror stores each column's entries in ascending
// row order — a row-major scatter into column buckets preserves row order —
// and applies the same guard with the same derivative bits, so g[j] is the
// identical left-to-right float64 addition chain. Model truncation is
// handled by never visiting columns ≥ len(model): within a column every
// entry has the same index, so the per-row "first index ≥ len(model)"
// prefix cut of vec.Dot/vec.Axpy removes exactly the columns the stream
// skips.
package data

import (
	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// featMajor is the column-blocked (CSC) mirror of a CSR row range: entry p
// of column j is row rows[p] (view-relative, ascending within the column)
// with value val[p]. Built once per partition View and cached on the arena.
type featMajor struct {
	colPtr []int
	rows   []int32
	val    []float64
	cols   int
}

// featMajorFor returns the cached mirror of arena rows [lo, hi), building
// it on first use. The build is a counting sort over the ind slab —
// deterministic, O(nnz + cols) — and safe under concurrent first callers.
func (c *CSR) featMajorFor(lo, hi int) *featMajor {
	c.featMu.Lock()
	defer c.featMu.Unlock()
	if c.feat == nil {
		c.feat = map[[2]int]*featMajor{}
	}
	if f, ok := c.feat[[2]int{lo, hi}]; ok {
		return f
	}
	f := buildFeatMajor(c, lo, hi)
	c.feat[[2]int{lo, hi}] = f
	return f
}

func buildFeatMajor(c *CSR, lo, hi int) *featMajor {
	cols := int(c.maxInd) + 1
	nnz := c.rowPtr[hi] - c.rowPtr[lo]
	f := &featMajor{
		colPtr: make([]int, cols+1),
		rows:   make([]int32, nnz),
		val:    make([]float64, nnz),
		cols:   cols,
	}
	base := c.rowPtr[lo]
	for p := base; p < c.rowPtr[hi]; p++ {
		f.colPtr[c.ind[p]+1]++
	}
	for j := 0; j < cols; j++ {
		f.colPtr[j+1] += f.colPtr[j]
	}
	next := make([]int, cols)
	copy(next, f.colPtr[:cols])
	for r := lo; r < hi; r++ {
		for p := c.rowPtr[r]; p < c.rowPtr[r+1]; p++ {
			j := c.ind[p]
			q := next[j]
			next[j]++
			f.rows[q] = int32(r - lo)
			f.val[q] = c.val[p]
		}
	}
	return f
}

// GradStream is a two-pass gradient producer over one partition View,
// implementing the allreduce.Producer contract:
//
//	Prepare      pass 1 — per-row derivatives (and, withLoss, the loss sum),
//	             pure: reads only w and the arena.
//	Produce(l,h) pass 2 for coordinates [l, h) — column-order accumulation
//	             into g, plus the trailing loss slot when h == len(g).
//	Work/PrepareWork — structural virtual-time charges summing to the
//	             totalWork the non-overlapped path would charge in one piece.
//
// Produced blocks may arrive in any order and each coordinate range must be
// produced exactly once; the union of all Produce calls must cover
// [0, len(g)). The result — gradient and loss bits — is Float64bits-
// identical to GradAndLoss (withLoss) or AddGradient (without), kernels on
// or off. The block pass allocates nothing.
type GradStream struct {
	obj      glm.Objective
	w        []float64
	v        View
	g        []float64
	withLoss bool
	dim      int // gradient coordinates in g (len(g)-1 when withLoss)
	f        *featMajor
	derivs   []float64
	lossSum  float64
	half     float64 // charge for each of the two passes
	nnz      float64 // mirrored entries, for distributing pass-2 charges
}

// NewGradStream builds the producer for g += Σ l'(<w,x>, y)·x over the
// view. When withLoss is set, g's final slot additionally receives
// Σ l(<w,x>, y) — the [gradient ; loss] partial of the L-BFGS superstep —
// and the gradient occupies g[:len(g)-1]. totalWork is the virtual charge
// the equivalent single-pass call would make (e.g. 2·NNZ for GradAndLoss,
// NNZ for AddGradient); the stream splits it evenly between the passes.
func NewGradStream(obj glm.Objective, w []float64, v View, g []float64, withLoss bool, totalWork float64) *GradStream {
	gs := &GradStream{obj: obj, w: w, v: v, g: g, withLoss: withLoss, dim: len(g), half: totalWork / 2}
	if withLoss {
		gs.dim--
	}
	if v.c != nil && v.NumRows() > 0 {
		gs.f = v.c.featMajorFor(v.lo, v.hi)
		gs.derivs = make([]float64, v.NumRows())
		gs.nnz = float64(len(gs.f.rows))
	}
	return gs
}

// Prepare runs pass 1: every row's margin is computed once and feeds both
// the derivative and (withLoss) the loss value — the exact arithmetic of the
// fused CSR pass, in row order. Pure: reads only w and the arena.
func (gs *GradStream) Prepare() {
	if gs.f == nil {
		return
	}
	if kernelsOn {
		c, lo, hi := gs.v.c, gs.v.lo, gs.v.hi
		blk := c.BlockRows(0)
		if gs.withLoss {
			switch gs.obj.Loss.(type) {
			case glm.Hinge:
				for b := lo; b < hi; b += blk {
					gs.lossSum = derivLossHinge(c, b, minInt(b+blk, hi), gs.w, gs.derivs[b-lo:], gs.lossSum)
				}
				return
			case glm.Logistic:
				for b := lo; b < hi; b += blk {
					gs.lossSum = derivLossLogistic(c, b, minInt(b+blk, hi), gs.w, gs.derivs[b-lo:], gs.lossSum)
				}
				return
			case glm.Squared:
				for b := lo; b < hi; b += blk {
					gs.lossSum = derivLossSquared(c, b, minInt(b+blk, hi), gs.w, gs.derivs[b-lo:], gs.lossSum)
				}
				return
			}
		} else if DerivsInto(gs.obj.Loss, gs.w, gs.v, gs.derivs) {
			return
		}
	}
	// Interface fallback (kernels off or unknown loss): one vec.Dot per row
	// feeds both the derivative and the value. The non-overlapped interface
	// path computes the same dot twice (LossSum then AddGradient) on the
	// same constant w, so the bits agree.
	for i, e := range gs.v.Examples() {
		m := vec.Dot(gs.w, e.X)
		gs.derivs[i] = gs.obj.Loss.Deriv(m, e.Label)
		if gs.withLoss {
			gs.lossSum += gs.obj.Loss.Value(m, e.Label)
		}
	}
}

// PrepareWork is the virtual charge of pass 1: half the stream's totalWork.
func (gs *GradStream) PrepareWork() float64 { return gs.half }

// Produce runs pass 2 for coordinates [lo, hi): each column in range
// accumulates its stored entries in ascending row order under the `d != 0`
// guard — per coordinate the identical addition chain as the row-major
// pass. When the range includes g's trailing loss slot, the pass-1 loss sum
// is installed there. Pure and allocation-free: writes only g[lo:hi].
func (gs *GradStream) Produce(lo, hi int) {
	if gs.withLoss && hi == len(gs.g) {
		gs.g[gs.dim] = gs.lossSum
	}
	if gs.f == nil {
		return
	}
	colHi := minInt(minInt(hi, gs.f.cols), minInt(gs.dim, len(gs.w)))
	if lo >= colHi {
		return
	}
	colPtr, rows, val, derivs, g := gs.f.colPtr, gs.f.rows, gs.f.val, gs.derivs, gs.g
	for j := lo; j < colHi; j++ {
		s, e := colPtr[j], colPtr[j+1]
		acc := g[j]
		for p := s; p < e; p++ {
			if d := derivs[rows[p]]; d != 0 {
				acc += d * val[p]
			}
		}
		g[j] = acc
	}
}

// Work is the virtual charge of Produce(lo, hi): the pass-2 half of
// totalWork, distributed over coordinate ranges by their share of the
// mirrored nonzeros. Structural — identical with kernels on or off.
func (gs *GradStream) Work(lo, hi int) float64 {
	if gs.f == nil || gs.nnz == 0 {
		return 0
	}
	clo, chi := minInt(lo, gs.f.cols), minInt(hi, gs.f.cols)
	return gs.half * float64(gs.f.colPtr[chi]-gs.f.colPtr[clo]) / gs.nnz
}

// ---- pass 1: out[r-lo] = l'(<w,x_r>, y_r) and sum += l(<w,x_r>, y_r) ----
//
// The derivs* bodies with the loss value folded in: one margin per row
// feeds both quantities, exactly like the fused gradLoss* bodies (the
// logistic case shares the exponential via logisticValueDeriv), so the
// derivative and loss bits match the single-pass kernels.

func derivLossHinge(c *CSR, lo, hi int, w, out []float64, sum float64) float64 {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		y := lbl[r]
		sum += glm.Hinge{}.Value(m, y)
		out[r-lo] = glm.Hinge{}.Deriv(m, y)
	}
	return sum
}

func derivLossLogistic(c *CSR, lo, hi int, w, out []float64, sum float64) float64 {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		v, d := logisticValueDeriv(m, lbl[r])
		sum += v
		out[r-lo] = d
	}
	return sum
}

func derivLossSquared(c *CSR, lo, hi int, w, out []float64, sum float64) float64 {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		y := lbl[r]
		sum += glm.Squared{}.Value(m, y)
		out[r-lo] = glm.Squared{}.Deriv(m, y)
	}
	return sum
}
