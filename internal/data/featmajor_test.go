package data_test

// Gradient-stream bit-identity: the two-pass feature-major producer must
// reproduce GradAndLoss / AddGradient Float64bits-exactly — for every
// monomorphized loss, with kernels on and off, under model truncation, on
// sub-views, and for any block partitioning of the coordinate range — and
// the block pass (Produce) must not allocate.

import (
	"math"
	"testing"

	"mllibstar/internal/data"
	"mllibstar/internal/glm"
)

// produceAll drives the stream over [0, len(g)) in blocks of width blk,
// exercising out-of-order block production when reverse is set.
func produceAll(gs *data.GradStream, n, blk int, reverse bool) {
	var ranges [][2]int
	for lo := 0; lo < n; lo += blk {
		hi := lo + blk
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	if reverse {
		for i, j := 0, len(ranges)-1; i < j; i, j = i+1, j-1 {
			ranges[i], ranges[j] = ranges[j], ranges[i]
		}
	}
	for _, r := range ranges {
		gs.Produce(r[0], r[1])
	}
}

func TestGradStreamMatchesGradAndLoss(t *testing.T) {
	v, dim := kernelView(t)
	for _, kernels := range []bool{true, false} {
		data.ConfigureKernels(kernels)
		for _, tc := range kernelObjectives() {
			// Full-width model and one shorter than the feature space: the
			// second forces the truncation path, whose columns the stream
			// must skip entirely.
			for _, n := range []int{dim, dim / 3} {
				w := testModel(n)
				want := make([]float64, n+1)
				wantLoss, _ := data.GradAndLoss(tc.obj, w, v, want[:n])
				want[n] = wantLoss
				for _, blk := range []int{1, 7, n/2 + 1, n + 1} {
					for _, reverse := range []bool{false, true} {
						got := make([]float64, n+1)
						gs := data.NewGradStream(tc.obj, w, v, got, true, float64(v.NNZ())*2)
						gs.Prepare()
						produceAll(gs, n+1, blk, reverse)
						requireBitsEqual(t, tc.name, got, want)
					}
				}
			}
		}
	}
	data.ConfigureKernels(true)
}

func TestGradStreamMatchesAddGradient(t *testing.T) {
	v, dim := kernelView(t)
	for _, kernels := range []bool{true, false} {
		data.ConfigureKernels(kernels)
		for _, tc := range kernelObjectives() {
			w := testModel(dim)
			want := make([]float64, dim)
			data.AddGradient(tc.obj, w, v, want)
			got := make([]float64, dim)
			gs := data.NewGradStream(tc.obj, w, v, got, false, float64(v.NNZ()))
			gs.Prepare()
			produceAll(gs, dim, dim/5+1, false)
			requireBitsEqual(t, tc.name, got, want)
		}
	}
	data.ConfigureKernels(true)
}

func TestGradStreamSubViewAndEmpty(t *testing.T) {
	v, dim := kernelView(t)
	w := testModel(dim)
	obj := glm.LogReg(0.01)
	sub := v.Sub(13, v.NumRows()-17)
	want := make([]float64, dim+1)
	wantLoss, _ := data.GradAndLoss(obj, w, sub, want[:dim])
	want[dim] = wantLoss
	got := make([]float64, dim+1)
	gs := data.NewGradStream(obj, w, sub, got, true, float64(sub.NNZ())*2)
	gs.Prepare()
	produceAll(gs, dim+1, 29, true)
	requireBitsEqual(t, "subview", got, want)

	// Empty view: gradient stays zero, loss slot is written (to zero).
	empty := v.Sub(5, 5)
	eg := make([]float64, dim+1)
	eg[dim] = math.NaN()
	egs := data.NewGradStream(obj, w, empty, eg, true, 0)
	egs.Prepare()
	produceAll(egs, dim+1, 50, false)
	requireBitsEqual(t, "empty", eg, make([]float64, dim+1))
}

func TestGradStreamWorkIsStructural(t *testing.T) {
	v, dim := kernelView(t)
	w := testModel(dim)
	obj := glm.LogReg(0)
	total := float64(v.NNZ()) * 2
	g := make([]float64, dim+1)
	gs := data.NewGradStream(obj, w, v, g, true, total)
	if got := gs.PrepareWork(); got != total/2 {
		t.Fatalf("PrepareWork = %v, want %v", got, total/2)
	}
	// Pass-2 charges must cover the other half exactly when summed over a
	// partition of the full range, however it is cut.
	sum := 0.0
	for lo := 0; lo < dim+1; lo += 97 {
		hi := lo + 97
		if hi > dim+1 {
			hi = dim + 1
		}
		sum += gs.Work(lo, hi)
	}
	if math.Abs(sum-total/2) > 1e-6*total {
		t.Fatalf("sum of block Work = %v, want %v", sum, total/2)
	}
	// And must not depend on the kernel mode.
	data.ConfigureKernels(false)
	defer data.ConfigureKernels(true)
	gs2 := data.NewGradStream(obj, w, v, make([]float64, dim+1), true, total)
	if gs.Work(3, 41) != gs2.Work(3, 41) || gs.PrepareWork() != gs2.PrepareWork() {
		t.Fatal("Work/PrepareWork differ across kernel modes")
	}
}

func TestGradStreamProduceZeroAllocs(t *testing.T) {
	v, dim := kernelView(t)
	w := testModel(dim)
	g := make([]float64, dim+1)
	gs := data.NewGradStream(glm.LogReg(0.01), w, v, g, true, float64(v.NNZ())*2)
	gs.Prepare()
	blk := dim/8 + 1
	if n := testing.AllocsPerRun(10, func() {
		for i := range g {
			g[i] = 0
		}
		for lo := 0; lo < dim+1; lo += blk {
			hi := lo + blk
			if hi > dim+1 {
				hi = dim + 1
			}
			gs.Produce(lo, hi)
		}
	}); n != 0 {
		t.Fatalf("Produce block pass allocates %v objects per run; want 0", n)
	}
}
