// Slab kernels: loss-specialized, cache-blocked inner loops that consume
// the CSR arena directly instead of dispatching through per-row glm.Example
// views and glm.Loss interface calls.
//
// Contract (every kernel, every loss):
//
//   - Bit identity. A kernel performs exactly the floating-point operations
//     of the Example-view code it replaces — same per-row order, same
//     per-nonzero order, same vec.Dot/vec.Axpy truncation at the first index
//     ≥ len(model), same `d != 0` update guard — so a trainer produces
//     Float64bits-identical models with kernels on or off.
//   - Zero allocations. Kernels write only into caller-owned buffers.
//   - Work accounting. Returned work is the structural nonzeros-touched
//     measure of the interface path (full row NNZ, counting truncated
//     entries, exactly like glm.Objective.AddGradient).
//
// Dispatch monomorphizes per loss: one type switch per kernel call selects a
// hand-specialized body for hinge/logistic/squared in which the loss
// derivative is a static, inlinable call on the concrete loss struct
// (kernel_losses.go). Unknown losses and ConfigureKernels(false) fall back
// to the original Example-view code path, which is what the kernels-on ≡
// kernels-off parity suites compare against.
package data

import (
	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// kernelsOn gates the slab kernels. Like par/sparse/pipeline it is set once
// at startup (prof.Start / ConfigureKernels) before any trainer runs, and
// only read from the training paths.
var kernelsOn = true

// ConfigureKernels enables or disables the slab kernels process-wide.
// Training results are bit-identical either way; only the wall-clock speed
// of the local compute changes. Call before starting simulations.
func ConfigureKernels(on bool) { kernelsOn = on }

// KernelsEnabled reports whether the slab kernels are active.
func KernelsEnabled() bool { return kernelsOn }

// AddGradient accumulates the loss gradient over the view's rows into g,
// exactly like glm.Objective.AddGradient over Examples(): g += Σ l'(<w,x>,
// y)·x, returning nonzeros touched. With kernels enabled and a known loss it
// runs the fused margin→deriv→axpy slab pass in BlockRows-sized cache
// blocks; otherwise it falls back to the interface path.
func AddGradient(obj glm.Objective, w []float64, v View, g []float64) (nnz int) {
	if kernelsOn && v.c != nil {
		blk := v.c.BlockRows(0)
		switch obj.Loss.(type) {
		case glm.Hinge:
			for lo := v.lo; lo < v.hi; lo += blk {
				nnz += addGradHinge(v.c, lo, minInt(lo+blk, v.hi), w, g)
			}
			return nnz
		case glm.Logistic:
			for lo := v.lo; lo < v.hi; lo += blk {
				nnz += addGradLogistic(v.c, lo, minInt(lo+blk, v.hi), w, g)
			}
			return nnz
		case glm.Squared:
			for lo := v.lo; lo < v.hi; lo += blk {
				nnz += addGradSquared(v.c, lo, minInt(lo+blk, v.hi), w, g)
			}
			return nnz
		}
	}
	return obj.AddGradient(w, v.Examples(), g)
}

// AddGradientRows is AddGradient restricted to the given view-relative row
// indices, in order — the sampled mini-batch gradient of the SendGradient
// trainers, computed without gathering the rows into a fresh slice.
func AddGradientRows(obj glm.Objective, w []float64, v View, rows []int32, g []float64) (nnz int) {
	if kernelsOn && v.c != nil {
		switch obj.Loss.(type) {
		case glm.Hinge:
			return addGradRowsHinge(v.c, v.lo, rows, w, g)
		case glm.Logistic:
			return addGradRowsLogistic(v.c, v.lo, rows, w, g)
		case glm.Squared:
			return addGradRowsSquared(v.c, v.lo, rows, w, g)
		}
	}
	ex := v.Examples()
	for _, ri := range rows {
		e := ex[ri]
		d := obj.Loss.Deriv(vec.Dot(w, e.X), e.Label)
		if d != 0 {
			vec.Axpy(d, e.X, g)
		}
		nnz += e.X.NNZ()
	}
	return nnz
}

// LossSum returns Σ l(<w,x>, y) over the view's rows, bit-identical to
// glm.Objective.LossSum over Examples(): the slab bodies thread one running
// sum through the cache blocks so the summation order is exactly the
// interface path's row order.
func LossSum(obj glm.Objective, w []float64, v View) float64 {
	if kernelsOn && v.c != nil {
		blk := v.c.BlockRows(0)
		sum := 0.0
		switch obj.Loss.(type) {
		case glm.Hinge:
			for lo := v.lo; lo < v.hi; lo += blk {
				sum = lossSumHinge(v.c, lo, minInt(lo+blk, v.hi), w, sum)
			}
			return sum
		case glm.Logistic:
			for lo := v.lo; lo < v.hi; lo += blk {
				sum = lossSumLogistic(v.c, lo, minInt(lo+blk, v.hi), w, sum)
			}
			return sum
		case glm.Squared:
			for lo := v.lo; lo < v.hi; lo += blk {
				sum = lossSumSquared(v.c, lo, minInt(lo+blk, v.hi), w, sum)
			}
			return sum
		}
	}
	return obj.LossSum(w, v.Examples())
}

// GradAndLoss computes AddGradient and LossSum in one fused slab pass:
// g += Σ l'(<w,x>, y)·x and the returned loss sum Σ l(<w,x>, y), with the
// margin of each row computed once and shared. The model is constant across
// both quantities, so the result is bit-identical to calling AddGradient
// followed by LossSum — but the dot products, the row-slab traffic, and (for
// the logistic loss) the exponentials are paid once instead of twice. This
// is the L-BFGS superstep hot path, where every iteration needs exactly this
// gradient/loss pair.
func GradAndLoss(obj glm.Objective, w []float64, v View, g []float64) (lossSum float64, nnz int) {
	if kernelsOn && v.c != nil {
		blk := v.c.BlockRows(0)
		var n int
		switch obj.Loss.(type) {
		case glm.Hinge:
			for lo := v.lo; lo < v.hi; lo += blk {
				lossSum, n = gradLossHinge(v.c, lo, minInt(lo+blk, v.hi), w, g, lossSum)
				nnz += n
			}
			return lossSum, nnz
		case glm.Logistic:
			for lo := v.lo; lo < v.hi; lo += blk {
				lossSum, n = gradLossLogistic(v.c, lo, minInt(lo+blk, v.hi), w, g, lossSum)
				nnz += n
			}
			return lossSum, nnz
		case glm.Squared:
			for lo := v.lo; lo < v.hi; lo += blk {
				lossSum, n = gradLossSquared(v.c, lo, minInt(lo+blk, v.hi), w, g, lossSum)
				nnz += n
			}
			return lossSum, nnz
		}
	}
	ex := v.Examples()
	return obj.LossSum(w, ex), obj.AddGradient(w, ex, g)
}

// Value returns the full objective f(w) = (1/n)·Σ l + Ω(w) over the view,
// mirroring glm.Objective.Value (same division, same regularizer term).
func Value(obj glm.Objective, w []float64, v View) float64 {
	if v.NumRows() == 0 {
		return obj.Reg.Value(w)
	}
	return LossSum(obj, w, v)/float64(v.NumRows()) + obj.Reg.Value(w)
}

// DerivsInto computes the per-row loss derivatives l'(<w,x_i>, y_i) of the
// view into out (length ≥ NumRows) and reports whether a slab body handled
// the loss. It exists for two-phase consumers like the sparse-accumulator
// MGD step: w is constant during accumulation, so derivatives computed
// up front are bit-identical to ones computed interleaved with the adds.
func DerivsInto(loss glm.Loss, w []float64, v View, out []float64) bool {
	if !kernelsOn || v.c == nil {
		return false
	}
	blk := v.c.BlockRows(0)
	switch loss.(type) {
	case glm.Hinge:
		for lo := v.lo; lo < v.hi; lo += blk {
			derivsHinge(v.c, lo, minInt(lo+blk, v.hi), w, out[lo-v.lo:])
		}
	case glm.Logistic:
		for lo := v.lo; lo < v.hi; lo += blk {
			derivsLogistic(v.c, lo, minInt(lo+blk, v.hi), w, out[lo-v.lo:])
		}
	case glm.Squared:
		for lo := v.lo; lo < v.hi; lo += blk {
			derivsSquared(v.c, lo, minInt(lo+blk, v.hi), w, out[lo-v.lo:])
		}
	default:
		return false
	}
	return true
}

// SGDPassPlain runs one epoch of unregularized per-example SGD over the
// view — margin, derivative, and the w ← w − η·l'·x update fused into one
// slab pass — and reports whether a slab body handled the loss (callers
// keep the interface loop as the fallback). sched is indexed exactly like
// opt.LocalPass: stepBase plus the view-relative row number.
func SGDPassPlain(loss glm.Loss, w []float64, v View, sched func(int) float64, stepBase int) (work int, ok bool) {
	if !kernelsOn || v.c == nil {
		return 0, false
	}
	blk := v.c.BlockRows(0)
	base := stepBase - v.lo // sched argument for arena row r is base + r
	switch loss.(type) {
	case glm.Hinge:
		for lo := v.lo; lo < v.hi; lo += blk {
			work += sgdPlainHinge(v.c, lo, minInt(lo+blk, v.hi), w, sched, base)
		}
	case glm.Logistic:
		for lo := v.lo; lo < v.hi; lo += blk {
			work += sgdPlainLogistic(v.c, lo, minInt(lo+blk, v.hi), w, sched, base)
		}
	case glm.Squared:
		for lo := v.lo; lo < v.hi; lo += blk {
			work += sgdPlainSquared(v.c, lo, minInt(lo+blk, v.hi), w, sched, base)
		}
	default:
		return 0, false
	}
	return work, true
}

// lazyRescaleThreshold mirrors opt's rescaleThreshold: the scale s of the
// lazily scaled representation w = s·vm is renormalized below it. The two
// constants must stay equal for the kernels-on/off bit-identity contract;
// TestSGDPassLazyL2MatchesStep pins the behaviour.
const lazyRescaleThreshold = 1e-9

// SGDPassLazyL2 runs one epoch of L2-regularized per-example SGD over the
// view in Bottou's scaled representation w = s·vm, replicating
// opt.LazyL2SGD.Step exactly: per example it computes the margin s·<vm,x>,
// folds the shrinkage (1−ηλ) into s (materializing when the factor is
// non-positive), applies the sparse −η·l'/s update to vm, and renormalizes
// when s falls below the rescale threshold. It returns the updated scale
// and the accumulated work, and reports whether a slab body handled the
// loss; the caller owns the final materialization (and its +len(w) work),
// exactly as opt.LocalPassWith does.
func SGDPassLazyL2(loss glm.Loss, vm []float64, s, lambda float64, v View, sched func(int) float64, stepBase int) (sOut float64, work int, ok bool) {
	if !kernelsOn || v.c == nil {
		return s, 0, false
	}
	blk := v.c.BlockRows(0)
	base := stepBase - v.lo
	var n int
	switch loss.(type) {
	case glm.Hinge:
		for lo := v.lo; lo < v.hi; lo += blk {
			s, n = sgdLazyHinge(v.c, lo, minInt(lo+blk, v.hi), vm, s, lambda, sched, base)
			work += n
		}
	case glm.Logistic:
		for lo := v.lo; lo < v.hi; lo += blk {
			s, n = sgdLazyLogistic(v.c, lo, minInt(lo+blk, v.hi), vm, s, lambda, sched, base)
			work += n
		}
	case glm.Squared:
		for lo := v.lo; lo < v.hi; lo += blk {
			s, n = sgdLazySquared(v.c, lo, minInt(lo+blk, v.hi), vm, s, lambda, sched, base)
			work += n
		}
	default:
		return s, 0, false
	}
	return s, work, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
