package data

// Hand-specialized kernel bodies, one set per loss. Go's inliner will not
// inline a loop-containing function and generic instantiation over the
// zero-size loss structs shares one gcshape (dictionary dispatch, indirect
// calls), so the bodies are spelled out: the only calls inside each row loop
// are static methods on the concrete loss type, which are branch-only and
// inline away. Every body works on arena rows [lo, hi) and follows the same
// shape:
//
//	rs, re := rowPtr[r], rowPtr[r+1]       // row's slab extent
//	end := first index ≥ len(model), or re // vec.Dot/Axpy truncation
//	margin over ind[rs:end]/val[rs:end]    // index-free: w[ix] * val[p]
//	deriv/value via the concrete loss      // static, inlinable
//	optional axpy over the same prefix     // guarded by d != 0
//	work += re - rs                        // full structural NNZ
//
// The truncation scan runs only when the arena's maxInd reaches the model
// length (trunc below) AND the row's last index is out of range; indices are
// strictly ascending within a row, so the kept prefix is exactly the set
// vec.Dot visits before its `ix >= n` break. Keeping the prefix shared
// between the margin and update loops is safe for the same reason.

import (
	"math"

	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// rowPrefix returns the slab end of row extent [rs, re) after bounds
// truncation against a model of length n — re itself in the common case.
// Inlinable: the scan lives in truncatedEnd, entered only for rows that
// actually truncate.
func rowPrefix(ind []int32, rs, re int, n int32, trunc bool) int {
	if trunc && re > rs && ind[re-1] >= n {
		return truncatedEnd(ind, rs, re, n)
	}
	return re
}

func truncatedEnd(ind []int32, rs, re int, n int32) int {
	end := rs
	for end < re && ind[end] < n {
		end++
	}
	return end
}

// ---- AddGradient: g += l'(<w,x>, y) · x --------------------------------

func addGradHinge(c *CSR, lo, hi int, w, g []float64) (nnz int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Hinge{}).Deriv(m, lbl[r]); d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
		nnz += re - rs
	}
	return nnz
}

func addGradLogistic(c *CSR, lo, hi int, w, g []float64) (nnz int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Logistic{}).Deriv(m, lbl[r]); d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
		nnz += re - rs
	}
	return nnz
}

func addGradSquared(c *CSR, lo, hi int, w, g []float64) (nnz int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Squared{}).Deriv(m, lbl[r]); d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
		nnz += re - rs
	}
	return nnz
}

// ---- AddGradientRows: AddGradient over sampled arena rows --------------

func addGradRowsHinge(c *CSR, base int, rows []int32, w, g []float64) (nnz int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for _, ri := range rows {
		r := base + int(ri)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Hinge{}).Deriv(m, lbl[r]); d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
		nnz += re - rs
	}
	return nnz
}

func addGradRowsLogistic(c *CSR, base int, rows []int32, w, g []float64) (nnz int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for _, ri := range rows {
		r := base + int(ri)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Logistic{}).Deriv(m, lbl[r]); d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
		nnz += re - rs
	}
	return nnz
}

func addGradRowsSquared(c *CSR, base int, rows []int32, w, g []float64) (nnz int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for _, ri := range rows {
		r := base + int(ri)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Squared{}).Deriv(m, lbl[r]); d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
		nnz += re - rs
	}
	return nnz
}

// ---- LossSum: sum += l(<w,x>, y), running sum threaded through blocks --

func lossSumHinge(c *CSR, lo, hi int, w []float64, sum float64) float64 {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		sum += glm.Hinge{}.Value(m, lbl[r])
	}
	return sum
}

func lossSumLogistic(c *CSR, lo, hi int, w []float64, sum float64) float64 {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		sum += glm.Logistic{}.Value(m, lbl[r])
	}
	return sum
}

func lossSumSquared(c *CSR, lo, hi int, w []float64, sum float64) float64 {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		sum += glm.Squared{}.Value(m, lbl[r])
	}
	return sum
}

// ---- DerivsInto: out[r-lo] = l'(<w,x_r>, y_r) --------------------------

func derivsHinge(c *CSR, lo, hi int, w, out []float64) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		out[r-lo] = glm.Hinge{}.Deriv(m, lbl[r])
	}
}

func derivsLogistic(c *CSR, lo, hi int, w, out []float64) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		out[r-lo] = glm.Logistic{}.Deriv(m, lbl[r])
	}
}

func derivsSquared(c *CSR, lo, hi int, w, out []float64) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		out[r-lo] = glm.Squared{}.Deriv(m, lbl[r])
	}
}

// ---- GradAndLoss: g += l'·x and sum += l, one margin per row ------------
//
// The interface path computes the gradient and the loss sum in two separate
// passes (AddGradient then LossSum), evaluating every row's margin twice.
// The model is constant across both passes, so computing the margin once and
// feeding it to both the value and the derivative is bit-identical — the
// fused pass halves the dot-product work, which is the serial-latency floor
// of the whole kernel. For the logistic loss the fusion goes one level
// deeper: Value and Deriv branch on the same z = y·margin and build on the
// same exponential, so the body computes exp once and reproduces each
// branch's arithmetic exactly.
//
// The bodies additionally software-pipeline the margins of two consecutive
// rows. A single row's dot product is one serial FP-add dependency chain —
// the latency floor of the whole pass — but the two rows' chains are
// independent: w is constant during the pass and g (which must NOT alias w;
// every caller passes a distinct gradient buffer) is only written after both
// margins are complete. Interleaving the two chains overlaps the add
// latency. Each margin still accumulates in its own scalar in per-nonzero
// order, and the value/derivative/axpy updates run strictly in row order, so
// the result is bit-identical to the one-row loop.

func gradLossHinge(c *CSR, lo, hi int, w, g []float64, sum float64) (float64, int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	// Consecutive rows share a boundary, so one rowPtr load per row pair
	// suffices; the block's structural work is rp[hi]-rp[lo] up front.
	rs := rp[lo]
	r := lo
	for ; r+1 < hi; r += 2 {
		mid, re := rp[r+1], rp[r+2]
		end1 := rowPrefix(ind, rs, mid, n, trunc)
		end2 := rowPrefix(ind, mid, re, n, trunc)
		rIx1, rVal1 := ind[rs:end1], val[rs:end1]
		rVal1 = rVal1[:len(rIx1)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		rIx2, rVal2 := ind[mid:end2], val[mid:end2]
		rVal2 = rVal2[:len(rIx2)]
		m1, m2 := 0.0, 0.0
		k := len(rIx1)
		if len(rIx2) < k {
			k = len(rIx2)
		}
		for p := 0; p < k; p++ {
			m1 += w[rIx1[p]] * rVal1[p]
			m2 += w[rIx2[p]] * rVal2[p]
		}
		for p := k; p < len(rIx1); p++ {
			m1 += w[rIx1[p]] * rVal1[p]
		}
		for p := k; p < len(rIx2); p++ {
			m2 += w[rIx2[p]] * rVal2[p]
		}
		y1, y2 := lbl[r], lbl[r+1]
		sum += glm.Hinge{}.Value(m1, y1)
		if d := (glm.Hinge{}).Deriv(m1, y1); d != 0 {
			for p, ix := range rIx1 {
				g[ix] += d * rVal1[p]
			}
		}
		sum += glm.Hinge{}.Value(m2, y2)
		if d := (glm.Hinge{}).Deriv(m2, y2); d != 0 {
			for p, ix := range rIx2 {
				g[ix] += d * rVal2[p]
			}
		}
		rs = re
	}
	if r < hi {
		re := rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)]
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		y := lbl[r]
		sum += glm.Hinge{}.Value(m, y)
		if d := (glm.Hinge{}).Deriv(m, y); d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
	}
	return sum, rp[hi] - rp[lo]
}

// logisticValueDeriv is glm.Logistic.Value and .Deriv fused on the shared
// exponential: per branch this is the exact operation sequence of each
// method, with exp computed once.
func logisticValueDeriv(m, y float64) (value, d float64) {
	if z := y * m; z > 0 {
		e := math.Exp(-z)
		return math.Log1p(e), -y * e / (1 + e)
	} else {
		e := math.Exp(z)
		return -z + math.Log1p(e), -y / (1 + e)
	}
}

func gradLossLogistic(c *CSR, lo, hi int, w, g []float64, sum float64) (float64, int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	// Consecutive rows share a boundary, so one rowPtr load per row pair
	// suffices; the block's structural work is rp[hi]-rp[lo] up front.
	rs := rp[lo]
	r := lo
	for ; r+1 < hi; r += 2 {
		mid, re := rp[r+1], rp[r+2]
		end1 := rowPrefix(ind, rs, mid, n, trunc)
		end2 := rowPrefix(ind, mid, re, n, trunc)
		rIx1, rVal1 := ind[rs:end1], val[rs:end1]
		rVal1 = rVal1[:len(rIx1)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		rIx2, rVal2 := ind[mid:end2], val[mid:end2]
		rVal2 = rVal2[:len(rIx2)]
		m1, m2 := 0.0, 0.0
		k := len(rIx1)
		if len(rIx2) < k {
			k = len(rIx2)
		}
		for p := 0; p < k; p++ {
			m1 += w[rIx1[p]] * rVal1[p]
			m2 += w[rIx2[p]] * rVal2[p]
		}
		for p := k; p < len(rIx1); p++ {
			m1 += w[rIx1[p]] * rVal1[p]
		}
		for p := k; p < len(rIx2); p++ {
			m2 += w[rIx2[p]] * rVal2[p]
		}
		v1, d1 := logisticValueDeriv(m1, lbl[r])
		sum += v1
		if d1 != 0 {
			for p, ix := range rIx1 {
				g[ix] += d1 * rVal1[p]
			}
		}
		v2, d2 := logisticValueDeriv(m2, lbl[r+1])
		sum += v2
		if d2 != 0 {
			for p, ix := range rIx2 {
				g[ix] += d2 * rVal2[p]
			}
		}
		rs = re
	}
	if r < hi {
		re := rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)]
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		v, d := logisticValueDeriv(m, lbl[r])
		sum += v
		if d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
	}
	return sum, rp[hi] - rp[lo]
}

func gradLossSquared(c *CSR, lo, hi int, w, g []float64, sum float64) (float64, int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	// Consecutive rows share a boundary, so one rowPtr load per row pair
	// suffices; the block's structural work is rp[hi]-rp[lo] up front.
	rs := rp[lo]
	r := lo
	for ; r+1 < hi; r += 2 {
		mid, re := rp[r+1], rp[r+2]
		end1 := rowPrefix(ind, rs, mid, n, trunc)
		end2 := rowPrefix(ind, mid, re, n, trunc)
		rIx1, rVal1 := ind[rs:end1], val[rs:end1]
		rVal1 = rVal1[:len(rIx1)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		rIx2, rVal2 := ind[mid:end2], val[mid:end2]
		rVal2 = rVal2[:len(rIx2)]
		m1, m2 := 0.0, 0.0
		k := len(rIx1)
		if len(rIx2) < k {
			k = len(rIx2)
		}
		for p := 0; p < k; p++ {
			m1 += w[rIx1[p]] * rVal1[p]
			m2 += w[rIx2[p]] * rVal2[p]
		}
		for p := k; p < len(rIx1); p++ {
			m1 += w[rIx1[p]] * rVal1[p]
		}
		for p := k; p < len(rIx2); p++ {
			m2 += w[rIx2[p]] * rVal2[p]
		}
		y1, y2 := lbl[r], lbl[r+1]
		sum += glm.Squared{}.Value(m1, y1)
		if d := (glm.Squared{}).Deriv(m1, y1); d != 0 {
			for p, ix := range rIx1 {
				g[ix] += d * rVal1[p]
			}
		}
		sum += glm.Squared{}.Value(m2, y2)
		if d := (glm.Squared{}).Deriv(m2, y2); d != 0 {
			for p, ix := range rIx2 {
				g[ix] += d * rVal2[p]
			}
		}
		rs = re
	}
	if r < hi {
		re := rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)]
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		y := lbl[r]
		sum += glm.Squared{}.Value(m, y)
		if d := (glm.Squared{}).Deriv(m, y); d != 0 {
			for p, ix := range rIx {
				g[ix] += d * rVal[p]
			}
		}
	}
	return sum, rp[hi] - rp[lo]
}

// ---- SGDPassPlain: w -= η_r · l'(<w,x>, y) · x, η_r = sched(base+r) ----

func sgdPlainHinge(c *CSR, lo, hi int, w []float64, sched func(int) float64, base int) (work int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		eta := sched(base + r)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Hinge{}).Deriv(m, lbl[r]); d != 0 {
			a := -eta * d
			for p, ix := range rIx {
				w[ix] += a * rVal[p]
			}
		}
		work += re - rs
	}
	return work
}

func sgdPlainLogistic(c *CSR, lo, hi int, w []float64, sched func(int) float64, base int) (work int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		eta := sched(base + r)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Logistic{}).Deriv(m, lbl[r]); d != 0 {
			a := -eta * d
			for p, ix := range rIx {
				w[ix] += a * rVal[p]
			}
		}
		work += re - rs
	}
	return work
}

func sgdPlainSquared(c *CSR, lo, hi int, w []float64, sched func(int) float64, base int) (work int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(w))
	trunc := c.maxInd >= n
	for r := lo; r < hi; r++ {
		eta := sched(base + r)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += w[ix] * rVal[p]
		}
		if d := (glm.Squared{}).Deriv(m, lbl[r]); d != 0 {
			a := -eta * d
			for p, ix := range rIx {
				w[ix] += a * rVal[p]
			}
		}
		work += re - rs
	}
	return work
}

// ---- SGDPassLazyL2: opt.LazyL2SGD.Step, slab form ----------------------
//
// Each iteration is the exact operation sequence of LazyL2SGD.Step: margin
// s·<vm,x>, derivative, shrinkage fold (materialize + clamp when the factor
// is non-positive), sparse −η·d/s update against the post-shrink scale, then
// the rescale-threshold renormalization. The rare materialization branches
// call vec.Scale — they run O(1/log s) times per epoch, never in the hot
// path.

func sgdLazyHinge(c *CSR, lo, hi int, vm []float64, s, lambda float64, sched func(int) float64, base int) (float64, int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(vm))
	trunc := c.maxInd >= n
	work := 0
	for r := lo; r < hi; r++ {
		eta := sched(base + r)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += vm[ix] * rVal[p]
		}
		d := glm.Hinge{}.Deriv(s*m, lbl[r])
		shrink := 1 - eta*lambda
		if shrink <= 0 {
			vec.Scale(vm, s)
			s = 1
			vec.Scale(vm, math.Max(shrink, 0))
			work += len(vm)
		} else {
			s *= shrink
		}
		if d != 0 {
			a := -eta * d / s
			for p, ix := range rIx {
				vm[ix] += a * rVal[p]
			}
		}
		work += re - rs
		if s < lazyRescaleThreshold {
			vec.Scale(vm, s)
			s = 1
			work += len(vm)
		}
	}
	return s, work
}

func sgdLazyLogistic(c *CSR, lo, hi int, vm []float64, s, lambda float64, sched func(int) float64, base int) (float64, int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(vm))
	trunc := c.maxInd >= n
	work := 0
	for r := lo; r < hi; r++ {
		eta := sched(base + r)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += vm[ix] * rVal[p]
		}
		d := glm.Logistic{}.Deriv(s*m, lbl[r])
		shrink := 1 - eta*lambda
		if shrink <= 0 {
			vec.Scale(vm, s)
			s = 1
			vec.Scale(vm, math.Max(shrink, 0))
			work += len(vm)
		} else {
			s *= shrink
		}
		if d != 0 {
			a := -eta * d / s
			for p, ix := range rIx {
				vm[ix] += a * rVal[p]
			}
		}
		work += re - rs
		if s < lazyRescaleThreshold {
			vec.Scale(vm, s)
			s = 1
			work += len(vm)
		}
	}
	return s, work
}

func sgdLazySquared(c *CSR, lo, hi int, vm []float64, s, lambda float64, sched func(int) float64, base int) (float64, int) {
	rp, ind, val, lbl := c.rowPtr, c.ind, c.val, c.labels
	n := int32(len(vm))
	trunc := c.maxInd >= n
	work := 0
	for r := lo; r < hi; r++ {
		eta := sched(base + r)
		rs, re := rp[r], rp[r+1]
		end := rowPrefix(ind, rs, re, n, trunc)
		rIx, rVal := ind[rs:end], val[rs:end]
		rVal = rVal[:len(rIx)] // same length by construction; lets the compiler drop the rVal[p] bounds checks
		m := 0.0
		for p, ix := range rIx {
			m += vm[ix] * rVal[p]
		}
		d := glm.Squared{}.Deriv(s*m, lbl[r])
		shrink := 1 - eta*lambda
		if shrink <= 0 {
			vec.Scale(vm, s)
			s = 1
			vec.Scale(vm, math.Max(shrink, 0))
			work += len(vm)
		} else {
			s *= shrink
		}
		if d != 0 {
			a := -eta * d / s
			for p, ix := range rIx {
				vm[ix] += a * rVal[p]
			}
		}
		work += re - rs
		if s < lazyRescaleThreshold {
			vec.Scale(vm, s)
			s = 1
			work += len(vm)
		}
	}
	return s, work
}
