package data_test

// Slab-kernel bit-identity at the data layer: every kernel entry point must
// produce Float64bits-identical numbers and identical work counts to the
// Example-view interface path it replaces — including when the model is
// shorter than the feature space (the vec.Dot/vec.Axpy truncation rule), on
// sub-views, and across cache-block boundaries. External test package: the
// reference SGD implementations live in opt, which imports data.

import (
	"math"
	"testing"

	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/opt"
	"mllibstar/internal/vec"
)

// kernelObjectives covers every monomorphized loss, each with and without an
// L2 term (the regularizer only matters for the SGD passes).
func kernelObjectives() []struct {
	name string
	obj  glm.Objective
} {
	return []struct {
		name string
		obj  glm.Objective
	}{
		{"hinge", glm.SVM(0)},
		{"hinge-l2", glm.SVM(0.1)},
		{"logistic", glm.LogReg(0)},
		{"logistic-l2", glm.LogReg(0.1)},
		{"squared", glm.Objective{Loss: glm.Squared{}, Reg: glm.None{}}},
		{"squared-l2", glm.Objective{Loss: glm.Squared{}, Reg: glm.L2{Strength: 0.1}}},
	}
}

// kernelView builds a dataset large enough that the blocked kernels cross
// several cache-block boundaries (BlockRows is far below 4000 rows at this
// density), with enough columns that a short model exercises truncation.
func kernelView(t *testing.T) (data.View, int) {
	t.Helper()
	d := data.Generate(data.Spec{Name: "k", Rows: 4000, Cols: 120, NNZPerRow: 8, Seed: 11, NoiseRate: 0.05})
	v := data.ViewOf(d.Examples)
	if blk := v.BlockRows(0); blk >= v.NumRows() {
		t.Fatalf("BlockRows(0) = %d covers all %d rows; test would not cross blocks", blk, v.NumRows())
	}
	return v, d.Features
}

// testModel returns a deterministic non-trivial model of length n.
func testModel(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Sin(float64(i)*0.7) * 0.3
	}
	return w
}

func requireBitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %x (kernel) != %x (interface)", label, i,
				math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestKernelAddGradientMatchesInterface(t *testing.T) {
	v, dim := kernelView(t)
	for _, tc := range kernelObjectives() {
		// Full-width model and one shorter than the feature space: the second
		// forces the truncated-prefix path on rows whose tail indices are cut.
		for _, n := range []int{dim, dim / 3} {
			w := testModel(n)
			gk, gi := make([]float64, n), make([]float64, n)
			nnzK := data.AddGradient(tc.obj, w, v, gk)
			nnzI := tc.obj.AddGradient(w, v.Examples(), gi)
			if nnzK != nnzI {
				t.Errorf("%s dim=%d: work %d (kernel) != %d (interface)", tc.name, n, nnzK, nnzI)
			}
			requireBitsEqual(t, tc.name+" gradient", gk, gi)
		}
	}
}

func TestKernelAddGradientRowsMatchesInterface(t *testing.T) {
	v, dim := kernelView(t)
	sub := v.Sub(100, v.NumRows()-37) // offset view: arena rows != view rows
	rows := make([]int32, 0, sub.NumRows()/3)
	for r := 0; r < sub.NumRows(); r += 3 {
		rows = append(rows, int32(r))
	}
	for _, tc := range kernelObjectives() {
		w := testModel(dim / 2)
		gk, gi := make([]float64, len(w)), make([]float64, len(w))
		nnzK := data.AddGradientRows(tc.obj, w, sub, rows, gk)
		ex := sub.Examples()
		nnzI := 0
		for _, ri := range rows {
			e := ex[ri]
			if d := tc.obj.Loss.Deriv(vec.Dot(w, e.X), e.Label); d != 0 {
				vec.Axpy(d, e.X, gi)
			}
			nnzI += e.X.NNZ()
		}
		if nnzK != nnzI {
			t.Errorf("%s: work %d (kernel) != %d (interface)", tc.name, nnzK, nnzI)
		}
		requireBitsEqual(t, tc.name+" row gradient", gk, gi)
	}
}

func TestKernelLossSumAndValueMatchInterface(t *testing.T) {
	v, dim := kernelView(t)
	for _, tc := range kernelObjectives() {
		for _, n := range []int{dim, dim / 3} {
			w := testModel(n)
			if k, i := data.LossSum(tc.obj, w, v), tc.obj.LossSum(w, v.Examples()); math.Float64bits(k) != math.Float64bits(i) {
				t.Errorf("%s dim=%d: LossSum %x != %x", tc.name, n, math.Float64bits(k), math.Float64bits(i))
			}
			if k, i := data.Value(tc.obj, w, v), tc.obj.Value(w, v.Examples()); math.Float64bits(k) != math.Float64bits(i) {
				t.Errorf("%s dim=%d: Value %x != %x", tc.name, n, math.Float64bits(k), math.Float64bits(i))
			}
		}
	}
}

// TestKernelGradAndLossMatchesTwoPasses pins the fused kernel against the
// two-pass interface path it replaces: same gradient bits, same loss-sum
// bits (the logistic body shares one exponential between value and
// derivative — the branch arithmetic must reproduce each method exactly).
func TestKernelGradAndLossMatchesTwoPasses(t *testing.T) {
	v, dim := kernelView(t)
	for _, tc := range kernelObjectives() {
		for _, n := range []int{dim, dim / 3} {
			w := testModel(n)
			gk, gi := make([]float64, n), make([]float64, n)
			loss, nnzK := data.GradAndLoss(tc.obj, w, v, gk)
			nnzI := tc.obj.AddGradient(w, v.Examples(), gi)
			wantLoss := tc.obj.LossSum(w, v.Examples())
			if nnzK != nnzI {
				t.Errorf("%s dim=%d: work %d (fused) != %d (two-pass)", tc.name, n, nnzK, nnzI)
			}
			if math.Float64bits(loss) != math.Float64bits(wantLoss) {
				t.Errorf("%s dim=%d: loss %x != %x", tc.name, n,
					math.Float64bits(loss), math.Float64bits(wantLoss))
			}
			requireBitsEqual(t, tc.name+" fused gradient", gk, gi)
		}
	}
}

func TestKernelDerivsIntoMatchesLoop(t *testing.T) {
	v, dim := kernelView(t)
	sub := v.Sub(55, 2555)
	out := make([]float64, sub.NumRows())
	for _, tc := range kernelObjectives() {
		w := testModel(dim / 2)
		if !data.DerivsInto(tc.obj.Loss, w, sub, out) {
			t.Fatalf("%s: DerivsInto did not handle a monomorphized loss", tc.name)
		}
		for i, e := range sub.Examples() {
			want := tc.obj.Loss.Deriv(vec.Dot(w, e.X), e.Label)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("%s: deriv[%d] = %x != %x", tc.name, i,
					math.Float64bits(out[i]), math.Float64bits(want))
			}
		}
	}
}

func TestKernelSGDPassPlainMatchesLocalPass(t *testing.T) {
	v, dim := kernelView(t)
	sub := v.Sub(9, 3333)
	for _, tc := range kernelObjectives() {
		if tc.obj.Reg.Lambda() != 0 {
			continue // the plain pass is the None-regularizer path
		}
		const stepBase = 17
		sched := opt.InvSqrt(0.5)
		wk := testModel(dim)
		work, ok := data.SGDPassPlain(tc.obj.Loss, wk, sub, sched, stepBase)
		if !ok {
			t.Fatalf("%s: SGDPassPlain did not handle a monomorphized loss", tc.name)
		}
		wi := testModel(dim)
		wantWork := opt.LocalPass(tc.obj, wi, sub.Examples(), sched, stepBase)
		if work != wantWork {
			t.Errorf("%s: work %d (kernel) != %d (interface)", tc.name, work, wantWork)
		}
		requireBitsEqual(t, tc.name+" plain SGD", wk, wi)
	}
}

// TestSGDPassLazyL2MatchesStep pins the lazy-L2 kernel to opt.LazyL2SGD.Step
// example by example, including the scaled-representation bookkeeping (the
// shrink fold, the post-shrink −η·l'/s update, and the rescale threshold —
// data.lazyRescaleThreshold must equal opt's rescaleThreshold for this to
// hold).
func TestSGDPassLazyL2MatchesStep(t *testing.T) {
	v, dim := kernelView(t)
	sub := v.Sub(0, 2000)
	for _, tc := range kernelObjectives() {
		lambda := tc.obj.Reg.Lambda()
		if lambda == 0 {
			continue
		}
		const stepBase = 5
		// A large-eta prefix forces the shrink ≤ 0 materialization branch on
		// the first step (1 − η·λ < 0 for η > 10 at λ = 0.1).
		sched := func(step int) float64 {
			if step < stepBase+2 {
				return 11.0
			}
			return 0.5 / math.Sqrt(float64(step+1))
		}
		w0 := testModel(dim)

		vm := vec.Copy(w0)
		sOut, work, ok := data.SGDPassLazyL2(tc.obj.Loss, vm, 1, lambda, sub, sched, stepBase)
		if !ok {
			t.Fatalf("%s: SGDPassLazyL2 did not handle a monomorphized loss", tc.name)
		}
		wk := make([]float64, dim)
		vec.ScaleTo(wk, sOut, vm)

		lazy := opt.NewLazyL2SGD(w0, lambda)
		wantWork := 0
		for i, e := range sub.Examples() {
			wantWork += lazy.Step(tc.obj.Loss, e, sched(stepBase+i))
		}
		wi := make([]float64, dim)
		lazy.WeightsInto(wi)

		if work != wantWork {
			t.Errorf("%s: work %d (kernel) != %d (interface)", tc.name, work, wantWork)
		}
		requireBitsEqual(t, tc.name+" lazy L2 SGD", wk, wi)
	}
}

// customLoss is an out-of-registry loss: the kernels must decline it and the
// public entry points must fall back to the interface path.
type customLoss struct{ glm.Squared }

func (customLoss) Name() string { return "custom" }

func TestKernelUnknownLossFallsBack(t *testing.T) {
	v, dim := kernelView(t)
	obj := glm.Objective{Loss: customLoss{}, Reg: glm.None{}}
	w := testModel(dim)
	if _, ok := data.SGDPassPlain(obj.Loss, vec.Copy(w), v, opt.Const(0.1), 0); ok {
		t.Error("SGDPassPlain claimed to handle an unknown loss")
	}
	if _, _, ok := data.SGDPassLazyL2(obj.Loss, vec.Copy(w), 1, 0.1, v, opt.Const(0.1), 0); ok {
		t.Error("SGDPassLazyL2 claimed to handle an unknown loss")
	}
	if ok := data.DerivsInto(obj.Loss, w, v, make([]float64, v.NumRows())); ok {
		t.Error("DerivsInto claimed to handle an unknown loss")
	}
	// AddGradient/LossSum fall back internally; they must still agree with
	// the interface path (which, for this loss, they are).
	gk, gi := make([]float64, dim), make([]float64, dim)
	if k, i := data.AddGradient(obj, w, v, gk), obj.AddGradient(w, v.Examples(), gi); k != i {
		t.Errorf("fallback AddGradient work %d != %d", k, i)
	}
	requireBitsEqual(t, "fallback gradient", gk, gi)
}

func TestKernelConfigureOffMatchesOn(t *testing.T) {
	v, dim := kernelView(t)
	obj := glm.SVM(0.1)
	w := testModel(dim)
	g := func() []float64 {
		out := make([]float64, dim)
		data.AddGradient(obj, w, v, out)
		return out
	}
	on := g()
	data.ConfigureKernels(false)
	defer data.ConfigureKernels(true)
	if data.KernelsEnabled() {
		t.Fatal("ConfigureKernels(false) did not take")
	}
	requireBitsEqual(t, "kernels on vs off", on, g())
}

func TestKernelEmptyView(t *testing.T) {
	obj := glm.SVM(0.1)
	w := testModel(8)
	var empty data.View
	if nnz := data.AddGradient(obj, w, empty, make([]float64, 8)); nnz != 0 {
		t.Errorf("empty AddGradient work = %d", nnz)
	}
	if got, want := data.Value(obj, w, empty), obj.Reg.Value(w); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("empty Value = %v, want Reg-only %v", got, want)
	}
	if _, ok := data.SGDPassPlain(obj.Loss, w, empty, opt.Const(0.1), 0); ok {
		t.Error("SGDPassPlain handled a nil-arena view")
	}
	// An empty sub-view of a real arena, by contrast, is handled (zero rows,
	// zero work).
	d := data.Generate(data.Spec{Name: "k", Rows: 10, Cols: 8, NNZPerRow: 2, Seed: 1})
	sub := data.ViewOf(d.Examples).Sub(4, 4)
	if nnz := data.AddGradient(obj, w, sub, make([]float64, 8)); nnz != 0 {
		t.Errorf("empty sub-view AddGradient work = %d", nnz)
	}
}

// TestKernelEntryPointsZeroAlloc pins the zero-allocation contract of the
// kernel package itself: every slab entry point writes only into
// caller-owned buffers.
func TestKernelEntryPointsZeroAlloc(t *testing.T) {
	d := data.Generate(data.Spec{Name: "k", Rows: 500, Cols: 60, NNZPerRow: 6, Seed: 3})
	v := data.ViewOf(d.Examples)
	obj := glm.SVM(0.1)
	w := testModel(d.Features)
	g := make([]float64, d.Features)
	vm := vec.Copy(w)
	derivs := make([]float64, v.NumRows())
	rows := []int32{0, 3, 7, 11, 200, 499}
	sched := opt.InvSqrt(0.5)
	for name, fn := range map[string]func(){
		"AddGradient":     func() { data.AddGradient(obj, w, v, g) },
		"AddGradientRows": func() { data.AddGradientRows(obj, w, v, rows, g) },
		"LossSum":         func() { data.LossSum(obj, w, v) },
		"DerivsInto":      func() { data.DerivsInto(obj.Loss, w, v, derivs) },
		"SGDPassPlain":    func() { data.SGDPassPlain(obj.Loss, w, v, sched, 0) },
		"SGDPassLazyL2":   func() { data.SGDPassLazyL2(obj.Loss, vm, 1, 0.1, v, sched, 0) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s: %g allocs/op, want 0", name, allocs)
		}
	}
}
