package data_test

// External test package: data's own test file cannot import opt anymore now
// that opt consumes data.View (the test binary would form an import cycle).

import (
	"testing"

	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/opt"
)

func TestGenerateIsLearnable(t *testing.T) {
	// The planted model must make the task solvable well above chance.
	d := data.Generate(data.Spec{Name: "t", Rows: 2000, Cols: 50, NNZPerRow: 10, Seed: 7, NoiseRate: 0.02})
	obj := glm.SVM(0)
	w := make([]float64, d.Features)
	step := 0
	for ep := 0; ep < 5; ep++ {
		opt.LocalPass(obj, w, d.Examples, opt.InvSqrt(0.5), step)
		step += len(d.Examples)
	}
	if acc := glm.Accuracy(w, d.Examples); acc < 0.8 {
		t.Errorf("accuracy after training = %g, want > 0.8", acc)
	}
}
