package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// WriteLibSVM writes the dataset in libsvm text format: one example per
// line, "label index:value ...", with 1-based feature indices as the format
// prescribes (in-memory indices are 0-based).
func WriteLibSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, e := range d.Examples {
		if _, err := fmt.Fprintf(bw, "%g", e.Label); err != nil {
			return err
		}
		for i, ix := range e.X.Ind {
			if _, err := fmt.Fprintf(bw, " %d:%g", ix+1, e.X.Val[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVM parses libsvm text into a dataset. Labels "1"/"+1" map to +1
// and "0"/"-1" to -1 (both labelling conventions appear in the public
// datasets the paper uses). Feature indices are 1-based in the file and
// converted to 0-based. Blank lines and lines starting with '#' are skipped.
func ReadLibSVM(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	d := &Dataset{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := parseLabel(fields[0])
		if err != nil {
			return nil, fmt.Errorf("data: line %d: %v", lineNo, err)
		}
		ind := make([]int32, 0, len(fields)-1)
		val := make([]float64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("data: line %d: malformed feature %q", lineNo, f)
			}
			ix, err := strconv.Atoi(f[:colon])
			if err != nil || ix < 1 {
				return nil, fmt.Errorf("data: line %d: bad index %q", lineNo, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: bad value %q", lineNo, f[colon+1:])
			}
			ind = append(ind, int32(ix-1))
			val = append(val, v)
		}
		x, err := vec.NewSparse(ind, val)
		if err != nil {
			return nil, fmt.Errorf("data: line %d: %v", lineNo, err)
		}
		if mx := int(x.MaxIndex()) + 1; mx > d.Features {
			d.Features = mx
		}
		d.Examples = append(d.Examples, glm.Example{Label: label, X: x})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading libsvm: %w", err)
	}
	return d, nil
}

func parseLabel(s string) (float64, error) {
	switch s {
	case "1", "+1", "1.0", "+1.0":
		return 1, nil
	case "0", "-1", "0.0", "-1.0":
		return -1, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad label %q", s)
	}
	if v > 0 {
		return 1, nil
	}
	return -1, nil
}
