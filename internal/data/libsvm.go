package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// WriteLibSVM writes the dataset in libsvm text format: one example per
// line, "label index:value ...", with 1-based feature indices as the format
// prescribes (in-memory indices are 0-based).
func WriteLibSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, e := range d.Examples {
		if _, err := fmt.Fprintf(bw, "%g", e.Label); err != nil {
			return err
		}
		for i, ix := range e.X.Ind {
			if _, err := fmt.Fprintf(bw, " %d:%g", ix+1, e.X.Val[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVM parses libsvm text into a dataset. Labels "1"/"+1" map to +1
// and "0"/"-1" to -1 (both labelling conventions appear in the public
// datasets the paper uses). Feature indices are 1-based in the file and
// converted to 0-based; within a row they must be strictly ascending, and
// the reader distinguishes the two malformations — a duplicate index and a
// descending index — in its errors, since they have different causes
// (double-emitted feature vs. unsorted writer) and both would corrupt the
// dot-product kernels if let through. Blank lines and lines starting with
// '#' are skipped.
//
// Rows are parsed straight into one CSR arena (see CSR): feature indices
// and values append to two shared slabs and the per-row examples are views
// carved out at the end, so loading allocates per slab growth, not per row,
// and the loaded dataset iterates with the same locality Generate's packed
// output has.
func ReadLibSVM(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	d := &Dataset{Name: name}
	var (
		ind    []int32
		val    []float64
		rowPtr = []int{0}
		labels []float64
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := parseLabel(fields[0])
		if err != nil {
			return nil, fmt.Errorf("data: line %d: %v", lineNo, err)
		}
		prev := 0 // last 1-based index seen in this row; valid ones are ≥ 1
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("data: line %d: malformed feature %q", lineNo, f)
			}
			ix, err := strconv.Atoi(f[:colon])
			if err != nil || ix < 1 {
				return nil, fmt.Errorf("data: line %d: bad index %q", lineNo, f[:colon])
			}
			if ix == prev {
				return nil, fmt.Errorf("data: line %d: duplicate feature index %d", lineNo, ix)
			}
			if ix < prev {
				return nil, fmt.Errorf("data: line %d: descending feature index %d after %d", lineNo, ix, prev)
			}
			prev = ix
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: bad value %q", lineNo, f[colon+1:])
			}
			ind = append(ind, int32(ix-1))
			val = append(val, v)
		}
		if prev > d.Features {
			d.Features = prev
		}
		labels = append(labels, label)
		rowPtr = append(rowPtr, len(ind))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading libsvm: %w", err)
	}
	d.Examples = make([]glm.Example, len(labels))
	for i, label := range labels {
		lo, hi := rowPtr[i], rowPtr[i+1]
		d.Examples[i] = glm.Example{Label: label, X: vec.Sparse{Ind: ind[lo:hi:hi], Val: val[lo:hi:hi]}}
	}
	return d, nil
}

func parseLabel(s string) (float64, error) {
	switch s {
	case "1", "+1", "1.0", "+1.0":
		return 1, nil
	case "0", "-1", "0.0", "-1.0":
		return -1, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad label %q", s)
	}
	if v > 0 {
		return 1, nil
	}
	return -1, nil
}
