package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLibSVM asserts the parser never panics on arbitrary input, and
// that anything it accepts round-trips through the writer to an equivalent
// dataset.
func FuzzReadLibSVM(f *testing.F) {
	seeds := []string{
		"",
		"1 1:0.5 3:1\n0 2:2\n",
		"+1 1:1\n-1 2:-0.75\n",
		"# comment\n\n1 1:1\n",
		"1 1:1e300\n",
		"1 0:1\n",         // invalid: index < 1
		"1 2:1 1:1\n",     // invalid: descending indices within a row
		"1 1:1 1:2\n",     // invalid: duplicate index within a row
		"1 3:1 5:2 4:3\n", // invalid: descending after a valid prefix
		"x 1:1\n",         // invalid label
		"1 1:\n",          // empty value
		"1 :\n",           // empty both
		"1 1:nan\n",       // NaN parses as float; must round-trip or error
		strings.Repeat("1 1:1 2:2 3:3\n", 5),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadLibSVM(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteLibSVM(&buf, ds); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := ReadLibSVM(&buf, "fuzz")
		if err != nil {
			t.Fatalf("writer output rejected by reader: %v\noutput: %q", err, buf.String())
		}
		if len(back.Examples) != len(ds.Examples) {
			t.Fatalf("round trip changed example count: %d -> %d", len(ds.Examples), len(back.Examples))
		}
		for i := range ds.Examples {
			a, b := ds.Examples[i], back.Examples[i]
			if a.Label != b.Label || a.X.NNZ() != b.X.NNZ() {
				t.Fatalf("example %d changed: %+v -> %+v", i, a, b)
			}
		}
	})
}
