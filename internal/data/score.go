// Canonical block-fold scoring: the batch-scoring kernel of the serving
// tier (internal/serve) and the definition of a GLM margin that makes the
// sharded score a pure function of (model, request), independent of how the
// coordinate space is partitioned.
//
// Float addition is not associative, so "each shard sums its coordinates and
// the router adds the shard partials" would produce different bits for
// different shard counts. Instead the margin is DEFINED as a fold over
// fixed-width coordinate blocks:
//
//	margin(w, x) = fold over blocks b ascending of
//	               ( sum left-to-right of w[j]*x[j] for nonzero j in block b )
//
// Shard coordinate ranges are block-aligned (ps.BlockAlignedRange), so every
// block is owned by exactly one shard: shards emit per-(row, block) partial
// sums and the router folds them in ascending block order, reproducing the
// canonical fold bit-for-bit for any shard count — including one.
package data

// ScoreBlock is the width in coordinates of the canonical fold block. It is
// part of the scoring definition (changing it changes low-order bits), not a
// tuning knob.
const ScoreBlock = 256

// BlockPartial is one per-(row, block) partial margin emitted by a shard.
// Twelve bytes on the simulated wire (two int32 + rounding to the float64).
type BlockPartial struct {
	Row   int32   // request index within the batch
	Block int32   // coordinate block: coordinate j lives in block j/ScoreBlock
	Sum   float64 // left-to-right sum of w[j]*x[j] over the block's nonzeros
}

// BlockMargins scores the view's rows against a shard's weight range
// [lo, hi) and appends the nonzero-structure per-block partials to out,
// rows in order, blocks ascending within a row. w is the shard-local slice
// (w[j-lo] is coordinate j); the range must be ScoreBlock-aligned at lo and
// at hi unless hi is the end of the coordinate space. Feature indices ≥
// lo+len(w) contribute nothing, mirroring the vec.Dot truncation rule that
// training uses for out-of-range indices.
//
// A block with no nonzeros in [lo, hi) emits nothing: absent partials are
// zero terms of the fold, and skipping a zero add keeps the fold equal to
// the dense definition only because FoldMargin re-inserts nothing — adding
// 0.0 to a partial sum s yields s exactly (no signed-zero traffic: margins
// of real requests start from +0).
func BlockMargins(v View, w []float64, lo int, out []BlockPartial) []BlockPartial {
	hi := lo + len(w)
	for i := 0; i < v.NumRows(); i++ {
		_, ind, val := v.Row(i)
		block := int32(-1)
		sum := 0.0
		for k, j := range ind {
			jj := int(j)
			if jj < lo {
				continue
			}
			if jj >= hi {
				break // ind is ascending: nothing further is in range
			}
			b := j / ScoreBlock
			if b != block {
				if block >= 0 {
					out = append(out, BlockPartial{Row: int32(i), Block: block, Sum: sum})
				}
				block, sum = b, 0
			}
			sum += w[jj-lo] * val[k]
		}
		if block >= 0 {
			out = append(out, BlockPartial{Row: int32(i), Block: block, Sum: sum})
		}
	}
	return out
}

// FoldMargin folds one row's partials — already in ascending block order —
// into the canonical margin. Partials from different shards must be
// concatenated shard-range-ascending before the call; since shard ranges
// tile the coordinate space in order, that is simply shard 0's partials,
// then shard 1's, and so on.
func FoldMargin(parts []BlockPartial) float64 {
	m := 0.0
	for _, p := range parts {
		m += p.Sum
	}
	return m
}

// Margin is the canonical single-machine margin: the block fold evaluated
// with one shard owning the whole coordinate space. It is the reference the
// sharded path must match bit-for-bit, and the scorer used when comparing a
// loaded checkpoint against in-memory weights. Note it differs in low-order
// bits from vec.Dot (a flat left-to-right sum), which is why serving defines
// and documents its own fold.
func Margin(w []float64, ind []int32, val []float64) float64 {
	block := int32(-1)
	sum, m := 0.0, 0.0
	for k, j := range ind {
		if int(j) >= len(w) {
			break
		}
		b := j / ScoreBlock
		if b != block {
			if block >= 0 {
				m += sum
			}
			block, sum = b, 0
		}
		sum += w[j] * val[k]
	}
	if block >= 0 {
		m += sum
	}
	return m
}
