package data

import (
	"math"
	"math/rand"
	"testing"

	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// randomRequests builds n sparse feature vectors over dim coordinates with
// irregular sparsity, packed into a CSR arena like the serving router does.
func randomRequests(r *rand.Rand, n, dim int) View {
	ex := make([]glm.Example, n)
	for i := range ex {
		nnz := 1 + r.Intn(40)
		seen := map[int32]bool{}
		var ind []int32
		for len(ind) < nnz {
			j := int32(r.Intn(dim))
			if !seen[j] {
				seen[j] = true
				ind = append(ind, j)
			}
		}
		// CSR rows keep indices ascending.
		for a := 1; a < len(ind); a++ {
			for b := a; b > 0 && ind[b] < ind[b-1]; b-- {
				ind[b], ind[b-1] = ind[b-1], ind[b]
			}
		}
		val := make([]float64, len(ind))
		for k := range val {
			val[k] = r.NormFloat64()
		}
		ex[i] = glm.Example{X: vec.Sparse{Ind: ind, Val: val}}
	}
	return ViewOf(ex)
}

func randomWeights(r *rand.Rand, dim int) []float64 {
	w := make([]float64, dim)
	for j := range w {
		w[j] = r.NormFloat64()
	}
	return w
}

// partitionBlocks mirrors ps.BlockAlignedRange without importing ps (data
// must stay import-light): blocks split evenly, remainders to low shards.
func partitionBlocks(dim, k, i int) (lo, hi int) {
	nb := (dim + ScoreBlock - 1) / ScoreBlock
	base, rem := nb/k, nb%k
	bLo := i*base + min(i, rem)
	bHi := bLo + base
	if i < rem {
		bHi++
	}
	lo, hi = bLo*ScoreBlock, bHi*ScoreBlock
	if lo > dim {
		lo = dim
	}
	if hi > dim {
		hi = dim
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// shardedMargins scores the batch with k block-aligned shards and folds the
// partials in shard order, exactly like the serving router.
func shardedMargins(v View, w []float64, k int) []float64 {
	perRow := make([][]BlockPartial, v.NumRows())
	for s := 0; s < k; s++ {
		lo, hi := partitionBlocks(len(w), k, s)
		parts := BlockMargins(v, w[lo:hi], lo, nil)
		for _, p := range parts {
			perRow[p.Row] = append(perRow[p.Row], p)
		}
	}
	out := make([]float64, v.NumRows())
	for i, parts := range perRow {
		out[i] = FoldMargin(parts)
	}
	return out
}

// TestShardCountInvariance: the folded sharded margin is bit-identical to
// the canonical Margin for 1, 4, and 16 shards.
func TestShardCountInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const dim = 5000 // 20 blocks: uneven splits for k=4 (20/4) and k=16 (4 rem 4)
	w := randomWeights(r, dim)
	v := randomRequests(r, 64, dim)
	want := make([]float64, v.NumRows())
	for i := range want {
		_, ind, val := v.Row(i)
		want[i] = Margin(w, ind, val)
	}
	for _, k := range []int{1, 4, 16} {
		got := shardedMargins(v, w, k)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("k=%d row %d: sharded margin %x != canonical %x",
					k, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestMarginTruncation: feature indices beyond the model dimension are
// ignored, matching the vec.Dot truncation rule used in training.
func TestMarginTruncation(t *testing.T) {
	w := []float64{2, 3}
	ind := []int32{0, 1, 5}
	val := []float64{1, 10, 100}
	if got := Margin(w, ind, val); got != 32 {
		t.Fatalf("Margin with out-of-range index = %g, want 32", got)
	}
	parts := BlockMargins(ViewOf([]glm.Example{{X: vec.Sparse{Ind: ind, Val: val}}}), w, 0, nil)
	if len(parts) != 1 || parts[0].Sum != 32 {
		t.Fatalf("BlockMargins with out-of-range index = %+v, want one partial of 32", parts)
	}
}

// TestBlockMarginsStructure: partials appear rows-in-order, blocks ascending
// within a row, and blocks with no nonzeros are absent.
func TestBlockMarginsStructure(t *testing.T) {
	dim := 4 * ScoreBlock
	w := make([]float64, dim)
	for j := range w {
		w[j] = 1
	}
	ex := []glm.Example{
		{X: vec.Sparse{Ind: []int32{1, int32(3*ScoreBlock + 1)}, Val: []float64{1, 2}}}, // blocks 0 and 3
		{X: vec.Sparse{Ind: []int32{int32(ScoreBlock)}, Val: []float64{5}}},             // block 1 only
	}
	parts := BlockMargins(ViewOf(ex), w, 0, nil)
	want := []BlockPartial{
		{Row: 0, Block: 0, Sum: 1},
		{Row: 0, Block: 3, Sum: 2},
		{Row: 1, Block: 1, Sum: 5},
	}
	if len(parts) != len(want) {
		t.Fatalf("got %d partials %+v, want %d", len(parts), parts, len(want))
	}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("partial %d = %+v, want %+v", i, parts[i], want[i])
		}
	}
}

// TestFoldDiffersFromFlatDot documents why the block fold exists: for an
// adversarial vector the flat left-to-right dot and the block fold disagree
// in low-order bits, so the serving tier pins one canonical order.
func TestFoldDiffersFromFlatDot(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	dim := 3 * ScoreBlock
	w := randomWeights(r, dim)
	ind := make([]int32, dim)
	val := make([]float64, dim)
	for j := range ind {
		ind[j] = int32(j)
		val[j] = r.NormFloat64() * math.Ldexp(1, r.Intn(40)-20)
	}
	flat := 0.0
	for k, j := range ind {
		flat += w[j] * val[k]
	}
	block := Margin(w, ind, val)
	if math.Abs(flat-block) > 1e-9*math.Abs(flat) {
		t.Fatalf("orders diverged beyond rounding: flat=%g block=%g", flat, block)
	}
	// Not asserting inequality — it is overwhelmingly likely but not
	// guaranteed; the test pins that both are finite and near-equal while
	// the package doc explains they need not share low-order bits.
	if math.IsNaN(block) || math.IsInf(block, 0) {
		t.Fatalf("block fold not finite: %g", block)
	}
}
