package data

import (
	"fmt"

	"mllibstar/internal/detrand"
	"mllibstar/internal/glm"
)

// glmExample aliases the stored example type for readability here.
type glmExample = glm.Example

// Split partitions the dataset into a training and a test set, with
// testFraction of the examples (rounded down, at least one of each when
// possible) going to the test set. The split is a deterministic shuffle by
// seed; examples are shared, not copied.
func (d *Dataset) Split(testFraction float64, seed int64) (train, test *Dataset, err error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("data: test fraction %g out of (0,1)", testFraction)
	}
	n := len(d.Examples)
	if n < 2 {
		return nil, nil, fmt.Errorf("data: cannot split %d examples", n)
	}
	nTest := int(testFraction * float64(n))
	if nTest == 0 {
		nTest = 1
	}
	if nTest == n {
		nTest = n - 1
	}
	perm := detrand.Perm(seed, n)
	testEx := make([]glmExample, 0, nTest)
	trainEx := make([]glmExample, 0, n-nTest)
	for i, j := range perm {
		if i < nTest {
			testEx = append(testEx, d.Examples[j])
		} else {
			trainEx = append(trainEx, d.Examples[j])
		}
	}
	train = &Dataset{Name: d.Name + "-train", Features: d.Features, Examples: trainEx}
	test = &Dataset{Name: d.Name + "-test", Features: d.Features, Examples: testEx}
	return train, test, nil
}

// Fold describes one cross-validation fold.
type Fold struct {
	Train *Dataset
	Test  *Dataset
}

// KFold returns k cross-validation folds over a deterministic shuffle:
// fold i's test set is the i-th contiguous slice of the shuffled examples
// and its training set is everything else.
func (d *Dataset) KFold(k int, seed int64) ([]Fold, error) {
	n := len(d.Examples)
	if k < 2 || k > n {
		return nil, fmt.Errorf("data: k=%d folds over %d examples", k, n)
	}
	perm := detrand.Perm(seed, n)
	shuffled := make([]glmExample, n)
	for i, j := range perm {
		shuffled[i] = d.Examples[j]
	}
	folds := make([]Fold, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		test := shuffled[lo:hi]
		train := make([]glmExample, 0, n-len(test))
		train = append(train, shuffled[:lo]...)
		train = append(train, shuffled[hi:]...)
		folds[i] = Fold{
			Train: &Dataset{Name: fmt.Sprintf("%s-fold%d-train", d.Name, i), Features: d.Features, Examples: train},
			Test:  &Dataset{Name: fmt.Sprintf("%s-fold%d-test", d.Name, i), Features: d.Features, Examples: test},
		}
	}
	return folds, nil
}
