package data

import (
	"fmt"

	"mllibstar/internal/glm"
)

// View is a contiguous row range of a CSR arena — the unit the trainers now
// hold instead of []glm.Example. A partition is a View over its own arena;
// mini-batch windows are sub-Views sharing the same slabs, so re-batching
// per superstep is pointer arithmetic on rowPtr, never a slice copy. The
// zero View is an empty dataset.
//
// Views are the entry point to the slab kernels (AddGradient, LossSum,
// SGDPassPlain, ...): a kernel streams the ind/val slabs of the underlying
// arena across [lo, hi) directly. Code that still needs per-row
// glm.Example values (evaluation, fallback paths, custom losses) uses
// Examples, which is a subslice of the arena's precomputed row views — the
// exact values trainers consumed before the kernels existed.
type View struct {
	c      *CSR
	lo, hi int
}

// View returns the whole arena as a View.
func (c *CSR) View() View { return View{c: c, lo: 0, hi: len(c.rows)} }

// ViewOf packs the examples into a fresh arena and returns its full View.
func ViewOf(examples []glm.Example) View { return PackExamples(examples).View() }

// NumRows returns the number of rows in the view.
func (v View) NumRows() int { return v.hi - v.lo }

// NNZ returns the total stored nonzeros of the view's rows in O(1), via the
// arena row pointers. It equals glm.NNZTotal over Examples() exactly, so
// virtual-charge work formulas can use it without changing any cost.
func (v View) NNZ() int {
	if v.c == nil {
		return 0
	}
	return v.c.rowPtr[v.hi] - v.c.rowPtr[v.lo]
}

// Examples returns the view's rows as glm.Example values backed by the
// shared slabs (nil for an empty view).
func (v View) Examples() []glm.Example {
	if v.c == nil {
		return nil
	}
	return v.c.rows[v.lo:v.hi]
}

// Sub returns the sub-view of rows [lo, hi) relative to this view — the
// zero-copy batch window of the trainer inner loops.
func (v View) Sub(lo, hi int) View {
	if lo < 0 || hi < lo || v.lo+hi > v.hi {
		panic(fmt.Sprintf("data: View.Sub(%d, %d) of %d rows", lo, hi, v.NumRows()))
	}
	return View{c: v.c, lo: v.lo + lo, hi: v.lo + hi}
}

// Row returns row i (relative to the view) as its label and slab slices.
func (v View) Row(i int) (label float64, ind []int32, val []float64) {
	r := v.lo + i
	lo, hi := v.c.rowPtr[r], v.c.rowPtr[r+1]
	return v.c.rows[r].Label, v.c.ind[lo:hi:hi], v.c.val[lo:hi:hi]
}

// BlockRows returns the arena's cache-block size in rows (see CSR.BlockRows).
func (v View) BlockRows(targetBytes int) int {
	if v.c == nil {
		return 1
	}
	return v.c.BlockRows(targetBytes)
}
