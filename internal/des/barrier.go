package des

import "fmt"

// Barrier synchronizes a fixed set of n processes, the primitive underlying
// BSP supersteps. Arrive blocks until all n participants of the current
// generation have arrived; everyone is then released at the arrival time of
// the slowest participant. The barrier is reusable: generation g+1 starts as
// soon as generation g has been released.
type Barrier struct {
	sim     *Sim
	name    string
	n       int
	arrived int
	gen     int
	waiting []*Proc
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(sim *Sim, name string, n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("des: NewBarrier(%d) %q", n, name))
	}
	return &Barrier{sim: sim, name: name, n: n}
}

// N returns the number of participants.
func (b *Barrier) N() int { return b.n }

// Arrive registers p at the barrier and blocks until the current generation
// completes. It returns the generation number that was completed, which
// callers can use to detect missed supersteps.
func (b *Barrier) Arrive(p *Proc) int {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		// Last arrival: release everyone at the current time.
		b.arrived = 0
		b.gen++
		for _, w := range b.waiting {
			if !w.done {
				b.sim.schedule(b.sim.now, w)
			}
		}
		b.waiting = b.waiting[:0]
		return gen
	}
	b.waiting = append(b.waiting, p)
	p.block(fmt.Sprintf("barrier %q gen %d (%d/%d arrived)", b.name, gen, b.arrived, b.n))
	return gen
}

// Signal is a one-shot broadcast event: any number of processes can Await it
// and are all released when Fire is called. Await after Fire returns
// immediately.
type Signal struct {
	sim     *Sim
	name    string
	fired   bool
	waiting []*Proc
}

// NewSignal returns an unfired signal.
func NewSignal(sim *Sim, name string) *Signal {
	return &Signal{sim: sim, name: name}
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all current and future waiters. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiting {
		if !w.done {
			s.sim.schedule(s.sim.now, w)
		}
	}
	s.waiting = nil
}

// Await blocks p until the signal fires.
func (s *Signal) Await(p *Proc) {
	if s.fired {
		return
	}
	s.waiting = append(s.waiting, p)
	p.block(fmt.Sprintf("signal %q", s.name))
}
