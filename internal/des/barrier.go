package des

import "fmt"

// Barrier synchronizes a fixed set of n processes, the primitive underlying
// BSP supersteps. Arrive blocks until all n participants of the current
// generation have arrived; everyone is then released at the arrival time of
// the slowest participant. The barrier is reusable: generation g+1 starts as
// soon as generation g has been released.
type Barrier struct {
	sim      *Sim
	name     string
	n        int
	arrived  int
	gen      int
	waiting  []*Proc
	arriveAt []float64       // arrival time of each waiter, parallel to waiting
	obs      BarrierObserver // release notification; nil when unobserved
}

// BarrierObserver is called once per participant when a generation releases:
// proc arrived at arriveAt and resumes at releaseAt (the last arrival's
// time). The callback runs inside the last arriver's process context at the
// release instant and must only observe — it is the hook the causal trace
// uses to record who the slowest participant was, and it may not block or
// advance the clock.
type BarrierObserver func(proc *Proc, gen int, arriveAt, releaseAt float64)

// Observe installs the release observer (nil uninstalls). Observing a
// barrier changes nothing about its timing or release order.
func (b *Barrier) Observe(fn BarrierObserver) { b.obs = fn }

// NewBarrier returns a barrier for n participants.
func NewBarrier(sim *Sim, name string, n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("des: NewBarrier(%d) %q", n, name))
	}
	return &Barrier{sim: sim, name: name, n: n}
}

// N returns the number of participants.
func (b *Barrier) N() int { return b.n }

// Arrive registers p at the barrier and blocks until the current generation
// completes. It returns the generation number that was completed, which
// callers can use to detect missed supersteps.
func (b *Barrier) Arrive(p *Proc) int {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		// Last arrival: release everyone at the current time.
		b.arrived = 0
		b.gen++
		for _, w := range b.waiting {
			if !w.done {
				b.sim.schedule(b.sim.now, w)
			}
		}
		if b.obs != nil {
			for i, w := range b.waiting {
				b.obs(w, gen, b.arriveAt[i], b.sim.now)
			}
			b.obs(p, gen, b.sim.now, b.sim.now)
		}
		b.waiting = b.waiting[:0]
		b.arriveAt = b.arriveAt[:0]
		return gen
	}
	b.waiting = append(b.waiting, p)
	b.arriveAt = append(b.arriveAt, b.sim.now)
	p.block(fmt.Sprintf("barrier %q gen %d (%d/%d arrived)", b.name, gen, b.arrived, b.n))
	return gen
}

// Signal is a one-shot broadcast event: any number of processes can Await it
// and are all released when Fire is called. Await after Fire returns
// immediately.
type Signal struct {
	sim     *Sim
	name    string
	fired   bool
	waiting []*Proc
}

// NewSignal returns an unfired signal.
func NewSignal(sim *Sim, name string) *Signal {
	return &Signal{sim: sim, name: name}
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all current and future waiters. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiting {
		if !w.done {
			s.sim.schedule(s.sim.now, w)
		}
	}
	s.waiting = nil
}

// Await blocks p until the signal fires.
func (s *Signal) Await(p *Proc) {
	if s.fired {
		return
	}
	s.waiting = append(s.waiting, p)
	p.block(fmt.Sprintf("signal %q", s.name))
}
