// Package des implements a deterministic discrete-event simulation kernel.
//
// A Sim owns a virtual clock and a set of processes. Each process is a
// goroutine, but the kernel enforces that exactly one process is runnable at
// any moment: a process runs until it blocks on a simulation primitive
// (Wait, Queue.Get, Resource.Acquire, ...), at which point control returns
// to the kernel, which advances the clock to the next scheduled event and
// resumes the corresponding process. Events at equal times fire in the order
// they were scheduled, so a simulation is fully deterministic: the same
// program and seeds produce the same event trace, clock values, and results.
//
// The kernel is the substrate for the simulated cluster (package simnet),
// the Spark-like execution engine (package engine), and the parameter-server
// runtime (package ps).
package des

import (
	"container/heap"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
)

// killed is the sentinel panic value used to unwind a process when the
// simulation is shut down while the process is still blocked.
type killedPanic struct{}

// Sim is a discrete-event simulation instance. It is not safe for concurrent
// use; all interaction must happen from the goroutine that calls Run (before
// Run, to spawn the initial processes) or from within process functions.
type Sim struct {
	now    float64
	events eventHeap
	seq    uint64
	yield  chan struct{} // signalled by a process when it blocks or exits
	procs  []*Proc
	nextID int
	closed bool
	fault  *procPanic // panic captured from a process, re-raised by the kernel
}

// procPanic records a panic that escaped a process function.
type procPanic struct {
	proc  string
	value any
	stack []byte
}

// New returns an empty simulation with the clock at zero.
func New() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// event is a scheduled wake-up for a process. wake pins the process's
// wake generation at scheduling time: a blocked process may have several
// wake-ups scheduled (a queue item and a GetUntil deadline racing each
// other), only the first of which may resume it — the kernel bumps the
// generation on every delivery, turning the losers into stale events that
// Run discards.
type event struct {
	at   float64
	seq  uint64
	proc *Proc
	wake uint64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//mlstar:nolint floateq -- exact compare intentional: equal timestamps fall through to the seq tie-break
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (s *Sim) schedule(at float64, p *Proc) {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling event in the past: %g < %g", at, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, proc: p, wake: p.wake})
	p.pending++
}

// Proc is a simulation process. A Proc handle is passed to the process
// function and is required by every blocking primitive, which keeps the
// "who is blocking" bookkeeping explicit and cheap.
type Proc struct {
	sim     *Sim
	name    string
	id      int
	resume  chan bool // true = run, false = killed
	done    bool
	blocked string // description of the primitive the process is blocked on
	pending int    // number of scheduled wake-ups not yet delivered
	wake    uint64 // wake generation: bumped on every delivered resume
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn id, unique within its Sim and assigned in
// spawn order. Names alone need not be unique (per-collective sender forks
// reuse theirs), so "name#id" is the canonical process identity of the
// causal trace.
func (p *Proc) ID() int { return p.id }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.sim.now }

// Spawn creates a process that starts at the current virtual time. The
// process function runs inside the simulation; it must block only through
// simulation primitives, never through real channels or time.Sleep.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	if s.closed {
		panic("des: Spawn on a closed simulation")
	}
	p := &Proc{sim: s, name: name, id: s.nextID, resume: make(chan bool)}
	s.nextID++
	s.procs = append(s.procs, p)
	//mlstar:nolint determinism -- the kernel's own process launch: the goroutine runs only when the scheduler hands it the baton
	go func() {
		defer func() {
			p.done = true
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok {
					// Real bug in a process function: capture it so the
					// kernel can re-raise on the goroutine running Run.
					s.fault = &procPanic{proc: p.name, value: r, stack: debug.Stack()}
				}
			}
			s.yield <- struct{}{}
		}()
		if !<-p.resume {
			panic(killedPanic{})
		}
		fn(p)
	}()
	s.schedule(s.now, p)
	return p
}

// switchTo hands control to p and waits until it blocks or exits. A panic
// that escaped the process function is re-raised here, on the goroutine that
// called Run, wrapped with the process name and stack.
func (s *Sim) switchTo(p *Proc) {
	p.blocked = ""
	p.resume <- true
	<-s.yield
	if f := s.fault; f != nil {
		s.fault = nil
		panic(fmt.Sprintf("des: process %q panicked: %v\n%s", f.proc, f.value, f.stack))
	}
}

// block returns control to the kernel and waits to be resumed. reason is a
// human-readable description used in deadlock reports.
func (p *Proc) block(reason string) {
	p.blocked = reason
	p.sim.yield <- struct{}{}
	if !<-p.resume {
		panic(killedPanic{})
	}
}

// Run executes the simulation until no scheduled events remain, then shuts
// down any processes still blocked (e.g. servers waiting on request queues)
// and returns the final virtual time.
func (s *Sim) Run() float64 {
	if s.closed {
		panic("des: Run on a closed simulation")
	}
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		ev.proc.pending--
		if ev.proc.done || ev.wake != ev.proc.wake {
			// Finished process, or a wake-up that lost its race (the
			// process was already resumed by a newer event and has moved
			// on — e.g. a GetUntil deadline overtaken by a queue item).
			continue
		}
		if ev.at < s.now {
			panic("des: clock moved backwards")
		}
		s.now = ev.at
		ev.proc.wake++
		s.switchTo(ev.proc)
	}
	s.shutdown()
	return s.now
}

// Blocked reports the processes that are blocked right now, with the
// primitive each is blocked on. After Run it is empty; it is mainly useful
// from within a watchdog process when debugging a distributed deadlock.
func (s *Sim) Blocked() []string {
	var out []string
	for _, p := range s.procs {
		if !p.done && p.blocked != "" {
			out = append(out, fmt.Sprintf("%s: %s", p.name, p.blocked))
		}
	}
	sort.Strings(out)
	return out
}

// shutdown unwinds every process still blocked so their goroutines exit.
func (s *Sim) shutdown() {
	if s.closed {
		return
	}
	s.closed = true
	for _, p := range s.procs {
		if !p.done {
			p.resume <- false
			<-s.yield
		}
	}
}

// Wait blocks the process for d seconds of virtual time. Negative or NaN
// durations panic: they always indicate a cost-model bug.
func (p *Proc) Wait(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("des: Wait(%g) from %s", d, p.name))
	}
	p.WaitUntil(p.sim.now + d)
}

// WaitUntil blocks the process until virtual time t. If t is in the past the
// process continues immediately (no time passes, but other processes
// scheduled earlier still run first at the current instant).
func (p *Proc) WaitUntil(t float64) {
	if t < p.sim.now {
		t = p.sim.now
	}
	p.sim.schedule(t, p)
	p.block(fmt.Sprintf("wait until t=%.6f", t))
}

// Yield lets every other process scheduled at the current instant run before
// this one continues. Equivalent to Wait(0).
func (p *Proc) Yield() { p.Wait(0) }
