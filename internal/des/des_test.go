package des

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWaitAdvancesClock(t *testing.T) {
	s := New()
	var at []float64
	s.Spawn("w", func(p *Proc) {
		p.Wait(1.5)
		at = append(at, p.Now())
		p.Wait(2.5)
		at = append(at, p.Now())
	})
	end := s.Run()
	want := []float64{1.5, 4.0}
	if !reflect.DeepEqual(at, want) {
		t.Errorf("timestamps = %v, want %v", at, want)
	}
	if end != 4.0 {
		t.Errorf("end = %g, want 4.0", end)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	s := New()
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for step := 0; step < 3; step++ {
				p.Wait(1)
				order = append(order, fmt.Sprintf("p%d@%g", i, p.Now()))
			}
		})
	}
	s.Run()
	// At every tick processes run in spawn order because ties break by
	// schedule sequence.
	want := []string{
		"p0@1", "p1@1", "p2@1",
		"p0@2", "p1@2", "p2@2",
		"p0@3", "p1@3", "p2@3",
	}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestWaitZeroRunsOthersFirst(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	s.Run()
	want := []string{"a1", "b1", "a2"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestNegativeWaitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from negative Wait")
		}
	}()
	s := New()
	s.Spawn("w", func(p *Proc) { p.Wait(-1) })
	s.Run()
}

func TestQueueBlocksUntilPut(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	var got int
	var at float64
	s.Spawn("consumer", func(p *Proc) {
		got = q.Get(p)
		at = p.Now()
	})
	s.Spawn("producer", func(p *Proc) {
		p.Wait(3)
		q.Put(42)
	})
	s.Run()
	if got != 42 || at != 3 {
		t.Errorf("got %d at %g, want 42 at 3", got, at)
	}
}

func TestQueueFIFOAcrossWaiters(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	var got []string
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			// Stagger arrival so waiter order is c0, c1, c2.
			p.Wait(float64(i))
			v := q.Get(p)
			got = append(got, fmt.Sprintf("c%d<-%d", i, v))
		})
	}
	s.Spawn("producer", func(p *Proc) {
		p.Wait(10)
		q.Put(100)
		q.Put(101)
		q.Put(102)
	})
	s.Run()
	want := []string{"c0<-100", "c1<-101", "c2<-102"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestQueueBufferedGetConsumesNoTime(t *testing.T) {
	s := New()
	q := NewQueue[string](s, "q")
	q.Put("x")
	q.Put("y")
	s.Spawn("c", func(p *Proc) {
		if v := q.Get(p); v != "x" {
			t.Errorf("first Get = %q, want x", v)
		}
		if v := q.Get(p); v != "y" {
			t.Errorf("second Get = %q, want y", v)
		}
		if p.Now() != 0 {
			t.Errorf("buffered Get advanced clock to %g", p.Now())
		}
	})
	s.Run()
}

func TestQueueTryGet(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	if _, ok := q.TryGet(); ok {
		t.Error("TryGet on empty queue reported ok")
	}
	q.Put(7)
	if v, ok := q.TryGet(); !ok || v != 7 {
		t.Errorf("TryGet = %d,%v want 7,true", v, ok)
	}
}

func TestQueueGetN(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	var got []int
	s.Spawn("c", func(p *Proc) { got = q.GetN(p, 3) })
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(1)
			q.Put(i)
		}
	})
	s.Run()
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("got %v", got)
	}
}

func TestResourceSerializesFIFO(t *testing.T) {
	s := New()
	r := NewResource(s, "link")
	type span struct{ start, end float64 }
	var spans []span
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			st, en := r.Acquire(p, 2)
			spans = append(spans, span{st, en})
		})
	}
	s.Run()
	want := []span{{0, 2}, {2, 4}, {4, 6}}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("spans = %v, want %v", spans, want)
	}
	if r.BusyTime() != 6 {
		t.Errorf("busy = %g, want 6", r.BusyTime())
	}
}

func TestResourceIdleGapNotCounted(t *testing.T) {
	s := New()
	r := NewResource(s, "link")
	s.Spawn("u", func(p *Proc) {
		r.Acquire(p, 1)
		p.Wait(5)
		st, en := r.Acquire(p, 1)
		if st != 6 || en != 7 {
			t.Errorf("second acquire = [%g,%g), want [6,7)", st, en)
		}
	})
	s.Run()
	if r.BusyTime() != 2 {
		t.Errorf("busy = %g, want 2", r.BusyTime())
	}
}

func TestReserveAt(t *testing.T) {
	s := New()
	r := NewResource(s, "nic")
	s.Spawn("u", func(p *Proc) {
		// Two messages arrive at the receiving NIC at t=5 and t=5.5; the
		// second must queue behind the first.
		st1, en1 := r.ReserveAt(5, 2)
		st2, en2 := r.ReserveAt(5.5, 2)
		if st1 != 5 || en1 != 7 {
			t.Errorf("first = [%g,%g)", st1, en1)
		}
		if st2 != 7 || en2 != 9 {
			t.Errorf("second = [%g,%g), want [7,9)", st2, en2)
		}
	})
	s.Run()
}

func TestBarrierReleasesAtSlowest(t *testing.T) {
	s := New()
	b := NewBarrier(s, "bsp", 3)
	releases := map[string]float64{}
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(float64(i + 1)) // w2 is slowest, arrives at t=3
			b.Arrive(p)
			releases[p.Name()] = p.Now()
		})
	}
	s.Run()
	for name, at := range releases {
		if at != 3 {
			t.Errorf("%s released at %g, want 3", name, at)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	s := New()
	b := NewBarrier(s, "bsp", 2)
	var gens []int
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for step := 0; step < 3; step++ {
				p.Wait(float64(i + 1))
				g := b.Arrive(p)
				if i == 0 {
					gens = append(gens, g)
				}
			}
		})
	}
	s.Run()
	if !reflect.DeepEqual(gens, []int{0, 1, 2}) {
		t.Errorf("generations = %v, want [0 1 2]", gens)
	}
}

func TestSignal(t *testing.T) {
	s := New()
	sig := NewSignal(s, "go")
	var woke []float64
	s.Spawn("waiter", func(p *Proc) {
		sig.Await(p)
		woke = append(woke, p.Now())
		sig.Await(p) // after Fire: returns immediately
		woke = append(woke, p.Now())
	})
	s.Spawn("firer", func(p *Proc) {
		p.Wait(2)
		sig.Fire()
		sig.Fire() // double fire is a no-op
	})
	s.Run()
	if !reflect.DeepEqual(woke, []float64{2, 2}) {
		t.Errorf("woke = %v, want [2 2]", woke)
	}
}

func TestBlockedReportsDeadlockedProcesses(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "never")
	var report []string
	s.Spawn("stuck", func(p *Proc) { q.Get(p) })
	s.Spawn("watch", func(p *Proc) {
		p.Wait(1)
		report = s.Blocked()
	})
	s.Run()
	if len(report) != 1 || report[0] != `stuck: recv on queue "never"` {
		t.Errorf("report = %q", report)
	}
}

func TestRunShutsDownBlockedProcesses(t *testing.T) {
	// A process left blocked on a queue must be unwound by Run so its
	// goroutine exits; reaching the end of Run without hanging is the test.
	s := New()
	q := NewQueue[int](s, "never")
	s.Spawn("stuck", func(p *Proc) { q.Get(p); t.Error("stuck process resumed with a value") })
	s.Run()
}

// TestDeterminism is a property test: a random workload of waits, queue
// operations, and resource acquisitions produces an identical event trace
// when replayed with the same seed.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		var trace []string
		s := New()
		rng := rand.New(rand.NewSource(seed))
		q := NewQueue[int](s, "q")
		r := NewResource(s, "r")
		nProd := 2 + rng.Intn(3)
		nCons := 1 + rng.Intn(3)
		total := 0
		for i := 0; i < nProd; i++ {
			i := i
			n := 1 + rng.Intn(5)
			total += n
			delays := make([]float64, n)
			for j := range delays {
				delays[j] = rng.Float64() * 3
			}
			s.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j, d := range delays {
					p.Wait(d)
					r.Acquire(p, d/2)
					q.Put(i*100 + j)
					trace = append(trace, fmt.Sprintf("put %d@%.9f", i*100+j, p.Now()))
				}
			})
		}
		per := total / nCons
		rem := total - per*nCons
		for i := 0; i < nCons; i++ {
			n := per
			if i == 0 {
				n += rem
			}
			s.Spawn(fmt.Sprintf("cons%d", i), func(p *Proc) {
				for j := 0; j < n; j++ {
					v := q.Get(p)
					trace = append(trace, fmt.Sprintf("%s got %d@%.9f", p.Name(), v, p.Now()))
				}
			})
		}
		end := s.Run()
		trace = append(trace, fmt.Sprintf("end@%.9f", end))
		return trace
	}
	prop := func(seed int64) bool {
		a, b := run(seed), run(seed)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestResourceOrderInvariant(t *testing.T) {
	// Property: for any sequence of service times requested back-to-back by
	// one process, the resource serves them contiguously and BusyTime equals
	// their sum.
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		s := New()
		r := NewResource(s, "r")
		sum := 0.0
		ok := true
		s.Spawn("u", func(p *Proc) {
			prevEnd := 0.0
			for _, b := range raw {
				d := float64(b) / 16
				st, en := r.Acquire(p, d)
				if st != prevEnd || en != st+d {
					ok = false
				}
				prevEnd = en
				sum += d
			}
		})
		s.Run()
		const eps = 1e-9
		return ok && r.BusyTime() > sum-eps && r.BusyTime() < sum+eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
