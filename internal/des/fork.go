package des

// Fork spawns fn as a child process of p, scheduled at the current virtual
// time, and returns a handle any process can Wait on. It is the structured
// fork/join form of Sim.Spawn: where Spawn creates free-running servers at
// simulation setup, Fork creates a bounded helper inside a running process —
// the pipelined collectives fork a sender process so outbound serialization
// overlaps the parent's receive-and-fold loop, and join it (or let a
// causally later receive prove it finished) before the buffers it reads are
// reused.
func Fork(p *Proc, name string, fn func(child *Proc)) *Join {
	j := &Join{done: NewQueue[struct{}](p.Sim(), name+"/join")}
	j.child = p.Sim().Spawn(name, func(child *Proc) {
		fn(child)
		j.done.Put(struct{}{})
	})
	return j
}

// Join signals a forked child's completion.
type Join struct {
	done  *Queue[struct{}]
	child *Proc
}

// Proc returns the forked child process — its identity, not a handle to block
// on (that is Wait). The causal trace records it to tie the child's event
// chain to the fork point in the parent's.
func (j *Join) Proc() *Proc { return j.child }

// Wait blocks p until the forked process has returned. Completion is
// delivered through a queue, so Wait may be called at most once per Fork.
func (j *Join) Wait(p *Proc) { j.done.Get(p) }
