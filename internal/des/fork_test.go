package des

import "testing"

func TestForkRunsChildAtCurrentTimeAndJoins(t *testing.T) {
	s := New()
	var childStart, childEnd, joinAt float64
	s.Spawn("parent", func(p *Proc) {
		p.Wait(1)
		j := Fork(p, "child", func(c *Proc) {
			childStart = c.Now()
			c.Wait(3)
			childEnd = c.Now()
		})
		p.Wait(0.5) // the parent keeps running while the child works
		j.Wait(p)
		joinAt = p.Now()
	})
	s.Run()
	if childStart != 1 {
		t.Errorf("child started at %g, want 1 (fork time)", childStart)
	}
	if childEnd != 4 {
		t.Errorf("child ended at %g, want 4", childEnd)
	}
	if joinAt != 4 {
		t.Errorf("join returned at %g, want 4 (the later of parent and child)", joinAt)
	}
}

func TestForkJoinAfterChildAlreadyDone(t *testing.T) {
	s := New()
	var joinAt float64
	s.Spawn("parent", func(p *Proc) {
		j := Fork(p, "quick", func(c *Proc) { c.Wait(1) })
		p.Wait(10)
		j.Wait(p) // completion token is queued; Wait returns immediately
		joinAt = p.Now()
	})
	s.Run()
	if joinAt != 10 {
		t.Errorf("join returned at %g, want 10", joinAt)
	}
}
