package des

import "fmt"

// Queue is an unbounded FIFO mailbox for values of type T. Put never blocks;
// Get blocks the calling process until a value is available. When several
// processes are blocked on Get, values are handed out in the order the
// getters arrived (FIFO fairness), which keeps simulations deterministic.
type Queue[T any] struct {
	sim     *Sim
	name    string
	items   []T
	waiters []*getWaiter[T]
}

type getWaiter[T any] struct {
	proc  *Proc
	value T
	ready bool
}

// NewQueue returns an empty mailbox bound to sim. The name appears in
// deadlock reports.
func NewQueue[T any](sim *Sim, name string) *Queue[T] {
	return &Queue[T]{sim: sim, name: name}
}

// Len returns the number of values currently buffered (not counting values
// already assigned to blocked getters).
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v to the queue. If a process is blocked on Get, the value is
// assigned to the longest-waiting getter, which is woken at the current
// virtual time. Put may be called from any process or before Run.
func (q *Queue[T]) Put(v T) {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.proc.done {
			continue
		}
		w.value = v
		w.ready = true
		q.sim.schedule(q.sim.now, w.proc)
		return
	}
	q.items = append(q.items, v)
}

// Get removes and returns the oldest value in the queue, blocking p until
// one is available. Retrieval itself consumes no virtual time.
func (q *Queue[T]) Get(p *Proc) T {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v
	}
	w := &getWaiter[T]{proc: p}
	q.waiters = append(q.waiters, w)
	p.block(fmt.Sprintf("recv on queue %q", q.name))
	if !w.ready {
		panic(fmt.Sprintf("des: process %s woken on queue %q without a value", p.name, q.name))
	}
	return w.value
}

// GetUntil is Get with a virtual-time deadline: it removes and returns the
// oldest value if one is buffered or arrives strictly before deadline, and
// otherwise returns the zero value with ok=false once the deadline passes.
// When a Put and the deadline land at the same instant, the deadline wins
// (the kernel fires it first — it was scheduled earlier) and the value stays
// queued for the next getter, so no value is ever lost to a timeout.
//
// It is the primitive under request batching with a latency budget
// (internal/serve): a router drains its mailbox until either the batch
// fills or the budget deadline passes, whichever comes first.
func (q *Queue[T]) GetUntil(p *Proc, deadline float64) (T, bool) {
	var zero T
	if v, ok := q.TryGet(); ok {
		return v, true
	}
	if deadline <= q.sim.now {
		return zero, false
	}
	w := &getWaiter[T]{proc: p}
	q.waiters = append(q.waiters, w)
	q.sim.schedule(deadline, p)
	p.block(fmt.Sprintf("recv on queue %q until t=%.6f", q.name, deadline))
	if w.ready {
		return w.value, true
	}
	// Woken by the deadline: withdraw the registration so a later Put does
	// not assign a value to a getter that has given up.
	for i, x := range q.waiters {
		if x == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			break
		}
	}
	return zero, false
}

// TryGet removes and returns the oldest value without blocking. The second
// result reports whether a value was available.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// GetN blocks until n values have been received and returns them in arrival
// order.
func (q *Queue[T]) GetN(p *Proc, n int) []T {
	out := make([]T, 0, n)
	for len(out) < n {
		out = append(out, q.Get(p))
	}
	return out
}
