package des

import "testing"

// TestGetUntilValueFirst: a value arriving before the deadline is delivered
// at its arrival time, and the stale deadline wake-up must not disturb the
// process's later blocking.
func TestGetUntilValueFirst(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	s.Spawn("producer", func(p *Proc) {
		p.Wait(1)
		q.Put(7)
		p.Wait(4) // well past the consumer's deadline
		q.Put(8)
	})
	s.Spawn("consumer", func(p *Proc) {
		v, ok := q.GetUntil(p, 3)
		if !ok || v != 7 {
			t.Errorf("GetUntil = (%d, %v), want (7, true)", v, ok)
		}
		if p.Now() != 1 {
			t.Errorf("delivered at t=%g, want 1", p.Now())
		}
		// The stale deadline event at t=3 must not wake this Get early.
		v2 := q.Get(p)
		if v2 != 8 || p.Now() != 5 {
			t.Errorf("second Get = %d at t=%g, want 8 at t=5", v2, p.Now())
		}
	})
	s.Run()
}

// TestGetUntilTimeout: with no value by the deadline, GetUntil returns
// ok=false exactly at the deadline, and a value put later goes to the next
// getter, not the withdrawn one.
func TestGetUntilTimeout(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	s.Spawn("producer", func(p *Proc) {
		p.Wait(10)
		q.Put(42)
	})
	s.Spawn("consumer", func(p *Proc) {
		_, ok := q.GetUntil(p, 2)
		if ok {
			t.Error("GetUntil returned a value before any Put")
		}
		if p.Now() != 2 {
			t.Errorf("timeout at t=%g, want 2", p.Now())
		}
		v := q.Get(p)
		if v != 42 || p.Now() != 10 {
			t.Errorf("Get after timeout = %d at t=%g, want 42 at t=10", v, p.Now())
		}
	})
	s.Run()
}

// TestGetUntilBuffered: a buffered value is returned immediately without
// consuming virtual time, and an already-passed deadline polls.
func TestGetUntilBuffered(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	q.Put(1)
	s.Spawn("consumer", func(p *Proc) {
		v, ok := q.GetUntil(p, 5)
		if !ok || v != 1 || p.Now() != 0 {
			t.Errorf("GetUntil buffered = (%d, %v) at t=%g, want (1, true) at 0", v, ok, p.Now())
		}
		// Deadline in the past: pure poll, empty queue -> ok=false, no time.
		if _, ok := q.GetUntil(p, 0); ok {
			t.Error("GetUntil with passed deadline returned a value from an empty queue")
		}
		if p.Now() != 0 {
			t.Errorf("poll consumed time: t=%g", p.Now())
		}
	})
	s.Run()
}

// TestGetUntilSimultaneous: when a Put lands at exactly the deadline, the
// deadline wins (it was scheduled first) and the value stays queued for the
// next receive — timed out, but never lost.
func TestGetUntilSimultaneous(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	s.Spawn("consumer", func(p *Proc) {
		_, ok := q.GetUntil(p, 3)
		if ok {
			t.Error("same-instant Put beat the deadline; want timeout")
		}
		if p.Now() != 3 {
			t.Errorf("timeout at t=%g, want 3", p.Now())
		}
		v := q.Get(p)
		if v != 9 || p.Now() != 3 {
			t.Errorf("value lost to the race: Get = %d at t=%g, want 9 at t=3", v, p.Now())
		}
	})
	s.Spawn("producer", func(p *Proc) {
		p.Wait(3)
		q.Put(9)
	})
	s.Run()
}

// TestGetUntilRepeated: a batching loop — drain until a deadline — sees
// every value at its arrival time and then times out cleanly.
func TestGetUntilRepeated(t *testing.T) {
	s := New()
	q := NewQueue[int](s, "q")
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(1)
			q.Put(i)
		}
	})
	var got []int
	s.Spawn("batcher", func(p *Proc) {
		deadline := 5.0
		for {
			v, ok := q.GetUntil(p, deadline)
			if !ok {
				break
			}
			got = append(got, v)
		}
		if p.Now() != 5 {
			t.Errorf("batch closed at t=%g, want 5", p.Now())
		}
	})
	s.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("batch = %v, want [0 1 2]", got)
	}
}
