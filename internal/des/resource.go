package des

import "fmt"

// Resource models a FIFO single-server resource such as a network link or a
// disk: requests are served one at a time, in arrival order, each occupying
// the resource for its service time. Because processes arrive in event
// order, the server can be modelled analytically with a single "free at"
// timestamp, which makes Acquire O(1).
type Resource struct {
	sim    *Sim
	name   string
	freeAt float64
	busy   float64 // total busy time, for utilization accounting
}

// NewResource returns an idle resource bound to sim.
func NewResource(sim *Sim, name string) *Resource {
	return &Resource{sim: sim, name: name}
}

// Acquire blocks p until the resource has served this request, which takes
// service seconds once all earlier requests have been served. It returns the
// interval [start, end) during which the resource worked on this request,
// which callers record in activity traces.
func (r *Resource) Acquire(p *Proc, service float64) (start, end float64) {
	if service < 0 {
		panic(fmt.Sprintf("des: Acquire(%g) on %q", service, r.name))
	}
	start = r.sim.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + service
	r.freeAt = end
	r.busy += service
	p.WaitUntil(end)
	return start, end
}

// Reserve books service time on the resource without blocking the caller:
// it returns the interval the resource will spend on the request. It is used
// when the requester hands off work (e.g. a NIC pushing bytes onto a wire)
// and does not itself need to wait for completion.
func (r *Resource) Reserve(service float64) (start, end float64) {
	if service < 0 {
		panic(fmt.Sprintf("des: Reserve(%g) on %q", service, r.name))
	}
	start = r.sim.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + service
	r.freeAt = end
	r.busy += service
	return start, end
}

// ReserveAt behaves like Reserve but the request arrives at time at (>= now),
// e.g. a message that reaches a receiving NIC after a propagation delay.
func (r *Resource) ReserveAt(at, service float64) (start, end float64) {
	if service < 0 {
		panic(fmt.Sprintf("des: ReserveAt(%g) on %q", service, r.name))
	}
	if at < r.sim.now {
		at = r.sim.now
	}
	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + service
	r.freeAt = end
	r.busy += service
	return start, end
}

// BusyTime returns the cumulative time the resource has spent serving
// requests (including time booked in the future by Reserve).
func (r *Resource) BusyTime() float64 { return r.busy }

// FreeAt returns the virtual time at which the resource next becomes idle.
func (r *Resource) FreeAt() float64 { return r.freeAt }
