// Package detrand is the single place in the repository allowed to
// construct random-number generators. Everything downstream of a config
// seed — per-worker jitter, per-partition sampling, per-step mini-batch
// selection — derives its stream here, so the answer to "which draws does
// experiment X make at step t on worker r?" lives in one audited file
// instead of being scattered as magic primes across five packages.
//
// The determinism analyzer (internal/analysis/determinism) enforces the
// funnel: direct rand.New / rand.NewSource calls anywhere else in the
// simulated packages fail the lint gate.
//
// Compatibility note: the derivation arithmetic below reproduces, bit for
// bit, the ad-hoc formulas the trainers used before this package existed
// (seed + worker*7907, seed + part*2654435761, seed + step*1_000_003 + i).
// Changing any constant re-randomizes every figure under results/; do that
// only together with regenerating the committed artifacts.
package detrand

import "math/rand"

// Derivation strides. Exported so tests can assert the contract; see the
// compatibility note above before touching them.
const (
	// WorkerStride separates per-worker jitter streams (Petuum, Angel).
	WorkerStride = 7907
	// PartitionStride separates per-partition sampling streams
	// (engine.Sample); 2654435761 is the 32-bit Knuth multiplier.
	PartitionStride = 2654435761
	// StepStride separates per-communication-step streams (MLlib
	// mini-batch gradient descent); the worker index is added on top.
	StepStride = 1_000_003
)

// New returns the root generator for a config seed — the only
// un-derived stream. Use the derivation helpers for anything that exists
// per worker, per partition, or per step.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Worker returns worker r's stream: the per-worker compute-jitter sequence
// of the parameter-server trainers.
func Worker(seed int64, r int) *rand.Rand {
	return New(seed + int64(r)*WorkerStride)
}

// Partition returns partition part's stream: the per-partition Bernoulli
// sampling sequence of engine.Sample.
func Partition(seed int64, part int) *rand.Rand {
	return New(seed + int64(part)*PartitionStride)
}

// Step returns the stream for communication step t on worker i: the
// per-step mini-batch selection of the SendGradient trainer.
func Step(seed int64, t, i int) *rand.Rand {
	return New(seed + int64(t)*StepStride + int64(i))
}

// Perm returns a deterministic permutation of [0, n) for the seed — the
// shuffling primitive of the data splitters.
func Perm(seed int64, n int) []int {
	return New(seed).Perm(n)
}
