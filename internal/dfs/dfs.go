// Package dfs models the distributed file system under the Spark cluster —
// the HDFS layer the paper's datasets live on ("more than 80% of the data
// are extracted and transformed using Spark"; Angel "can read data directly
// from HDFS"). Files are split into blocks, replicated across datanodes
// co-located with the executors, and read through a per-node disk that
// serializes concurrent reads, so data loading exhibits the two properties
// that matter for iterative ML on Spark: locality (a local replica skips
// the network) and the cache cliff (reloading instead of caching pays the
// full disk+network cost every epoch).
package dfs

import (
	"fmt"

	"mllibstar/internal/des"
	"mllibstar/internal/simnet"
)

// Config describes a DFS deployment.
type Config struct {
	// Nodes are the datanode host names (typically the executor nodes).
	Nodes []string
	// BlockBytes is the block size (HDFS default 128 MB; scale to taste).
	BlockBytes float64
	// Replication is the number of copies per block (HDFS default 3).
	Replication int
	// DiskBW is the sequential read bandwidth of each datanode's disk, in
	// bytes per second.
	DiskBW float64
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("dfs: no datanodes")
	}
	if c.BlockBytes <= 0 || c.DiskBW <= 0 {
		return fmt.Errorf("dfs: block size %g / disk bw %g must be positive", c.BlockBytes, c.DiskBW)
	}
	if c.Replication < 1 || c.Replication > len(c.Nodes) {
		return fmt.Errorf("dfs: replication %d out of [1, %d]", c.Replication, len(c.Nodes))
	}
	return nil
}

// Block is one stored block of a file.
type Block struct {
	Index    int
	Bytes    float64
	Replicas []int // datanode indices holding a copy
}

// File is a stored file's metadata.
type File struct {
	Name   string
	Bytes  float64
	Blocks []Block
}

// FS is a running DFS deployment: one datanode server process per node.
type FS struct {
	cfg   Config
	net   *simnet.Network
	files map[string]*File
}

type readReq struct {
	bytes    float64
	replyTo  string
	replyTag string
}

// New spawns the datanode processes and returns the filesystem handle.
func New(sim *des.Sim, net *simnet.Network, cfg Config) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := &FS{cfg: cfg, net: net, files: map[string]*File{}}
	for i, name := range cfg.Nodes {
		i, name := i, name
		node := net.Node(name)
		disk := des.NewResource(sim, name+"/disk")
		sim.Spawn(fmt.Sprintf("dfs:datanode%d", i), func(p *des.Proc) {
			for {
				msg := node.Recv(p, dataTag(i))
				req := msg.Payload.(readReq)
				// Sequential disk read, FIFO across concurrent requests.
				disk.Acquire(p, req.bytes/cfg.DiskBW)
				if req.replyTo == name {
					// Local read: no network transfer, just notify.
					node.Send(p, req.replyTo, req.replyTag, 0, nil)
				} else {
					node.Send(p, req.replyTo, req.replyTag, req.bytes, nil)
				}
			}
		})
	}
	return fs, nil
}

func dataTag(node int) string { return fmt.Sprintf("dfs.read%d", node) }

// Store registers a file of the given size: blocks are placed round-robin
// with the configured replication (replicas on consecutive nodes, as HDFS
// does within a rack). Storing is metadata-only; the write path is not
// modelled (the paper's datasets pre-exist).
func (fs *FS) Store(name string, bytes float64) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if bytes <= 0 {
		return nil, fmt.Errorf("dfs: file size %g", bytes)
	}
	f := &File{Name: name, Bytes: bytes}
	n := len(fs.cfg.Nodes)
	for off, idx := 0.0, 0; off < bytes; off, idx = off+fs.cfg.BlockBytes, idx+1 {
		size := fs.cfg.BlockBytes
		if off+size > bytes {
			size = bytes - off
		}
		replicas := make([]int, fs.cfg.Replication)
		for r := range replicas {
			replicas[r] = (idx + r) % n
		}
		f.Blocks = append(f.Blocks, Block{Index: idx, Bytes: size, Replicas: replicas})
	}
	fs.files[name] = f
	return f, nil
}

// Open returns a stored file's metadata.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", name)
	}
	return f, nil
}

// nodeIndex maps a node name to its datanode index, or -1.
func (fs *FS) nodeIndex(name string) int {
	for i, n := range fs.cfg.Nodes {
		if n == name {
			return i
		}
	}
	return -1
}

// ReadBlock reads one block from the given client node, blocking p until
// the data has arrived. It prefers a replica local to the client (disk cost
// only); otherwise it reads from the block's first replica over the
// network. It returns whether the read was local.
func (fs *FS) ReadBlock(p *des.Proc, clientNode string, f *File, index int) (local bool) {
	if index < 0 || index >= len(f.Blocks) {
		panic(fmt.Sprintf("dfs: block %d of %q out of range", index, f.Name))
	}
	b := f.Blocks[index]
	client := fs.net.Node(clientNode)
	ci := fs.nodeIndex(clientNode)
	source := b.Replicas[0]
	for _, r := range b.Replicas {
		if r == ci {
			source, local = r, true
			break
		}
	}
	replyTag := fmt.Sprintf("dfs.resp.%s.%s.%d", clientNode, f.Name, index)
	client.Send(p, fs.cfg.Nodes[source], dataTag(source), 64,
		readReq{bytes: b.Bytes, replyTo: clientNode, replyTag: replyTag})
	client.Recv(p, replyTag)
	return local
}

// BlocksFor partitions a file's blocks over k readers: reader i gets the
// blocks whose index ≡ i (mod k), which with round-robin placement aligns
// readers with local replicas.
func (f *File) BlocksFor(i, k int) []int {
	var out []int
	for idx := range f.Blocks {
		if idx%k == i {
			out = append(out, idx)
		}
	}
	return out
}
