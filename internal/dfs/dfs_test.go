package dfs_test

import (
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/des"
	"mllibstar/internal/dfs"
	"mllibstar/internal/simnet"
)

func build(t *testing.T, nodes int, cfg dfs.Config) (*des.Sim, *simnet.Network, []string, *dfs.FS) {
	t.Helper()
	sim, net, names := clusters.Test(nodes).BuildNet(nil)
	cfg.Nodes = names
	fs, err := dfs.New(sim, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, names, fs
}

func TestConfigValidate(t *testing.T) {
	bad := []dfs.Config{
		{},
		{Nodes: []string{"a"}, BlockBytes: 0, DiskBW: 1},
		{Nodes: []string{"a"}, BlockBytes: 1, DiskBW: 0},
		{Nodes: []string{"a"}, BlockBytes: 1, DiskBW: 1, Replication: 2},
		{Nodes: []string{"a"}, BlockBytes: 1, DiskBW: 1, Replication: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: want error for %+v", i, c)
		}
	}
}

func TestStoreSplitsAndReplicates(t *testing.T) {
	_, _, _, fs := build(t, 4, dfs.Config{BlockBytes: 100, Replication: 2, DiskBW: 1000})
	f, err := fs.Store("data", 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	if f.Blocks[2].Bytes != 50 {
		t.Errorf("last block = %g bytes, want 50", f.Blocks[2].Bytes)
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 2 || b.Replicas[0] == b.Replicas[1] {
			t.Errorf("block %d replicas = %v", b.Index, b.Replicas)
		}
	}
	if _, err := fs.Store("data", 10); err == nil {
		t.Error("duplicate store should fail")
	}
	if _, err := fs.Open("nope"); err == nil {
		t.Error("open missing should fail")
	}
}

func TestLocalReadSkipsNetwork(t *testing.T) {
	sim, net, names, fs := build(t, 2, dfs.Config{BlockBytes: 1000, Replication: 1, DiskBW: 1e4})
	f, _ := fs.Store("data", 1000) // one block on node 0
	var local bool
	sim.Spawn("client", func(p *des.Proc) {
		local = fs.ReadBlock(p, names[0], f, 0)
	})
	sim.Run()
	if !local {
		t.Error("read from the replica holder should be local")
	}
	// Only the 64-byte request moved on the network.
	if got := net.TotalBytes(); got != 64 {
		t.Errorf("network bytes = %g, want 64 (request only)", got)
	}
}

func TestRemoteReadPaysNetwork(t *testing.T) {
	sim, net, names, fs := build(t, 2, dfs.Config{BlockBytes: 1000, Replication: 1, DiskBW: 1e4})
	f, _ := fs.Store("data", 1000)
	var local bool
	var done float64
	sim.Spawn("client", func(p *des.Proc) {
		local = fs.ReadBlock(p, names[1], f, 0) // replica is on node 0
		done = p.Now()
	})
	sim.Run()
	if local {
		t.Error("read should be remote")
	}
	if net.TotalBytes() < 1000 {
		t.Errorf("network bytes = %g, want >= block size", net.TotalBytes())
	}
	// Disk (0.1s) plus network transfer (1000B at 1e7 B/s) plus latencies.
	if done < 0.1 {
		t.Errorf("remote read finished at %g, before the disk could deliver", done)
	}
}

func TestDiskSerializesConcurrentReads(t *testing.T) {
	sim, _, names, fs := build(t, 1, dfs.Config{BlockBytes: 1000, Replication: 1, DiskBW: 1e4})
	f, _ := fs.Store("data", 3000) // 3 blocks, all on node 0
	var done float64
	sim.Spawn("client", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			fs.ReadBlock(p, names[0], f, i)
		}
		done = p.Now()
	})
	sim.Run()
	// Three sequential 0.1s disk reads.
	if done < 0.3 {
		t.Errorf("3 reads finished at %g, want >= 0.3 (disk serialization)", done)
	}
}

func TestBlocksForAlignsWithPlacement(t *testing.T) {
	_, _, _, fs := build(t, 4, dfs.Config{BlockBytes: 10, Replication: 1, DiskBW: 1e4})
	f, _ := fs.Store("data", 80) // 8 blocks round-robin on 4 nodes
	covered := map[int]bool{}
	for i := 0; i < 4; i++ {
		for _, idx := range f.BlocksFor(i, 4) {
			if covered[idx] {
				t.Errorf("block %d assigned twice", idx)
			}
			covered[idx] = true
			// Round-robin placement means reader i's blocks live on node i.
			if f.Blocks[idx].Replicas[0] != i {
				t.Errorf("block %d primary replica on %d, reader %d", idx, f.Blocks[idx].Replicas[0], i)
			}
		}
	}
	if len(covered) != 8 {
		t.Errorf("covered %d blocks, want 8", len(covered))
	}
}

func TestParallelReadersScale(t *testing.T) {
	// k readers each reading their local blocks finish in ~1/k the time of
	// one reader reading everything.
	cfg := dfs.Config{BlockBytes: 1000, Replication: 1, DiskBW: 1e4}
	elapsed := func(readers int) float64 {
		sim, _, names, fs := build(t, 4, cfg)
		f, _ := fs.Store("data", 8000)
		var max float64
		for r := 0; r < readers; r++ {
			r := r
			sim.Spawn("reader", func(p *des.Proc) {
				for _, idx := range f.BlocksFor(r, readers) {
					fs.ReadBlock(p, names[r%4], f, idx)
				}
				if p.Now() > max {
					max = p.Now()
				}
			})
		}
		sim.Run()
		return max
	}
	one, four := elapsed(1), elapsed(4)
	if four > one/2 {
		t.Errorf("4 readers took %g vs 1 reader %g — no parallel speedup", four, one)
	}
}
