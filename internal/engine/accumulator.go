package engine

// Accumulator is Spark's write-only shared counter: tasks add to it, only
// the driver reads the total. Task attempts (originals and speculative
// copies) record their contributions separately; when the driver accepts
// the first result for a task, that attempt's contributions are committed
// and the losing attempt's are discarded — exactly Spark's rule that only
// the winning attempt updates accumulators.
type Accumulator struct {
	name      string
	committed float64
	pending   map[attemptKey]float64
}

type attemptKey struct {
	stage   int
	index   int
	attempt int
}

// NewAccumulator registers a named accumulator on the context; its pending
// contributions are committed by RunStage as results are accepted.
func NewAccumulator(ctx *Context, name string) *Accumulator {
	a := &Accumulator{name: name, pending: map[attemptKey]float64{}}
	ctx.accums = append(ctx.accums, a)
	return a
}

// Add records v from the currently executing task attempt.
func (a *Accumulator) Add(ex *Executor, v float64) {
	a.pending[attemptKey{stage: ex.curStage, index: ex.curTask, attempt: ex.curAttempt}] += v
}

// commit moves the winning attempt's contribution into the total.
func (a *Accumulator) commit(stage, index, attempt int) {
	key := attemptKey{stage: stage, index: index, attempt: attempt}
	a.committed += a.pending[key]
	delete(a.pending, key)
}

// Value returns the committed total. Driver-side only.
func (a *Accumulator) Value() float64 { return a.committed }

// Name returns the accumulator's name.
func (a *Accumulator) Name() string { return a.name }
