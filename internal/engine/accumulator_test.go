package engine

import (
	"testing"

	"mllibstar/internal/des"
)

func TestAccumulatorSumsAcrossTasks(t *testing.T) {
	sim, _, ctx := testCluster(3, DefaultConfig())
	acc := NewAccumulator(ctx, "rows")
	runOnDriver(sim, func(p *des.Proc) {
		tasks := make([]Task, 3)
		for i := range tasks {
			i := i
			tasks[i] = Task{Exec: ctx.RoundRobin(i), Run: func(p *des.Proc, ex *Executor) (any, float64) {
				acc.Add(ex, float64(i+1))
				acc.Add(ex, 10) // multiple adds within one task accumulate
				return nil, 0
			}}
		}
		ctx.RunStage(p, "s", tasks)
		if got := acc.Value(); got != 1+2+3+30 {
			t.Errorf("value = %g, want 36", got)
		}
	})
}

func TestAccumulatorAcrossStages(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	acc := NewAccumulator(ctx, "n")
	runOnDriver(sim, func(p *des.Proc) {
		for s := 0; s < 3; s++ {
			tasks := make([]Task, 2)
			for i := range tasks {
				tasks[i] = Task{Exec: ctx.RoundRobin(i), Run: func(p *des.Proc, ex *Executor) (any, float64) {
					acc.Add(ex, 1)
					return nil, 0
				}}
			}
			ctx.RunStage(p, "s", tasks)
		}
		if acc.Value() != 6 {
			t.Errorf("value = %g, want 6", acc.Value())
		}
	})
}

func TestAccumulatorDeduplicatesSpeculativeCopies(t *testing.T) {
	// With speculation, both attempts run and both Add — but only the
	// winner's contribution counts, as in Spark.
	cfg := Config{TaskBytes: 1, ResultBytes: 1, SpeculationQuantile: 0.5}
	sim, _, ctx := testCluster(4, cfg)
	acc := NewAccumulator(ctx, "n")
	adds := 0
	runOnDriver(sim, func(p *des.Proc) {
		tasks := make([]Task, 4)
		for i := range tasks {
			i := i
			home := ctx.RoundRobin(i)
			tasks[i] = Task{
				Exec:         home,
				Speculatable: true,
				Run: func(p *des.Proc, ex *Executor) (any, float64) {
					work := 100.0
					if i == 3 && ex.Name() == home {
						work = 100000
					}
					ex.Charge(p, work)
					acc.Add(ex, 1)
					adds++
					return nil, 0
				},
			}
		}
		ctx.RunStage(p, "s", tasks)
		if acc.Value() != 4 {
			t.Errorf("value = %g, want 4 (one per task, not per attempt)", acc.Value())
		}
	})
	if adds <= 4 {
		t.Fatalf("speculation never ran a duplicate (adds = %d); test is vacuous", adds)
	}
}
