package engine

import (
	"fmt"
	"sort"

	"mllibstar/internal/des"
	"mllibstar/internal/par"
	"mllibstar/internal/sparse"
	"mllibstar/internal/trace"
	"mllibstar/internal/vec"
)

// FloatBytes is the wire size of one float64 model coordinate.
const FloatBytes = 8

// aggMsg is a leaf partial in flight to its group aggregator, tagged with
// the sender's task index so the aggregator can fold in canonical order.
type aggMsg struct {
	from int
	enc  sparse.Enc
}

// IsSparse reports the wire encoding of the carried partial, so telemetry
// books the message under the right encoding (see obs.EncodingOf).
func (m aggMsg) IsSparse() bool { return m.enc.IsSparse() }

// recvPartial is a decoded group-member partial awaiting the canonical fold.
type recvPartial struct {
	from int
	vals []float64
}

// TreeAggregateVec runs compute on every executor to produce a partial dense
// vector of length dim, then aggregates the partials into the driver through
// `aggregators` intermediate executors — MLlib's treeAggregate. With
// aggregators == number of executors the hierarchy degenerates to direct
// aggregation at the driver; MLlib's default depth-2 tree corresponds to
// roughly sqrt(k) aggregators.
//
// payloadBytes extra bytes are shipped with each task descriptor; MLlib uses
// this to broadcast the current model to every executor. compute must be a
// pure closure in the offload sense (see Task.Pure): it receives the task
// index (use it — not an executor name — to select the data partition, so
// speculative copies and failure rerouting compute the right partition on
// any host) and returns its partial plus the virtual-time work to charge;
// the engine performs the charge. Partials may come from the context's
// buffer pool (GetVec) — the engine recycles every partial it consumes, and
// ownership of the returned sum transfers to the caller, who may PutVec it
// when the values are dead. The returned vector is the element-wise sum of
// all partials. name must be unique per call (it namespaces the shuffle
// tag); the per-iteration step counter is the natural choice.
//
// When internal/sparse is enabled, partials whose nonzero support is small
// (gradient sums over a mini batch, say) ship as index–value encodings and
// are decoded back to dense before folding — results are bit-identical to
// the dense path, only wire bytes and virtual time change.
func (ctx *Context) TreeAggregateVec(p *des.Proc, name string, dim, aggregators int,
	payloadBytes float64, compute func(task int) (partial []float64, work float64)) []float64 {
	return ctx.TreeAggregateVecDelta(p, name, dim, aggregators, payloadBytes, nil, compute)
}

// TreeAggregateVecDelta is TreeAggregateVec with a reference vector for
// sparse delta encoding: partials are compressed relative to ref (nil = the
// zero vector), which must hold identical bits wherever it is read — the
// SendModel trainers pass the model they broadcast with the task
// descriptors, against which each executor's locally-refined model is a
// sparse overlay. ref must not be mutated while the stage runs.
//
// The aggregator-to-driver result legs are charged at their encoded size
// too (the driver holds ref, so a delta-coded reply is decodable there),
// but the folds themselves always run on dense vectors, in ascending task
// order — a canonical order shared by the sparse and dense paths, so
// summation cannot depend on how encoding sizes shift message timing.
func (ctx *Context) TreeAggregateVecDelta(p *des.Proc, name string, dim, aggregators int,
	payloadBytes float64, ref []float64, compute func(task int) (partial []float64, work float64)) []float64 {

	if ref != nil && len(ref) != dim {
		panic(fmt.Sprintf("engine: ref dim %d != %d", len(ref), dim))
	}
	k := ctx.NumExecutors()
	if aggregators <= 0 || aggregators > k {
		aggregators = k
	}
	tag := "agg:" + name

	// Executor index i belongs to group i%aggregators, whose aggregator is
	// the executor with index i%aggregators.
	groupSize := make([]int, aggregators)
	for i := 0; i < k; i++ {
		groupSize[i%aggregators]++
	}

	// partials[i] is written by task i's pure closure and read by its Run
	// after the engine joins the closure — the join's happens-before edge
	// orders the two.
	partials := make([][]float64, k)
	tasks := make([]Task, k)
	for i := 0; i < k; i++ {
		i := i
		group := i % aggregators
		isAgg := i < aggregators
		aggName := ctx.Cluster.Execs[group]
		tasks[i] = Task{
			Exec:         ctx.Cluster.Execs[i],
			PayloadBytes: payloadBytes,
			// With flat aggregation every task is a pure compute-and-reply
			// (no peer messaging), so speculative copies are safe.
			Speculatable: aggregators >= k,
			Pure: func() float64 {
				partial, work := compute(i)
				if len(partial) != dim {
					panic(fmt.Sprintf("engine: partial dim %d != %d", len(partial), dim))
				}
				partials[i] = partial
				return work
			},
			Run: func(p *des.Proc, ex *Executor) (any, float64) {
				partial := partials[i]
				if !isAgg {
					// Forward the partial to the group's aggregator and
					// return an empty result to the driver. A sparse
					// encoding copies the entries, so the pooled partial is
					// dead at the sender; a dense encoding ships the buffer
					// itself and the aggregator recycles it after the fold.
					enc := sparse.EncodeShared(partial, ref)
					ex.Send(p, aggName, tag, enc.WireBytes(), aggMsg{from: i, enc: enc})
					if enc.IsSparse() {
						ctx.pool.Put(partial)
					}
					return nil, 0
				}
				// Aggregator: collect the group members' partials, decoding
				// each under the same per-message Aggregate charge the dense
				// engine pays, then fold them in ascending sender order —
				// the canonical summation order — overlapping the join on
				// the offload pool. Source buffers are dead after the fold
				// and recycled.
				members := make([]recvPartial, 0, groupSize[group]-1)
				for m := 1; m < groupSize[group]; m++ {
					msg := ex.Recv(p, tag)
					am := msg.Payload.(aggMsg)
					// A sparse-encoded partial's per-message charge models
					// the decode, so it is traced as Encode; the dense path
					// keeps the Aggregate kind (the charge is the fold).
					kind := trace.Aggregate
					if am.enc.IsSparse() {
						kind = trace.Encode
					}
					var src []float64
					ex.ChargeAsyncKind(p, float64(dim), kind, name, func() {
						src = am.enc.Dense(ref)
					})
					members = append(members, recvPartial{from: am.from, vals: src})
				}
				sort.Slice(members, func(a, b int) bool { return members[a].from < members[b].from })
				h := par.Do(func() {
					for _, m := range members {
						vec.AddScaled(partial, m.vals, 1)
					}
				})
				h.Join()
				for _, m := range members {
					ctx.pool.Put(m.vals)
				}
				// The reply to the driver is charged at its encoded size;
				// the payload stays the dense sum (the driver folds it
				// directly, as ever).
				return partial, sparse.WireBytesFor(partial, ref)
			},
		}
	}

	results := ctx.RunStage(p, name, tasks)
	driver := ctx.Cluster.Net.Node(ctx.Cluster.Driver)
	var total []float64
	for _, r := range results {
		if r == nil {
			continue
		}
		part := r.([]float64)
		if total == nil {
			// The first partial becomes the running total — ownership moves
			// to the caller with the return value.
			total = part
			continue
		}
		driver.ComputeAsyncKind(p, float64(dim), trace.Aggregate, name, func() {
			vec.AddScaled(total, part, 1)
		})
		ctx.pool.Put(part)
	}
	return total
}
