package engine

import (
	"fmt"

	"mllibstar/internal/des"
	"mllibstar/internal/trace"
	"mllibstar/internal/vec"
)

// FloatBytes is the wire size of one float64 model coordinate.
const FloatBytes = 8

// TreeAggregateVec runs compute on every executor to produce a partial dense
// vector of length dim, then aggregates the partials into the driver through
// `aggregators` intermediate executors — MLlib's treeAggregate. With
// aggregators == number of executors the hierarchy degenerates to direct
// aggregation at the driver; MLlib's default depth-2 tree corresponds to
// roughly sqrt(k) aggregators.
//
// payloadBytes extra bytes are shipped with each task descriptor; MLlib uses
// this to broadcast the current model to every executor. compute must be a
// pure closure in the offload sense (see Task.Pure): it receives the task
// index (use it — not an executor name — to select the data partition, so
// speculative copies and failure rerouting compute the right partition on
// any host) and returns its partial plus the virtual-time work to charge;
// the engine performs the charge. Partials may come from the context's
// buffer pool (GetVec) — the engine recycles every partial it consumes, and
// ownership of the returned sum transfers to the caller, who may PutVec it
// when the values are dead. The returned vector is the element-wise sum of
// all partials. name must be unique per call (it namespaces the shuffle
// tag); the per-iteration step counter is the natural choice.
func (ctx *Context) TreeAggregateVec(p *des.Proc, name string, dim, aggregators int,
	payloadBytes float64, compute func(task int) (partial []float64, work float64)) []float64 {

	k := ctx.NumExecutors()
	if aggregators <= 0 || aggregators > k {
		aggregators = k
	}
	tag := "agg:" + name
	vecBytes := float64(dim) * FloatBytes

	// Executor index i belongs to group i%aggregators, whose aggregator is
	// the executor with index i%aggregators.
	groupSize := make([]int, aggregators)
	for i := 0; i < k; i++ {
		groupSize[i%aggregators]++
	}

	// partials[i] is written by task i's pure closure and read by its Run
	// after the engine joins the closure — the join's happens-before edge
	// orders the two.
	partials := make([][]float64, k)
	tasks := make([]Task, k)
	for i := 0; i < k; i++ {
		i := i
		group := i % aggregators
		isAgg := i < aggregators
		aggName := ctx.Cluster.Execs[group]
		tasks[i] = Task{
			Exec:         ctx.Cluster.Execs[i],
			PayloadBytes: payloadBytes,
			// With flat aggregation every task is a pure compute-and-reply
			// (no peer messaging), so speculative copies are safe.
			Speculatable: aggregators >= k,
			Pure: func() float64 {
				partial, work := compute(i)
				if len(partial) != dim {
					panic(fmt.Sprintf("engine: partial dim %d != %d", len(partial), dim))
				}
				partials[i] = partial
				return work
			},
			Run: func(p *des.Proc, ex *Executor) (any, float64) {
				partial := partials[i]
				if !isAgg {
					// Forward the partial to the group's aggregator and
					// return an empty result to the driver.
					ex.Send(p, aggName, tag, vecBytes, partial)
					return nil, 0
				}
				// Aggregator: fold in the group members' partials. The fold
				// arithmetic overlaps its own charge on the offload pool;
				// the source buffer is dead after the fold and recycled.
				for m := 1; m < groupSize[group]; m++ {
					msg := ex.Recv(p, tag)
					src := msg.Payload.([]float64)
					ex.ChargeAsyncKind(p, float64(dim), trace.Aggregate, name, func() {
						vec.AddScaled(partial, src, 1)
					})
					ctx.pool.Put(src)
				}
				return partial, vecBytes
			},
		}
	}

	results := ctx.RunStage(p, name, tasks)
	driver := ctx.Cluster.Net.Node(ctx.Cluster.Driver)
	var total []float64
	for _, r := range results {
		if r == nil {
			continue
		}
		part := r.([]float64)
		if total == nil {
			// The first partial becomes the running total — ownership moves
			// to the caller with the return value.
			total = part
			continue
		}
		driver.ComputeAsyncKind(p, float64(dim), trace.Aggregate, name, func() {
			vec.AddScaled(total, part, 1)
		})
		ctx.pool.Put(part)
	}
	return total
}
