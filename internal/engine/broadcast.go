package engine

import (
	"mllibstar/internal/des"
	"mllibstar/internal/vec"
)

// BroadcastVec models distributing a dim-length dense vector from the
// driver to every executor, in one of Spark's two broadcast styles. It is a
// cost-model primitive: trainers share the actual values through closures
// (the simulation is logically shared-memory); what differs is the traffic
// and latency charged.
//
//   - naive (torrent=false): the driver ships the full vector with each
//     task descriptor — k·m bytes serialized through the driver's outbound
//     NIC. This is how MLlib's per-iteration model closure behaves and is
//     half of bottleneck B2.
//   - torrent (torrent=true): Spark's TorrentBroadcast. The driver ships
//     only the j-th chunk (m/k bytes) to executor j — m bytes total leaving
//     the driver — and the executors reassemble the full vector by
//     exchanging chunks among themselves (an AllGather shuffle round).
//
// The call runs one stage and returns when every executor holds the vector.
func (ctx *Context) BroadcastVec(p *des.Proc, name string, dim int, torrent bool) {
	k := ctx.NumExecutors()
	vecBytes := float64(dim) * FloatBytes
	tasks := make([]Task, k)
	for i := 0; i < k; i++ {
		i := i
		payload := vecBytes // naive: full vector per executor
		if torrent && k > 1 {
			lo, hi := vec.PartitionRange(dim, k, i)
			payload = float64(hi-lo) * FloatBytes
		}
		tasks[i] = Task{
			Exec:         ctx.Cluster.Execs[i],
			PayloadBytes: payload,
			Run: func(p *des.Proc, ex *Executor) (any, float64) {
				if torrent && k > 1 {
					// AllGather: send my chunk to every peer, collect
					// theirs.
					lo, hi := vec.PartitionRange(dim, k, i)
					outgoing := make([]Block, 0, k-1)
					for j := 0; j < k; j++ {
						if j == i {
							continue
						}
						outgoing = append(outgoing, Block{
							To: j, Bytes: float64(hi-lo) * FloatBytes,
						})
					}
					Exchange(p, ex, ctx.Cluster.Execs, i, name, outgoing)
				}
				return nil, 0
			},
		}
	}
	ctx.RunStage(p, name, tasks)
}
