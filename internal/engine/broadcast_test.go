package engine

import (
	"testing"

	"mllibstar/internal/des"
)

func TestBroadcastNaiveCostsKM(t *testing.T) {
	const k, dim = 4, 1000
	sim, cl, ctx := testCluster(k, Config{TaskBytes: 0, ResultBytes: 0})
	runOnDriver(sim, func(p *des.Proc) {
		ctx.BroadcastVec(p, "b", dim, false)
	})
	want := float64(k * dim * FloatBytes)
	if got := cl.Net.Node("driver").BytesSent(); got != want {
		t.Errorf("driver sent %g, want %g", got, want)
	}
}

func TestBroadcastTorrentCostsM(t *testing.T) {
	const k, dim = 4, 1000
	sim, cl, ctx := testCluster(k, Config{TaskBytes: 0, ResultBytes: 0})
	runOnDriver(sim, func(p *des.Proc) {
		ctx.BroadcastVec(p, "b", dim, true)
	})
	// Driver ships only one chunk per executor: m bytes total.
	want := float64(dim * FloatBytes)
	if got := cl.Net.Node("driver").BytesSent(); got != want {
		t.Errorf("driver sent %g, want %g", got, want)
	}
	// Executors exchange the remaining chunks: each sends its chunk to k-1
	// peers, so total peer traffic is k*(k-1)*m/k = (k-1)*m.
	peer := cl.Net.TotalBytes() - want
	wantPeer := float64((k - 1) * dim * FloatBytes)
	if peer != wantPeer {
		t.Errorf("peer traffic %g, want %g", peer, wantPeer)
	}
}

func TestBroadcastTorrentFasterOnLargeModels(t *testing.T) {
	const k, dim = 8, 100000
	timeFor := func(torrent bool) float64 {
		sim, _, ctx := testCluster(k, Config{TaskBytes: 0, ResultBytes: 0})
		return runOnDriver(sim, func(p *des.Proc) {
			ctx.BroadcastVec(p, "b", dim, torrent)
		})
	}
	naive, torrent := timeFor(false), timeFor(true)
	if torrent >= naive {
		t.Errorf("torrent %g not faster than naive %g", torrent, naive)
	}
}

func TestBroadcastSingleExecutor(t *testing.T) {
	sim, _, ctx := testCluster(1, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		ctx.BroadcastVec(p, "b", 100, true) // must not deadlock with k=1
	})
}
