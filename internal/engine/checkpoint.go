package engine

import (
	"fmt"

	"mllibstar/internal/des"
)

// Repartition redistributes an RDD's elements into numParts partitions of
// near-equal size via a shuffle round (Spark's repartition). Elements keep
// no key affinity; partition i of the result holds every input element
// whose global round-robin index maps to i. The result is materialized (the
// shuffle is a stage boundary, as in Spark).
func Repartition[T any](p *des.Proc, r *RDD[T], name string, bytesPerElem float64, numParts int) *RDD[T] {
	if numParts <= 0 {
		panic(fmt.Sprintf("engine: Repartition(%d)", numParts))
	}
	ctx := r.ctx
	k := ctx.NumExecutors()
	// Stage 1: collect elements per executor, bucket round-robin over the
	// target partitions, exchange so executor e holds the target partitions
	// assigned to it (partition q lives on executor q%k).
	buckets := make([][]T, numParts)
	tasks := make([]Task, k)
	for e := 0; e < k; e++ {
		e := e
		tasks[e] = Task{
			Exec: ctx.Cluster.Execs[e],
			Run: func(p *des.Proc, ex *Executor) (any, float64) {
				// Local elements of every partition pinned here, bucketed
				// round-robin by a deterministic running index.
				local := make([][]T, numParts)
				n := 0
				for pi := 0; pi < r.parts; pi++ {
					if pi%k != e {
						continue
					}
					for j, v := range r.materialize(p, ex, pi) {
						q := (pi + j) % numParts
						local[q] = append(local[q], v)
						n++
					}
				}
				if n > 0 {
					ex.Charge(p, float64(n))
				}
				// Ship each target partition's share to its owner.
				type shipment struct {
					parts [][]T
				}
				out := make([]Block, 0, k-1)
				for d := 0; d < k; d++ {
					if d == e {
						continue
					}
					ship := shipment{parts: make([][]T, 0)}
					bytes := 0.0
					for q := d; q < numParts; q += k {
						ship.parts = append(ship.parts, local[q])
						bytes += bytesPerElem * float64(len(local[q]))
					}
					out = append(out, Block{To: d, Bytes: bytes, Payload: ship})
				}
				// Own shares land directly.
				owned := make([][]T, 0)
				for q := e; q < numParts; q += k {
					owned = append(owned, local[q])
				}
				in := Exchange(p, ex, ctx.Cluster.Execs, e, name, out)
				// Merge: owned and received shipments list this executor's
				// target partitions in ascending q order.
				for _, b := range in {
					ship := b.Payload.(shipment)
					for i := range ship.parts {
						owned[i] = append(owned[i], ship.parts[i]...)
					}
				}
				for i, q := 0, e; q < numParts; i, q = i+1, q+k {
					buckets[q] = owned[i]
				}
				return nil, 0
			},
		}
	}
	ctx.RunStage(p, name, tasks)
	return Parallelize(ctx, name, buckets)
}

// Union concatenates two RDDs: the result has the partitions of a followed
// by the partitions of b, recomputed through their respective lineages.
func Union[T any](a, b *RDD[T], name string) *RDD[T] {
	if a.ctx != b.ctx {
		panic("engine: Union across contexts")
	}
	a.ctx.nextRDD++
	return &RDD[T]{
		ctx:   a.ctx,
		id:    a.ctx.nextRDD,
		name:  name,
		parts: a.parts + b.parts,
		compute: func(p *des.Proc, ex *Executor, part int) []T {
			if part < a.parts {
				return a.materialize(p, ex, part)
			}
			return b.materialize(p, ex, part-a.parts)
		},
	}
}

// CheckpointTo materializes every partition of the RDD, writes it to the
// given sink (modelling Spark's reliable checkpointing to HDFS), and
// returns a new RDD whose lineage is truncated at the checkpoint: computing
// a partition afterwards costs a sink read, never a recomputation.
//
// The sink abstracts the storage write/read costs so the engine does not
// depend on a concrete filesystem; package bench wires it to internal/dfs.
type CheckpointSink interface {
	// Write charges the cost of persisting bytes from the given node.
	Write(p *des.Proc, node string, bytes float64)
	// Read charges the cost of reading bytes back to the given node.
	Read(p *des.Proc, node string, bytes float64)
}

// CheckpointTo writes the RDD through the sink and returns the truncated
// RDD. bytesPerElem sizes elements for the storage cost model.
func CheckpointTo[T any](p *des.Proc, r *RDD[T], name string, bytesPerElem float64, sink CheckpointSink) *RDD[T] {
	ctx := r.ctx
	saved := make([][]T, r.parts)
	tasks := make([]Task, r.parts)
	for i := 0; i < r.parts; i++ {
		i := i
		tasks[i] = Task{
			Exec: r.ExecutorFor(i),
			Run: func(p *des.Proc, ex *Executor) (any, float64) {
				data := r.materialize(p, ex, i)
				sink.Write(p, ex.Name(), bytesPerElem*float64(len(data)))
				saved[i] = data
				return nil, 0
			},
		}
	}
	ctx.RunStage(p, name, tasks)

	ctx.nextRDD++
	return &RDD[T]{
		ctx:   ctx,
		id:    ctx.nextRDD,
		name:  name,
		parts: r.parts,
		compute: func(p *des.Proc, ex *Executor, part int) []T {
			data := saved[part]
			sink.Read(p, ex.Name(), bytesPerElem*float64(len(data)))
			return data
		},
	}
}
