package engine

import (
	"sort"
	"testing"

	"mllibstar/internal/des"
)

func TestRepartitionPreservesElements(t *testing.T) {
	sim, _, ctx := testCluster(3, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		rdd := Parallelize(ctx, "nums", makeParts(3, 5)) // 0..14
		re := Repartition(p, rdd, "re", 8, 5)
		if re.NumPartitions() != 5 {
			t.Fatalf("parts = %d", re.NumPartitions())
		}
		var all []int
		sizes := map[int]bool{}
		for _, part := range Collect(p, re, 8) {
			all = append(all, part...)
			sizes[len(part)] = true
		}
		sort.Ints(all)
		if len(all) != 15 {
			t.Fatalf("elements = %d", len(all))
		}
		for i, v := range all {
			if v != i {
				t.Fatalf("element %d = %d", i, v)
			}
		}
		if len(sizes) > 2 {
			t.Errorf("partition sizes should be near-equal, got %v", sizes)
		}
	})
}

func TestRepartitionDownToOne(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		rdd := Parallelize(ctx, "nums", makeParts(2, 3))
		re := Repartition(p, rdd, "re", 8, 1)
		got := Collect(p, re, 8)
		if len(got) != 1 || len(got[0]) != 6 {
			t.Errorf("collect = %v", got)
		}
	})
}

func TestUnion(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		a := Parallelize(ctx, "a", [][]int{{1, 2}, {3}})
		b := Parallelize(ctx, "b", [][]int{{4}})
		u := Union(a, b, "u")
		if n := Count(p, u); n != 4 {
			t.Errorf("count = %d", n)
		}
		sum := Reduce(p, u, 8, 1, func(x, y int) int { return x + y })
		if sum != 10 {
			t.Errorf("sum = %d", sum)
		}
	})
}

// countingSink records checkpoint IO for assertions.
type countingSink struct {
	writes, reads int
	bytes         float64
}

func (s *countingSink) Write(p *des.Proc, node string, bytes float64) {
	s.writes++
	s.bytes += bytes
	p.Wait(bytes / 1e6)
}

func (s *countingSink) Read(p *des.Proc, node string, bytes float64) {
	s.reads++
	p.Wait(bytes / 1e6)
}

func TestCheckpointTruncatesLineage(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	sink := &countingSink{}
	computes := 0
	runOnDriver(sim, func(p *des.Proc) {
		base := Parallelize(ctx, "nums", makeParts(2, 4))
		mapped := Map(base, "m", 0, func(v int) int { computes++; return v + 1 })
		cp := CheckpointTo(p, mapped, "cp", 8, sink)
		if sink.writes != 2 {
			t.Errorf("writes = %d, want one per partition", sink.writes)
		}
		afterWrite := computes
		// Actions on the checkpointed RDD read from the sink, never
		// recompute the map.
		if n := Count(p, cp); n != 8 {
			t.Errorf("count = %d", n)
		}
		if computes != afterWrite {
			t.Errorf("lineage not truncated: %d extra computes", computes-afterWrite)
		}
		if sink.reads == 0 {
			t.Error("no sink reads charged")
		}
	})
}

func TestCheckpointSurvivesExecutorFailure(t *testing.T) {
	// Unlike a cached RDD, a checkpointed RDD does not recompute after an
	// executor failure — the data comes back from stable storage.
	sim, cl, ctx := testCluster(2, DefaultConfig())
	sink := &countingSink{}
	computes := 0
	runOnDriver(sim, func(p *des.Proc) {
		base := Parallelize(ctx, "nums", makeParts(2, 4))
		mapped := Map(base, "m", 0, func(v int) int { computes++; return v + 1 })
		cp := CheckpointTo(p, mapped, "cp", 8, sink)
		before := computes
		cl.FailExecutor("exec0")
		if n := Count(p, cp); n != 8 {
			t.Errorf("count = %d", n)
		}
		if computes != before {
			t.Error("checkpointed RDD recomputed after failure")
		}
	})
}
