// Package engine implements a Spark-like BSP execution engine on top of the
// simulated cluster in package simnet: a driver that schedules stages of
// tasks onto long-running executors, RDDs with lineage, caching and
// recomputation, and the aggregation primitives MLlib's gradient-descent
// implementation uses (task dispatch with payload broadcast, hierarchical
// treeAggregate, and in-task peer-to-peer shuffles for AllReduce).
//
// Task functions execute real Go code — real gradients over real data — but
// charge their computation to the simulated clock through Executor.Charge,
// and all communication flows through simnet, so an experiment yields both a
// genuine convergence curve and a faithful distributed-execution timeline.
package engine

import (
	"fmt"

	"mllibstar/internal/des"
	"mllibstar/internal/simnet"
	"mllibstar/internal/trace"
)

// Config tunes the engine's overheads, mirroring the fixed costs of Spark's
// scheduler and serialization stack.
type Config struct {
	TaskBytes     float64 // serialized task descriptor size (driver → executor)
	ResultBytes   float64 // fixed result envelope size (executor → driver)
	SchedulerWork float64 // driver work units to schedule one task
	// SpeculationQuantile enables speculative execution: once this fraction
	// of a stage's tasks has completed, a copy of each still-running
	// Speculatable task is launched on another executor (0 = off; Spark's
	// spark.speculation.quantile defaults to 0.75).
	SpeculationQuantile float64
	StragglerFactor     float64 // ≥0; executor compute work is inflated by up to this fraction, sampled per task
	// StragglerProb switches the straggler model from uniform to heavy
	// tail: with probability StragglerProb a task is (1+StragglerFactor)x
	// slower, otherwise it runs at full speed — the rare severe stragglers
	// (GC pauses, co-tenant bursts) that speculative execution targets.
	StragglerProb float64
	StragglerSeed int64 // seed for straggler sampling
}

// DefaultConfig returns modest overheads suitable for unit tests.
func DefaultConfig() Config {
	return Config{TaskBytes: 1024, ResultBytes: 256}
}

// Cluster is a driver plus a set of executors on a simulated network.
type Cluster struct {
	Sim    *des.Sim
	Net    *simnet.Network
	Driver string
	Execs  []string
	execs  map[string]*Executor
}

// NewCluster builds a cluster from node specs. The first spec is the driver;
// the rest are executors. Executor server processes are spawned immediately
// and run until the simulation shuts down.
func NewCluster(sim *des.Sim, netCfg simnet.Config, specs []simnet.NodeSpec, rec *trace.Recorder) *Cluster {
	if len(specs) < 2 {
		panic("engine: need a driver and at least one executor")
	}
	net := simnet.New(sim, netCfg, specs, rec)
	c := &Cluster{
		Sim:    sim,
		Net:    net,
		Driver: specs[0].Name,
		execs:  map[string]*Executor{},
	}
	for _, sp := range specs[1:] {
		ex := &Executor{
			cluster: c,
			name:    sp.Name,
			node:    net.Node(sp.Name),
			blocks:  map[blockID]any{},
		}
		c.Execs = append(c.Execs, sp.Name)
		c.execs[sp.Name] = ex
		sim.Spawn("exec:"+sp.Name, ex.serve)
	}
	return c
}

// Executor returns the named executor, panicking on unknown names.
func (c *Cluster) Executor(name string) *Executor {
	ex, ok := c.execs[name]
	if !ok {
		panic(fmt.Sprintf("engine: unknown executor %q", name))
	}
	return ex
}

// blockID identifies a cached RDD partition.
type blockID struct {
	rdd  int
	part int
}

// Executor is a long-running worker: it receives task messages, runs them,
// and sends results back to the driver. It also hosts the block store for
// cached RDD partitions.
type Executor struct {
	cluster  *Cluster
	name     string
	node     *simnet.Node
	blocks   map[blockID]any
	tasksRun int
	slowdown float64 // per-task straggler multiplier set by the scheduler (0 = none)
	failed   bool    // out of service (see Cluster.FailExecutor)

	// Identity of the currently executing task attempt, for accumulators.
	curStage   int
	curTask    int
	curAttempt int
}

// Name returns the executor's node name.
func (ex *Executor) Name() string { return ex.name }

// Node returns the underlying simulated node.
func (ex *Executor) Node() *simnet.Node { return ex.node }

// PeerSpec returns the recorded spec of any cluster node by name, so
// collectives can schedule chunk routing from the machine classes
// (internal/allreduce.RouteOrder) instead of naive round-robin.
func (ex *Executor) PeerSpec(name string) simnet.NodeSpec {
	return ex.cluster.Net.Node(name).Spec()
}

// TasksRun returns how many tasks this executor has completed.
func (ex *Executor) TasksRun() int { return ex.tasksRun }

// Charge blocks the executor for work units of computation on the simulated
// clock (recorded as a Compute span). Task functions call this at the site
// of their real computation.
func (ex *Executor) Charge(p *des.Proc, work float64) {
	ex.node.Compute(p, work*ex.factor())
}

// ChargeKind is Charge with an explicit trace kind (Aggregate, Update, ...).
func (ex *Executor) ChargeKind(p *des.Proc, work float64, kind trace.Kind, note string) {
	ex.node.ComputeKind(p, work*ex.factor(), kind, note)
}

// ChargeAsync charges work on the simulated clock while fn — the pure
// numeric computation the charge models — runs on the offload pool, joining
// before return (see simnet.Node.ComputeAsyncKind for the purity contract).
// work must be computable without running fn; task bodies whose work is
// value-dependent should use Task.Pure instead.
func (ex *Executor) ChargeAsync(p *des.Proc, work float64, fn func()) {
	ex.node.ComputeAsyncKind(p, work*ex.factor(), trace.Compute, "", fn)
}

// ChargeAsyncKind is ChargeAsync with an explicit trace kind and note.
func (ex *Executor) ChargeAsyncKind(p *des.Proc, work float64, kind trace.Kind, note string, fn func()) {
	ex.node.ComputeAsyncKind(p, work*ex.factor(), kind, note, fn)
}

// factor returns the straggler multiplier in effect for the current task.
func (ex *Executor) factor() float64 {
	if ex.slowdown > 1 {
		return ex.slowdown
	}
	return 1
}

// Send transmits bytes to another cluster node from within a task — the
// peer-to-peer primitive AllReduce's shuffle rounds are built on.
func (ex *Executor) Send(p *des.Proc, to, tag string, bytes float64, payload any) {
	ex.node.Send(p, to, tag, bytes, payload)
}

// Recv receives a message sent to this executor with the given tag.
func (ex *Executor) Recv(p *des.Proc, tag string) *simnet.Message {
	return ex.node.Recv(p, tag)
}

// DropCache removes all cached partitions of the given RDD from this
// executor, forcing lineage recomputation on next access (fault injection).
func (ex *Executor) DropCache(rddID int) {
	victims := make([]blockID, 0)
	for id := range ex.blocks { //mlstar:nolint determinism -- order-insensitive: collecting a delete set
		if id.rdd == rddID {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		delete(ex.blocks, id)
	}
}

// taskMsg is the driver→executor task descriptor.
type taskMsg struct {
	stage    int
	index    int
	attempt  int // 0 = original, 1 = speculative copy
	replyTag string
	envelope float64 // fixed result envelope size configured by the Context
	run      func(p *des.Proc, ex *Executor) (result any, resultBytes float64)
}

// taskResult is the executor→driver reply.
type taskResult struct {
	index   int
	attempt int
	result  any
}

// serve is the executor's server loop: take a task, run it, reply.
func (ex *Executor) serve(p *des.Proc) {
	for {
		msg := ex.node.Recv(p, "task")
		tm := msg.Payload.(*taskMsg)
		ex.curStage, ex.curTask, ex.curAttempt = tm.stage, tm.index, tm.attempt
		res, rb := tm.run(p, ex)
		ex.tasksRun++
		ex.node.Send(p, ex.cluster.Driver, tm.replyTag, tm.envelope+rb,
			&taskResult{index: tm.index, attempt: tm.attempt, result: res})
	}
}
