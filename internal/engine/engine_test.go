package engine

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"mllibstar/internal/des"
	"mllibstar/internal/simnet"
	"mllibstar/internal/trace"
)

// testCluster builds a driver + k executors cluster with simple rates:
// compute 1000 work/s, network 1e6 B/s, no latency.
func testCluster(k int, cfg Config) (*des.Sim, *Cluster, *Context) {
	sim := des.New()
	specs := []simnet.NodeSpec{{Name: "driver", ComputeRate: 1000, SendBW: 1e6, RecvBW: 1e6}}
	specs = append(specs, simnet.Uniform("exec", k, 1000, 1e6)...)
	cl := NewCluster(sim, simnet.Config{}, specs, trace.New())
	return sim, cl, NewContext(cl, cfg)
}

// runOnDriver runs fn as the driver process and returns the finish time.
func runOnDriver(sim *des.Sim, fn func(p *des.Proc)) float64 {
	var done float64
	sim.Spawn("driver", func(p *des.Proc) {
		fn(p)
		done = p.Now()
	})
	sim.Run()
	return done
}

func TestRunStageResultsInOrder(t *testing.T) {
	sim, _, ctx := testCluster(4, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		tasks := make([]Task, 4)
		for i := range tasks {
			i := i
			tasks[i] = Task{
				Exec: ctx.RoundRobin(i),
				Run: func(p *des.Proc, ex *Executor) (any, float64) {
					// Executors take different times; results must still
					// come back indexed correctly.
					ex.Charge(p, float64((4-i)*100))
					return i * 10, 8
				},
			}
		}
		res := ctx.RunStage(p, "s", tasks)
		want := []any{0, 10, 20, 30}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("results = %v, want %v", res, want)
		}
	})
}

func TestRunStageIsBarrier(t *testing.T) {
	// The driver cannot proceed past RunStage before the slowest task ends.
	sim, _, ctx := testCluster(3, Config{TaskBytes: 1, ResultBytes: 1})
	end := runOnDriver(sim, func(p *des.Proc) {
		tasks := make([]Task, 3)
		for i := range tasks {
			work := float64(100 * (i + 1)) // slowest: 300 work = 0.3s
			tasks[i] = Task{
				Exec: ctx.RoundRobin(i),
				Run: func(p *des.Proc, ex *Executor) (any, float64) {
					ex.Charge(p, work)
					return nil, 0
				},
			}
		}
		ctx.RunStage(p, "s", tasks)
	})
	if end < 0.3 {
		t.Errorf("stage finished at %g, before slowest task (0.3)", end)
	}
}

func TestRunStageEmptyReturnsNil(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		if res := ctx.RunStage(p, "s", nil); res != nil {
			t.Errorf("res = %v", res)
		}
	})
}

func TestSchedulerWorkSerializesDispatch(t *testing.T) {
	// With large per-task scheduler work, dispatch time scales with task
	// count — the driver-side scheduling cost of Spark.
	timeFor := func(n int) float64 {
		sim, _, ctx := testCluster(n, Config{TaskBytes: 1, ResultBytes: 1, SchedulerWork: 100})
		return runOnDriver(sim, func(p *des.Proc) {
			tasks := make([]Task, n)
			for i := range tasks {
				tasks[i] = Task{Exec: ctx.RoundRobin(i), Run: func(p *des.Proc, ex *Executor) (any, float64) { return nil, 0 }}
			}
			ctx.RunStage(p, "s", tasks)
		})
	}
	t2, t8 := timeFor(2), timeFor(8)
	if t8 < 3.5*t2 {
		t.Errorf("8-task dispatch %g not ~4x 2-task dispatch %g", t8, t2)
	}
}

func TestStragglerDeterministicInflation(t *testing.T) {
	run := func() float64 {
		sim, _, ctx := testCluster(4, Config{TaskBytes: 1, ResultBytes: 1, StragglerFactor: 2, StragglerSeed: 7})
		return runOnDriver(sim, func(p *des.Proc) {
			tasks := make([]Task, 4)
			for i := range tasks {
				tasks[i] = Task{Exec: ctx.RoundRobin(i), Run: func(p *des.Proc, ex *Executor) (any, float64) {
					ex.Charge(p, 100)
					return nil, 0
				}}
			}
			ctx.RunStage(p, "s", tasks)
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("straggler sampling not deterministic: %g vs %g", a, b)
	}
	// Some inflation must have occurred vs the 0.1s baseline.
	if a <= 0.1 {
		t.Errorf("no straggler inflation: %g", a)
	}
}

func TestWavesSerializeOnExecutor(t *testing.T) {
	// Two tasks pinned to the same executor must run back to back.
	sim, _, ctx := testCluster(1, Config{TaskBytes: 1, ResultBytes: 1})
	end := runOnDriver(sim, func(p *des.Proc) {
		tasks := []Task{
			{Exec: "exec0", Run: func(p *des.Proc, ex *Executor) (any, float64) { ex.Charge(p, 100); return nil, 0 }},
			{Exec: "exec0", Run: func(p *des.Proc, ex *Executor) (any, float64) { ex.Charge(p, 100); return nil, 0 }},
		}
		ctx.RunStage(p, "s", tasks)
	})
	if end < 0.2 {
		t.Errorf("two waves finished at %g, want >= 0.2", end)
	}
}

func makeParts(k, perPart int) [][]int {
	parts := make([][]int, k)
	v := 0
	for i := range parts {
		for j := 0; j < perPart; j++ {
			parts[i] = append(parts[i], v)
			v++
		}
	}
	return parts
}

func TestRDDCollectRoundTrip(t *testing.T) {
	sim, _, ctx := testCluster(3, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		rdd := Parallelize(ctx, "nums", makeParts(3, 4))
		got := Collect(p, rdd, 8)
		if !reflect.DeepEqual(got, makeParts(3, 4)) {
			t.Errorf("collect = %v", got)
		}
	})
}

func TestRDDMapFilterCount(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		rdd := Parallelize(ctx, "nums", makeParts(2, 5)) // 0..9
		doubled := Map(rdd, "x2", 1, func(v int) int { return v * 2 })
		big := Filter(doubled, "big", 1, func(v int) bool { return v >= 10 })
		if n := Count(p, big); n != 5 { // 10,12,14,16,18
			t.Errorf("count = %d, want 5", n)
		}
	})
}

func TestRDDReduce(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		rdd := Parallelize(ctx, "nums", makeParts(2, 5))
		sum := Reduce(p, rdd, 8, 1, func(a, b int) int { return a + b })
		if sum != 45 {
			t.Errorf("sum = %d, want 45", sum)
		}
	})
}

func TestRDDReduceSkipsEmptyPartitions(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		rdd := Parallelize(ctx, "nums", [][]int{{1, 2}, {}})
		if sum := Reduce(p, rdd, 8, 1, func(a, b int) int { return a + b }); sum != 3 {
			t.Errorf("sum = %d", sum)
		}
	})
}

func TestRDDSampleDeterministicFraction(t *testing.T) {
	sim, _, ctx := testCluster(2, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		rdd := Parallelize(ctx, "nums", makeParts(2, 500))
		s1 := Sample(rdd, "s", 0.2, 42)
		n1 := Count(p, s1)
		if n1 < 100 || n1 > 320 {
			t.Errorf("sample size = %d, want ~200", n1)
		}
		s2 := Sample(rdd, "s", 0.2, 42)
		if n2 := Count(p, s2); n2 != n1 {
			t.Errorf("same seed sample sizes differ: %d vs %d", n1, n2)
		}
	})
}

func TestRDDCachingAvoidsRecompute(t *testing.T) {
	sim, _, ctx := testCluster(2, Config{TaskBytes: 1, ResultBytes: 1})
	computeCalls := 0
	runOnDriver(sim, func(p *des.Proc) {
		base := Parallelize(ctx, "nums", makeParts(2, 3))
		mapped := Map(base, "m", 0, func(v int) int { computeCalls++; return v + 1 }).Cache()
		Count(p, mapped)
		callsAfterFirst := computeCalls
		Count(p, mapped) // should hit the block store
		if computeCalls != callsAfterFirst {
			t.Errorf("cached RDD recomputed: %d -> %d calls", callsAfterFirst, computeCalls)
		}
		// Fault injection: drop one executor's blocks, forcing lineage replay
		// for its partitions only.
		ctx.Cluster.Executor("exec0").DropCache(mapped.ID())
		Count(p, mapped)
		if computeCalls <= callsAfterFirst || computeCalls >= 2*callsAfterFirst {
			t.Errorf("lineage recompute after cache drop: calls %d (first pass %d)", computeCalls, callsAfterFirst)
		}
	})
}

func TestTreeAggregateVecSum(t *testing.T) {
	for _, aggs := range []int{0, 1, 2, 4} {
		sim, _, ctx := testCluster(4, DefaultConfig())
		runOnDriver(sim, func(p *des.Proc) {
			got := ctx.TreeAggregateVec(p, fmt.Sprintf("agg%d", aggs), 3, aggs, 0,
				func(task int) ([]float64, float64) {
					return []float64{1, 2, 3}, 1
				})
			want := []float64{4, 8, 12}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("aggs=%d: got %v, want %v", aggs, got, want)
			}
		})
	}
}

func TestTreeAggregateReducesDriverTraffic(t *testing.T) {
	// With 2 intermediate aggregators over 8 executors, the driver receives
	// only 2 model-sized results instead of 8.
	driverRecv := func(aggs int) float64 {
		sim, cl, ctx := testCluster(8, Config{TaskBytes: 1, ResultBytes: 1})
		runOnDriver(sim, func(p *des.Proc) {
			ctx.TreeAggregateVec(p, "a", 1000, aggs, 0, func(task int) ([]float64, float64) {
				return make([]float64, 1000), 1
			})
		})
		return cl.Net.Node("driver").BytesRecv()
	}
	flat := driverRecv(8)
	tree := driverRecv(2)
	if tree >= flat/2 {
		t.Errorf("tree driver traffic %g not well below flat %g", tree, flat)
	}
}

func TestTreeAggregateChargesPayloadBroadcast(t *testing.T) {
	// payloadBytes models broadcasting the model with each task: driver out
	// bytes must grow by k*payload.
	sent := func(payload float64) float64 {
		sim, cl, ctx := testCluster(4, Config{TaskBytes: 1, ResultBytes: 1})
		runOnDriver(sim, func(p *des.Proc) {
			ctx.TreeAggregateVec(p, "a", 10, 4, payload, func(task int) ([]float64, float64) {
				return make([]float64, 10), 1
			})
		})
		return cl.Net.Node("driver").BytesSent()
	}
	base, withPayload := sent(0), sent(8000)
	if got := withPayload - base; math.Abs(got-4*8000) > 1 {
		t.Errorf("payload delta = %g, want 32000", got)
	}
}

func TestPeerToPeerInsideTask(t *testing.T) {
	// Executors exchange messages within a stage (the AllReduce pattern).
	sim, _, ctx := testCluster(2, Config{TaskBytes: 1, ResultBytes: 1})
	runOnDriver(sim, func(p *des.Proc) {
		tasks := []Task{
			{Exec: "exec0", Run: func(p *des.Proc, ex *Executor) (any, float64) {
				ex.Send(p, "exec1", "ping", 100, 41)
				m := ex.Recv(p, "pong")
				return m.Payload.(int), 8
			}},
			{Exec: "exec1", Run: func(p *des.Proc, ex *Executor) (any, float64) {
				m := ex.Recv(p, "ping")
				ex.Send(p, "exec0", "pong", 100, m.Payload.(int)+1)
				return nil, 0
			}},
		}
		res := ctx.RunStage(p, "p2p", tasks)
		if res[0] != 42 {
			t.Errorf("res = %v", res)
		}
	})
}

func TestStageMarksRecorded(t *testing.T) {
	sim, cl, ctx := testCluster(2, DefaultConfig())
	runOnDriver(sim, func(p *des.Proc) {
		tasks := []Task{{Exec: "exec0", Run: func(p *des.Proc, ex *Executor) (any, float64) {
			ex.Charge(p, 10)
			return nil, 0
		}}}
		ctx.RunStage(p, "mystage", tasks)
	})
	bt := cl.Net.Recorder().BusyTime()
	if bt["exec0"][trace.Compute] <= 0 {
		t.Error("no compute span recorded for exec0")
	}
	if ctx.Stages() != 1 {
		t.Errorf("stages = %d", ctx.Stages())
	}
}
