package engine

import (
	"fmt"

	"mllibstar/internal/des"
)

// Block is one unit of shuffle data in flight from one executor to another
// during an Exchange. Bytes is the modeled wire size — what the virtual
// clock is charged — and may be smaller than the in-memory size of Payload:
// with sparse model-delta exchange enabled (internal/sparse), a block
// carrying a mostly-unchanged model costs 12 bytes per changed coordinate
// instead of 8 per coordinate of the full vector, while Payload still holds
// the encoding the receiver decodes. The simulation deliberately separates
// the two: Go data structures are the mechanism, Bytes is the model.
type Block struct {
	From    int
	To      int
	Bytes   float64
	Payload any
}

// IsSparse reports whether the carried payload is a sparse wire encoding,
// so telemetry books the shuffle message under the right encoding (see
// obs.EncodingOf).
func (b Block) IsSparse() bool {
	if s, ok := b.Payload.(interface{ IsSparse() bool }); ok {
		return s.IsSparse()
	}
	return false
}

// Exchange is the engine's generic all-to-all shuffle round, the primitive
// the paper implements AllReduce on ("we use the shuffle operator in
// Spark"). It must be called from within the same stage on every executor:
// each executor sends exactly one block to every other executor (empty
// blocks still carry framing overhead, as Spark's empty shuffle partitions
// do) and returns the k−1 blocks destined to it, ordered by arrival.
//
// name must be unique per collective call; outgoing must contain exactly
// one entry per peer (self excluded), with To set to the peer's executor
// index.
func Exchange(p *des.Proc, ex *Executor, execs []string, self int, name string, outgoing []Block) []Block {
	k := len(execs)
	if self < 0 || self >= k {
		panic(fmt.Sprintf("engine: Exchange self %d out of %d", self, k))
	}
	if len(outgoing) != k-1 {
		panic(fmt.Sprintf("engine: Exchange wants %d outgoing blocks, got %d", k-1, len(outgoing)))
	}
	seen := make([]bool, k)
	tag := "xch:" + name
	for i := range outgoing {
		b := outgoing[i]
		if b.To < 0 || b.To >= k || b.To == self {
			panic(fmt.Sprintf("engine: Exchange block to %d from %d", b.To, self))
		}
		if seen[b.To] {
			panic(fmt.Sprintf("engine: Exchange duplicate destination %d", b.To))
		}
		seen[b.To] = true
		b.From = self
		ex.Send(p, execs[b.To], tag, b.Bytes, b)
	}
	in := make([]Block, 0, k-1)
	for len(in) < k-1 {
		msg := ex.Recv(p, tag)
		in = append(in, msg.Payload.(Block))
	}
	return in
}

// Pair is a keyed element for the ByKey operators.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// HashPartitioner assigns keys to partitions by Go's map-independent FNV
// hash of the key's formatted value — stable across runs.
func HashPartitioner[K comparable](numParts int) func(K) int {
	return func(key K) int {
		s := fmt.Sprint(key)
		h := uint32(2166136261)
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
		return int(h % uint32(numParts))
	}
}

// shuffleByKey performs the shuffle boundary of the ByKey operators: it
// materializes the input RDD, exchanges elements so each key lands on its
// owning executor, and returns a new, materialized RDD with one partition
// per executor. Like Spark, the shuffle is an eager stage boundary: the
// result does not recompute through the exchange (its lineage is truncated
// at the shuffle, mirroring Spark's shuffle files).
func shuffleByKey[K comparable, V any](p *des.Proc, r *RDD[Pair[K, V]], name string,
	bytesPerElem float64, part func(K) int) *RDD[Pair[K, V]] {

	ctx := r.ctx
	k := ctx.NumExecutors()
	out := make([][]Pair[K, V], k)

	tasks := make([]Task, k)
	for i := 0; i < k; i++ {
		i := i
		tasks[i] = Task{
			Exec: ctx.Cluster.Execs[i],
			Run: func(p *des.Proc, ex *Executor) (any, float64) {
				// Materialize every partition of r pinned to this executor
				// and bucket its elements by destination.
				buckets := make([][]Pair[K, V], k)
				n := 0
				for pi := 0; pi < r.parts; pi++ {
					if pi%k != i {
						continue
					}
					for _, e := range r.materialize(p, ex, pi) {
						d := part(e.Key)
						buckets[d] = append(buckets[d], e)
						n++
					}
				}
				if n > 0 {
					ex.Charge(p, float64(n)) // bucketing scan
				}
				outgoing := make([]Block, 0, k-1)
				for d := 0; d < k; d++ {
					if d == i {
						continue
					}
					outgoing = append(outgoing, Block{
						To:      d,
						Bytes:   bytesPerElem * float64(len(buckets[d])),
						Payload: buckets[d],
					})
				}
				local := buckets[i]
				for _, b := range Exchange(p, ex, ctx.Cluster.Execs, i, name, outgoing) {
					local = append(local, b.Payload.([]Pair[K, V])...)
				}
				out[i] = local
				return nil, 0
			},
		}
	}
	ctx.RunStage(p, name, tasks)
	return Parallelize(ctx, name, out)
}

// ReduceByKey shuffles the RDD so all values of a key are co-located, then
// combines them per key with f. It returns a materialized RDD of one pair
// per key. bytesPerElem sizes the shuffled elements on the wire.
func ReduceByKey[K comparable, V any](p *des.Proc, r *RDD[Pair[K, V]], name string,
	bytesPerElem float64, f func(a, b V) V) *RDD[Pair[K, V]] {

	shuffled := shuffleByKey(p, r, name, bytesPerElem, HashPartitioner[K](r.ctx.NumExecutors()))
	return MapPartitions(shuffled, name+"/combine", func(in []Pair[K, V]) ([]Pair[K, V], float64) {
		acc := map[K]V{}
		order := make([]K, 0, len(in))
		for _, e := range in {
			if v, ok := acc[e.Key]; ok {
				acc[e.Key] = f(v, e.Value)
			} else {
				acc[e.Key] = e.Value
				order = append(order, e.Key)
			}
		}
		out := make([]Pair[K, V], 0, len(acc))
		for _, key := range order {
			out = append(out, Pair[K, V]{Key: key, Value: acc[key]})
		}
		return out, float64(len(in))
	})
}

// GroupByKey shuffles the RDD and gathers all values of each key into one
// slice, preserving arrival order within a key.
func GroupByKey[K comparable, V any](p *des.Proc, r *RDD[Pair[K, V]], name string,
	bytesPerElem float64) *RDD[Pair[K, []V]] {

	shuffled := shuffleByKey(p, r, name, bytesPerElem, HashPartitioner[K](r.ctx.NumExecutors()))
	return MapPartitions(shuffled, name+"/group", func(in []Pair[K, V]) ([]Pair[K, []V], float64) {
		groups := map[K][]V{}
		order := make([]K, 0)
		for _, e := range in {
			if _, ok := groups[e.Key]; !ok {
				order = append(order, e.Key)
			}
			groups[e.Key] = append(groups[e.Key], e.Value)
		}
		out := make([]Pair[K, []V], 0, len(groups))
		for _, key := range order {
			out = append(out, Pair[K, []V]{Key: key, Value: groups[key]})
		}
		return out, float64(len(in))
	})
}

// CountByKey returns the number of elements per key, collected at the
// driver.
func CountByKey[K comparable, V any](p *des.Proc, r *RDD[Pair[K, V]], name string) map[K]int {
	ones := Map(r, name+"/ones", 0, func(e Pair[K, V]) Pair[K, int] {
		return Pair[K, int]{Key: e.Key, Value: 1}
	})
	counted := ReduceByKey(p, ones, name, 16, func(a, b int) int { return a + b })
	out := map[K]int{}
	for _, partData := range Collect(p, counted, 16) {
		for _, e := range partData {
			out[e.Key] += e.Value
		}
	}
	return out
}
