package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"mllibstar/internal/des"
	"mllibstar/internal/simnet"
	"mllibstar/internal/trace"
)

// exchangeCluster builds a k-executor cluster for shuffle tests.
func exchangeCluster(k int) (*des.Sim, *Cluster, *Context) {
	sim := des.New()
	specs := []simnet.NodeSpec{{Name: "driver", ComputeRate: 1e6, SendBW: 1e6, RecvBW: 1e6}}
	specs = append(specs, simnet.Uniform("exec", k, 1e6, 1e6)...)
	cl := NewCluster(sim, simnet.Config{OverheadBytes: 32}, specs, trace.New())
	return sim, cl, NewContext(cl, Config{TaskBytes: 64, ResultBytes: 32})
}

func TestExchangeDeliversAllBlocks(t *testing.T) {
	const k = 4
	sim, cl, ctx := exchangeCluster(k)
	got := make([][]int, k)
	sim.Spawn("driver", func(p *des.Proc) {
		tasks := make([]Task, k)
		for i := 0; i < k; i++ {
			i := i
			tasks[i] = Task{Exec: cl.Execs[i], Run: func(p *des.Proc, ex *Executor) (any, float64) {
				var out []Block
				for d := 0; d < k; d++ {
					if d != i {
						out = append(out, Block{To: d, Bytes: 10, Payload: i*10 + d})
					}
				}
				for _, b := range Exchange(p, ex, cl.Execs, i, "t", out) {
					got[i] = append(got[i], b.Payload.(int))
				}
				return nil, 0
			}}
		}
		ctx.RunStage(p, "x", tasks)
	})
	sim.Run()
	for i := 0; i < k; i++ {
		sort.Ints(got[i])
		want := []int{}
		for s := 0; s < k; s++ {
			if s != i {
				want = append(want, s*10+i)
			}
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("executor %d got %v, want %v", i, got[i], want)
		}
	}
}

func TestExchangeValidation(t *testing.T) {
	sim, cl, ctx := exchangeCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for wrong block count")
		}
	}()
	sim.Spawn("driver", func(p *des.Proc) {
		ctx.RunStage(p, "x", []Task{{Exec: cl.Execs[0], Run: func(p *des.Proc, ex *Executor) (any, float64) {
			Exchange(p, ex, cl.Execs, 0, "t", nil) // needs 1 block
			return nil, 0
		}}})
	})
	sim.Run()
}

func TestHashPartitionerStableAndInRange(t *testing.T) {
	part := HashPartitioner[string](4)
	for _, key := range []string{"a", "hello", "", "kdd12"} {
		p1, p2 := part(key), part(key)
		if p1 != p2 {
			t.Errorf("unstable for %q", key)
		}
		if p1 < 0 || p1 >= 4 {
			t.Errorf("out of range: %d", p1)
		}
	}
	// Different keys should spread (not all in one bucket).
	buckets := map[int]bool{}
	for i := 0; i < 50; i++ {
		buckets[part(string(rune('a'+i)))] = true
	}
	if len(buckets) < 2 {
		t.Error("no spread across partitions")
	}
}

func pairsRDD(ctx *Context, k int, data []Pair[string, int]) *RDD[Pair[string, int]] {
	parts := make([][]Pair[string, int], k)
	for i, e := range data {
		parts[i%k] = append(parts[i%k], e)
	}
	return Parallelize(ctx, "pairs", parts)
}

func TestReduceByKey(t *testing.T) {
	sim, _, ctx := exchangeCluster(3)
	data := []Pair[string, int]{
		{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"b", 5}, {"a", 6},
	}
	got := map[string]int{}
	sim.Spawn("driver", func(p *des.Proc) {
		rdd := pairsRDD(ctx, 3, data)
		reduced := ReduceByKey(p, rdd, "sum", 16, func(a, b int) int { return a + b })
		for _, part := range Collect(p, reduced, 16) {
			for _, e := range part {
				got[e.Key] += e.Value
			}
		}
	})
	sim.Run()
	want := map[string]int{"a": 10, "b": 7, "c": 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestReduceByKeyColocatesKeys(t *testing.T) {
	// After the shuffle every key must appear in exactly one partition.
	sim, _, ctx := exchangeCluster(4)
	var data []Pair[string, int]
	rng := rand.New(rand.NewSource(5))
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6"}
	for i := 0; i < 200; i++ {
		data = append(data, Pair[string, int]{keys[rng.Intn(len(keys))], 1})
	}
	sim.Spawn("driver", func(p *des.Proc) {
		rdd := pairsRDD(ctx, 4, data)
		reduced := ReduceByKey(p, rdd, "sum", 16, func(a, b int) int { return a + b })
		seen := map[string]int{}
		for _, part := range Collect(p, reduced, 16) {
			for _, e := range part {
				seen[e.Key]++
			}
		}
		for key, n := range seen {
			if n != 1 {
				t.Errorf("key %q appears in %d partitions", key, n)
			}
		}
	})
	sim.Run()
}

func TestGroupByKey(t *testing.T) {
	sim, _, ctx := exchangeCluster(2)
	data := []Pair[string, int]{{"x", 1}, {"y", 2}, {"x", 3}}
	got := map[string][]int{}
	sim.Spawn("driver", func(p *des.Proc) {
		rdd := pairsRDD(ctx, 2, data)
		grouped := GroupByKey(p, rdd, "grp", 16)
		for _, part := range Collect(p, grouped, 16) {
			for _, e := range part {
				vals := append([]int(nil), e.Value...)
				sort.Ints(vals)
				got[e.Key] = vals
			}
		}
	})
	sim.Run()
	want := map[string][]int{"x": {1, 3}, "y": {2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestCountByKey(t *testing.T) {
	sim, _, ctx := exchangeCluster(3)
	data := []Pair[string, int]{{"a", 9}, {"a", 9}, {"b", 9}}
	var got map[string]int
	sim.Spawn("driver", func(p *des.Proc) {
		got = CountByKey(p, pairsRDD(ctx, 3, data), "cnt")
	})
	sim.Run()
	if !reflect.DeepEqual(got, map[string]int{"a": 2, "b": 1}) {
		t.Errorf("got %v", got)
	}
}

// TestShuffleConservationProperty: for random keyed data, ReduceByKey over
// + equals the plain sum per key — no element lost or duplicated by the
// exchange.
func TestShuffleConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		n := 10 + rng.Intn(100)
		var data []Pair[string, int]
		want := map[string]int{}
		for i := 0; i < n; i++ {
			key := string(rune('a' + rng.Intn(10)))
			v := rng.Intn(100)
			data = append(data, Pair[string, int]{key, v})
			want[key] += v
		}
		sim, _, ctx := exchangeCluster(k)
		got := map[string]int{}
		sim.Spawn("driver", func(p *des.Proc) {
			rdd := pairsRDD(ctx, k, data)
			reduced := ReduceByKey(p, rdd, "sum", 16, func(a, b int) int { return a + b })
			for _, part := range Collect(p, reduced, 16) {
				for _, e := range part {
					got[e.Key] += e.Value
				}
			}
		})
		sim.Run()
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
