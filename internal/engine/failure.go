package engine

import "fmt"

// FailExecutor marks an executor as failed, as when Spark's driver loses a
// worker's heartbeats: the executor receives no further tasks and its block
// store (cached RDD partitions) is lost. Failure takes effect at stage
// boundaries — tasks already running are not interrupted, matching the
// granularity at which this engine schedules. Cached data lost with the
// executor is recovered by lineage recomputation on the surviving
// executors.
func (c *Cluster) FailExecutor(name string) {
	ex := c.Executor(name)
	ex.failed = true
	ex.blocks = map[blockID]any{}
}

// ReviveExecutor returns a failed executor to service (as when a
// replacement container is provisioned). Its block store starts empty.
func (c *Cluster) ReviveExecutor(name string) {
	c.Executor(name).failed = false
}

// Alive returns the names of the executors currently in service, in
// cluster order.
func (c *Cluster) Alive() []string {
	out := make([]string, 0, len(c.Execs))
	for _, name := range c.Execs {
		if !c.execs[name].failed {
			out = append(out, name)
		}
	}
	return out
}

// IsAlive reports whether the named executor is in service.
func (c *Cluster) IsAlive(name string) bool { return !c.Executor(name).failed }

// reroute returns a live executor to run a task addressed to target,
// preferring the target itself. seq spreads rerouted tasks across the
// survivors. It panics when no executor is alive — there is nothing
// sensible an engine can do then.
func (c *Cluster) reroute(target string, seq int) string {
	if c.IsAlive(target) {
		return target
	}
	alive := c.Alive()
	if len(alive) == 0 {
		panic(fmt.Sprintf("engine: no live executors to reroute task from %q", target))
	}
	return alive[seq%len(alive)]
}
