package engine

import (
	"reflect"
	"testing"

	"mllibstar/internal/des"
)

func TestFailedExecutorTasksRerouted(t *testing.T) {
	sim, cl, ctx := testCluster(3, DefaultConfig())
	cl.FailExecutor("exec1")
	var ranOn []string
	runOnDriver(sim, func(p *des.Proc) {
		tasks := make([]Task, 3)
		for i := range tasks {
			tasks[i] = Task{Exec: ctx.RoundRobin(i), Run: func(p *des.Proc, ex *Executor) (any, float64) {
				ranOn = append(ranOn, ex.Name())
				return nil, 0
			}}
		}
		ctx.RunStage(p, "s", tasks)
	})
	for _, name := range ranOn {
		if name == "exec1" {
			t.Error("task ran on a failed executor")
		}
	}
	if len(ranOn) != 3 {
		t.Errorf("only %d tasks ran", len(ranOn))
	}
}

func TestAliveAndRevive(t *testing.T) {
	_, cl, _ := testCluster(3, DefaultConfig())
	cl.FailExecutor("exec0")
	if got := cl.Alive(); !reflect.DeepEqual(got, []string{"exec1", "exec2"}) {
		t.Errorf("alive = %v", got)
	}
	if cl.IsAlive("exec0") || !cl.IsAlive("exec2") {
		t.Error("IsAlive wrong")
	}
	cl.ReviveExecutor("exec0")
	if len(cl.Alive()) != 3 {
		t.Error("revive did not restore executor")
	}
}

func TestFailureLosesBlocksLineageRecovers(t *testing.T) {
	// A cached RDD's blocks on a failed executor are lost; a subsequent
	// action must transparently recompute them on the survivors and still
	// return the right answer.
	sim, cl, ctx := testCluster(2, Config{TaskBytes: 1, ResultBytes: 1})
	computes := 0
	runOnDriver(sim, func(p *des.Proc) {
		base := Parallelize(ctx, "nums", makeParts(2, 4))
		mapped := Map(base, "m", 0, func(v int) int { computes++; return v * 2 }).Cache()
		if sum := Reduce(p, mapped, 8, 1, func(a, b int) int { return a + b }); sum != 56 {
			t.Fatalf("sum = %d", sum)
		}
		after := computes

		cl.FailExecutor("exec0")
		if sum := Reduce(p, mapped, 8, 1, func(a, b int) int { return a + b }); sum != 56 {
			t.Errorf("post-failure sum wrong")
		}
		// exec0's partition was recomputed from lineage; exec1's came from
		// its still-live cache.
		if computes <= after {
			t.Error("no recomputation after block loss")
		}
		if computes >= 2*after {
			t.Error("surviving executor's cache was not reused")
		}
	})
}

func TestNoLiveExecutorsPanics(t *testing.T) {
	sim, cl, ctx := testCluster(1, DefaultConfig())
	cl.FailExecutor("exec0")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	runOnDriver(sim, func(p *des.Proc) {
		ctx.RunStage(p, "s", []Task{{Exec: "exec0", Run: func(p *des.Proc, ex *Executor) (any, float64) { return nil, 0 }}})
	})
}

func TestRerouteSpreadsAcrossSurvivors(t *testing.T) {
	sim, cl, ctx := testCluster(3, DefaultConfig())
	cl.FailExecutor("exec0")
	counts := map[string]int{}
	runOnDriver(sim, func(p *des.Proc) {
		tasks := make([]Task, 6)
		for i := range tasks {
			tasks[i] = Task{Exec: "exec0", Run: func(p *des.Proc, ex *Executor) (any, float64) {
				counts[ex.Name()]++
				return nil, 0
			}}
		}
		ctx.RunStage(p, "s", tasks)
	})
	if counts["exec1"] == 0 || counts["exec2"] == 0 {
		t.Errorf("rerouted tasks not spread: %v", counts)
	}
}
