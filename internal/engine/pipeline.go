package engine

import (
	"mllibstar/internal/des"
	"mllibstar/internal/obs"
)

// sendJob is one queued message of an async Sender; a zero tag is the close
// sentinel.
type sendJob struct {
	to, tag string
	bytes   float64
	payload any
}

// Sender is an asynchronous send queue for a task that wants outbound
// communication off its critical path: Send enqueues a message and returns
// immediately, while a forked child process drains the queue through the
// executor's outbound NIC in FIFO order. This is the double-buffering
// primitive of the pipelined collectives (internal/allreduce): the task
// process receives and folds chunk i while the child is still serializing
// chunk i+1, which is what lets a superstep cost max(compute, comm) instead
// of their sum.
//
// The payload-sharing contract is the caller's, exactly as with a direct
// Executor.Send: a payload handed to Send must stay immutable until the
// message is delivered.
type Sender struct {
	jobs *des.Queue[sendJob]
	join *des.Join
}

// StartSender forks the drain process for a new Sender on this executor.
// name namespaces the internal queue in deadlock reports and must be unique
// per concurrent sender on the node.
func (ex *Executor) StartSender(p *des.Proc, name string) *Sender {
	s := &Sender{jobs: des.NewQueue[sendJob](p.Sim(), ex.name+"/send:"+name)}
	s.join = des.Fork(p, ex.name+"/send:"+name, func(child *des.Proc) {
		for {
			j := s.jobs.Get(child)
			if j.tag == "" {
				return
			}
			ex.Send(child, j.to, j.tag, j.bytes, j.payload)
		}
	})
	if sink := obs.Active(); sink.Causal() {
		child := s.join.Proc()
		sink.CausalFork(ex.name, obs.CausalProcID(p.Name(), p.ID()),
			obs.CausalProcID(child.Name(), child.ID()), p.Now())
	}
	return s
}

// Send enqueues one message; the drain process transmits it after everything
// enqueued before it. Must not be called after Close.
func (s *Sender) Send(to, tag string, bytes float64, payload any) {
	if tag == "" {
		panic("engine: Sender.Send with empty tag")
	}
	s.jobs.Put(sendJob{to: to, tag: tag, bytes: bytes, payload: payload})
}

// Close stops the drain process once the messages already enqueued have been
// sent. It must be called exactly once.
func (s *Sender) Close() { s.jobs.Put(sendJob{}) }

// Join blocks p until the drain process has transmitted everything and
// exited (Close must have been called first). Callers that only need the
// messages delivered can skip it: a receiver holding a message implies its
// send completed.
func (s *Sender) Join(p *des.Proc) { s.join.Wait(p) }
