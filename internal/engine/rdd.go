package engine

import (
	"fmt"

	"mllibstar/internal/des"
	"mllibstar/internal/detrand"
)

// RDD is a resilient distributed dataset: a partitioned collection defined
// by its lineage. Partition i is pinned to executor i mod k. A partition is
// computed on demand by replaying the lineage — unless the RDD is cached and
// the executor's block store already holds it, in which case the stored
// block is returned at zero cost, which is what makes iterative workloads
// (like gradient descent) viable on this engine, exactly as in Spark.
type RDD[T any] struct {
	ctx    *Context
	id     int
	name   string
	parts  int
	cached bool
	// compute produces partition part on the executor process, charging any
	// work it performs.
	compute func(p *des.Proc, ex *Executor, part int) []T
}

// NumPartitions returns the RDD's partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// ID returns the RDD's unique id (used by Executor.DropCache).
func (r *RDD[T]) ID() int { return r.id }

// Name returns the RDD's debug name.
func (r *RDD[T]) Name() string { return r.name }

// Cache marks the RDD so computed partitions are stored in executor block
// stores and reused. It returns the receiver for chaining.
func (r *RDD[T]) Cache() *RDD[T] {
	r.cached = true
	return r
}

// ExecutorFor returns the executor name hosting partition part.
func (r *RDD[T]) ExecutorFor(part int) string {
	return r.ctx.Cluster.Execs[part%r.ctx.NumExecutors()]
}

// materialize returns partition part's data, consulting the block store for
// cached RDDs and recomputing through the lineage otherwise.
func (r *RDD[T]) materialize(p *des.Proc, ex *Executor, part int) []T {
	if r.cached {
		if blk, ok := ex.blocks[blockID{rdd: r.id, part: part}]; ok {
			return blk.([]T)
		}
	}
	out := r.compute(p, ex, part)
	if r.cached {
		ex.blocks[blockID{rdd: r.id, part: part}] = out
	}
	return out
}

// Parallelize distributes pre-partitioned data across the executors. The
// data is considered already loaded (as when Spark reads a cached HDFS
// dataset); computing a partition costs nothing until transformations are
// applied.
func Parallelize[T any](ctx *Context, name string, parts [][]T) *RDD[T] {
	ctx.nextRDD++
	local := parts
	return &RDD[T]{
		ctx:   ctx,
		id:    ctx.nextRDD,
		name:  name,
		parts: len(parts),
		compute: func(p *des.Proc, ex *Executor, part int) []T {
			return local[part]
		},
	}
}

// Map derives an RDD by applying f to every element. costPerElem work units
// are charged per input element.
func Map[T, U any](r *RDD[T], name string, costPerElem float64, f func(T) U) *RDD[U] {
	r.ctx.nextRDD++
	return &RDD[U]{
		ctx:   r.ctx,
		id:    r.ctx.nextRDD,
		name:  name,
		parts: r.parts,
		compute: func(p *des.Proc, ex *Executor, part int) []U {
			in := r.materialize(p, ex, part)
			if costPerElem > 0 && len(in) > 0 {
				ex.Charge(p, costPerElem*float64(len(in)))
			}
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out
		},
	}
}

// MapPartitions derives an RDD by transforming whole partitions. f reports
// the work it performed.
func MapPartitions[T, U any](r *RDD[T], name string, f func(in []T) (out []U, work float64)) *RDD[U] {
	r.ctx.nextRDD++
	return &RDD[U]{
		ctx:   r.ctx,
		id:    r.ctx.nextRDD,
		name:  name,
		parts: r.parts,
		compute: func(p *des.Proc, ex *Executor, part int) []U {
			in := r.materialize(p, ex, part)
			out, work := f(in)
			if work > 0 {
				ex.Charge(p, work)
			}
			return out
		},
	}
}

// Filter derives an RDD keeping the elements for which pred is true,
// charging costPerElem work units per input element.
func Filter[T any](r *RDD[T], name string, costPerElem float64, pred func(T) bool) *RDD[T] {
	return MapPartitions(r, name, func(in []T) ([]T, float64) {
		out := make([]T, 0, len(in))
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out, costPerElem * float64(len(in))
	})
}

// Sample derives a Bernoulli sample of the RDD: each element is kept with
// the given probability. Sampling is deterministic per (seed, partition) —
// the primitive behind MLlib's per-iteration mini-batch selection.
func Sample[T any](r *RDD[T], name string, fraction float64, seed int64) *RDD[T] {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("engine: Sample fraction %g", fraction))
	}
	r.ctx.nextRDD++
	return &RDD[T]{
		ctx:   r.ctx,
		id:    r.ctx.nextRDD,
		name:  name,
		parts: r.parts,
		compute: func(p *des.Proc, ex *Executor, part int) []T {
			in := r.materialize(p, ex, part)
			rng := detrand.Partition(seed, part)
			out := make([]T, 0, int(fraction*float64(len(in)))+1)
			for _, v := range in {
				if rng.Float64() < fraction {
					out = append(out, v)
				}
			}
			// Scanning the partition to sample costs a unit per element.
			ex.Charge(p, float64(len(in)))
			return out
		},
	}
}

// stageOverParts builds one task per partition, round-robin over executors.
func stageOverParts[T, R any](p *des.Proc, r *RDD[T], name string, resultBytes func(R) float64,
	run func(p *des.Proc, ex *Executor, part int) R) []R {

	tasks := make([]Task, r.parts)
	for i := 0; i < r.parts; i++ {
		i := i
		tasks[i] = Task{
			Exec: r.ExecutorFor(i),
			Run: func(p *des.Proc, ex *Executor) (any, float64) {
				res := run(p, ex, i)
				return res, resultBytes(res)
			},
		}
	}
	raw := r.ctx.RunStage(p, name, tasks)
	out := make([]R, len(raw))
	for i, v := range raw {
		out[i] = v.(R)
	}
	return out
}

// Collect materializes every partition and ships the data to the driver,
// charging bytesPerElem per element on the wire. It returns the partitions
// in order.
func Collect[T any](p *des.Proc, r *RDD[T], bytesPerElem float64) [][]T {
	return stageOverParts(p, r, r.name+"/collect",
		func(part []T) float64 { return bytesPerElem * float64(len(part)) },
		func(p *des.Proc, ex *Executor, part int) []T {
			return r.materialize(p, ex, part)
		})
}

// Count returns the total number of elements.
func Count[T any](p *des.Proc, r *RDD[T]) int {
	counts := stageOverParts(p, r, r.name+"/count",
		func(int) float64 { return 8 },
		func(p *des.Proc, ex *Executor, part int) int {
			return len(r.materialize(p, ex, part))
		})
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// Reduce combines all elements with the associative function f, first within
// partitions (charging costPerElem per element) and then at the driver. It
// panics on an empty RDD, matching Spark's behaviour.
func Reduce[T any](p *des.Proc, r *RDD[T], resultBytes float64, costPerElem float64, f func(a, b T) T) T {
	type partRes struct {
		val T
		ok  bool
	}
	partials := stageOverParts(p, r, r.name+"/reduce",
		func(partRes) float64 { return resultBytes },
		func(p *des.Proc, ex *Executor, part int) partRes {
			in := r.materialize(p, ex, part)
			if costPerElem > 0 && len(in) > 0 {
				ex.Charge(p, costPerElem*float64(len(in)))
			}
			if len(in) == 0 {
				return partRes{}
			}
			acc := in[0]
			for _, v := range in[1:] {
				acc = f(acc, v)
			}
			return partRes{val: acc, ok: true}
		})
	var acc T
	have := false
	for _, pr := range partials {
		if !pr.ok {
			continue
		}
		if !have {
			acc, have = pr.val, true
		} else {
			acc = f(acc, pr.val)
		}
	}
	if !have {
		panic("engine: Reduce of empty RDD")
	}
	return acc
}
