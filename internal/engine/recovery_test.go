package engine

import (
	"fmt"
	"math"
	"testing"

	"mllibstar/internal/des"
)

// recoveryExample is one (x, y) training point for the miniature least-
// squares job used by the recovery tests.
type recoveryExample struct{ x, y float64 }

// recoveryParts builds k deterministic partitions of perPart points around
// the line y = 3x + 1 with a small fixed residual pattern.
func recoveryParts(k, perPart int) [][]recoveryExample {
	parts := make([][]recoveryExample, k)
	i := 0
	for p := range parts {
		for j := 0; j < perPart; j++ {
			x := 0.1 * float64(i)
			res := 0.01 * float64(i%7-3)
			parts[p] = append(parts[p], recoveryExample{x: x, y: 3*x + 1 + res})
			i++
		}
	}
	return parts
}

// trainLSQ runs steps of full-batch gradient descent for least squares over
// the RDD, calling hook (if non-nil) after each step — the seam where the
// failure tests kill and revive executors mid-run. Gradients are summed in
// partition order, so the arithmetic sequence is identical no matter which
// executor materialized each partition.
func trainLSQ(p *des.Proc, data *RDD[recoveryExample], steps int, hook func(t int)) [2]float64 {
	var w [2]float64
	for t := 1; t <= steps; t++ {
		grads := Collect(p, MapPartitions(data, fmt.Sprintf("grad%d", t), func(in []recoveryExample) ([]float64, float64) {
			g := make([]float64, 3)
			for _, e := range in {
				r := w[0]*e.x + w[1] - e.y
				g[0] += r * e.x
				g[1] += r
			}
			g[2] = float64(len(in))
			return g, float64(len(in))
		}), 8)
		var g0, g1, n float64
		for _, part := range grads {
			g0 += part[0]
			g1 += part[1]
			n += part[2]
		}
		eta := 0.1 / n
		w[0] -= eta * g0
		w[1] -= eta * g1
		if hook != nil {
			hook(t)
		}
	}
	return w
}

// TestRecoveredModelBitwiseEqual is the checkpoint/failure interaction test:
// a run that checkpoints its dataset, loses an executor mid-training, and
// later gets it back must produce a model bit-for-bit identical to an
// undisturbed run — the engine's determinism contract (see README.md) says
// fault recovery may change timing but never arithmetic.
func TestRecoveredModelBitwiseEqual(t *testing.T) {
	const (
		execs   = 4
		perPart = 8
		steps   = 8
	)
	run := func(hook func(cl *Cluster, t int)) ([2]float64, int, *countingSink) {
		sim, cl, ctx := testCluster(execs, DefaultConfig())
		sink := &countingSink{}
		computes := 0
		var w [2]float64
		runOnDriver(sim, func(p *des.Proc) {
			base := Parallelize(ctx, "pts", recoveryParts(execs, perPart))
			scaled := Map(base, "scale", 1, func(e recoveryExample) recoveryExample {
				computes++
				return recoveryExample{x: e.x, y: e.y * 0.5}
			})
			cp := CheckpointTo(p, scaled, "cp", 16, sink)
			var h func(int)
			if hook != nil {
				h = func(t int) { hook(cl, t) }
			}
			w = trainLSQ(p, cp, steps, h)
		})
		return w, computes, sink
	}

	wantW, wantComputes, _ := run(nil)

	gotW, gotComputes, sink := run(func(cl *Cluster, step int) {
		switch step {
		case 3:
			cl.FailExecutor("exec1")
		case 6:
			cl.ReviveExecutor("exec1")
		}
	})

	for i := range wantW {
		if math.Float64bits(gotW[i]) != math.Float64bits(wantW[i]) {
			t.Errorf("w[%d] = %x after recovery, want %x (values %v vs %v)",
				i, math.Float64bits(gotW[i]), math.Float64bits(wantW[i]), gotW[i], wantW[i])
		}
	}
	// The checkpoint truncated the lineage, so losing exec1's blocks must
	// recover from the sink, never by re-running the map.
	if gotComputes != wantComputes {
		t.Errorf("map ran %d times in the failure run, want %d (lineage recomputed past the checkpoint)", gotComputes, wantComputes)
	}
	if sink.reads == 0 {
		t.Error("no checkpoint reads charged in the failure run")
	}
}

// TestLineageRecoveryBitwiseEqual covers the same invariant without a
// checkpoint: recomputing lost partitions through the lineage (on whatever
// executor the reroute picks) must also reproduce the model exactly.
func TestLineageRecoveryBitwiseEqual(t *testing.T) {
	const (
		execs   = 3
		perPart = 6
		steps   = 6
	)
	run := func(hook func(cl *Cluster, t int)) [2]float64 {
		sim, cl, ctx := testCluster(execs, DefaultConfig())
		var w [2]float64
		runOnDriver(sim, func(p *des.Proc) {
			base := Parallelize(ctx, "pts", recoveryParts(execs, perPart))
			scaled := Map(base, "scale", 1, func(e recoveryExample) recoveryExample {
				return recoveryExample{x: e.x, y: e.y * 0.5}
			}).Cache()
			var h func(int)
			if hook != nil {
				h = func(t int) { hook(cl, t) }
			}
			w = trainLSQ(p, scaled, steps, h)
		})
		return w
	}

	want := run(nil)
	got := run(func(cl *Cluster, step int) {
		if step == 2 {
			cl.FailExecutor("exec0")
		}
	})
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("w[%d] = %v after lineage recovery, want %v", i, got[i], want[i])
		}
	}
}
