package engine

import (
	"testing"

	"mllibstar/internal/des"
)

// slowTask builds a stage where task `slowIdx` is extremely slow on its
// original executor but cheap elsewhere: the closure charges extra work
// only when it runs on the original host.
func speculationStage(ctx *Context, k, slowIdx int, speculatable bool) []Task {
	tasks := make([]Task, k)
	for i := 0; i < k; i++ {
		i := i
		home := ctx.RoundRobin(i)
		tasks[i] = Task{
			Exec:         home,
			Speculatable: speculatable,
			Run: func(p *des.Proc, ex *Executor) (any, float64) {
				work := 100.0
				if i == slowIdx && ex.Name() == home {
					work = 100000 // a 1000x straggler, but only at home
				}
				ex.Charge(p, work)
				return i, 8
			},
		}
	}
	return tasks
}

func TestSpeculationCutsStragglerTail(t *testing.T) {
	run := func(quantile float64) float64 {
		cfg := Config{TaskBytes: 1, ResultBytes: 1, SpeculationQuantile: quantile}
		sim, _, ctx := testCluster(4, cfg)
		return runOnDriver(sim, func(p *des.Proc) {
			res := ctx.RunStage(p, "s", speculationStage(ctx, 4, 2, true))
			for i, r := range res {
				if r.(int) != i {
					t.Errorf("result %d = %v", i, r)
				}
			}
		})
	}
	without := run(0)
	with := run(0.75)
	if with >= without/2 {
		t.Errorf("speculation did not cut the tail: %g vs %g", with, without)
	}
}

func TestSpeculationRespectsSpeculatableFlag(t *testing.T) {
	runs := 0
	cfg := Config{TaskBytes: 1, ResultBytes: 1, SpeculationQuantile: 0.5}
	sim, _, ctx := testCluster(3, cfg)
	runOnDriver(sim, func(p *des.Proc) {
		tasks := make([]Task, 3)
		for i := range tasks {
			i := i
			work := 10.0
			if i == 2 {
				work = 10000
			}
			tasks[i] = Task{
				Exec:         ctx.RoundRobin(i),
				Speculatable: false,
				Run: func(p *des.Proc, ex *Executor) (any, float64) {
					runs++
					ex.Charge(p, work)
					return i, 8
				},
			}
		}
		ctx.RunStage(p, "s", tasks)
	})
	if runs != 3 {
		t.Errorf("non-speculatable tasks ran %d times, want 3", runs)
	}
}

func TestSpeculationDiscardsLoserResult(t *testing.T) {
	// Both the original and the copy eventually return; the stage must
	// return exactly one result per index and remain deterministic.
	cfg := Config{TaskBytes: 1, ResultBytes: 1, SpeculationQuantile: 0.5}
	run := func() []any {
		sim, _, ctx := testCluster(4, cfg)
		var res []any
		runOnDriver(sim, func(p *des.Proc) {
			res = ctx.RunStage(p, "s", speculationStage(ctx, 4, 1, true))
		})
		return res
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] || a[i].(int) != i {
			t.Fatalf("results unstable: %v vs %v", a, b)
		}
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	runs := 0
	sim, _, ctx := testCluster(2, Config{TaskBytes: 1, ResultBytes: 1})
	runOnDriver(sim, func(p *des.Proc) {
		tasks := []Task{
			{Exec: "exec0", Speculatable: true, Run: func(p *des.Proc, ex *Executor) (any, float64) {
				runs++
				ex.Charge(p, 10)
				return 0, 8
			}},
			{Exec: "exec1", Speculatable: true, Run: func(p *des.Proc, ex *Executor) (any, float64) {
				runs++
				ex.Charge(p, 100000)
				return 1, 8
			}},
		}
		ctx.RunStage(p, "s", tasks)
	})
	if runs != 2 {
		t.Errorf("tasks ran %d times with speculation off, want 2", runs)
	}
}
