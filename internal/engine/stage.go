package engine

import (
	"fmt"
	"math/rand"

	"mllibstar/internal/des"
	"mllibstar/internal/detrand"
	"mllibstar/internal/obs"
	"mllibstar/internal/par"
	"mllibstar/internal/trace"
	"mllibstar/internal/vec"
)

// Context is the driver-side handle for running stages, the analogue of a
// SparkContext. All Context methods must be called from the driver process.
type Context struct {
	Cluster  *Cluster
	Cfg      Config
	stageSeq int
	nextRDD  int
	specSeq  int
	rng      *rand.Rand
	accums   []*Accumulator
	pool     *vec.Pool
}

// NewContext returns a Context over the cluster with the given engine
// configuration.
func NewContext(c *Cluster, cfg Config) *Context {
	return &Context{Cluster: c, Cfg: cfg, rng: detrand.New(cfg.StragglerSeed), pool: vec.NewPool()}
}

// GetVec returns a zeroed model-sized buffer from the context's pool. Pure
// task closures running on worker threads may call it concurrently. The
// buffer's ownership transfers to the caller; return it with PutVec when the
// values are dead. Buffer identity never affects numerics (every buffer
// comes back zeroed), so pooling is outside the bit-identity contract.
func (ctx *Context) GetVec(n int) []float64 { return ctx.pool.Get(n) }

// PutVec recycles a buffer obtained from GetVec. The caller must not use b
// afterwards (the vecalias analyzer's pooled-buffer rule enforces this).
func (ctx *Context) PutVec(b []float64) { ctx.pool.Put(b) }

// Task is one unit of work in a stage, bound to a specific executor. Run
// executes on the executor's process; it performs real computation, charges
// it via Executor.Charge, optionally exchanges peer messages, and returns a
// result plus the payload size of that result in bytes.
type Task struct {
	Exec         string
	PayloadBytes float64 // extra bytes shipped with the task descriptor (e.g. a broadcast model)
	// Speculatable marks the task as safe to run twice (pure function of
	// its inputs, no peer messaging, no shared-state mutation) so the
	// scheduler may launch speculative copies against stragglers.
	Speculatable bool
	// Pure is the task's offloadable numeric computation: a side-effect-free
	// closure (pure in the sense of simnet.Node.ComputeAsyncKind — it owns
	// every buffer it writes and touches no simulation state) returning the
	// virtual-time work it performed. RunStage submits every task's Pure to
	// the offload pool at dispatch time, before the first task message is
	// sent, so the closures of all tasks in the stage — the units that are
	// concurrently runnable in virtual time — execute concurrently on real
	// OS threads. On the executor, the engine joins the closure and charges
	// its returned work (as Executor.Charge, under the task's straggler
	// factor) at exactly the point where Run begins, then invokes Run. With
	// the pool disabled the closure instead runs inline at that same join
	// point, reproducing the sequential engine's execution path exactly.
	// Speculative copies join the same closure and charge the same work.
	Pure func() (work float64)
	Run  func(p *des.Proc, ex *Executor) (result any, resultBytes float64)
}

// RunStage schedules the tasks, blocks until every task's result has reached
// the driver (the BSP barrier of a Spark stage), and returns the results in
// task order. Dispatch serializes through the driver's outbound NIC and
// per-task scheduler work; results serialize through the driver's inbound
// NIC — together these reproduce the driver bottleneck of the paper's
// Figure 3(a).
func (ctx *Context) RunStage(p *des.Proc, name string, tasks []Task) []any {
	if len(tasks) == 0 {
		return nil
	}
	ctx.stageSeq++
	replyTag := fmt.Sprintf("res:%d", ctx.stageSeq)
	driver := ctx.Cluster.Net.Node(ctx.Cluster.Driver)
	rec := ctx.Cluster.Net.Recorder()
	stageStart := p.Now()
	rec.Mark(stageStart, "stage "+name+" start")

	// Offload prefetch: submit every task's pure closure before the first
	// task message leaves the driver. The stage's tasks are concurrently
	// runnable in virtual time, so their closures may run concurrently in
	// real time; each task joins its own handle (and charges the returned
	// work) when it starts executing, which keeps the virtual-time event
	// sequence identical to computing inline.
	handles := make([]*par.Handle, len(tasks))
	for i, t := range tasks {
		if t.Pure != nil {
			handles[i] = par.Go(t.Pure)
		}
	}

	for i, t := range tasks {
		if ctx.Cfg.SchedulerWork > 0 {
			driver.ComputeKind(p, ctx.Cfg.SchedulerWork, trace.Stage, "schedule "+name)
		}
		msg := &taskMsg{stage: ctx.stageSeq, index: i, replyTag: replyTag, envelope: ctx.Cfg.ResultBytes, run: ctx.withStraggler(taskRunner(handles[i], t))}
		driver.Send(p, ctx.Cluster.reroute(t.Exec, i), "task", ctx.Cfg.TaskBytes+t.PayloadBytes, msg)
	}

	// Collect results; with speculation enabled, once the quantile of tasks
	// has finished, launch one copy of each Speculatable straggler on
	// another live executor and take whichever finishes first — Spark's
	// spark.speculation behaviour.
	results := make([]any, len(tasks))
	done := make([]bool, len(tasks))
	received := 0
	speculated := false
	quantile := ctx.Cfg.SpeculationQuantile
	for received < len(tasks) {
		m := driver.Recv(p, replyTag)
		tr := m.Payload.(*taskResult)
		if done[tr.index] {
			continue // a speculative copy's loser; result discarded
		}
		done[tr.index] = true
		results[tr.index] = tr.result
		received++
		for _, acc := range ctx.accums {
			acc.commit(ctx.stageSeq, tr.index, tr.attempt)
		}
		if quantile > 0 && !speculated && received >= int(float64(len(tasks))*quantile) && received < len(tasks) {
			speculated = true
			for i, t := range tasks {
				if done[i] || !t.Speculatable {
					continue
				}
				copyTo := ctx.Cluster.reroute(ctx.pickSpeculationHost(t.Exec), i)
				msg := &taskMsg{stage: ctx.stageSeq, index: i, attempt: 1, replyTag: replyTag, envelope: ctx.Cfg.ResultBytes, run: ctx.withStraggler(taskRunner(handles[i], t))}
				driver.Send(p, copyTo, "task", ctx.Cfg.TaskBytes+t.PayloadBytes, msg)
			}
		}
	}
	rec.Mark(p.Now(), "stage "+name+" end")
	obs.Active().Stage(ctx.Cluster.Driver, name, stageStart, p.Now())
	return results
}

// taskRunner composes a task's prefetched pure closure with its Run body:
// join the closure, charge its work (inside the straggler wrapper, so
// offloaded work is inflated exactly like inline work), then run. Joining
// is idempotent, so an original and a speculative copy of the same task
// share one computation and charge the same work.
func taskRunner(h *par.Handle, t Task) func(p *des.Proc, ex *Executor) (any, float64) {
	if h == nil {
		return t.Run
	}
	run := t.Run
	return func(p *des.Proc, ex *Executor) (any, float64) {
		ex.Charge(p, h.Join())
		return run(p, ex)
	}
}

// withStraggler wraps a task runner with this dispatch's sampled straggler
// slowdown (uniform by default; Bernoulli heavy tail when StragglerProb is
// set). Every dispatch — original or speculative copy — draws its own fate.
func (ctx *Context) withStraggler(run func(p *des.Proc, ex *Executor) (any, float64)) func(p *des.Proc, ex *Executor) (any, float64) {
	f := ctx.Cfg.StragglerFactor
	if f <= 0 {
		return run
	}
	slow := 1 + ctx.rng.Float64()*f
	if p := ctx.Cfg.StragglerProb; p > 0 {
		if ctx.rng.Float64() < p {
			slow = 1 + f
		} else {
			slow = 1
		}
	}
	inner := run
	return func(p *des.Proc, ex *Executor) (any, float64) {
		prev := ex.slowdown
		ex.slowdown = slow
		defer func() { ex.slowdown = prev }()
		return inner(p, ex)
	}
}

// pickSpeculationHost chooses a different live executor than the original
// assignment, round-robin over the alive set.
func (ctx *Context) pickSpeculationHost(original string) string {
	alive := ctx.Cluster.Alive()
	if len(alive) <= 1 {
		return original
	}
	ctx.specSeq++
	pick := alive[ctx.specSeq%len(alive)]
	if pick == original {
		ctx.specSeq++
		pick = alive[ctx.specSeq%len(alive)]
	}
	return pick
}

// RoundRobin assigns n tasks over the cluster's executors in order,
// producing the executor name for task i.
func (ctx *Context) RoundRobin(i int) string {
	execs := ctx.Cluster.Execs
	return execs[i%len(execs)]
}

// NumExecutors returns the number of executors in the cluster.
func (ctx *Context) NumExecutors() int { return len(ctx.Cluster.Execs) }

// Stages returns how many stages this context has run.
func (ctx *Context) Stages() int { return ctx.stageSeq }
