package engine

import (
	"fmt"
	"math/rand"

	"mllibstar/internal/des"
	"mllibstar/internal/detrand"
	"mllibstar/internal/trace"
)

// Context is the driver-side handle for running stages, the analogue of a
// SparkContext. All Context methods must be called from the driver process.
type Context struct {
	Cluster  *Cluster
	Cfg      Config
	stageSeq int
	nextRDD  int
	specSeq  int
	rng      *rand.Rand
	accums   []*Accumulator
}

// NewContext returns a Context over the cluster with the given engine
// configuration.
func NewContext(c *Cluster, cfg Config) *Context {
	return &Context{Cluster: c, Cfg: cfg, rng: detrand.New(cfg.StragglerSeed)}
}

// Task is one unit of work in a stage, bound to a specific executor. Run
// executes on the executor's process; it performs real computation, charges
// it via Executor.Charge, optionally exchanges peer messages, and returns a
// result plus the payload size of that result in bytes.
type Task struct {
	Exec         string
	PayloadBytes float64 // extra bytes shipped with the task descriptor (e.g. a broadcast model)
	// Speculatable marks the task as safe to run twice (pure function of
	// its inputs, no peer messaging, no shared-state mutation) so the
	// scheduler may launch speculative copies against stragglers.
	Speculatable bool
	Run          func(p *des.Proc, ex *Executor) (result any, resultBytes float64)
}

// RunStage schedules the tasks, blocks until every task's result has reached
// the driver (the BSP barrier of a Spark stage), and returns the results in
// task order. Dispatch serializes through the driver's outbound NIC and
// per-task scheduler work; results serialize through the driver's inbound
// NIC — together these reproduce the driver bottleneck of the paper's
// Figure 3(a).
func (ctx *Context) RunStage(p *des.Proc, name string, tasks []Task) []any {
	if len(tasks) == 0 {
		return nil
	}
	ctx.stageSeq++
	replyTag := fmt.Sprintf("res:%d", ctx.stageSeq)
	driver := ctx.Cluster.Net.Node(ctx.Cluster.Driver)
	rec := ctx.Cluster.Net.Recorder()
	rec.Mark(p.Now(), "stage "+name+" start")

	for i, t := range tasks {
		if ctx.Cfg.SchedulerWork > 0 {
			driver.ComputeKind(p, ctx.Cfg.SchedulerWork, trace.Stage, "schedule "+name)
		}
		msg := &taskMsg{stage: ctx.stageSeq, index: i, replyTag: replyTag, envelope: ctx.Cfg.ResultBytes, run: ctx.withStraggler(t.Run)}
		driver.Send(p, ctx.Cluster.reroute(t.Exec, i), "task", ctx.Cfg.TaskBytes+t.PayloadBytes, msg)
	}

	// Collect results; with speculation enabled, once the quantile of tasks
	// has finished, launch one copy of each Speculatable straggler on
	// another live executor and take whichever finishes first — Spark's
	// spark.speculation behaviour.
	results := make([]any, len(tasks))
	done := make([]bool, len(tasks))
	received := 0
	speculated := false
	quantile := ctx.Cfg.SpeculationQuantile
	for received < len(tasks) {
		m := driver.Recv(p, replyTag)
		tr := m.Payload.(*taskResult)
		if done[tr.index] {
			continue // a speculative copy's loser; result discarded
		}
		done[tr.index] = true
		results[tr.index] = tr.result
		received++
		for _, acc := range ctx.accums {
			acc.commit(ctx.stageSeq, tr.index, tr.attempt)
		}
		if quantile > 0 && !speculated && received >= int(float64(len(tasks))*quantile) && received < len(tasks) {
			speculated = true
			for i, t := range tasks {
				if done[i] || !t.Speculatable {
					continue
				}
				copyTo := ctx.Cluster.reroute(ctx.pickSpeculationHost(t.Exec), i)
				msg := &taskMsg{stage: ctx.stageSeq, index: i, attempt: 1, replyTag: replyTag, envelope: ctx.Cfg.ResultBytes, run: ctx.withStraggler(t.Run)}
				driver.Send(p, copyTo, "task", ctx.Cfg.TaskBytes+t.PayloadBytes, msg)
			}
		}
	}
	rec.Mark(p.Now(), "stage "+name+" end")
	return results
}

// withStraggler wraps a task runner with this dispatch's sampled straggler
// slowdown (uniform by default; Bernoulli heavy tail when StragglerProb is
// set). Every dispatch — original or speculative copy — draws its own fate.
func (ctx *Context) withStraggler(run func(p *des.Proc, ex *Executor) (any, float64)) func(p *des.Proc, ex *Executor) (any, float64) {
	f := ctx.Cfg.StragglerFactor
	if f <= 0 {
		return run
	}
	slow := 1 + ctx.rng.Float64()*f
	if p := ctx.Cfg.StragglerProb; p > 0 {
		if ctx.rng.Float64() < p {
			slow = 1 + f
		} else {
			slow = 1
		}
	}
	inner := run
	return func(p *des.Proc, ex *Executor) (any, float64) {
		prev := ex.slowdown
		ex.slowdown = slow
		defer func() { ex.slowdown = prev }()
		return inner(p, ex)
	}
}

// pickSpeculationHost chooses a different live executor than the original
// assignment, round-robin over the alive set.
func (ctx *Context) pickSpeculationHost(original string) string {
	alive := ctx.Cluster.Alive()
	if len(alive) <= 1 {
		return original
	}
	ctx.specSeq++
	pick := alive[ctx.specSeq%len(alive)]
	if pick == original {
		ctx.specSeq++
		pick = alive[ctx.specSeq%len(alive)]
	}
	return pick
}

// RoundRobin assigns n tasks over the cluster's executors in order,
// producing the executor name for task i.
func (ctx *Context) RoundRobin(i int) string {
	execs := ctx.Cluster.Execs
	return execs[i%len(execs)]
}

// NumExecutors returns the number of executors in the cluster.
func (ctx *Context) NumExecutors() int { return len(ctx.Cluster.Execs) }

// Stages returns how many stages this context has run.
func (ctx *Context) Stages() int { return ctx.stageSeq }
