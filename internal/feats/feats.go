// Package feats provides the feature-engineering front end that CTR-style
// GLM pipelines use upstream of training: the hashing trick to map raw
// categorical tokens into a fixed-dimensional sparse space (how avazu/kdd12
// style datasets are produced in practice), and a sparse-safe scaler.
package feats

import (
	"fmt"
	"math"

	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// Hasher implements the hashing trick: a token such as "site=abc" is mapped
// to index hash(token) mod Dim with a sign derived from a second hash,
// which keeps the expected inner product unbiased under collisions
// (Weinberger et al.). The zero value is unusable; use NewHasher.
type Hasher struct {
	Dim int
}

// NewHasher returns a hasher into a Dim-dimensional space.
func NewHasher(dim int) (*Hasher, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("feats: hasher dim %d", dim)
	}
	return &Hasher{Dim: dim}, nil
}

// fnv1a is the 32-bit FNV-1a hash with a seed mixed in.
func fnv1a(s string, seed uint32) uint32 {
	h := 2166136261 ^ seed*16777619
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Index returns the feature index for a token.
func (h *Hasher) Index(token string) int32 {
	return int32(fnv1a(token, 0) % uint32(h.Dim))
}

// sign returns +1 or -1 for a token, from an independent hash.
func (h *Hasher) sign(token string) float64 {
	if fnv1a(token, 0x9e3779b9)&1 == 0 {
		return 1
	}
	return -1
}

// Vectorize maps a bag of tokens to a sparse feature vector: each token
// contributes its signed count at its hashed index. Tokens colliding on an
// index accumulate.
func (h *Hasher) Vectorize(tokens []string) vec.Sparse {
	m := make(map[int32]float64, len(tokens))
	for _, tok := range tokens {
		m[h.Index(tok)] += h.sign(tok)
	}
	return vec.SparseFromMap(m)
}

// Example builds a labelled example from raw tokens.
func (h *Hasher) Example(label float64, tokens []string) glm.Example {
	return glm.Example{Label: label, X: h.Vectorize(tokens)}
}

// Scaler standardizes sparse features without destroying sparsity: each
// stored value is divided by its feature's standard deviation (no mean
// centering, which would densify the data — the standard sparse-data
// compromise).
type Scaler struct {
	InvStd []float64
}

// FitScaler estimates per-feature standard deviations over the examples,
// treating absent entries as zeros (the correct sparse semantics).
func FitScaler(data []glm.Example, dim int) *Scaler {
	if dim <= 0 || len(data) == 0 {
		return &Scaler{InvStd: nil}
	}
	sum := make([]float64, dim)
	sumSq := make([]float64, dim)
	n := float64(len(data))
	for _, e := range data {
		for i, ix := range e.X.Ind {
			if int(ix) >= dim {
				continue
			}
			v := e.X.Val[i]
			sum[ix] += v
			sumSq[ix] += v * v
		}
	}
	inv := make([]float64, dim)
	for j := 0; j < dim; j++ {
		mean := sum[j] / n
		variance := sumSq[j]/n - mean*mean
		if variance > 1e-12 {
			inv[j] = 1 / math.Sqrt(variance)
		} else {
			inv[j] = 1 // constant or absent feature: leave unscaled
		}
	}
	return &Scaler{InvStd: inv}
}

// Transform returns a new example with scaled feature values.
func (s *Scaler) Transform(e glm.Example) glm.Example {
	if s.InvStd == nil {
		return e
	}
	vals := make([]float64, len(e.X.Val))
	for i, ix := range e.X.Ind {
		f := 1.0
		if int(ix) < len(s.InvStd) {
			f = s.InvStd[ix]
		}
		vals[i] = e.X.Val[i] * f
	}
	return glm.Example{Label: e.Label, X: vec.Sparse{Ind: e.X.Ind, Val: vals}}
}

// TransformAll scales a whole dataset's examples.
func (s *Scaler) TransformAll(data []glm.Example) []glm.Example {
	out := make([]glm.Example, len(data))
	for i, e := range data {
		out[i] = s.Transform(e)
	}
	return out
}
