package feats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

func TestHasherDeterministicAndInRange(t *testing.T) {
	h, err := NewHasher(1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range []string{"site=abc", "device=ios", "", "a"} {
		i1, i2 := h.Index(tok), h.Index(tok)
		if i1 != i2 {
			t.Errorf("unstable index for %q", tok)
		}
		if i1 < 0 || int(i1) >= 1000 {
			t.Errorf("index %d out of range", i1)
		}
	}
	if _, err := NewHasher(0); err == nil {
		t.Error("want error for dim 0")
	}
}

func TestVectorizeAccumulatesAndSigns(t *testing.T) {
	h, _ := NewHasher(1 << 16)
	x := h.Vectorize([]string{"a", "a", "b"})
	// "a" twice accumulates to ±2 at one index; "b" contributes ±1.
	if x.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (no collision expected at 65536 dims)", x.NNZ())
	}
	found2 := false
	for _, v := range x.Val {
		if math.Abs(v) == 2 {
			found2 = true
		}
	}
	if !found2 {
		t.Errorf("repeated token did not accumulate: %v", x.Val)
	}
}

func TestVectorizeSpreadsTokens(t *testing.T) {
	h, _ := NewHasher(4096)
	seen := map[int32]bool{}
	for i := 0; i < 200; i++ {
		seen[h.Index(string(rune('a'+i%26))+string(rune('0'+i/26)))] = true
	}
	if len(seen) < 150 {
		t.Errorf("only %d distinct indices for 200 tokens", len(seen))
	}
}

func TestHashedExamplesAreLearnable(t *testing.T) {
	// A synthetic token workload: spam tokens vs ham tokens, hashed; a
	// linear model must separate them.
	h, _ := NewHasher(512)
	rng := rand.New(rand.NewSource(3))
	spamVocab := []string{"win", "free", "prize", "click", "now"}
	hamVocab := []string{"meeting", "report", "invoice", "schedule", "team"}
	var data []glm.Example
	for i := 0; i < 400; i++ {
		var toks []string
		label := 1.0
		vocab := spamVocab
		if i%2 == 0 {
			label = -1
			vocab = hamVocab
		}
		for j := 0; j < 6; j++ {
			toks = append(toks, vocab[rng.Intn(len(vocab))])
		}
		data = append(data, h.Example(label, toks))
	}
	w := make([]float64, 512)
	obj := glm.SVM(0)
	for ep := 0; ep < 3; ep++ {
		for _, e := range data {
			d := obj.Loss.Deriv(vec.Dot(w, e.X), e.Label)
			if d != 0 {
				vec.Axpy(-0.1*d, e.X, w)
			}
		}
	}
	if acc := glm.Accuracy(w, data); acc < 0.98 {
		t.Errorf("hashed-feature accuracy = %g, want ~1", acc)
	}
}

func TestScalerUnitVariance(t *testing.T) {
	// Feature 0 has large variance, feature 1 small; after scaling both
	// should have ~unit variance over the stored values.
	var data []glm.Example
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		data = append(data, glm.Example{Label: 1, X: vec.SparseFromMap(map[int32]float64{
			0: rng.NormFloat64() * 10,
			1: rng.NormFloat64() * 0.1,
		})})
	}
	s := FitScaler(data, 2)
	scaled := s.TransformAll(data)
	for j := int32(0); j < 2; j++ {
		sum, sumSq := 0.0, 0.0
		for _, e := range scaled {
			v := e.X.At(j)
			sum += v
			sumSq += v * v
		}
		n := float64(len(scaled))
		variance := sumSq/n - (sum/n)*(sum/n)
		if variance < 0.8 || variance > 1.2 {
			t.Errorf("feature %d variance after scaling = %g", j, variance)
		}
	}
}

func TestScalerLeavesConstantFeaturesAlone(t *testing.T) {
	data := []glm.Example{
		{Label: 1, X: vec.SparseFromMap(map[int32]float64{0: 5})},
		{Label: 1, X: vec.SparseFromMap(map[int32]float64{0: 5})},
	}
	s := FitScaler(data, 1)
	got := s.Transform(data[0])
	if got.X.At(0) != 5 {
		t.Errorf("constant feature rescaled to %g", got.X.At(0))
	}
}

func TestScalerEmpty(t *testing.T) {
	s := FitScaler(nil, 0)
	e := glm.Example{Label: 1, X: vec.SparseFromMap(map[int32]float64{0: 2})}
	if got := s.Transform(e); got.X.At(0) != 2 {
		t.Error("empty scaler should be identity")
	}
}

func TestHashingPreservesDotProductsApproximately(t *testing.T) {
	// Property (hashing trick): for disjoint token sets, hashed vectors are
	// near-orthogonal in expectation; for identical sets the dot product
	// equals the token count. Verified on random token multisets.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, _ := NewHasher(1 << 14)
		n := 5 + rng.Intn(10)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) + string(rune('0'+i))
		}
		x := h.Vectorize(toks)
		// Self inner product = n when no collisions (distinct tokens).
		self := 0.0
		for _, v := range x.Val {
			self += v * v
		}
		return math.Abs(self-float64(n)) <= 2 // allow rare collisions
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
