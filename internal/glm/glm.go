// Package glm defines generalized linear models as the paper studies them:
// an objective f(w, X) = l(w, X) + Ω(w) where l is a margin-based loss
// (hinge for SVM, logistic for LR, squared for linear regression) averaged
// over the data and Ω is a regularization term (none, L1, or L2).
//
// All trainers in this repository — sequential MGD, MLlib's SendGradient,
// MLlib*'s model averaging, and the parameter-server baselines — share these
// loss/regularizer kernels, so their objective values are directly
// comparable, exactly as the paper compares systems by objective-vs-time.
package glm

import (
	"fmt"
	"math"
	"sort"

	"mllibstar/internal/vec"
)

// Example is one labelled training instance. For classification losses the
// label must be -1 or +1; for squared loss it is the regression target.
type Example struct {
	Label float64
	X     vec.Sparse
}

// NNZ returns the number of nonzero features of the example.
func (e Example) NNZ() int { return e.X.NNZ() }

// Loss is a margin-based loss l(margin, y), where margin = <w, x>.
type Loss interface {
	// Name identifies the loss in configs and reports.
	Name() string
	// Value returns l(margin, y).
	Value(margin, y float64) float64
	// Deriv returns ∂l/∂margin; the gradient w.r.t. the model is Deriv·x.
	Deriv(margin, y float64) float64
}

// Hinge is the SVM loss max(0, 1 - y·margin) — the workload of the paper's
// evaluation (linear SVM on five datasets).
type Hinge struct{}

func (Hinge) Name() string { return "hinge" }

func (Hinge) Value(margin, y float64) float64 {
	if v := 1 - y*margin; v > 0 {
		return v
	}
	return 0
}

func (Hinge) Deriv(margin, y float64) float64 {
	if 1-y*margin > 0 {
		return -y
	}
	return 0
}

// Logistic is the logistic-regression loss log(1 + exp(-y·margin)).
type Logistic struct{}

func (Logistic) Name() string { return "logistic" }

func (Logistic) Value(margin, y float64) float64 {
	z := y * margin
	// Numerically stable log(1+exp(-z)).
	if z > 0 {
		return math.Log1p(math.Exp(-z))
	}
	return -z + math.Log1p(math.Exp(z))
}

func (Logistic) Deriv(margin, y float64) float64 {
	z := y * margin
	// -y * sigmoid(-z), computed stably.
	if z > 0 {
		e := math.Exp(-z)
		return -y * e / (1 + e)
	}
	return -y / (1 + math.Exp(z))
}

// Squared is the least-squares loss (margin - y)²/2.
type Squared struct{}

func (Squared) Name() string { return "squared" }

func (Squared) Value(margin, y float64) float64 { d := margin - y; return d * d / 2 }

func (Squared) Deriv(margin, y float64) float64 { return margin - y }

// LossByName returns the loss with the given Name.
func LossByName(name string) (Loss, error) {
	switch name {
	case "hinge":
		return Hinge{}, nil
	case "logistic":
		return Logistic{}, nil
	case "squared":
		return Squared{}, nil
	}
	return nil, fmt.Errorf("glm: unknown loss %q", name)
}

// Regularizer is the Ω(w) term of the objective.
type Regularizer interface {
	// Name identifies the regularizer in configs and reports.
	Name() string
	// Lambda returns the regularization strength (zero for None).
	Lambda() float64
	// Value returns Ω(w).
	Value(w []float64) float64
	// DerivAt returns ∂Ω/∂w_j at the given weight value.
	DerivAt(wj float64) float64
}

// None is the absent regularizer (Ω = 0) — the paper's "L2=0" settings.
type None struct{}

func (None) Name() string            { return "none" }
func (None) Lambda() float64         { return 0 }
func (None) Value([]float64) float64 { return 0 }
func (None) DerivAt(float64) float64 { return 0 }

// L2 is ridge regularization Ω(w) = λ/2·‖w‖².
type L2 struct{ Strength float64 }

func (r L2) Name() string               { return "l2" }
func (r L2) Lambda() float64            { return r.Strength }
func (r L2) Value(w []float64) float64  { return r.Strength / 2 * vec.Norm2Sq(w) }
func (r L2) DerivAt(wj float64) float64 { return r.Strength * wj }

// L1 is lasso regularization Ω(w) = λ·‖w‖₁ with the subgradient λ·sign(w).
type L1 struct{ Strength float64 }

func (r L1) Name() string              { return "l1" }
func (r L1) Lambda() float64           { return r.Strength }
func (r L1) Value(w []float64) float64 { return r.Strength * vec.Norm1(w) }
func (r L1) DerivAt(wj float64) float64 {
	switch {
	case wj > 0:
		return r.Strength
	case wj < 0:
		return -r.Strength
	}
	return 0
}

// ElasticNet combines L1 and L2 regularization:
// Ω(w) = α·λ·‖w‖₁ + (1−α)·λ/2·‖w‖², the mixture spark.ml exposes for GLMs.
type ElasticNet struct {
	Strength float64 // λ
	L1Ratio  float64 // α in [0, 1]: 1 = pure lasso, 0 = pure ridge
}

func (r ElasticNet) Name() string    { return "elasticnet" }
func (r ElasticNet) Lambda() float64 { return r.Strength }

func (r ElasticNet) Value(w []float64) float64 {
	return r.Strength * (r.L1Ratio*vec.Norm1(w) + (1-r.L1Ratio)/2*vec.Norm2Sq(w))
}

func (r ElasticNet) DerivAt(wj float64) float64 {
	d := r.Strength * (1 - r.L1Ratio) * wj
	switch {
	case wj > 0:
		d += r.Strength * r.L1Ratio
	case wj < 0:
		d -= r.Strength * r.L1Ratio
	}
	return d
}

// RegByName returns a regularizer by name with the given strength.
func RegByName(name string, lambda float64) (Regularizer, error) {
	switch name {
	case "none", "":
		return None{}, nil
	case "l2":
		if lambda == 0 {
			return None{}, nil
		}
		return L2{Strength: lambda}, nil
	case "l1":
		if lambda == 0 {
			return None{}, nil
		}
		return L1{Strength: lambda}, nil
	}
	return nil, fmt.Errorf("glm: unknown regularizer %q", name)
}

// Objective bundles a loss and a regularizer: f(w, X) = mean loss + Ω(w).
type Objective struct {
	Loss Loss
	Reg  Regularizer
}

// SVM returns the paper's evaluation objective: hinge loss with the given L2
// strength (zero means no regularization).
func SVM(l2 float64) Objective {
	if l2 == 0 {
		return Objective{Loss: Hinge{}, Reg: None{}}
	}
	return Objective{Loss: Hinge{}, Reg: L2{Strength: l2}}
}

// LogReg returns a logistic-regression objective with the given L2 strength.
func LogReg(l2 float64) Objective {
	if l2 == 0 {
		return Objective{Loss: Logistic{}, Reg: None{}}
	}
	return Objective{Loss: Logistic{}, Reg: L2{Strength: l2}}
}

// Value returns f(w, X) = (1/n)·Σ l(<w,x_i>, y_i) + Ω(w) over the examples.
// It is the metric every experiment in the paper plots on its y-axis.
func (o Objective) Value(w []float64, data []Example) float64 {
	if len(data) == 0 {
		return o.Reg.Value(w)
	}
	sum := 0.0
	for _, e := range data {
		sum += o.Loss.Value(vec.Dot(w, e.X), e.Label)
	}
	return sum/float64(len(data)) + o.Reg.Value(w)
}

// LossSum returns Σ l(<w,x_i>, y_i) over the examples, without dividing and
// without the regularization term. Distributed evaluators aggregate LossSum
// across partitions and divide by the global count.
func (o Objective) LossSum(w []float64, data []Example) float64 {
	sum := 0.0
	for _, e := range data {
		sum += o.Loss.Value(vec.Dot(w, e.X), e.Label)
	}
	return sum
}

// AddGradient accumulates the gradient of the *loss term only*, summed (not
// averaged) over the examples, into g: g += Σ l'(<w,x_i>, y_i)·x_i.
// Regularization gradients are applied separately by the optimizers because
// the efficient treatment of L2 (lazy scaling) differs per algorithm.
// It returns the number of nonzeros touched, the unit of the simulation's
// compute cost model.
func (o Objective) AddGradient(w []float64, data []Example, g []float64) (nnz int) {
	for _, e := range data {
		d := o.Loss.Deriv(vec.Dot(w, e.X), e.Label)
		if d != 0 {
			vec.Axpy(d, e.X, g)
		}
		nnz += e.X.NNZ()
	}
	return nnz
}

// Accuracy returns the fraction of examples whose label sign the model
// predicts correctly (classification losses only).
func Accuracy(w []float64, data []Example) float64 {
	if len(data) == 0 {
		return 0
	}
	correct := 0
	for _, e := range data {
		margin := vec.Dot(w, e.X)
		if (margin >= 0 && e.Label > 0) || (margin < 0 && e.Label < 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

// AUC returns the area under the ROC curve of the model's margins over the
// examples — the ranking metric CTR practitioners actually optimize. It is
// computed exactly via the rank-sum formulation, with ties sharing average
// ranks. It returns 0.5 when either class is absent.
func AUC(w []float64, data []Example) float64 {
	type scored struct {
		margin float64
		pos    bool
	}
	scores := make([]scored, len(data))
	nPos := 0
	for i, e := range data {
		pos := e.Label > 0
		if pos {
			nPos++
		}
		scores[i] = scored{margin: vec.Dot(w, e.X), pos: pos}
	}
	nNeg := len(data) - nPos
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].margin < scores[j].margin })
	// Rank sum of the positives, averaging ranks within tied margins.
	rankSum := 0.0
	i := 0
	for i < len(scores) {
		j := i
		//mlstar:nolint floateq -- exact compare intentional: tie groups are runs of identical sorted margins
		for j < len(scores) && scores[j].margin == scores[i].margin {
			j++
		}
		avgRank := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for t := i; t < j; t++ {
			if scores[t].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// NNZTotal returns the total number of nonzero features across the examples.
func NNZTotal(data []Example) int {
	n := 0
	for _, e := range data {
		n += e.X.NNZ()
	}
	return n
}
