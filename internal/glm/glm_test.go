package glm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mllibstar/internal/vec"
)

func ex(label float64, features map[int32]float64) Example {
	return Example{Label: label, X: vec.SparseFromMap(features)}
}

func TestHinge(t *testing.T) {
	h := Hinge{}
	cases := []struct {
		margin, y, value, deriv float64
	}{
		{2, 1, 0, 0},      // correctly classified with margin: no loss
		{0.5, 1, 0.5, -1}, // inside margin
		{-1, 1, 2, -1},    // misclassified
		{-2, -1, 0, 0},    // correct negative
		{0.5, -1, 1.5, 1}, // misclassified negative
	}
	for _, c := range cases {
		if got := h.Value(c.margin, c.y); got != c.value {
			t.Errorf("Value(%g,%g) = %g, want %g", c.margin, c.y, got, c.value)
		}
		if got := h.Deriv(c.margin, c.y); got != c.deriv {
			t.Errorf("Deriv(%g,%g) = %g, want %g", c.margin, c.y, got, c.deriv)
		}
	}
}

func TestLogisticStable(t *testing.T) {
	l := Logistic{}
	// Large positive z: loss ~ 0; large negative z: loss ~ -z. No NaN/Inf.
	if v := l.Value(1000, 1); v != 0 && (math.IsNaN(v) || v > 1e-300) {
		t.Errorf("Value(1000,1) = %g", v)
	}
	v := l.Value(-1000, 1)
	if math.IsInf(v, 0) || math.IsNaN(v) || math.Abs(v-1000) > 1e-9 {
		t.Errorf("Value(-1000,1) = %g, want ~1000", v)
	}
	if d := l.Deriv(-1000, 1); math.Abs(d+1) > 1e-9 {
		t.Errorf("Deriv(-1000,1) = %g, want -1", d)
	}
	if d := l.Deriv(1000, 1); d != 0 && math.Abs(d) > 1e-300 {
		t.Errorf("Deriv(1000,1) = %g, want ~0", d)
	}
	if v := l.Value(0, 1); math.Abs(v-math.Ln2) > 1e-12 {
		t.Errorf("Value(0,1) = %g, want ln2", v)
	}
}

func TestLossDerivMatchesFiniteDifference(t *testing.T) {
	losses := []Loss{Logistic{}, Squared{}}
	for _, l := range losses {
		for _, y := range []float64{-1, 1} {
			for _, m := range []float64{-2.3, -0.4, 0.7, 1.9} {
				const h = 1e-6
				fd := (l.Value(m+h, y) - l.Value(m-h, y)) / (2 * h)
				if got := l.Deriv(m, y); math.Abs(got-fd) > 1e-5 {
					t.Errorf("%s: Deriv(%g,%g) = %g, finite-diff %g", l.Name(), m, y, got, fd)
				}
			}
		}
	}
}

func TestRegularizers(t *testing.T) {
	w := []float64{3, -4, 0}
	l2 := L2{Strength: 0.1}
	if got := l2.Value(w); math.Abs(got-0.05*25) > 1e-12 {
		t.Errorf("L2 value = %g", got)
	}
	if l2.DerivAt(-4) != -0.4 {
		t.Error("L2 deriv")
	}
	l1 := L1{Strength: 2}
	if l1.Value(w) != 14 {
		t.Errorf("L1 value = %g", l1.Value(w))
	}
	if l1.DerivAt(3) != 2 || l1.DerivAt(-1) != -2 || l1.DerivAt(0) != 0 {
		t.Error("L1 deriv")
	}
	n := None{}
	if n.Value(w) != 0 || n.DerivAt(5) != 0 || n.Lambda() != 0 {
		t.Error("None not zero")
	}
}

func TestByNameLookups(t *testing.T) {
	for _, name := range []string{"hinge", "logistic", "squared"} {
		l, err := LossByName(name)
		if err != nil || l.Name() != name {
			t.Errorf("LossByName(%q) = %v, %v", name, l, err)
		}
	}
	if _, err := LossByName("nope"); err == nil {
		t.Error("want error")
	}
	r, err := RegByName("l2", 0.1)
	if err != nil || r.Name() != "l2" || r.Lambda() != 0.1 {
		t.Errorf("RegByName l2 = %v, %v", r, err)
	}
	if r, _ := RegByName("l2", 0); r.Name() != "none" {
		t.Error("l2 with lambda 0 should collapse to none")
	}
	if _, err := RegByName("nope", 1); err == nil {
		t.Error("want error")
	}
}

func TestObjectiveValue(t *testing.T) {
	data := []Example{
		ex(1, map[int32]float64{0: 1}),
		ex(-1, map[int32]float64{1: 1}),
	}
	o := SVM(0)
	w := []float64{2, -2} // both examples classified with margin 2: loss 0
	if got := o.Value(w, data); got != 0 {
		t.Errorf("Value = %g, want 0", got)
	}
	o2 := SVM(0.1)
	want := 0.1 / 2 * 8
	if got := o2.Value(w, data); math.Abs(got-want) > 1e-12 {
		t.Errorf("Value = %g, want %g", got, want)
	}
	if got := o2.Value(w, nil); math.Abs(got-want) > 1e-12 {
		t.Errorf("empty-data Value = %g, want reg only %g", got, want)
	}
}

func TestLossSumDistributedConsistency(t *testing.T) {
	// Property: averaging LossSum over partitions equals Value on the union
	// (minus the regularizer handled globally).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var data []Example
		for i := 0; i < 20+r.Intn(30); i++ {
			m := map[int32]float64{}
			for j := 0; j < 1+r.Intn(5); j++ {
				m[int32(r.Intn(10))] = r.NormFloat64()
			}
			y := 1.0
			if r.Intn(2) == 0 {
				y = -1
			}
			data = append(data, ex(y, m))
		}
		w := make([]float64, 10)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		o := SVM(0.1)
		cut := r.Intn(len(data))
		sum := o.LossSum(w, data[:cut]) + o.LossSum(w, data[cut:])
		global := sum/float64(len(data)) + o.Reg.Value(w)
		return math.Abs(global-o.Value(w, data)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddGradientMatchesFiniteDifference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const dim = 8
	var data []Example
	for i := 0; i < 10; i++ {
		m := map[int32]float64{}
		for j := 0; j < 4; j++ {
			m[int32(r.Intn(dim))] = r.NormFloat64()
		}
		y := 1.0
		if r.Intn(2) == 0 {
			y = -1
		}
		data = append(data, ex(y, m))
	}
	o := LogReg(0) // smooth loss for finite differences
	w := make([]float64, dim)
	for i := range w {
		w[i] = r.NormFloat64() * 0.1
	}
	g := make([]float64, dim)
	nnz := o.AddGradient(w, data, g)
	if nnz != NNZTotal(data) {
		t.Errorf("nnz = %d, want %d", nnz, NNZTotal(data))
	}
	const h = 1e-6
	for j := 0; j < dim; j++ {
		wp := vec.Copy(w)
		wm := vec.Copy(w)
		wp[j] += h
		wm[j] -= h
		fd := (o.LossSum(wp, data) - o.LossSum(wm, data)) / (2 * h)
		if math.Abs(g[j]-fd) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("g[%d] = %g, finite-diff %g", j, g[j], fd)
		}
	}
}

func TestAccuracy(t *testing.T) {
	data := []Example{
		ex(1, map[int32]float64{0: 1}),
		ex(-1, map[int32]float64{0: 1}),
		ex(-1, map[int32]float64{1: 1}),
	}
	w := []float64{1, -1}
	// Example 0: margin 1, label +1: correct. Example 1: margin 1, label -1:
	// wrong. Example 2: margin -1, label -1: correct.
	if got := Accuracy(w, data); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %g", got)
	}
	if Accuracy(w, nil) != 0 {
		t.Error("empty accuracy")
	}
}

func TestSVMAndLogRegConstructors(t *testing.T) {
	if SVM(0).Reg.Name() != "none" || SVM(0.1).Reg.Name() != "l2" {
		t.Error("SVM constructor wrong")
	}
	if LogReg(0).Loss.Name() != "logistic" || LogReg(0.5).Reg.Lambda() != 0.5 {
		t.Error("LogReg constructor wrong")
	}
}

func TestElasticNet(t *testing.T) {
	w := []float64{3, -4, 0}
	r := ElasticNet{Strength: 1, L1Ratio: 0.5}
	// 0.5*7 + 0.25*25 = 3.5 + 6.25
	if got := r.Value(w); math.Abs(got-9.75) > 1e-12 {
		t.Errorf("value = %g", got)
	}
	// d/dw at 3: 0.5*3 + 0.5 = 2
	if got := r.DerivAt(3); math.Abs(got-2) > 1e-12 {
		t.Errorf("deriv = %g", got)
	}
	if got := r.DerivAt(-4); math.Abs(got-(-2.5)) > 1e-12 {
		t.Errorf("deriv = %g", got)
	}
	if r.DerivAt(0) != 0 {
		t.Error("deriv at 0")
	}
	// Pure ridge and pure lasso limits match L2/L1.
	ridge := ElasticNet{Strength: 0.2, L1Ratio: 0}
	if math.Abs(ridge.Value(w)-L2{Strength: 0.2}.Value(w)) > 1e-12 {
		t.Error("ridge limit wrong")
	}
	lasso := ElasticNet{Strength: 0.2, L1Ratio: 1}
	if math.Abs(lasso.Value(w)-L1{Strength: 0.2}.Value(w)) > 1e-12 {
		t.Error("lasso limit wrong")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	// Perfect separation: AUC = 1.
	data := []Example{
		ex(1, map[int32]float64{0: 2}),
		ex(1, map[int32]float64{0: 1}),
		ex(-1, map[int32]float64{0: -1}),
		ex(-1, map[int32]float64{0: -2}),
	}
	w := []float64{1}
	if got := AUC(w, data); got != 1 {
		t.Errorf("perfect AUC = %g", got)
	}
	// Inverted model: AUC = 0.
	if got := AUC([]float64{-1}, data); got != 0 {
		t.Errorf("inverted AUC = %g", got)
	}
	// Single-class data: 0.5 by convention.
	if got := AUC(w, data[:2]); got != 0.5 {
		t.Errorf("single-class AUC = %g", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All margins equal: AUC must be exactly 0.5 via average ranks.
	data := []Example{
		ex(1, map[int32]float64{0: 1}),
		ex(-1, map[int32]float64{0: 1}),
		ex(1, map[int32]float64{0: 1}),
		ex(-1, map[int32]float64{0: 1}),
	}
	if got := AUC([]float64{1}, data); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tied AUC = %g", got)
	}
}

func TestAUCMatchesPairCounting(t *testing.T) {
	// Property: AUC equals the fraction of (pos, neg) pairs ranked
	// correctly (ties count half), by brute force on small random data.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const dim = 6
		var data []Example
		for i := 0; i < 20; i++ {
			m := map[int32]float64{int32(r.Intn(dim)): float64(r.Intn(5))}
			y := 1.0
			if r.Intn(2) == 0 {
				y = -1
			}
			data = append(data, ex(y, m))
		}
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		margins := make([]float64, len(data))
		for i, e := range data {
			margins[i] = vec.Dot(w, e.X)
		}
		correct, total := 0.0, 0.0
		for i, a := range data {
			if a.Label <= 0 {
				continue
			}
			for j, b := range data {
				if b.Label > 0 {
					continue
				}
				total++
				switch {
				case margins[i] > margins[j]:
					correct++
				case margins[i] == margins[j]:
					correct += 0.5
				}
			}
		}
		if total == 0 {
			return true
		}
		return math.Abs(AUC(w, data)-correct/total) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
