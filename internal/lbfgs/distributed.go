package lbfgs

import (
	"fmt"
	"math"

	"mllibstar/internal/allreduce"
	"mllibstar/internal/data"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
	"mllibstar/internal/obs"
	"mllibstar/internal/sparse"
	"mllibstar/internal/trace"
	"mllibstar/internal/train"
	"mllibstar/internal/vec"
)

// System labels for the two distributed variants.
const (
	System     = "LBFGS"  // gradient via treeAggregate through the driver (spark.ml)
	SystemStar = "LBFGS*" // gradient via AllReduce, replicated optimizer state
)

// DistConfig configures a distributed L-BFGS run.
type DistConfig struct {
	Objective glm.Objective
	MaxIters  int
	Opts      Options

	// AllReduce selects the MLlib*-style communication pattern: gradients
	// and line-search losses are combined with Reduce-Scatter/AllGather and
	// every executor maintains an identical replica of the optimizer state.
	// When false, aggregation flows through the driver as in spark.ml.
	AllReduce bool
	// Aggregators is the treeAggregate fan-in (0 = ceil(sqrt(k))).
	Aggregators int

	TargetObjective float64
	MaxSimTime      float64
	EvalEvery       int
	Seed            int64
}

// twoLoopWorkFactor is the work charged for one two-loop recursion, per
// stored pair per model coordinate (4 passes over the vectors).
const twoLoopWorkFactor = 4

// TrainDistributed runs full-batch distributed L-BFGS on the engine
// cluster. Each iteration computes the exact gradient over all partitions;
// the line search evaluates trial objectives with additional distributed
// passes, exactly as spark.ml does.
func TrainDistributed(ctx *engine.Context, parts []data.View, dim int, cfg DistConfig,
	evalData []glm.Example, dataset string) (*train.Result, error) {

	if _, nonSmooth := cfg.Objective.Loss.(glm.Hinge); nonSmooth {
		return nil, fmt.Errorf("lbfgs: hinge loss is not differentiable; use logistic or squared")
	}
	if cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("lbfgs: MaxIters %d", cfg.MaxIters)
	}
	k := ctx.NumExecutors()
	if len(parts) != k {
		return nil, fmt.Errorf("lbfgs: %d partitions for %d executors", len(parts), k)
	}
	cfg.Opts.defaults()
	total := 0
	for _, p := range parts {
		total += p.NumRows()
	}
	if total == 0 {
		return nil, fmt.Errorf("lbfgs: empty dataset")
	}
	system := System
	if cfg.AllReduce {
		system = SystemStar
	}
	ev := train.NewEvaluator(system, dataset, cfg.Objective, evalData, cfg.EvalEvery)
	res := &train.Result{System: system, Curve: ev.Curve}

	if cfg.AllReduce {
		trainAllReduce(ctx, parts, dim, cfg, total, ev, res)
	} else {
		trainTree(ctx, parts, dim, cfg, total, ev, res)
	}
	res.SimTime = ctx.Cluster.Sim.Run()
	res.TotalBytes = ctx.Cluster.Net.TotalBytes()
	return res, nil
}

// regGradient adds the regularization gradient to the averaged loss
// gradient.
func regGradient(obj glm.Objective, w, g []float64) {
	for j := range g {
		g[j] += obj.Reg.DerivAt(w[j])
	}
}

// trainTree is the spark.ml pattern: the driver owns the model and the
// optimizer state; every gradient and every line-search evaluation is a
// stage whose task descriptors broadcast the trial model and whose results
// aggregate through the tree.
func trainTree(ctx *engine.Context, parts []data.View, dim int, cfg DistConfig,
	total int, ev *train.Evaluator, res *train.Result) {

	k := ctx.NumExecutors()
	aggs := cfg.Aggregators
	if aggs <= 0 {
		aggs = int(math.Ceil(math.Sqrt(float64(k))))
	}
	driver := ctx.Cluster.Net.Node(ctx.Cluster.Driver)

	// gradStage aggregates [Σ∇l ; Σl] for the given model. The gradient and
	// loss passes run as the task's pure closure over pooled buffers; g is
	// copied out of the pooled sum so the buffer can be recycled while the
	// optimizer state retains the gradient.
	gradStage := func(p *des.Proc, tag string, w []float64) (g []float64, f float64) {
		sum := ctx.TreeAggregateVec(p, tag, dim+1, aggs, sparse.WireBytesFor(w, nil),
			func(i int) ([]float64, float64) {
				out := ctx.GetVec(dim + 1)
				// Fused slab pass; the virtual charge stays the interface
				// path's two-pass cost (gradient + loss) — fusion is a
				// wall-clock optimization, not a simulated one.
				loss, work := data.GradAndLoss(cfg.Objective, w, parts[i], out[:dim])
				out[dim] = loss
				return out, float64(work) * 2 // gradient + loss passes
			})
		g = vec.Copy(sum[:dim])
		f = sum[dim]/float64(total) + cfg.Objective.Reg.Value(w)
		ctx.PutVec(sum)
		vec.Scale(g, 1/float64(total))
		regGradient(cfg.Objective, w, g)
		return g, f
	}
	// lossStage evaluates only the objective (cheaper result, same
	// broadcast) for line-search trials.
	lossStage := func(p *des.Proc, tag string, w []float64) float64 {
		sum := ctx.TreeAggregateVec(p, tag, 1, aggs, sparse.WireBytesFor(w, nil),
			func(i int) ([]float64, float64) {
				out := ctx.GetVec(1)
				out[0] = data.LossSum(cfg.Objective, w, parts[i])
				return out, float64(parts[i].NNZ())
			})
		f := sum[0]/float64(total) + cfg.Objective.Reg.Value(w)
		ctx.PutVec(sum)
		return f
	}

	ctx.Cluster.Sim.Spawn("driver:lbfgs", func(p *des.Proc) {
		st := New(cfg.Opts)
		w := make([]float64, dim)
		ev.Record(0, p.Now(), w)
		g, f := gradStage(p, "lb0", w)
		st.Update(w, g)
		for it := 1; it <= cfg.MaxIters; it++ {
			obs.Active().SetStep(it, p.Now())
			if math.Sqrt(vec.Norm2Sq(g)) < gradTolerance {
				break
			}
			driver.ComputeKind(p, twoLoopWorkFactor*float64(st.Pairs()+1)*float64(dim), trace.Update, "two-loop")
			dir := st.Direction(g)
			gd := dot(g, dir)
			if gd >= 0 {
				st.pairs = st.pairs[:0]
				dir = st.Direction(g)
				gd = dot(g, dir)
			}
			step := cfg.Opts.InitialStep
			trial := make([]float64, dim)
			accepted := false
			var fNew float64
			for ls := 0; ls < cfg.Opts.MaxLineSearch; ls++ {
				copy(trial, w)
				vec.AddScaled(trial, dir, step)
				fNew = lossStage(p, fmt.Sprintf("ls%d.%d", it, ls), trial)
				if fNew <= f+cfg.Opts.ArmijoC*step*gd {
					accepted = true
					break
				}
				step /= 2
			}
			if !accepted {
				break
			}
			copy(w, trial)
			f = fNew
			g, f = gradStage(p, fmt.Sprintf("lb%d", it), w)
			st.Update(w, g)
			res.CommSteps = it
			res.Updates++
			obs.Active().Updates(it, ctx.Cluster.Driver, 1, p.Now())
			if obj, recorded := ev.Record(it, p.Now(), w); recorded {
				if cfg.TargetObjective > 0 && obj <= cfg.TargetObjective {
					break
				}
			}
			if cfg.MaxSimTime > 0 && p.Now() >= cfg.MaxSimTime {
				break
			}
		}
		res.FinalW = vec.Copy(w)
	})
}

// trainAllReduce is the MLlib*-style pattern: executors hold identical
// replicas of the model and optimizer state; the gradient is combined with
// AllReduce; line-search losses are combined with a scalar AllReduce. The
// driver only schedules one stage per iteration. Because the simulation is
// deterministic and the replicas are identical, the replica computation is
// performed once and its cost charged to every executor.
func trainAllReduce(ctx *engine.Context, parts []data.View, dim int, cfg DistConfig,
	total int, ev *train.Evaluator, res *train.Result) {

	k := ctx.NumExecutors()
	st := New(cfg.Opts)
	w := make([]float64, dim)
	f := math.NaN()
	var g []float64
	done := false

	// Shared per-iteration state. In a real replicated L-BFGS every
	// executor computes these identically; here replica 0 computes them
	// once, every executor is charged the replicated cost, and barriers
	// order the handoff (replica 0 always writes before any reader passes
	// the barrier, because the barrier releases only after all arrive).
	shared := struct {
		dir    []float64
		gd     float64
		trial  []float64
		accept bool
		stop   bool // line search exhausted or converged
	}{trial: make([]float64, dim)}

	// iteration runs one full L-BFGS step inside a stage, on executor
	// index i, synchronized by bar.
	iteration := func(p *des.Proc, ex *engine.Executor, i, it int, bar *des.Barrier) {
		// Partial gradient and loss over the local partition. The work is
		// structural (one gradient pass + one loss pass over the partition's
		// nonzeros), so the charge overlaps the arithmetic on the offload
		// pool. The closure only reads w — the next write to w (replica 0's
		// line-search acceptance) sits behind the AllReduce and barrier this
		// closure's join precedes.
		partial := make([]float64, dim+1)
		if allreduce.OverlapEnabled() {
			// Overlapped schedule: hand the collective a two-pass producer
			// instead of a finished vector, so gradient chunks hit the wire
			// while later coordinate blocks are still being accumulated. Bits
			// and total charge match the one-shot pass exactly (data.GradStream
			// contract); only virtual time moves.
			gs := data.NewGradStream(cfg.Objective, w, parts[i], partial, true, float64(parts[i].NNZ())*2)
			allreduce.AverageProduced(p, ex, ctx.Cluster.Execs, i, fmt.Sprintf("lbg%d", it), partial, gs)
		} else {
			ex.ChargeAsync(p, float64(parts[i].NNZ())*2, func() {
				partial[dim], _ = data.GradAndLoss(cfg.Objective, w, parts[i], partial[:dim])
			})
			allreduce.Average(p, ex, ctx.Cluster.Execs, i, fmt.Sprintf("lbg%d", it), partial)
		}

		// Replicated optimizer math: every executor pays for it; replica 0
		// performs it.
		ex.ChargeKind(p, twoLoopWorkFactor*float64(st.Pairs()+1)*float64(dim), trace.Update, "two-loop")
		if i == 0 {
			g = vec.Copy(partial[:dim])
			vec.Scale(g, float64(k)/float64(total)) // mean of partials -> sum/total
			regGradient(cfg.Objective, w, g)
			f = partial[dim]*float64(k)/float64(total) + cfg.Objective.Reg.Value(w)
			st.Update(w, g)
			shared.stop = math.Sqrt(vec.Norm2Sq(g)) < gradTolerance
			if !shared.stop {
				shared.dir = st.Direction(g)
				shared.gd = dot(g, shared.dir)
				if shared.gd >= 0 {
					st.pairs = st.pairs[:0]
					shared.dir = st.Direction(g)
					shared.gd = dot(g, shared.dir)
				}
			}
		}
		bar.Arrive(p)
		if shared.stop {
			if i == 0 {
				done = true
			}
			return
		}
		// Line search: each trial is a local loss pass plus a scalar
		// AllReduce so all replicas observe the same total.
		step := cfg.Opts.InitialStep
		for ls := 0; ls < cfg.Opts.MaxLineSearch; ls++ {
			if i == 0 {
				copy(shared.trial, w)
				vec.AddScaled(shared.trial, shared.dir, step)
				shared.accept = false
			}
			bar.Arrive(p) // trial visible to all replicas
			lossVec := []float64{0}
			ex.ChargeAsync(p, float64(parts[i].NNZ()), func() {
				lossVec[0] = data.LossSum(cfg.Objective, shared.trial, parts[i])
			})
			allreduce.Sum(p, ex, ctx.Cluster.Execs, i, fmt.Sprintf("ls%d.%d", it, ls), lossVec)
			if i == 0 {
				fNew := lossVec[0]/float64(total) + cfg.Objective.Reg.Value(shared.trial)
				if fNew <= f+cfg.Opts.ArmijoC*step*shared.gd {
					shared.accept = true
					copy(w, shared.trial)
					f = fNew
				}
				step /= 2
			}
			bar.Arrive(p) // decision visible to all replicas
			if shared.accept {
				return
			}
		}
		if i == 0 {
			done = true // line search exhausted
		}
	}

	ctx.Cluster.Sim.Spawn("driver:lbfgsstar", func(p *des.Proc) {
		ev.Record(0, p.Now(), w)
		for it := 1; it <= cfg.MaxIters && !done; it++ {
			obs.Active().SetStep(it, p.Now())
			bar := des.NewBarrier(ctx.Cluster.Sim, fmt.Sprintf("lbfgs-it%d", it), k)
			if sink := obs.Active(); sink.Causal() {
				name := fmt.Sprintf("lbfgs-it%d", it)
				bar.Observe(func(w *des.Proc, gen int, arrive, release float64) {
					sink.CausalBarrier(name, gen, obs.CausalProcID(w.Name(), w.ID()), arrive, release)
				})
			}
			tasks := make([]engine.Task, k)
			for i := 0; i < k; i++ {
				i := i
				tasks[i] = engine.Task{
					Exec: ctx.Cluster.Execs[i],
					Run: func(p *des.Proc, ex *engine.Executor) (any, float64) {
						iteration(p, ex, i, it, bar)
						return nil, 0
					},
				}
			}
			ctx.RunStage(p, fmt.Sprintf("lbfgsstar-%d", it), tasks)
			if done {
				break
			}
			res.CommSteps = it
			res.Updates++
			obs.Active().Updates(it, "", 1, p.Now())
			if obj, recorded := ev.Record(it, p.Now(), w); recorded {
				if cfg.TargetObjective > 0 && obj <= cfg.TargetObjective {
					break
				}
			}
			if cfg.MaxSimTime > 0 && p.Now() >= cfg.MaxSimTime {
				break
			}
		}
		res.FinalW = vec.Copy(w)
	})
}
