package lbfgs_test

import (
	"math"
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/lbfgs"
)

func workload(k int) (*data.Dataset, []data.View) {
	d := data.Generate(data.Spec{
		Name: "toy", Rows: 1200, Cols: 120, NNZPerRow: 8, Seed: 11, NoiseRate: 0.02,
	})
	return d, d.Partition(k, 3)
}

func distCfg(allReduce bool) lbfgs.DistConfig {
	return lbfgs.DistConfig{
		Objective: glm.LogReg(0.01),
		MaxIters:  40,
		AllReduce: allReduce,
	}
}

func TestBothVariantsMatchSequentialOptimum(t *testing.T) {
	d, parts := workload(4)
	seq, err := lbfgs.Minimize(glm.LogReg(0.01), d.Examples, d.Features, 80, lbfgs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, allReduce := range []bool{false, true} {
		_, _, ctx := clusters.Test(4).Build(nil)
		res, err := lbfgs.TrainDistributed(ctx, parts, d.Features, distCfg(allReduce), d.Examples, d.Name)
		if err != nil {
			t.Fatal(err)
		}
		if gap := res.Curve.Best() - seq.Objective; gap > 0.01 {
			t.Errorf("allReduce=%v: best %g vs sequential %g (gap %g)",
				allReduce, res.Curve.Best(), seq.Objective, gap)
		}
	}
}

func TestVariantsComputeSameIterates(t *testing.T) {
	// Both communication patterns implement the same algorithm on the same
	// full-batch gradient: their final models must agree closely.
	d, parts := workload(4)
	finals := make([][]float64, 2)
	for i, allReduce := range []bool{false, true} {
		_, _, ctx := clusters.Test(4).Build(nil)
		cfg := distCfg(allReduce)
		cfg.MaxIters = 15
		res, err := lbfgs.TrainDistributed(ctx, parts, d.Features, cfg, d.Examples, d.Name)
		if err != nil {
			t.Fatal(err)
		}
		finals[i] = res.FinalW
	}
	for j := range finals[0] {
		if math.Abs(finals[0][j]-finals[1][j]) > 1e-6*(1+math.Abs(finals[0][j])) {
			t.Fatalf("iterates diverge at coord %d: %g vs %g", j, finals[0][j], finals[1][j])
		}
	}
}

func TestAllReduceVariantMovesLessDriverTraffic(t *testing.T) {
	// The point of LBFGS*: no model bytes through the driver.
	d := data.Generate(data.Spec{Name: "wide", Rows: 600, Cols: 20000, NNZPerRow: 6, Seed: 2})
	parts := d.Partition(8, 3)
	driverBytes := func(allReduce bool) float64 {
		_, cl, ctx := clusters.Test(8).Build(nil)
		cfg := distCfg(allReduce)
		cfg.MaxIters = 5
		if _, err := lbfgs.TrainDistributed(ctx, parts, d.Features, cfg, d.Examples, d.Name); err != nil {
			t.Fatal(err)
		}
		return cl.Net.Node("driver").BytesSent() + cl.Net.Node("driver").BytesRecv()
	}
	tree, ar := driverBytes(false), driverBytes(true)
	if ar > tree/10 {
		t.Errorf("driver traffic: allreduce %g vs tree %g — expected >10x reduction", ar, tree)
	}
}

func TestValidation(t *testing.T) {
	_, _, ctx := clusters.Test(2).Build(nil)
	cfg := distCfg(false)
	cfg.Objective = glm.SVM(0)
	if _, err := lbfgs.TrainDistributed(ctx, make([]data.View, 2), 10, cfg, nil, "d"); err == nil {
		t.Error("want error for hinge")
	}
	_, _, ctx2 := clusters.Test(2).Build(nil)
	cfg2 := distCfg(false)
	cfg2.MaxIters = 0
	if _, err := lbfgs.TrainDistributed(ctx2, make([]data.View, 2), 10, cfg2, nil, "d"); err == nil {
		t.Error("want error for zero iters")
	}
	_, _, ctx3 := clusters.Test(3).Build(nil)
	if _, err := lbfgs.TrainDistributed(ctx3, make([]data.View, 2), 10, distCfg(false), nil, "d"); err == nil {
		t.Error("want error for partition mismatch")
	}
	_, _, ctx4 := clusters.Test(2).Build(nil)
	if _, err := lbfgs.TrainDistributed(ctx4, make([]data.View, 2), 10, distCfg(false), nil, "d"); err == nil {
		t.Error("want error for empty dataset")
	}
}

func TestDeterministic(t *testing.T) {
	d, parts := workload(3)
	run := func() float64 {
		_, _, ctx := clusters.Test(3).Build(nil)
		cfg := distCfg(true)
		cfg.MaxIters = 8
		res, err := lbfgs.TrainDistributed(ctx, parts, d.Features, cfg, d.Examples, d.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	if a, b := run(), run(); a != b {
		t.Errorf("sim times differ: %g vs %g", a, b)
	}
}
