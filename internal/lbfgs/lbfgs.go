// Package lbfgs implements the limited-memory BFGS optimizer [27 in the
// paper] and its distributed variants. The paper's conclusion singles out
// spark.ml's L-BFGS as the natural follow-up question: do the MLlib*
// techniques transfer to a second-order method? This package answers it by
// providing both communication patterns for the distributed gradient:
//
//   - TreeAggregate (how spark.ml actually aggregates) — the driver remains
//     on the critical path of every iteration, and
//   - AllReduce — the gradient is averaged with Reduce-Scatter + AllGather,
//     removing the driver exactly as MLlib* does for first-order MGD.
//
// L-BFGS needs a differentiable objective; use the logistic or squared
// loss (the hinge subgradient breaks the curvature-pair update).
package lbfgs

import (
	"fmt"
	"math"

	"mllibstar/internal/glm"
	"mllibstar/internal/vec"
)

// Options configures the optimizer.
type Options struct {
	// Memory is the number of curvature pairs kept (default 8).
	Memory int
	// MaxLineSearch bounds backtracking steps per iteration (default 20).
	MaxLineSearch int
	// InitialStep is the first step length tried (default 1, the Newton
	// scaling that makes L-BFGS fast).
	InitialStep float64
	// ArmijoC is the sufficient-decrease constant (default 1e-4).
	ArmijoC float64
}

func (o *Options) defaults() {
	if o.Memory <= 0 {
		o.Memory = 8
	}
	if o.MaxLineSearch <= 0 {
		o.MaxLineSearch = 20
	}
	if o.InitialStep <= 0 {
		o.InitialStep = 1
	}
	if o.ArmijoC <= 0 {
		o.ArmijoC = 1e-4
	}
}

// pair is one (s, y) curvature pair with its cached 1/(y·s).
type pair struct {
	s, y []float64
	rho  float64
}

// State is the iterative L-BFGS state. The caller supplies the objective
// value and gradient at each iterate (which is what makes the distributed
// variants possible: the gradient can come from anywhere), and State turns
// them into the next iterate.
type State struct {
	opts  Options
	pairs []pair // most recent last
	prevW []float64
	prevG []float64
	dir   []float64
	alpha []float64
}

// New returns an empty optimizer state.
func New(opts Options) *State {
	opts.defaults()
	return &State{opts: opts}
}

// Direction computes the descent direction -H·g using the two-loop
// recursion over the stored curvature pairs. The first iteration (no
// pairs) returns steepest descent.
func (st *State) Direction(g []float64) []float64 {
	if cap(st.dir) < len(g) {
		st.dir = make([]float64, len(g))
		st.alpha = make([]float64, st.opts.Memory)
	}
	q := st.dir[:len(g)]
	copy(q, g)

	for i := len(st.pairs) - 1; i >= 0; i-- {
		p := st.pairs[i]
		a := p.rho * dot(p.s, q)
		st.alpha[i] = a
		vec.AddScaled(q, p.y, -a)
	}
	// Initial Hessian scaling gamma = (s·y)/(y·y) from the newest pair.
	if n := len(st.pairs); n > 0 {
		p := st.pairs[n-1]
		gamma := dot(p.s, p.y) / vec.Norm2Sq(p.y)
		vec.Scale(q, gamma)
	}
	for i := 0; i < len(st.pairs); i++ {
		p := st.pairs[i]
		b := p.rho * dot(p.y, q)
		vec.AddScaled(q, p.s, st.alpha[i]-b)
	}
	vec.Scale(q, -1)
	return q
}

// Update records the new iterate and its gradient, maintaining the
// curvature-pair window. Pairs with non-positive curvature are skipped
// (they would break positive-definiteness).
func (st *State) Update(w, g []float64) {
	if st.prevW != nil {
		s := make([]float64, len(w))
		y := make([]float64, len(g))
		for i := range w {
			s[i] = w[i] - st.prevW[i]
			y[i] = g[i] - st.prevG[i]
		}
		if ys := dot(y, s); ys > 1e-12 {
			st.pairs = append(st.pairs, pair{s: s, y: y, rho: 1 / ys})
			if len(st.pairs) > st.opts.Memory {
				st.pairs = st.pairs[1:]
			}
		}
	} else {
		st.prevW = make([]float64, len(w))
		st.prevG = make([]float64, len(g))
	}
	copy(st.prevW, w)
	copy(st.prevG, g)
}

// Pairs returns the number of stored curvature pairs.
func (st *State) Pairs() int { return len(st.pairs) }

func dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Result summarizes a sequential minimization.
type Result struct {
	W          []float64
	Objective  float64
	Iterations int
	Evals      int // objective/gradient evaluations (line search included)
	Converged  bool
}

// gradTolerance declares convergence when ‖g‖ drops below this value.
const gradTolerance = 1e-6

// Minimize runs full-batch L-BFGS on the objective over data, starting from
// the zero model, for at most maxIters iterations.
func Minimize(obj glm.Objective, data []glm.Example, dim, maxIters int, opts Options) (Result, error) {
	if _, nonSmooth := obj.Loss.(glm.Hinge); nonSmooth {
		return Result{}, fmt.Errorf("lbfgs: hinge loss is not differentiable; use logistic or squared")
	}
	opts.defaults()
	st := New(opts)
	w := make([]float64, dim)
	res := Result{}

	value := func(w []float64) float64 {
		res.Evals++
		return obj.Value(w, data)
	}
	gradient := func(w []float64) []float64 {
		g := make([]float64, dim)
		obj.AddGradient(w, data, g)
		vec.Scale(g, 1/float64(len(data)))
		for j := range g {
			g[j] += obj.Reg.DerivAt(w[j])
		}
		return g
	}

	f := value(w)
	g := gradient(w)
	st.Update(w, g)
	for it := 0; it < maxIters; it++ {
		res.Iterations = it + 1
		if math.Sqrt(vec.Norm2Sq(g)) < gradTolerance {
			res.Converged = true
			break
		}
		dir := st.Direction(g)
		gd := dot(g, dir)
		if gd >= 0 {
			// Not a descent direction (numerical trouble): restart memory.
			st.pairs = st.pairs[:0]
			dir = st.Direction(g)
			gd = dot(g, dir)
		}
		step := opts.InitialStep
		trial := make([]float64, dim)
		var fNew float64
		accepted := false
		for ls := 0; ls < opts.MaxLineSearch; ls++ {
			copy(trial, w)
			vec.AddScaled(trial, dir, step)
			fNew = value(trial)
			if fNew <= f+opts.ArmijoC*step*gd {
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted {
			res.Converged = true // cannot make progress: treat as converged
			break
		}
		copy(w, trial)
		f = fNew
		g = gradient(w)
		st.Update(w, g)
	}
	res.W = w
	res.Objective = f
	return res, nil
}
