package lbfgs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mllibstar/internal/glm"
	"mllibstar/internal/opt"
	"mllibstar/internal/vec"
)

func logRegData(rng *rand.Rand, n, dim, nnz int) []glm.Example {
	truth := make([]float64, dim)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	data := make([]glm.Example, n)
	for i := range data {
		m := map[int32]float64{}
		for j := 0; j < nnz; j++ {
			m[int32(rng.Intn(dim))] = rng.NormFloat64()
		}
		x := vec.SparseFromMap(m)
		y := 1.0
		if vec.Dot(truth, x) < 0 {
			y = -1
		}
		data[i] = glm.Example{Label: y, X: x}
	}
	return data
}

func TestMinimizeLogisticConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := logRegData(rng, 400, 30, 6)
	obj := glm.LogReg(0.1) // strongly convex: unique optimum
	res, err := Minimize(obj, data, 30, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("not converged after %d iterations (obj %g)", res.Iterations, res.Objective)
	}
	// Gradient at the solution must be ~zero.
	g := make([]float64, 30)
	obj.AddGradient(res.W, data, g)
	vec.Scale(g, 1/400.0)
	for j := range g {
		g[j] += obj.Reg.DerivAt(res.W[j])
	}
	if norm := math.Sqrt(vec.Norm2Sq(g)); norm > 1e-4 {
		t.Errorf("gradient norm at solution = %g", norm)
	}
}

func TestLBFGSBeatsGradientDescentInIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := logRegData(rng, 500, 40, 8)
	obj := glm.LogReg(0.01)

	res, err := Minimize(obj, data, 40, 60, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Full-batch GD with the same iteration budget.
	w := make([]float64, 40)
	scratch := make([]float64, 40)
	for it := 0; it < 60; it++ {
		opt.MGDStep(obj, w, data, 0.5, scratch)
	}
	gdObj := obj.Value(w, data)
	if res.Objective >= gdObj {
		t.Errorf("L-BFGS %g not below GD %g after equal iterations", res.Objective, gdObj)
	}
}

func TestMinimizeRejectsHinge(t *testing.T) {
	if _, err := Minimize(glm.SVM(0), nil, 4, 10, Options{}); err == nil {
		t.Error("want error for hinge loss")
	}
}

func TestDirectionIsDescentProperty(t *testing.T) {
	// Property: after any sequence of valid curvature updates, the two-loop
	// direction satisfies <g, d> < 0 for nonzero g.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 5 + rng.Intn(20)
		st := New(Options{Memory: 5})
		w := make([]float64, dim)
		g := make([]float64, dim)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		st.Update(w, g)
		for step := 0; step < 6; step++ {
			for i := range w {
				w[i] += rng.NormFloat64() * 0.1
			}
			// A synthetic PD-quadratic gradient: g = A·w with A = I + small.
			for i := range g {
				g[i] = w[i] + 0.1*math.Sin(float64(i))
			}
			st.Update(w, g)
		}
		dir := st.Direction(g)
		gd := 0.0
		norm := 0.0
		for i := range g {
			gd += g[i] * dir[i]
			norm += g[i] * g[i]
		}
		return norm == 0 || gd < 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemoryWindowBounded(t *testing.T) {
	st := New(Options{Memory: 3})
	dim := 4
	w := make([]float64, dim)
	g := make([]float64, dim)
	rng := rand.New(rand.NewSource(3))
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	st.Update(w, g)
	for it := 0; it < 10; it++ {
		for i := range w {
			w[i] += rng.Float64() + 0.1
			g[i] = w[i] // PD quadratic: ensures positive curvature
		}
		st.Update(w, g)
	}
	if st.Pairs() != 3 {
		t.Errorf("pairs = %d, want 3", st.Pairs())
	}
}

func TestNonPositiveCurvaturePairsSkipped(t *testing.T) {
	st := New(Options{Memory: 5})
	w := []float64{0, 0}
	g := []float64{1, 1}
	st.Update(w, g)
	// Same gradient after a move: y = 0, curvature 0 — must be skipped.
	st.Update([]float64{1, 1}, []float64{1, 1})
	if st.Pairs() != 0 {
		t.Errorf("pairs = %d, want 0", st.Pairs())
	}
}
