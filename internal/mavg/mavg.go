// Package mavg implements "MLlib + model averaging", the intermediate
// design point of the paper's Figure 3(b): the SendModel paradigm (each
// executor runs many local SGD updates per communication step and ships its
// local model) combined with MLlib's original communication pattern
// (broadcast from the driver, hierarchical treeAggregate back to it).
//
// It removes bottleneck B1 (one update per step) but keeps bottleneck B2
// (the driver and intermediate aggregators serialize all model traffic),
// which is what isolates the contribution of AllReduce in the evaluation.
package mavg

import (
	"fmt"

	"mllibstar/internal/data"
	"mllibstar/internal/des"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
	"mllibstar/internal/mllib"
	"mllibstar/internal/obs"
	"mllibstar/internal/opt"
	"mllibstar/internal/sparse"
	"mllibstar/internal/trace"
	"mllibstar/internal/train"
	"mllibstar/internal/vec"
)

// System is the curve label for this trainer.
const System = "MLlib+MA"

// Train runs SendModel with model averaging over treeAggregate. parts must
// have one partition per executor, in executor order.
func Train(ctx *engine.Context, parts []data.View, dim int, prm train.Params,
	evalData []glm.Example, dataset string) (*train.Result, error) {

	if err := prm.Validate(); err != nil {
		return nil, err
	}
	k := ctx.NumExecutors()
	if len(parts) != k {
		return nil, fmt.Errorf("mavg: %d partitions for %d executors", len(parts), k)
	}

	sim := ctx.Cluster.Sim
	net := ctx.Cluster.Net
	driver := net.Node(ctx.Cluster.Driver)
	ev := train.NewEvaluator(System, dataset, prm.Objective, evalData, prm.EvalEvery)
	aggs := mllib.Aggregators(prm, k)
	sched := prm.Schedule()

	res := &train.Result{System: System, Curve: ev.Curve}
	w := make([]float64, dim)
	// Per-task optimizer scratch, reused across steps. Task i's closure for
	// step t+1 cannot start before step t's stage barrier, so each slot is
	// touched by one closure at a time.
	scratch := make([]*opt.PassScratch, k)
	for i := range scratch {
		scratch[i] = opt.NewPassScratch()
	}

	sim.Spawn("driver:mavg", func(p *des.Proc) {
		ev.Record(0, p.Now(), w)
		for t := 1; t <= prm.MaxSteps; t++ {
			obs.Active().SetStep(t, p.Now())
			stepW := w
			// The task descriptors broadcast stepW; with sparse exchange on,
			// the broadcast is charged at the model's nonzero-coded size, and
			// the local models ship back as deltas against stepW — the
			// reference every endpoint of this stage holds.
			sum := ctx.TreeAggregateVecDelta(p, fmt.Sprintf("ma%d", t), dim, aggs, sparse.WireBytesFor(stepW, nil), stepW,
				func(i int) ([]float64, float64) {
					local := ctx.GetVec(dim)
					copy(local, stepW)
					work := 0
					etaT := opt.Const(sched(t - 1))
					for pass := 0; pass < prm.LocalPasses; pass++ {
						work += opt.LocalPassView(prm.Objective, local, parts[i], etaT, 0, scratch[i])
					}
					return local, float64(work)
				})
			var stepUpdates int64
			for i := range parts {
				stepUpdates += int64(prm.LocalPasses * parts[i].NumRows())
			}
			res.Updates += stepUpdates
			obs.Active().Updates(t, "", stepUpdates, p.Now())
			// Model averaging at the driver: w ← (1/k)·Σ local models.
			copy(w, sum)
			vec.Scale(w, 1/float64(k))
			ctx.PutVec(sum)
			driver.ComputeKind(p, float64(dim), trace.Update, "model averaging")

			res.CommSteps = t
			if obj, recorded := ev.Record(t, p.Now(), w); recorded {
				if prm.TargetObjective > 0 && obj <= prm.TargetObjective {
					break
				}
			}
			if prm.MaxSimTime > 0 && p.Now() >= prm.MaxSimTime {
				break
			}
		}
	})
	res.SimTime = sim.Run()
	res.FinalW = vec.Copy(w)
	res.TotalBytes = net.TotalBytes()
	return res, nil
}
