package mavg_test

import (
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/mavg"
	"mllibstar/internal/mllib"
	"mllibstar/internal/train"
)

func workload(k int) (*data.Dataset, []data.View) {
	d := data.Generate(data.Spec{
		Name: "toy", Rows: 800, Cols: 100, NNZPerRow: 8, Seed: 11, NoiseRate: 0.02,
	})
	return d, d.Partition(k, 3)
}

func params() train.Params {
	return train.Params{
		Objective: glm.SVM(0),
		Eta:       0.1,
		Decay:     true,
		MaxSteps:  20,
		Seed:      5,
	}
}

func TestManyUpdatesPerStep(t *testing.T) {
	d, parts := workload(4)
	_, _, ctx := clusters.Test(4).Build(nil)
	res, err := mavg.Train(ctx, parts, d.Features, params(), d.Examples, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	// SendModel applies |partition| local updates per worker per step.
	wantPerStep := int64(len(d.Examples))
	if res.Updates != wantPerStep*int64(res.CommSteps) {
		t.Errorf("updates = %d, want %d per step x %d steps", res.Updates, wantPerStep, res.CommSteps)
	}
}

func TestConvergesFasterPerStepThanMLlib(t *testing.T) {
	d, parts := workload(4)
	steps := func(fn func() (*train.Result, error)) float64 {
		res, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		return res.Curve.Best()
	}
	_, _, ctxA := clusters.Test(4).Build(nil)
	prm := params()
	prm.MaxSteps = 15
	maBest := steps(func() (*train.Result, error) {
		return mavg.Train(ctxA, parts, d.Features, prm, d.Examples, d.Name)
	})
	_, _, ctxB := clusters.Test(4).Build(nil)
	prmML := prm
	prmML.Eta = 0.5
	prmML.BatchFraction = 0.2
	mlBest := steps(func() (*train.Result, error) {
		return mllib.Train(ctxB, parts, d.Features, prmML, d.Examples, d.Name)
	})
	if maBest >= mlBest {
		t.Errorf("after 15 steps: MLlib+MA best %g not below MLlib best %g", maBest, mlBest)
	}
}

func TestLocalPassesMultiplier(t *testing.T) {
	d, parts := workload(2)
	run := func(passes int) *train.Result {
		_, _, ctx := clusters.Test(2).Build(nil)
		prm := params()
		prm.MaxSteps = 3
		prm.LocalPasses = passes
		res, err := mavg.Train(ctx, parts, d.Features, prm, d.Examples, d.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, three := run(1), run(3)
	if three.Updates != 3*one.Updates {
		t.Errorf("updates with 3 passes = %d, want 3x %d", three.Updates, one.Updates)
	}
	if three.SimTime <= one.SimTime {
		t.Error("more local passes should cost more simulated time")
	}
}

func TestSameCommunicationPatternAsMLlib(t *testing.T) {
	// MLlib+MA keeps MLlib's communication: per-step driver traffic must be
	// essentially the same (model broadcast + model-sized aggregation).
	d := data.Generate(data.Spec{Name: "m", Rows: 200, Cols: 5000, NNZPerRow: 5, Seed: 2})
	parts := d.Partition(4, 3)
	prm := params()
	prm.MaxSteps = 4
	prm.Aggregators = 4
	prm.BatchFraction = 0.5

	_, clA, ctxA := clusters.Test(4).Build(nil)
	if _, err := mavg.Train(ctxA, parts, d.Features, prm, d.Examples, d.Name); err != nil {
		t.Fatal(err)
	}
	_, clB, ctxB := clusters.Test(4).Build(nil)
	if _, err := mllib.Train(ctxB, parts, d.Features, prm, d.Examples, d.Name); err != nil {
		t.Fatal(err)
	}
	ma := clA.Net.Node("driver").BytesSent() + clA.Net.Node("driver").BytesRecv()
	ml := clB.Net.Node("driver").BytesSent() + clB.Net.Node("driver").BytesRecv()
	ratio := ma / ml
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("driver traffic ratio MA/MLlib = %g, want ~1", ratio)
	}
}

func TestErrors(t *testing.T) {
	_, _, ctx := clusters.Test(2).Build(nil)
	if _, err := mavg.Train(ctx, make([]data.View, 3), 10, params(), nil, "d"); err == nil {
		t.Error("want partition mismatch error")
	}
}
