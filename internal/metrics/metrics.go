// Package metrics records and analyzes convergence curves: objective value
// as a function of communication steps and of simulated time — the two
// x-axes of the paper's Figures 4–6 — plus the speedup-at-target-loss
// computation the paper uses ("speedup is calculated when the accuracy loss
// compared to the optimum is 0.01").
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Point is one observation of a training run.
type Point struct {
	Step      int     // communication steps completed
	Time      float64 // simulated seconds elapsed
	Objective float64 // f(w, X)
}

// Curve is the convergence trajectory of one system on one workload.
type Curve struct {
	System  string
	Dataset string
	Points  []Point
}

// NewCurve returns an empty curve.
func NewCurve(system, dataset string) *Curve {
	return &Curve{System: system, Dataset: dataset}
}

// Add appends an observation. Steps and times must be non-decreasing.
func (c *Curve) Add(step int, time, objective float64) {
	if n := len(c.Points); n > 0 {
		last := c.Points[n-1]
		if step < last.Step || time < last.Time {
			panic(fmt.Sprintf("metrics: non-monotone point step=%d time=%g after %+v", step, time, last))
		}
	}
	c.Points = append(c.Points, Point{Step: step, Time: time, Objective: objective})
}

// Len returns the number of points.
func (c *Curve) Len() int { return len(c.Points) }

// Final returns the last observation, or a zero Point for an empty curve.
func (c *Curve) Final() Point {
	if len(c.Points) == 0 {
		return Point{}
	}
	return c.Points[len(c.Points)-1]
}

// Best returns the minimum objective seen.
func (c *Curve) Best() float64 {
	best := math.Inf(1)
	for _, p := range c.Points {
		if p.Objective < best {
			best = p.Objective
		}
	}
	return best
}

// StepsToReach returns the first step at which the objective is ≤ target.
func (c *Curve) StepsToReach(target float64) (int, bool) {
	for _, p := range c.Points {
		if p.Objective <= target {
			return p.Step, true
		}
	}
	return 0, false
}

// TimeToReach returns the first simulated time at which the objective is ≤
// target.
func (c *Curve) TimeToReach(target float64) (float64, bool) {
	for _, p := range c.Points {
		if p.Objective <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// Speedup compares a baseline curve against an improved one at the given
// objective target. It returns the step and time speedup factors
// (baseline/improved). ok is false when either curve misses the target —
// which itself reproduces results like "MLlib cannot reach the optimum on
// url/kddb without regularization".
func Speedup(baseline, improved *Curve, target float64) (stepX, timeX float64, ok bool) {
	bs, ok1 := baseline.StepsToReach(target)
	bt, _ := baseline.TimeToReach(target)
	is, ok2 := improved.StepsToReach(target)
	it, _ := improved.TimeToReach(target)
	if !ok1 || !ok2 || is == 0 || it == 0 {
		return 0, 0, false
	}
	return float64(bs) / float64(is), bt / it, true
}

// CSV renders the curve as "system,dataset,step,time,objective" rows.
func (c *Curve) CSV(includeHeader bool) string {
	var b strings.Builder
	if includeHeader {
		b.WriteString("system,dataset,step,time,objective\n")
	}
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%s,%s,%d,%.9f,%.9f\n", c.System, c.Dataset, p.Step, p.Time, p.Objective)
	}
	return b.String()
}

// Table renders several curves side by side at a fixed set of times using
// last-observation-carried-forward interpolation — the textual analogue of
// the paper's objective-vs-time plots.
func Table(curves []*Curve, times []float64) string {
	var b strings.Builder
	b.WriteString("time(s)")
	for _, c := range curves {
		fmt.Fprintf(&b, "\t%s", c.System)
	}
	b.WriteByte('\n')
	for _, t := range times {
		fmt.Fprintf(&b, "%.2f", t)
		for _, c := range curves {
			v, seen := math.NaN(), false
			for _, p := range c.Points {
				if p.Time <= t {
					v, seen = p.Objective, true
				} else {
					break
				}
			}
			if seen {
				fmt.Fprintf(&b, "\t%.4f", v)
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LogTimes returns n logarithmically spaced times in [lo, hi] for sampling
// objective-vs-time tables (the paper's time axes are logarithmic).
func LogTimes(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic(fmt.Sprintf("metrics: LogTimes(%g, %g, %d)", lo, hi, n))
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}
