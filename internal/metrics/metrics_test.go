package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func curveFrom(objs []float64) *Curve {
	c := NewCurve("sys", "ds")
	for i, o := range objs {
		c.Add(i, float64(i)*0.5, o)
	}
	return c
}

func TestAddMonotoneGuard(t *testing.T) {
	c := NewCurve("s", "d")
	c.Add(0, 0, 1)
	c.Add(1, 1, 0.9)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for decreasing step")
		}
	}()
	c.Add(0, 2, 0.8)
}

func TestAddTimeGuard(t *testing.T) {
	c := NewCurve("s", "d")
	c.Add(0, 5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for decreasing time")
		}
	}()
	c.Add(1, 4, 0.9)
}

func TestFinalAndBest(t *testing.T) {
	c := curveFrom([]float64{1, 0.4, 0.6})
	if c.Final().Objective != 0.6 || c.Final().Step != 2 {
		t.Errorf("final = %+v", c.Final())
	}
	if c.Best() != 0.4 {
		t.Errorf("best = %g", c.Best())
	}
	empty := NewCurve("s", "d")
	if empty.Final() != (Point{}) || !math.IsInf(empty.Best(), 1) {
		t.Error("empty curve accessors wrong")
	}
}

func TestReachTargets(t *testing.T) {
	c := curveFrom([]float64{1, 0.8, 0.5, 0.3})
	if s, ok := c.StepsToReach(0.5); !ok || s != 2 {
		t.Errorf("steps = %d, %v", s, ok)
	}
	if tm, ok := c.TimeToReach(0.5); !ok || tm != 1.0 {
		t.Errorf("time = %g, %v", tm, ok)
	}
	if _, ok := c.StepsToReach(0.1); ok {
		t.Error("unreached target reported reached")
	}
}

func TestSpeedup(t *testing.T) {
	slow := NewCurve("slow", "d")
	fast := NewCurve("fast", "d")
	for i := 0; i <= 100; i++ {
		slow.Add(i, float64(i), 1-float64(i)*0.005) // hits 0.7 at step 60
		fast.Add(i, float64(i)*0.1, 1-float64(i)*0.05)
	}
	stepX, timeX, ok := Speedup(slow, fast, 0.7)
	if !ok {
		t.Fatal("speedup not computed")
	}
	if stepX != 10 { // 60 vs 6
		t.Errorf("stepX = %g, want 10", stepX)
	}
	if math.Abs(timeX-100) > 1e-9 { // 60s vs 0.6s
		t.Errorf("timeX = %g, want 100", timeX)
	}
	if _, _, ok := Speedup(slow, fast, 0.0001); ok {
		t.Error("speedup at unreachable target should fail")
	}
}

func TestSpeedupMonotoneProperty(t *testing.T) {
	// Property: scaling the improved curve's times by c scales timeX by c.
	prop := func(scale float64) bool {
		scale = 1 + math.Mod(math.Abs(scale), 5)
		base := NewCurve("b", "d")
		fast := NewCurve("f", "d")
		slow := NewCurve("s", "d")
		for i := 0; i <= 50; i++ {
			obj := 1 - float64(i)*0.01
			base.Add(i, float64(i), obj)
			fast.Add(i, float64(i), obj)
			slow.Add(i, float64(i)*scale, obj)
		}
		_, tFast, ok1 := Speedup(base, fast, 0.8)
		_, tSlow, ok2 := Speedup(base, slow, 0.8)
		if !ok1 || !ok2 {
			return false
		}
		return math.Abs(tFast/tSlow-scale) < 1e-9*scale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCSV(t *testing.T) {
	c := curveFrom([]float64{1, 0.5})
	out := c.CSV(true)
	if !strings.HasPrefix(out, "system,dataset,step,time,objective\n") {
		t.Errorf("csv = %q", out)
	}
	if !strings.Contains(out, "sys,ds,1,") {
		t.Errorf("csv missing row: %q", out)
	}
	if strings.Contains(c.CSV(false), "system,") {
		t.Error("header included when not requested")
	}
}

func TestTableLOCF(t *testing.T) {
	a := NewCurve("A", "d")
	a.Add(0, 0, 1)
	a.Add(1, 10, 0.5)
	b := NewCurve("B", "d")
	b.Add(0, 5, 0.8)
	out := Table([]*Curve{a, b}, []float64{1, 6, 20})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table = %q", out)
	}
	// At t=1: A=1.0 (from t=0), B not yet observed.
	if !strings.Contains(lines[1], "1.0000") || !strings.Contains(lines[1], "-") {
		t.Errorf("row t=1: %q", lines[1])
	}
	// At t=20: A=0.5, B=0.8.
	if !strings.Contains(lines[3], "0.5000") || !strings.Contains(lines[3], "0.8000") {
		t.Errorf("row t=20: %q", lines[3])
	}
}

func TestLogTimes(t *testing.T) {
	ts := LogTimes(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(ts[i]-want[i]) > 1e-9 {
			t.Errorf("ts = %v", ts)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for bad range")
		}
	}()
	LogTimes(0, 10, 3)
}

func TestRenderSVGBasics(t *testing.T) {
	a := NewCurve("MLlib*", "d")
	b := NewCurve("MLlib", "d")
	for i := 1; i <= 20; i++ {
		tsec := float64(i) * 0.01
		a.Add(i, tsec, 1/float64(i))
		b.Add(i, tsec*10, 1/math.Sqrt(float64(i)))
	}
	out := RenderSVG([]*Curve{a, b}, SVGOptions{Title: "test & demo", LogX: true})
	for _, want := range []string{
		"<svg", "</svg>",
		"#2a78d6", "#008300", // fixed entity colors
		"test &amp; demo",   // escaped title
		"MLlib*", ">MLlib<", // direct end labels
		"simulated time", "objective", // axis titles
		"<title>", // native tooltips
	} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestRenderSVGUnknownSystemNeutral(t *testing.T) {
	c := NewCurve("Mystery", "d")
	c.Add(1, 0.1, 1)
	c.Add(2, 0.2, 0.5)
	out := RenderSVG([]*Curve{c}, SVGOptions{})
	if !strings.Contains(out, "#52514e") {
		t.Error("unknown system should use the neutral ink")
	}
}

func TestRenderSVGEmptyAndDegenerate(t *testing.T) {
	out := RenderSVG(nil, SVGOptions{})
	if !strings.Contains(out, "no drawable series") {
		t.Errorf("empty chart = %q", out)
	}
	// Log axis drops zero-time points; a single remaining point is skipped.
	c := NewCurve("MLlib", "d")
	c.Add(0, 0, 1)
	c.Add(1, 0.5, 0.9)
	out = RenderSVG([]*Curve{c}, SVGOptions{LogX: true})
	if !strings.Contains(out, "no drawable series") {
		t.Error("single-point log series should be skipped")
	}
}

func TestRenderSVGFlatSeries(t *testing.T) {
	// Constant objective must not divide by zero.
	c := NewCurve("Angel", "d")
	c.Add(1, 1, 0.5)
	c.Add(2, 2, 0.5)
	out := RenderSVG([]*Curve{c}, SVGOptions{})
	if !strings.Contains(out, "<path") {
		t.Error("flat series not drawn")
	}
}
