package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SVG rendering of convergence curves — the literal figures of the paper
// (objective vs time on a log axis), written as self-contained SVG files
// next to the CSV data (the CSV is the accessible table view of every
// figure).
//
// Colors follow the entity, never the rank: each system has a fixed slot in
// a validated categorical palette (worst adjacent CVD ΔE 24.2 on the light
// surface; the low-contrast slots are relieved by the direct end-of-line
// labels rendered for every series).

// seriesColors is the fixed system→color mapping (categorical slots in a
// validated palette order; unknown systems fall back to a neutral ink).
var seriesColors = map[string]string{
	"MLlib*":   "#2a78d6", // slot 1, blue
	"Petuum*":  "#1baf7a", // slot 2, aqua
	"Angel":    "#eda100", // slot 3, yellow
	"MLlib":    "#008300", // slot 4, green
	"MLlib+MA": "#4a3aa7", // slot 5, violet
	"Petuum":   "#e34948", // slot 6, red
	"LBFGS*":   "#e87ba4", // slot 7, magenta
	"LBFGS":    "#eb6834", // slot 8, orange
}

const (
	svgSurface   = "#fcfcfb"
	svgInk       = "#0b0b0b"
	svgInkSoft   = "#52514e"
	svgGrid      = "#e4e3df"
	svgNeutral   = "#52514e"
	svgFontStack = "system-ui, -apple-system, sans-serif"
)

// SVGOptions configures RenderSVG.
type SVGOptions struct {
	Title  string
	Width  int  // default 720
	Height int  // default 440
	LogX   bool // logarithmic time axis (the paper's convention)
}

// RenderSVG renders the curves as an SVG line chart of objective vs
// simulated time. Curves with fewer than two positive-time points are
// skipped on a log axis.
func RenderSVG(curves []*Curve, opts SVGOptions) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 440
	}
	const (
		marginL = 64
		marginR = 120 // room for direct end labels
		marginT = 44
		marginB = 48
	)
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	// Data extent.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type series struct {
		name   string
		color  string
		points []Point
	}
	var drawn []series
	for _, c := range curves {
		var pts []Point
		for _, p := range c.Points {
			if opts.LogX && p.Time <= 0 {
				continue
			}
			pts = append(pts, p)
		}
		if len(pts) < 2 {
			continue
		}
		color, ok := seriesColors[c.System]
		if !ok {
			color = svgNeutral
		}
		for _, p := range pts {
			x := p.Time
			if opts.LogX {
				x = math.Log10(p.Time)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, p.Objective), math.Max(maxY, p.Objective)
		}
		drawn = append(drawn, series{name: c.System, color: color, points: pts})
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="%s">`,
		w, h, w, h, svgFontStack)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, w, h, svgSurface)
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="26" font-size="15" font-weight="600" fill="%s">%s</text>`,
			marginL, svgInk, escape(opts.Title))
	}
	if len(drawn) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" fill="%s">no drawable series</text></svg>`,
			marginL, h/2, svgInkSoft)
		return b.String()
	}
	//mlstar:nolint floateq -- exact compare intentional: guards the fully degenerate range before dividing
	if maxX == minX {
		maxX = minX + 1
	}
	//mlstar:nolint floateq -- exact compare intentional: guards the fully degenerate range before dividing
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom on y.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + (maxY-y)/(maxY-minY)*plotH }

	// Recessive grid + axis labels: ~5 y ticks, x ticks at decades (log) or
	// 5 even ticks (linear).
	for i := 0; i <= 4; i++ {
		y := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			marginL, py(y), marginL+plotW, py(y), svgGrid)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%.3g</text>`,
			marginL-8, py(y)+4, svgInkSoft, y)
	}
	if opts.LogX {
		for d := math.Floor(minX); d <= math.Ceil(maxX); d++ {
			if d < minX || d > maxX {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
				px(d), marginT, px(d), marginT+plotH, svgGrid)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">%s</text>`,
				px(d), marginT+plotH+18, svgInkSoft, logTickLabel(d))
		}
	} else {
		for i := 0; i <= 4; i++ {
			x := minX + (maxX-minX)*float64(i)/4
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">%.3g</text>`,
				px(x), marginT+plotH+18, svgInkSoft, x)
		}
	}
	// Axis titles in text ink.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" fill="%s" text-anchor="middle">simulated time (s)</text>`,
		marginL+plotW/2, h-10, svgInkSoft)
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %.1f)">objective</text>`,
		marginT+plotH/2, svgInkSoft, marginT+plotH/2)

	// Series: 2px lines, per-point <title> tooltips via invisible hit
	// circles, direct end labels (the relief for low-contrast hues).
	type label struct {
		y     float64
		text  string
		color string
	}
	var labels []label
	for _, s := range drawn {
		var path strings.Builder
		for i, p := range s.points {
			x := p.Time
			if opts.LogX {
				x = math.Log10(p.Time)
			}
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f", cmd, px(x), py(p.Objective))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`,
			path.String(), s.color)
		// Sparse native tooltips on sampled points.
		stride := len(s.points)/12 + 1
		for i := 0; i < len(s.points); i += stride {
			p := s.points[i]
			x := p.Time
			if opts.LogX {
				x = math.Log10(p.Time)
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="7" fill="transparent"><title>%s — step %d, t=%.4gs, f=%.4f</title></circle>`,
				px(x), py(p.Objective), escape(s.name), p.Step, p.Time, p.Objective)
		}
		last := s.points[len(s.points)-1]
		lx := last.Time
		if opts.LogX {
			lx = math.Log10(last.Time)
		}
		labels = append(labels, label{y: py(last.Objective), text: s.name, color: s.color})
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, px(lx), py(last.Objective), s.color)
	}
	// Collision-avoid the end labels: sort by y, enforce 14px spacing.
	sort.Slice(labels, func(i, j int) bool { return labels[i].y < labels[j].y })
	for i := 1; i < len(labels); i++ {
		if labels[i].y-labels[i-1].y < 14 {
			labels[i].y = labels[i-1].y + 14
		}
	}
	for _, l := range labels {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`, marginL+plotW+10, l.y-4, l.color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" fill="%s">%s</text>`,
			marginL+plotW+18, l.y, svgInk, escape(l.text))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// logTickLabel formats a decade tick 10^d compactly.
func logTickLabel(d float64) string {
	v := math.Pow(10, d)
	if v >= 0.001 && v < 10000 {
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
	return fmt.Sprintf("1e%d", int(d))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
