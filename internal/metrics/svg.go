package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mllibstar/internal/trace"
)

// SVG rendering of convergence curves — the literal figures of the paper
// (objective vs time on a log axis), written as self-contained SVG files
// next to the CSV data (the CSV is the accessible table view of every
// figure).
//
// Colors follow the entity, never the rank: each system has a fixed slot in
// a validated categorical palette (worst adjacent CVD ΔE 24.2 on the light
// surface; the low-contrast slots are relieved by the direct end-of-line
// labels rendered for every series).

// seriesColors is the fixed system→color mapping (categorical slots in a
// validated palette order; unknown systems fall back to a neutral ink).
var seriesColors = map[string]string{
	"MLlib*":   "#2a78d6", // slot 1, blue
	"Petuum*":  "#1baf7a", // slot 2, aqua
	"Angel":    "#eda100", // slot 3, yellow
	"MLlib":    "#008300", // slot 4, green
	"MLlib+MA": "#4a3aa7", // slot 5, violet
	"Petuum":   "#e34948", // slot 6, red
	"LBFGS*":   "#e87ba4", // slot 7, magenta
	"LBFGS":    "#eb6834", // slot 8, orange
}

const (
	svgSurface   = "#fcfcfb"
	svgInk       = "#0b0b0b"
	svgInkSoft   = "#52514e"
	svgGrid      = "#e4e3df"
	svgNeutral   = "#52514e"
	svgFontStack = "system-ui, -apple-system, sans-serif"
)

// SVGOptions configures RenderSVG.
type SVGOptions struct {
	Title  string
	Width  int  // default 720
	Height int  // default 440
	LogX   bool // logarithmic time axis (the paper's convention)
}

// RenderSVG renders the curves as an SVG line chart of objective vs
// simulated time. Curves with fewer than two positive-time points are
// skipped on a log axis.
func RenderSVG(curves []*Curve, opts SVGOptions) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 440
	}
	const (
		marginL = 64
		marginR = 120 // room for direct end labels
		marginT = 44
		marginB = 48
	)
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	// Data extent.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type series struct {
		name   string
		color  string
		points []Point
	}
	var drawn []series
	for _, c := range curves {
		var pts []Point
		for _, p := range c.Points {
			if opts.LogX && p.Time <= 0 {
				continue
			}
			pts = append(pts, p)
		}
		if len(pts) < 2 {
			continue
		}
		color, ok := seriesColors[c.System]
		if !ok {
			color = svgNeutral
		}
		for _, p := range pts {
			x := p.Time
			if opts.LogX {
				x = math.Log10(p.Time)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, p.Objective), math.Max(maxY, p.Objective)
		}
		drawn = append(drawn, series{name: c.System, color: color, points: pts})
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="%s">`,
		w, h, w, h, svgFontStack)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, w, h, svgSurface)
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="26" font-size="15" font-weight="600" fill="%s">%s</text>`,
			marginL, svgInk, escape(opts.Title))
	}
	if len(drawn) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" fill="%s">no drawable series</text></svg>`,
			marginL, h/2, svgInkSoft)
		return b.String()
	}
	//mlstar:nolint floateq -- exact compare intentional: guards the fully degenerate range before dividing
	if maxX == minX {
		maxX = minX + 1
	}
	//mlstar:nolint floateq -- exact compare intentional: guards the fully degenerate range before dividing
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom on y.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + (maxY-y)/(maxY-minY)*plotH }

	// Recessive grid + axis labels: ~5 y ticks, x ticks at decades (log) or
	// 5 even ticks (linear).
	for i := 0; i <= 4; i++ {
		y := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			marginL, py(y), marginL+plotW, py(y), svgGrid)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%.3g</text>`,
			marginL-8, py(y)+4, svgInkSoft, y)
	}
	if opts.LogX {
		for d := math.Floor(minX); d <= math.Ceil(maxX); d++ {
			if d < minX || d > maxX {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
				px(d), marginT, px(d), marginT+plotH, svgGrid)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">%s</text>`,
				px(d), marginT+plotH+18, svgInkSoft, logTickLabel(d))
		}
	} else {
		for i := 0; i <= 4; i++ {
			x := minX + (maxX-minX)*float64(i)/4
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">%.3g</text>`,
				px(x), marginT+plotH+18, svgInkSoft, x)
		}
	}
	// Axis titles in text ink.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" fill="%s" text-anchor="middle">simulated time (s)</text>`,
		marginL+plotW/2, h-10, svgInkSoft)
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %.1f)">objective</text>`,
		marginT+plotH/2, svgInkSoft, marginT+plotH/2)

	// Series: 2px lines, per-point <title> tooltips via invisible hit
	// circles, direct end labels (the relief for low-contrast hues).
	type label struct {
		y     float64
		text  string
		color string
	}
	var labels []label
	for _, s := range drawn {
		var path strings.Builder
		for i, p := range s.points {
			x := p.Time
			if opts.LogX {
				x = math.Log10(p.Time)
			}
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f", cmd, px(x), py(p.Objective))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`,
			path.String(), s.color)
		// Sparse native tooltips on sampled points.
		stride := len(s.points)/12 + 1
		for i := 0; i < len(s.points); i += stride {
			p := s.points[i]
			x := p.Time
			if opts.LogX {
				x = math.Log10(p.Time)
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="7" fill="transparent"><title>%s — step %d, t=%.4gs, f=%.4f</title></circle>`,
				px(x), py(p.Objective), escape(s.name), p.Step, p.Time, p.Objective)
		}
		last := s.points[len(s.points)-1]
		lx := last.Time
		if opts.LogX {
			lx = math.Log10(last.Time)
		}
		labels = append(labels, label{y: py(last.Objective), text: s.name, color: s.color})
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, px(lx), py(last.Objective), s.color)
	}
	// Collision-avoid the end labels: sort by y, enforce 14px spacing.
	sort.Slice(labels, func(i, j int) bool { return labels[i].y < labels[j].y })
	for i := 1; i < len(labels); i++ {
		if labels[i].y-labels[i-1].y < 14 {
			labels[i].y = labels[i-1].y + 14
		}
	}
	for _, l := range labels {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`, marginL+plotW+10, l.y-4, l.color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" fill="%s">%s</text>`,
			marginL+plotW+18, l.y, svgInk, escape(l.text))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// logTickLabel formats a decade tick 10^d compactly.
func logTickLabel(d float64) string {
	v := math.Pow(10, d)
	if v >= 0.001 && v < 10000 {
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
	return fmt.Sprintf("1e%d", int(d))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Gantt rendering of activity traces — the paper's Figure 3 view of where
// each node spends its time. The color scheme groups the trace kinds into
// two visually distinct families so computation and communication can be
// told apart at a glance, and the legend labels the families explicitly:
//
//	computation    compute #2a78d6 (blue) · aggregate #4a3aa7 (violet) ·
//	               update #1baf7a (aqua) · encode #2aa0c8 (cyan) ·
//	               featblock #6fb5e8 (sky — overlapped gradient blocks)
//	communication  send #e34948 (red) · recv #eda100 (yellow) ·
//	               ps-pull #c23b78 (pink) · ps-push #eb6834 (orange)
//	other          barrier-wait #e4e3df (faint gray) · stage-scheduling
//	               #b9b7b1 (gray) · markers as thin vertical ink lines
//
// Cool hues always mean "the node is working", warm hues always mean "bytes
// are moving" — the distinction the B1/B2 bottleneck discussion rests on.
// The same grouping appears in the ASCII legend (trace.RenderASCII).

// ganttColors maps each trace kind to its fill, following the family
// grouping documented above.
var ganttColors = [trace.KindCount]string{
	trace.Compute:   "#2a78d6",
	trace.Send:      "#e34948",
	trace.Recv:      "#eda100",
	trace.Aggregate: "#4a3aa7",
	trace.Update:    "#1baf7a",
	trace.Barrier:   "#e4e3df",
	trace.Stage:     "#b9b7b1",
	trace.Pull:      "#c23b78",
	trace.Push:      "#eb6834",
	trace.Encode:    "#2aa0c8",
	trace.Pipeline:  "#f2d8a7",
	trace.FeatBlock: "#6fb5e8",
}

// ganttLegend is the legend layout: two labeled families, then the rest.
var ganttLegend = []struct {
	Label string
	Kinds []trace.Kind
}{
	{"computation:", []trace.Kind{trace.Compute, trace.Aggregate, trace.Update, trace.Encode, trace.FeatBlock}},
	{"communication:", []trace.Kind{trace.Send, trace.Recv, trace.Pull, trace.Push}},
	{"other:", []trace.Kind{trace.Barrier, trace.Pipeline, trace.Stage}},
}

// RenderGanttSVG renders a recorded trace as an SVG gantt chart: one row
// per node, spans colored by the documented kind palette, markers as
// vertical lines, and a legend separating computation from communication.
func RenderGanttSVG(rec *trace.Recorder, title string, width int) string {
	spans := rec.Spans()
	horizon := rec.Horizon()
	if len(spans) == 0 || horizon == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="300" height="40"><text x="10" y="25" font-size="12">no activity recorded</text></svg>`
	}
	if width <= 0 {
		width = 900
	}
	nodes := rec.Nodes()
	const rowH, rowGap, marginT, legendH, marginB = 18, 6, 34, 44, 26
	marginL := 60
	for _, n := range nodes {
		if w := 14 + 7*len(n); w > marginL {
			marginL = w
		}
	}
	plotW := float64(width - marginL - 20)
	height := marginT + len(nodes)*(rowH+rowGap) + legendH + marginB
	px := func(t float64) float64 { return float64(marginL) + t/horizon*plotW }
	rowY := func(i int) int { return marginT + i*(rowH+rowGap) }
	rowOf := map[string]int{}
	for i, n := range nodes {
		rowOf[n] = i
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="%s">`,
		width, height, width, height, svgFontStack)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, width, height, svgSurface)
	if title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="600" fill="%s">%s</text>`,
			marginL, svgInk, escape(title))
	}
	for i, n := range nodes {
		y := rowY(i)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`,
			8, y+rowH-5, svgInkSoft, escape(n))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s"/>`,
			marginL, y, plotW, rowH, svgGrid)
	}
	for _, s := range spans {
		x0, x1 := px(s.Start), px(s.End)
		if x1-x0 < 0.5 {
			x1 = x0 + 0.5 // keep point-like spans visible
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s %s [%.4f, %.4f]</title></rect>`,
			x0, rowY(rowOf[s.Node]), x1-x0, rowH, ganttColors[s.Kind],
			escape(s.Node), s.Kind, s.Start, s.End)
	}
	chartBottom := rowY(len(nodes)-1) + rowH
	for _, m := range rec.Markers() {
		x := px(m.At)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="0.6" opacity="0.5"/>`,
			x, marginT-4, x, chartBottom+4, svgInk)
	}
	// Time axis: start and horizon.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="%s">0</text>`,
		marginL, chartBottom+14, svgInkSoft)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="%s" text-anchor="end">%.3fs</text>`,
		float64(marginL)+plotW, chartBottom+14, svgInkSoft, horizon)
	// Legend: family label, then a swatch + kind name per member.
	lx, ly := float64(marginL), float64(chartBottom+34)
	for _, group := range ganttLegend {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" font-weight="600" fill="%s">%s</text>`,
			lx, ly, svgInk, group.Label)
		lx += float64(8 * len(group.Label))
		for _, k := range group.Kinds {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`,
				lx, ly-9, ganttColors[k])
			name := k.String()
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`,
				lx+13, ly, svgInkSoft, name)
			lx += float64(13 + 7*len(name) + 10)
		}
		lx += 14
	}
	b.WriteString(`</svg>`)
	return b.String()
}
