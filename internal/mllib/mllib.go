// Package mllib implements the baseline the paper studies: Spark MLlib's
// mini-batch gradient descent for GLMs, i.e. the SendGradient paradigm of
// Algorithm 2 executed as BSP stages.
//
// Each communication step (1) broadcasts the current model with the task
// descriptors, (2) has every executor sample a mini batch from its cached
// partition and compute a gradient sum, (3) aggregates the gradients
// hierarchically through intermediate executors (treeAggregate), and (4)
// applies a single model update at the driver. The single-update-per-step
// pattern (bottleneck B1) and the driver-centric aggregation (bottleneck
// B2) are exactly the properties the paper's Figure 3(a) visualizes.
package mllib

import (
	"fmt"
	"math"
	"math/rand"

	"mllibstar/internal/data"
	"mllibstar/internal/des"
	"mllibstar/internal/detrand"
	"mllibstar/internal/engine"
	"mllibstar/internal/glm"
	"mllibstar/internal/obs"
	"mllibstar/internal/sparse"
	"mllibstar/internal/trace"
	"mllibstar/internal/train"
	"mllibstar/internal/vec"
)

// System is the curve label for this trainer.
const System = "MLlib"

// Aggregators resolves the treeAggregate fan-in: the explicit value if set,
// otherwise ceil(sqrt(k)) — the branching of MLlib's default depth-2 tree.
func Aggregators(prm train.Params, k int) int {
	if prm.Aggregators > 0 {
		return prm.Aggregators
	}
	a := int(math.Ceil(math.Sqrt(float64(k))))
	if a < 1 {
		a = 1
	}
	return a
}

// Train runs SendGradient mini-batch gradient descent on the cluster behind
// ctx. parts must have one partition per executor, in executor order.
// evalData is the out-of-band evaluation set; dataset labels the curve.
func Train(ctx *engine.Context, parts []data.View, dim int, prm train.Params,
	evalData []glm.Example, dataset string) (*train.Result, error) {

	if err := prm.Validate(); err != nil {
		return nil, err
	}
	k := ctx.NumExecutors()
	if len(parts) != k {
		return nil, fmt.Errorf("mllib: %d partitions for %d executors", len(parts), k)
	}
	if prm.BatchFraction == 0 {
		prm.BatchFraction = 1
	}

	sim := ctx.Cluster.Sim
	net := ctx.Cluster.Net
	driver := net.Node(ctx.Cluster.Driver)
	ev := train.NewEvaluator(System, dataset, prm.Objective, evalData, prm.EvalEvery)
	aggs := Aggregators(prm, k)
	sched := prm.Schedule()

	res := &train.Result{System: System, Curve: ev.Curve}
	w := make([]float64, dim)
	// Per-executor sampled-row scratch, reused across supersteps: the
	// Bernoulli sampler appends row indices here instead of gathering a fresh
	// example slice every step. Distinct buffers keep parallel task offload
	// race-free.
	rowScratch := make([][]int32, k)

	sim.Spawn("driver:mllib", func(p *des.Proc) {
		ev.Record(0, p.Now(), w)
		for t := 1; t <= prm.MaxSteps; t++ {
			obs.Active().SetStep(t, p.Now())
			stepW := w // tasks read, never write, the current model
			// With sparse exchange on, the model broadcast is charged at its
			// nonzero-coded size and the gradient partials (whose support is
			// the mini batch's) ship compressed back through the tree.
			payload := sparse.WireBytesFor(stepW, nil)
			if prm.TorrentBroadcast {
				// Chunked broadcast in its own stage; the gradient stage
				// then ships only task descriptors. The chunks stay dense —
				// BitTorrent-style chunking already shares the load, and the
				// chunk protocol is outside the sparse layer.
				ctx.BroadcastVec(p, fmt.Sprintf("bc%d", t), dim, true)
				payload = 0
			}
			sum := ctx.TreeAggregateVec(p, fmt.Sprintf("mgd%d", t), dim+1, aggs, payload,
				func(i int) ([]float64, float64) {
					local := parts[i]
					rng := detrand.Step(prm.Seed, t, i)
					g := ctx.GetVec(dim + 1)
					var work, count int
					if prm.BatchFraction >= 1 {
						work = data.AddGradient(prm.Objective, stepW, local, g[:dim])
						count = local.NumRows()
					} else {
						rows := sampleRows(rng, local.NumRows(), prm.BatchFraction, &rowScratch[i])
						work = data.AddGradientRows(prm.Objective, stepW, local, rows, g[:dim])
						count = len(rows)
					}
					g[dim] = float64(count)
					// Sampling scans the partition; gradient work is nnz.
					return g, float64(work) + float64(local.NumRows())
				})
			count := sum[dim]
			if count > 0 {
				eta := sched(t - 1)
				inv := eta / count
				for j := 0; j < dim; j++ {
					w[j] -= inv*sum[j] + eta*prm.Objective.Reg.DerivAt(w[j])
				}
				driver.ComputeKind(p, float64(dim), trace.Update, "model update")
				res.Updates++
				obs.Active().Updates(t, ctx.Cluster.Driver, 1, p.Now())
			}
			ctx.PutVec(sum)
			res.CommSteps = t
			if obj, recorded := ev.Record(t, p.Now(), w); recorded {
				if prm.TargetObjective > 0 && obj <= prm.TargetObjective {
					break
				}
			}
			if prm.MaxSimTime > 0 && p.Now() >= prm.MaxSimTime {
				break
			}
		}
	})
	res.SimTime = sim.Run()
	res.FinalW = vec.Copy(w)
	res.TotalBytes = net.TotalBytes()
	return res, nil
}

// sampleRows draws a Bernoulli sample of the row indices [0, n), matching
// Spark's RDD.sample(false, fraction) used by MLlib's mini-batch step: one
// rng.Float64 per row, in row order, so the sampled rows are exactly the
// examples the old slice-gathering sampler kept. The indices accumulate into
// *buf, which is reused across supersteps — the per-step batch allocation is
// gone.
func sampleRows(rng *rand.Rand, n int, fraction float64, buf *[]int32) []int32 {
	out := (*buf)[:0]
	for r := 0; r < n; r++ {
		if rng.Float64() < fraction {
			out = append(out, int32(r))
		}
	}
	*buf = out
	return out
}
