package mllib_test

import (
	"testing"

	"mllibstar/internal/clusters"
	"mllibstar/internal/data"
	"mllibstar/internal/glm"
	"mllibstar/internal/mllib"
	"mllibstar/internal/trace"
	"mllibstar/internal/train"
)

func workload(k int) (*data.Dataset, []data.View) {
	d := data.Generate(data.Spec{
		Name: "toy", Rows: 800, Cols: 100, NNZPerRow: 8, Seed: 11, NoiseRate: 0.02,
	})
	return d, d.Partition(k, 3)
}

func params() train.Params {
	return train.Params{
		Objective:     glm.SVM(0),
		Eta:           0.5,
		Decay:         true,
		BatchFraction: 0.2,
		MaxSteps:      30,
		Seed:          5,
	}
}

func TestAggregatorsDefaultIsSqrt(t *testing.T) {
	if got := mllib.Aggregators(train.Params{}, 8); got != 3 { // ceil(sqrt(8))
		t.Errorf("aggregators(8) = %d, want 3", got)
	}
	if got := mllib.Aggregators(train.Params{}, 1); got != 1 {
		t.Errorf("aggregators(1) = %d, want 1", got)
	}
	if got := mllib.Aggregators(train.Params{Aggregators: 5}, 8); got != 5 {
		t.Errorf("explicit aggregators = %d", got)
	}
}

func TestOneUpdatePerStep(t *testing.T) {
	d, parts := workload(4)
	_, _, ctx := clusters.Test(4).Build(nil)
	res, err := mllib.Train(ctx, parts, d.Features, params(), d.Examples, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	// The SendGradient paradigm applies exactly one global update per
	// communication step — the paper's bottleneck B1.
	if res.Updates != int64(res.CommSteps) {
		t.Errorf("updates = %d, steps = %d: SendGradient must be 1:1", res.Updates, res.CommSteps)
	}
}

func TestObjectiveDecreases(t *testing.T) {
	d, parts := workload(4)
	_, _, ctx := clusters.Test(4).Build(nil)
	prm := params()
	prm.MaxSteps = 100
	res, err := mllib.Train(ctx, parts, d.Features, prm, d.Examples, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve.Points[0].Objective
	if best := res.Curve.Best(); best >= first*0.9 {
		t.Errorf("objective barely moved: %g -> %g", first, best)
	}
}

func TestDriverIsBottleneck(t *testing.T) {
	// The hallmark of Figure 3(a): executors spend a large share of each
	// step waiting while the driver transmits/receives models. Quantify it
	// as the driver's send+recv busy time being a significant fraction of
	// the run on a communication-bound workload.
	d := data.Generate(data.Spec{Name: "wide", Rows: 400, Cols: 50000, NNZPerRow: 5, Seed: 2})
	parts := d.Partition(8, 3)
	rec := trace.New()
	_, _, ctx := clusters.Test(8).Build(rec)
	prm := params()
	prm.MaxSteps = 3
	prm.Aggregators = 8 // flat: all gradients to the driver
	res, err := mllib.Train(ctx, parts, d.Features, prm, d.Examples, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	bt := rec.BusyTime()
	driverComm := bt["driver"][trace.Send] + bt["driver"][trace.Recv]
	if share := driverComm / res.SimTime; share < 0.5 {
		t.Errorf("driver comm share = %.2f of the run; expected the driver to dominate", share)
	}
}

func TestTreeAggregationShiftsLoadFromDriver(t *testing.T) {
	d := data.Generate(data.Spec{Name: "wide", Rows: 400, Cols: 50000, NNZPerRow: 5, Seed: 2})
	parts := d.Partition(8, 3)
	driverRecv := func(aggs int) float64 {
		_, cl, ctx := clusters.Test(8).Build(nil)
		prm := params()
		prm.MaxSteps = 2
		prm.Aggregators = aggs
		if _, err := mllib.Train(ctx, parts, d.Features, prm, d.Examples, d.Name); err != nil {
			t.Fatal(err)
		}
		return cl.Net.Node("driver").BytesRecv()
	}
	flat, tree := driverRecv(8), driverRecv(3)
	if tree >= flat*0.6 {
		t.Errorf("treeAggregate driver recv %g vs flat %g: hierarchy not reducing driver load", tree, flat)
	}
}

func TestBatchFractionOne(t *testing.T) {
	// BatchFraction 0 defaults to full-batch gradient descent.
	d, parts := workload(2)
	_, _, ctx := clusters.Test(2).Build(nil)
	prm := params()
	prm.BatchFraction = 0
	prm.MaxSteps = 5
	res, err := mllib.Train(ctx, parts, d.Features, prm, d.Examples, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSteps != 5 {
		t.Errorf("steps = %d", res.CommSteps)
	}
}

func TestErrors(t *testing.T) {
	_, _, ctx := clusters.Test(2).Build(nil)
	if _, err := mllib.Train(ctx, make([]data.View, 3), 10, params(), nil, "d"); err == nil {
		t.Error("want partition mismatch error")
	}
	_, _, ctx2 := clusters.Test(2).Build(nil)
	bad := params()
	bad.MaxSteps = 0
	if _, err := mllib.Train(ctx2, make([]data.View, 2), 10, bad, nil, "d"); err == nil {
		t.Error("want validation error")
	}
}
