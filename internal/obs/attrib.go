package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Attribution reproduces the paper's Section-3 breakdown from an event log:
// for every superstep it computes the driver's busy time, the worker-side
// compute and communication critical paths, and the residual wait, then
// classifies the run's dominant cost — B2-style driver serialization,
// network, compute, or wait — and its update pattern (B1-style single
// update per step vs SendModel's many local updates).
//
// Definitions (all interval unions are over virtual time):
//
//   - step span: [min start, max end] over the step's span events;
//   - driver: union of busy intervals (compute phases and message halves,
//     barriers excluded) on driver nodes;
//   - compute: max over worker nodes of the union of compute-phase spans
//     (compute, aggregate, update, encode) — the compute critical path;
//   - network: max over worker nodes of the union of message-half spans —
//     the communication critical path;
//   - wait: span − driver − compute − network, clamped at zero: time no
//     resource on the critical path was busy (barrier skew, SSP gating,
//     stragglers).
//
// The three busy terms can overlap in time (the driver receives while a
// worker computes), so their shares are an attribution, not a partition;
// what makes them comparable across systems is that each is a lower bound
// on the step's span and the dominant one names the resource that must
// shrink for the step to get faster.

// chanOrder is the canonical channel iteration order for reports.
var chanOrder = []Channel{ChanDriver, ChanShuffle, ChanBroadcast, ChanPS, ChanOther}

// encOrder is the canonical encoding iteration order for reports.
var encOrder = []Encoding{EncDense, EncSparse}

// computePhases are the span phases that count as computation on a node.
var computePhases = map[Phase]bool{
	PhaseCompute:  true,
	PhaseAgg:      true,
	PhaseUpdate:   true,
	PhaseEncode:   true,
	PhaseSchedule: true,
}

// StepStat is the attribution of one superstep.
type StepStat struct {
	Step    int     `json:"step"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Driver  float64 `json:"driver"`  // driver busy time
	Compute float64 `json:"compute"` // worker compute critical path
	Network float64 `json:"network"` // worker communication critical path
	Wait    float64 `json:"wait"`
	Bytes   float64 `json:"bytes"`
	Updates int64   `json:"updates"`
	Loss    float64 `json:"loss"`
	HasLoss bool    `json:"has_loss,omitempty"`
	// Dominant is the largest of driver/network/compute/wait for this step.
	Dominant string `json:"dominant"`
}

// Span returns the step's virtual duration.
func (s *StepStat) Span() float64 { return s.End - s.Start }

// Report is the run-level attribution.
type Report struct {
	System  string `json:"system,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	Steps   int    `json:"steps"`

	Span         float64 `json:"span"` // summed step spans
	DriverShare  float64 `json:"driver_share"`
	NetworkShare float64 `json:"network_share"`
	ComputeShare float64 `json:"compute_share"`
	WaitShare    float64 `json:"wait_share"`

	TotalBytes     float64              `json:"total_bytes"`
	BytesByChannel map[Channel]float64  `json:"bytes_by_channel"`
	BytesByEnc     map[Encoding]float64 `json:"bytes_by_enc"`

	UpdatesPerStep float64 `json:"updates_per_step"`
	// UpdatePattern is "single-update" (B1, SendGradient) or
	// "many-local-updates" (SendModel).
	UpdatePattern string `json:"update_pattern"`
	// DominantCost is "driver", "network", "compute", or "wait".
	DominantCost string `json:"dominant_cost"`
	// Classification spells out the bottleneck narrative in the paper's
	// B1/B2 vocabulary.
	Classification string `json:"classification"`

	PerStep []StepStat `json:"per_step"`
}

// interval is a [lo, hi] virtual-time range.
type interval struct{ lo, hi float64 }

// unionLen returns the total length of the union of the intervals.
func unionLen(iv []interval) float64 {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(a, b int) bool { return iv[a].lo < iv[b].lo })
	total, lo, hi := 0.0, iv[0].lo, iv[0].hi
	for _, v := range iv[1:] {
		if v.lo > hi {
			total += hi - lo
			lo, hi = v.lo, v.hi
		} else if v.hi > hi {
			hi = v.hi
		}
	}
	return total + hi - lo
}

// stepAccum collects one step's raw intervals before attribution.
type stepAccum struct {
	stat      StepStat
	hasExtent bool
	driver    []interval
	compute   map[string][]interval
	network   map[string][]interval
	nodeOrder []string
	seenNode  map[string]bool
}

func isDriverNode(node string) bool { return strings.HasPrefix(node, "driver") }

// Attribute computes the bottleneck attribution of an event log.
func Attribute(events []Event) *Report {
	r := &Report{
		BytesByChannel: map[Channel]float64{},
		BytesByEnc:     map[Encoding]float64{},
	}
	accums := map[int]*stepAccum{}
	var stepKeys []int
	get := func(step int) *stepAccum {
		a, ok := accums[step]
		if !ok {
			a = &stepAccum{
				stat:     StepStat{Step: step},
				compute:  map[string][]interval{},
				network:  map[string][]interval{},
				seenNode: map[string]bool{},
			}
			accums[step] = a
			stepKeys = append(stepKeys, step)
		}
		return a
	}
	var totalUpdates int64
	for _, e := range events {
		switch e.Phase {
		case PhaseMeta:
			if k, v, ok := strings.Cut(e.Note, "="); ok {
				switch k {
				case "system":
					r.System = v
				case "dataset":
					r.Dataset = v
				}
			}
			continue
		case PhaseStep:
			continue
		case PhaseEval:
			a := get(e.Step)
			a.stat.Loss, a.stat.HasLoss = e.Loss, true
			continue
		case PhaseUpdates:
			get(e.Step).stat.Updates += e.Count
			totalUpdates += e.Count
			continue
		case PhaseServeRequest, PhaseServeBatch, PhaseServeSwap:
			// serving bookkeeping spans (request latency, batch windows) are
			// not node activity; letting them into the extents would stretch
			// step spans and misattribute the slack as wait time
			continue
		case PhaseCausalFork, PhaseCausalBarrier, PhaseCausalSpec:
			// causal-graph bookkeeping: a barrier event's span is the
			// participant's wait, which the residual already measures —
			// counting it here would double-book wait as busy time
			continue
		}
		a := get(e.Step)
		if !a.hasExtent || e.Start < a.stat.Start {
			a.stat.Start = e.Start
		}
		if !a.hasExtent || e.End > a.stat.End {
			a.stat.End = e.End
		}
		a.hasExtent = true
		if e.Phase == PhaseStage {
			continue // extent only: the stage span aggregates its inner phases
		}
		if e.Dir == DirSend {
			a.stat.Bytes += e.Bytes
			r.TotalBytes += e.Bytes
			r.BytesByChannel[e.Chan] += e.Bytes
			enc := e.Enc
			if enc == "" {
				enc = EncDense
			}
			r.BytesByEnc[enc] += e.Bytes
		}
		iv := interval{e.Start, e.End}
		switch {
		case isDriverNode(e.Node):
			if e.Dir != "" || computePhases[e.Phase] {
				a.driver = append(a.driver, iv)
			}
		case e.Dir != "":
			a.network[e.Node] = append(a.network[e.Node], iv)
		case computePhases[e.Phase]:
			a.compute[e.Node] = append(a.compute[e.Node], iv)
		}
		if !a.seenNode[e.Node] {
			a.seenNode[e.Node] = true
			a.nodeOrder = append(a.nodeOrder, e.Node)
		}
	}

	sort.Ints(stepKeys)
	var sumDriver, sumNet, sumCompute, sumWait float64
	for _, step := range stepKeys {
		a := accums[step]
		if !a.hasExtent {
			continue // counter-only step (no spans): nothing to attribute
		}
		st := &a.stat
		st.Driver = unionLen(a.driver)
		for _, node := range a.nodeOrder {
			if c := unionLen(a.compute[node]); c > st.Compute {
				st.Compute = c
			}
			if n := unionLen(a.network[node]); n > st.Network {
				st.Network = n
			}
		}
		st.Wait = st.Span() - st.Driver - st.Compute - st.Network
		if st.Wait < 0 {
			st.Wait = 0
		}
		st.Dominant = dominant(st.Driver, st.Network, st.Compute, st.Wait)
		r.Span += st.Span()
		sumDriver += st.Driver
		sumNet += st.Network
		sumCompute += st.Compute
		sumWait += st.Wait
		r.PerStep = append(r.PerStep, *st)
		r.Steps++
	}
	if r.Span > 0 {
		r.DriverShare = sumDriver / r.Span
		r.NetworkShare = sumNet / r.Span
		r.ComputeShare = sumCompute / r.Span
		r.WaitShare = sumWait / r.Span
	}
	if r.Steps > 0 {
		r.UpdatesPerStep = float64(totalUpdates) / float64(r.Steps)
	}
	if r.UpdatesPerStep <= 1.5 {
		r.UpdatePattern = "single-update"
	} else {
		r.UpdatePattern = "many-local-updates"
	}
	r.DominantCost = dominant(r.DriverShare, r.NetworkShare, r.ComputeShare, r.WaitShare)
	r.Classification = classify(r.DominantCost, r.UpdatePattern)
	return r
}

// dominant names the largest of the four attribution terms; ties break in
// the fixed order driver > network > compute > wait, so the result is
// deterministic.
func dominant(driver, network, compute, wait float64) string {
	best, name := driver, "driver"
	if network > best {
		best, name = network, "network"
	}
	if compute > best {
		best, name = compute, "compute"
	}
	if wait > best {
		name = "wait"
	}
	return name
}

// classify renders the paper's bottleneck narrative for the dominant cost
// and update pattern.
func classify(dominantCost, updatePattern string) string {
	b1 := updatePattern == "single-update"
	switch dominantCost {
	case "driver":
		if b1 {
			return "B1+B2: single-update SendGradient serialized through the driver"
		}
		return "B2: driver-centric aggregation serializes the model traffic"
	case "network":
		return "network-bound: collective/shuffle traffic dominates the critical path"
	case "compute":
		return "compute-bound: local gradient/model work dominates the critical path"
	}
	return "wait-bound: barrier skew, stragglers, or SSP gating dominate"
}

// maxStepRows bounds the per-step table in Text.
const maxStepRows = 24

// Text renders the report as a stable, diffable plain-text table (the
// golden-file format of make obs).
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bottleneck attribution")
	if r.System != "" {
		fmt.Fprintf(&b, ": system=%s", r.System)
	}
	if r.Dataset != "" {
		fmt.Fprintf(&b, " dataset=%s", r.Dataset)
	}
	fmt.Fprintf(&b, "\nsteps=%d span=%.6fs\n", r.Steps, r.Span)
	fmt.Fprintf(&b, "shares of step span (overlapping lower bounds, not a partition):\n")
	fmt.Fprintf(&b, "  driver   %.4f\n", r.DriverShare)
	fmt.Fprintf(&b, "  network  %.4f\n", r.NetworkShare)
	fmt.Fprintf(&b, "  compute  %.4f\n", r.ComputeShare)
	fmt.Fprintf(&b, "  wait     %.4f\n", r.WaitShare)
	fmt.Fprintf(&b, "bytes: total=%.0f\n", r.TotalBytes)
	for _, ch := range chanOrder {
		if v := r.BytesByChannel[ch]; v > 0 {
			fmt.Fprintf(&b, "  channel %-9s %.0f\n", ch, v)
		}
	}
	for _, enc := range encOrder {
		if v := r.BytesByEnc[enc]; v > 0 {
			fmt.Fprintf(&b, "  enc     %-9s %.0f\n", enc, v)
		}
	}
	fmt.Fprintf(&b, "updates/step: %.2f -> %s\n", r.UpdatesPerStep, r.UpdatePattern)
	fmt.Fprintf(&b, "dominant cost: %s\n", r.DominantCost)
	fmt.Fprintf(&b, "classification: %s\n", r.Classification)
	if len(r.PerStep) > 0 {
		fmt.Fprintf(&b, "per-step:\n")
		fmt.Fprintf(&b, "  %5s %12s %12s %12s %12s %12s %10s %8s %s\n",
			"step", "span", "driver", "network", "compute", "wait", "bytes", "updates", "dominant")
		rows := r.PerStep
		truncated := 0
		if len(rows) > maxStepRows {
			truncated = len(rows) - maxStepRows
			rows = rows[:maxStepRows]
		}
		for i := range rows {
			st := &rows[i]
			fmt.Fprintf(&b, "  %5d %12.6f %12.6f %12.6f %12.6f %12.6f %10.0f %8d %s\n",
				st.Step, st.Span(), st.Driver, st.Network, st.Compute, st.Wait, st.Bytes, st.Updates, st.Dominant)
		}
		if truncated > 0 {
			fmt.Fprintf(&b, "  ... (%d more steps)\n", truncated)
		}
	}
	return b.String()
}
