package obs

import (
	"mllibstar/internal/metrics"
	"mllibstar/internal/trace"
)

// Converters from a decoded event log back to the repo's existing render
// inputs, so cmd/mlstar-obs and the live dashboard reuse the figure
// machinery (metrics.RenderSVG, metrics.RenderGanttSVG) instead of growing
// a second renderer.

// kindForSpan inverts PhaseForKind for span (Dir-empty) events.
func kindForSpan(ph Phase) trace.Kind {
	switch ph {
	case PhaseAgg:
		return trace.Aggregate
	case PhaseUpdate:
		return trace.Update
	case PhaseEncode:
		return trace.Encode
	case PhaseBarrier:
		return trace.Barrier
	case PhasePipeline:
		return trace.Pipeline
	case PhaseFeatBlock:
		return trace.FeatBlock
	case PhaseSchedule:
		return trace.Stage
	case PhasePSPull:
		return trace.Pull
	case PhasePSPush:
		return trace.Push
	}
	return trace.Compute
}

// RecorderFromEvents rebuilds a trace recorder from an event log: span and
// message events become gantt spans, stage events become the start/end
// markers of the Figure-3 charts, and the bookkeeping phases (step, eval,
// updates, meta) are skipped.
func RecorderFromEvents(events []Event) *trace.Recorder {
	rec := trace.New()
	for _, e := range events {
		switch e.Phase {
		case PhaseStep, PhaseEval, PhaseUpdates, PhaseMeta,
			PhaseServeRequest, PhaseServeBatch, PhaseServeSwap,
			PhaseCausalFork, PhaseCausalBarrier, PhaseCausalSpec:
			continue
		case PhaseStage:
			rec.Mark(e.Start, e.Note+" start")
			rec.Mark(e.End, e.Note+" end")
			continue
		}
		kind := kindForSpan(e.Phase)
		if e.Dir != "" {
			kind = KindForSend(e.Phase, e.Dir)
		}
		rec.Add(e.Node, kind, e.Start, e.End, string(e.Phase))
	}
	return rec
}

// CurveFromEvents rebuilds the convergence curve from the eval events of an
// event log, naming it from the log's meta events when present.
func CurveFromEvents(events []Event) *metrics.Curve {
	system, dataset := "", ""
	for _, e := range events {
		if e.Phase != PhaseMeta {
			continue
		}
		if len(e.Note) > 7 && e.Note[:7] == "system=" {
			system = e.Note[7:]
		}
		if len(e.Note) > 8 && e.Note[:8] == "dataset=" {
			dataset = e.Note[8:]
		}
	}
	c := metrics.NewCurve(system, dataset)
	for _, e := range events {
		if e.Phase == PhaseEval {
			c.Add(e.Step, e.Start, e.Loss)
		}
	}
	return c
}
